// E2/E3/E4 — the paper's §IV-B software benchmark: MediaBench ADPCM on a
// vanilla core vs the SOFIA core.
//
// Paper:  text 6,976 -> 16,816 bytes (2.41x); cycles 114,188,673 ->
// 130,840,013 (+13.7%... +14.6% by direct division); total execution time
// +110% once the 92.3 -> 50.1 MHz clock degradation is applied.
//
// Absolute cycle counts differ (SR32 substrate, smaller input); the *shape*
// — code-size ratio, modest cycle overhead, clock-dominated wall-clock
// overhead — is the reproduction target. Both readings of the cipher-engine
// timing are reported (see sim::CipherTiming).
#include <cstdio>

#include "support/measure.hpp"

int main() {
  using namespace sofia;
  const hw::HwModel model;

  std::printf(
      "ADPCM overhead (paper S IV-B)  —  encoder + decoder, 8192 samples\n");
  bench::print_rule(100);
  std::printf("%-22s %9s %9s %6s | %11s %11s %7s | %8s\n", "workload",
              "text(V)", "text(S)", "ratio", "cycles(V)", "cycles(S)", "cyc%",
              "time%");
  bench::print_rule(100);

  for (const bool pipelined : {true, false}) {
    double total_v = 0;
    double total_s = 0;
    for (const char* name : {"adpcm_encode", "adpcm_decode"}) {
      auto opts = bench::default_measure_options();
      opts.config.cipher.pipelined = pipelined;
      const auto m =
          bench::measure_workload(workloads::workload(name), /*seed=*/1,
                                  /*size=*/8192, opts);
      std::printf("%-22s %9u %9u %6.2f | %11llu %11llu %+6.1f%% | %+7.1f%%\n",
                  (std::string(name) + (pipelined ? "" : " (iterative)")).c_str(),
                  m.vanilla_text_bytes, m.sofia_text_bytes, m.size_ratio(),
                  static_cast<unsigned long long>(m.vanilla_cycles),
                  static_cast<unsigned long long>(m.sofia_cycles),
                  m.cycle_overhead_pct(), m.time_overhead_pct(model, 2));
      total_v += static_cast<double>(m.vanilla_cycles);
      total_s += static_cast<double>(m.sofia_cycles);
    }
    std::printf("%-22s %9s %9s %6s | %11.0f %11.0f %+6.1f%% | %+7.1f%%\n",
                pipelined ? "combined (pipelined)" : "combined (iterative)", "",
                "", "", total_v, total_s, hw::overhead_pct(total_v, total_s),
                hw::overhead_pct(total_v / model.vanilla().clock_mhz,
                                 total_s / model.sofia(2).clock_mhz));
    bench::print_rule(100);
  }

  std::printf(
      "paper reference:        text 6976 -> 16816 B (2.41x); cycles +13.7%%; "
      "exec time +110%%\n");
  return 0;
}
