// E7 — Figs. 5/6 design alternatives: 6-word blocks with 4 instructions and
// no store restriction (Fig. 5) vs the paper's 8-word blocks with 6
// instructions and stores banned from inst1/inst2 (Fig. 6), plus wider
// blocks as an extension.
#include <cstdio>

#include "support/measure.hpp"

int main() {
  using namespace sofia;
  struct Policy {
    const char* name;
    xform::BlockPolicy policy;
  };
  const Policy policies[] = {
      {"fig5: 6w/4i unrestricted", xform::BlockPolicy::small_unrestricted()},
      {"fig6: 8w/6i stores>=w4 (paper)", xform::BlockPolicy::paper_default()},
      {"ext: 12w/10i stores>=w4", xform::BlockPolicy{12, 4}},
      {"ext: 16w/14i stores>=w4", xform::BlockPolicy{16, 4}},
  };
  std::printf("Block-policy ablation (all workloads, per-pair CTR)\n");
  bench::print_rule(96);
  std::printf("%-32s %8s %8s | %10s %8s | %10s\n", "policy", "text x", "pad%",
              "cycles(S)", "cyc%", "gate stalls");
  bench::print_rule(96);
  for (const auto& p : policies) {
    double text_ratio = 0;
    double pad = 0;
    double cyc = 0;
    std::uint64_t cycles = 0;
    std::uint64_t gate = 0;
    int n = 0;
    for (const auto& spec : workloads::all_workloads()) {
      auto opts = bench::default_measure_options();
      opts.profile.policy = p.policy;
      const auto m = bench::measure_workload(spec, 1, spec.default_size / 2, opts);
      text_ratio += m.size_ratio();
      pad += 100.0 * static_cast<double>(m.sofia_stats.nops) /
             static_cast<double>(m.sofia_stats.insts);
      cyc += m.cycle_overhead_pct();
      cycles += m.sofia_cycles;
      gate += m.sofia_stats.store_gate_stalls;
      ++n;
    }
    std::printf("%-32s %8.2f %7.1f%% | %10llu %+7.1f%% | %10llu\n", p.name,
                text_ratio / n, pad / n,
                static_cast<unsigned long long>(cycles), cyc / n,
                static_cast<unsigned long long>(gate));
  }
  bench::print_rule(96);
  std::printf("Fig. 5's small blocks verify earlier (no store restriction) but\n"
              "carry more MAC words per instruction; the paper picked Fig. 6.\n");
  return 0;
}
