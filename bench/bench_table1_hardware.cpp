// E1 — Table I: hardware comparison of SOFIA and LEON3.
//
// Paper (Virtex-6 synthesis):          This repo (calibrated model):
//   Vanilla  5,889 slices  92.3 MHz      exact by calibration
//   SOFIA    7,551 slices  50.1 MHz      exact by calibration
//   (+28.2% area, clock period 1.846x — "84.6% slower")
#include <cstdio>

#include "support/measure.hpp"
#include "hw/hw_model.hpp"

int main() {
  using namespace sofia;
  const hw::HwModel model;
  const auto vanilla = model.vanilla();
  const auto paper_point = model.sofia(2);

  std::printf("Table I: hardware comparison of SOFIA and LEON3\n");
  bench::print_rule();
  std::printf("%-28s %10s %12s %12s\n", "Design", "Slices", "Clock (MHz)",
              "Period (ns)");
  bench::print_rule();
  std::printf("%-28s %10.0f %12.1f %12.2f\n", "Vanilla (LEON3)", vanilla.slices,
              vanilla.clock_mhz, vanilla.period_ns);
  std::printf("%-28s %10.0f %12.1f %12.2f\n", "SOFIA (2-cycle cipher)",
              paper_point.slices, paper_point.clock_mhz, paper_point.period_ns);
  bench::print_rule();
  std::printf("area overhead:          %+6.1f %%   (paper: +28.2 %%)\n",
              hw::overhead_pct(vanilla.slices, paper_point.slices));
  std::printf("clock period increase:  %+6.1f %%   (paper: clock 84.6 %% slower)\n",
              hw::overhead_pct(vanilla.period_ns, paper_point.period_ns));
  std::printf("\nModel composition for the SOFIA row:\n");
  std::printf("  baseline LEON3                %7.0f slices\n", model.vanilla_slices);
  std::printf("  13 combinational rounds x %3.0f  %6.0f slices\n",
              model.round_slices, 13 * model.round_slices);
  std::printf("  key regs + MAC + control      %7.0f slices\n", model.fixed_slices);
  std::printf("  critical path: 13 x %.3f ns + %.1f ns = %.2f ns\n",
              model.round_delay_ns, model.cipher_overhead_ns,
              paper_point.period_ns);
  return 0;
}
