// Static-verifier throughput — wall-clock of a full verify::lint pass
// (seal re-derivation, edge checks, and the abstract-interpretation
// dataflow engine) per workload x scheme. The lint pass is the gate every
// sweep/campaign cell and CI job pays before touching a simulator, so its
// cost budget matters: this bench documents it and catches regressions
// when the dataflow lattice grows.
//
//   bench_lint_speed [--size-divisor N] [--repeat R] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "scheme/scheme.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/measure.hpp"
#include "verify/verify.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double timed_ms(const std::function<void()>& fn, std::uint32_t repeat) {
  double best = 0;
  for (std::uint32_t r = 0; r < repeat; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct Row {
  std::string workload;
  std::string scheme;
  std::uint32_t size = 0;
  std::uint32_t blocks = 0;
  std::uint32_t edges = 0;
  std::uint32_t stores = 0;
  std::uint32_t indirects = 0;
  double lint_ms = 0;
  bool clean = false;

  double blocks_per_ms() const { return lint_ms > 0 ? blocks / lint_ms : 0; }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sofia;
  std::uint32_t size_divisor = 4;
  std::uint32_t repeat = 3;
  std::string json_path;

  cli::Parser parser("bench_lint_speed",
                     "verify::lint wall-clock per workload x scheme");
  parser
      .option("--size-divisor", size_divisor, "N",
              "divide workload sizes by N (default 4)")
      .option("--repeat", repeat, "R", "repetitions, best-of (default 3)")
      .option("--json", json_path, "PATH", "write the measurement document");
  parser.parse_or_exit(argc, argv);
  if (size_divisor < 1 || repeat < 1)
    return parser.fail("--size-divisor and --repeat must be >= 1");

  std::printf("Lint speed — full static pass wall clock, best of %u\n", repeat);
  bench::print_rule(96);
  std::printf("%-14s %-13s %6s | %7s %7s %7s %5s | %9s %10s | %s\n",
              "workload", "scheme", "size", "blocks", "edges", "stores",
              "jalr", "lint ms", "blk/ms", "clean");
  bench::print_rule(96);

  std::vector<Row> rows;
  bool all_clean = true;
  for (const auto& spec : workloads::all_workloads()) {
    for (const auto& scheme_name : scheme::scheme_names()) {
      Row row;
      row.workload = spec.name;
      row.scheme = scheme_name;
      row.size = std::max(4u, spec.default_size / size_divisor);

      auto profile = pipeline::DeviceProfile::paper_default();
      profile.scheme = scheme_name;
      auto session =
          pipeline::Pipeline::from_workload(spec, 1, row.size, profile);
      const auto& img = session.image();  // toolchain stages, untimed
      session.lint();                     // warm the model cache, untimed

      verify::Report report;
      row.lint_ms = timed_ms([&] { report = session.lint_image(img); }, repeat);
      row.blocks = report.blocks_checked;
      row.edges = report.edges_checked;
      row.stores = report.stores_checked;
      row.indirects = static_cast<std::uint32_t>(report.indirects.size());
      row.clean = report.clean();
      all_clean = all_clean && row.clean;

      std::printf("%-14s %-13s %6u | %7u %7u %7u %5u | %9.3f %10.1f | %s\n",
                  row.workload.c_str(), row.scheme.c_str(), row.size,
                  row.blocks, row.edges, row.stores, row.indirects,
                  row.lint_ms, row.blocks_per_ms(),
                  row.clean ? "ok" : "DIRTY");
      rows.push_back(std::move(row));
    }
  }
  bench::print_rule(96);
  std::printf("\nthe dataflow engine (store proofs + jalr target sets) runs "
              "inside every lint\npass; scheme choice only changes seal "
              "re-derivation and gating checks.\n");

  if (!json_path.empty()) {
    json::Writer w(2);
    w.begin_object();
    w.member("schema", "sofia-lint-speed-v1");
    w.member("repeat", repeat);
    w.member("size_divisor", size_divisor);
    w.key("jobs").begin_array();
    for (const auto& row : rows) {
      w.begin_object();
      w.member("workload", row.workload);
      w.member("scheme", row.scheme);
      w.member("size", row.size);
      w.member("blocks_checked", row.blocks);
      w.member("edges_checked", row.edges);
      w.member("stores_checked", row.stores);
      w.member("indirects", row.indirects);
      w.member("lint_ms", row.lint_ms);
      w.member("clean", row.clean);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    try {
      sofia::io::write_file(json_path, w.str() + "\n");
    } catch (const sofia::Error& e) {
      std::fprintf(stderr, "bench_lint_speed: %s\n", e.what());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_clean ? 0 : 1;
}
