// Fault-injection campaign (the paper's stated future work): single
// transient bit flips on the instruction-fetch path, classified per core.
// On SOFIA every fault that isn't architecturally masked must end in a
// reset; on the vanilla core faults silently corrupt program output.
#include <cstdio>

#include "support/measure.hpp"
#include "security/forgery.hpp"

int main() {
  using namespace sofia;
  const auto keys = bench::bench_keys();
  const char* program = R"(
main:
  li r1, 0
  li r2, 24
loop:
  call work
  addi r2, r2, -1
  bnez r2, loop
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
work:
  addi r1, r1, 3
  beqz r1, never
  addi r1, r1, 1
never:
  ret
)";
  std::printf("Transient instruction-fetch fault campaign (1 bit flip/run)\n");
  bench::print_rule(84);
  std::printf("%-10s %8s %10s %10s %12s %8s\n", "core", "trials", "detected",
              "masked", "corrupted", "other");
  bench::print_rule(84);
  Rng rng(7777);
  for (const bool sofia_core : {false, true}) {
    const auto campaign = security::run_fault_campaign(
        program, keys, sofia_core, /*trials=*/400, rng);
    std::printf("%-10s %8llu %10llu %10llu %12llu %8llu\n",
                sofia_core ? "SOFIA" : "vanilla",
                static_cast<unsigned long long>(campaign.trials),
                static_cast<unsigned long long>(campaign.detected),
                static_cast<unsigned long long>(campaign.masked),
                static_cast<unsigned long long>(campaign.corrupted),
                static_cast<unsigned long long>(campaign.other));
  }
  bench::print_rule(84);
  std::printf("SOFIA detects every non-masked fetch fault: a flipped bit never\n"
              "survives decryption + MAC verification, so fault attacks on the\n"
              "instruction stream reduce to MAC forgery (46,795-year expected cost).\n");
  return 0;
}
