// E12 — whole-suite overhead (extension beyond the paper's single ADPCM
// benchmark): code size, cycles and modelled total execution time for every
// workload under the paper-default configuration. The measurement matrix
// runs on the driver's thread pool; this binary only formats the table.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "driver/sweep.hpp"

int main() {
  using namespace sofia;
  const hw::HwModel model;
  const auto spec = driver::matrix("suite-overhead");
  const auto result = driver::run_sweep(
      spec, std::max(1u, std::thread::hardware_concurrency()));

  std::printf("Suite overhead — paper-default policy, per-pair CTR, 2-cycle cipher\n");
  bench::print_rule(104);
  std::printf("%-14s %8s %8s %6s | %10s %10s %8s | %8s | %6s\n", "workload",
              "text(V)", "text(S)", "ratio", "cycles(V)", "cycles(S)", "cyc%",
              "time%", "pad%");
  bench::print_rule(104);
  double sum_ratio = 0;
  double sum_cyc = 0;
  double sum_time = 0;
  int n = 0;
  for (const auto& job : result.jobs) {
    if (!job.ok) {
      std::printf("%-14s FAILED: %s\n", job.job.workload.c_str(),
                  job.error.c_str());
      continue;
    }
    const auto& m = job.m;
    const double pad_pct =
        100.0 * static_cast<double>(m.sofia_stats.nops) /
        static_cast<double>(m.sofia_stats.insts);
    std::printf("%-14s %8u %8u %6.2f | %10llu %10llu %+7.1f%% | %+7.1f%% | %5.1f%%\n",
                m.name.c_str(), m.vanilla_text_bytes, m.sofia_text_bytes,
                m.size_ratio(),
                static_cast<unsigned long long>(m.vanilla_cycles),
                static_cast<unsigned long long>(m.sofia_cycles),
                m.cycle_overhead_pct(), m.time_overhead_pct(model, 2), pad_pct);
    sum_ratio += m.size_ratio();
    sum_cyc += m.cycle_overhead_pct();
    sum_time += m.time_overhead_pct(model, 2);
    ++n;
  }
  bench::print_rule(104);
  if (n > 0)
    std::printf("%-14s %8s %8s %6.2f | %10s %10s %+7.1f%% | %+7.1f%% |\n", "mean",
                "", "", sum_ratio / n, "", "", sum_cyc / n, sum_time / n);
  std::printf("\npaper (ADPCM only): text 2.41x, cycles +13.7%%, time +110%% — see\n"
              "bench_runlength_sensitivity for why branchy SR32 code pads more\n"
              "than SPARC compiler output. JSON form: sofia_sweep --json out.json\n");
  return result.all_ok() ? 0 : 1;
}
