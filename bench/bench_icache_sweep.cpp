// E14 — I-cache sensitivity: SOFIA's 2.4-3x text expansion raises cache
// pressure; sweep the cache size and watch the miss-rate gap between the
// vanilla and SOFIA binaries of the same program.
#include <cstdio>

#include "support/measure.hpp"

int main() {
  using namespace sofia;
  const auto& spec = workloads::workload("adpcm_encode");
  // The SOFIA binary is ~3x the vanilla one (~1 KiB vs ~350 B here), so the
  // interesting range is where one fits and the other does not.
  std::printf("I-cache size sweep (ADPCM encoder, 32 B lines)\n");
  bench::print_rule(96);
  std::printf("%-10s | %10s %8s | %10s %8s | %8s\n", "size", "cycles(V)",
              "miss%(V)", "cycles(S)", "miss%(S)", "cyc ovh%");
  bench::print_rule(96);
  for (const std::uint32_t bytes : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    auto opts = bench::default_measure_options();
    opts.config.icache.size_bytes = bytes;
    const auto m = bench::measure_workload(spec, 1, 4096, opts);
    const auto miss_pct = [](const sim::SimStats& s) {
      const double total = static_cast<double>(s.icache_hits + s.icache_misses);
      return total == 0 ? 0.0 : 100.0 * static_cast<double>(s.icache_misses) / total;
    };
    std::printf("%6u B  | %10llu %7.2f%% | %10llu %7.2f%% | %+7.1f%%\n", bytes,
                static_cast<unsigned long long>(m.vanilla_cycles),
                miss_pct(m.vanilla_stats),
                static_cast<unsigned long long>(m.sofia_cycles),
                miss_pct(m.sofia_stats), m.cycle_overhead_pct());
  }
  bench::print_rule(96);
  return 0;
}
