// E11 — attack/detection matrix: every attack class from §I/§IV against the
// SOFIA device, plus the ROP demonstration against both cores.
#include <cstdio>

#include "support/measure.hpp"
#include "security/attacks.hpp"

int main() {
  using namespace sofia;
  const auto keys = bench::bench_keys();
  const char* victim = R"(
main:
  li r1, 0
  li r2, 16
loop:
  call work
  addi r2, r2, -1
  bnez r2, loop
  la r3, out
  sw r1, 0(r3)
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
work:
  addi r1, r1, 3
  beqz r1, never
  addi r1, r1, 1
never:
  ret
.data
out: .word 0
)";
  security::AttackHarness harness(victim, keys);

  std::printf("Attack matrix on the SOFIA device\n");
  bench::print_rule(86);
  std::printf("%-44s %-10s %-14s %8s\n", "attack", "detected", "cause",
              "at cycle");
  bench::print_rule(86);
  auto report = [](const security::AttackOutcome& o) {
    std::printf("%-44s %-10s %-14s %8llu\n", o.name.c_str(),
                o.detected ? "yes" : (o.output_clean ? "no effect" : "NO"),
                o.detected ? std::string(to_string(o.run.reset.cause)).c_str()
                           : "-",
                static_cast<unsigned long long>(
                    o.detected ? o.run.reset.cycle : 0));
  };
  report(harness.flip_bit(2, 9));
  report(harness.flip_bit(0, 30));
  report(harness.patch_word(4, 0x34000001));
  report(harness.relocate_word(3, 11));
  report(harness.splice_block(0, 2));
  report(harness.cross_version_splice(0xBEEF, 1));

  Rng rng(42);
  const auto flips = harness.random_bit_flips(rng, 200);
  int detected = 0;
  int harmless = 0;
  int breached = 0;
  for (const auto& o : flips) {
    if (o.detected)
      ++detected;
    else if (o.output_clean)
      ++harmless;
    else
      ++breached;
  }
  bench::print_rule(86);
  std::printf("random single-bit flips: %d detected, %d dead-code (no effect), "
              "%d breached / %zu\n",
              detected, harmless, breached, flips.size());

  std::printf("\nROP demonstration (return address smashed toward a store gadget)\n");
  bench::print_rule(86);
  const auto demo = security::run_rop_demo(keys);
  std::printf("%-24s clean output: %-8s attacked: %s\n", "vanilla LEON3",
              "1111", demo.vanilla_attacked.output.find("6666") != std::string::npos
                          ? "GADGET FIRED (6666)"
                          : "gadget did not fire");
  std::printf("%-24s clean output: %-8s attacked: %s (cause %s)\n", "SOFIA",
              "1111",
              demo.sofia_attacked.status == sim::RunResult::Status::kReset
                  ? "RESET before gadget"
                  : "NOT DETECTED",
              std::string(to_string(demo.sofia_attacked.reset.cause)).c_str());

  std::printf("\nJOP demonstration (function-pointer table overwritten in data)\n");
  bench::print_rule(86);
  const auto jop = security::run_jop_demo(keys);
  std::printf("%-24s attacked: %s\n", "vanilla LEON3",
              jop.vanilla_attacked.output.find("7777") != std::string::npos
                  ? "GADGET FIRED (7777)"
                  : "gadget did not fire");
  std::printf("%-24s attacked: %s\n", "SOFIA",
              jop.sofia_attacked.output.empty()
                  ? "dispatch TRAP, gadget never ran"
                  : "NOT DETECTED");
  return breached == 0 ? 0 : 1;
}
