// E11 — attack/detection matrix: every attack class from §I/§IV against the
// SOFIA device, run once per registered protection scheme, plus the ROP/JOP
// demonstrations against both cores. `--json PATH` writes the full matrix
// as a deterministic "sofia-attack-matrix-v2" document (fixed seeds, fixed
// iteration order), so two runs diff byte-identically. `--json -` streams
// the document to stdout (the human-readable matrix moves to stderr).
//
//   bench_attack_matrix [--flips N] [--json PATH]
#include <cstdio>
#include <string>
#include <vector>

#include "scheme/scheme.hpp"
#include "security/attacks.hpp"
#include "support/cli.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/measure.hpp"

namespace {

using namespace sofia;

struct FlipTally {
  int detected = 0;
  int harmless = 0;
  int breached = 0;
};

struct SchemeRow {
  std::string scheme;
  bool authenticated = false;
  std::vector<security::AttackOutcome> attacks;
  FlipTally flips;
  int flip_trials = 0;
};

void report(std::FILE* log, const security::AttackOutcome& o) {
  std::fprintf(log, "%-44s %-10s %-16s %8llu\n", o.name.c_str(),
              o.detected ? "yes" : (o.output_clean ? "no effect" : "NO"),
              o.detected ? std::string(to_string(o.run.reset.cause)).c_str()
                         : "-",
              static_cast<unsigned long long>(
                  o.detected ? o.run.reset.cycle : 0));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sofia;
  std::uint32_t flip_count = 200;
  std::string json_path;
  cli::Parser parser("bench_attack_matrix",
                     "attack/detection matrix per protection scheme");
  parser
      .option("--flips", flip_count, "N",
              "random single-bit flip trials per scheme (default 200)")
      .option("--json", json_path, "PATH",
              "write the matrix document ('-' = stdout)");
  parser.parse_or_exit(argc, argv);

  // With the document streaming on stdout, the human-readable matrix moves
  // to stderr so the output stream stays byte-clean for collectors.
  std::FILE* log = json_path == "-" ? stderr : stdout;

  const auto keys = bench::bench_keys();
  const char* victim = R"(
main:
  li r1, 0
  li r2, 16
loop:
  call work
  addi r2, r2, -1
  bnez r2, loop
  la r3, out
  sw r1, 0(r3)
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
work:
  addi r1, r1, 3
  beqz r1, never
  addi r1, r1, 1
never:
  ret
.data
out: .word 0
)";

  // Breaches only gate the exit code for authenticated schemes: the "null"
  // baseline is *expected* to let flips through — that contrast is the
  // point of running the matrix across the scheme axis.
  int auth_breached = 0;
  std::vector<SchemeRow> rows;
  for (const auto& entry : scheme::scheme_registry()) {
    SchemeRow row;
    row.scheme = std::string(entry.name);
    row.authenticated = entry.get().traits().authenticated;
    row.flip_trials = static_cast<int>(flip_count);

    pipeline::DeviceProfile profile = pipeline::DeviceProfile::with_keys(keys);
    profile.scheme = row.scheme;
    security::AttackHarness harness(victim, profile);

    std::fprintf(log, "Attack matrix on the SOFIA device — scheme %s (%s)\n",
                row.scheme.c_str(),
                row.authenticated ? "authenticated" : "encrypt-only");
    bench::print_rule(log, 86);
    std::fprintf(log, "%-44s %-10s %-16s %8s\n", "attack", "detected", "cause",
                "at cycle");
    bench::print_rule(log, 86);
    row.attacks.push_back(harness.flip_bit(2, 9));
    row.attacks.push_back(harness.flip_bit(0, 30));
    row.attacks.push_back(harness.patch_word(4, 0x34000001));
    row.attacks.push_back(harness.relocate_word(3, 11));
    row.attacks.push_back(harness.splice_block(0, 2));
    row.attacks.push_back(harness.cross_version_splice(0xBEEF, 1));
    for (const auto& o : row.attacks) report(log, o);

    Rng rng(42);  // fresh per scheme: rows are independent of scheme order
    const auto flips =
        harness.random_bit_flips(rng, static_cast<int>(flip_count));
    for (const auto& o : flips) {
      if (o.detected)
        ++row.flips.detected;
      else if (o.output_clean)
        ++row.flips.harmless;
      else
        ++row.flips.breached;
    }
    bench::print_rule(log, 86);
    std::fprintf(log, 
        "random single-bit flips: %d detected, %d dead-code (no effect), "
        "%d breached / %zu%s\n\n",
        row.flips.detected, row.flips.harmless, row.flips.breached,
        flips.size(),
        row.authenticated ? "" : "  (breaches expected: no verification)");
    if (row.authenticated) auth_breached += row.flips.breached;
    rows.push_back(std::move(row));
  }

  std::fprintf(log, "ROP demonstration (return address smashed toward a store gadget)\n");
  bench::print_rule(log, 86);
  const auto demo = security::run_rop_demo(keys);
  const bool rop_vanilla_breached =
      demo.vanilla_attacked.output.find("6666") != std::string::npos;
  const bool rop_detected =
      demo.sofia_attacked.status == sim::RunResult::Status::kReset;
  std::fprintf(log, "%-24s clean output: %-8s attacked: %s\n", "vanilla LEON3",
              "1111",
              rop_vanilla_breached ? "GADGET FIRED (6666)"
                                   : "gadget did not fire");
  std::fprintf(log, "%-24s clean output: %-8s attacked: %s (cause %s)\n", "SOFIA",
              "1111", rop_detected ? "RESET before gadget" : "NOT DETECTED",
              std::string(to_string(demo.sofia_attacked.reset.cause)).c_str());

  std::fprintf(log, "\nJOP demonstration (function-pointer table overwritten in data)\n");
  bench::print_rule(log, 86);
  const auto jop = security::run_jop_demo(keys);
  const bool jop_vanilla_breached =
      jop.vanilla_attacked.output.find("7777") != std::string::npos;
  const bool jop_trapped = jop.sofia_attacked.output.empty();
  std::fprintf(log, "%-24s attacked: %s\n", "vanilla LEON3",
              jop_vanilla_breached ? "GADGET FIRED (7777)"
                                   : "gadget did not fire");
  std::fprintf(log, "%-24s attacked: %s\n", "SOFIA",
              jop_trapped ? "dispatch TRAP, gadget never ran"
                          : "NOT DETECTED");

  if (!json_path.empty()) {
    json::Writer w(2);
    w.begin_object();
    w.member("schema", "sofia-attack-matrix-v2");
    w.member("flip_trials", static_cast<std::uint64_t>(flip_count));
    w.key("schemes").begin_array();
    for (const auto& row : rows) {
      w.begin_object();
      w.member("scheme", row.scheme);
      w.member("authenticated", row.authenticated);
      w.key("attacks").begin_array();
      for (const auto& o : row.attacks) {
        w.begin_object();
        w.member("name", o.name);
        w.member("detected", o.detected);
        w.member("output_clean", o.output_clean);
        if (o.detected) {
          w.member("cause", to_string(o.run.reset.cause));
          w.member("cycle", o.run.reset.cycle);
        }
        w.end_object();
      }
      w.end_array();
      w.key("random_flips").begin_object();
      w.member("detected", static_cast<std::int64_t>(row.flips.detected));
      w.member("harmless", static_cast<std::int64_t>(row.flips.harmless));
      w.member("breached", static_cast<std::int64_t>(row.flips.breached));
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.key("rop").begin_object();
    w.member("vanilla_breached", rop_vanilla_breached);
    w.member("sofia_detected", rop_detected);
    w.end_object();
    w.key("jop").begin_object();
    w.member("vanilla_breached", jop_vanilla_breached);
    w.member("sofia_trapped", jop_trapped);
    w.end_object();
    w.end_object();
    io::emit_document(json_path, w.str() + "\n");
    if (json_path != "-") std::fprintf(log, "\nwrote %s\n", json_path.c_str());
  }

  return (auth_breached == 0 && rop_detected && jop_trapped &&
          rop_vanilla_breached && jop_vanilla_breached)
             ? 0
             : 1;
}
