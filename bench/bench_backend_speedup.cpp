// Backend ablation — functional-vs-cycle wall-clock across the workload
// suite. For each workload the same hardened image is executed once per
// backend (run-only: the toolchain stages are built beforehand and shared),
// the architectural results are cross-checked, and the wall-clock ratio is
// reported. This is the number that justifies `sofia_sweep --backend
// functional` as a prefilter: how much cheaper is an integrity-only pass?
//
//   bench_backend_speedup [--size-divisor N] [--repeat R] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/measure.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double timed_ms(const std::function<void()>& fn, std::uint32_t repeat) {
  double best = 0;
  for (std::uint32_t r = 0; r < repeat; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct Row {
  std::string workload;
  std::uint32_t size = 0;
  double cycle_ms = 0;
  double functional_ms = 0;
  std::uint64_t cycle_cycles = 0;
  std::uint64_t insts = 0;
  bool agree = false;

  double speedup() const {
    return functional_ms > 0 ? cycle_ms / functional_ms : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sofia;
  std::uint32_t size_divisor = 4;
  std::uint32_t repeat = 3;
  std::string json_path;

  cli::Parser parser("bench_backend_speedup",
                     "functional-vs-cycle wall-clock across the suite");
  parser
      .option("--size-divisor", size_divisor, "N",
              "divide workload sizes by N (default 4)")
      .option("--repeat", repeat, "R", "repetitions, best-of (default 3)")
      .option("--json", json_path, "PATH", "write the measurement document");
  parser.parse_or_exit(argc, argv);
  if (size_divisor < 1 || repeat < 1)
    return parser.fail("--size-divisor and --repeat must be >= 1");

  std::printf("Backend speedup — run-only wall clock, best of %u\n", repeat);
  bench::print_rule(88);
  std::printf("%-14s %7s | %10s %10s %8s | %12s %10s | %s\n", "workload",
              "size", "cycle ms", "func ms", "speedup", "cycles", "insts",
              "agree");
  bench::print_rule(88);

  std::vector<Row> rows;
  double sum_speedup = 0;
  bool all_agree = true;
  for (const auto& spec : workloads::all_workloads()) {
    Row row;
    row.workload = spec.name;
    row.size = std::max(4u, spec.default_size / size_divisor);

    auto builder = pipeline::Pipeline::from_workload(spec, 1, row.size);
    const auto& img = builder.image();  // toolchain stages, outside the timer
    auto functional_profile = pipeline::DeviceProfile::paper_default();
    functional_profile.backend = "functional";
    auto functional = pipeline::Pipeline::from_image(img, functional_profile);

    sim::RunResult cycle_run;
    sim::RunResult functional_run;
    row.cycle_ms = timed_ms([&] { cycle_run = builder.run_image(img); }, repeat);
    row.functional_ms =
        timed_ms([&] { functional_run = functional.run_image(img); }, repeat);
    row.cycle_cycles = cycle_run.stats.cycles;
    row.insts = functional_run.stats.insts;
    row.agree = cycle_run.status == functional_run.status &&
                cycle_run.exit_code == functional_run.exit_code &&
                cycle_run.output == functional_run.output &&
                cycle_run.stats.insts == functional_run.stats.insts;
    all_agree = all_agree && row.agree;
    sum_speedup += row.speedup();

    std::printf("%-14s %7u | %10.3f %10.3f %7.1fx | %12llu %10llu | %s\n",
                row.workload.c_str(), row.size, row.cycle_ms, row.functional_ms,
                row.speedup(),
                static_cast<unsigned long long>(row.cycle_cycles),
                static_cast<unsigned long long>(row.insts),
                row.agree ? "ok" : "MISMATCH");
    rows.push_back(std::move(row));
  }
  bench::print_rule(88);
  const double mean =
      rows.empty() ? 0 : sum_speedup / static_cast<double>(rows.size());
  std::printf("%-14s %7s | %10s %10s %7.1fx |\n", "mean", "", "", "", mean);
  std::printf("\nfunctional skips the I-cache/cipher-engine timing model and "
              "verifies each\n(entry, prevPC) block once; use it for sweep "
              "prefiltering, never for overhead numbers.\n");

  if (!json_path.empty()) {
    json::Writer w(2);
    w.begin_object();
    w.member("schema", "sofia-backend-speedup-v1");
    w.member("repeat", repeat);
    w.member("size_divisor", size_divisor);
    w.key("jobs").begin_array();
    for (const auto& row : rows) {
      w.begin_object();
      w.member("workload", row.workload);
      w.member("size", row.size);
      w.member("cycle_ms", row.cycle_ms);
      w.member("functional_ms", row.functional_ms);
      w.member("speedup", row.speedup());
      w.member("cycle_cycles", row.cycle_cycles);
      w.member("insts", row.insts);
      w.member("agree", row.agree);
      w.end_object();
    }
    w.end_array();
    w.member("mean_speedup", mean);
    w.end_object();
    try {
      sofia::io::write_file(json_path, w.str() + "\n");
    } catch (const sofia::Error& e) {
      std::fprintf(stderr, "bench_backend_speedup: %s\n", e.what());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_agree ? 0 : 1;
}
