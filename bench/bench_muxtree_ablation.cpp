// E10 — multiplexor-tree cost (Fig. 9): a function called from k sites
// needs k entries; the tree spends p-2 forwarding blocks and one hop of
// latency per level. Measures static and dynamic cost as k grows.
#include <cstdio>
#include <string>

#include "support/measure.hpp"

namespace {

std::string callers_program(int k, int reps) {
  std::string src = "main:\n  li r5, " + std::to_string(reps) + "\n";
  src += "outer:\n";
  for (int i = 0; i < k; ++i) src += "  call f\n";
  src += "  addi r5, r5, -1\n  bnez r5, outer\n";
  src += "  li r10, 0xFFFF0008\n  sw r1, 0(r10)\n  halt\n";
  src += "f:\n  addi r1, r1, 1\n  ret\n";
  return src;
}

}  // namespace

int main() {
  using namespace sofia;
  std::printf("Multiplexor-tree cost vs caller count (Fig. 9)\n");
  bench::print_rule(96);
  std::printf("%-8s %10s %10s %10s | %10s %10s | %12s\n", "callers", "mux",
              "forward", "text x", "cycles(V)", "cycles(S)", "cyc/call");
  bench::print_rule(96);
  for (const int k : {1, 2, 3, 4, 6, 8, 12, 16}) {
    const int reps = 2000 / k;
    auto session = pipeline::Pipeline::from_source(
        callers_program(k, reps), pipeline::DeviceProfile::paper_default(),
        "callers-k" + std::to_string(k));
    const auto& v = session.run_vanilla();
    const auto& s = session.run();
    if (!v.ok() || !s.ok() || v.output != s.output) {
      std::printf("k=%d: RUN MISMATCH\n", k);
      return 1;
    }
    const auto& t = session.hardened();
    const double calls = static_cast<double>(k) * reps;
    std::printf("%-8d %10u %10u %10.2f | %10llu %10llu | %12.1f\n", k,
                t.stats.layout.mux_blocks, t.stats.layout.forward_blocks,
                static_cast<double>(t.image.text_bytes()) /
                    static_cast<double>(session.vanilla_image().text_bytes()),
                static_cast<unsigned long long>(v.stats.cycles),
                static_cast<unsigned long long>(s.stats.cycles),
                static_cast<double>(s.stats.cycles) / calls);
  }
  bench::print_rule(96);
  std::printf("forwarding blocks = callers - 2 per join (the paper's tree),\n"
              "plus one mux hop of latency per tree level on the call path.\n");
  return 0;
}
