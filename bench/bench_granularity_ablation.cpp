// E9 — keystream granularity: Alg. 1's per-word CTR (finest CFI, one
// cipher op per instruction word) vs the §III hardware's per-pair CTR (one
// op per 64-bit pair). Also contrasts the strict-alternation engine with a
// demand-driven one. The 4-config × all-workloads matrix comes from the
// sweep driver; this binary aggregates per configuration.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "driver/sweep.hpp"

int main() {
  using namespace sofia;
  const auto spec = driver::matrix("granularity");
  const auto result = driver::run_sweep(
      spec, std::max(1u, std::thread::hardware_concurrency()));
  if (!result.all_ok()) {
    for (const auto& job : result.jobs)
      if (!job.ok)
        std::fprintf(stderr, "%s / %s failed: %s\n", job.job.workload.c_str(),
                     job.job.config.name.c_str(), job.error.c_str());
    return 1;
  }

  // Aggregate cycles and CTR ops per configuration; the vanilla baseline is
  // shared (the vanilla core ignores every swept cipher axis).
  struct Totals {
    std::uint64_t cycles = 0;
    std::uint64_t ctr = 0;
  };
  const std::size_t n_configs = spec.configs.size();
  std::vector<Totals> per_config(n_configs);  // config order within the spec
  std::uint64_t vanilla_total = 0;
  for (const auto& job : result.jobs) {
    const std::size_t c = job.job.index % n_configs;
    per_config[c].cycles += job.m.sofia_cycles;
    per_config[c].ctr += job.m.sofia_stats.ctr_ops;
    if (c == 0) vanilla_total += job.m.vanilla_cycles;
  }

  std::printf("CTR granularity / engine policy ablation (all workloads)\n");
  bench::print_rule(92);
  std::printf("%-34s | %12s %12s | %10s\n", "configuration", "cycles", "cyc ovh%",
              "CTR ops");
  bench::print_rule(92);
  for (std::size_t c = 0; c < n_configs; ++c) {
    const auto& totals = per_config[c];
    std::printf("%-34s | %12llu %+11.1f%% | %10llu\n",
                spec.configs[c].name.c_str(),
                static_cast<unsigned long long>(totals.cycles),
                hw::overhead_pct(static_cast<double>(vanilla_total),
                                 static_cast<double>(totals.cycles)),
                static_cast<unsigned long long>(totals.ctr));
  }
  bench::print_rule(92);
  std::printf("Per-word doubles CTR work per block (8 vs 4 ops) and throttles the\n"
              "alternating engine — quantifying why the paper processes pairs.\n");
  return 0;
}
