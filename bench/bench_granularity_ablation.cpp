// E9 — keystream granularity: Alg. 1's per-word CTR (finest CFI, one
// cipher op per instruction word) vs the §III hardware's per-pair CTR (one
// op per 64-bit pair). Also contrasts the strict-alternation engine with a
// demand-driven one.
#include <cstdio>

#include "support/measure.hpp"

int main() {
  using namespace sofia;
  std::printf("CTR granularity / engine policy ablation (all workloads)\n");
  bench::print_rule(92);
  std::printf("%-34s | %12s %12s | %10s\n", "configuration", "cycles", "cyc ovh%",
              "CTR ops");
  bench::print_rule(92);
  struct Config {
    const char* name;
    crypto::Granularity gran;
    bool alternate;
  };
  const Config configs[] = {
      {"per-pair, alternating (paper)", crypto::Granularity::kPerPair, true},
      {"per-pair, demand-driven", crypto::Granularity::kPerPair, false},
      {"per-word, alternating (Alg.1)", crypto::Granularity::kPerWord, true},
      {"per-word, demand-driven", crypto::Granularity::kPerWord, false},
  };
  // Vanilla baseline for the overhead column.
  std::uint64_t vanilla_total = 0;
  for (const auto& spec : workloads::all_workloads()) {
    const auto m = bench::measure_workload(spec, 1, spec.default_size / 2);
    vanilla_total += m.vanilla_cycles;
  }
  for (const auto& c : configs) {
    std::uint64_t cycles = 0;
    std::uint64_t ctr = 0;
    for (const auto& spec : workloads::all_workloads()) {
      auto opts = bench::default_measure_options();
      opts.transform.granularity = c.gran;
      opts.config.cipher.alternate = c.alternate;
      const auto m = bench::measure_workload(spec, 1, spec.default_size / 2, opts);
      cycles += m.sofia_cycles;
      ctr += m.sofia_stats.ctr_ops;
    }
    std::printf("%-34s | %12llu %+11.1f%% | %10llu\n", c.name,
                static_cast<unsigned long long>(cycles),
                hw::overhead_pct(static_cast<double>(vanilla_total),
                                 static_cast<double>(cycles)),
                static_cast<unsigned long long>(ctr));
  }
  bench::print_rule(92);
  std::printf("Per-word doubles CTR work per block (8 vs 4 ops) and throttles the\n"
              "alternating engine — quantifying why the paper processes pairs.\n");
  return 0;
}
