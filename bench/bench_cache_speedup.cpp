// Cache ablation — cold-vs-warm wall clock for the content-addressed
// result cache (src/cache/). Every built-in matrix is run twice in smoke
// form against a fresh cache directory: the cold pass executes and stores
// every job, the warm pass must serve 100% of them from disk. The bench
// cross-checks the contract that makes the cache safe to enable by
// default: the warm document is byte-identical to the cold one, and a
// warm run executes zero jobs.
//
//   bench_cache_speedup [--matrix NAME] [--json PATH]
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cache/result_store.hpp"
#include "driver/sweep.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/measure.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Row {
  std::string matrix;
  std::uint64_t jobs = 0;
  double cold_ms = 0;
  double warm_ms = 0;
  std::uint64_t warm_hits = 0;
  bool identical = false;

  double speedup() const { return warm_ms > 0 ? cold_ms / warm_ms : 0; }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sofia;
  std::string matrix_name;
  std::string json_path;

  cli::Parser parser("bench_cache_speedup",
                     "cold-vs-warm result-cache wall clock per matrix");
  parser
      .option("--matrix", matrix_name, "NAME",
              "bench only this matrix (default: every built-in matrix)")
      .option("--json", json_path, "PATH", "write the measurement document");
  parser.parse_or_exit(argc, argv);

  std::vector<std::string> names;
  if (!matrix_name.empty())
    names.push_back(matrix_name);
  else
    names = driver::matrix_names();

  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() /
                        ("sofia-bench-cache-" + std::to_string(getpid()));

  std::printf("Result-cache speedup — smoke matrices, cold vs warm\n");
  bench::print_rule(78);
  std::printf("%-24s %6s | %10s %10s %8s | %6s %s\n", "matrix", "jobs",
              "cold ms", "warm ms", "speedup", "hits", "identical");
  bench::print_rule(78);

  std::vector<Row> rows;
  bool all_ok = true;
  try {
    for (const auto& name : names) {
      driver::SweepSpec spec = driver::smoke(driver::matrix(name));
      const fs::path dir = root / name;

      Row row;
      row.matrix = name;

      cache::ResultStore cold_store(dir);
      const auto t0 = Clock::now();
      const auto cold = driver::run_sweep(spec, 1, {}, {}, &cold_store);
      row.cold_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

      cache::ResultStore warm_store(dir);
      const auto t1 = Clock::now();
      const auto warm = driver::run_sweep(spec, 1, {}, {}, &warm_store);
      row.warm_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t1).count();

      row.jobs = warm.jobs.size();
      row.warm_hits = warm_store.stats().hits;
      row.identical = driver::to_json(cold) == driver::to_json(warm) &&
                      warm.cached_jobs() == warm.jobs.size();
      all_ok = all_ok && row.identical;

      std::printf("%-24s %6llu | %10.1f %10.1f %7.1fx | %6llu %s\n",
                  row.matrix.c_str(),
                  static_cast<unsigned long long>(row.jobs), row.cold_ms,
                  row.warm_ms, row.speedup(),
                  static_cast<unsigned long long>(row.warm_hits),
                  row.identical ? "ok" : "MISMATCH");
      rows.push_back(std::move(row));
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_cache_speedup: %s\n", e.what());
    std::error_code ec;
    fs::remove_all(root, ec);
    return 1;
  }
  std::error_code ec;
  fs::remove_all(root, ec);
  bench::print_rule(78);
  std::printf("\na warm coordinator re-renders every document from disk — "
              "the speedup is what an\ninterrupted fleet run wins back on "
              "resume, not a change to any measurement.\n");

  if (!json_path.empty()) {
    json::Writer w(2);
    w.begin_object();
    w.member("schema", "sofia-cache-speedup-v1");
    w.key("matrices").begin_array();
    for (const auto& row : rows) {
      w.begin_object();
      w.member("matrix", row.matrix);
      w.member("jobs", row.jobs);
      w.member("cold_ms", row.cold_ms);
      w.member("warm_ms", row.warm_ms);
      w.member("speedup", row.speedup());
      w.member("warm_hits", row.warm_hits);
      w.member("identical", row.identical);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    try {
      io::write_file(json_path, w.str() + "\n");
    } catch (const Error& e) {
      std::fprintf(stderr, "bench_cache_speedup: %s\n", e.what());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}
