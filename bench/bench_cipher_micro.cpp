// E15 — crypto microbenchmarks (google-benchmark): raw block ops, the SOFIA
// CTR keystream, CBC-MAC over block payloads, and end-to-end transform +
// simulation throughput.
#include <benchmark/benchmark.h>

#include "assembler/link.hpp"
#include "crypto/cbc_mac.hpp"
#include "crypto/ctr.hpp"
#include "crypto/key_set.hpp"
#include "sim/machine.hpp"
#include "workloads/workloads.hpp"
#include "xform/transform.hpp"

namespace {

using namespace sofia;

void BM_Encrypt(benchmark::State& state, crypto::CipherKind kind) {
  const auto cipher = crypto::make_cipher(kind, crypto::make_key(1, 2));
  std::uint64_t x = 0x0123456789ABCDEFull;
  for (auto _ : state) {
    x = cipher->encrypt(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Encrypt, rectangle80, crypto::CipherKind::kRectangle80);
BENCHMARK_CAPTURE(BM_Encrypt, speck64, crypto::CipherKind::kSpeck64_128);

void BM_Decrypt(benchmark::State& state, crypto::CipherKind kind) {
  const auto cipher = crypto::make_cipher(kind, crypto::make_key(1, 2));
  std::uint64_t x = 0x0123456789ABCDEFull;
  for (auto _ : state) {
    x = cipher->decrypt(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Decrypt, rectangle80, crypto::CipherKind::kRectangle80);
BENCHMARK_CAPTURE(BM_Decrypt, speck64, crypto::CipherKind::kSpeck64_128);

void BM_Keystream(benchmark::State& state) {
  const auto cipher = crypto::make_cipher(crypto::CipherKind::kRectangle80,
                                          crypto::make_key(3, 4));
  std::uint32_t word = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::keystream32(*cipher, 0x5AFE, word, word + 1));
    ++word;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Keystream);

void BM_CbcMacBlock(benchmark::State& state) {
  const auto cipher = crypto::make_cipher(crypto::CipherKind::kRectangle80,
                                          crypto::make_key(5, 6));
  std::uint32_t words[6] = {1, 2, 3, 4, 5, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::cbc_mac64(*cipher, words));
    ++words[0];
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CbcMacBlock);

void BM_TransformAdpcm(benchmark::State& state) {
  const auto src = workloads::workload("adpcm_encode").source(1, 512);
  const auto prog = assembler::assemble(src);
  const auto keys = crypto::KeySet::example(crypto::CipherKind::kRectangle80);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xform::transform(prog, keys, {}));
  }
}
BENCHMARK(BM_TransformAdpcm)->Unit(benchmark::kMillisecond);

void BM_SimulateSofia(benchmark::State& state) {
  const auto src = workloads::workload("crc32").source(1, 128);
  const auto prog = assembler::assemble(src);
  const auto keys = crypto::KeySet::example(crypto::CipherKind::kSpeck64_128);
  xform::Options opts;
  opts.granularity = crypto::Granularity::kPerPair;
  const auto result = xform::transform(prog, keys, opts);
  sim::SimConfig cfg;
  cfg.keys = keys;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto run = sim::run_image(result.image, cfg);
    cycles += run.stats.cycles;
    benchmark::DoNotOptimize(run.stats.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSofia)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
