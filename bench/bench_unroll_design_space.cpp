// E8 — cipher unroll-factor design space (the paper's §III design choice
// and its stated future work): area and clock from the calibrated hardware
// model, combined with simulated cycles at the matching cipher latency,
// give total execution time per design point.
#include <cstdio>

#include "support/measure.hpp"

int main() {
  using namespace sofia;
  const hw::HwModel model;
  const auto vanilla = model.vanilla();
  const auto& spec = workloads::workload("adpcm_encode");

  std::printf("Cipher unroll design space (ADPCM encoder, per-pair CTR)\n");
  bench::print_rule(100);
  std::printf("%-22s %8s %8s | %10s | %10s %10s | %8s\n", "design", "slices",
              "MHz", "cycles", "time (ms)", "vs paper pt", "area x");
  bench::print_rule(100);

  const auto vm = bench::measure_workload(spec, 1, 4096);
  const double vtime = hw::execution_time_ms(vm.vanilla_cycles, vanilla.clock_mhz);
  std::printf("%-22s %8.0f %8.1f | %10llu | %10.3f %10s | %8.2f\n", "vanilla",
              vanilla.slices, vanilla.clock_mhz,
              static_cast<unsigned long long>(vm.vanilla_cycles), vtime, "-", 1.0);

  // Paper design point first, so every row can be compared against it.
  double paper_time = 0;
  {
    auto opts = bench::default_measure_options();
    const auto m = bench::measure_workload(spec, 1, 4096, opts);
    paper_time = hw::execution_time_ms(m.sofia_cycles, model.sofia(2).clock_mhz);
  }
  for (const int unroll : {1, 2, 4, 7, 13, 26}) {
    const auto est = model.sofia(unroll);
    auto opts = bench::default_measure_options();
    opts.config.cipher.latency = static_cast<std::uint32_t>(unroll);
    // Deep (many-cycle) cipher datapaths are iterative, not pipelined.
    opts.config.cipher.pipelined = unroll <= 2;
    const auto m = bench::measure_workload(spec, 1, 4096, opts);
    const double time = hw::execution_time_ms(m.sofia_cycles, est.clock_mhz);
    char name[32];
    std::snprintf(name, sizeof name, "SOFIA %2d-cycle%s", unroll,
                  unroll == 2 ? " (paper)" : "");
    std::printf("%-22s %8.0f %8.1f | %10llu | %10.3f %+9.1f%% | %8.2f\n", name,
                est.slices, est.clock_mhz,
                static_cast<unsigned long long>(m.sofia_cycles), time,
                hw::overhead_pct(paper_time, time), est.slices / vanilla.slices);
  }
  bench::print_rule(100);
  std::printf("Fastest wall-clock need not be the paper's 2-cycle point: deeper\n"
              "iterative designs reclaim clock at the cost of fetch throughput.\n");
  return 0;
}
