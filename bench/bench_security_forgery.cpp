// E5/E6/E13 — §IV-A security evaluation.
//
// Analytic (exact reproduction): a 64-bit MAC forged online at 8 cycles per
// trial on a 50 MHz core takes 46,795 years on average; a control-flow
// attack needs diversion + verification (16 cycles) -> 93,590 years.
//
// Empirical: the 2^(n-1) expected-trials law and the 2^-n undetected-tamper
// rate, Monte-Carlo-measured against the real CBC-MAC at reduced tag
// lengths.
#include <cstdio>

#include "support/measure.hpp"
#include "security/forgery.hpp"

int main() {
  using namespace sofia;
  const auto keys = bench::bench_keys();

  std::printf("Analytic online-forgery cost (64-bit MAC, 50 MHz SOFIA core)\n");
  bench::print_rule();
  std::printf("%-34s %14s %14s\n", "attack", "years (model)", "years (paper)");
  bench::print_rule();
  std::printf("%-34s %14.0f %14s\n", "SI forgery (8 cycles/trial)",
              security::forgery_years(64, 8, 50e6), "46,795");
  std::printf("%-34s %14.0f %14s\n", "CFI attack (16 cycles/trial)",
              security::forgery_years(64, 16, 50e6), "93,590");
  bench::print_rule();

  std::printf("\nExpected-trials law, Monte-Carlo vs 2^(n-1) (real CBC-MAC, %s)\n",
              std::string(crypto::to_string(keys.kind)).c_str());
  bench::print_rule();
  std::printf("%-10s %14s %14s %10s\n", "tag bits", "measured", "expected",
              "ratio");
  bench::print_rule();
  Rng rng(20260610);
  for (const unsigned bits : {6u, 8u, 10u, 12u, 14u, 16u}) {
    const auto exp = security::run_forgery_experiment(keys, bits, 3000, rng);
    std::printf("%-10u %14.1f %14.1f %10.3f\n", bits, exp.mean_trials,
                exp.expected_trials, exp.mean_trials / exp.expected_trials);
  }
  bench::print_rule();

  std::printf("\nUndetected-tamper rate vs 2^-n (random single-word tampers)\n");
  bench::print_rule();
  std::printf("%-10s %10s %12s %14s %14s\n", "tag bits", "trials", "undetected",
              "measured", "expected");
  bench::print_rule();
  for (const unsigned bits : {4u, 6u, 8u, 10u, 64u}) {
    const auto exp = security::run_detection_experiment(keys, bits, 30000, rng);
    std::printf("%-10u %10llu %12llu %14.6f %14.6f\n", bits,
                static_cast<unsigned long long>(exp.trials),
                static_cast<unsigned long long>(exp.undetected),
                static_cast<double>(exp.undetected) / static_cast<double>(exp.trials),
                bits >= 63 ? 0.0 : 1.0 / static_cast<double>(1ull << bits));
  }
  bench::print_rule();
  return 0;
}
