// Run-length sensitivity — the decomposition of E3's gap to the paper.
//
// SOFIA's cycle overhead is dominated by block-slot padding: a straight-line
// run of K instructions occupies ceil-to-block slots, so short runs waste
// fetch bandwidth, cipher slots and decode slots on NOPs. SPARC code (the
// paper's substrate) spends 2-3 instructions per branch event (cmp + branch
// + delay slot), so its runs are substantially longer than SR32's fused
// compare-and-branch code.
//
// This bench sweeps the run length directly: a loop whose body is K ALU
// instructions followed by one branch. At K >= ~10 the overhead falls into
// the paper's reported range (low tens of percent), confirming the
// architecture reproduces the paper's numbers under its code
// characteristics.
#include <cstdio>
#include <string>

#include "support/measure.hpp"

namespace {

/// Loop body of `body_insts` instructions. kind "alu": independent adds
/// (IPC ~1 baseline, the worst case for SOFIA). kind "mem": load-use chains
/// as in table-driven code like ADPCM (baseline CPI ~1.5; fetch overhead
/// hides under the stalls — the paper's regime).
std::string loop_program(const std::string& kind, int body_insts, int iterations) {
  std::string src = "main:\n  li r1, " + std::to_string(iterations) + "\n";
  src += "  li r2, 0\n  la r3, buf\n";
  src += "loop:\n";
  for (int i = 0; i < body_insts; ++i) {
    if (kind == "mem" && i % 2 == 0)
      src += "  lw r4, 0(r3)\n";
    else if (kind == "mem")
      src += "  add r2, r2, r4\n";  // immediate load-use
    else
      src += "  addi r2, r2, " + std::to_string(1 + i % 3) + "\n";
  }
  src += "  addi r1, r1, -1\n";
  src += "  bnez r1, loop\n";
  src += "  li r10, 0xFFFF0008\n  sw r2, 0(r10)\n  halt\n";
  src += ".data\nbuf: .word 5\n";
  return src;
}

void sweep(const std::string& kind) {
  using namespace sofia;
  std::printf("\n%s bodies:\n",
              kind == "alu" ? "Independent-ALU (ideal IPC~1 baseline)"
                            : "Load-use-chained (table-lookup style baseline)");
  bench::print_rule(88);
  std::printf("%-12s %10s %10s %8s | %8s %8s | %8s\n", "body insts",
              "cycles(V)", "cycles(S)", "cyc%", "pad%", "IPC(V)", "text x");
  bench::print_rule(88);
  for (const int body : {2, 4, 6, 8, 10, 14, 20, 30, 46}) {
    auto session = pipeline::Pipeline::from_source(
        loop_program(kind, body, 4000),
        pipeline::DeviceProfile::paper_default(),
        kind + "-body" + std::to_string(body));
    const auto& v = session.run_vanilla();
    const auto& s = session.run();
    if (!v.ok() || !s.ok() || v.output != s.output) {
      std::printf("body=%d: RUN MISMATCH\n", body);
      std::exit(1);
    }
    const auto& t = session.hardened();
    const auto& vimg = session.vanilla_image();
    const double pad = 100.0 * static_cast<double>(s.stats.nops) /
                       static_cast<double>(s.stats.insts);
    std::printf("%-12d %10llu %10llu %+7.1f%% | %7.1f%% %8.2f | %7.2f\n", body,
                static_cast<unsigned long long>(v.stats.cycles),
                static_cast<unsigned long long>(s.stats.cycles),
                hw::overhead_pct(static_cast<double>(v.stats.cycles),
                                 static_cast<double>(s.stats.cycles)),
                pad,
                static_cast<double>(v.stats.insts) /
                    static_cast<double>(v.stats.cycles),
                static_cast<double>(t.image.text_bytes()) /
                    static_cast<double>(vimg.text_bytes()));
  }
  bench::print_rule(88);
}

}  // namespace

int main() {
  std::printf("Cycle overhead vs straight-line run length (loop body size)\n");
  sweep("alu");
  sweep("mem");
  std::printf(
      "\npaper reference point: +13.7%% cycles at 2.41x text. SPARC code has\n"
      "2-3x longer runs than SR32 (cmp+branch+delay slot per branch event) and\n"
      "a stall-richer baseline; the load-chained sweep shows SOFIA's fetch\n"
      "overhead collapsing toward the paper's figure in that regime.\n");
  return 0;
}
