#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <limits>
#include <set>

#include "support/bits.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/hex.hpp"
#include "support/io.hpp"
#include "support/rng.hpp"

namespace sofia {
namespace {

TEST(Bits, Rotl16Basics) {
  EXPECT_EQ(rotl16(0x0001, 1), 0x0002);
  EXPECT_EQ(rotl16(0x8000, 1), 0x0001);
  EXPECT_EQ(rotl16(0x1234, 0), 0x1234);
  EXPECT_EQ(rotl16(0x1234, 16), 0x1234);
  EXPECT_EQ(rotl16(0xABCD, 4), 0xBCDA);
}

TEST(Bits, Rotr16InvertsRotl16) {
  for (unsigned n = 0; n < 16; ++n) {
    EXPECT_EQ(rotr16(rotl16(0x5A3C, n), n), 0x5A3C) << n;
  }
}

TEST(Bits, Rotl32AndRotr32) {
  EXPECT_EQ(rotl32(0x80000000u, 1), 1u);
  EXPECT_EQ(rotr32(1u, 1), 0x80000000u);
  for (unsigned n = 0; n < 32; ++n)
    EXPECT_EQ(rotr32(rotl32(0xDEADBEEFu, n), n), 0xDEADBEEFu) << n;
}

TEST(Bits, ExtractInsertRoundTrip) {
  const std::uint32_t w = 0xCAFEBABEu;
  for (unsigned lo = 0; lo < 28; lo += 3) {
    const std::uint32_t field = bits(w, lo, 4);
    EXPECT_EQ(insert_bits(w, lo, 4, field), w);
  }
}

TEST(Bits, InsertMasksValue) {
  EXPECT_EQ(insert_bits(0, 4, 4, 0xFF), 0xF0u);  // value truncated to width
  EXPECT_EQ(insert_bits(0xFFFFFFFFu, 8, 8, 0), 0xFFFF00FFu);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x1FFF, 14), 0x1FFF);
  EXPECT_EQ(sign_extend(0x2000, 14), -8192);
  EXPECT_EQ(sign_extend(0x3FFF, 14), -1);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xFFFFFFFFu, 32), -1);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(8191, 14));
  EXPECT_FALSE(fits_signed(8192, 14));
  EXPECT_TRUE(fits_signed(-8192, 14));
  EXPECT_FALSE(fits_signed(-8193, 14));
  EXPECT_TRUE(fits_signed(0, 1));
  EXPECT_TRUE(fits_signed(-1, 1));
  EXPECT_FALSE(fits_signed(1, 1));
}

TEST(Bits, FitsUnsigned) {
  EXPECT_TRUE(fits_unsigned(0x3FFFF, 18));
  EXPECT_FALSE(fits_unsigned(0x40000, 18));
  EXPECT_TRUE(fits_unsigned(~0ull, 64));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBelowZeroBoundThrows) {
  // Regression: bound 0 used to reach `(0 - bound) % bound` and divide by
  // zero; an empty range is a caller bug and must fail loudly.
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NextRangeEmptyRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_range(3, -3), Error);
  EXPECT_THROW(rng.next_range(1, 0), Error);
  EXPECT_EQ(rng.next_range(5, 5), 5);  // single-point range stays valid
}

TEST(Rng, NextRangeHandlesHugeRanges) {
  // Ranges wider than INT64_MAX used to overflow the signed width
  // computation; width arithmetic is unsigned now.
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.next_range(std::numeric_limits<std::int64_t>::min(),
                                  std::numeric_limits<std::int64_t>::max());
    (void)v;  // any int64 is in range; just must not throw or trap
    const auto w = rng.next_range(-2, std::numeric_limits<std::int64_t>::max());
    ASSERT_GE(w, -2);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, ForkPinnedSequences) {
  // The campaign engine replays any trial from (campaign seed, job index)
  // alone — these derived sequences are part of the replay contract, so a
  // change to fork() must be a deliberate, golden-updating decision.
  Rng parent(42);
  Rng c0 = parent.fork(0);
  EXPECT_EQ(c0.next_u64(), 0xd3320a15e8dd7b4eull);
  EXPECT_EQ(c0.next_u64(), 0xa5145fe5194d8897ull);
  EXPECT_EQ(c0.next_u64(), 0x3dc80cc3f8c504a7ull);
  Rng c1 = parent.fork(1);
  EXPECT_EQ(c1.next_u64(), 0x3d3d9188f30728beull);
  EXPECT_EQ(c1.next_u64(), 0x971af471e944d633ull);
  EXPECT_EQ(c1.next_u64(), 0x008865513c09400aull);
}

TEST(Rng, ForkIsPureOnParent) {
  // fork() must neither advance the parent nor depend on call order: any
  // worker thread can derive job substreams in any order.
  Rng parent(7);
  Rng twin(7);
  const Rng a = parent.fork(5);
  const Rng b = parent.fork(9);
  (void)a;
  (void)b;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(parent.next_u64(), twin.next_u64());
  Rng again(7);
  Rng a2 = again.fork(5);
  Rng a1 = Rng(7).fork(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a1.next_u64(), a2.next_u64());
}

TEST(Rng, ForkStreamsIndependent) {
  // Substreams of one parent must not collide with each other or with the
  // parent's own stream.
  Rng parent(123);
  Rng c0 = parent.fork(0);
  Rng c1 = parent.fork(1);
  int same01 = 0;
  int same0p = 0;
  for (int i = 0; i < 64; ++i) {
    const auto v0 = c0.next_u64();
    same01 += (v0 == c1.next_u64());
    same0p += (v0 == parent.next_u64());
  }
  EXPECT_LT(same01, 2);
  EXPECT_LT(same0p, 2);
}

TEST(Rng, ForkDependsOnParentState) {
  // Forking after consuming parent output yields a different substream:
  // the child is keyed on the parent's *current* state, not its seed.
  Rng fresh(1);
  Rng advanced(1);
  (void)advanced.next_u64();
  Rng a = fresh.fork(3);
  Rng b = advanced.fork(3);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Hex, Formatting) {
  EXPECT_EQ(hex32(0xDEADBEEF), "deadbeef");
  EXPECT_EQ(hex32(0x1), "00000001");
  EXPECT_EQ(hex64(0x123456789ABCDEFull), "0123456789abcdef");
  EXPECT_EQ(hex32_0x(0xFF), "0x000000ff");
}

TEST(Hex, DumpWords) {
  const std::uint32_t words[] = {1, 2, 3, 4, 5};
  const std::string dump = hexdump_words(words, 0x100);
  EXPECT_NE(dump.find("00000100: 00000001 00000002 00000003 00000004"),
            std::string::npos);
  EXPECT_NE(dump.find("00000110: 00000005"), std::string::npos);
}

TEST(Io, RoundTripsBinaryContentExactly) {
  const std::string path =
      "/tmp/sofia_io_test_" + std::to_string(getpid()) + ".bin";
  // Embedded NUL, CR and LF: a text-mode read would mangle at least one.
  const std::string content("a\0b\r\nc\r", 7);
  io::write_file(path, content);
  EXPECT_EQ(io::read_file(path), content);
  const auto bytes = io::read_file_bytes(path);
  ASSERT_EQ(bytes.size(), content.size());
  EXPECT_EQ(bytes[1], 0u);
  io::write_file(path, std::vector<std::uint8_t>{0xDE, 0xAD});
  EXPECT_EQ(io::read_file(path), std::string("\xDE\xAD"));
  std::remove(path.c_str());
}

TEST(Io, FailuresNameThePath) {
  try {
    io::read_file("/nonexistent/sofia/x.txt");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/sofia/x.txt"),
              std::string::npos)
        << e.what();
  }
  try {
    io::write_file("/nonexistent/sofia/x.txt", "data");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/sofia/x.txt"),
              std::string::npos)
        << e.what();
  }
  // A full device: the write itself may be accepted into the buffer, but
  // the post-flush stream check must report failure.
  EXPECT_THROW(io::write_file("/dev/full", "data"), Error);
}

// NIST FIPS 180-4 / CAVP short-message vectors. The result cache keys every
// entry by these digests, so a wrong hash silently poisons the cache.
TEST(Sha256, NistShortVectors) {
  EXPECT_EQ(support::sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(support::sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // The two-block message from FIPS 180-4 appendix B.2.
  EXPECT_EQ(support::sha256_hex(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // The four-block message from the NIST examples (SHA256.pdf, example 3
  // input reused at 112 bytes).
  EXPECT_EQ(support::sha256_hex("abcdefghbcdefghicdefghijdefghijkefghijklfghi"
                                "jklmghijklmnhijklmnoijklmnopjklmnopqklmnopqr"
                                "lmnopqrsmnopqrstnopqrstu"),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, MillionRepeatedA) {
  support::Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(support::to_hex(h.digest()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShotAtEveryChunkSplit) {
  std::string message;
  for (int i = 0; i < 200; ++i) message += static_cast<char>(i * 7 + 3);
  const auto expect = support::sha256(message);
  // Splits straddling the 64-byte block boundary are the interesting ones.
  for (std::size_t split = 0; split <= message.size(); split += 13) {
    support::Sha256 h;
    h.update(std::string_view(message).substr(0, split));
    h.update(std::string_view(message).substr(split));
    EXPECT_EQ(h.digest(), expect) << "split at " << split;
  }
}

TEST(Sha256, UpdateAfterDigestThrows) {
  support::Sha256 h;
  h.update("abc");
  (void)h.digest();
  EXPECT_THROW(h.update("more"), Error);
}

TEST(Sha256, ToHexIsLowercase64Chars) {
  const auto d = support::sha256("abc");
  const std::string hex = support::to_hex(d);
  ASSERT_EQ(hex.size(), 64u);
  for (const char c : hex)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
}

}  // namespace
}  // namespace sofia
