// Tests for the declarative CLI flag parser (src/support/cli.hpp) the five
// tools build their front ends on: typed flags, --flag=value, positional
// handling, the generated usage text and the uniform rejection semantics
// (unknown flag / missing value / malformed number -> exit 2 by
// convention, surfaced here as Result::Status::kError).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/cli.hpp"

namespace sofia::cli {
namespace {

Parser::Result parse(const Parser& p, std::vector<const char*> args) {
  args.insert(args.begin(), "tool");
  return p.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, ParsesTypedFlagsAndOptions) {
  bool verbose = false;
  std::string name;
  std::uint32_t count = 7;
  std::uint64_t seed = 0;
  Parser p("tool");
  p.flag("--verbose", verbose, "chatty")
      .option("--name", name, "s", "a string")
      .option("--count", count, "n", "a u32")
      .option("--seed", seed, "n", "a u64");
  const auto r = parse(p, {"--verbose", "--name", "abc", "--seed", "0x10"});
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "abc");
  EXPECT_EQ(count, 7u);  // untouched default
  EXPECT_EQ(seed, 0x10u);
}

TEST(Cli, AcceptsEqualsSyntax) {
  std::string name;
  std::uint32_t count = 0;
  Parser p("tool");
  p.option("--name", name, "s", "").option("--count", count, "n", "");
  ASSERT_TRUE(parse(p, {"--name=x=y", "--count=12"}).ok());
  EXPECT_EQ(name, "x=y");  // only the first '=' splits
  EXPECT_EQ(count, 12u);
}

TEST(Cli, RejectsUnknownFlags) {
  Parser p("tool");
  const auto r = parse(p, {"--bogus"});
  EXPECT_EQ(r.status, Parser::Result::Status::kError);
  EXPECT_NE(r.message.find("--bogus"), std::string::npos);
  EXPECT_EQ(parse(p, {"-x"}).status, Parser::Result::Status::kError);
}

TEST(Cli, RejectsMissingValuesAndMalformedNumbers) {
  std::uint32_t count = 0;
  Parser p("tool");
  p.option("--count", count, "n", "");
  EXPECT_EQ(parse(p, {"--count"}).status, Parser::Result::Status::kError);
  const auto bad = parse(p, {"--count", "12abc"});
  EXPECT_EQ(bad.status, Parser::Result::Status::kError);
  EXPECT_NE(bad.message.find("12abc"), std::string::npos);
  // Out-of-range for u32.
  EXPECT_EQ(parse(p, {"--count", "4294967296"}).status,
            Parser::Result::Status::kError);
  // A bool flag must not take a value.
  bool b = false;
  Parser q("tool");
  q.flag("--b", b, "");
  EXPECT_EQ(parse(q, {"--b=1"}).status, Parser::Result::Status::kError);
}

TEST(Cli, ChoiceAcceptsOnlyTheListedValues) {
  std::string backend = "cycle";
  Parser p("tool");
  p.choice("--backend", backend, {"cycle", "functional"}, "which simulator");
  ASSERT_TRUE(parse(p, {"--backend", "functional"}).ok());
  EXPECT_EQ(backend, "functional");
  ASSERT_TRUE(parse(p, {"--backend=cycle"}).ok());
  EXPECT_EQ(backend, "cycle");

  const auto bad = parse(p, {"--backend", "warp"});
  EXPECT_EQ(bad.status, Parser::Result::Status::kError);
  // The diagnostic names the rejected value and the accepted set.
  EXPECT_NE(bad.message.find("warp"), std::string::npos) << bad.message;
  EXPECT_NE(bad.message.find("cycle, functional"), std::string::npos)
      << bad.message;
  EXPECT_EQ(backend, "cycle");  // unchanged on error
}

TEST(Cli, ChoiceUsageListsTheChoices) {
  std::string backend;
  std::string cipher;
  Parser p("tool");
  p.choice("--backend", backend, {"cycle", "functional"}, "which simulator")
      .choice("--cipher", cipher, {"rectangle80", "speck64"}, "which cipher");
  const auto u = p.usage();
  EXPECT_NE(u.find("--backend <cycle|functional>"), std::string::npos) << u;
  EXPECT_NE(u.find("--cipher <rectangle80|speck64>"), std::string::npos) << u;
}

TEST(Cli, PositionalsRequiredOptionalAndList) {
  std::string in;
  std::string out;
  Parser p("tool");
  p.positional("in", in).optional_positional("out", out);
  EXPECT_EQ(parse(p, {}).status, Parser::Result::Status::kError);  // in missing
  ASSERT_TRUE(parse(p, {"a.s"}).ok());
  EXPECT_EQ(in, "a.s");
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(parse(p, {"a.s", "b.img"}).ok());
  EXPECT_EQ(out, "b.img");
  EXPECT_EQ(parse(p, {"a", "b", "c"}).status, Parser::Result::Status::kError);

  std::string first;
  std::vector<std::string> rest;
  Parser q("tool");
  q.positional("first", first).positional_list("rest", rest);
  ASSERT_TRUE(parse(q, {"a", "b", "c"}).ok());
  EXPECT_EQ(first, "a");
  EXPECT_EQ(rest, (std::vector<std::string>{"b", "c"}));
}

TEST(Cli, FlagsAndPositionalsMixInAnyOrder) {
  bool quiet = false;
  std::string in;
  std::string out;
  Parser p("tool");
  p.flag("--quiet", quiet, "").positional("in", in).positional("out", out);
  ASSERT_TRUE(parse(p, {"a.s", "--quiet", "b.img"}).ok());
  EXPECT_TRUE(quiet);
  EXPECT_EQ(in, "a.s");
  EXPECT_EQ(out, "b.img");
}

TEST(Cli, HelpShortCircuits) {
  std::string in;
  Parser p("tool");
  p.positional("in", in);
  EXPECT_EQ(parse(p, {"--help"}).status, Parser::Result::Status::kHelp);
  EXPECT_EQ(parse(p, {"-h"}).status, Parser::Result::Status::kHelp);
}

TEST(Cli, UsageNamesEveryFlagAndPositional) {
  bool v = false;
  std::uint32_t n = 0;
  std::string in;
  Parser p("tool", "does a thing");
  p.flag("--verbose", v, "chatty").option("--count", n, "N", "how many");
  p.positional("input.s", in);
  const auto u = p.usage();
  EXPECT_NE(u.find("usage: tool"), std::string::npos) << u;
  EXPECT_NE(u.find("does a thing"), std::string::npos) << u;
  EXPECT_NE(u.find("--verbose"), std::string::npos) << u;
  EXPECT_NE(u.find("--count <N>"), std::string::npos) << u;
  EXPECT_NE(u.find("how many"), std::string::npos) << u;
  EXPECT_NE(u.find("input.s"), std::string::npos) << u;
  EXPECT_NE(u.find("--help"), std::string::npos) << u;
}

TEST(Cli, ParseNumberIsStrict) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_number("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(parse_number("0xff", v));
  EXPECT_EQ(v, 255u);
  EXPECT_FALSE(parse_number("", v));
  EXPECT_FALSE(parse_number("12abc", v));
  EXPECT_FALSE(parse_number("abc", v));
}

TEST(Cli, ParseNumberRejectsAnythingBeforeTheFirstDigit) {
  // Regression: strtoull skips leading whitespace, so " -5" used to pass
  // the old text[0] == '-' sign check and wrap to 18446744073709551611.
  std::uint64_t v = 77;
  EXPECT_FALSE(parse_number(" -5", v));
  EXPECT_FALSE(parse_number("\t-5", v));
  EXPECT_FALSE(parse_number("-5", v));
  EXPECT_FALSE(parse_number("+5", v));
  EXPECT_FALSE(parse_number(" +5", v));
  EXPECT_FALSE(parse_number(" 5", v));
  EXPECT_FALSE(parse_number(" 0x10", v));
  EXPECT_EQ(v, 77u);  // out is untouched on every rejection
  EXPECT_TRUE(parse_number("0x10", v));
  EXPECT_EQ(v, 16u);
}

TEST(Cli, NumericFlagsOfEveryKindRejectWhitespaceNegatives) {
  // The user-visible shape of the same regression: --threads " -5" must be
  // a usage error on both unsigned widths, never a 2^64-ish thread count.
  std::uint32_t threads = 1;
  std::uint64_t seed = 1;
  Parser p("tool");
  p.option("--threads", threads, "N", "").option("--seed", seed, "n", "");
  for (const char* bad : {" -5", "-5", "+5", " 5", " 0x10"}) {
    const auto r32 = parse(p, {"--threads", bad});
    EXPECT_EQ(r32.status, Parser::Result::Status::kError) << "'" << bad << "'";
    EXPECT_NE(r32.message.find(bad), std::string::npos) << r32.message;
    const auto r64 = parse(p, {"--seed", bad});
    EXPECT_EQ(r64.status, Parser::Result::Status::kError) << "'" << bad << "'";
  }
  // The equals syntax goes through the same path.
  EXPECT_EQ(parse(p, {"--threads= -5"}).status, Parser::Result::Status::kError);
  EXPECT_EQ(threads, 1u);
  EXPECT_EQ(seed, 1u);
}

}  // namespace
}  // namespace sofia::cli
