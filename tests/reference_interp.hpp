// A deliberately boring functional interpreter for vanilla images: no
// pipeline, no hazards, no caches — just architectural semantics. Used as
// an independent oracle against the cycle-level machine: any divergence
// means the timing model leaked into the semantics.
#pragma once

#include <cstdint>
#include <string>

#include "assembler/image.hpp"
#include "isa/isa.hpp"
#include "sim/config.hpp"
#include "sim/memory.hpp"
#include "support/bits.hpp"

namespace sofia::test {

struct RefResult {
  bool halted = false;
  int exit_code = 0;
  std::string output;
  std::uint64_t executed = 0;
};

inline RefResult reference_run(const assembler::LoadImage& image,
                               std::uint64_t max_insts = 10'000'000) {
  using isa::Opcode;
  sim::Memory mem;
  mem.load_image(image);
  std::uint32_t regs[16] = {};
  regs[isa::kRegSp] = image.stack_top;
  std::uint32_t pc = image.entry;
  RefResult result;

  auto write = [&](unsigned r, std::uint32_t v) {
    if (r != 0) regs[r] = v;
  };

  while (result.executed < max_insts) {
    const auto decoded = isa::decode(mem.load32(pc));
    if (!decoded) return result;  // undecodable: treated as a stuck machine
    const auto& in = *decoded;
    ++result.executed;
    const std::uint32_t a = regs[in.ra];
    const std::uint32_t b = regs[in.rb];
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    const auto uimm = static_cast<std::uint32_t>(in.imm);
    std::uint32_t next = pc + 4;
    switch (in.op) {
      case Opcode::kNop: break;
      case Opcode::kHalt:
        result.halted = true;
        return result;
      case Opcode::kAdd: write(in.rd, a + b); break;
      case Opcode::kSub: write(in.rd, a - b); break;
      case Opcode::kAnd: write(in.rd, a & b); break;
      case Opcode::kOr: write(in.rd, a | b); break;
      case Opcode::kXor: write(in.rd, a ^ b); break;
      case Opcode::kSll: write(in.rd, a << (b & 31)); break;
      case Opcode::kSrl: write(in.rd, a >> (b & 31)); break;
      case Opcode::kSra:
        write(in.rd, static_cast<std::uint32_t>(sa >> (b & 31)));
        break;
      case Opcode::kSlt: write(in.rd, sa < sb ? 1 : 0); break;
      case Opcode::kSltu: write(in.rd, a < b ? 1 : 0); break;
      case Opcode::kMul: write(in.rd, a * b); break;
      case Opcode::kAddi: write(in.rd, a + uimm); break;
      case Opcode::kAndi: write(in.rd, a & uimm); break;
      case Opcode::kOri: write(in.rd, a | uimm); break;
      case Opcode::kXori: write(in.rd, a ^ uimm); break;
      case Opcode::kSlli: write(in.rd, a << (uimm & 31)); break;
      case Opcode::kSrli: write(in.rd, a >> (uimm & 31)); break;
      case Opcode::kSrai:
        write(in.rd, static_cast<std::uint32_t>(sa >> (uimm & 31)));
        break;
      case Opcode::kSlti: write(in.rd, sa < in.imm ? 1 : 0); break;
      case Opcode::kSltiu: write(in.rd, a < uimm ? 1 : 0); break;
      case Opcode::kLui: write(in.rd, uimm << 14); break;
      case Opcode::kLw: write(in.rd, mem.load32(a + uimm)); break;
      case Opcode::kLh:
        write(in.rd, static_cast<std::uint32_t>(
                         sign_extend(mem.load16(a + uimm), 16)));
        break;
      case Opcode::kLhu: write(in.rd, mem.load16(a + uimm)); break;
      case Opcode::kLb:
        write(in.rd, static_cast<std::uint32_t>(
                         sign_extend(mem.load8(a + uimm), 8)));
        break;
      case Opcode::kLbu: write(in.rd, mem.load8(a + uimm)); break;
      case Opcode::kSw:
      case Opcode::kSh:
      case Opcode::kSb: {
        const std::uint32_t addr = a + uimm;
        const std::uint32_t value = regs[in.rd];
        if (addr >= sim::kMmioConsole) {
          if (addr == sim::kMmioConsole) {
            result.output.push_back(static_cast<char>(value & 0xFF));
          } else if (addr == sim::kMmioExit) {
            result.exit_code = static_cast<int>(value);
            result.halted = true;
            return result;
          } else if (addr == sim::kMmioPutInt) {
            result.output += std::to_string(static_cast<std::int32_t>(value));
            result.output.push_back('\n');
          }
        } else if (in.op == Opcode::kSw) {
          mem.store32(addr, value);
        } else if (in.op == Opcode::kSh) {
          mem.store16(addr, static_cast<std::uint16_t>(value));
        } else {
          mem.store8(addr, static_cast<std::uint8_t>(value));
        }
        break;
      }
      case Opcode::kBeq: if (a == b) next = pc + uimm * 4; break;
      case Opcode::kBne: if (a != b) next = pc + uimm * 4; break;
      case Opcode::kBlt: if (sa < sb) next = pc + uimm * 4; break;
      case Opcode::kBge: if (sa >= sb) next = pc + uimm * 4; break;
      case Opcode::kBltu: if (a < b) next = pc + uimm * 4; break;
      case Opcode::kBgeu: if (a >= b) next = pc + uimm * 4; break;
      case Opcode::kJal:
        write(in.rd, pc + 4);
        next = pc + uimm * 4;
        break;
      case Opcode::kJalr:
        next = (a + uimm) & ~3u;
        write(in.rd, pc + 4);
        break;
    }
    pc = next;
  }
  return result;
}

}  // namespace sofia::test
