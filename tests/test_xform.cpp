#include <gtest/gtest.h>

#include "assembler/program.hpp"
#include "cfg/cfg.hpp"
#include "crypto/cbc_mac.hpp"
#include "crypto/ctr.hpp"
#include "sim_test_util.hpp"
#include "support/error.hpp"
#include "xform/transform.hpp"

namespace sofia::xform {
namespace {

using test::test_keys;

TransformResult tx(const std::string& src, Options opts = {}) {
  return transform(assembler::assemble(src), test_keys(), opts);
}

TEST(BlockPolicy, Defaults) {
  const auto p = BlockPolicy::paper_default();
  EXPECT_EQ(p.words_per_block, 8u);
  EXPECT_EQ(p.exec_insts(), 6u);
  EXPECT_EQ(p.mux_insts(), 5u);
  EXPECT_EQ(p.store_min_word, 4u);
  EXPECT_NO_THROW(p.validate());
  const auto s = BlockPolicy::small_unrestricted();
  EXPECT_EQ(s.exec_insts(), 4u);
  EXPECT_EQ(s.store_min_word, 0u);
}

TEST(BlockPolicy, Validation) {
  EXPECT_THROW((BlockPolicy{4, 0}).validate(), TransformError);
  EXPECT_THROW((BlockPolicy{7, 0}).validate(), TransformError);
  EXPECT_THROW((BlockPolicy{8, 8}).validate(), TransformError);
}

TEST(Layout, StraightLinePacksIntoExecBlocks) {
  const auto result = tx(R"(
main:
  addi r1, r0, 1
  addi r2, r0, 2
  addi r3, r0, 3
  addi r4, r0, 4
  addi r5, r0, 5
  halt
)");
  // Six instructions, the last is control -> exactly one 8-word exec block.
  EXPECT_EQ(result.layout.blocks().size(), 1u);
  EXPECT_EQ(result.layout.blocks()[0].kind, BlockKind::kExec);
  EXPECT_EQ(result.stats.text_bytes_out, 32u);
}

TEST(Layout, ControlAlwaysAtExitSlot) {
  const auto result = tx(R"(
main:
  addi r1, r0, 1
  halt
)");
  const auto& block = result.layout.blocks()[0];
  EXPECT_EQ(block.insts.back().inst.op, isa::Opcode::kHalt);
  // Padding NOPs between.
  EXPECT_EQ(result.stats.layout.pad_nops, 4u);
}

TEST(Layout, StoreRestrictionPadsToWord4) {
  const auto result = tx(R"(
main:
  la r1, buf
  sw r0, 0(r1)
  halt
.data
buf: .word 0
)");
  const auto& block = result.layout.blocks()[0];
  // la = 2 insts (slots 0,1 = words 2,3); store must be at word >= 4 (slot 2).
  EXPECT_EQ(block.insts[2].inst.op, isa::Opcode::kSw);
}

TEST(Layout, StoreFirstGetsLeadingNops) {
  const auto result = tx(R"(
main:
  sw r0, 0(r1)
  halt
)");
  const auto& block = result.layout.blocks()[0];
  EXPECT_EQ(block.insts[0].inst.op, isa::Opcode::kNop);
  EXPECT_EQ(block.insts[1].inst.op, isa::Opcode::kNop);
  EXPECT_EQ(block.insts[2].inst.op, isa::Opcode::kSw);
}

TEST(Layout, UnrestrictedPolicyAllowsEarlyStores) {
  Options opts;
  opts.policy = BlockPolicy::small_unrestricted();
  const auto result = tx(R"(
main:
  sw r0, 0(r1)
  halt
)",
                         opts);
  const auto& block = result.layout.blocks()[0];
  EXPECT_EQ(block.insts[0].inst.op, isa::Opcode::kSw);
}

TEST(Layout, JoinGetsMuxBlock) {
  const auto result = tx(R"(
main:
  beq r1, r2, join
  j join
join:
  halt
)");
  // The join leader must start with a multiplexor block.
  std::uint32_t mux_count = 0;
  for (const auto& b : result.layout.blocks())
    if (b.kind == BlockKind::kMux) ++mux_count;
  EXPECT_GE(mux_count, 1u);
  EXPECT_GE(result.stats.layout.mux_blocks, 1u);
}

TEST(Layout, FourCallersBuildForwardingTree) {
  const auto result = tx(R"(
main:
  call f
  call f
  call f
  call f
  halt
f:
  ret
)");
  // p=5 preds... 4 call sites -> f's entry has 4 preds -> 2 forwarding
  // blocks (p-2) per Fig. 9.
  EXPECT_EQ(result.stats.layout.forward_blocks, 2u);
}

TEST(Layout, TwoCallersNeedNoForwarding) {
  const auto result = tx(R"(
main:
  call f
  call f
  halt
f:
  ret
)");
  EXPECT_EQ(result.stats.layout.forward_blocks, 0u);
  EXPECT_GE(result.stats.layout.mux_blocks, 1u);
}

TEST(Layout, BranchFallIntoJoinCreatesThunk) {
  const auto result = tx(R"(
main:
  beq r1, r2, other
  beq r3, r4, join    ; not-taken side falls into join (a join leader)
join:
  halt
other:
  j join
)");
  EXPECT_GE(result.stats.layout.thunk_blocks, 1u);
}

TEST(Layout, BlockAddressesAreBlockAligned) {
  const auto result = tx(R"(
main:
  call f
  call f
  halt
f:
  addi r1, r1, 1
  ret
)");
  const auto b = result.layout.policy().words_per_block;
  for (const auto& block : result.layout.blocks())
    EXPECT_EQ(block.base_word % b, 0u) << block.id;
}

TEST(Layout, PlacedAddrTracksInstructions) {
  const auto result = tx(R"(
main:
  addi r1, r0, 7
  halt
)");
  // First instruction sits at word 2 (after 2 MAC words).
  EXPECT_EQ(result.layout.placed_addr(0), 8u);
}

TEST(Layout, VerifyInvariantsOnLargerProgram) {
  // A mix of joins, calls, loops, stores; relies on the packer's own
  // verify() plus external invariant checks here.
  const auto result = tx(R"(
main:
  addi r5, r0, 3
loop:
  call f
  addi r5, r5, -1
  bnez r5, loop
  la r1, out
  sw r6, 0(r1)
  halt
f:
  addi r6, r6, 10
  beqz r6, skip
  addi r6, r6, 1
skip:
  ret
.data
out: .word 0
)");
  const auto& policy = result.layout.policy();
  for (const auto& block : result.layout.blocks()) {
    const std::uint32_t cap = block.kind == BlockKind::kExec
                                  ? policy.exec_insts()
                                  : policy.mux_insts();
    ASSERT_EQ(block.insts.size(), cap);
    const std::uint32_t macs = policy.words_per_block - cap;
    for (std::size_t s = 0; s < block.insts.size(); ++s) {
      const auto op = block.insts[s].inst.op;
      if (isa::is_control(op)) {
        EXPECT_EQ(s + 1, block.insts.size());
      }
      if (isa::is_store(op)) {
        EXPECT_GE(macs + s, policy.store_min_word);
      }
    }
  }
}

TEST(Transform, ImageGeometry) {
  const auto result = tx("main:\n addi r1, r0, 1\n halt\n");
  EXPECT_TRUE(result.image.sofia);
  EXPECT_EQ(result.image.text.size() % 8, 0u);
  EXPECT_EQ(result.image.omega, test_keys().omega);
  EXPECT_EQ(result.image.entry, 0u);  // single exec block at text base 0
}

TEST(Transform, CiphertextDiffersFromPlaintext) {
  const auto result = tx("main:\n addi r1, r0, 1\n halt\n");
  const auto plain =
      block_plaintext(result.layout, result.layout.blocks()[0], test_keys());
  ASSERT_EQ(plain.size(), result.image.text.size());
  int same = 0;
  for (std::size_t i = 0; i < plain.size(); ++i)
    same += (plain[i] == result.image.text[i]);
  EXPECT_LE(same, 1);  // 2^-32 per-word collision chance
}

TEST(Transform, MacThenEncryptRoundTrip) {
  // Manually decrypt the single block and re-verify the MAC: the stored
  // tag must match a CBC-MAC over the decrypted instruction words.
  const auto keys = test_keys();
  const auto result = tx("main:\n addi r1, r0, 5\n halt\n");
  const auto& block = result.layout.blocks()[0];
  const auto enc = keys.encryption_cipher();
  std::vector<std::uint32_t> plain(8);
  for (std::uint32_t j = 0; j < 8; ++j) {
    const std::uint32_t prev =
        j == 0 ? block.pred1_word : block.base_word + j - 1;
    plain[j] = result.image.text[j] ^
               crypto::keystream32(*enc, keys.omega, prev, block.base_word + j);
  }
  const auto mac_cipher = keys.exec_mac_cipher();
  const std::uint64_t tag =
      crypto::cbc_mac64(*mac_cipher, std::span(plain).subspan(2));
  EXPECT_EQ(crypto::mac_word1(tag), plain[0]);
  EXPECT_EQ(crypto::mac_word2(tag), plain[1]);
}

TEST(Transform, EntryBlockUsesResetPrev) {
  const auto result = tx("main:\n addi r1, r0, 1\n halt\n");
  EXPECT_EQ(result.layout.blocks()[0].pred1_word, assembler::kResetPrevWord);
  EXPECT_EQ(result.image.entry_prev, assembler::kResetPrevWord);
}

TEST(Transform, MuxEntryAddressesDifferPerPredecessor) {
  const auto result = tx(R"(
main:
  call f
  call f
  halt
f:
  ret
)");
  const auto& norm = result.normalized;
  const std::uint32_t f_entry = norm.text_labels.at("f");
  // The two call instructions must target different entry words.
  std::vector<std::uint32_t> targets;
  for (const auto& block : result.layout.blocks()) {
    for (std::size_t s = 0; s < block.insts.size(); ++s) {
      const auto& pi = block.insts[s];
      if (pi.inst.op == isa::Opcode::kJal && pi.target_leader == f_entry) {
        const std::uint32_t macs = result.layout.policy().words_per_block -
                                   static_cast<std::uint32_t>(block.insts.size());
        const std::uint32_t word =
            block.base_word + macs + static_cast<std::uint32_t>(s);
        targets.push_back(word + static_cast<std::uint32_t>(pi.inst.imm));
      }
    }
  }
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_NE(targets[0], targets[1]);
  // And the two targets are within the same mux block at offsets 1 and 2.
  const std::uint32_t b = result.layout.policy().words_per_block;
  EXPECT_EQ(targets[0] / b, targets[1] / b);
  const std::uint32_t off0 = targets[0] % b;
  const std::uint32_t off1 = targets[1] % b;
  EXPECT_TRUE((off0 == 1 && off1 == 2) || (off0 == 2 && off1 == 1));
}

TEST(Transform, CodeSizeExpansionInPaperBallpark) {
  // A call-heavy program similar in flavor to transformed ADPCM: the paper
  // reports 2.41x text expansion. Accept a broad band.
  const auto result = tx(R"(
main:
  addi r5, r0, 10
loop:
  call work
  addi r5, r5, -1
  bnez r5, loop
  halt
work:
  addi r6, r6, 1
  beqz r6, skip
  addi r6, r6, 2
skip:
  add r7, r6, r5
  ret
)");
  EXPECT_GT(result.stats.expansion(), 1.3);
  EXPECT_LT(result.stats.expansion(), 8.0);
}

TEST(Transform, PerPairFlagPropagates) {
  Options opts;
  opts.granularity = crypto::Granularity::kPerPair;
  const auto result = tx("main:\n addi r1, r0, 1\n halt\n", opts);
  EXPECT_TRUE(result.image.per_pair);
}

TEST(Transform, DataRelocationsResolveToPlacedText) {
  const auto result = tx(R"(
main:
  la r1, tbl
  lw r2, 0(r1)
  halt
f:
  ret
.data
tbl: .word f
)");
  // The .word f slot holds f's placed address, which must point into a
  // block's instruction area (word offset >= 2).
  const std::uint32_t addr = static_cast<std::uint32_t>(result.image.data[0]) |
                             (static_cast<std::uint32_t>(result.image.data[1]) << 8) |
                             (static_cast<std::uint32_t>(result.image.data[2]) << 16) |
                             (static_cast<std::uint32_t>(result.image.data[3]) << 24);
  const std::uint32_t f_index = result.normalized.text_labels.at("f");
  EXPECT_EQ(addr, result.layout.placed_addr(f_index));
}

TEST(Transform, SmallPolicyProducesSmallerBlocks) {
  Options small;
  small.policy = BlockPolicy::small_unrestricted();
  const auto result = tx("main:\n addi r1, r0, 1\n halt\n", small);
  EXPECT_EQ(result.image.text.size() % 6, 0u);
}

TEST(Transform, BranchOffsetOverflowDiagnosed) {
  // A conditional branch reaches +-8K words; blocking stretches distances
  // (8 words per 6 instructions), so a ~7.5K-instruction gap overflows
  // after the transform even though the vanilla link would still fit.
  std::string src = "main:\n  beq r1, r2, far\n";
  for (int i = 0; i < 7500; ++i) src += "  addi r1, r1, 1\n";
  src += "far:\n  halt\n";
  EXPECT_NO_THROW(assembler::link_vanilla(assembler::assemble(src)));
  EXPECT_THROW(tx(src), TransformError);
}

TEST(Transform, JalReachesFarTargets) {
  // jal has 22-bit reach: the same distance is fine for calls/jumps.
  std::string src = "main:\n  j far\n";
  for (int i = 0; i < 7500; ++i) src += "  addi r1, r1, 1\n";
  src += "far:\n  halt\n";
  EXPECT_NO_THROW(tx(src));
}

// ---------------------------------------------------------------------------
// Dead-code elision (toolchain optimization, off by default).
// ---------------------------------------------------------------------------

constexpr char kDeadCodeProgram[] = R"(
main:
  li r1, 2
  halt
dead:
  addi r2, r2, 1
  addi r2, r2, 2
  addi r2, r2, 3
  addi r2, r2, 4
  addi r2, r2, 5
  j dead
)";

TEST(Elision, DefaultKeepsUnreachableCode) {
  const auto result = tx(kDeadCodeProgram);
  EXPECT_EQ(result.stats.layout.elided_insts, 0u);
  EXPECT_GE(result.layout.blocks().size(), 2u);
}

TEST(Elision, DropsUnreachableBlocks) {
  Options opts;
  opts.elide_unreachable = true;
  const auto kept = tx(kDeadCodeProgram);
  const auto elided = tx(kDeadCodeProgram, opts);
  EXPECT_EQ(elided.stats.layout.elided_insts, 6u);
  EXPECT_LT(elided.image.text.size(), kept.image.text.size());
}

TEST(Elision, ElidedProgramStillRuns) {
  Options opts;
  opts.elide_unreachable = true;
  const auto keys = test_keys();
  const auto result =
      transform(assembler::assemble(kDeadCodeProgram), keys, opts);
  sim::SimConfig config;
  config.keys = keys;
  const auto run = sim::run_image(result.image, config);
  EXPECT_EQ(run.status, sim::RunResult::Status::kHalted);
}

TEST(Elision, ReferenceIntoElidedCodeFails) {
  Options opts;
  opts.elide_unreachable = true;
  EXPECT_THROW(tx(R"(
main:
  la r1, dead      ; address taken, but never branched/called to
  halt
dead:
  nop
  halt
)",
                  opts),
               TransformError);
}

TEST(Elision, DevirtTargetsStayReachable) {
  // Functions only reachable through a devirtualized pointer must survive
  // elision (the dispatch materializes direct call edges).
  Options opts;
  opts.elide_unreachable = true;
  const auto keys = test_keys();
  const auto result = transform(assembler::assemble(R"(
main:
  la r4, f
  li r1, 1
  .targets f, g
  jalr lr, r4
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
f:
  addi r1, r1, 10
  ret
g:
  addi r1, r1, 20
  ret
)"),
                                keys, opts);
  EXPECT_EQ(result.stats.layout.elided_insts, 0u);
  sim::SimConfig config;
  config.keys = keys;
  const auto run = sim::run_image(result.image, config);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.output, "11\n");
}

}  // namespace
}  // namespace sofia::xform
