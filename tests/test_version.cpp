// Build smoke test: verifies the CMake glue itself — that the library was
// compiled from this tree (version injection), under the C++ standard the
// root CMakeLists demands.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

#include "support/version.hpp"

#ifndef SOFIA_EXPECTED_VERSION
#error "SOFIA_EXPECTED_VERSION must be defined by tests/CMakeLists.txt"
#endif

namespace {

TEST(Version, MatchesProjectVersion) {
  EXPECT_STREQ(sofia::version_string(), SOFIA_EXPECTED_VERSION);
}

TEST(Version, LooksSemantic) {
  const std::string v = sofia::version_string();
  ASSERT_FALSE(v.empty());
  EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(v.front()))) << v;
  EXPECT_EQ(std::count(v.begin(), v.end(), '.'), 2) << v;
  EXPECT_EQ(v.find("unbuilt"), std::string::npos)
      << "library compiled outside the CMake build";
}

TEST(Version, BuiltAsCxx20) {
#if defined(_MSVC_LANG)
  // MSVC keeps __cplusplus at 199711L unless /Zc:__cplusplus is passed.
  EXPECT_GE(_MSVC_LANG, 202002L);
#else
  EXPECT_GE(__cplusplus, 202002L);
#endif
}

}  // namespace
