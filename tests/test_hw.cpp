#include <gtest/gtest.h>

#include "hw/hw_model.hpp"

namespace sofia::hw {
namespace {

TEST(HwModel, VanillaMatchesTable1) {
  const HwModel model;
  const auto e = model.vanilla();
  EXPECT_DOUBLE_EQ(e.slices, 5889.0);
  EXPECT_NEAR(e.clock_mhz, 92.3, 0.05);
}

TEST(HwModel, SofiaTwoCycleMatchesTable1) {
  const HwModel model;
  const auto e = model.sofia(2);
  EXPECT_DOUBLE_EQ(e.slices, 7551.0);
  EXPECT_NEAR(e.clock_mhz, 50.1, 0.05);
}

TEST(HwModel, Table1Deltas) {
  const HwModel model;
  const auto v = model.vanilla();
  const auto s = model.sofia(2);
  // Paper: area +28.2%, clock period 1.846x (the "84.6% slower" clock).
  EXPECT_NEAR(overhead_pct(v.slices, s.slices), 28.2, 0.05);
  EXPECT_NEAR(overhead_pct(v.period_ns, s.period_ns), 84.6, 0.5);
}

TEST(HwModel, RoundInstances) {
  const HwModel model;
  EXPECT_EQ(model.round_instances(1), 26);
  EXPECT_EQ(model.round_instances(2), 13);
  EXPECT_EQ(model.round_instances(4), 7);
  EXPECT_EQ(model.round_instances(13), 2);
  EXPECT_EQ(model.round_instances(26), 1);
}

TEST(HwModel, DeeperUnrollCostsAreaBuysClock) {
  const HwModel model;
  const auto full = model.sofia(1);    // fully combinational: 26 rounds
  const auto paper = model.sofia(2);
  const auto iter = model.sofia(26);   // one round instance, 26 cycles
  EXPECT_GT(full.slices, paper.slices);
  EXPECT_GT(paper.slices, iter.slices);
  EXPECT_LT(full.clock_mhz, paper.clock_mhz);
  EXPECT_LT(paper.clock_mhz, iter.clock_mhz);
}

TEST(HwModel, IterativeCipherLeavesClockUntouched) {
  const HwModel model;
  // With few enough rounds per cycle the CPU path dominates again.
  const auto e = model.sofia(26);
  EXPECT_NEAR(e.clock_mhz, model.vanilla().clock_mhz, 1e-9);
}

TEST(HwModel, ClockMonotoneInUnrollCycles) {
  const HwModel model;
  double prev = 0;
  for (const int cycles : {1, 2, 3, 4, 6, 13, 26}) {
    const auto e = model.sofia(cycles);
    EXPECT_GE(e.clock_mhz, prev) << cycles;
    prev = e.clock_mhz;
  }
}

TEST(HwModel, ExecutionTimeHelpers) {
  EXPECT_DOUBLE_EQ(execution_time_ms(50'000'000, 50.0), 1000.0);
  EXPECT_NEAR(overhead_pct(100.0, 210.0), 110.0, 1e-9);
}

TEST(HwModel, PaperExecutionTimeOverheadFromReportedNumbers) {
  // Sanity: plugging the paper's own cycle counts and clocks into the
  // helpers reproduces the reported ~110% total execution-time overhead.
  const double vanilla_ms = execution_time_ms(114'188'673, 92.3);
  const double sofia_ms = execution_time_ms(130'840'013, 50.1);
  EXPECT_NEAR(overhead_pct(vanilla_ms, sofia_ms), 110.0, 2.0);
}

}  // namespace
}  // namespace sofia::hw
