// Integration tests for the command-line tools (sofia_asm / sofia_run /
// sofia_objdump), exercised as real subprocesses. Tool paths are injected
// by CMake.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "scheme/scheme.hpp"
#include "sim/backend.hpp"

#if !defined(SOFIA_ASM_BIN) || !defined(SOFIA_RUN_BIN) ||      \
    !defined(SOFIA_OBJDUMP_BIN) || !defined(SOFIA_REPORT_BIN) || \
    !defined(SOFIA_SWEEP_BIN) || !defined(SOFIA_WORKER_BIN) || \
    !defined(SOFIA_FLEET_BIN) || !defined(SOFIA_LINT_BIN) || \
    !defined(SOFIA_ATTACK_BIN) || !defined(SOFIA_CACHE_BIN)
#error "SOFIA_ASM_BIN / SOFIA_RUN_BIN / SOFIA_OBJDUMP_BIN / SOFIA_REPORT_BIN \
/ SOFIA_SWEEP_BIN / SOFIA_WORKER_BIN / SOFIA_FLEET_BIN / SOFIA_LINT_BIN / \
SOFIA_ATTACK_BIN / SOFIA_CACHE_BIN must be injected by the build: configure \
with -DSOFIA_BUILD_TOOLS=ON so \
tests/CMakeLists.txt can define them from $<TARGET_FILE:...>"
#endif

namespace {

std::string run_command(const std::string& command, int* exit_code) {
  std::array<char, 512> buffer;
  std::string output;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr)
    output += buffer.data();
  const int status = pclose(pipe);
  *exit_code = WEXITSTATUS(status);
  return output;
}

const char* kSource = R"(
main:
  li r1, 11
  call triple
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  li r2, 0xFFFF0004
  sw r1, 0(r2)
  halt
triple:
  add r2, r1, r1
  add r1, r1, r2
  ret
)";

class Tools : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest -j runs each test case as its own process; per-PID paths keep
    // concurrent cases from racing on shared scratch files.
    const std::string tag = std::to_string(getpid());
    src_ = "/tmp/sofia_tools_test_" + tag + ".s";
    img_ = "/tmp/sofia_tools_test_" + tag + ".img";
    std::ofstream out(src_);
    out << kSource;
  }
  void TearDown() override {
    std::remove(src_.c_str());
    std::remove(img_.c_str());
  }
  std::string src_;
  std::string img_;
};

TEST_F(Tools, AssembleRunSofia) {
  int code = 0;
  const auto asm_out = run_command(
      std::string(SOFIA_ASM_BIN) + " --key-seed 5 " + src_ + " " + img_, &code);
  ASSERT_EQ(code, 0) << asm_out;
  EXPECT_NE(asm_out.find("SOFIA image"), std::string::npos);

  const auto run_out = run_command(
      std::string(SOFIA_RUN_BIN) + " --key-seed 5 " + img_, &code);
  EXPECT_EQ(code, 33);  // exit code = 3 * 11 via the MMIO exit register
  EXPECT_NE(run_out.find("33"), std::string::npos) << run_out;
  EXPECT_NE(run_out.find("status=exited"), std::string::npos) << run_out;
}

TEST_F(Tools, WrongKeySeedResets) {
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN) + " --quiet --key-seed 5 " + src_ +
                  " " + img_, &code);
  ASSERT_EQ(code, 0);
  const auto run_out = run_command(
      std::string(SOFIA_RUN_BIN) + " --key-seed 6 " + img_, &code);
  EXPECT_EQ(code, 3);
  EXPECT_NE(run_out.find("status=reset"), std::string::npos) << run_out;
  EXPECT_NE(run_out.find("mac-mismatch"), std::string::npos) << run_out;
}

TEST_F(Tools, VanillaPath) {
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN) + " --vanilla --quiet " + src_ + " " +
                  img_, &code);
  ASSERT_EQ(code, 0);
  const auto run_out = run_command(std::string(SOFIA_RUN_BIN) + " " + img_, &code);
  EXPECT_EQ(code, 33);
  EXPECT_NE(run_out.find("[vanilla core]"), std::string::npos) << run_out;
}

TEST_F(Tools, ObjdumpShowsCiphertextForSofia) {
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN) + " --quiet " + src_ + " " + img_,
              &code);
  ASSERT_EQ(code, 0);
  const auto dump = run_command(std::string(SOFIA_OBJDUMP_BIN) + " " + img_, &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(dump.find("ciphertext only"), std::string::npos) << dump;
  // No disassembly of the protected text.
  EXPECT_EQ(dump.find("addi"), std::string::npos) << dump;
}

TEST_F(Tools, ObjdumpDisassemblesVanilla) {
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN) + " --vanilla --quiet " + src_ + " " +
                  img_, &code);
  const auto dump = run_command(std::string(SOFIA_OBJDUMP_BIN) + " " + img_, &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(dump.find("add r2, r1, r1"), std::string::npos) << dump;
}

TEST_F(Tools, StatsFlagPrintsCounters) {
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN) + " --quiet " + src_ + " " + img_,
              &code);
  const auto run_out = run_command(
      std::string(SOFIA_RUN_BIN) + " --stats " + img_, &code);
  EXPECT_NE(run_out.find("verifications="), std::string::npos) << run_out;
}

TEST_F(Tools, ReportRunsHealthy) {
  int code = 0;
  const auto out = run_command(std::string(SOFIA_REPORT_BIN) + " --quick", &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("Table I"), std::string::npos);
  EXPECT_NE(out.find("46795"), std::string::npos);
}

TEST_F(Tools, BadUsageExitsNonZero) {
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN), &code);
  EXPECT_NE(code, 0);
  run_command(std::string(SOFIA_RUN_BIN) + " /nonexistent.img", &code);
  EXPECT_NE(code, 0);
}

TEST_F(Tools, ReportRejectsUnknownFlag) {
  // Regression: flags used to be recognized only as exactly argv[1];
  // anything else silently ran the full (slow) report.
  int code = 0;
  const auto out = run_command(std::string(SOFIA_REPORT_BIN) + " --bogus", &code);
  EXPECT_EQ(code, 2) << out;
  EXPECT_NE(out.find("usage"), std::string::npos) << out;
  EXPECT_NE(out.find("--bogus"), std::string::npos) << out;
}

TEST_F(Tools, ReportAcceptsFlagsInAnyPosition) {
  int code = 0;
  const auto out = run_command(
      std::string(SOFIA_REPORT_BIN) + " --threads 2 --quick", &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("Table I"), std::string::npos) << out;
}

TEST_F(Tools, SweepSmokeJsonIdenticalAcrossThreadCounts) {
  const std::string tag = std::to_string(getpid());
  const std::string json1 = "/tmp/sofia_sweep_" + tag + "_t1.json";
  const std::string json8 = "/tmp/sofia_sweep_" + tag + "_t8.json";
  int code = 0;
  const auto out1 = run_command(std::string(SOFIA_SWEEP_BIN) +
                                    " --smoke --quiet --threads 1 --json " +
                                    json1, &code);
  EXPECT_EQ(code, 0) << out1;
  const auto out8 = run_command(std::string(SOFIA_SWEEP_BIN) +
                                    " --smoke --quiet --threads 8 --json " +
                                    json8, &code);
  EXPECT_EQ(code, 0) << out8;
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto doc1 = slurp(json1);
  EXPECT_FALSE(doc1.empty());
  EXPECT_EQ(doc1, slurp(json8));
  EXPECT_NE(doc1.find("\"schema\": \"sofia-sweep-v5\""), std::string::npos);
  std::remove(json1.c_str());
  std::remove(json8.c_str());
}

TEST_F(Tools, AssembleRunSpeck64) {
  // The --cipher axis round-trips: a Speck64-keyed image is runnable from
  // the CLI when the device profile names the same cipher.
  int code = 0;
  const auto asm_out = run_command(
      std::string(SOFIA_ASM_BIN) + " --cipher speck64 --key-seed 5 " + src_ +
          " " + img_, &code);
  ASSERT_EQ(code, 0) << asm_out;
  const auto run_out = run_command(
      std::string(SOFIA_RUN_BIN) + " --cipher speck64 --key-seed 5 " + img_,
      &code);
  EXPECT_EQ(code, 33) << run_out;
  EXPECT_NE(run_out.find("status=exited"), std::string::npos) << run_out;
}

TEST_F(Tools, FunctionalBackendRunsAndAgrees) {
  // sofia_run --backend functional executes the same hardened image with
  // identical architectural results (exit code via the MMIO exit register).
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN) + " --quiet --key-seed 5 " + src_ +
                  " " + img_, &code);
  ASSERT_EQ(code, 0);
  const auto run_out = run_command(std::string(SOFIA_RUN_BIN) +
                                       " --backend functional --key-seed 5 " +
                                       img_, &code);
  EXPECT_EQ(code, 33) << run_out;
  EXPECT_NE(run_out.find("status=exited"), std::string::npos) << run_out;
  EXPECT_NE(run_out.find("backend=functional"), std::string::npos) << run_out;
}

TEST_F(Tools, FunctionalBackendStillResetsOnKeyMismatch) {
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN) + " --quiet --key-seed 5 " + src_ +
                  " " + img_, &code);
  ASSERT_EQ(code, 0);
  const auto run_out = run_command(std::string(SOFIA_RUN_BIN) +
                                       " --backend functional --key-seed 6 " +
                                       img_, &code);
  EXPECT_EQ(code, 3) << run_out;
  EXPECT_NE(run_out.find("status=reset"), std::string::npos) << run_out;
  EXPECT_NE(run_out.find("mac-mismatch"), std::string::npos) << run_out;
}

TEST_F(Tools, UnknownBackendRejectedWithChoices) {
  int code = 0;
  const auto out = run_command(
      std::string(SOFIA_RUN_BIN) + " --backend warp " + img_, &code);
  EXPECT_EQ(code, 2) << out;
  EXPECT_NE(out.find("invalid value 'warp'"), std::string::npos) << out;
  EXPECT_NE(out.find("cycle, functional"), std::string::npos) << out;
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
}

TEST_F(Tools, ReportSuppressesTimingRowsForFunctionalBackend) {
  // The functional backend's "cycles" are instruction counts; the report
  // must refuse to present them as the paper's timing reproduction.
  int code = 0;
  const auto out = run_command(
      std::string(SOFIA_REPORT_BIN) + " --quick --backend functional", &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("n/a"), std::string::npos) << out;
  EXPECT_NE(out.find("not cycle-accurate"), std::string::npos) << out;
  EXPECT_NE(out.find("ADPCM text expansion"), std::string::npos) << out;
}

TEST_F(Tools, SweepFunctionalBackendLandsInTheDocument) {
  const std::string tag = std::to_string(getpid());
  const std::string json = "/tmp/sofia_sweep_" + tag + "_fn.json";
  int code = 0;
  const auto out = run_command(std::string(SOFIA_SWEEP_BIN) +
                                   " --smoke --quiet --backend functional "
                                   "--threads 2 --json " + json, &code);
  EXPECT_EQ(code, 0) << out;
  std::ifstream in(json, std::ios::binary);
  const std::string doc((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(doc.find("\"backend\": \"functional\""), std::string::npos);
  EXPECT_NE(doc.find("backend=functional"), std::string::npos);  // fingerprint
  std::remove(json.c_str());
}

TEST_F(Tools, CipherMismatchResetsInsteadOfCrashing) {
  // Image built for a Speck64 device, run on the default RECTANGLE-80
  // device: architectural reset (mac-mismatch), exit 3 — never a crash.
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN) + " --quiet --cipher speck64 " + src_ +
                  " " + img_, &code);
  ASSERT_EQ(code, 0);
  const auto run_out = run_command(std::string(SOFIA_RUN_BIN) + " " + img_, &code);
  EXPECT_EQ(code, 3) << run_out;
  EXPECT_NE(run_out.find("status=reset"), std::string::npos) << run_out;
  EXPECT_NE(run_out.find("mac-mismatch"), std::string::npos) << run_out;
}

TEST_F(Tools, UnknownCipherRejected) {
  // --cipher is a choice-typed flag: a bad value is a parse error (usage +
  // exit 2) that names the accepted set, uniformly with every other flag.
  int code = 0;
  const auto out = run_command(
      std::string(SOFIA_ASM_BIN) + " --cipher des " + src_ + " " + img_, &code);
  EXPECT_EQ(code, 2) << out;
  EXPECT_NE(out.find("invalid value 'des'"), std::string::npos) << out;
  EXPECT_NE(out.find("rectangle80"), std::string::npos) << out;
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
}

TEST_F(Tools, EveryToolRejectsUnknownFlagsWithUsage) {
  // The shared CLI layer: unknown flag -> diagnostic + usage, exit 2,
  // uniformly across all nine front-ends.
  for (const char* tool : {SOFIA_ASM_BIN, SOFIA_RUN_BIN, SOFIA_OBJDUMP_BIN,
                           SOFIA_REPORT_BIN, SOFIA_SWEEP_BIN, SOFIA_WORKER_BIN,
                           SOFIA_FLEET_BIN, SOFIA_LINT_BIN, SOFIA_ATTACK_BIN}) {
    int code = 0;
    const auto out = run_command(std::string(tool) + " --frobnicate", &code);
    EXPECT_EQ(code, 2) << tool << ": " << out;
    EXPECT_NE(out.find("unknown option '--frobnicate'"), std::string::npos)
        << tool << ": " << out;
    EXPECT_NE(out.find("usage:"), std::string::npos) << tool << ": " << out;
  }
}

TEST_F(Tools, EveryToolPrintsHelp) {
  for (const char* tool : {SOFIA_ASM_BIN, SOFIA_RUN_BIN, SOFIA_OBJDUMP_BIN,
                           SOFIA_REPORT_BIN, SOFIA_SWEEP_BIN, SOFIA_WORKER_BIN,
                           SOFIA_FLEET_BIN, SOFIA_LINT_BIN, SOFIA_ATTACK_BIN}) {
    int code = 0;
    const auto out = run_command(std::string(tool) + " --help", &code);
    EXPECT_EQ(code, 0) << tool << ": " << out;
    EXPECT_NE(out.find("usage:"), std::string::npos) << tool << ": " << out;
  }
}

TEST_F(Tools, HelpStaysInSyncWithTheLiveRegistries) {
  // The --backend/--scheme choice sets are built from sim::backend_names()
  // and scheme::scheme_names() at tool startup, and cli::Parser renders
  // every choice into --help. Registering a new backend or scheme must
  // surface in the user-facing help with no tool edits — this test fails
  // if a tool ever goes back to a hard-coded list.
  for (const char* tool : {SOFIA_RUN_BIN, SOFIA_SWEEP_BIN, SOFIA_REPORT_BIN,
                           SOFIA_FLEET_BIN, SOFIA_ATTACK_BIN}) {
    int code = 0;
    const auto out = run_command(std::string(tool) + " --help", &code);
    ASSERT_EQ(code, 0) << tool << ": " << out;
    for (const auto& backend : sofia::sim::backend_names())
      EXPECT_NE(out.find(backend), std::string::npos)
          << tool << " --help does not list backend '" << backend << "'";
    for (const auto& scheme : sofia::scheme::scheme_names())
      EXPECT_NE(out.find(scheme), std::string::npos)
          << tool << " --help does not list scheme '" << scheme << "'";
  }
  // sofia_asm carries --scheme only (it has no execution side).
  int code = 0;
  const auto out = run_command(std::string(SOFIA_ASM_BIN) + " --help", &code);
  ASSERT_EQ(code, 0) << out;
  for (const auto& scheme : sofia::scheme::scheme_names())
    EXPECT_NE(out.find(scheme), std::string::npos)
        << "sofia_asm --help does not list scheme '" << scheme << "'";
}

TEST_F(Tools, SweepShardMergeIsByteIdenticalToUnsharded) {
  // The multi-machine contract, end to end through the CLI: two shards run
  // separately, merged, must reproduce the unsharded document byte for
  // byte.
  const std::string tag = std::to_string(getpid());
  const std::string whole = "/tmp/sofia_shard_" + tag + "_whole.json";
  const std::string s0 = "/tmp/sofia_shard_" + tag + "_0.json";
  const std::string s1 = "/tmp/sofia_shard_" + tag + "_1.json";
  const std::string merged = "/tmp/sofia_shard_" + tag + "_merged.json";
  int code = 0;
  auto out = run_command(std::string(SOFIA_SWEEP_BIN) +
                             " --smoke --quiet --json " + whole, &code);
  EXPECT_EQ(code, 0) << out;
  out = run_command(std::string(SOFIA_SWEEP_BIN) +
                        " --smoke --quiet --shard 0/2 --json " + s0, &code);
  EXPECT_EQ(code, 0) << out;
  out = run_command(std::string(SOFIA_SWEEP_BIN) +
                        " --smoke --quiet --shard 1/2 --json " + s1, &code);
  EXPECT_EQ(code, 0) << out;
  out = run_command(std::string(SOFIA_SWEEP_BIN) + " --merge " + merged + " " +
                        s0 + " " + s1, &code);
  EXPECT_EQ(code, 0) << out;

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto whole_doc = slurp(whole);
  EXPECT_FALSE(whole_doc.empty());
  EXPECT_EQ(whole_doc, slurp(merged));
  EXPECT_NE(slurp(s0).find("\"shard\": \"0/2\""), std::string::npos);

  // Merging an incomplete shard set must fail loudly.
  out = run_command(std::string(SOFIA_SWEEP_BIN) + " --merge " + merged + " " +
                        s0, &code);
  EXPECT_NE(code, 0);
  EXPECT_NE(out.find("missing"), std::string::npos) << out;

  for (const auto& p : {whole, s0, s1, merged}) std::remove(p.c_str());
}

TEST_F(Tools, SweepRejectsBadShard) {
  int code = 0;
  const auto out = run_command(
      std::string(SOFIA_SWEEP_BIN) + " --smoke --quiet --shard 2/2", &code);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("out of range"), std::string::npos) << out;
}

TEST_F(Tools, SweepJsonDashStreamsTheDocumentToStdout) {
  // `--json -` must put the document — and nothing else — on stdout, so a
  // coordinator can collect shards over any stdio transport. Progress moves
  // to stderr (discarded here so the capture is pure stdout).
  const std::string tag = std::to_string(getpid());
  const std::string json = "/tmp/sofia_sweep_" + tag + "_dash.json";
  int code = 0;
  const auto file_out = run_command(std::string(SOFIA_SWEEP_BIN) +
                                        " --smoke --quiet --json " + json,
                                    &code);
  ASSERT_EQ(code, 0) << file_out;
  const auto stdout_doc = run_command(
      "( " + std::string(SOFIA_SWEEP_BIN) +
          " --smoke --quiet --json - 2>/dev/null )", &code);
  EXPECT_EQ(code, 0);
  std::ifstream in(json, std::ios::binary);
  const std::string file_doc{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_EQ(stdout_doc, file_doc);
  std::remove(json.c_str());
}

TEST_F(Tools, FleetMergesByteIdenticallyToASingleSweep) {
  // The acceptance contract: sofia_fleet with 2 local subprocess workers on
  // the smoke matrix == one unsharded sofia_sweep run, byte for byte. The
  // default --launch resolves the sofia_sweep sitting next to sofia_fleet.
  const std::string tag = std::to_string(getpid());
  const std::string fleet_json = "/tmp/sofia_fleet_" + tag + ".json";
  const std::string single_json = "/tmp/sofia_fleet_" + tag + "_single.json";
  int code = 0;
  const auto fleet_out = run_command(
      std::string(SOFIA_FLEET_BIN) + " --smoke --workers 2 --threads 1 --json " +
          fleet_json, &code);
  EXPECT_EQ(code, 0) << fleet_out;
  EXPECT_NE(fleet_out.find("merged 2 shard(s)"), std::string::npos) << fleet_out;
  const auto single_out = run_command(
      std::string(SOFIA_SWEEP_BIN) + " --smoke --quiet --threads 2 --json " +
          single_json, &code);
  EXPECT_EQ(code, 0) << single_out;

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto fleet_doc = slurp(fleet_json);
  EXPECT_FALSE(fleet_doc.empty());
  EXPECT_EQ(fleet_doc, slurp(single_json));
  std::remove(fleet_json.c_str());
  std::remove(single_json.c_str());
}

TEST_F(Tools, FleetStreamsMergedDocumentToStdoutByDefault) {
  int code = 0;
  const auto doc = run_command(
      "( " + std::string(SOFIA_FLEET_BIN) +
          " --smoke --workers 2 --threads 1 2>/dev/null )", &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(doc.find("\"schema\": \"sofia-sweep-v5\""), std::string::npos)
      << doc.substr(0, 200);
  EXPECT_EQ(doc.rfind("sweep ", 0), std::string::npos);  // no log lines mixed in
}

TEST_F(Tools, FleetRejectsZeroWorkersAndFailingLaunches) {
  int code = 0;
  auto out = run_command(std::string(SOFIA_FLEET_BIN) + " --workers 0", &code);
  EXPECT_EQ(code, 2) << out;
  EXPECT_NE(out.find("--workers"), std::string::npos) << out;
  // A launch command that exits nonzero without a document must fail the
  // fleet, naming the worker.
  out = run_command(std::string(SOFIA_FLEET_BIN) +
                        " --smoke --workers 2 --launch false --json /dev/null",
                    &code);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("worker"), std::string::npos) << out;
}

TEST_F(Tools, WorkerServesARemoteRunForSofiaRun) {
  // sofia_run --backend remote --worker <sofia_worker> must behave exactly
  // like the local cycle backend, exit code included.
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN) + " --quiet --key-seed 5 " + src_ +
                  " " + img_, &code);
  ASSERT_EQ(code, 0);
  const auto local = run_command(
      std::string(SOFIA_RUN_BIN) + " --key-seed 5 " + img_, &code);
  EXPECT_EQ(code, 33);
  const auto remote = run_command(
      std::string(SOFIA_RUN_BIN) + " --key-seed 5 --backend remote --worker '" +
          SOFIA_WORKER_BIN + "' " + img_, &code);
  EXPECT_EQ(code, 33) << remote;
  EXPECT_NE(remote.find("status=exited"), std::string::npos) << remote;
  EXPECT_NE(remote.find("backend=remote"), std::string::npos) << remote;

  // Worker flags without --backend remote are rejected, not ignored.
  const auto bad = run_command(
      std::string(SOFIA_RUN_BIN) + " --worker-backend functional " + img_,
      &code);
  EXPECT_EQ(code, 2) << bad;
  EXPECT_NE(bad.find("--worker-backend"), std::string::npos) << bad;
}

TEST_F(Tools, LintCleanWorkloadAssertsClean) {
  int code = 0;
  const auto out = run_command(
      std::string(SOFIA_LINT_BIN) + " --workload fib --size 8 --assert-clean",
      &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("0 error(s)"), std::string::npos) << out;
}

TEST_F(Tools, LintSourceFileAndSavedImage) {
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN) + " --quiet --key-seed 5 " + src_ +
                  " " + img_, &code);
  ASSERT_EQ(code, 0);
  // The saved image against its program and key material: clean.
  const auto out = run_command(std::string(SOFIA_LINT_BIN) + " --key-seed 5 " +
                                   src_ + " --image " + img_ +
                                   " --assert-clean", &code);
  EXPECT_EQ(code, 0) << out;
  // The same image under the wrong keys: --assert-clean exits 1. Seed-
  // derived key sets carry their own omega, so the version nonce is the
  // first cross-check that trips.
  const auto bad = run_command(std::string(SOFIA_LINT_BIN) + " --key-seed 6 " +
                                   src_ + " --image " + img_ +
                                   " --assert-clean", &code);
  EXPECT_EQ(code, 1) << bad;
  EXPECT_NE(bad.find("omega-mismatch"), std::string::npos) << bad;
}

TEST_F(Tools, LintFlagsTamperedImage) {
  int code = 0;
  run_command(std::string(SOFIA_ASM_BIN) + " --quiet --key-seed 5 " + src_ +
                  " " + img_, &code);
  ASSERT_EQ(code, 0);
  // Swap two ciphertext words across blocks. The swap preserves the image
  // file's byte-sum checksum, so the tamper survives loading and must be
  // caught by the lint, not the file format.
  {
    std::fstream f(img_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const long header = 40;  // sofia image header, then text words
    char a[4], b[4];
    f.seekg(header + 4 * 2);
    f.read(a, 4);
    f.seekg(header + 4 * 10);
    f.read(b, 4);
    f.seekp(header + 4 * 2);
    f.write(b, 4);
    f.seekp(header + 4 * 10);
    f.write(a, 4);
  }
  const auto out = run_command(std::string(SOFIA_LINT_BIN) + " --key-seed 5 " +
                                   src_ + " --image " + img_ +
                                   " --assert-clean", &code);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("error["), std::string::npos) << out;
}

TEST_F(Tools, LintJsonIsDeterministic) {
  int code = 0;
  const std::string cmd = std::string(SOFIA_LINT_BIN) +
                          " --workload crc32 --size 16 --quiet --json -";
  const auto doc1 = run_command(cmd, &code);
  EXPECT_EQ(code, 0) << doc1;
  const auto doc2 = run_command(cmd, &code);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(doc1, doc2);
  EXPECT_NE(doc1.find("\"schema\": \"sofia-lint-v2\""), std::string::npos)
      << doc1;
  EXPECT_NE(doc1.find("\"clean\": true"), std::string::npos) << doc1;
  EXPECT_NE(doc1.find("\"indirects\""), std::string::npos) << doc1;
}

TEST_F(Tools, LintPrintsRuleCatalog) {
  int code = 0;
  const auto out = run_command(std::string(SOFIA_LINT_BIN) + " --rules", &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("edge-seal-mismatch"), std::string::npos) << out;
  EXPECT_NE(out.find("unreachable-block"), std::string::npos) << out;
}

TEST_F(Tools, LintRulesValidatesIdsAgainstTheCatalog) {
  int code = 0;
  // Known ids print exactly those catalog rows.
  const auto known = run_command(
      std::string(SOFIA_LINT_BIN) + " --rules store-to-text-proven", &code);
  EXPECT_EQ(code, 0) << known;
  EXPECT_NE(known.find("store-to-text-proven"), std::string::npos) << known;
  EXPECT_EQ(known.find("unreachable-block"), std::string::npos) << known;
  // An unknown id exits 2, names the id and lists the valid ones.
  const auto bad = run_command(
      std::string(SOFIA_LINT_BIN) + " --rules no-such-rule", &code);
  EXPECT_EQ(code, 2) << bad;
  EXPECT_NE(bad.find("unknown rule id 'no-such-rule'"), std::string::npos)
      << bad;
  EXPECT_NE(bad.find("edge-seal-mismatch"), std::string::npos) << bad;
  // Rule ids without --rules are a usage error, not a lint input.
  const auto stray = run_command(
      std::string(SOFIA_LINT_BIN) + " --workload fib extra-id", &code);
  EXPECT_EQ(code, 2) << stray;
}

TEST_F(Tools, LintSarifIsDeterministicSarif210) {
  int code = 0;
  const std::string cmd = std::string(SOFIA_LINT_BIN) +
                          " --workload crc32 --size 16 --quiet --sarif -";
  const auto doc1 = run_command(cmd, &code);
  EXPECT_EQ(code, 0) << doc1;
  const auto doc2 = run_command(cmd, &code);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(doc1, doc2);
  EXPECT_NE(doc1.find("\"version\": \"2.1.0\""), std::string::npos) << doc1;
  EXPECT_NE(doc1.find("\"name\": \"sofia-lint\""), std::string::npos) << doc1;
  EXPECT_NE(doc1.find("\"id\": \"edge-seal-mismatch\""), std::string::npos)
      << doc1;
}

TEST_F(Tools, LintRejectsEmptyAndConflictingInputs) {
  int code = 0;
  const auto none = run_command(std::string(SOFIA_LINT_BIN), &code);
  EXPECT_EQ(code, 2) << none;
  EXPECT_NE(none.find("nothing to lint"), std::string::npos) << none;
  const auto both = run_command(
      std::string(SOFIA_LINT_BIN) + " --workload fib " + src_, &code);
  EXPECT_EQ(code, 2) << both;
}

TEST_F(Tools, SweepLintPrefilterKeepsTheDocumentIdentical) {
  // A clean matrix must produce byte-identical documents with and without
  // the --lint prefilter (lint only adds to *failing* job records).
  int code = 0;
  const std::string tag = std::to_string(getpid());
  const std::string plain = "/tmp/sofia_lint_sweep_" + tag + "_a.json";
  const std::string linted = "/tmp/sofia_lint_sweep_" + tag + "_b.json";
  run_command(std::string(SOFIA_SWEEP_BIN) +
                  " --smoke --quiet --threads 2 --json " + plain, &code);
  EXPECT_EQ(code, 0);
  run_command(std::string(SOFIA_SWEEP_BIN) +
                  " --smoke --lint --quiet --threads 2 --json " + linted,
              &code);
  EXPECT_EQ(code, 0);
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto doc = slurp(plain);
  EXPECT_FALSE(doc.empty());
  EXPECT_EQ(doc, slurp(linted));
  std::remove(plain.c_str());
  std::remove(linted.c_str());
}

TEST_F(Tools, AttackSmokeCampaignDetectsEverything) {
  // The CI gate in miniature: the smoke campaign must report 100% detection
  // for every authenticated scheme and exit 0.
  const std::string tag = std::to_string(getpid());
  const std::string json = "/tmp/sofia_attack_" + tag + "_smoke.json";
  int code = 0;
  const auto out = run_command(
      std::string(SOFIA_ATTACK_BIN) +
          " --campaign --smoke --jobs 60 --threads 2 --json " + json, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("authenticated schemes clean"), std::string::npos) << out;
  std::ifstream in(json, std::ios::binary);
  const std::string doc{std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>()};
  EXPECT_NE(doc.find("\"schema\": \"sofia-attack-campaign-v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"scheme\": \"sofia-cbcmac\""), std::string::npos);
  std::remove(json.c_str());
}

TEST_F(Tools, AttackShardMergeIsByteIdenticalToUnsharded) {
  const std::string tag = std::to_string(getpid());
  const std::string whole = "/tmp/sofia_attack_" + tag + "_whole.json";
  const std::string s0 = "/tmp/sofia_attack_" + tag + "_0.json";
  const std::string s1 = "/tmp/sofia_attack_" + tag + "_1.json";
  const std::string merged = "/tmp/sofia_attack_" + tag + "_merged.json";
  const std::string base = std::string(SOFIA_ATTACK_BIN) +
                           " --campaign --smoke --jobs 40 --quiet --threads 2";
  int code = 0;
  auto out = run_command(base + " --json " + whole, &code);
  EXPECT_EQ(code, 0) << out;
  out = run_command(base + " --shard 0/2 --json " + s0, &code);
  EXPECT_EQ(code, 0) << out;
  out = run_command(base + " --shard 1/2 --json " + s1, &code);
  EXPECT_EQ(code, 0) << out;
  out = run_command(std::string(SOFIA_ATTACK_BIN) + " --merge " + merged +
                        " " + s0 + " " + s1, &code);
  EXPECT_EQ(code, 0) << out;
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto whole_doc = slurp(whole);
  EXPECT_FALSE(whole_doc.empty());
  EXPECT_EQ(whole_doc, slurp(merged));
  EXPECT_NE(slurp(s0).find("\"shard\": \"0/2\""), std::string::npos);
  // An incomplete shard set must fail loudly.
  out = run_command(std::string(SOFIA_ATTACK_BIN) + " --merge " + merged +
                        " " + s0, &code);
  EXPECT_NE(code, 0);
  for (const auto& p : {whole, s0, s1, merged}) std::remove(p.c_str());
}

TEST_F(Tools, AttackJsonDashStreamsTheDocumentToStdout) {
  const std::string tag = std::to_string(getpid());
  const std::string json = "/tmp/sofia_attack_" + tag + "_dash.json";
  const std::string base = std::string(SOFIA_ATTACK_BIN) +
                           " --campaign --smoke --jobs 30 --quiet --threads 2";
  int code = 0;
  const auto file_out = run_command(base + " --json " + json, &code);
  ASSERT_EQ(code, 0) << file_out;
  const auto stdout_doc =
      run_command("( " + base + " --json - 2>/dev/null )", &code);
  EXPECT_EQ(code, 0);
  std::ifstream in(json, std::ios::binary);
  const std::string file_doc{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_EQ(stdout_doc, file_doc);
  std::remove(json.c_str());
}

TEST_F(Tools, AttackListsMutatorsAndRejectsIdleInvocation) {
  int code = 0;
  const auto catalog = run_command(
      std::string(SOFIA_ATTACK_BIN) + " --mutators", &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(catalog.find("bit-flip"), std::string::npos) << catalog;
  EXPECT_NE(catalog.find("cross-version-splice"), std::string::npos) << catalog;
  EXPECT_NE(catalog.find("fetch-fault"), std::string::npos) << catalog;
  const auto idle = run_command(std::string(SOFIA_ATTACK_BIN), &code);
  EXPECT_EQ(code, 2);
  EXPECT_NE(idle.find("nothing to do"), std::string::npos) << idle;
}

#ifdef BENCH_ATTACK_MATRIX_BIN
TEST_F(Tools, AttackMatrixJsonDashStreamsToStdout) {
  // The bench tool shares the emit_document contract: `--json -` puts the
  // sofia-attack-matrix-v2 document alone on stdout.
  int code = 0;
  const auto doc = run_command(
      "( " + std::string(BENCH_ATTACK_MATRIX_BIN) +
          " --flips 10 --json - 2>/dev/null )", &code);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(doc.find("{\n  \"schema\": \"sofia-attack-matrix-v2\""), 0u) << doc;
}
#endif

TEST_F(Tools, SweepCacheWarmRunIsAllHitsAndByteIdentical) {
  // The resumability contract through the CLI: the second run against the
  // same cache executes zero jobs, and both documents match a cache-less
  // run byte for byte. Counters land on stderr, never in the document.
  const std::string tag = std::to_string(getpid());
  const std::string dir = "/tmp/sofia_cache_" + tag;
  const std::string cold = "/tmp/sofia_cache_" + tag + "_cold.json";
  const std::string warm = "/tmp/sofia_cache_" + tag + "_warm.json";
  const std::string plain = "/tmp/sofia_cache_" + tag + "_plain.json";
  const std::string base = std::string(SOFIA_SWEEP_BIN) +
                           " --smoke --quiet --threads 2";
  int code = 0;
  auto out = run_command(base + " --cache " + dir + " --json " + cold, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("0 hit(s)"), std::string::npos) << out;
  out = run_command(base + " --cache " + dir + " --json " + warm, &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("0 miss(es), 0 stored"), std::string::npos) << out;
  out = run_command(base + " --json " + plain, &code);
  EXPECT_EQ(code, 0) << out;

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto plain_doc = slurp(plain);
  EXPECT_FALSE(plain_doc.empty());
  EXPECT_EQ(plain_doc, slurp(cold));
  EXPECT_EQ(plain_doc, slurp(warm));
  EXPECT_EQ(plain_doc.find("\"cache\""), std::string::npos)
      << "the cache must never leak into the sweep document";

  std::filesystem::remove_all(dir);
  for (const auto& p : {cold, warm, plain}) std::remove(p.c_str());
}

TEST_F(Tools, SweepCacheEnvFallbackAndStatsSideDocument) {
  const std::string tag = std::to_string(getpid());
  const std::string dir = "/tmp/sofia_cache_env_" + tag;
  int code = 0;
  // No --cache flag: $SOFIA_CACHE must be picked up.
  auto out = run_command("SOFIA_CACHE=" + dir + " " +
                             std::string(SOFIA_SWEEP_BIN) +
                             " --smoke --quiet --threads 2", &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("cache: " + dir), std::string::npos) << out;

  // --cache-stats emits the side document; it requires a cache.
  const std::string stats = "/tmp/sofia_cache_env_" + tag + "_stats.json";
  out = run_command(std::string(SOFIA_SWEEP_BIN) +
                        " --smoke --quiet --threads 2 --cache " + dir +
                        " --cache-stats " + stats, &code);
  EXPECT_EQ(code, 0) << out;
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto doc = slurp(stats);
  EXPECT_NE(doc.find("\"schema\": \"sofia-cache-stats-v1\""),
            std::string::npos) << doc;
  EXPECT_NE(doc.find("\"misses\": 0"), std::string::npos) << doc;
  out = run_command("env -u SOFIA_CACHE " + std::string(SOFIA_SWEEP_BIN) +
                        " --smoke --quiet --cache-stats " + stats, &code);
  EXPECT_EQ(code, 2) << out;
  EXPECT_NE(out.find("--cache-stats needs --cache"), std::string::npos) << out;

  std::filesystem::remove_all(dir);
  std::remove(stats.c_str());
}

TEST_F(Tools, CacheCliStatsVerifyAndGc) {
  const std::string tag = std::to_string(getpid());
  const std::string dir = "/tmp/sofia_cache_cli_" + tag;
  int code = 0;
  auto out = run_command(std::string(SOFIA_SWEEP_BIN) +
                             " --smoke --quiet --threads 2 --cache " + dir,
                         &code);
  ASSERT_EQ(code, 0) << out;

  out = run_command(std::string(SOFIA_CACHE_BIN) + " stats --cache " + dir,
                    &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("sweep-job"), std::string::npos) << out;
  out = run_command("( " + std::string(SOFIA_CACHE_BIN) + " stats --cache " +
                        dir + " --json - )", &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("\"schema\": \"sofia-cache-stats-v1\""),
            std::string::npos) << out;

  out = run_command(std::string(SOFIA_CACHE_BIN) + " verify --cache " + dir,
                    &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("0 bad"), std::string::npos) << out;

  // Garble one entry: verify must name it and exit 1.
  for (const auto& e :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::fstream f(e.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('!');
    break;
  }
  out = run_command(std::string(SOFIA_CACHE_BIN) + " verify --cache " + dir,
                    &code);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("BAD"), std::string::npos) << out;

  // gc to zero bytes evicts everything.
  out = run_command(std::string(SOFIA_CACHE_BIN) + " gc --cache " + dir +
                        " --max-bytes 0", &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("kept 0"), std::string::npos) << out;

  // Usage errors: gc without --max-bytes, and no cache directory at all.
  out = run_command(std::string(SOFIA_CACHE_BIN) + " gc --cache " + dir,
                    &code);
  EXPECT_EQ(code, 2) << out;
  out = run_command("env -u SOFIA_CACHE " + std::string(SOFIA_CACHE_BIN) +
                        " stats", &code);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("no cache directory"), std::string::npos) << out;

  std::filesystem::remove_all(dir);
}

TEST_F(Tools, FleetSharesOneCacheAcrossWorkers) {
  const std::string tag = std::to_string(getpid());
  const std::string dir = "/tmp/sofia_fleet_cache_" + tag;
  const std::string first = "/tmp/sofia_fleet_cache_" + tag + "_1.json";
  const std::string second = "/tmp/sofia_fleet_cache_" + tag + "_2.json";
  int code = 0;
  auto out = run_command(std::string(SOFIA_FLEET_BIN) +
                             " --smoke --workers 2 --threads 1 --cache " + dir +
                             " --quiet --json " + first, &code);
  EXPECT_EQ(code, 0) << out;
  // A different worker split against the same cache: all hits, same bytes.
  out = run_command(std::string(SOFIA_FLEET_BIN) +
                        " --smoke --workers 3 --threads 1 --cache " + dir +
                        " --quiet --json " + second, &code);
  EXPECT_EQ(code, 0) << out;
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto doc = slurp(first);
  EXPECT_FALSE(doc.empty());
  EXPECT_EQ(doc, slurp(second));
  std::filesystem::remove_all(dir);
  for (const auto& p : {first, second}) std::remove(p.c_str());
}

TEST_F(Tools, SweepListsMatricesAndRejectsUnknown) {
  int code = 0;
  const auto list = run_command(std::string(SOFIA_SWEEP_BIN) + " --list", &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(list.find("suite-overhead"), std::string::npos) << list;
  EXPECT_NE(list.find("granularity"), std::string::npos) << list;
  run_command(std::string(SOFIA_SWEEP_BIN) + " --matrix nope --smoke", &code);
  EXPECT_NE(code, 0);
  const auto bad = run_command(std::string(SOFIA_SWEEP_BIN) + " --frobnicate",
                               &code);
  EXPECT_EQ(code, 2);
  EXPECT_NE(bad.find("usage"), std::string::npos) << bad;
}

}  // namespace
