// Cross-validation of the execution backends (src/sim/backend.hpp): the
// registry contract, and the load-bearing property that the "functional"
// backend is architecturally indistinguishable from the cycle-accurate
// machine — same exit state, same console output, same instruction-level
// counters on clean runs, and the same reset-on-tamper behavior — for
// every registered workload under every cipher.
#include <gtest/gtest.h>

#include <string>

#include "pipeline/pipeline.hpp"
#include "random_program.hpp"
#include "sim/backend.hpp"
#include "sim/remote_backend.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sofia {
namespace {

using pipeline::DeviceProfile;
using pipeline::Pipeline;

const char* kSource = R"(
main:
  li r1, 5
  li r2, 0
loop:
  add r2, r2, r1
  addi r1, r1, -1
  bnez r1, loop
  li r10, 0xFFFF0008
  sw r2, 0(r10)
  halt
)";

DeviceProfile functional_profile(DeviceProfile profile = DeviceProfile::paper_default()) {
  profile.backend = "functional";
  return profile;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(BackendRegistry, ListsCycleFirstThenFunctionalThenRemote) {
  const auto names = sim::backend_names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "cycle");  // the default every DeviceProfile starts with
  EXPECT_EQ(names[1], "functional");
  EXPECT_EQ(names[2], "remote");
  EXPECT_EQ(sim::kDefaultBackend, "cycle");
  for (const auto& name : names) EXPECT_TRUE(sim::is_backend(name)) << name;
  EXPECT_FALSE(sim::is_backend("warp"));
}

TEST(BackendRegistry, MakeBackendRoundTripsAndRejectsUnknown) {
  for (const auto& entry : sim::backend_registry()) {
    const auto backend = sim::make_backend(entry.name);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), entry.name);
    // The registry row and the instance share one description string.
    EXPECT_EQ(backend->describe(), entry.description);
  }
  try {
    sim::make_backend("warp");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp"), std::string::npos) << what;
    EXPECT_NE(what.find("cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("functional"), std::string::npos) << what;
  }
}

TEST(BackendRegistry, CapabilitiesDistinguishTimingFidelity) {
  const auto cycle = sim::make_backend("cycle");
  EXPECT_TRUE(cycle->capabilities().cycle_accurate);
  EXPECT_TRUE(cycle->capabilities().models_microarchitecture);
  const auto functional = sim::make_backend("functional");
  EXPECT_FALSE(functional->capabilities().cycle_accurate);
  EXPECT_FALSE(functional->capabilities().models_microarchitecture);
}

TEST(BackendRegistry, DeviceProfileParsesAndFingerprintsTheBackend) {
  EXPECT_EQ(DeviceProfile::parse_backend("functional"), "functional");
  // Exact-match grammar, identical to the CLI --backend choice flags.
  EXPECT_THROW(DeviceProfile::parse_backend("FUNCTIONAL"), Error);
  EXPECT_THROW(DeviceProfile::parse_backend("warp"), Error);
  const auto p = functional_profile();
  EXPECT_NE(p.fingerprint().find("backend=functional"), std::string::npos)
      << p.fingerprint();
  EXPECT_NE(p.to_json().find("\"backend\":\"functional\""), std::string::npos)
      << p.to_json();
}

TEST(BackendRegistry, PipelineRejectsUnknownBackendWithContext) {
  auto profile = DeviceProfile::paper_default();
  profile.backend = "warp";
  auto p = Pipeline::from_source(kSource, profile, "bad-backend");
  try {
    p.run();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pipeline[bad-backend]/backend:"), std::string::npos)
        << what;
    EXPECT_NE(what.find("warp"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Cross-validation: functional == cycle, architecturally
// ---------------------------------------------------------------------------

void expect_same_architectural_outcome(const sim::RunResult& cycle,
                                       const sim::RunResult& functional,
                                       const std::string& label) {
  ASSERT_EQ(cycle.status, functional.status) << label;
  EXPECT_EQ(cycle.exit_code, functional.exit_code) << label;
  EXPECT_EQ(cycle.output, functional.output) << label;
  // The committed instruction stream is identical, so the architectural
  // counters must agree exactly — only timing-derived numbers may differ.
  EXPECT_EQ(cycle.stats.insts, functional.stats.insts) << label;
  EXPECT_EQ(cycle.stats.nops, functional.stats.nops) << label;
  EXPECT_EQ(cycle.stats.loads, functional.stats.loads) << label;
  EXPECT_EQ(cycle.stats.stores, functional.stats.stores) << label;
  EXPECT_EQ(cycle.stats.branches, functional.stats.branches) << label;
  EXPECT_EQ(cycle.stats.taken, functional.stats.taken) << label;
}

TEST(BackendCrossValidation, EveryWorkloadEveryCipherAgrees) {
  // The acceptance matrix: all registered workloads x both ciphers must
  // produce identical architectural results through Pipeline on both
  // backends (sizes scaled down to keep the suite fast).
  for (const auto& spec : workloads::all_workloads()) {
    const std::uint32_t size = std::max(4u, spec.default_size / 16);
    for (const auto kind :
         {crypto::CipherKind::kRectangle80, crypto::CipherKind::kSpeck64_128}) {
      const std::string label =
          spec.name + " / " + std::string(crypto::to_string(kind));
      auto cyc = Pipeline::from_workload(spec, 1, size,
                                         DeviceProfile::example(kind));
      auto fn = Pipeline::from_workload(
          spec, 1, size, functional_profile(DeviceProfile::example(kind)));
      ASSERT_TRUE(cyc.run().ok()) << label;
      expect_same_architectural_outcome(cyc.run(), fn.run(), label);
      // The golden model agrees too (measure() throws on any mismatch).
      EXPECT_NO_THROW(fn.measure()) << label;
    }
  }
}

TEST(BackendCrossValidation, VanillaRunsAgree) {
  for (const char* name : {"fib", "crc32"}) {
    const auto& spec = workloads::workload(name);
    const std::uint32_t size = std::max(4u, spec.default_size / 16);
    auto cyc = Pipeline::from_workload(spec, 1, size);
    auto fn = Pipeline::from_workload(spec, 1, size, functional_profile());
    expect_same_architectural_outcome(cyc.run_vanilla(), fn.run_vanilla(),
                                      name);
  }
}

TEST(BackendCrossValidation, PerWordGranularityAgrees) {
  auto profile = DeviceProfile::paper_default();
  profile.granularity = crypto::Granularity::kPerWord;
  auto cyc = Pipeline::from_source(kSource, profile);
  auto fn = Pipeline::from_source(kSource, functional_profile(profile));
  ASSERT_TRUE(cyc.run().ok());
  expect_same_architectural_outcome(cyc.run(), fn.run(), "per-word");
}

TEST(BackendCrossValidation, SmallUnrestrictedPolicyAgrees) {
  auto profile = DeviceProfile::paper_default();
  profile.policy = xform::BlockPolicy::small_unrestricted();
  auto cyc = Pipeline::from_source(kSource, profile);
  auto fn = Pipeline::from_source(kSource, functional_profile(profile));
  ASSERT_TRUE(cyc.run().ok());
  expect_same_architectural_outcome(cyc.run(), fn.run(), "small-policy");
}

TEST(BackendCrossValidation, RandomProgramsAgree) {
  // Property-based differential check: random (terminating) SR32 programs
  // with loops, calls, forward branches and memory traffic must be
  // indistinguishable across backends, on both the SOFIA and vanilla core.
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const std::string source = test::random_program(rng);
    const std::string label = "trial " + std::to_string(trial);
    auto cyc = Pipeline::from_source(source);
    auto fn = Pipeline::from_source(source, functional_profile());
    ASSERT_TRUE(cyc.run().ok()) << label;
    expect_same_architectural_outcome(cyc.run(), fn.run(), label);
    expect_same_architectural_outcome(cyc.run_vanilla(), fn.run_vanilla(),
                                      label + " (vanilla)");
  }
}

// ---------------------------------------------------------------------------
// Integrity semantics: tamper and fault still reset
// ---------------------------------------------------------------------------

TEST(BackendCrossValidation, TamperedTextResetsIdenticallyUnderBothBackends) {
  auto builder = Pipeline::from_source(kSource);
  auto tampered = builder.image();
  tampered.text.at(3) ^= 1u;  // inside the entry block: reached by both
  const auto cyc = builder.run_image(tampered);
  auto fn_session = Pipeline::from_image(tampered, functional_profile());
  const auto& fn = fn_session.run();
  ASSERT_EQ(cyc.status, sim::RunResult::Status::kReset);
  ASSERT_EQ(fn.status, sim::RunResult::Status::kReset);
  EXPECT_EQ(cyc.reset.cause, fn.reset.cause);
  EXPECT_EQ(cyc.reset.cause, sim::ResetCause::kMacMismatch);
  EXPECT_EQ(cyc.reset.pc, fn.reset.pc);
}

TEST(BackendCrossValidation, SelfModifyingStoreToTextResetsUnderBothBackends) {
  // A program that tampers its own ciphertext at run time and then enters
  // the modified block. The cycle machine fetches live from memory and
  // resets on the bad MAC; the functional backend must invalidate its
  // decoded-block cache on the store-to-text and reset identically — and
  // must keep executing the in-flight block safely until then (this test
  // runs under the ASan CI job precisely to police that invalidation path).
  // Pass 0 calls victim cleanly (the functional backend caches the verified
  // block under this exact (entry, prevPC) pair), then flips one ciphertext
  // bit inside victim and loops to the very same call site. A stale cache
  // hit would sail through to the halt at `missed`; correct invalidation
  // refetches and resets on the bad MAC.
  const char* source = R"(
main:
  li r5, 0
  la r10, victim
loop:
  call victim
  bnez r5, missed
  li r5, 1
  lw r11, 0(r10)
  xori r11, r11, 1
  sw r11, 0(r10)
  j loop
missed:
  halt
victim:
  ret
)";
  auto cyc_session = Pipeline::from_source(source);
  const auto& cyc = cyc_session.run();
  auto fn_session = Pipeline::from_source(source, functional_profile());
  const auto& fn = fn_session.run();
  ASSERT_EQ(cyc.status, sim::RunResult::Status::kReset);
  ASSERT_EQ(fn.status, sim::RunResult::Status::kReset);
  EXPECT_EQ(cyc.reset.cause, sim::ResetCause::kMacMismatch);
  EXPECT_EQ(fn.reset.cause, cyc.reset.cause);
  EXPECT_EQ(fn.reset.pc, cyc.reset.pc);
  // Every instruction before the tampering transfer still committed.
  EXPECT_EQ(fn.stats.insts, cyc.stats.insts);
  EXPECT_EQ(fn.stats.stores, cyc.stats.stores);
}

TEST(BackendCrossValidation, KeyMismatchResetsUnderBothBackends) {
  auto speck = Pipeline::from_source(
      kSource, DeviceProfile::example(crypto::CipherKind::kSpeck64_128));
  for (const char* backend : {"cycle", "functional"}) {
    auto profile = DeviceProfile::paper_default();
    profile.backend = backend;
    auto wrong_device = Pipeline::from_image(speck.image(), profile);
    EXPECT_EQ(wrong_device.run().status, sim::RunResult::Status::kReset)
        << backend;
    EXPECT_EQ(wrong_device.run().reset.cause, sim::ResetCause::kMacMismatch)
        << backend;
  }
}

TEST(BackendCrossValidation, FetchFaultInjectionResetsUnderBothBackends) {
  for (const char* backend : {"cycle", "functional"}) {
    auto profile = DeviceProfile::paper_default();
    profile.backend = backend;
    auto p = Pipeline::from_source(kSource, profile);
    sim::SimConfig config;
    config.fault.enabled = true;
    config.fault.fetch_index = 2;  // lands in the entry block on any backend
    config.fault.bit = 7;
    const auto run = p.run_image(p.image(), config);
    EXPECT_EQ(run.status, sim::RunResult::Status::kReset) << backend;
    EXPECT_EQ(run.reset.cause, sim::ResetCause::kMacMismatch) << backend;
  }
}

// ---------------------------------------------------------------------------
// Functional-backend contract details
// ---------------------------------------------------------------------------

TEST(FunctionalBackend, CyclesAreTheInstructionCount) {
  auto p = Pipeline::from_source(kSource, functional_profile());
  const auto& run = p.run();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.stats.cycles, run.stats.insts);
  // No micro-architecture is modelled.
  EXPECT_EQ(run.stats.icache_hits, 0u);
  EXPECT_EQ(run.stats.icache_misses, 0u);
}

TEST(FunctionalBackend, BlockCacheVerifiesEachEntryOnce) {
  // The loop body re-executes but decrypts and MAC-verifies only once per
  // distinct (entry, prevPC) pair — the source of the backend's speedup.
  auto p = Pipeline::from_source(kSource, functional_profile());
  const auto& fn = p.run();
  auto c = Pipeline::from_source(kSource);
  const auto& cyc = c.run();
  ASSERT_TRUE(fn.ok());
  EXPECT_LT(fn.stats.mac_verifications, cyc.stats.mac_verifications);
  EXPECT_GT(fn.stats.mac_verifications, 0u);
  EXPECT_LT(fn.stats.ctr_ops, cyc.stats.ctr_ops);
}

TEST(FunctionalBackend, MaxCyclesBoundsTheInstructionCount) {
  auto p = Pipeline::from_source(R"(
main:
  li r1, 1
loop:
  bnez r1, loop
  halt
)", functional_profile());
  sim::SimConfig config;
  config.max_cycles = 10'000;
  const auto run = p.run_image(p.image(), config);
  EXPECT_EQ(run.status, sim::RunResult::Status::kMaxCycles);
  EXPECT_LE(run.stats.insts, 10'000u);
}

TEST(FunctionalBackend, TraceRecordsTheArchitecturalStream) {
  auto p = Pipeline::from_source(kSource, functional_profile());
  sim::SimConfig config;
  config.collect_trace = true;
  const auto run = p.run_image(p.image(), config);
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(run.trace.empty());
  EXPECT_EQ(run.trace.size(), run.stats.insts);
}

// ---------------------------------------------------------------------------
// Remote backend: registry/profile contract + cross-validation
// ---------------------------------------------------------------------------

TEST(RemoteBackend, ProfileFingerprintAndJsonCarryTheEndpoint) {
  auto p = DeviceProfile::paper_default();
  p.backend = "remote";
  p.remote = DeviceProfile::parse_worker("ssh host sofia_worker", "functional");
  const auto fp = p.fingerprint();
  EXPECT_NE(fp.find("backend=remote"), std::string::npos) << fp;
  EXPECT_NE(fp.find("remote-backend=functional"), std::string::npos) << fp;
  EXPECT_NE(fp.find("ssh host sofia_worker"), std::string::npos) << fp;
  const auto json = p.to_json();
  EXPECT_NE(json.find("\"remote\":{\"command\":\"ssh host sofia_worker\""),
            std::string::npos)
      << json;
  // Local backends keep their PR-4 fingerprints byte-stable: no endpoint.
  EXPECT_EQ(DeviceProfile::paper_default().fingerprint().find("remote-"),
            std::string::npos);
}

TEST(RemoteBackend, ParseWorkerValidatesBothParts) {
  EXPECT_THROW(DeviceProfile::parse_worker("", "cycle"), Error);
  EXPECT_THROW(DeviceProfile::parse_worker("cmd", "warp"), Error);
  EXPECT_THROW(DeviceProfile::parse_worker("cmd", "remote"), Error);
  const auto spec = DeviceProfile::parse_worker("cmd", "functional");
  EXPECT_EQ(spec.command, "cmd");
  EXPECT_EQ(spec.backend, "functional");
}

#ifdef SOFIA_WORKER_BIN
TEST(RemoteBackend, CrossValidatesAgainstBothLocalBackends) {
  // The acceptance matrix, through the wire: a Pipeline on backend "remote"
  // must be indistinguishable — timing included, since the far side runs
  // the very same simulator — from the local backend the worker executes.
  for (const char* far : {"cycle", "functional"}) {
    auto local_profile = DeviceProfile::paper_default();
    local_profile.backend = far;
    auto local = Pipeline::from_source(kSource, local_profile);

    auto remote_profile = DeviceProfile::paper_default();
    remote_profile.backend = "remote";
    remote_profile.remote = DeviceProfile::parse_worker(SOFIA_WORKER_BIN, far);
    auto remote = Pipeline::from_source(kSource, remote_profile);

    ASSERT_TRUE(local.run().ok()) << far;
    expect_same_architectural_outcome(local.run(), remote.run(), far);
    EXPECT_EQ(local.run().stats.cycles, remote.run().stats.cycles) << far;
    EXPECT_EQ(sim::RemoteBackend(remote_profile.remote)
                  .capabilities()
                  .cycle_accurate,
              std::string(far) == "cycle")
        << far;
  }
}
#endif  // SOFIA_WORKER_BIN

}  // namespace
}  // namespace sofia
