// Random SR32 program generator for property-based tests.
//
// Programs terminate by construction: conditional branches only jump
// forward between segments, loops are bounded counted loops on a dedicated
// register, and calls target non-recursive leaf functions. Every program
// ends by printing r1..r8 (so any architectural divergence is observable)
// and halting.
#pragma once

#include <string>
#include <vector>

#include "support/rng.hpp"

namespace sofia::test {

struct GeneratorOptions {
  int min_segments = 3;
  int max_segments = 8;
  int max_insts_per_segment = 6;
  int max_functions = 3;
  bool allow_loops = true;
  bool allow_stores = true;
};

inline std::string random_program(Rng& rng, const GeneratorOptions& opts = {}) {
  const int segments = static_cast<int>(
      rng.next_range(opts.min_segments, opts.max_segments));
  const int functions = static_cast<int>(rng.next_range(0, opts.max_functions));

  auto reg = [&rng]() { return "r" + std::to_string(rng.next_range(1, 8)); };
  auto imm = [&rng]() { return std::to_string(rng.next_range(-100, 100)); };

  auto random_inst = [&](bool in_function) {
    switch (rng.next_below(opts.allow_stores ? 10 : 8)) {
      case 0: return "  add " + reg() + ", " + reg() + ", " + reg() + "\n";
      case 1: return "  sub " + reg() + ", " + reg() + ", " + reg() + "\n";
      case 2: return "  xor " + reg() + ", " + reg() + ", " + reg() + "\n";
      case 3: return "  addi " + reg() + ", " + reg() + ", " + imm() + "\n";
      case 4: return "  mul " + reg() + ", " + reg() + ", " + reg() + "\n";
      case 5: return "  slli " + reg() + ", " + reg() + ", " +
                     std::to_string(rng.next_range(0, 7)) + "\n";
      case 6: return "  slt " + reg() + ", " + reg() + ", " + reg() + "\n";
      case 7:
        return "  lw " + reg() + ", " +
               std::to_string(4 * rng.next_range(0, 15)) + "(r9)\n";
      case 8:
        return "  sw " + reg() + ", " +
               std::to_string(4 * rng.next_range(0, 15)) + "(r9)\n";
      default:
        // Calls only from main (leaf functions stay leaves).
        if (in_function || functions == 0)
          return "  addi " + reg() + ", " + reg() + ", 1\n";
        return "  call fn" + std::to_string(rng.next_range(0, functions - 1)) +
               "\n";
    }
  };

  std::string src = "main:\n  la r9, buf\n";
  // A bounded loop around the whole body exercises backward edges.
  const bool looped = opts.allow_loops && rng.next_bool(0.6);
  if (looped) {
    src += "  li r11, " + std::to_string(rng.next_range(2, 5)) + "\n";
    src += "mainloop:\n";
  }
  for (int s = 0; s < segments; ++s) {
    src += "seg" + std::to_string(s) + ":\n";
    const int count = static_cast<int>(rng.next_range(1, opts.max_insts_per_segment));
    for (int i = 0; i < count; ++i) src += random_inst(false);
    // Optional forward conditional branch (termination-safe).
    if (s + 2 < segments && rng.next_bool(0.5)) {
      const long long target = rng.next_range(s + 1, segments - 1);
      const char* cond = rng.next_bool() ? "beq" : "blt";
      src += std::string("  ") + cond + " " + reg() + ", " + reg() + ", seg" +
             std::to_string(target) + "\n";
    }
  }
  src += "seg" + std::to_string(segments) + ":\n";
  if (looped) {
    src += "  addi r11, r11, -1\n  bnez r11, mainloop\n";
  }
  // Observable epilogue: dump r1..r8.
  src += "  li r10, 0xFFFF0008\n";
  for (int r = 1; r <= 8; ++r)
    src += "  sw r" + std::to_string(r) + ", 0(r10)\n";
  src += "  halt\n";

  for (int f = 0; f < functions; ++f) {
    src += "fn" + std::to_string(f) + ":\n";
    const int count = static_cast<int>(rng.next_range(1, 5));
    for (int i = 0; i < count; ++i) src += random_inst(true);
    // Some functions get an early-exit branch to test multi-ret merging.
    if (rng.next_bool(0.4)) {
      src += "  beqz " + reg() + ", fn" + std::to_string(f) + "_alt\n";
      src += "  ret\n";
      src += "fn" + std::to_string(f) + "_alt:\n";
      src += random_inst(true);
    }
    src += "  ret\n";
  }
  src += ".data\nbuf: .space 64\n";
  return src;
}

}  // namespace sofia::test
