#include <gtest/gtest.h>

#include "isa/disasm.hpp"
#include "isa/isa.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sofia::isa {
namespace {

Instruction make(Opcode op, unsigned rd = 0, unsigned ra = 0, unsigned rb = 0,
                 std::int32_t imm = 0) {
  Instruction i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.ra = static_cast<std::uint8_t>(ra);
  i.rb = static_cast<std::uint8_t>(rb);
  i.imm = imm;
  return i;
}

TEST(Isa, NopEncodesToZeroWord) {
  EXPECT_EQ(encode(make(Opcode::kNop)), 0u);
  const auto d = decode(0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->op, Opcode::kNop);
}

TEST(Isa, RoundTripRType) {
  const auto inst = make(Opcode::kAdd, 3, 4, 5);
  const auto d = decode(encode(inst));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, inst);
}

TEST(Isa, RoundTripITypeSignedImmediates) {
  for (const std::int32_t imm : {-8192, -1, 0, 1, 8191}) {
    const auto inst = make(Opcode::kAddi, 7, 2, 0, imm);
    const auto d = decode(encode(inst));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, inst) << imm;
  }
}

TEST(Isa, RoundTripUnsignedImmediates) {
  const auto inst = make(Opcode::kOri, 1, 1, 0, 0x3FFF);
  const auto d = decode(encode(inst));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->imm, 0x3FFF);  // zero-extended, not -1
}

TEST(Isa, RoundTripLui) {
  const auto inst = make(Opcode::kLui, 9, 0, 0, 0x3FFFF);
  const auto d = decode(encode(inst));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, inst);
}

TEST(Isa, RoundTripBranchOffsets) {
  for (const std::int32_t off : {-8192, -100, 0, 100, 8191}) {
    const auto inst = make(Opcode::kBlt, 0, 3, 4, off);
    const auto d = decode(encode(inst));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, inst) << off;
  }
}

TEST(Isa, RoundTripJal) {
  for (const std::int32_t off : {-(1 << 21), -1, 0, (1 << 21) - 1}) {
    const auto inst = make(Opcode::kJal, kRegLr, 0, 0, off);
    const auto d = decode(encode(inst));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, inst) << off;
  }
}

TEST(Isa, RoundTripStore) {
  const auto inst = make(Opcode::kSw, 5, 14, 0, -4);
  const auto d = decode(encode(inst));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, inst);
}

TEST(Isa, EncodeRejectsOutOfRangeImmediates) {
  EXPECT_THROW(encode(make(Opcode::kAddi, 1, 1, 0, 8192)), Error);
  EXPECT_THROW(encode(make(Opcode::kAddi, 1, 1, 0, -8193)), Error);
  EXPECT_THROW(encode(make(Opcode::kOri, 1, 1, 0, -1)), Error);
  EXPECT_THROW(encode(make(Opcode::kSlli, 1, 1, 0, 32)), Error);
  EXPECT_THROW(encode(make(Opcode::kLui, 1, 0, 0, 0x40000)), Error);
  EXPECT_THROW(encode(make(Opcode::kBeq, 0, 1, 2, 8192)), Error);
  EXPECT_THROW(encode(make(Opcode::kJal, 15, 0, 0, 1 << 21)), Error);
}

TEST(Isa, DecodeRejectsUndefinedOpcodes) {
  for (std::uint32_t op = kMaxOpcode + 1; op < 64; ++op) {
    EXPECT_FALSE(decode(op << 26).has_value()) << op;
  }
}

TEST(Isa, ExhaustiveRoundTripOverRandomValidInstructions) {
  Rng rng(123);
  for (int t = 0; t < 5000; ++t) {
    const auto op = static_cast<Opcode>(rng.next_below(kMaxOpcode + 1));
    Instruction inst;
    inst.op = op;
    inst.rd = static_cast<std::uint8_t>(rng.next_below(16));
    inst.ra = static_cast<std::uint8_t>(rng.next_below(16));
    inst.rb = static_cast<std::uint8_t>(rng.next_below(16));
    // Draw an immediate valid for the format.
    switch (op) {
      case Opcode::kNop:
      case Opcode::kHalt:
        inst.rd = inst.ra = inst.rb = 0;
        break;
      case Opcode::kAndi:
      case Opcode::kOri:
      case Opcode::kXori:
        inst.imm = static_cast<std::int32_t>(rng.next_below(1 << 14));
        inst.rb = 0;
        break;
      case Opcode::kSlli:
      case Opcode::kSrli:
      case Opcode::kSrai:
        inst.imm = static_cast<std::int32_t>(rng.next_below(32));
        inst.rb = 0;
        break;
      case Opcode::kLui:
        inst.imm = static_cast<std::int32_t>(rng.next_below(1 << 18));
        inst.ra = inst.rb = 0;
        break;
      case Opcode::kJal:
        inst.imm = static_cast<std::int32_t>(rng.next_range(-(1 << 21), (1 << 21) - 1));
        inst.ra = inst.rb = 0;
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu:
        inst.imm = static_cast<std::int32_t>(rng.next_range(-8192, 8191));
        inst.rd = 0;
        break;
      default:
        if (op >= Opcode::kAdd && op <= Opcode::kMul) {
          inst.imm = 0;
        } else {
          inst.imm = static_cast<std::int32_t>(rng.next_range(-8192, 8191));
          inst.rb = 0;
        }
        break;
    }
    const auto d = decode(encode(inst));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, inst) << std::string(mnemonic(op));
  }
}

TEST(Isa, InstructionClasses) {
  EXPECT_TRUE(is_store(Opcode::kSw));
  EXPECT_TRUE(is_store(Opcode::kSb));
  EXPECT_FALSE(is_store(Opcode::kLw));
  EXPECT_TRUE(is_load(Opcode::kLbu));
  EXPECT_FALSE(is_load(Opcode::kSw));
  EXPECT_TRUE(is_cond_branch(Opcode::kBgeu));
  EXPECT_FALSE(is_cond_branch(Opcode::kJal));
  EXPECT_TRUE(is_jump(Opcode::kJalr));
  EXPECT_TRUE(is_control(Opcode::kHalt));
  EXPECT_FALSE(is_control(Opcode::kAdd));
  EXPECT_TRUE(writes_rd(Opcode::kAdd));
  EXPECT_TRUE(writes_rd(Opcode::kJal));
  EXPECT_FALSE(writes_rd(Opcode::kSw));
  EXPECT_FALSE(writes_rd(Opcode::kBeq));
  EXPECT_FALSE(writes_rd(Opcode::kNop));
}

TEST(Isa, RegisterNames) {
  EXPECT_EQ(reg_name(0), "r0");
  EXPECT_EQ(reg_name(13), "r13");
  EXPECT_EQ(reg_name(14), "sp");
  EXPECT_EQ(reg_name(15), "lr");
}

TEST(Disasm, BasicForms) {
  EXPECT_EQ(disassemble(make(Opcode::kAdd, 1, 2, 3)), "add r1, r2, r3");
  EXPECT_EQ(disassemble(make(Opcode::kAddi, 1, 0, 0, -5)), "addi r1, r0, -5");
  EXPECT_EQ(disassemble(make(Opcode::kLw, 2, 14, 0, 8)), "lw r2, 8(sp)");
  EXPECT_EQ(disassemble(make(Opcode::kSw, 2, 14, 0, -8)), "sw r2, -8(sp)");
  EXPECT_EQ(disassemble(make(Opcode::kHalt)), "halt");
}

TEST(Disasm, BranchTargetsUseAddress) {
  // beq at 0x100 with offset +4 words -> target 0x110.
  const std::string s = disassemble(make(Opcode::kBeq, 0, 1, 2, 4), 0x100);
  EXPECT_NE(s.find("0x00000110"), std::string::npos) << s;
}

TEST(Disasm, UndecodableWordPrintsRaw) {
  const std::string s = disassemble_word(0xFC000000u, 0);
  EXPECT_NE(s.find(".word"), std::string::npos);
}

}  // namespace
}  // namespace sofia::isa
