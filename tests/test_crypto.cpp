#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "crypto/block_cipher.hpp"
#include "crypto/cbc_mac.hpp"
#include "crypto/cipher_key.hpp"
#include "crypto/ctr.hpp"
#include "crypto/key_set.hpp"
#include "crypto/rectangle80.hpp"
#include "crypto/speck64.hpp"
#include "support/rng.hpp"

namespace sofia::crypto {
namespace {

// ---------------------------------------------------------------------------
// SPECK-64/128: published test vector (Beaulieu et al., "The SIMON and SPECK
// Families of Lightweight Block Ciphers", 2013, Appendix C).
// ---------------------------------------------------------------------------

TEST(Speck64, PublishedTestVector) {
  // Key = 1b1a1918 13121110 0b0a0908 03020100 (l2 l1 l0 k0)
  // Plaintext = 3b726574 7475432d, Ciphertext = 8c6fa548 454e028b
  CipherKey key{};
  const std::uint32_t kw[4] = {0x03020100u, 0x0b0a0908u, 0x13121110u, 0x1b1a1918u};
  for (int i = 0; i < 4; ++i)
    for (int b = 0; b < 4; ++b)
      key[static_cast<std::size_t>(4 * i + b)] =
          static_cast<std::uint8_t>(kw[i] >> (8 * b));
  Speck64 cipher(key);
  const std::uint64_t pt = (static_cast<std::uint64_t>(0x3b726574u) << 32) | 0x7475432du;
  const std::uint64_t ct = (static_cast<std::uint64_t>(0x8c6fa548u) << 32) | 0x454e028bu;
  EXPECT_EQ(cipher.encrypt(pt), ct);
  EXPECT_EQ(cipher.decrypt(ct), pt);
}

// ---------------------------------------------------------------------------
// Structural properties shared by both ciphers.
// ---------------------------------------------------------------------------

class CipherProperty : public ::testing::TestWithParam<CipherKind> {
 protected:
  std::unique_ptr<BlockCipher64> make(std::uint64_t seed = 1) const {
    Rng rng(seed);
    CipherKey key{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u32());
    return make_cipher(GetParam(), key);
  }
};

TEST_P(CipherProperty, DecryptInvertsEncrypt) {
  const auto cipher = make();
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t pt = rng.next_u64();
    EXPECT_EQ(cipher->decrypt(cipher->encrypt(pt)), pt);
  }
}

TEST_P(CipherProperty, EncryptIsInjectiveOnSample) {
  const auto cipher = make();
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 2000; ++i)
    outputs.insert(cipher->encrypt(i * 0x9E3779B97F4A7C15ull));
  EXPECT_EQ(outputs.size(), 2000u);
}

TEST_P(CipherProperty, AvalancheOnPlaintextBitFlip) {
  const auto cipher = make();
  Rng rng(5);
  double total_flips = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t pt = rng.next_u64();
    const unsigned bit = static_cast<unsigned>(rng.next_below(64));
    const std::uint64_t a = cipher->encrypt(pt);
    const std::uint64_t b = cipher->encrypt(pt ^ (1ull << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double mean = total_flips / trials;
  // A random permutation flips 32 bits on average; accept a generous band.
  EXPECT_GT(mean, 24.0);
  EXPECT_LT(mean, 40.0);
}

TEST_P(CipherProperty, KeySensitivity) {
  Rng rng(17);
  CipherKey k1{};
  for (auto& b : k1) b = static_cast<std::uint8_t>(rng.next_u32());
  CipherKey k2 = k1;
  k2[3] ^= 0x01;  // single key-bit difference
  const auto c1 = make_cipher(GetParam(), k1);
  const auto c2 = make_cipher(GetParam(), k2);
  int differing = 0;
  for (std::uint64_t i = 0; i < 64; ++i)
    differing += (c1->encrypt(i) != c2->encrypt(i));
  EXPECT_EQ(differing, 64);
}

TEST_P(CipherProperty, NotIdentityOrLinear) {
  const auto cipher = make();
  EXPECT_NE(cipher->encrypt(0), 0u);
  // XOR-linearity check: E(a^b) != E(a)^E(b)^E(0) for random samples.
  Rng rng(3);
  int linear_hits = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    if (cipher->encrypt(a ^ b) ==
        (cipher->encrypt(a) ^ cipher->encrypt(b) ^ cipher->encrypt(0)))
      ++linear_hits;
  }
  EXPECT_EQ(linear_hits, 0);
}

INSTANTIATE_TEST_SUITE_P(AllCiphers, CipherProperty,
                         ::testing::Values(CipherKind::kRectangle80,
                                           CipherKind::kSpeck64_128),
                         [](const auto& info) {
                           return info.param == CipherKind::kRectangle80
                                      ? "Rectangle80"
                                      : "Speck64";
                         });

// ---------------------------------------------------------------------------
// RECTANGLE-80 specifics.
// ---------------------------------------------------------------------------

TEST(Rectangle80, RoundConstantSequenceMatchesLfsr) {
  // First constants of the published 5-bit LFSR sequence.
  const auto rc = Rectangle80::round_constants();
  const std::uint8_t expected[] = {0x01, 0x02, 0x04, 0x09, 0x12, 0x05, 0x0B,
                                   0x16, 0x0C, 0x19, 0x13, 0x07, 0x0F};
  for (std::size_t i = 0; i < std::size(expected); ++i)
    EXPECT_EQ(rc[i], expected[i]) << "RC[" << i << "]";
}

TEST(Rectangle80, RoundConstantsNonRepeatingWithinPeriod) {
  const auto rc = Rectangle80::round_constants();
  std::set<std::uint8_t> seen(rc.begin(), rc.end());
  EXPECT_EQ(seen.size(), rc.size());  // 25 < 31 = LFSR period
}

TEST(Rectangle80, NameAndFactory) {
  const auto c = make_cipher(CipherKind::kRectangle80, make_key(1, 2));
  EXPECT_EQ(c->name(), "RECTANGLE-80");
  EXPECT_EQ(to_string(CipherKind::kRectangle80), "RECTANGLE-80");
  EXPECT_EQ(to_string(CipherKind::kSpeck64_128), "SPECK-64/128");
}

TEST(Rectangle80, PinnedRegressionVectors) {
  // Official test vectors are unavailable offline (DESIGN.md §1); these
  // values pin the implementation's current behavior so that refactoring
  // cannot silently change the cipher (which would break every transformed
  // binary in the field).
  Rectangle80 zero(make_key(0, 0));
  EXPECT_EQ(zero.encrypt(0), 0x0874e8b1e3542d96ull);
  EXPECT_EQ(zero.encrypt(1), 0xb17f5eb0e6abccd3ull);
  Rectangle80 keyed(make_key(0x0123456789ABCDEFull, 0x0000000000004455ull));
  EXPECT_EQ(keyed.encrypt(0x0011223344556677ull), 0xa8d2bc604ff8d7ffull);
  EXPECT_EQ(keyed.decrypt(0xa8d2bc604ff8d7ffull), 0x0011223344556677ull);
}

TEST(Rectangle80, OnlyFirstTenKeyBytesMatter) {
  CipherKey a = make_key(0x1111111111111111ull, 0x2222222222222222ull);
  CipherKey b = a;
  b[10] ^= 0xFF;  // beyond the 80-bit key
  b[15] ^= 0xFF;
  Rectangle80 ca(a), cb(b);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(ca.encrypt(i), cb.encrypt(i));
  b = a;
  b[9] ^= 0x01;  // inside the 80-bit key
  Rectangle80 cc(b);
  EXPECT_NE(ca.encrypt(0), cc.encrypt(0));
}

// ---------------------------------------------------------------------------
// SOFIA CTR counter construction.
// ---------------------------------------------------------------------------

TEST(Ctr, CounterPackingLayout) {
  const std::uint64_t c = pack_counter(0xABCD, 0x123456, 0x654321);
  EXPECT_EQ(c >> 48, 0xABCDu);
  EXPECT_EQ((c >> 24) & 0xFFFFFF, 0x123456u);
  EXPECT_EQ(c & 0xFFFFFF, 0x654321u);
}

TEST(Ctr, CounterTruncatesAddressesTo24Bits) {
  EXPECT_EQ(pack_counter(0, 0xFF123456, 0xEE654321),
            pack_counter(0, 0x123456, 0x654321));
}

TEST(Ctr, DistinctCountersForDistinctEdges) {
  // The CFI property rests on counter uniqueness per (prev, cur) pair.
  std::set<std::uint64_t> counters;
  for (std::uint32_t prev = 0; prev < 40; ++prev)
    for (std::uint32_t cur = 0; cur < 40; ++cur)
      counters.insert(pack_counter(7, prev, cur));
  EXPECT_EQ(counters.size(), 1600u);
}

TEST(Ctr, KeystreamDependsOnAllCounterFields) {
  const auto cipher = make_cipher(CipherKind::kSpeck64_128, make_key(42, 43));
  const std::uint32_t base = keystream32(*cipher, 1, 2, 3);
  EXPECT_NE(keystream32(*cipher, 9, 2, 3), base);
  EXPECT_NE(keystream32(*cipher, 1, 9, 3), base);
  EXPECT_NE(keystream32(*cipher, 1, 2, 9), base);
}

TEST(Ctr, XorRoundTripsInstruction) {
  const auto cipher = make_cipher(CipherKind::kRectangle80, make_key(7, 8));
  const std::uint32_t inst = 0x0880C001u;
  const std::uint32_t ks = keystream32(*cipher, 0x5AFE, 0x10, 0x11);
  const std::uint32_t enc = inst ^ ks;
  EXPECT_NE(enc, inst);
  EXPECT_EQ(enc ^ keystream32(*cipher, 0x5AFE, 0x10, 0x11), inst);
}

TEST(Ctr, GranularityNames) {
  EXPECT_EQ(to_string(Granularity::kPerWord), "per-word");
  EXPECT_EQ(to_string(Granularity::kPerPair), "per-pair");
}

// ---------------------------------------------------------------------------
// CBC-MAC.
// ---------------------------------------------------------------------------

TEST(CbcMac, MatchesManualChaining) {
  const auto cipher = make_cipher(CipherKind::kSpeck64_128, make_key(1, 2));
  const std::uint32_t words[] = {0x11111111, 0x22222222, 0x33333333, 0x44444444};
  const std::uint64_t m0 = 0x2222222211111111ull;
  const std::uint64_t m1 = 0x4444444433333333ull;
  // Data blocks chain as before; the word count is a final block of its own.
  const std::uint64_t data_chain = cipher->encrypt(cipher->encrypt(m0) ^ m1);
  EXPECT_EQ(cbc_mac64(*cipher, words), cipher->encrypt(data_chain ^ 4));
}

TEST(CbcMac, ZeroPaddingDoesNotCollide) {
  // Regression: plain zero padding made {w} and {w, 0} chain through the
  // same final block and collide; the length block keeps them apart.
  const auto cipher = make_cipher(CipherKind::kSpeck64_128, make_key(1, 2));
  const std::uint32_t one[] = {0xAAAAAAAA};
  const std::uint32_t one_padded[] = {0xAAAAAAAA, 0};
  EXPECT_NE(cbc_mac64(*cipher, one), cbc_mac64(*cipher, one_padded));

  const std::uint32_t odd[] = {0xAAAAAAAA, 0xBBBBBBBB, 0xCCCCCCCC};
  const std::uint32_t padded[] = {0xAAAAAAAA, 0xBBBBBBBB, 0xCCCCCCCC, 0};
  EXPECT_NE(cbc_mac64(*cipher, odd), cbc_mac64(*cipher, padded));
}

TEST(CbcMac, TrailingWordCannotCancelTheLengthBlock) {
  // An in-block length fold would still let {w} collide with {w, x} for
  // x == len ^ (len + 1); the dedicated length block is data-independent.
  const auto cipher = make_cipher(CipherKind::kSpeck64_128, make_key(1, 2));
  const std::uint32_t one[] = {0xAAAAAAAA};
  for (const std::uint32_t x : {1u, 2u, 3u, 0xFFFFFFFFu}) {
    const std::uint32_t two[] = {0xAAAAAAAA, x};
    EXPECT_NE(cbc_mac64(*cipher, one), cbc_mac64(*cipher, two)) << x;
  }
}

TEST(CbcMac, EmptyMessageIsZeroChain) {
  const auto cipher = make_cipher(CipherKind::kSpeck64_128, make_key(1, 2));
  EXPECT_EQ(cbc_mac64(*cipher, {}), 0u);
}

TEST(CbcMac, SensitiveToEveryWord) {
  const auto cipher = make_cipher(CipherKind::kRectangle80, make_key(3, 4));
  std::vector<std::uint32_t> words = {1, 2, 3, 4, 5, 6};
  const std::uint64_t base = cbc_mac64(*cipher, words);
  for (std::size_t i = 0; i < words.size(); ++i) {
    auto tampered = words;
    tampered[i] ^= 0x400;
    EXPECT_NE(cbc_mac64(*cipher, tampered), base) << "word " << i;
  }
}

TEST(CbcMac, SensitiveToWordOrder) {
  const auto cipher = make_cipher(CipherKind::kRectangle80, make_key(3, 4));
  const std::uint32_t a[] = {1, 2, 3, 4, 5, 6};
  const std::uint32_t b[] = {1, 2, 5, 6, 3, 4};  // swapped cipher blocks
  EXPECT_NE(cbc_mac64(*cipher, a), cbc_mac64(*cipher, b));
}

TEST(CbcMac, KeySeparation) {
  // The paper uses distinct keys per block type; same message must yield
  // unrelated tags under k2 vs k3.
  Rng rng(21);
  const auto ks = KeySet::random(CipherKind::kSpeck64_128, rng);
  const auto exec_cipher = ks.exec_mac_cipher();
  const auto mux_cipher = ks.mux_mac_cipher();
  const std::uint32_t words[] = {10, 20, 30, 40, 50, 60};
  EXPECT_NE(cbc_mac64(*exec_cipher, words), cbc_mac64(*mux_cipher, words));
}

TEST(CbcMac, TagWordSplit) {
  const std::uint64_t tag = 0x1122334455667788ull;
  EXPECT_EQ(mac_word1(tag), 0x55667788u);
  EXPECT_EQ(mac_word2(tag), 0x11223344u);
  EXPECT_EQ((static_cast<std::uint64_t>(mac_word2(tag)) << 32) | mac_word1(tag), tag);
}

TEST(CbcMac, Truncation) {
  EXPECT_EQ(truncate_tag(0xFFFFFFFFFFFFFFFFull, 8), 0xFFull);
  EXPECT_EQ(truncate_tag(0x1234567890ABCDEFull, 16), 0xCDEFull);
  EXPECT_EQ(truncate_tag(0x1234567890ABCDEFull, 64), 0x1234567890ABCDEFull);
}

// ---------------------------------------------------------------------------
// KeySet.
// ---------------------------------------------------------------------------

TEST(KeySet, RandomIsDeterministicPerSeed) {
  Rng a(5), b(5);
  const auto ka = KeySet::random(CipherKind::kRectangle80, a);
  const auto kb = KeySet::random(CipherKind::kRectangle80, b);
  EXPECT_EQ(ka.k1, kb.k1);
  EXPECT_EQ(ka.k2, kb.k2);
  EXPECT_EQ(ka.k3, kb.k3);
  EXPECT_EQ(ka.omega, kb.omega);
}

TEST(KeySet, ThreeDistinctKeys) {
  Rng rng(6);
  const auto ks = KeySet::random(CipherKind::kRectangle80, rng);
  EXPECT_NE(ks.k1, ks.k2);
  EXPECT_NE(ks.k2, ks.k3);
  EXPECT_NE(ks.k1, ks.k3);
}

TEST(KeySet, ExampleIsStable) {
  const auto a = KeySet::example(CipherKind::kRectangle80);
  const auto b = KeySet::example(CipherKind::kRectangle80);
  EXPECT_EQ(a.k1, b.k1);
  EXPECT_EQ(a.omega, 0x5AFE);
}

}  // namespace
}  // namespace sofia::crypto
