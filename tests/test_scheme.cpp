// The protection-scheme layer: registry contract, the sofia-cbcmac
// extraction goldens (hardened images and RunResults captured before
// src/scheme/ existed — the refactor must be invisible), and the
// differential tamper suite across every scheme x cipher x backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "scheme/scheme.hpp"
#include "support/error.hpp"
#include "verify/verify.hpp"

namespace {

using namespace sofia;

std::uint64_t fnv1a(const std::vector<std::uint32_t>& words) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint32_t w : words) {
    for (int b = 0; b < 4; ++b) {
      h ^= (w >> (8 * b)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

// ---- registry contract -----------------------------------------------------

TEST(SchemeRegistry, ListsTheBuiltInsInStableOrder) {
  const auto& reg = scheme::scheme_registry();
  ASSERT_EQ(reg.size(), 4u);
  EXPECT_EQ(reg[0].name, "sofia-cbcmac");
  EXPECT_EQ(reg[1].name, "sponge");
  EXPECT_EQ(reg[2].name, "null");
  EXPECT_EQ(reg[3].name, "flta");
  EXPECT_EQ(reg[0].name, scheme::kDefaultScheme);
  for (const auto& entry : reg) {
    const auto& s = entry.get();
    EXPECT_EQ(s.name(), entry.name);
    EXPECT_EQ(s.describe(), entry.description);
    EXPECT_FALSE(entry.description.empty());
  }
  EXPECT_EQ(scheme::scheme_names(),
            (std::vector<std::string>{"sofia-cbcmac", "sponge", "null",
                                      "flta"}));
}

TEST(SchemeRegistry, LookupAcceptsKeysAndRejectsUnknown) {
  for (const auto& name : scheme::scheme_names()) {
    EXPECT_TRUE(scheme::is_scheme(name));
    EXPECT_EQ(scheme::get_scheme(name).name(), name);
  }
  EXPECT_FALSE(scheme::is_scheme("cbc"));
  EXPECT_FALSE(scheme::is_scheme(""));
  try {
    scheme::get_scheme("hmac");
    FAIL() << "unknown scheme must throw";
  } catch (const Error& e) {
    // The error must list the registered names (the CLI relies on it).
    EXPECT_NE(std::string(e.what()).find("sofia-cbcmac"), std::string::npos)
        << e.what();
  }
}

TEST(SchemeRegistry, Traits) {
  EXPECT_TRUE(scheme::get_scheme("sofia-cbcmac").traits().authenticated);
  EXPECT_TRUE(scheme::get_scheme("sofia-cbcmac").traits().uses_granularity);
  EXPECT_TRUE(scheme::get_scheme("sponge").traits().authenticated);
  EXPECT_FALSE(scheme::get_scheme("sponge").traits().uses_granularity);
  EXPECT_FALSE(scheme::get_scheme("null").traits().authenticated);
  EXPECT_TRUE(scheme::get_scheme("null").traits().uses_granularity);
}

// sim::SimConfig cannot name scheme::kDefaultScheme (layering); its literal
// default must stay equal to it, as must every other layer's default.
TEST(SchemeRegistry, DefaultsAgreeAcrossLayers) {
  EXPECT_EQ(sim::SimConfig{}.scheme, scheme::kDefaultScheme);
  EXPECT_EQ(pipeline::DeviceProfile{}.scheme, scheme::kDefaultScheme);
  EXPECT_EQ(xform::Options{}.scheme, scheme::kDefaultScheme);
}

TEST(SchemeRegistry, DeviceProfileParseAndFingerprint) {
  EXPECT_EQ(pipeline::DeviceProfile::parse_scheme("sponge"), "sponge");
  EXPECT_THROW(pipeline::DeviceProfile::parse_scheme("bogus"), Error);

  // The scheme axis is named unconditionally — even at the default — so
  // fingerprints from mixed-scheme sweeps can never collide.
  const auto fp = pipeline::DeviceProfile::paper_default().fingerprint();
  EXPECT_NE(fp.find("scheme=sofia-cbcmac"), std::string::npos) << fp;
  pipeline::DeviceProfile sponge = pipeline::DeviceProfile::paper_default();
  sponge.scheme = "sponge";
  EXPECT_NE(sponge.fingerprint().find("scheme=sponge"), std::string::npos);
  EXPECT_NE(sponge.to_json().find("\"scheme\":\"sponge\""), std::string::npos)
      << sponge.to_json();
}

TEST(SchemeRegistry, PipelineResolvesAndRejectsEarly) {
  pipeline::DeviceProfile p = pipeline::DeviceProfile::paper_default();
  auto good = pipeline::Pipeline::from_workload("fib", 1, 8, p);
  EXPECT_EQ(good.scheme().name(), "sofia-cbcmac");
  p.scheme = "no-such-scheme";
  auto bad = pipeline::Pipeline::from_workload("fib", 1, 8, p);
  EXPECT_THROW(bad.scheme(), Error);
  EXPECT_THROW(bad.run(), Error);
}

// ---- entry paths -----------------------------------------------------------

TEST(EntryPath, ExecutionEntryFetchesEveryWordInOrder) {
  const auto p = scheme::entry_path(0, 8);
  EXPECT_FALSE(p.is_mux);
  EXPECT_EQ(p.entry_word_index, 0u);
  EXPECT_EQ(p.first_inst, 2u);
  EXPECT_EQ(p.sched, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EntryPath, MuxPath1SkipsTheOtherHeaderWord) {
  const auto p = scheme::entry_path(1, 8);
  EXPECT_TRUE(p.is_mux);
  EXPECT_EQ(p.entry_word_index, 0u);
  EXPECT_EQ(p.first_inst, 3u);
  EXPECT_EQ(p.sched, (std::vector<std::uint32_t>{0, 2, 3, 4, 5, 6, 7}));
}

TEST(EntryPath, MuxPath2StartsAtWord1) {
  const auto p = scheme::entry_path(2, 8);
  EXPECT_TRUE(p.is_mux);
  EXPECT_EQ(p.entry_word_index, 1u);
  EXPECT_EQ(p.first_inst, 3u);
  EXPECT_EQ(p.sched, (std::vector<std::uint32_t>{1, 2, 3, 4, 5, 6, 7}));
}

// ---- sofia-cbcmac extraction goldens ---------------------------------------

struct GoldenStats {
  int status;
  int exit_code;
  std::uint64_t cycles, insts, nops, ctr_ops, cbc_ops, mac_verifications,
      store_gate_stalls;
};

struct GoldenRow {
  const char* workload;
  int cipher;       // crypto::CipherKind
  int granularity;  // crypto::Granularity
  std::uint64_t image_hash;
  GoldenStats cycle;
  GoldenStats functional;
};

// Captured from the pre-refactor tree (seed=1, size=16, example keys),
// before block sealing/opening moved into src/scheme/. Byte-identical
// images and identical RunResults on both backends are the refactor's
// central acceptance criterion.
const GoldenRow kGoldens[] = {
    {"fib", 0, 1, 0x27c31311d86f91ecull,
     {0, 0, 150151ull, 78237ull, 41517ull, 57480ull, 43110ull, 14370ull, 6384ull},
     {0, 0, 78237ull, 78237ull, 41517ull, 48ull, 36ull, 12ull, 0ull}},
    {"fib", 0, 0, 0x2b87bf806aed76e7ull,
     {0, 0, 249087ull, 78237ull, 41517ull, 119753ull, 47901ull, 15967ull, 19145ull},
     {0, 0, 78237ull, 78237ull, 41517ull, 90ull, 36ull, 12ull, 0ull}},
    {"fib", 1, 1, 0xeb9618a1a6ba1610ull,
     {0, 0, 150151ull, 78237ull, 41517ull, 57480ull, 43110ull, 14370ull, 6384ull},
     {0, 0, 78237ull, 78237ull, 41517ull, 48ull, 36ull, 12ull, 0ull}},
    {"fib", 1, 0, 0x76f6b60a15e4fb5full,
     {0, 0, 249087ull, 78237ull, 41517ull, 119753ull, 47901ull, 15967ull, 19145ull},
     {0, 0, 78237ull, 78237ull, 41517ull, 90ull, 36ull, 12ull, 0ull}},
    {"crc32", 0, 1, 0x29373121d49e1955ull,
     {0, 0, 3825ull, 1882ull, 843ull, 1436ull, 1077ull, 359ull, 0ull},
     {0, 0, 1882ull, 1882ull, 843ull, 40ull, 30ull, 10ull, 0ull}},
    {"crc32", 0, 0, 0xe187c9d04d585516ull,
     {0, 0, 6123ull, 1882ull, 843ull, 4072ull, 1629ull, 543ull, 2ull},
     {0, 0, 1882ull, 1882ull, 843ull, 74ull, 30ull, 10ull, 0ull}},
    {"crc32", 1, 1, 0xc97e7735743b7298ull,
     {0, 0, 3825ull, 1882ull, 843ull, 1436ull, 1077ull, 359ull, 0ull},
     {0, 0, 1882ull, 1882ull, 843ull, 40ull, 30ull, 10ull, 0ull}},
    {"crc32", 1, 0, 0x6f3a3bca48490c22ull,
     {0, 0, 6123ull, 1882ull, 843ull, 4072ull, 1629ull, 543ull, 2ull},
     {0, 0, 1882ull, 1882ull, 843ull, 74ull, 30ull, 10ull, 0ull}},
    {"bitcount", 0, 1, 0x8926caee552dd941ull,
     {0, 0, 5373ull, 3183ull, 1753ull, 2320ull, 1740ull, 580ull, 1ull},
     {0, 0, 3183ull, 3183ull, 1753ull, 32ull, 24ull, 8ull, 0ull}},
    {"bitcount", 0, 0, 0x5c2cbf5d78154259ull,
     {0, 0, 9379ull, 3183ull, 1753ull, 4583ull, 1830ull, 610ull, 6ull},
     {0, 0, 3183ull, 3183ull, 1753ull, 60ull, 24ull, 8ull, 0ull}},
    {"bitcount", 1, 1, 0x5f4dacbb8ad45d5aull,
     {0, 0, 5373ull, 3183ull, 1753ull, 2320ull, 1740ull, 580ull, 1ull},
     {0, 0, 3183ull, 3183ull, 1753ull, 32ull, 24ull, 8ull, 0ull}},
    {"bitcount", 1, 0, 0x5f1bc640be0173f0ull,
     {0, 0, 9379ull, 3183ull, 1753ull, 4583ull, 1830ull, 610ull, 6ull},
     {0, 0, 3183ull, 3183ull, 1753ull, 60ull, 24ull, 8ull, 0ull}},
    {"matmul", 0, 1, 0x188bcd89e04fe59bull,
     {0, 0, 98657ull, 51132ull, 14181ull, 52356ull, 39267ull, 13089ull, 2ull},
     {0, 0, 51132ull, 51132ull, 14181ull, 52ull, 39ull, 13ull, 0ull}},
    {"matmul", 0, 0, 0x1bbdc962de8e094cull,
     {0, 0, 156197ull, 51132ull, 14181ull, 102384ull, 40032ull, 13344ull, 6ull},
     {0, 0, 51132ull, 51132ull, 14181ull, 98ull, 39ull, 13ull, 0ull}},
    {"matmul", 1, 1, 0x8d170a7f9df57cafull,
     {0, 0, 98657ull, 51132ull, 14181ull, 52356ull, 39267ull, 13089ull, 2ull},
     {0, 0, 51132ull, 51132ull, 14181ull, 52ull, 39ull, 13ull, 0ull}},
    {"matmul", 1, 0, 0xbdcc3eadaa050962ull,
     {0, 0, 156197ull, 51132ull, 14181ull, 102384ull, 40032ull, 13344ull, 6ull},
     {0, 0, 51132ull, 51132ull, 14181ull, 98ull, 39ull, 13ull, 0ull}},
};

void expect_stats(const GoldenStats& g, const sim::RunResult& r,
                  const std::string& label) {
  EXPECT_EQ(static_cast<int>(r.status), g.status) << label;
  EXPECT_EQ(r.exit_code, g.exit_code) << label;
  EXPECT_EQ(r.stats.cycles, g.cycles) << label;
  EXPECT_EQ(r.stats.insts, g.insts) << label;
  EXPECT_EQ(r.stats.nops, g.nops) << label;
  EXPECT_EQ(r.stats.ctr_ops, g.ctr_ops) << label;
  EXPECT_EQ(r.stats.cbc_ops, g.cbc_ops) << label;
  EXPECT_EQ(r.stats.mac_verifications, g.mac_verifications) << label;
  EXPECT_EQ(r.stats.store_gate_stalls, g.store_gate_stalls) << label;
}

TEST(CbcmacGoldens, ImagesAndRunsMatchThePreRefactorCapture) {
  for (const auto& row : kGoldens) {
    pipeline::DeviceProfile profile = pipeline::DeviceProfile::example(
        static_cast<crypto::CipherKind>(row.cipher));
    profile.granularity = static_cast<crypto::Granularity>(row.granularity);
    const std::string label = std::string(row.workload) + " cipher=" +
                              std::to_string(row.cipher) + " gran=" +
                              std::to_string(row.granularity);

    auto p = pipeline::Pipeline::from_workload(row.workload, 1, 16, profile);
    EXPECT_EQ(fnv1a(p.hardened().image.text), row.image_hash) << label;
    expect_stats(row.cycle, p.run(), label + " backend=cycle");

    pipeline::DeviceProfile fp = profile;
    fp.backend = "functional";
    auto pf = pipeline::Pipeline::from_workload(row.workload, 1, 16, fp);
    expect_stats(row.functional, pf.run(), label + " backend=functional");
  }
}

// ---- cross-scheme behavior -------------------------------------------------

// sponge derives all keystream from the chained state, so the CTR
// granularity axis must not change the sealed bytes; sofia-cbcmac's must.
TEST(SchemeSealing, GranularityTraitIsHonest) {
  for (const auto& name : scheme::scheme_names()) {
    pipeline::DeviceProfile a = pipeline::DeviceProfile::paper_default();
    a.scheme = name;
    a.granularity = crypto::Granularity::kPerPair;
    pipeline::DeviceProfile b = a;
    b.granularity = crypto::Granularity::kPerWord;
    auto pa = pipeline::Pipeline::from_workload("fib", 1, 8, a);
    auto pb = pipeline::Pipeline::from_workload("fib", 1, 8, b);
    const bool same = pa.hardened().image.text == pb.hardened().image.text;
    EXPECT_EQ(same, !scheme::get_scheme(name).traits().uses_granularity)
        << name;
  }
}

// A sponge device and a CTR-layout image (or vice versa) must fail like a
// key mismatch: the keystream constructions are incompatible, so the body
// garbles and the verdict fires on the first block.
TEST(SchemeSealing, SpongeAndCtrLayoutsDoNotInteroperate) {
  pipeline::DeviceProfile cbc = pipeline::DeviceProfile::paper_default();
  pipeline::DeviceProfile spg = cbc;
  spg.scheme = "sponge";
  auto sealed_cbc = pipeline::Pipeline::from_workload("fib", 1, 8, cbc);
  auto sealed_spg = pipeline::Pipeline::from_workload("fib", 1, 8, spg);

  auto on_sponge = pipeline::Pipeline::from_image(sealed_cbc.hardened().image, spg);
  ASSERT_EQ(on_sponge.run().status, sim::RunResult::Status::kReset);
  EXPECT_EQ(on_sponge.run().reset.cause, sim::ResetCause::kStateCorruption);

  auto on_cbc = pipeline::Pipeline::from_image(sealed_spg.hardened().image, cbc);
  ASSERT_EQ(on_cbc.run().status, sim::RunResult::Status::kReset);
  EXPECT_EQ(on_cbc.run().reset.cause, sim::ResetCause::kMacMismatch);
}

// Pinned on purpose: sofia-cbcmac and null share the ctr_common block
// layout and a null device never reads the header, so a sofia-cbcmac image
// runs cleanly on a null device — integrity stripped, confidentiality kept.
TEST(SchemeSealing, NullDeviceRunsCbcmacImagesWithoutIntegrity) {
  pipeline::DeviceProfile cbc = pipeline::DeviceProfile::paper_default();
  auto sealed = pipeline::Pipeline::from_workload("fib", 1, 8, cbc);
  pipeline::DeviceProfile dev = cbc;
  dev.scheme = "null";
  auto runner = pipeline::Pipeline::from_image(sealed.hardened().image, dev);
  const auto& r = runner.run();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.stats.mac_verifications, 0u);
}

// ---- the differential tamper suite -----------------------------------------

struct TamperCase {
  const char* scheme;
  sim::ResetCause cause;  // the scheme's verification verdict
  bool authenticated;
};

const TamperCase kTamperCases[] = {
    {"sofia-cbcmac", sim::ResetCause::kMacMismatch, true},
    {"sponge", sim::ResetCause::kStateCorruption, true},
    {"null", sim::ResetCause::kNone, false},
    // flta layers the forward-edge label gate on the CBC-MAC substrate, so
    // generic ciphertext tampering still verdicts as a MAC mismatch.
    {"flta", sim::ResetCause::kMacMismatch, true},
};

bool verification_cause(sim::ResetCause c) {
  return c == sim::ResetCause::kMacMismatch ||
         c == sim::ResetCause::kStateCorruption;
}

/// Block word index of the entry block's first word.
std::uint32_t entry_block_word(const assembler::LoadImage& img,
                               std::uint32_t words_per_block) {
  const std::uint32_t w = (img.entry - img.text_base) / 4;
  return (w / words_per_block) * words_per_block;
}

class TamperSuite : public ::testing::TestWithParam<TamperCase> {
 protected:
  struct Combo {
    pipeline::Pipeline pipeline;
    std::string label;
  };

  std::vector<Combo> combos() {
    std::vector<Combo> out;
    for (const auto ck : {crypto::CipherKind::kRectangle80,
                          crypto::CipherKind::kSpeck64_128}) {
      for (const char* be : {"cycle", "functional"}) {
        pipeline::DeviceProfile p = pipeline::DeviceProfile::example(ck);
        p.scheme = GetParam().scheme;
        p.backend = be;
        out.push_back({pipeline::Pipeline::from_workload("fib", 1, 16, p),
                       std::string(GetParam().scheme) + "/" +
                           std::string(crypto::to_string(ck)) + "/" + be});
      }
    }
    return out;
  }
};

// Flipping one ciphertext bit in the instruction body must reset every
// authenticated scheme with exactly its verdict; "null" must never raise a
// verification cause (decode-side rules may still fire on the garbage).
TEST_P(TamperSuite, TamperedTextWordIsCaught) {
  for (auto& c : combos()) {
    const auto& clean = c.pipeline.run();
    ASSERT_TRUE(clean.ok()) << c.label;
    EXPECT_EQ(clean.exit_code, 0) << c.label;

    auto img = c.pipeline.hardened().image;
    img.text[img.text.size() / 2] ^= 0x10u;
    const auto r = c.pipeline.run_image(img);
    if (GetParam().authenticated) {
      ASSERT_EQ(r.status, sim::RunResult::Status::kReset) << c.label;
      EXPECT_EQ(r.reset.cause, GetParam().cause) << c.label;
    } else {
      EXPECT_FALSE(verification_cause(r.reset.cause)) << c.label;
    }
  }
}

// Forging the stored tag (the header words) garbles nothing the decoder
// ever sees, so only verification can catch it: authenticated schemes must
// reset with their verdict, while "null" — whose header carries no secret —
// must run to a clean exit.
TEST_P(TamperSuite, ForgedHeaderIsCaughtOnlyByVerification) {
  for (auto& c : combos()) {
    auto img = c.pipeline.hardened().image;
    const std::uint32_t base = entry_block_word(
        img, c.pipeline.profile().policy.words_per_block);
    img.text[base] ^= 0x4000u;
    const auto r = c.pipeline.run_image(img);
    if (GetParam().authenticated) {
      ASSERT_EQ(r.status, sim::RunResult::Status::kReset) << c.label;
      EXPECT_EQ(r.reset.cause, GetParam().cause) << c.label;
      EXPECT_EQ(r.reset.pc, (base * 4) + img.text_base) << c.label;
    } else {
      EXPECT_TRUE(r.ok()) << c.label << " status="
                          << static_cast<int>(r.status);
      EXPECT_EQ(r.exit_code, 0) << c.label;
    }
  }
}

// Splicing another block's ciphertext over the entry block (a relocation /
// block-skip attack) must garble under the address-bound counters and trip
// verification; "null" decrypts garbage but must not claim verification.
TEST_P(TamperSuite, RelocatedBlockIsCaught) {
  for (auto& c : combos()) {
    auto img = c.pipeline.hardened().image;
    const std::uint32_t b = c.pipeline.profile().policy.words_per_block;
    const std::uint32_t base = entry_block_word(img, b);
    const std::uint32_t donor = (base == 0) ? b : 0;
    ASSERT_GE(img.text.size(), donor + b);
    for (std::uint32_t j = 0; j < b; ++j)
      img.text[base + j] = img.text[donor + j];
    const auto r = c.pipeline.run_image(img);
    if (GetParam().authenticated) {
      ASSERT_EQ(r.status, sim::RunResult::Status::kReset) << c.label;
      EXPECT_EQ(r.reset.cause, GetParam().cause) << c.label;
    } else {
      EXPECT_FALSE(r.ok()) << c.label;
      EXPECT_FALSE(verification_cause(r.reset.cause)) << c.label;
    }
  }
}

// A transient fault on the fetch path (one flipped bus bit) is the same
// event as tampered ciphertext by the time the scheme sees it.
TEST_P(TamperSuite, InjectedFetchFaultIsCaught) {
  for (auto& c : combos()) {
    sim::SimConfig config = c.pipeline.sim_config();
    config.fault.enabled = true;
    config.fault.fetch_index = 100;
    config.fault.bit = 7;
    const auto r = c.pipeline.run_image(c.pipeline.hardened().image, config);
    if (GetParam().authenticated) {
      ASSERT_EQ(r.status, sim::RunResult::Status::kReset) << c.label;
      EXPECT_EQ(r.reset.cause, GetParam().cause) << c.label;
    } else {
      EXPECT_FALSE(verification_cause(r.reset.cause)) << c.label;
    }
  }
}

// The stats must say what the scheme does: an unauthenticated run counts no
// verifications and no MAC-class cipher work; authenticated runs count both.
TEST_P(TamperSuite, StatsReflectTheSchemeContract) {
  for (auto& c : combos()) {
    const auto& r = c.pipeline.run();
    ASSERT_TRUE(r.ok()) << c.label;
    if (GetParam().authenticated) {
      EXPECT_GT(r.stats.mac_verifications, 0u) << c.label;
    } else {
      EXPECT_EQ(r.stats.mac_verifications, 0u) << c.label;
      EXPECT_EQ(r.stats.cbc_ops, 0u) << c.label;
      EXPECT_EQ(r.stats.store_gate_stalls, 0u) << c.label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TamperSuite,
                         ::testing::ValuesIn(kTamperCases),
                         [](const auto& info) {
                           std::string n = info.param.scheme;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

// ---- forward-edge retargeting ----------------------------------------------

// Two dispatch sites with disjoint target sets. The data table is the
// attack surface: SOFIA seals only the text, so a dispatch slot is one
// unauthenticated store away from aiming the jump elsewhere.
constexpr char kDispatchVictim[] = R"(
main:
  li r1, 0
  la r4, table
  lw r5, 0(r4)
  .targets f1, f2
  jr r5
mid:
  la r4, table2
  lw r5, 0(r4)
  .targets g1, g2
  jr r5
done:
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
f1:
  addi r1, r1, 1
  j mid
f2:
  addi r1, r1, 2
  j mid
g1:
  addi r1, r1, 4
  j done
g2:
  addi r1, r1, 8
  j done
.data
table: .word f1, f2
table2: .word g1, g2
)";

std::uint32_t data_word(const assembler::LoadImage& img, std::uint32_t off) {
  std::uint32_t v = 0;
  for (std::uint32_t j = 0; j < 4; ++j)
    v |= static_cast<std::uint32_t>(img.data[off + j]) << (8 * j);
  return v;
}

void set_data_word(assembler::LoadImage& img, std::uint32_t off,
                   std::uint32_t v) {
  for (std::uint32_t j = 0; j < 4; ++j)
    img.data[off + j] = static_cast<std::uint8_t>(v >> (8 * j));
}

// Redirecting a dispatch slot across target sets is exactly the attack the
// forward-edge scheme exists for: flta must verdict it as a target-set
// violation, while the backward-edge-only scheme can at best watch the
// devirtualized compare chain bend into its trap — no verification cause,
// just silently wrong behavior.
TEST(ForwardEdge, RetargetedDispatchSlotIsOnlyAttributedByFlta) {
  const auto make = [](const char* scheme_name) {
    auto p = pipeline::DeviceProfile::example(crypto::CipherKind::kSpeck64_128);
    p.scheme = scheme_name;
    return pipeline::Pipeline::from_source(kDispatchVictim, p, "dispatch");
  };
  // table[0] sits at data offset 0, table2[0] at offset 8; the redirect
  // aims the first dispatch at the second set's first target.
  {
    auto session = make("flta");
    ASSERT_TRUE(session.run().ok());
    auto img = session.hardened().image;
    set_data_word(img, 0, data_word(img, 8));
    const auto r = session.run_image(img);
    ASSERT_EQ(r.status, sim::RunResult::Status::kReset);
    EXPECT_EQ(r.reset.cause, sim::ResetCause::kTargetSetViolation);
  }
  {
    auto session = make("sofia-cbcmac");
    const auto& clean = session.run();
    ASSERT_TRUE(clean.ok());
    auto img = session.hardened().image;
    set_data_word(img, 0, data_word(img, 8));
    const auto r = session.run_image(img);
    EXPECT_NE(r.status, sim::RunResult::Status::kReset)
        << "the backward-edge scheme has no forward-edge verdict";
    EXPECT_NE(r.output, clean.output) << "the bend must be live, not dead code";
  }
}

// The nearest text-level realization of the same redirect — splicing the
// other target's sealed block over the intended one — is caught by both
// MAC substrates, but sofia-cbcmac classifies it merely as a relocation;
// only the forward-edge scheme names the violated edge at runtime.
TEST(ForwardEdge, CbcmacSeesRetargetingOnlyAsARelocation) {
  auto p = pipeline::DeviceProfile::example(crypto::CipherKind::kSpeck64_128);
  p.scheme = "sofia-cbcmac";
  auto session = pipeline::Pipeline::from_source(kDispatchVictim, p,
                                                 "dispatch");
  ASSERT_TRUE(session.run().ok());
  auto img = session.hardened().image;
  const std::uint32_t b = session.profile().policy.words_per_block;
  // Under the non-gating scheme the table holds placed block addresses.
  const std::uint32_t f1_block = (data_word(img, 0) - img.text_base) / 4 / b;
  const std::uint32_t g1_block = (data_word(img, 8) - img.text_base) / 4 / b;
  ASSERT_NE(f1_block, g1_block);
  for (std::uint32_t j = 0; j < b; ++j)
    img.text[f1_block * b + j] = img.text[g1_block * b + j];
  const auto run = session.run_image(img);
  ASSERT_EQ(run.status, sim::RunResult::Status::kReset);
  EXPECT_EQ(run.reset.cause, sim::ResetCause::kMacMismatch);
  const auto rules = verify::error_rules(session.lint_image(img));
  EXPECT_NE(std::find(rules.begin(), rules.end(),
                      verify::Rule::kRelocatedBlock),
            rules.end())
      << "static attribution should say 'relocated block', nothing about "
         "the forward edge";
}

}  // namespace
