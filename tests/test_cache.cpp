// The content-addressed result cache: key derivation, the on-disk entry
// format, loud-miss semantics for corrupt entries, lock-free concurrent
// writers, LRU gc — and the contract that matters most to the drivers:
// a warm sweep/campaign renders a document byte-identical to the cold run
// and to a cache-less run, while executing zero jobs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "cache/result_store.hpp"
#include "campaign/campaign.hpp"
#include "driver/sweep.hpp"
#include "support/error.hpp"
#include "support/io.hpp"

namespace {

using namespace sofia;
namespace fs = std::filesystem;

/// A fresh directory under the system temp root, removed on destruction.
struct TempDir {
  fs::path path;

  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "sofia-cache-test-XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr)
      throw Error("mkdtemp failed for " + tmpl);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// A warning sink that records every message.
struct WarnLog {
  std::vector<std::string> messages;
  cache::WarnFn fn() {
    return [this](const std::string& m) { messages.push_back(m); };
  }
};

cache::Key key_of(std::string_view tag) {
  return cache::KeyBuilder("test-domain").field("tag", tag).finish();
}

/// The entry's on-disk location (mirrors ResultStore's layout contract:
/// root/<2-hex-prefix>/<64-hex>.sce).
fs::path entry_path(const fs::path& root, const cache::Key& key) {
  const std::string hex = cache::to_hex(key);
  return root / hex.substr(0, 2) /
         (hex + std::string(cache::kEntryExtension));
}

// ---- key derivation --------------------------------------------------------

TEST(KeyBuilder, DeterministicAndInputSensitive) {
  const auto a = cache::KeyBuilder("d").field("x", "hello").finish();
  const auto b = cache::KeyBuilder("d").field("x", "hello").finish();
  const auto c = cache::KeyBuilder("d").field("x", "hellp").finish();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(KeyBuilder, AdjacentFieldsCannotAlias) {
  // Without per-field length prefixes these two would hash the same bytes.
  const auto ab_c =
      cache::KeyBuilder("d").field("l", "ab").field("l", "c").finish();
  const auto a_bc =
      cache::KeyBuilder("d").field("l", "a").field("l", "bc").finish();
  EXPECT_NE(ab_c, a_bc);
}

TEST(KeyBuilder, LabelAndDomainSeparate) {
  const auto x = cache::KeyBuilder("d").field("x", "v").finish();
  const auto y = cache::KeyBuilder("d").field("y", "v").finish();
  const auto other_domain = cache::KeyBuilder("d2").field("x", "v").finish();
  EXPECT_NE(x, y);
  EXPECT_NE(x, other_domain);
}

TEST(KeyBuilder, NumberAndBytesFieldsAreTyped) {
  const std::vector<std::uint8_t> bytes = {1, 2, 3};
  const auto from_bytes = cache::KeyBuilder("d").field("f", bytes).finish();
  const auto from_text =
      cache::KeyBuilder("d").field("f", std::string_view("\x01\x02\x03", 3))
          .finish();
  // Same raw bytes through either overload — same key (the prefix encodes
  // label + length, not C++ type).
  EXPECT_EQ(from_bytes, from_text);
  const auto n1 = cache::KeyBuilder("d").field("n", std::uint64_t{1}).finish();
  const auto n2 = cache::KeyBuilder("d").field("n", std::uint64_t{2}).finish();
  EXPECT_NE(n1, n2);
}

// ---- store / load ----------------------------------------------------------

TEST(ResultStore, RoundTripsPayloadAndCountsStats) {
  TempDir dir;
  WarnLog warnings;
  cache::ResultStore store(dir.path, warnings.fn());

  const auto key = key_of("round-trip");
  EXPECT_FALSE(store.load(key, "job").has_value());  // silent miss
  EXPECT_TRUE(warnings.messages.empty());

  const std::string payload("result bytes \x00\x01\xff with binary", 28);
  store.store(key, "job", payload);
  const auto hit = store.load(key, "job");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);

  const auto s = store.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.stored, 1u);
  EXPECT_EQ(s.failures, 0u);
  EXPECT_TRUE(warnings.messages.empty());
}

TEST(ResultStore, SecondStoreSharesTheEntryAcrossInstances) {
  TempDir dir;
  const auto key = key_of("shared");
  {
    cache::ResultStore writer(dir.path);
    writer.store(key, "job", "payload");
  }
  cache::ResultStore reader(dir.path);  // a different coordinator
  const auto hit = reader.load(key, "job");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload");
}

TEST(ResultStore, WrongKindIsALoudMiss) {
  TempDir dir;
  WarnLog warnings;
  cache::ResultStore store(dir.path, warnings.fn());
  const auto key = key_of("kind");
  store.store(key, "sweep-job", "payload");
  EXPECT_FALSE(store.load(key, "campaign-trial").has_value());
  ASSERT_EQ(warnings.messages.size(), 1u);
  EXPECT_NE(warnings.messages[0].find("re-executing"), std::string::npos)
      << warnings.messages[0];
}

TEST(ResultStore, TruncatedEntryIsALoudMissThenReexecutable) {
  TempDir dir;
  WarnLog warnings;
  cache::ResultStore store(dir.path, warnings.fn());
  const auto key = key_of("truncated");
  store.store(key, "job", "a payload long enough to truncate");

  const fs::path path = entry_path(dir.path, key);
  const auto full = io::read_file(path.string());
  io::write_file(path.string(), full.substr(0, full.size() - 5));

  EXPECT_FALSE(store.load(key, "job").has_value());
  ASSERT_EQ(warnings.messages.size(), 1u);
  EXPECT_NE(warnings.messages[0].find("unusable"), std::string::npos);

  // Re-execution stores again and the entry is healthy once more.
  store.store(key, "job", "a payload long enough to truncate");
  EXPECT_TRUE(store.load(key, "job").has_value());
}

TEST(ResultStore, GarbledPayloadFailsTheDigestCheck) {
  TempDir dir;
  WarnLog warnings;
  cache::ResultStore store(dir.path, warnings.fn());
  const auto key = key_of("garbled");
  store.store(key, "job", "sixteen byte pay");

  const fs::path path = entry_path(dir.path, key);
  auto bytes = io::read_file(path.string());
  bytes.back() ^= 0x20;  // flip a payload bit; the length stays right
  io::write_file(path.string(), bytes);

  EXPECT_FALSE(store.load(key, "job").has_value());
  ASSERT_EQ(warnings.messages.size(), 1u);
  EXPECT_NE(warnings.messages[0].find("unusable"), std::string::npos);
}

TEST(ResultStore, WrongSchemaHeaderIsALoudMiss) {
  TempDir dir;
  WarnLog warnings;
  cache::ResultStore store(dir.path, warnings.fn());
  const auto key = key_of("schema");
  store.store(key, "job", "payload");

  const fs::path path = entry_path(dir.path, key);
  auto bytes = io::read_file(path.string());
  const auto pos = bytes.find("sofia-cache-entry-v1");
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, 20, "sofia-cache-entry-v9");
  io::write_file(path.string(), bytes);

  EXPECT_FALSE(store.load(key, "job").has_value());
  EXPECT_EQ(warnings.messages.size(), 1u);
}

TEST(ResultStore, EntryUnderTheWrongNameIsALoudMiss) {
  TempDir dir;
  WarnLog warnings;
  cache::ResultStore store(dir.path, warnings.fn());
  const auto key = key_of("original");
  const auto other = key_of("somewhere-else");
  store.store(key, "job", "payload");

  const fs::path to = entry_path(dir.path, other);
  fs::create_directories(to.parent_path());
  fs::rename(entry_path(dir.path, key), to);

  EXPECT_FALSE(store.load(other, "job").has_value());
  EXPECT_EQ(warnings.messages.size(), 1u);
}

TEST(ResultStore, StoreFailureWarnsAndCountsButNeverThrows) {
  TempDir dir;
  WarnLog warnings;
  cache::ResultStore store(dir.path, warnings.fn());
  const auto key = key_of("blocked");
  // Occupy the shard directory's name with a FILE so create_directories
  // inside store() must fail.
  const fs::path shard = entry_path(dir.path, key).parent_path();
  io::write_file(shard.string(), "not a directory");

  EXPECT_NO_THROW(store.store(key, "job", "payload"));
  EXPECT_EQ(store.stats().failures, 1u);
  EXPECT_EQ(warnings.messages.size(), 1u);
}

TEST(ResultStore, ConcurrentWritersOfTheSameKeyRaceBenignly) {
  TempDir dir;
  const auto key = key_of("contended");
  const std::string payload(4096, 'x');

  std::vector<std::thread> writers;
  for (int i = 0; i < 8; ++i) {
    writers.emplace_back([&] {
      cache::ResultStore store(dir.path);
      for (int r = 0; r < 25; ++r) store.store(key, "job", payload);
    });
  }
  for (auto& t : writers) t.join();

  cache::ResultStore reader(dir.path);
  const auto hit = reader.load(key, "job");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);
  const auto report = cache::verify_entries(dir.path);
  EXPECT_EQ(report.checked, 1u);
  EXPECT_EQ(report.bad, 0u);
  // No temp files left behind by any writer.
  std::uint64_t stray = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir.path))
    if (e.is_regular_file() &&
        e.path().extension() != cache::kEntryExtension)
      ++stray;
  EXPECT_EQ(stray, 0u);
}

// ---- maintenance -----------------------------------------------------------

TEST(Maintenance, ScanListsEntriesSortedByKey) {
  TempDir dir;
  cache::ResultStore store(dir.path);
  store.store(key_of("b"), "job", "2");
  store.store(key_of("a"), "job", "1");
  store.store(key_of("c"), "trial", "3");

  const auto entries = cache::scan(dir.path);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_LT(entries[0].key_hex, entries[1].key_hex);
  EXPECT_LT(entries[1].key_hex, entries[2].key_hex);
  for (const auto& e : entries) {
    EXPECT_TRUE(e.header_ok);
    EXPECT_FALSE(e.kind.empty());
    EXPECT_GT(e.file_bytes, e.payload_bytes);
  }
}

TEST(Maintenance, VerifyFlagsOnlyTheCorruptEntry) {
  TempDir dir;
  cache::ResultStore store(dir.path);
  store.store(key_of("good"), "job", "healthy payload");
  store.store(key_of("bad"), "job", "doomed payload!");

  const fs::path victim = entry_path(dir.path, key_of("bad"));
  auto bytes = io::read_file(victim.string());
  bytes.back() ^= 1;
  io::write_file(victim.string(), bytes);

  const auto report = cache::verify_entries(dir.path);
  EXPECT_EQ(report.checked, 2u);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.bad, 1u);
  ASSERT_EQ(report.problems.size(), 1u);
  EXPECT_NE(report.problems[0].find(cache::to_hex(key_of("bad"))),
            std::string::npos)
      << report.problems[0];
}

TEST(Maintenance, GcEvictsLeastRecentlyUsedFirst) {
  TempDir dir;
  cache::ResultStore store(dir.path);
  const auto old_key = key_of("old");
  const auto hot_key = key_of("hot");
  store.store(old_key, "job", std::string(1000, 'o'));
  store.store(hot_key, "job", std::string(1000, 'h'));

  // Make the recency order unambiguous (filesystem mtime granularity can
  // be a full second): push "old" into the past, then touch "hot" through
  // a load, which is the LRU signal gc uses.
  fs::last_write_time(entry_path(dir.path, old_key),
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(1));
  ASSERT_TRUE(store.load(hot_key, "job").has_value());

  const auto report = cache::gc(dir.path, 1500);  // room for one entry only
  EXPECT_EQ(report.kept, 1u);
  EXPECT_EQ(report.removed, 1u);
  EXPECT_FALSE(fs::exists(entry_path(dir.path, old_key)));
  EXPECT_TRUE(fs::exists(entry_path(dir.path, hot_key)));
}

TEST(Maintenance, GcSweepsStaleTempFiles) {
  TempDir dir;
  cache::ResultStore store(dir.path);
  store.store(key_of("live"), "job", "payload");

  const fs::path shard = entry_path(dir.path, key_of("live")).parent_path();
  const fs::path stale = shard / ".tmp-deadbeef-1-1";
  io::write_file(stale.string(), "half-written by a dead writer");
  fs::last_write_time(
      stale, fs::file_time_type::clock::now() - std::chrono::hours(1));

  const auto report = cache::gc(dir.path, 1u << 20);
  EXPECT_EQ(report.tmp_removed, 1u);
  EXPECT_EQ(report.removed, 0u);
  EXPECT_FALSE(fs::exists(stale));
}

TEST(ResultStore, OpenResolvesFlagThenEnvThenNothing) {
  TempDir dir;
  const std::string flag_dir = (dir.path / "flag").string();
  const std::string env_dir = (dir.path / "env").string();

  ::unsetenv("SOFIA_CACHE");
  EXPECT_EQ(cache::ResultStore::open(""), nullptr);

  ::setenv("SOFIA_CACHE", env_dir.c_str(), 1);
  auto from_env = cache::ResultStore::open("");
  ASSERT_NE(from_env, nullptr);
  EXPECT_EQ(from_env->root().string(), env_dir);

  auto from_flag = cache::ResultStore::open(flag_dir);  // flag wins over env
  ASSERT_NE(from_flag, nullptr);
  EXPECT_EQ(from_flag->root().string(), flag_dir);
  ::unsetenv("SOFIA_CACHE");
}

// ---- driver integration ----------------------------------------------------

driver::SweepSpec small_spec() {
  driver::SweepSpec spec;
  spec.name = "unit";
  spec.workloads = {"fib", "crc32"};
  spec.size_divisor = 16;
  spec.vary_seed = true;
  spec.configs = {driver::paper_default_config()};
  return spec;
}

TEST(SweepCache, WarmRunExecutesNothingAndRendersIdenticalBytes) {
  TempDir dir;
  const auto spec = small_spec();
  const auto uncached = driver::run_sweep(spec, 2);

  cache::ResultStore cold_store(dir.path);
  const auto cold = driver::run_sweep(spec, 2, {}, {}, &cold_store);
  EXPECT_EQ(cold.cached_jobs(), 0u);
  EXPECT_EQ(cold_store.stats().stored, cold.jobs.size());

  cache::ResultStore warm_store(dir.path);
  const auto warm = driver::run_sweep(spec, 2, {}, {}, &warm_store);
  EXPECT_EQ(warm.cached_jobs(), warm.jobs.size());
  EXPECT_EQ(warm_store.stats().hits, warm.jobs.size());
  EXPECT_EQ(warm_store.stats().misses, 0u);

  EXPECT_EQ(driver::to_json(uncached), driver::to_json(cold));
  EXPECT_EQ(driver::to_json(cold), driver::to_json(warm));
}

TEST(SweepCache, ShardedColdRunSeedsAFullWarmRun) {
  TempDir dir;
  const auto spec = small_spec();
  cache::ResultStore shard_store(dir.path);
  const auto shard0 =
      driver::run_sweep(spec, 1, {}, driver::ShardSpec{0, 2}, &shard_store);

  cache::ResultStore full_store(dir.path);
  const auto full = driver::run_sweep(spec, 1, {}, {}, &full_store);
  EXPECT_EQ(full.cached_jobs(), shard0.jobs.size());
  EXPECT_EQ(full_store.stats().hits, shard0.jobs.size());
  EXPECT_EQ(driver::to_json(full), driver::to_json(driver::run_sweep(spec, 1)));
}

TEST(SweepCache, CorruptEntryTriggersReexecutionNotFailure) {
  TempDir dir;
  const auto spec = small_spec();
  cache::ResultStore cold_store(dir.path);
  const auto cold = driver::run_sweep(spec, 1, {}, {}, &cold_store);

  // Garble every entry: the warm run must re-execute every job and still
  // render the same bytes.
  for (const auto& info : cache::scan(dir.path)) {
    auto bytes = io::read_file(info.path.string());
    bytes.back() ^= 1;
    io::write_file(info.path.string(), bytes);
  }

  WarnLog warnings;
  cache::ResultStore warm_store(dir.path, warnings.fn());
  const auto warm = driver::run_sweep(spec, 1, {}, {}, &warm_store);
  EXPECT_EQ(warm.cached_jobs(), 0u);
  EXPECT_EQ(warm_store.stats().misses, warm.jobs.size());
  EXPECT_EQ(warnings.messages.size(), warm.jobs.size());
  EXPECT_EQ(driver::to_json(cold), driver::to_json(warm));

  // The re-execution healed the entries.
  EXPECT_EQ(cache::verify_entries(dir.path).bad, 0u);
}

TEST(SweepCache, LintFindingsAreCachedDeterministically) {
  TempDir dir;
  auto spec = small_spec();
  spec.lint = true;
  cache::ResultStore cold_store(dir.path);
  const auto cold = driver::run_sweep(spec, 1, {}, {}, &cold_store);
  cache::ResultStore warm_store(dir.path);
  const auto warm = driver::run_sweep(spec, 1, {}, {}, &warm_store);
  EXPECT_EQ(warm.cached_jobs(), warm.jobs.size());
  EXPECT_EQ(driver::to_json(cold), driver::to_json(warm));
}

// ---- campaign integration --------------------------------------------------

campaign::CampaignSpec smoke_spec(std::uint32_t jobs) {
  auto spec = campaign::smoke(campaign::default_campaign());
  spec.jobs_per_cell = jobs;
  return spec;
}

TEST(CampaignCache, WarmRunServesEveryTrialFromDisk) {
  TempDir dir;
  const auto spec = smoke_spec(25);
  const auto uncached = campaign::run_campaign(spec, 2);

  cache::ResultStore cold_store(dir.path);
  const auto cold = campaign::run_campaign(spec, 2, {}, {}, &cold_store);
  EXPECT_EQ(cold.cached_trials, 0u);

  cache::ResultStore warm_store(dir.path);
  const auto warm = campaign::run_campaign(spec, 2, {}, {}, &warm_store);
  EXPECT_EQ(warm.cached_trials, warm_store.stats().hits);
  EXPECT_EQ(warm_store.stats().misses, 0u);
  EXPECT_GT(warm.cached_trials, 0u);

  EXPECT_EQ(campaign::to_json(uncached), campaign::to_json(cold));
  EXPECT_EQ(campaign::to_json(cold), campaign::to_json(warm));
}

TEST(CampaignCache, InterruptedShardResumesIntoTheFullRun) {
  TempDir dir;
  const auto spec = smoke_spec(20);
  // "Interrupted": only shard 0/2 completed before the coordinator died.
  cache::ResultStore shard_store(dir.path);
  (void)campaign::run_campaign(spec, 1, {}, driver::ShardSpec{0, 2},
                               &shard_store);
  const auto first_half = shard_store.stats().stored;
  EXPECT_GT(first_half, 0u);

  // The relaunched full run picks the first half up from disk and converges
  // to the same bytes as an uncached run.
  cache::ResultStore resume_store(dir.path);
  const auto resumed = campaign::run_campaign(spec, 2, {}, {}, &resume_store);
  EXPECT_EQ(resume_store.stats().hits, first_half);
  EXPECT_EQ(campaign::to_json(resumed),
            campaign::to_json(campaign::run_campaign(spec, 2)));
}

}  // namespace
