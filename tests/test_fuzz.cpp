// Property-based tests over randomly generated programs:
//
//  P1  vanilla and SOFIA executions are architecturally identical, for
//      every block policy and keystream granularity;
//  P2  any single-bit tamper of the ciphertext either resets the device or
//      leaves the output untouched (dead/never-fetched text) — never a
//      silent corruption;
//  P3  transformation is deterministic and layout invariants hold;
//  P4  any single transient fetch fault is detected (or architecturally
//      masked: impossible for SOFIA, where every fetched word is covered).
#include <gtest/gtest.h>

#include <set>

#include "crypto/ctr.hpp"
#include "random_program.hpp"
#include "reference_interp.hpp"
#include "sim_test_util.hpp"

namespace sofia {
namespace {

using test::GeneratorOptions;
using test::random_program;

class FuzzEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEquivalence, VanillaAndSofiaAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const std::string src = random_program(rng);
  SCOPED_TRACE(src);
  xform::Options opts;
  // Rotate through configurations by seed.
  switch (GetParam() % 4) {
    case 0: break;
    case 1: opts.granularity = crypto::Granularity::kPerPair; break;
    case 2: opts.policy = xform::BlockPolicy::small_unrestricted(); break;
    case 3:
      opts.policy = xform::BlockPolicy{12, 4};
      opts.granularity = crypto::Granularity::kPerPair;
      break;
  }
  test::expect_equivalent(src, opts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence, ::testing::Range(0, 48));

class FuzzTamper : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTamper, BitFlipsNeverCorruptSilently) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const std::string src = random_program(rng);
  SCOPED_TRACE(src);
  const auto keys = test::test_keys();
  const auto result = test::transform_source(src, keys);
  auto config = test::sofia_config(keys);
  config.max_cycles = 5'000'000;
  const auto clean = sim::run_image(result.image, config);
  ASSERT_TRUE(clean.ok());

  for (int flip = 0; flip < 8; ++flip) {
    auto image = result.image;
    const auto word = rng.next_below(image.text.size());
    const auto bit = static_cast<unsigned>(rng.next_below(32));
    image.text[word] ^= (1u << bit);
    const auto run = sim::run_image(image, config);
    const bool detected = run.status == sim::RunResult::Status::kReset;
    const bool untouched = run.ok() && run.output == clean.output;
    EXPECT_TRUE(detected || untouched)
        << "silent corruption: word " << word << " bit " << bit << " status "
        << to_string(run.status) << " output '" << run.output << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTamper, ::testing::Range(0, 24));

class FuzzFault : public ::testing::TestWithParam<int> {};

TEST_P(FuzzFault, FetchFaultsAlwaysDetected) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  const std::string src = random_program(rng);
  SCOPED_TRACE(src);
  const auto keys = test::test_keys();
  const auto result = test::transform_source(src, keys);
  auto config = test::sofia_config(keys);
  config.max_cycles = 5'000'000;
  const auto clean = sim::run_image(result.image, config);
  ASSERT_TRUE(clean.ok());
  const std::uint64_t span = clean.stats.fetch_words + clean.stats.mac_words;

  for (int trial = 0; trial < 6; ++trial) {
    auto faulty = config;
    faulty.fault.enabled = true;
    faulty.fault.fetch_index = rng.next_below(std::max<std::uint64_t>(1, span));
    faulty.fault.bit = static_cast<unsigned>(rng.next_below(32));
    const auto run = sim::run_image(result.image, faulty);
    EXPECT_EQ(run.status, sim::RunResult::Status::kReset)
        << "fault at fetch " << faulty.fault.fetch_index << " bit "
        << faulty.fault.bit << " -> " << to_string(run.status);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFault, ::testing::Range(0, 16));

class FuzzLayout : public ::testing::TestWithParam<int> {};

TEST_P(FuzzLayout, DeterministicAndInvariantPreserving) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 101);
  const std::string src = random_program(rng);
  SCOPED_TRACE(src);
  const auto keys = test::test_keys();
  const auto a = test::transform_source(src, keys);
  const auto b = test::transform_source(src, keys);
  ASSERT_EQ(a.image.text, b.image.text);  // deterministic ciphertext
  ASSERT_EQ(a.image.entry, b.image.entry);

  const auto& policy = a.layout.policy();
  for (const auto& block : a.layout.blocks()) {
    const std::uint32_t cap = block.kind == xform::BlockKind::kExec
                                  ? policy.exec_insts()
                                  : policy.mux_insts();
    ASSERT_EQ(block.insts.size(), cap);
    ASSERT_EQ(block.base_word % policy.words_per_block, 0u);
    const std::uint32_t macs = policy.words_per_block - cap;
    for (std::size_t s = 0; s < block.insts.size(); ++s) {
      const auto op = block.insts[s].inst.op;
      if (isa::is_control(op)) {
        EXPECT_EQ(s + 1, block.insts.size());
      }
      if (isa::is_store(op)) {
        EXPECT_GE(macs + s, policy.store_min_word);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLayout, ::testing::Range(0, 24));

class FuzzCounters : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCounters, CtrCountersNeverRepeatWithinAnImage) {
  // Keystream reuse (two words encrypted under the same counter) would let
  // an attacker XOR ciphertexts to cancel the keystream — the classic
  // two-time-pad break. Every (prev, pc) pair in an image must be unique.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  const std::string src = random_program(rng);
  SCOPED_TRACE(src);
  const auto keys = test::test_keys();
  const auto result = test::transform_source(src, keys);
  std::set<std::uint64_t> counters;
  const auto& policy = result.layout.policy();
  for (const auto& block : result.layout.blocks()) {
    for (std::uint32_t j = 0; j < policy.words_per_block; ++j) {
      std::uint32_t prev;
      if (j == 0)
        prev = block.pred1_word;
      else if (block.kind == xform::BlockKind::kMux && j == 1)
        prev = block.pred2_word;
      else
        prev = block.base_word + j - 1;
      const std::uint64_t counter =
          crypto::pack_counter(keys.omega, prev, block.base_word + j);
      EXPECT_TRUE(counters.insert(counter).second)
          << "counter reuse at block " << block.id << " word " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCounters, ::testing::Range(0, 12));

class FuzzSemantics : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSemantics, PipelinedMachineMatchesReferenceInterpreter) {
  // Differential check against a timing-free oracle: hazards, speculation
  // squash and store gating must never change architectural results.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 11);
  const std::string src = test::random_program(rng);
  SCOPED_TRACE(src);
  const auto prog = assembler::assemble(src);
  const auto img = assembler::link_vanilla(prog);
  const auto ref = test::reference_run(img);
  ASSERT_TRUE(ref.halted);

  const auto vrun = sim::run_image(img, test::vanilla_config());
  ASSERT_TRUE(vrun.ok());
  EXPECT_EQ(vrun.output, ref.output);
  EXPECT_EQ(vrun.exit_code, ref.exit_code);

  const auto keys = test::test_keys();
  const auto result = test::transform_source(src, keys);
  const auto srun = sim::run_image(result.image, test::sofia_config(keys));
  ASSERT_TRUE(srun.ok());
  EXPECT_EQ(srun.output, ref.output);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSemantics, ::testing::Range(0, 32));

}  // namespace
}  // namespace sofia
