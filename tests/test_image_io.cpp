#include <gtest/gtest.h>

#include <cstdio>

#include "assembler/image_io.hpp"
#include "sim_test_util.hpp"
#include "support/error.hpp"

namespace sofia::assembler {
namespace {

LoadImage sample_image() {
  const auto keys = test::test_keys();
  const auto result = test::transform_source(R"(
main:
  li r1, 5
  call f
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
f:
  add r1, r1, r1
  ret
.data
buf: .word 1, 2, 3
)",
                                             keys);
  return result.image;
}

TEST(ImageIo, RoundTripPreservesEverything) {
  const LoadImage original = sample_image();
  const auto bytes = serialize_image(original);
  const LoadImage restored = deserialize_image(bytes);
  EXPECT_EQ(restored.text, original.text);
  EXPECT_EQ(restored.data, original.data);
  EXPECT_EQ(restored.text_base, original.text_base);
  EXPECT_EQ(restored.data_base, original.data_base);
  EXPECT_EQ(restored.stack_top, original.stack_top);
  EXPECT_EQ(restored.entry, original.entry);
  EXPECT_EQ(restored.entry_prev, original.entry_prev);
  EXPECT_EQ(restored.omega, original.omega);
  EXPECT_EQ(restored.sofia, original.sofia);
  EXPECT_EQ(restored.per_pair, original.per_pair);
}

TEST(ImageIo, RestoredImageRunsIdentically) {
  const LoadImage original = sample_image();
  const LoadImage restored = deserialize_image(serialize_image(original));
  const auto config = test::sofia_config(test::test_keys());
  const auto a = sim::run_image(original, config);
  const auto b = sim::run_image(restored, config);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

TEST(ImageIo, VanillaImageRoundTrip) {
  const auto prog = assemble("main:\n li r1, 1\n halt\n");
  const auto img = link_vanilla(prog);
  const auto restored = deserialize_image(serialize_image(img));
  EXPECT_FALSE(restored.sofia);
  EXPECT_EQ(restored.text, img.text);
}

TEST(ImageIo, RejectsBadMagic) {
  auto bytes = serialize_image(sample_image());
  bytes[0] = 'X';
  EXPECT_THROW(deserialize_image(bytes), Error);
}

TEST(ImageIo, RejectsBadVersion) {
  auto bytes = serialize_image(sample_image());
  bytes[4] = 0x7F;
  EXPECT_THROW(deserialize_image(bytes), Error);
}

TEST(ImageIo, RejectsTruncation) {
  auto bytes = serialize_image(sample_image());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_image(bytes), Error);
}

TEST(ImageIo, RejectsCorruptPayload) {
  auto bytes = serialize_image(sample_image());
  bytes[40] ^= 0xFF;  // inside the text section
  EXPECT_THROW(deserialize_image(bytes), Error);  // checksum mismatch
}

TEST(ImageIo, FileRoundTrip) {
  const LoadImage original = sample_image();
  const std::string path = "/tmp/sofia_image_io_test.img";
  save_image(original, path);
  const LoadImage restored = load_image_file(path);
  EXPECT_EQ(restored.text, original.text);
  std::remove(path.c_str());
}

TEST(ImageIo, MissingFileThrows) {
  EXPECT_THROW(load_image_file("/nonexistent/no.img"), Error);
}

}  // namespace
}  // namespace sofia::assembler
