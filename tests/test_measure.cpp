// Tests for the shared measurement harness (src/support/measure.hpp) that
// the benches and sofia_report build on — the overhead arithmetic and one
// real vanilla-vs-SOFIA measurement round trip.
#include <gtest/gtest.h>

#include "support/measure.hpp"

namespace {

using namespace sofia;

TEST(Measure, OverheadArithmetic) {
  bench::Measurement m;
  m.vanilla_text_bytes = 100;
  m.sofia_text_bytes = 250;
  m.vanilla_cycles = 1000;
  m.sofia_cycles = 1500;
  EXPECT_DOUBLE_EQ(m.size_ratio(), 2.5);
  EXPECT_DOUBLE_EQ(m.cycle_overhead_pct(), 50.0);
}

TEST(Measure, TimeOverheadUsesHwClocks) {
  bench::Measurement m;
  m.vanilla_cycles = 1000;
  m.sofia_cycles = 1000;
  // Equal cycle counts: the whole execution-time overhead is the clock
  // ratio of the hardware model (92.3 MHz vanilla vs the SOFIA clock).
  const hw::HwModel model;
  const double expected = hw::overhead_pct(model.sofia(2).clock_mhz,
                                           model.vanilla().clock_mhz);
  EXPECT_NEAR(m.time_overhead_pct(model, 2), expected, 1e-9);
}

TEST(Measure, DefaultOptionsArePairGranular) {
  EXPECT_EQ(bench::default_measure_options().profile.granularity,
            crypto::Granularity::kPerPair);
}

TEST(Measure, DefaultProfileIsThePaperDevice) {
  const auto& profile = bench::default_measure_options().profile;
  EXPECT_EQ(profile.cipher, crypto::CipherKind::kRectangle80);
  EXPECT_EQ(profile.key_source, pipeline::KeySource::kExample);
  EXPECT_EQ(profile.policy, xform::BlockPolicy::paper_default());
}

TEST(Measure, WorkloadRoundTrip) {
  const auto m = bench::measure_workload(workloads::workload("fib"), 1, 8);
  EXPECT_EQ(m.name, "fib");
  // SOFIA always costs something: bigger text, more cycles.
  EXPECT_GT(m.sofia_text_bytes, m.vanilla_text_bytes);
  EXPECT_GT(m.sofia_cycles, m.vanilla_cycles);
  EXPECT_GT(m.cycle_overhead_pct(), 0.0);
}

TEST(Measure, MismatchThrows) {
  // A golden model that cannot match the program output must throw rather
  // than report numbers for a broken run.
  auto spec = workloads::workload("fib");
  spec.golden = [](std::uint64_t, std::uint32_t) { return std::string("bogus"); };
  EXPECT_THROW(bench::measure_workload(spec, 1, 8), Error);
}

}  // namespace
