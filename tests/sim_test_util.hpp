// Shared helpers for toolchain + simulator tests: assemble a source string,
// run it on the vanilla pipeline and/or through the full SOFIA transform,
// and compare the two executions.
#pragma once

#include <gtest/gtest.h>

#include "assembler/link.hpp"
#include "assembler/program.hpp"
#include "sim/machine.hpp"
#include "xform/transform.hpp"

namespace sofia::test {

inline crypto::KeySet test_keys() {
  // SPECK keeps the unit-test suites fast; RECTANGLE-80 is exercised by
  // dedicated crypto tests and the benches.
  return crypto::KeySet::example(crypto::CipherKind::kSpeck64_128);
}

inline sim::SimConfig vanilla_config() {
  sim::SimConfig cfg;
  return cfg;
}

inline sim::SimConfig sofia_config(const crypto::KeySet& keys,
                                   const xform::BlockPolicy& policy =
                                       xform::BlockPolicy::paper_default()) {
  sim::SimConfig cfg;
  cfg.keys = keys;
  cfg.policy = policy;
  return cfg;
}

inline sim::RunResult run_vanilla(const std::string& source) {
  const auto prog = assembler::assemble(source);
  const auto img = assembler::link_vanilla(prog);
  return sim::run_image(img, vanilla_config());
}

inline xform::TransformResult transform_source(
    const std::string& source, const crypto::KeySet& keys,
    const xform::Options& opts = {}) {
  const auto prog = assembler::assemble(source);
  return xform::transform(prog, keys, opts);
}

inline sim::RunResult run_sofia(const std::string& source,
                                const xform::Options& opts = {}) {
  const auto keys = test_keys();
  const auto result = transform_source(source, keys, opts);
  return sim::run_image(result.image, sofia_config(keys, opts.policy));
}

/// Run both ways and require identical architectural outcomes.
inline void expect_equivalent(const std::string& source,
                              const xform::Options& opts = {}) {
  const auto vres = run_vanilla(source);
  const auto sres = run_sofia(source, opts);
  ASSERT_TRUE(vres.ok()) << "vanilla: " << to_string(vres.status) << " "
                         << vres.fault;
  ASSERT_TRUE(sres.ok()) << "sofia: " << to_string(sres.status) << " "
                         << sres.fault << " reset="
                         << to_string(sres.reset.cause) << " pc=" << std::hex
                         << sres.reset.pc;
  EXPECT_EQ(vres.status, sres.status);
  EXPECT_EQ(vres.exit_code, sres.exit_code);
  EXPECT_EQ(vres.output, sres.output);
}

}  // namespace sofia::test
