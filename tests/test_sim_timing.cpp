// Microarchitectural behavior tests: trace facility, speculation squash,
// store gating, engine policies, fetch-width configs, fault injection.
#include <gtest/gtest.h>

#include "sim/cipher_engine.hpp"
#include "sim_test_util.hpp"

namespace sofia::sim {
namespace {

using test::sofia_config;
using test::test_keys;
using test::transform_source;

TEST(Trace, RecordsExecutedInstructionsInOrder) {
  const auto prog = assembler::assemble(R"(
main:
  addi r1, r0, 1
  addi r2, r0, 2
  halt
)");
  const auto img = assembler::link_vanilla(prog);
  SimConfig cfg;
  cfg.collect_trace = true;
  const auto run = run_image(img, cfg);
  ASSERT_EQ(run.trace.size(), 3u);
  EXPECT_EQ(run.trace[0].pc, 0u);
  EXPECT_EQ(run.trace[1].pc, 4u);
  EXPECT_EQ(run.trace[2].pc, 8u);
  EXPECT_LT(run.trace[0].cycle, run.trace[2].cycle);
  const std::string text = format_trace(run.trace);
  EXPECT_NE(text.find("addi r1, r0, 1"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(Trace, CapsAtMaxTrace) {
  const auto prog = assembler::assemble(R"(
main:
  li r1, 100
loop:
  addi r1, r1, -1
  bnez r1, loop
  halt
)");
  const auto img = assembler::link_vanilla(prog);
  SimConfig cfg;
  cfg.collect_trace = true;
  cfg.max_trace = 10;
  const auto run = run_image(img, cfg);
  EXPECT_EQ(run.trace.size(), 10u);
}

TEST(Trace, WrongPathInstructionsNeverExecute) {
  // Speculation past a taken branch must be squashed: the instruction after
  // the branch never appears in the trace.
  const auto prog = assembler::assemble(R"(
main:
  li r1, 1
  bnez r1, target      ; always taken
  addi r2, r0, 99      ; wrong path
target:
  halt
)");
  const auto img = assembler::link_vanilla(prog);
  SimConfig cfg;
  cfg.collect_trace = true;
  const auto run = run_image(img, cfg);
  for (const auto& entry : run.trace) {
    const auto inst = isa::decode(entry.word);
    ASSERT_TRUE(inst.has_value());
    EXPECT_FALSE(inst->op == isa::Opcode::kAddi && inst->imm == 99)
        << "wrong-path instruction executed";
  }
}

TEST(Trace, SofiaTraceMatchesVanillaInstructionSequence) {
  // Filter out SOFIA padding NOPs: the remaining dynamic instruction stream
  // must be identical (same opcodes in the same order).
  const std::string src = R"(
main:
  li r1, 4
  li r2, 0
loop:
  add r2, r2, r1
  addi r1, r1, -1
  bnez r1, loop
  halt
)";
  const auto prog = assembler::assemble(src);
  SimConfig vcfg;
  vcfg.collect_trace = true;
  const auto vrun = run_image(assembler::link_vanilla(prog), vcfg);

  const auto keys = test_keys();
  const auto result = transform_source(src, keys);
  auto scfg = sofia_config(keys);
  scfg.collect_trace = true;
  const auto srun = run_image(result.image, scfg);

  // The transformer adds padding NOPs and synthesized unconditional jumps
  // (run-end joins); drop both from each side before comparing opcodes.
  const auto filter = [](const std::vector<TraceEntry>& trace) {
    std::vector<std::uint32_t> words;
    for (const auto& e : trace) {
      if (e.word == 0) continue;  // NOP
      const auto inst = isa::decode(e.word);
      if (inst && inst->op == isa::Opcode::kJal && inst->rd == isa::kRegZero)
        continue;  // plain jump (synthesized or layout-specific)
      words.push_back(e.word);
    }
    return words;
  };
  const auto vwords = filter(vrun.trace);
  const auto swords = filter(srun.trace);
  // Branch immediates differ between layouts; compare opcode sequences.
  ASSERT_EQ(vwords.size(), swords.size());
  for (std::size_t i = 0; i < vwords.size(); ++i)
    EXPECT_EQ(vwords[i] >> 26, swords[i] >> 26) << "position " << i;
}

TEST(StoreGate, StallsAccountedOnlyForSofia) {
  const std::string src = R"(
main:
  la r1, buf
  sw r0, 0(r1)
  sw r0, 4(r1)
  halt
.data
buf: .space 8
)";
  const auto vrun = test::run_vanilla(src);
  EXPECT_EQ(vrun.stats.store_gate_stalls, 0u);
  const auto srun = test::run_sofia(src);
  ASSERT_TRUE(srun.ok());
  EXPECT_GT(srun.stats.store_gate_stalls, 0u);
}

TEST(StoreGate, HeadstartReducesStalls) {
  const std::string src = R"(
main:
  la r1, buf
  li r2, 16
loop:
  sw r2, 0(r1)
  sw r2, 4(r1)
  addi r2, r2, -1
  bnez r2, loop
  halt
.data
buf: .space 8
)";
  const auto keys = test_keys();
  const auto result = transform_source(src, keys);
  auto strict = sofia_config(keys);
  strict.store_gate_headstart = 0;
  auto relaxed = sofia_config(keys);
  relaxed.store_gate_headstart = 5;
  const auto a = run_image(result.image, strict);
  const auto b = run_image(result.image, relaxed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a.stats.store_gate_stalls, b.stats.store_gate_stalls);
  EXPECT_GE(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.output, b.output);
}

TEST(CipherEngineFlush, IterativeInFlightOpDrainsAcrossFlush) {
  // Regression: flush() used to rewind next_any_slot_ to the flush cycle
  // even while an iterative op occupied the instance, letting the first
  // post-redirect op start on busy hardware.
  CipherTiming timing;
  timing.pipelined = false;
  timing.latency = 8;
  CipherEngine engine(timing);
  EXPECT_EQ(engine.schedule(CipherEngine::Op::kCtr, 10), 18u);  // busy [10,18)
  engine.flush(12);  // redirect mid-op
  // The next op may start only once the in-flight op drains at 18.
  EXPECT_EQ(engine.schedule(CipherEngine::Op::kCtr, 12), 26u);
}

TEST(CipherEngineFlush, IterativeQueuedOpsAreDropped) {
  CipherTiming timing;
  timing.pipelined = false;
  timing.latency = 8;
  CipherEngine engine(timing);
  EXPECT_EQ(engine.schedule(CipherEngine::Op::kCtr, 10), 18u);  // in flight
  EXPECT_EQ(engine.schedule(CipherEngine::Op::kCbc, 10), 26u);  // queued
  EXPECT_EQ(engine.schedule(CipherEngine::Op::kCtr, 10), 34u);  // queued
  engine.flush(12);
  // Queued work is squashed: only the in-flight drain (cycle 18) remains.
  EXPECT_EQ(engine.schedule(CipherEngine::Op::kCbc, 12), 26u);
}

TEST(CipherEngineFlush, IterativeFlushAfterDrainFreesEngine) {
  CipherTiming timing;
  timing.pipelined = false;
  timing.latency = 8;
  CipherEngine engine(timing);
  engine.schedule(CipherEngine::Op::kCtr, 10);  // busy [10,18)
  engine.flush(30);                             // long after the drain
  EXPECT_EQ(engine.schedule(CipherEngine::Op::kCtr, 30), 38u);
}

TEST(CipherEngineFlush, DoubleFlushKeepsTheDrainingOpBusy) {
  CipherTiming timing;
  timing.pipelined = false;
  timing.latency = 8;
  CipherEngine engine(timing);
  engine.schedule(CipherEngine::Op::kCtr, 10);  // busy [10,18)
  engine.flush(11);
  engine.flush(13);  // second redirect before the drain completes
  EXPECT_EQ(engine.schedule(CipherEngine::Op::kCtr, 13), 26u);
}

TEST(CipherEngineFlush, InFlightOpSurvivesDeepRunAheadHistory) {
  // Regression for the history backstop: with a deep iterative cipher and
  // many run-ahead ops queued after the in-flight one, the op occupying
  // the engine at the redirect must still be found by flush().
  CipherTiming timing;
  timing.pipelined = false;
  timing.latency = 26;
  CipherEngine engine(timing);
  engine.flush(0);  // a prior redirect pins the prune horizon
  for (int i = 0; i < 40; ++i) engine.schedule(CipherEngine::Op::kCtr, 100);
  engine.flush(110);  // inside the first op's [100, 126) busy window
  EXPECT_EQ(engine.schedule(CipherEngine::Op::kCtr, 110), 126u + 26u);
}

TEST(CipherEngineFlush, PipelinedSlotsFreeImmediately) {
  CipherTiming timing;  // pipelined, alternating (paper default)
  CipherEngine engine(timing);
  engine.schedule(CipherEngine::Op::kCtr, 10);
  engine.schedule(CipherEngine::Op::kCtr, 10);
  engine.flush(12);
  // Squashed ops drain out of the stage registers; the next CTR op starts
  // on the first even cycle at or after the redirect.
  EXPECT_EQ(engine.schedule(CipherEngine::Op::kCtr, 12), 14u);
}

TEST(EngineConfig, IterativeEngineSlowerThanPipelined) {
  const std::string src = R"(
main:
  li r1, 40
loop:
  addi r1, r1, -1
  bnez r1, loop
  halt
)";
  const auto keys = test_keys();
  const auto result = transform_source(src, keys);
  auto pipelined = sofia_config(keys);
  auto iterative = sofia_config(keys);
  iterative.cipher.pipelined = false;
  const auto a = run_image(result.image, pipelined);
  const auto b = run_image(result.image, iterative);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a.stats.cycles, b.stats.cycles);
}

TEST(EngineConfig, HigherLatencyCostsCycles) {
  const std::string src = "main:\n li r1, 9\nloop:\n addi r1, r1, -1\n bnez r1, loop\n halt\n";
  const auto keys = test_keys();
  const auto result = transform_source(src, keys);
  std::uint64_t prev = 0;
  for (const std::uint32_t latency : {2u, 8u, 26u}) {
    auto cfg = sofia_config(keys);
    cfg.cipher.latency = latency;
    cfg.cipher.pipelined = false;
    const auto run = run_image(result.image, cfg);
    ASSERT_TRUE(run.ok()) << latency;
    EXPECT_GT(run.stats.cycles, prev) << latency;
    prev = run.stats.cycles;
  }
}

TEST(FetchWidth, NarrowFetchNeverFaster) {
  const std::string src = R"(
main:
  li r1, 30
loop:
  addi r2, r2, 3
  addi r3, r3, 5
  add r2, r2, r3
  addi r1, r1, -1
  bnez r1, loop
  halt
)";
  const auto keys = test_keys();
  const auto result = transform_source(src, keys);
  auto wide = sofia_config(keys);
  wide.fetch_words_per_cycle = 2;
  auto narrow = sofia_config(keys);
  narrow.fetch_words_per_cycle = 1;
  const auto a = run_image(result.image, wide);
  const auto b = run_image(result.image, narrow);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.output, b.output);
}

TEST(Fault, VanillaFaultCanSilentlyCorrupt) {
  // Flip the immediate bit of 'li r1, 4' -> vanilla prints a wrong value.
  const std::string src = R"(
main:
  li r1, 4
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
)";
  const auto prog = assembler::assemble(src);
  const auto img = assembler::link_vanilla(prog);
  SimConfig cfg;
  cfg.fault.enabled = true;
  cfg.fault.fetch_index = 0;  // the li itself
  cfg.fault.bit = 1;          // imm bit: 4 -> 6
  const auto run = run_image(img, cfg);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.output, "6\n");
}

TEST(Fault, SofiaDetectsSameFault) {
  const std::string src = R"(
main:
  li r1, 4
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
)";
  const auto keys = test_keys();
  const auto result = transform_source(src, keys);
  auto cfg = sofia_config(keys);
  cfg.fault.enabled = true;
  cfg.fault.fetch_index = 2;  // first instruction word of the first block
  cfg.fault.bit = 1;
  const auto run = run_image(result.image, cfg);
  EXPECT_EQ(run.status, RunResult::Status::kReset);
  EXPECT_EQ(run.reset.cause, ResetCause::kMacMismatch);
  EXPECT_TRUE(run.output.empty());
}

TEST(Fault, FaultOnStoredMacWordDetected) {
  const auto keys = test_keys();
  const auto result = transform_source("main:\n li r1, 1\n halt\n", keys);
  auto cfg = sofia_config(keys);
  cfg.fault.enabled = true;
  cfg.fault.fetch_index = 0;  // M1 of the entry block
  cfg.fault.bit = 13;
  const auto run = run_image(result.image, cfg);
  EXPECT_EQ(run.status, RunResult::Status::kReset);
}

TEST(MaxCycles, SofiaInfiniteLoopBounded) {
  const auto keys = test_keys();
  const auto result = transform_source("main:\n j main\n", keys);
  auto cfg = sofia_config(keys);
  cfg.max_cycles = 3000;
  const auto run = run_image(result.image, cfg);
  EXPECT_EQ(run.status, RunResult::Status::kMaxCycles);
}

TEST(Devirt, UnlistedTargetTrapsInsteadOfJumping) {
  // The pointer value names a function outside the .targets set: the
  // devirtualized dispatch must fall into its trap (halt) rather than jump.
  const std::string src = R"(
main:
  la r4, evil
  li r1, 0
  .targets good
  jalr lr, r4
  li r1, 1             ; skipped if the dispatch trapped
  halt
good:
  addi r1, r1, 10
  ret
evil:
  li r1, 666
  ret
)";
  const auto keys = test_keys();
  const auto result = transform_source(src, keys);
  const auto run = run_image(result.image, sofia_config(keys));
  // The trap halts with r1 still 0 and no output; crucially 666 never ran.
  EXPECT_EQ(run.status, RunResult::Status::kHalted);
  EXPECT_TRUE(run.output.empty());
}

TEST(Stats, QueueAndStallCountersConsistent) {
  const auto run = test::run_sofia(R"(
main:
  li r1, 12
loop:
  addi r1, r1, -1
  bnez r1, loop
  halt
)");
  ASSERT_TRUE(run.ok());
  // Executed instructions cannot exceed elapsed cycles (single issue).
  EXPECT_LE(run.stats.insts, run.stats.cycles);
  // Every block verified exactly once.
  EXPECT_EQ(run.stats.mac_verifications, run.stats.blocks_fetched);
}

}  // namespace
}  // namespace sofia::sim
