// Tests for the parallel experiment-sweep driver (src/driver/sweep.hpp)
// and the JSON writer it emits results through. The load-bearing property
// is determinism: the same SweepSpec must produce byte-identical JSON for
// any thread count.
#include <gtest/gtest.h>

#include <cmath>

#include "driver/sweep.hpp"
#include "support/json.hpp"

namespace sofia {
namespace {

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

TEST(Json, CompactObjectAndArray) {
  json::Writer w(-1);
  w.begin_object();
  w.member("name", "sweep");
  w.member("count", 3);
  w.key("items").begin_array().value(1).value(2).end_array();
  w.member("ok", true);
  w.key("none").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"sweep","count":3,"items":[1,2],"ok":true,"none":null})");
}

TEST(Json, PrettyPrintIndents) {
  json::Writer w(2);
  w.begin_object();
  w.member("a", 1);
  w.key("b").begin_array().value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, EmptyContainersStayOnOneLine) {
  json::Writer w(2);
  w.begin_object();
  w.key("jobs").begin_array().end_array();
  w.key("meta").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"jobs\": [],\n  \"meta\": {}\n}");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(json::escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(json::escape(std::string_view("\x01", 1)), "\\u0001");
  json::Writer w(-1);
  w.begin_array().value("per-pair \"alt\"").end_array();
  EXPECT_EQ(w.str(), R"(["per-pair \"alt\""])");
}

TEST(Json, NumberFormatting) {
  json::Writer w(-1);
  w.begin_array();
  w.value(static_cast<std::int64_t>(-7));
  w.value(static_cast<std::uint64_t>(18446744073709551615ull));
  w.value(2.5);
  w.value(std::nan(""));  // NaN -> null (JSON has no non-finite numbers)
  w.end_array();
  EXPECT_EQ(w.str(), "[-7,18446744073709551615,2.5,null]");
}

// ---------------------------------------------------------------------------
// Matrix expansion
// ---------------------------------------------------------------------------

TEST(Sweep, ExpansionIsWorkloadMajorWithIndexSeeds) {
  driver::SweepSpec spec;
  spec.name = "t";
  spec.workloads = {"fib", "crc32"};
  spec.configs = {driver::paper_default_config(), driver::paper_default_config()};
  spec.configs[1].name = "second";
  spec.base_seed = 100;
  spec.vary_seed = true;
  const auto jobs = driver::expand_jobs(spec);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].workload, "fib");
  EXPECT_EQ(jobs[1].workload, "fib");
  EXPECT_EQ(jobs[1].config.name, "second");
  EXPECT_EQ(jobs[2].workload, "crc32");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].seed, 100 + i);  // pure function of the job index
  }
}

TEST(Sweep, FixedSeedModeUsesBaseSeedEverywhere) {
  driver::SweepSpec spec;
  spec.workloads = {"fib", "crc32"};
  spec.configs = {driver::paper_default_config()};
  spec.base_seed = 7;
  spec.vary_seed = false;
  for (const auto& job : driver::expand_jobs(spec)) EXPECT_EQ(job.seed, 7u);
}

TEST(Sweep, EmptyWorkloadListMeansAllRegistered) {
  driver::SweepSpec spec;
  spec.configs = {driver::paper_default_config()};
  EXPECT_EQ(driver::expand_jobs(spec).size(),
            workloads::all_workloads().size());
}

TEST(Sweep, UnknownWorkloadThrows) {
  driver::SweepSpec spec;
  spec.workloads = {"no_such_workload"};
  spec.configs = {driver::paper_default_config()};
  EXPECT_THROW(driver::expand_jobs(spec), Error);
}

TEST(Sweep, UnknownMatrixThrows) {
  EXPECT_THROW(driver::matrix("no-such-matrix"), Error);
}

TEST(Sweep, BuiltInMatricesExpand) {
  for (const auto& name : driver::matrix_names()) {
    const auto spec = driver::matrix(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(driver::expand_jobs(spec).empty()) << name;
  }
}

TEST(Sweep, FingerprintNamesEverySweptAxis) {
  auto config = driver::paper_default_config();
  config.opts.config.cipher.alternate = false;
  config.unroll_cycles = 7;
  const auto fp = config.fingerprint();
  EXPECT_NE(fp.find("gran=per-pair"), std::string::npos) << fp;
  EXPECT_NE(fp.find("alt=0"), std::string::npos) << fp;
  EXPECT_NE(fp.find("policy=8/4"), std::string::npos) << fp;
  EXPECT_NE(fp.find("cipher=RECTANGLE-80"), std::string::npos) << fp;
  EXPECT_NE(fp.find("icache=4096x32"), std::string::npos) << fp;
  EXPECT_NE(fp.find("unroll=7"), std::string::npos) << fp;
  // The scheme axis is named unconditionally, even at its default.
  EXPECT_NE(fp.find("scheme=sofia-cbcmac"), std::string::npos) << fp;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

driver::SweepSpec small_spec() {
  driver::SweepSpec spec;
  spec.name = "unit";
  spec.workloads = {"fib", "crc32", "bitcount"};
  spec.size_divisor = 16;
  spec.vary_seed = true;
  auto demand = driver::paper_default_config();
  demand.name = "demand-driven";
  demand.opts.config.cipher.alternate = false;
  spec.configs = {driver::paper_default_config(), demand};
  return spec;
}

TEST(Sweep, RunsJobsAndMeasures) {
  const auto result = driver::run_sweep(small_spec(), 2);
  ASSERT_EQ(result.jobs.size(), 6u);
  EXPECT_TRUE(result.all_ok());
  for (const auto& job : result.jobs) {
    EXPECT_GT(job.m.sofia_cycles, job.m.vanilla_cycles);
    EXPECT_GT(job.m.sofia_text_bytes, job.m.vanilla_text_bytes);
  }
}

TEST(Sweep, JobFailureIsCapturedNotThrown) {
  auto spec = small_spec();
  spec.workloads = {"fib"};
  // An unusable block geometry makes the transform throw inside the job.
  spec.configs[0].opts.profile.policy.words_per_block = 3;
  spec.configs.resize(1);
  const auto result = driver::run_sweep(spec, 1);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.jobs[0].ok);
  EXPECT_FALSE(result.jobs[0].error.empty());
  EXPECT_FALSE(result.all_ok());
}

TEST(Sweep, JsonIsByteIdenticalAcrossThreadCounts) {
  // The satellite requirement: --threads 1 and --threads 8 must emit
  // byte-identical documents. Seeds are fixed at expansion time and
  // results land in job-index order, so interleaving cannot show through.
  const auto spec = small_spec();
  const auto one = driver::run_sweep(spec, 1);
  const auto eight = driver::run_sweep(spec, 8);
  EXPECT_EQ(one.threads_used, 1u);
  EXPECT_EQ(driver::to_json(one), driver::to_json(eight));
}

TEST(Sweep, JsonCarriesSchemaAndPerJobRecords) {
  auto spec = small_spec();
  spec.workloads = {"fib"};
  spec.configs.resize(1);
  const auto doc = driver::to_json(driver::run_sweep(spec, 1));
  EXPECT_NE(doc.find("\"schema\": \"sofia-sweep-v5\""), std::string::npos);
  EXPECT_NE(doc.find("\"sweep\": \"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"index\": 0"), std::string::npos);
  EXPECT_NE(doc.find("\"workload\": \"fib\""), std::string::npos);
  EXPECT_NE(doc.find("\"scheme\": \"sofia-cbcmac\""), std::string::npos);
  EXPECT_NE(doc.find("\"backend\": \"cycle\""), std::string::npos);
  EXPECT_NE(doc.find("\"fingerprint\": \"gran=per-pair"), std::string::npos);
  EXPECT_NE(doc.find("\"cycles\""), std::string::npos);
  EXPECT_NE(doc.find("\"text_bytes\""), std::string::npos);
  EXPECT_NE(doc.find("\"cycles_pct\""), std::string::npos);
  // Wall-clock and thread count must NOT leak into the document.
  EXPECT_EQ(doc.find("wall"), std::string::npos);
  EXPECT_EQ(doc.find("threads"), std::string::npos);
}

TEST(Sweep, ProgressCallbackFiresOncePerJob) {
  auto spec = small_spec();
  int calls = 0;
  const auto result =
      driver::run_sweep(spec, 4, [&](const driver::JobResult&) { ++calls; });
  EXPECT_EQ(calls, static_cast<int>(result.jobs.size()));
}

// ---------------------------------------------------------------------------
// Sharding + merge (the multi-machine path)
// ---------------------------------------------------------------------------

TEST(Json, ParseRoundTripsWriterOutput) {
  json::Writer w(2);
  w.begin_object();
  w.member("s", "a\"b\n");
  w.member("i", static_cast<std::uint64_t>(42));
  w.member("f", 2.537);
  w.member("t", true);
  w.key("n").null();
  w.key("arr").begin_array().value(1).value("x").end_array();
  w.key("obj").begin_object().member("k", 7).end_object();
  w.end_object();
  const std::string doc = w.str();

  const auto v = json::parse(doc);
  ASSERT_EQ(v.kind, json::Value::Kind::kObject);
  EXPECT_EQ(v.find("s")->string, "a\"b\n");
  EXPECT_EQ(v.find("i")->as_uint("i"), 42u);
  EXPECT_EQ(v.find("f")->number, "2.537");  // verbatim source token
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_EQ(v.find("n")->kind, json::Value::Kind::kNull);
  ASSERT_EQ(v.find("arr")->array.size(), 2u);

  // Re-emission through a Writer is byte-identical: the property the
  // sharded-sweep merge rests on.
  json::Writer w2(2);
  v.write(w2);
  EXPECT_EQ(w2.str(), doc);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), Error);
  EXPECT_THROW(json::parse("{} trailing"), Error);
  EXPECT_THROW(json::parse("{\"a\": }"), Error);
  EXPECT_THROW(json::parse("\"unterminated"), Error);
}

TEST(Shard, ParseAndValidate) {
  const auto s = driver::ShardSpec::parse("1/3");
  EXPECT_EQ(s.index, 1u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_FALSE(s.is_whole());
  EXPECT_TRUE(driver::ShardSpec{}.is_whole());
  EXPECT_THROW(driver::ShardSpec::parse("3/3"), Error);   // index out of range
  EXPECT_THROW(driver::ShardSpec::parse("0/0"), Error);   // zero shards
  EXPECT_THROW(driver::ShardSpec::parse("nope"), Error);  // no slash
  EXPECT_THROW(driver::ShardSpec::parse("1/x"), Error);   // non-decimal
}

TEST(Shard, RunsOnlyTheSlice) {
  const auto spec = small_spec();  // 6 jobs
  const auto shard0 = driver::run_sweep(spec, 1, {}, {0, 2});
  const auto shard1 = driver::run_sweep(spec, 1, {}, {1, 2});
  EXPECT_EQ(shard0.total_jobs, 6u);
  ASSERT_EQ(shard0.jobs.size(), 3u);
  ASSERT_EQ(shard1.jobs.size(), 3u);
  for (const auto& job : shard0.jobs) EXPECT_EQ(job.job.index % 2, 0u);
  for (const auto& job : shard1.jobs) EXPECT_EQ(job.job.index % 2, 1u);
}

TEST(Shard, ShardedDocumentsCarryTheShardMember) {
  const auto doc = driver::to_json(driver::run_sweep(small_spec(), 1, {}, {1, 2}));
  EXPECT_NE(doc.find("\"shard\": \"1/2\""), std::string::npos);
  EXPECT_NE(doc.find("\"job_count\": 6"), std::string::npos);  // full matrix
}

TEST(Shard, MergeReassemblesTheCanonicalDocumentByteIdentically) {
  // The ROADMAP contract: shard(2) + merge == unsharded, byte for byte.
  const auto spec = small_spec();
  const auto unsharded = driver::to_json(driver::run_sweep(spec, 1));
  const auto doc0 = driver::to_json(driver::run_sweep(spec, 2, {}, {0, 2}));
  const auto doc1 = driver::to_json(driver::run_sweep(spec, 2, {}, {1, 2}));
  EXPECT_NE(doc0, unsharded);
  // Merge order must not matter.
  EXPECT_EQ(driver::merge_json({doc0, doc1}), unsharded);
  EXPECT_EQ(driver::merge_json({doc1, doc0}), unsharded);
  // Merging the unsharded document is the identity.
  EXPECT_EQ(driver::merge_json({unsharded}), unsharded);
}

TEST(Shard, MergeRejectsGapsOverlapsAndMismatches) {
  const auto spec = small_spec();
  const auto doc0 = driver::to_json(driver::run_sweep(spec, 1, {}, {0, 2}));
  const auto doc1 = driver::to_json(driver::run_sweep(spec, 1, {}, {1, 2}));
  EXPECT_THROW(driver::merge_json({}), Error);
  EXPECT_THROW(driver::merge_json({doc0}), Error);        // gap: odd indices
  EXPECT_THROW(driver::merge_json({doc0, doc0}), Error);  // duplicate indices
  auto other = spec;
  other.name = "other-sweep";
  const auto doc_other = driver::to_json(driver::run_sweep(other, 1, {}, {1, 2}));
  EXPECT_THROW(driver::merge_json({doc0, doc_other}), Error);
  EXPECT_THROW(driver::merge_json({doc0, "not json"}), Error);
}

TEST(Sweep, SmokeShrinksButKeepsConfigs) {
  const auto full = driver::matrix("granularity");
  const auto small = driver::smoke(full);
  EXPECT_EQ(small.configs.size(), full.configs.size());
  EXPECT_LT(driver::expand_jobs(small).size(),
            driver::expand_jobs(full).size());
  const auto result = driver::run_sweep(small, 2);
  EXPECT_TRUE(result.all_ok());
}

}  // namespace
}  // namespace sofia
