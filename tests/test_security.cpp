// Security evaluation tests (paper §IV-A): every attack class must be
// detected on the SOFIA device before an externally visible effect, the
// same attacks must succeed against the vanilla core where applicable, and
// the forgery-cost analysis must reproduce the paper's numbers exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "security/attacks.hpp"
#include "security/forgery.hpp"
#include "sim_test_util.hpp"

namespace sofia::security {
namespace {

const char* kVictim = R"(
main:
  li r1, 0
  li r2, 8
loop:
  call work
  addi r2, r2, -1
  bnez r2, loop
  la r3, out
  sw r1, 0(r3)
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
work:
  addi r1, r1, 3
  beqz r1, never
  addi r1, r1, 1
never:
  ret
.data
out: .word 0
)";

class Attacks : public ::testing::Test {
 protected:
  static const AttackHarness& harness() {
    static const AttackHarness h(kVictim, test::test_keys());
    return h;
  }
};

TEST_F(Attacks, CleanRunSucceeds) {
  EXPECT_TRUE(harness().clean_run().ok());
  EXPECT_EQ(harness().clean_run().output, "32\n");
}

TEST_F(Attacks, SingleBitFlipDetected) {
  const auto outcome = harness().flip_bit(2, 5);  // first instruction word
  EXPECT_TRUE(outcome.detected) << to_string(outcome.run.status);
  EXPECT_EQ(outcome.run.reset.cause, sim::ResetCause::kMacMismatch);
}

TEST_F(Attacks, MacWordFlipDetected) {
  const auto outcome = harness().flip_bit(0, 17);  // stored MAC word
  EXPECT_TRUE(outcome.detected);
}

TEST_F(Attacks, PatchWordDetected) {
  // Attacker writes a chosen (plaintext-encoded) instruction, hoping it
  // executes: the decrypting fetch turns it into garbage and the MAC fails.
  const std::uint32_t injected = isa::encode(
      isa::Instruction{isa::Opcode::kAddi, 1, 1, 0, 100});
  const auto outcome = harness().patch_word(3, injected);
  EXPECT_TRUE(outcome.detected);
}

TEST_F(Attacks, RelocateWordDetected) {
  // Moving valid ciphertext elsewhere breaks the PC-bound counter — the
  // attack that defeats AES-ECB instruction randomization (paper §I).
  const auto outcome = harness().relocate_word(4, 12);
  EXPECT_TRUE(outcome.detected);
}

TEST_F(Attacks, BlockSpliceDetected) {
  const auto& image = harness().transformed().image;
  ASSERT_GE(image.text.size() / 8, 3u);
  const auto outcome = harness().splice_block(0, 2);
  EXPECT_TRUE(outcome.detected);
}

TEST_F(Attacks, CrossVersionSpliceDetected) {
  const auto outcome = harness().cross_version_splice(0x1111, 1);
  EXPECT_TRUE(outcome.detected);
}

TEST_F(Attacks, HundredRandomBitFlipsAllDetectedOrHarmless) {
  Rng rng(2024);
  const auto outcomes = harness().random_bit_flips(rng, 100);
  int detected = 0;
  int harmless = 0;
  for (const auto& o : outcomes) {
    if (o.detected) {
      ++detected;
    } else if (o.output_clean) {
      // Flip landed in a block the run never fetched.
      ++harmless;
    } else {
      ADD_FAILURE() << o.name << ": undetected corruption, status "
                    << to_string(o.run.status);
    }
  }
  EXPECT_EQ(detected + harmless, 100);
  EXPECT_GT(detected, 50);  // most of the text is live in this program
}

TEST_F(Attacks, DetectionIsPromptNoTamperedStoreCommits) {
  // The memory-visible output ("out" data word via console) must never
  // reflect a tampered execution: any non-clean output must coincide with
  // a reset *and* empty console output (stores gated).
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const auto word = static_cast<std::uint32_t>(
        rng.next_below(harness().transformed().image.text.size()));
    const auto outcome = harness().flip_bit(word, static_cast<unsigned>(
                                                      rng.next_below(32)));
    if (!outcome.detected) continue;
    EXPECT_TRUE(outcome.run.output.empty() ||
                outcome.run.output == harness().clean_run().output)
        << outcome.name << " leaked output: " << outcome.run.output;
  }
}

// ---------------------------------------------------------------------------
// ROP-style demo (§IV-A-2).
// ---------------------------------------------------------------------------

TEST(RopDemoTest, AttackSucceedsOnVanillaDetectedOnSofia) {
  const auto demo = run_rop_demo(test::test_keys());
  // Clean runs behave identically.
  ASSERT_TRUE(demo.vanilla_clean.ok());
  ASSERT_TRUE(demo.sofia_clean.ok());
  EXPECT_EQ(demo.vanilla_clean.output, "1111\n");
  EXPECT_EQ(demo.sofia_clean.output, "1111\n");
  // The unprotected core executes the gadget: the forbidden store fires.
  EXPECT_NE(demo.vanilla_attacked.output.find("6666"), std::string::npos);
  // SOFIA resets before the gadget's store can reach the MA stage.
  EXPECT_EQ(demo.sofia_attacked.status, sim::RunResult::Status::kReset);
  EXPECT_EQ(demo.sofia_attacked.output.find("6666"), std::string::npos);
}

TEST(JopDemoTest, TableCorruptionTrappedByDevirtualizedDispatch) {
  const auto demo = run_jop_demo(test::test_keys());
  ASSERT_TRUE(demo.vanilla_clean.ok());
  ASSERT_TRUE(demo.sofia_clean.ok());
  EXPECT_EQ(demo.vanilla_clean.output, demo.sofia_clean.output);
  // Vanilla: the corrupted pointer dispatches straight into the gadget.
  EXPECT_NE(demo.vanilla_attacked.output.find("7777"), std::string::npos);
  // SOFIA: the compare chain finds no listed target and falls into the
  // halt trap — the gadget never runs, nothing is printed.
  EXPECT_EQ(demo.sofia_attacked.status, sim::RunResult::Status::kHalted);
  EXPECT_EQ(demo.sofia_attacked.output.find("7777"), std::string::npos);
  EXPECT_TRUE(demo.sofia_attacked.output.empty());
}

// ---------------------------------------------------------------------------
// Forgery cost (§IV-A-1 and §IV-A-2).
// ---------------------------------------------------------------------------

TEST(Forgery, PaperSiNumberReproduced) {
  // 64-bit MAC, 8 cycles per trial, 50 MHz -> 46,795 years.
  const double years = forgery_years(64, 8, 50e6);
  EXPECT_NEAR(years, 46795.0, 1.0);
}

TEST(Forgery, PaperCfiNumberReproduced) {
  // Control-flow diversion (8 cycles) + MAC verification (8 cycles).
  const double years = forgery_years(64, 16, 50e6);
  EXPECT_NEAR(years, 93590.0, 2.0);
}

TEST(Forgery, ExpectedTrialsLaw) {
  EXPECT_DOUBLE_EQ(expected_forgery_trials(8), 128.0);
  EXPECT_DOUBLE_EQ(expected_forgery_trials(16), 32768.0);
  EXPECT_DOUBLE_EQ(expected_forgery_trials(64), std::ldexp(1.0, 63));
}

TEST(Forgery, MonteCarloMatchesLawAt8Bits) {
  Rng rng(99);
  const auto exp = run_forgery_experiment(test::test_keys(), 8, 4000, rng);
  // Mean of a uniform 8-bit tag + 1 is 128.5; allow ~5% tolerance.
  EXPECT_NEAR(exp.mean_trials, exp.expected_trials, exp.expected_trials * 0.05);
}

TEST(Forgery, MonteCarloMatchesLawAt12Bits) {
  Rng rng(123);
  const auto exp = run_forgery_experiment(test::test_keys(), 12, 4000, rng);
  EXPECT_NEAR(exp.mean_trials, exp.expected_trials, exp.expected_trials * 0.06);
}

TEST(Forgery, DetectionRateApproachesOneMinusTwoToMinusN) {
  Rng rng(5);
  const auto exp = run_detection_experiment(test::test_keys(), 8, 20000, rng);
  // Expected undetected fraction 2^-8 = 0.39%; allow 3x.
  EXPECT_LT(static_cast<double>(exp.undetected) / exp.trials, 3.0 / 256);
  EXPECT_GT(exp.detection_rate, 0.98);
}

TEST(Forgery, FullTagDetectionPerfectInPractice) {
  Rng rng(6);
  const auto exp = run_detection_experiment(test::test_keys(), 64, 5000, rng);
  EXPECT_EQ(exp.undetected, 0u);
}

}  // namespace
}  // namespace sofia::security
