#include <gtest/gtest.h>

#include "assembler/link.hpp"
#include "assembler/program.hpp"
#include "isa/isa.hpp"
#include "support/error.hpp"

namespace sofia::assembler {
namespace {

using isa::Opcode;

TEST(Assembler, MinimalProgram) {
  const auto prog = assemble("main:\n  halt\n");
  ASSERT_EQ(prog.text.size(), 1u);
  EXPECT_EQ(prog.text[0].inst.op, Opcode::kHalt);
  EXPECT_EQ(prog.text_labels.at("main"), 0u);
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto prog = assemble(R"(
; full line comment
# another comment style
main:          ; trailing comment
  addi r1, r0, 5   # trailing
  halt
)");
  ASSERT_EQ(prog.text.size(), 2u);
  EXPECT_EQ(prog.text[0].inst.imm, 5);
}

TEST(Assembler, RTypeOperands) {
  const auto prog = assemble("main:\n add r3, r4, r5\n sub r1, r2, r3\n halt\n");
  EXPECT_EQ(prog.text[0].inst.op, Opcode::kAdd);
  EXPECT_EQ(prog.text[0].inst.rd, 3);
  EXPECT_EQ(prog.text[0].inst.ra, 4);
  EXPECT_EQ(prog.text[0].inst.rb, 5);
}

TEST(Assembler, RegisterAliases) {
  const auto prog = assemble("main:\n add r1, sp, lr\n mv r2, zero\n halt\n");
  EXPECT_EQ(prog.text[0].inst.ra, isa::kRegSp);
  EXPECT_EQ(prog.text[0].inst.rb, isa::kRegLr);
  EXPECT_EQ(prog.text[1].inst.ra, 0);
}

TEST(Assembler, MemoryOperands) {
  const auto prog = assemble("main:\n lw r1, 8(sp)\n sw r1, -4(r2)\n sb r3, 0(r4)\n halt\n");
  EXPECT_EQ(prog.text[0].inst.op, Opcode::kLw);
  EXPECT_EQ(prog.text[0].inst.imm, 8);
  EXPECT_EQ(prog.text[1].inst.imm, -4);
  EXPECT_EQ(prog.text[2].inst.op, Opcode::kSb);
}

TEST(Assembler, MemoryOperandWithoutOffset) {
  const auto prog = assemble("main:\n lw r1, (sp)\n halt\n");
  EXPECT_EQ(prog.text[0].inst.imm, 0);
}

TEST(Assembler, BranchCreatesSymbolicReloc) {
  const auto prog = assemble(R"(
main:
  beq r1, r2, done
  nop
done:
  halt
)");
  EXPECT_EQ(prog.text[0].reloc, RelocKind::kBranch);
  EXPECT_EQ(prog.text[0].target, "done");
}

TEST(Assembler, PseudoBranches) {
  const auto prog = assemble(R"(
main:
  beqz r1, m
  bnez r2, m
  bgez r3, m
  bltz r4, m
  bgtz r5, m
  blez r6, m
  ble r1, r2, m
  bgt r3, r4, m
  bleu r5, r6, m
  bgtu r7, r8, m
m: halt
)");
  // beqz r1 -> beq r1, r0
  EXPECT_EQ(prog.text[0].inst.op, Opcode::kBeq);
  EXPECT_EQ(prog.text[0].inst.ra, 1);
  EXPECT_EQ(prog.text[0].inst.rb, 0);
  // bgtz r5 -> blt r0, r5
  EXPECT_EQ(prog.text[4].inst.op, Opcode::kBlt);
  EXPECT_EQ(prog.text[4].inst.ra, 0);
  EXPECT_EQ(prog.text[4].inst.rb, 5);
  // ble r1, r2 -> bge r2, r1
  EXPECT_EQ(prog.text[6].inst.op, Opcode::kBge);
  EXPECT_EQ(prog.text[6].inst.ra, 2);
  EXPECT_EQ(prog.text[6].inst.rb, 1);
  // bgtu r7, r8 -> bltu r8, r7
  EXPECT_EQ(prog.text[9].inst.op, Opcode::kBltu);
  EXPECT_EQ(prog.text[9].inst.ra, 8);
  EXPECT_EQ(prog.text[9].inst.rb, 7);
}

TEST(Assembler, LiSmallExpandsToAddi) {
  const auto prog = assemble("main:\n li r1, -100\n halt\n");
  ASSERT_EQ(prog.text.size(), 2u);
  EXPECT_EQ(prog.text[0].inst.op, Opcode::kAddi);
  EXPECT_EQ(prog.text[0].inst.imm, -100);
}

TEST(Assembler, LiLargeExpandsToLuiOri) {
  const auto prog = assemble("main:\n li r1, 0x12345678\n halt\n");
  ASSERT_EQ(prog.text.size(), 3u);
  EXPECT_EQ(prog.text[0].inst.op, Opcode::kLui);
  EXPECT_EQ(prog.text[0].inst.imm, 0x12345678 >> 14);
  EXPECT_EQ(prog.text[1].inst.op, Opcode::kOri);
  EXPECT_EQ(prog.text[1].inst.imm, 0x12345678 & 0x3FFF);
  // Reconstruction check.
  const std::uint32_t v = (static_cast<std::uint32_t>(prog.text[0].inst.imm) << 14) |
                          static_cast<std::uint32_t>(prog.text[1].inst.imm);
  EXPECT_EQ(v, 0x12345678u);
}

TEST(Assembler, LiAlignedLargeSkipsOri) {
  const auto prog = assemble("main:\n li r1, 0x40000\n halt\n");
  ASSERT_EQ(prog.text.size(), 2u);
  EXPECT_EQ(prog.text[0].inst.op, Opcode::kLui);
}

TEST(Assembler, LiNegativeRoundTrips) {
  const auto prog = assemble("main:\n li r1, -559038737\n halt\n");  // 0xDEADBEEF
  const std::uint32_t v = (static_cast<std::uint32_t>(prog.text[0].inst.imm) << 14) |
                          static_cast<std::uint32_t>(prog.text[1].inst.imm);
  EXPECT_EQ(v, 0xDEADBEEFu);
}

TEST(Assembler, LaCreatesHiLoRelocs) {
  const auto prog = assemble(R"(
main:
  la r2, table
  halt
.data
table: .word 1
)");
  ASSERT_EQ(prog.text.size(), 3u);
  EXPECT_EQ(prog.text[0].reloc, RelocKind::kHi18);
  EXPECT_EQ(prog.text[1].reloc, RelocKind::kLo14);
  EXPECT_EQ(prog.text[0].target, "table");
}

TEST(Assembler, CallRetJumpPseudos) {
  const auto prog = assemble(R"(
main:
  call f
  j end
f:
  ret
end:
  halt
)");
  EXPECT_EQ(prog.text[0].inst.op, Opcode::kJal);
  EXPECT_EQ(prog.text[0].inst.rd, isa::kRegLr);
  EXPECT_EQ(prog.text[1].inst.op, Opcode::kJal);
  EXPECT_EQ(prog.text[1].inst.rd, 0);
  EXPECT_EQ(prog.text[2].inst.op, Opcode::kJalr);
  EXPECT_EQ(prog.text[2].inst.ra, isa::kRegLr);
}

TEST(Assembler, TargetsAnnotationAttachesToNextJalr) {
  const auto prog = assemble(R"(
main:
  la r4, f
  .targets f, g
  jalr lr, r4
  halt
f: ret
g: ret
)");
  const auto& jalr = prog.text[2];
  ASSERT_EQ(jalr.inst.op, Opcode::kJalr);
  ASSERT_EQ(jalr.indirect_targets.size(), 2u);
  EXPECT_EQ(jalr.indirect_targets[0], "f");
  EXPECT_EQ(jalr.indirect_targets[1], "g");
}

TEST(Assembler, TargetsRejectedWhenNotFollowedByJalr) {
  EXPECT_THROW(assemble("main:\n .targets f\n add r1, r1, r1\n halt\nf: ret\n"),
               AsmError);
}

TEST(Assembler, DataDirectives) {
  const auto prog = assemble(R"(
main: halt
.data
a: .word 0x11223344, -1
b: .half 0x5566
c: .byte 1, 2, 3
d: .space 5
e: .ascii "hi"
f: .asciiz "ok"
)");
  EXPECT_EQ(prog.data_labels.at("a"), 0u);
  EXPECT_EQ(prog.data_labels.at("b"), 8u);
  EXPECT_EQ(prog.data_labels.at("c"), 10u);
  EXPECT_EQ(prog.data_labels.at("d"), 13u);
  EXPECT_EQ(prog.data_labels.at("e"), 18u);
  EXPECT_EQ(prog.data_labels.at("f"), 20u);
  EXPECT_EQ(prog.data.size(), 23u);
  EXPECT_EQ(prog.data[0], 0x44);
  EXPECT_EQ(prog.data[3], 0x11);
  EXPECT_EQ(prog.data[4], 0xFF);  // -1
  EXPECT_EQ(prog.data[18], 'h');
  EXPECT_EQ(prog.data[22], 0);  // asciiz terminator
}

TEST(Assembler, AlignDirective) {
  const auto prog = assemble(R"(
main: halt
.data
x: .byte 1
.align 4
y: .word 2
)");
  EXPECT_EQ(prog.data_labels.at("y"), 4u);
}

TEST(Assembler, WordWithLabelCreatesDataReloc) {
  const auto prog = assemble(R"(
main: halt
.data
tbl: .word main, tbl
)");
  ASSERT_EQ(prog.data_relocs.size(), 2u);
  EXPECT_EQ(prog.data_relocs[0].symbol, "main");
  EXPECT_EQ(prog.data_relocs[1].offset, 4u);
}

TEST(Assembler, CharLiterals) {
  const auto prog = assemble("main:\n li r1, 'A'\n li r2, '\\n'\n halt\n");
  EXPECT_EQ(prog.text[0].inst.imm, 65);
  EXPECT_EQ(prog.text[1].inst.imm, 10);
}

TEST(Assembler, EntryDirective) {
  const auto prog = assemble(".entry start\nstart: halt\n");
  EXPECT_EQ(prog.entry, "start");
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("main:\n bogus r1, r2\n"), AsmError);
  EXPECT_THROW(assemble("main:\n addi r1, r0, 99999\n halt\n"), AsmError);
  EXPECT_THROW(assemble("main:\n addi r99, r0, 1\n halt\n"), AsmError);
  EXPECT_THROW(assemble("main:\n beq r1, r2, nowhere\n halt\n"), AsmError);
  EXPECT_THROW(assemble("x: halt\n"), AsmError);               // no entry 'main'
  EXPECT_THROW(assemble("main: halt\nmain: halt\n"), AsmError);  // dup label
  EXPECT_THROW(assemble("main:\n .word 1\n halt\n"), AsmError);  // .word in .text
  EXPECT_THROW(assemble("main: halt\n.data\nx: .align 3\n"), AsmError);
}

TEST(Assembler, ErrorCarriesLineNumber) {
  try {
    assemble("main:\n nop\n bogus\n halt\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Assembler, DuplicateLabelAcrossSectionsRejected) {
  EXPECT_THROW(assemble("main: halt\n.data\nmain: .word 1\n"), AsmError);
}

// ---------------------------------------------------------------------------
// Vanilla linking.
// ---------------------------------------------------------------------------

TEST(LinkVanilla, SequentialLayoutAndEntry) {
  const auto prog = assemble(R"(
main:
  nop
  nop
  halt
)");
  const auto img = link_vanilla(prog);
  EXPECT_EQ(img.text.size(), 3u);
  EXPECT_EQ(img.entry, img.text_base);
  EXPECT_FALSE(img.sofia);
}

TEST(LinkVanilla, BranchOffsetsResolved) {
  const auto prog = assemble(R"(
main:
  beq r0, r0, fwd
  nop
fwd:
  bne r1, r2, main
  halt
)");
  const auto img = link_vanilla(prog);
  const auto b0 = isa::decode(img.text[0]);
  ASSERT_TRUE(b0.has_value());
  EXPECT_EQ(b0->imm, 2);  // main+0 -> fwd at index 2
  const auto b2 = isa::decode(img.text[2]);
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->imm, -2);  // fwd -> main
}

TEST(LinkVanilla, CallOffsetsResolved) {
  const auto prog = assemble(R"(
main:
  call f
  halt
f:
  ret
)");
  const auto img = link_vanilla(prog);
  const auto j = isa::decode(img.text[0]);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->op, Opcode::kJal);
  EXPECT_EQ(j->imm, 2);
}

TEST(LinkVanilla, LaResolvesDataAddress) {
  MemoryLayout layout;
  layout.data_base = 0x00100000;
  const auto prog = assemble(R"(
main:
  la r1, buf
  halt
.data
pad: .space 12
buf: .word 0
)");
  const auto img = link_vanilla(prog, layout);
  const auto hi = isa::decode(img.text[0]);
  const auto lo = isa::decode(img.text[1]);
  ASSERT_TRUE(hi.has_value() && lo.has_value());
  const std::uint32_t addr = (static_cast<std::uint32_t>(hi->imm) << 14) |
                             static_cast<std::uint32_t>(lo->imm);
  EXPECT_EQ(addr, 0x0010000Cu);
}

TEST(LinkVanilla, LaResolvesTextAddress) {
  const auto prog = assemble(R"(
main:
  la r1, f
  halt
f:
  ret
)");
  const auto img = link_vanilla(prog);
  const auto hi = isa::decode(img.text[0]);
  const auto lo = isa::decode(img.text[1]);
  const std::uint32_t addr = (static_cast<std::uint32_t>(hi->imm) << 14) |
                             static_cast<std::uint32_t>(lo->imm);
  EXPECT_EQ(addr, img.text_base + 4 * 3);
}

TEST(LinkVanilla, DataRelocsPatched) {
  const auto prog = assemble(R"(
main: halt
.data
ptr: .word target
target: .word 99
)");
  const auto img = link_vanilla(prog);
  const std::uint32_t patched = static_cast<std::uint32_t>(img.data[0]) |
                                (static_cast<std::uint32_t>(img.data[1]) << 8) |
                                (static_cast<std::uint32_t>(img.data[2]) << 16) |
                                (static_cast<std::uint32_t>(img.data[3]) << 24);
  EXPECT_EQ(patched, img.data_base + 4);
}

TEST(LinkVanilla, ImageTextMatchesEncodedInstructions) {
  const auto prog = assemble("main:\n addi r1, r0, 7\n halt\n");
  const auto img = link_vanilla(prog);
  EXPECT_EQ(img.text[0], isa::encode(prog.text[0].inst));
}

}  // namespace
}  // namespace sofia::assembler
