// Every workload must produce identical console output three ways: the C++
// golden model, the vanilla simulator, and the full SOFIA pipeline. This is
// the strongest functional statement in the repo: the whole toolchain
// (assembler -> transformer -> encrypted fetch -> MAC verify -> 7-stage
// core) is transparent to real programs.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "support/error.hpp"
#include "workloads/workloads.hpp"

namespace sofia::workloads {
namespace {

struct Case {
  const char* name;
  std::uint64_t seed;
  std::uint32_t size;  ///< 0 = use a reduced default
};

std::uint32_t test_size(const WorkloadSpec& spec, std::uint32_t requested) {
  if (requested != 0) return requested;
  // Keep unit tests quick; benches use the full sizes.
  return std::max<std::uint32_t>(8, spec.default_size / 8);
}

class WorkloadEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadEquivalence, GoldenVanillaSofiaAgree) {
  const auto& param = GetParam();
  const WorkloadSpec& spec = workload(param.name);
  const std::uint32_t size = test_size(spec, param.size);
  const std::string src = spec.source(param.seed, size);
  const std::string expected = spec.golden(param.seed, size);

  const auto vres = test::run_vanilla(src);
  ASSERT_TRUE(vres.ok()) << spec.name << ": vanilla " << to_string(vres.status)
                         << " " << vres.fault;
  EXPECT_EQ(vres.output, expected) << spec.name << " (vanilla vs golden)";

  const auto sres = test::run_sofia(src);
  ASSERT_TRUE(sres.ok()) << spec.name << ": sofia " << to_string(sres.status)
                         << " reset=" << to_string(sres.reset.cause);
  EXPECT_EQ(sres.output, expected) << spec.name << " (sofia vs golden)";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadEquivalence,
    ::testing::Values(Case{"adpcm_encode", 1, 0}, Case{"adpcm_encode", 7, 0},
                      Case{"adpcm_decode", 1, 0}, Case{"adpcm_decode", 9, 0},
                      Case{"crc32", 1, 0}, Case{"crc32", 3, 64},
                      Case{"fir", 1, 0}, Case{"fir", 5, 0},
                      Case{"quicksort", 1, 0}, Case{"quicksort", 2, 64},
                      Case{"matmul", 1, 8}, Case{"matmul", 4, 5},
                      Case{"strsearch", 1, 0}, Case{"strsearch", 6, 0},
                      Case{"fib", 0, 12}, Case{"fib", 0, 6},
                      Case{"minivm", 1, 0}, Case{"minivm", 5, 96},
                      Case{"bitcount", 1, 0}, Case{"bitcount", 2, 32},
                      Case{"dijkstra", 1, 0}, Case{"dijkstra", 3, 12}),
    [](const auto& info) {
      return std::string(info.param.name) + "_s" +
             std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.size);
    });

TEST(Workloads, RegistryComplete) {
  EXPECT_EQ(all_workloads().size(), 11u);
  EXPECT_NO_THROW(workload("adpcm_encode"));
  EXPECT_THROW(workload("nope"), Error);
}

TEST(Workloads, SourcesAreDeterministic) {
  const auto& spec = workload("crc32");
  EXPECT_EQ(spec.source(42, 32), spec.source(42, 32));
  EXPECT_NE(spec.source(42, 32), spec.source(43, 32));
}

TEST(Workloads, GoldenAdpcmRoundTripTracksInput) {
  // The decoder output must roughly follow the encoder input (ADPCM is
  // lossy; correlation, not equality).
  const auto in = make_waveform(3, 512);
  AdpcmState enc;
  const auto codes = adpcm_encode(in, enc);
  EXPECT_EQ(codes.size(), 256u);
  AdpcmState dec;
  const auto out = adpcm_decode(codes, 512, dec);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(enc.valprev, dec.valprev);
  EXPECT_EQ(enc.index, dec.index);
  double err = 0;
  double mag = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    err += std::abs(static_cast<double>(in[i]) - out[i]);
    mag += std::abs(static_cast<double>(in[i]));
  }
  EXPECT_LT(err / mag, 0.25) << "reconstruction error too large";
}

TEST(Workloads, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::vector<std::uint8_t> check = {'1', '2', '3', '4', '5',
                                           '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
}

TEST(Workloads, WaveformInBounds) {
  const auto w = make_waveform(11, 4096);
  for (const auto s : w) {
    EXPECT_GE(s, -32768);
    EXPECT_LE(s, 32767);
  }
}

}  // namespace
}  // namespace sofia::workloads
