// The adversarial campaign engine: mutation vocabulary, seeded generation,
// trial classification, greedy counterexample minimization, and the
// determinism contract (thread count and shard/merge splits must not change
// a byte of the sofia-attack-campaign-v1 document).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "campaign/campaign.hpp"
#include "pipeline/pipeline.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace {

using namespace sofia;
using campaign::Mutation;
using campaign::MutationKind;
using campaign::MutationRecord;
using campaign::TrialClass;

// ---- mutation vocabulary ---------------------------------------------------

TEST(Mutation, CatalogMatchesEnum) {
  const auto& catalog = campaign::mutator_catalog();
  ASSERT_EQ(catalog.size(), campaign::kMutationKindCount);
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(catalog[i].kind), i);
    EXPECT_FALSE(catalog[i].name.empty());
    EXPECT_FALSE(catalog[i].description.empty());
    names.insert(catalog[i].name);
    EXPECT_EQ(campaign::to_string(catalog[i].kind), catalog[i].name);
    EXPECT_EQ(campaign::parse_mutation_kind(catalog[i].name), catalog[i].kind);
  }
  EXPECT_EQ(names.size(), catalog.size()) << "names must be unique";
  EXPECT_THROW(campaign::parse_mutation_kind("warp-core-breach"), Error);
}

TEST(Mutation, ResetCauseCountPinsSimEnum) {
  // CellResult::causes is indexed by sim::ResetCause; if the simulator
  // grows a cause this must grow with it.
  EXPECT_EQ(static_cast<std::size_t>(sim::ResetCause::kTargetSetViolation) + 1,
            campaign::kResetCauseCount);
  for (std::size_t i = 0; i < campaign::kResetCauseCount; ++i)
    EXPECT_FALSE(sim::to_string(static_cast<sim::ResetCause>(i)).empty());
}

TEST(Mutation, GenerationIsSeededAndBounded) {
  const campaign::ImageGeometry g{.text_words = 96, .words_per_block = 8};
  const Rng parent(7);
  for (std::uint64_t job = 0; job < 200; ++job) {
    Rng a = parent.fork(job);
    Rng b = parent.fork(job);
    const auto ra = campaign::generate_record(a, g);
    const auto rb = campaign::generate_record(b, g);
    EXPECT_EQ(ra, rb) << "per-job substreams must replay";
    ASSERT_FALSE(ra.empty());
    ASSERT_LE(ra.size(), 3u);
    int faults = 0;
    for (const auto& m : ra) {
      switch (m.kind) {
        case MutationKind::kBitFlip:
          EXPECT_LT(m.a, g.text_words);
          EXPECT_LT(m.b, 32u);
          break;
        case MutationKind::kWordPatch:
        case MutationKind::kWordRelocate:
          EXPECT_LT(m.a, g.text_words);
          break;
        case MutationKind::kBlockSplice:
        case MutationKind::kCrossVersionSplice:
          EXPECT_LT(m.a, g.blocks());
          break;
        case MutationKind::kHeaderForge:
          EXPECT_LT(m.a, g.blocks());
          EXPECT_LT(m.b, 2u);
          EXPECT_NE(m.c, 0u);
          break;
        case MutationKind::kFetchFault:
          ++faults;
          EXPECT_LT(m.a, 4ull * g.text_words);
          break;
        case MutationKind::kRetargetIndirect:
          ADD_FAILURE() << "retargets need dispatch slots; this geometry "
                           "has none";
          break;
      }
    }
    EXPECT_LE(faults, 1) << "SimConfig carries a single fault slot";
  }
}

TEST(Mutation, RetargetGenerationStaysOutsideTheProvedSets) {
  campaign::ImageGeometry g{.text_words = 32, .words_per_block = 8};
  g.text_base = 0x1000;
  g.dispatch_slots = {0, 4, 12};
  g.indirect_targets = {0x1004, 0x1008, 0x1020};  // sorted byte addresses
  Rng rng(11);
  int seen = 0;
  for (int i = 0; i < 400; ++i) {
    const Mutation m = campaign::generate(rng, g);
    if (m.kind != MutationKind::kRetargetIndirect) continue;
    ++seen;
    EXPECT_TRUE(std::find(g.dispatch_slots.begin(), g.dispatch_slots.end(),
                          m.a) != g.dispatch_slots.end());
    EXPECT_GE(m.b, g.text_base);
    EXPECT_LT(m.b, g.text_base + 4ull * g.text_words);
    EXPECT_EQ(m.b % 4, 0u);
    EXPECT_FALSE(std::binary_search(g.indirect_targets.begin(),
                                    g.indirect_targets.end(),
                                    static_cast<std::uint32_t>(m.b)))
        << "an in-set rewire is admitted by the policy, never generated";
  }
  EXPECT_GT(seen, 0) << "the retarget share of the kind mix never fired";
}

TEST(Mutation, JsonRoundTrip) {
  const campaign::ImageGeometry g{.text_words = 64, .words_per_block = 8};
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Mutation m = campaign::generate(rng, g);
    json::Writer w;
    campaign::to_json(m, w);
    const Mutation back = campaign::mutation_from_json(json::parse(w.str()));
    EXPECT_EQ(m, back) << m.describe();
  }
  EXPECT_THROW(campaign::mutation_from_json(json::parse("{\"kind\":\"x\"}")),
               Error);
}

TEST(Mutation, ApplySemantics) {
  assembler::LoadImage image;
  image.text.assign(16, 0);
  for (std::uint32_t i = 0; i < 16; ++i) image.text[i] = 0x100 + i;
  assembler::LoadImage donor = image;
  for (auto& w : donor.text) w ^= 0xAAAA0000u;
  sim::SimConfig config;
  const campaign::ApplyContext ctx{8, &donor};

  auto img = image;
  campaign::apply({MutationKind::kBitFlip, 3, 5}, img, config, ctx);
  EXPECT_EQ(img.text[3], (0x100u + 3) ^ (1u << 5));

  img = image;
  campaign::apply({MutationKind::kWordPatch, 2, 0xDEAD}, img, config, ctx);
  EXPECT_EQ(img.text[2], 0xDEADu);

  img = image;
  campaign::apply({MutationKind::kWordRelocate, 1, 9}, img, config, ctx);
  EXPECT_EQ(img.text[9], image.text[1]);

  img = image;
  campaign::apply({MutationKind::kBlockSplice, 0, 1}, img, config, ctx);
  for (std::uint32_t j = 0; j < 8; ++j)
    EXPECT_EQ(img.text[8 + j], image.text[j]);

  img = image;
  campaign::apply({MutationKind::kHeaderForge, 1, 1, 0xFF}, img, config, ctx);
  EXPECT_EQ(img.text[9], image.text[9] ^ 0xFFu);

  img = image;
  campaign::apply({MutationKind::kCrossVersionSplice, 1}, img, config, ctx);
  for (std::uint32_t j = 0; j < 8; ++j)
    EXPECT_EQ(img.text[8 + j], donor.text[8 + j]);

  img = image;
  EXPECT_FALSE(config.fault.enabled);
  campaign::apply({MutationKind::kFetchFault, 42, 7}, img, config, ctx);
  EXPECT_TRUE(config.fault.enabled);
  EXPECT_EQ(config.fault.fetch_index, 42u);
  EXPECT_EQ(config.fault.bit, 7u);
  EXPECT_EQ(img.text, image.text) << "fault schedules leave the image alone";

  img = image;
  img.data.assign(12, 0xEE);
  campaign::apply({MutationKind::kRetargetIndirect, 4, 0x00001234}, img,
                  config, ctx);
  EXPECT_EQ(img.data[4], 0x34);
  EXPECT_EQ(img.data[5], 0x12);
  EXPECT_EQ(img.data[6], 0x00);
  EXPECT_EQ(img.data[7], 0x00);
  EXPECT_EQ(img.data[0], 0xEE);
  EXPECT_EQ(img.data[8], 0xEE);
  EXPECT_EQ(img.text, image.text) << "retargets leave the sealed text alone";

  // Out-of-range parameters and a missing donor fail loudly.
  img = image;
  EXPECT_THROW(campaign::apply({MutationKind::kBitFlip, 16, 0}, img, config, ctx),
               Error);
  img.data.assign(12, 0);
  EXPECT_THROW(campaign::apply({MutationKind::kRetargetIndirect, 12, 0}, img,
                               config, ctx),
               Error);
  EXPECT_THROW(campaign::apply({MutationKind::kRetargetIndirect, 2, 0}, img,
                               config, ctx),
               Error);
  EXPECT_THROW(campaign::apply({MutationKind::kBlockSplice, 2, 0}, img, config, ctx),
               Error);
  EXPECT_THROW(campaign::apply({MutationKind::kHeaderForge, 0, 2, 1}, img, config, ctx),
               Error);
  const campaign::ApplyContext no_donor{8, nullptr};
  EXPECT_THROW(
      campaign::apply({MutationKind::kCrossVersionSplice, 0}, img, config, no_donor),
      Error);
}

// ---- classification and minimization ---------------------------------------

TEST(Campaign, Classify) {
  sim::RunResult run;
  run.status = sim::RunResult::Status::kHalted;
  run.output = "42\n";
  EXPECT_EQ(campaign::classify(run, "42\n"), TrialClass::kHarmless);
  EXPECT_EQ(campaign::classify(run, "43\n"), TrialClass::kEscaped);
  run.status = sim::RunResult::Status::kReset;
  EXPECT_EQ(campaign::classify(run, "42\n"), TrialClass::kDetected);
  run.status = sim::RunResult::Status::kFault;
  EXPECT_EQ(campaign::classify(run, "42\n"), TrialClass::kEscaped);
  run.status = sim::RunResult::Status::kMaxCycles;
  EXPECT_EQ(campaign::classify(run, "42\n"), TrialClass::kEscaped);
}

TEST(Campaign, MinimizeDropsIrrelevantMutations) {
  const Mutation vital{MutationKind::kWordPatch, 7, 0xBAD};
  const MutationRecord record = {{MutationKind::kBitFlip, 1, 1},
                                 vital,
                                 {MutationKind::kWordRelocate, 2, 3}};
  int trials = 0;
  const auto result =
      campaign::minimize(record, [&](const MutationRecord& candidate) {
        ++trials;
        for (const auto& m : candidate)
          if (m == vital) return TrialClass::kEscaped;
        return TrialClass::kDetected;
      });
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], vital);
  EXPECT_GT(trials, 0);
}

TEST(Campaign, MinimizeKeepsInteractingPair) {
  // Both mutations are needed: dropping either stops the escape, so the
  // greedy pass must keep the pair intact.
  const MutationRecord record = {{MutationKind::kBitFlip, 1, 1},
                                 {MutationKind::kBitFlip, 2, 2},
                                 {MutationKind::kBitFlip, 3, 3}};
  const auto result =
      campaign::minimize(record, [&](const MutationRecord& candidate) {
        int hits = 0;
        for (const auto& m : candidate)
          if (m.a == 1 || m.a == 3) ++hits;
        return hits == 2 ? TrialClass::kEscaped : TrialClass::kHarmless;
      });
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].a, 1u);
  EXPECT_EQ(result[1].a, 3u);
}

TEST(Campaign, MinimizeSingleMutationSkipsTrials) {
  const MutationRecord record = {{MutationKind::kBitFlip, 1, 1}};
  int trials = 0;
  const auto result = campaign::minimize(record, [&](const MutationRecord&) {
    ++trials;
    return TrialClass::kEscaped;
  });
  EXPECT_EQ(result, record);
  EXPECT_EQ(trials, 0);
}

// ---- campaign runs ---------------------------------------------------------

campaign::CampaignSpec smoke_spec(std::uint32_t jobs) {
  auto spec = campaign::smoke(campaign::default_campaign());
  spec.jobs_per_cell = jobs;
  return spec;
}

TEST(Campaign, SmokeMatrixShape) {
  const auto spec = smoke_spec(10);
  // One cell per registered scheme, each on the paper cipher / per-pair.
  ASSERT_EQ(spec.cells.size(), scheme::scheme_registry().size());
  std::set<std::string> schemes;
  for (const auto& cell : spec.cells) {
    schemes.insert(cell.scheme);
    EXPECT_EQ(cell.cipher, crypto::CipherKind::kRectangle80);
    EXPECT_EQ(cell.granularity, crypto::Granularity::kPerPair);
  }
  EXPECT_EQ(schemes.size(), spec.cells.size());
  EXPECT_EQ(spec.total_jobs(), 10u * spec.cells.size());
}

TEST(Campaign, AuthenticatedSchemesDetectEverything) {
  const auto result = campaign::run_campaign(smoke_spec(120), 4);
  ASSERT_EQ(result.cells.size(), result.spec.cells.size());
  bool saw_authenticated = false;
  bool saw_null = false;
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.jobs, 120u);
    EXPECT_EQ(cell.detected + cell.harmless + cell.escaped, cell.jobs);
    if (cell.authenticated) {
      saw_authenticated = true;
      EXPECT_EQ(cell.escaped, 0u) << cell.cell.label();
      EXPECT_TRUE(cell.escapes.empty());
      EXPECT_GT(cell.detected, 0u);
      EXPECT_DOUBLE_EQ(cell.detection_rate(), 1.0);
      EXPECT_GE(cell.latency_max, cell.latency_min);
      EXPECT_GE(cell.latency_total, cell.latency_max);
    } else {
      saw_null = true;
    }
  }
  EXPECT_TRUE(saw_authenticated);
  EXPECT_TRUE(saw_null);
  EXPECT_TRUE(result.authenticated_clean());
  EXPECT_EQ(result.jobs_run(), result.spec.total_jobs());
}

TEST(Campaign, NullSchemeLeaksWithTriagedEscapes) {
  auto spec = smoke_spec(120);
  std::erase_if(spec.cells, [](const campaign::CellSpec& c) {
    return c.scheme != "null";
  });
  ASSERT_EQ(spec.cells.size(), 1u);
  const auto result = campaign::run_campaign(spec, 4);
  const auto& cell = result.cells[0];
  EXPECT_FALSE(cell.authenticated);
  ASSERT_GT(cell.escaped, 0u) << "the encrypt-only baseline must leak";
  EXPECT_TRUE(result.authenticated_clean()) << "null escapes never gate";
  ASSERT_EQ(cell.escapes.size(), cell.escaped);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < cell.escapes.size(); ++i) {
    const auto& e = cell.escapes[i];
    if (i > 0) EXPECT_GT(e.job, prev) << "escapes sorted by job index";
    prev = e.job;
    ASSERT_FALSE(e.applied.empty());
    ASSERT_FALSE(e.minimized.empty());
    EXPECT_LE(e.minimized.size(), e.applied.size());
    // Every minimized mutation is one of the applied ones.
    for (const auto& m : e.minimized)
      EXPECT_NE(std::find(e.applied.begin(), e.applied.end(), m),
                e.applied.end());
    // Image-tampering escapes are attributed by the static layer; pure
    // fault schedules are invisible to it.
    const bool image_tamper =
        std::any_of(e.applied.begin(), e.applied.end(), [](const Mutation& m) {
          return m.kind != MutationKind::kFetchFault;
        });
    if (!image_tamper) EXPECT_TRUE(e.lint.empty());
  }
}

TEST(Campaign, DetectionLatencyMatchesAcrossBackends) {
  // The reset criterion is architectural: the cycle-accurate and functional
  // backends must agree on every verdict and on the retired-instruction
  // count at which each tampered run resets.
  auto spec = smoke_spec(60);
  std::erase_if(spec.cells, [](const campaign::CellSpec& c) {
    return c.scheme != std::string(scheme::kDefaultScheme);
  });
  ASSERT_EQ(spec.cells.size(), 1u);
  auto cycle_spec = spec;
  cycle_spec.backend = "cycle";
  const auto functional = campaign::run_campaign(spec, 4);
  const auto cycle = campaign::run_campaign(cycle_spec, 4);
  const auto& f = functional.cells[0];
  const auto& c = cycle.cells[0];
  EXPECT_EQ(f.detected, c.detected);
  EXPECT_EQ(f.harmless, c.harmless);
  EXPECT_EQ(f.escaped, c.escaped);
  EXPECT_EQ(f.causes, c.causes);
  EXPECT_EQ(f.latency_min, c.latency_min);
  EXPECT_EQ(f.latency_max, c.latency_max);
  EXPECT_EQ(f.latency_total, c.latency_total);
}

// Two dispatch sites with disjoint target sets — two distinct label
// classes, so a cross-class retarget exercises the label gate (not just
// the MAC check a stray redirect dies in).
constexpr char kRetargetVictim[] = R"(
main:
  li r1, 0
  la r4, table
  lw r5, 0(r4)
  .targets f1, f2
  jr r5
mid:
  la r4, table2
  lw r5, 0(r4)
  .targets g1, g2
  jr r5
done:
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
f1:
  addi r1, r1, 1
  j mid
f2:
  addi r1, r1, 2
  j mid
g1:
  addi r1, r1, 4
  j done
g2:
  addi r1, r1, 8
  j done
.data
table: .word f1, f2
table2: .word g1, g2
)";

TEST(Campaign, RetargetedIndirectTransfersAreDetectedByFlta) {
  auto profile =
      pipeline::DeviceProfile::from_seed(crypto::CipherKind::kRectangle80, 17);
  profile.scheme = pipeline::DeviceProfile::parse_scheme("flta");
  auto session =
      pipeline::Pipeline::from_source(kRetargetVictim, profile, "retarget");
  const auto& clean = session.run();
  ASSERT_TRUE(clean.ok());

  const auto model = verify::model_of(session.hardened());
  std::vector<std::vector<std::uint32_t>> sets;  // declared, in block order
  for (const auto& blk : model.blocks)
    if (!blk.jalr_targets.empty()) sets.push_back(blk.jalr_targets);
  ASSERT_EQ(sets.size(), 2u);

  const auto& image = session.hardened().image;
  const auto slot_of = [&](std::uint32_t target) -> std::uint32_t {
    for (std::uint32_t off = 0; off + 4 <= image.data.size(); off += 4) {
      std::uint32_t v = 0;
      for (std::uint32_t j = 0; j < 4; ++j)
        v |= static_cast<std::uint32_t>(image.data[off + j]) << (8 * j);
      if (v == target) return off;
    }
    ADD_FAILURE() << "no dispatch slot holds the target";
    return 0;
  };
  const auto retarget = [&](std::uint32_t slot, std::uint32_t addr) {
    auto img = image;
    sim::SimConfig config = session.sim_config();
    campaign::apply(Mutation{MutationKind::kRetargetIndirect, slot, addr},
                    img, config, campaign::ApplyContext{});
    return session.run_image(img, config);
  };

  // Cross-class: redirect the first dispatch into the second set. The MAC
  // opens (both entries are canonical) but the label gate must trip.
  const auto cross = retarget(slot_of(sets[0][0]), sets[1][0]);
  ASSERT_EQ(cross.status, sim::RunResult::Status::kReset);
  EXPECT_EQ(cross.reset.cause, sim::ResetCause::kTargetSetViolation);

  // Out-of-set: redirect into a block body word — no canonical entry
  // opens there, so the transfer dies before the label compare.
  const auto stray = retarget(slot_of(sets[1][0]), model.text_base + 4 * 3);
  ASSERT_EQ(stray.status, sim::RunResult::Status::kReset);
  EXPECT_NE(stray.reset.cause, sim::ResetCause::kNone);

  // In-set rewire: swapping within one class passes the gate and bends the
  // output — the target-set policy's admitted residual surface, and why
  // generation never draws in-set addresses.
  const auto bent = retarget(slot_of(sets[0][0]), sets[0][1]);
  EXPECT_TRUE(bent.ok());
  EXPECT_NE(bent.output, clean.output);
}

TEST(Campaign, InvalidSpecsThrow) {
  campaign::CampaignSpec empty;
  EXPECT_THROW(campaign::run_campaign(empty, 1), Error);
  auto bad_jobs = smoke_spec(10);
  bad_jobs.jobs_per_cell = 0;
  EXPECT_THROW(campaign::run_campaign(bad_jobs, 1), Error);
  auto bad_scheme = smoke_spec(1);
  bad_scheme.cells[0].scheme = "unobtainium";
  EXPECT_THROW(campaign::run_campaign(bad_scheme, 1), Error);
  auto bad_backend = smoke_spec(1);
  bad_backend.backend = "quantum";
  EXPECT_THROW(campaign::run_campaign(bad_backend, 1), Error);
}

// ---- document determinism --------------------------------------------------

TEST(CampaignJson, ByteIdenticalAcrossThreadCounts) {
  const auto spec = smoke_spec(60);
  const auto doc1 = campaign::to_json(campaign::run_campaign(spec, 1));
  const auto doc4 = campaign::to_json(campaign::run_campaign(spec, 4));
  EXPECT_EQ(doc1, doc4);
  EXPECT_NE(doc1.find("\"schema\": \"sofia-attack-campaign-v1\""),
            std::string::npos);
}

TEST(CampaignJson, ShardMergeIsByteIdenticalToUnsharded) {
  const auto spec = smoke_spec(45);
  const auto whole = campaign::to_json(campaign::run_campaign(spec, 4));
  const auto s0 = campaign::to_json(
      campaign::run_campaign(spec, 2, {}, driver::ShardSpec{0, 3}));
  const auto s1 = campaign::to_json(
      campaign::run_campaign(spec, 3, {}, driver::ShardSpec{1, 3}));
  const auto s2 = campaign::to_json(
      campaign::run_campaign(spec, 4, {}, driver::ShardSpec{2, 3}));
  // Merge accepts the shards in any order.
  EXPECT_EQ(campaign::merge_json({s0, s1, s2}), whole);
  EXPECT_EQ(campaign::merge_json({s2, s0, s1}), whole);
}

TEST(CampaignJson, MergeRejectsBadInputs) {
  const auto spec = smoke_spec(10);
  const auto s0 = campaign::to_json(
      campaign::run_campaign(spec, 2, {}, driver::ShardSpec{0, 2}));
  const auto s1 = campaign::to_json(
      campaign::run_campaign(spec, 2, {}, driver::ShardSpec{1, 2}));
  EXPECT_THROW(campaign::merge_json({}), Error);
  EXPECT_THROW(campaign::merge_json({s0}), Error);          // missing shard
  EXPECT_THROW(campaign::merge_json({s0, s0}), Error);      // duplicate
  EXPECT_THROW(campaign::merge_json({"{}"}), Error);        // not a campaign
  auto other = spec;
  other.seed = 99;
  const auto o1 = campaign::to_json(
      campaign::run_campaign(other, 2, {}, driver::ShardSpec{1, 2}));
  EXPECT_THROW(campaign::merge_json({s0, o1}), Error);      // header mismatch
  // An unsharded document is not mergeable input (no "shard" member).
  const auto whole = campaign::to_json(campaign::run_campaign(spec, 2));
  EXPECT_THROW(campaign::merge_json({whole}), Error);
}

}  // namespace
