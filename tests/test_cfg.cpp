#include <gtest/gtest.h>

#include "assembler/program.hpp"
#include "cfg/cfg.hpp"
#include "support/error.hpp"
#include "xform/normalize.hpp"

namespace sofia::cfg {
namespace {

Cfg build(const std::string& src) {
  return Cfg::build(assembler::assemble(src));
}

TEST(Cfg, StraightLineSingleRun) {
  const auto cfg = build("main:\n nop\n nop\n halt\n");
  EXPECT_EQ(cfg.leaders().size(), 1u);
  EXPECT_EQ(cfg.run_end(0), 3u);
  EXPECT_TRUE(cfg.reachable(0));
}

TEST(Cfg, BranchSplitsRuns) {
  const auto cfg = build(R"(
main:
  beq r1, r2, skip
  nop
skip:
  halt
)");
  // Leaders: 0 (entry), 1 (after branch), 2 (skip).
  ASSERT_EQ(cfg.leaders().size(), 3u);
  EXPECT_EQ(cfg.leaders()[0], 0u);
  EXPECT_EQ(cfg.leaders()[1], 1u);
  EXPECT_EQ(cfg.leaders()[2], 2u);
  // skip has two preds: branch-taken from 0, fall-through from 1.
  const auto& preds = cfg.preds(2);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].from, 0u);
  EXPECT_EQ(preds[0].kind, EdgeKind::kBranchTaken);
  EXPECT_EQ(preds[1].from, 1u);
  EXPECT_EQ(preds[1].kind, EdgeKind::kFallThrough);
}

TEST(Cfg, BranchFallEdgeRecorded) {
  const auto cfg = build(R"(
main:
  beq r1, r2, out
  nop
out:
  halt
)");
  const auto& after_branch = cfg.preds(1);
  ASSERT_EQ(after_branch.size(), 1u);
  EXPECT_EQ(after_branch[0].kind, EdgeKind::kBranchFall);
}

TEST(Cfg, CallAndReturnEdges) {
  const auto cfg = build(R"(
main:
  call f
  halt
f:
  ret
)");
  // f's entry (index 2) has a call pred from 0.
  const auto& fpreds = cfg.preds(2);
  ASSERT_EQ(fpreds.size(), 1u);
  EXPECT_EQ(fpreds[0].kind, EdgeKind::kCall);
  // Return site (index 1) has a return edge from f's ret (index 2).
  const auto& rpreds = cfg.preds(1);
  ASSERT_EQ(rpreds.size(), 1u);
  EXPECT_EQ(rpreds[0].kind, EdgeKind::kReturn);
  EXPECT_EQ(rpreds[0].from, 2u);
}

TEST(Cfg, FunctionDiscovery) {
  const auto cfg = build(R"(
main:
  call f
  call f
  halt
f:
  addi r1, r1, 1
  ret
)");
  ASSERT_EQ(cfg.functions().size(), 2u);  // <entry> and f
  const auto* f = cfg.function_at(3);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->name, "f");
  EXPECT_EQ(f->call_sites.size(), 2u);
  ASSERT_EQ(f->rets.size(), 1u);
  EXPECT_EQ(f->rets[0], 4u);
  // Return edges to both return sites.
  EXPECT_EQ(cfg.preds(1).size(), 1u);
  EXPECT_EQ(cfg.preds(2).size(), 1u);
}

TEST(Cfg, RecursiveFunction) {
  const auto cfg = build(R"(
main:
  call f
  halt
f:
  beqz r1, base
  addi r1, r1, -1
  call f
  nop
base:
  ret
)");
  const auto* f = cfg.function_at(2);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->call_sites.size(), 2u);  // from main and from itself
  EXPECT_EQ(f->rets.size(), 1u);
}

TEST(Cfg, UnreachableCodeDetected) {
  const auto cfg = build(R"(
main:
  j end
dead:
  nop
  j end
end:
  halt
)");
  EXPECT_TRUE(cfg.reachable(0));
  EXPECT_FALSE(cfg.reachable(1));
  EXPECT_TRUE(cfg.reachable(3));
}

TEST(Cfg, JumpTargetsBecomeLeaders) {
  const auto cfg = build(R"(
main:
  nop
  j target
  nop
target:
  halt
)");
  EXPECT_TRUE(cfg.is_leader(3));
  EXPECT_TRUE(cfg.is_leader(2));  // after control
  EXPECT_FALSE(cfg.is_leader(1));
}

TEST(Cfg, ErrorOnRunOffEnd) {
  EXPECT_THROW(build("main:\n nop\n"), TransformError);
  EXPECT_THROW(build("main:\n beq r1, r2, main\n"), TransformError);
}

TEST(Cfg, ErrorOnUnannotatedIndirectJump) {
  EXPECT_THROW(build(R"(
main:
  la r4, f
  jalr lr, r4
  halt
f:
  ret
)"),
               TransformError);
}

TEST(Cfg, RetPseudoRecognized) {
  isa::Instruction ret;
  ret.op = isa::Opcode::kJalr;
  ret.ra = isa::kRegLr;
  EXPECT_TRUE(is_ret(ret));
  ret.imm = 4;
  EXPECT_FALSE(is_ret(ret));
  ret.imm = 0;
  ret.rd = 1;
  EXPECT_FALSE(is_ret(ret));
}

TEST(Cfg, RetInUncalledEntryRejected) {
  EXPECT_THROW(build("main:\n ret\n"), TransformError);
}

TEST(Cfg, SharedEpilogueAcrossFunctionsRejected) {
  // f falls through into g's ret; both f and g are called.
  EXPECT_THROW(build(R"(
main:
  call f
  call g
  halt
f:
  nop
g:
  ret
)"),
               TransformError);
}

TEST(Cfg, EdgeKindNames) {
  EXPECT_EQ(to_string(EdgeKind::kCall), "call");
  EXPECT_EQ(to_string(EdgeKind::kReturn), "return");
  EXPECT_EQ(to_string(EdgeKind::kBranchTaken), "branch-taken");
}

// ---------------------------------------------------------------------------
// Normalization passes.
// ---------------------------------------------------------------------------

TEST(Devirtualize, ExpandsAnnotatedCall) {
  const auto prog = assembler::assemble(R"(
main:
  la r4, f
  .targets f, g
  jalr lr, r4
  halt
f:
  ret
g:
  ret
)");
  const auto out = xform::devirtualize(prog);
  // No non-ret jalr left.
  for (const auto& si : out.text) {
    if (si.inst.op == isa::Opcode::kJalr) {
      EXPECT_TRUE(cfg::is_ret(si.inst));
    }
  }
  // And the result builds a CFG where f has two call sites? No — one
  // devirtualized site per target, so one call edge each.
  const auto cfg = Cfg::build(out);
  const auto* f = cfg.function_at(out.text_labels.at("f"));
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->call_sites.size(), 1u);
}

TEST(Devirtualize, JumpFormUsesPlainJumps) {
  const auto prog = assembler::assemble(R"(
main:
  la r4, a
  .targets a, b
  jr r4
a:
  halt
b:
  halt
)");
  const auto out = xform::devirtualize(prog);
  for (const auto& si : out.text) EXPECT_NE(si.inst.op, isa::Opcode::kJalr);
  // Builds a valid CFG.
  EXPECT_NO_THROW(Cfg::build(out));
}

TEST(Devirtualize, PreservesLabelsAcrossExpansion) {
  const auto prog = assembler::assemble(R"(
main:
  .targets f
  jalr lr, r4
after:
  halt
f:
  ret
)");
  const auto out = xform::devirtualize(prog);
  // 'after' must still point at the halt.
  EXPECT_EQ(out.text[out.text_labels.at("after")].inst.op, isa::Opcode::kHalt);
  EXPECT_EQ(out.text[out.text_labels.at("f")].inst.op, isa::Opcode::kJalr);
}

TEST(Devirtualize, RejectsScratchRegisterBase) {
  const auto prog = assembler::assemble(R"(
main:
  .targets f
  jalr lr, r13
  halt
f:
  ret
)");
  EXPECT_THROW(xform::devirtualize(prog), TransformError);
}

TEST(Devirtualize, RejectsNonZeroOffset) {
  const auto prog = assembler::assemble(R"(
main:
  .targets f
  jalr lr, r4, 8
  halt
f:
  ret
)");
  EXPECT_THROW(xform::devirtualize(prog), TransformError);
}

TEST(MergeReturns, SingleEpiloguePerFunction) {
  const auto prog = assembler::assemble(R"(
main:
  call f
  halt
f:
  beqz r1, alt
  ret
alt:
  addi r2, r2, 1
  ret
)");
  const auto out = xform::merge_returns(prog);
  const auto cfg = Cfg::build(out);
  const auto* f = cfg.function_at(out.text_labels.at("f"));
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rets.size(), 1u);
}

TEST(MergeReturns, NoChangeForSingleRet) {
  const auto prog = assembler::assemble(R"(
main:
  call f
  halt
f:
  ret
)");
  const auto out = xform::merge_returns(prog);
  EXPECT_EQ(out.text.size(), prog.text.size());
  EXPECT_EQ(out.text[2].inst.op, isa::Opcode::kJalr);
}

TEST(MergeReturns, ThreeReturnsCollapseToOne) {
  const auto prog = assembler::assemble(R"(
main:
  call f
  halt
f:
  beqz r1, a
  beqz r2, b
  ret
a:
  addi r3, r3, 1
  ret
b:
  addi r3, r3, 2
  ret
)");
  const auto out = xform::merge_returns(prog);
  const auto cfg = Cfg::build(out);
  const auto* f = cfg.function_at(out.text_labels.at("f"));
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rets.size(), 1u);
}

TEST(MergeReturns, TwoFunctionsEachMerged) {
  const auto prog = assembler::assemble(R"(
main:
  call f
  call g
  halt
f:
  beqz r1, fa
  ret
fa:
  ret
g:
  beqz r2, ga
  ret
ga:
  ret
)");
  const auto out = xform::merge_returns(prog);
  const auto cfg = Cfg::build(out);
  for (const auto& fn : cfg.functions()) {
    EXPECT_LE(fn.rets.size(), 1u) << fn.name;
  }
}

TEST(Cfg, LoopBackEdgeMakesHeaderAJoin) {
  const auto cfg = build(R"(
main:
  li r1, 5
loop:
  addi r1, r1, -1
  bnez r1, loop
  halt
)");
  const std::uint32_t header = 1;  // 'loop' label
  EXPECT_TRUE(cfg.is_leader(header));
  // Preds: fall-through from li and the taken back edge.
  EXPECT_EQ(cfg.preds(header).size(), 2u);
}

TEST(Cfg, NestedLoops) {
  const auto cfg = build(R"(
main:
  li r1, 3
outer:
  li r2, 4
inner:
  addi r2, r2, -1
  bnez r2, inner
  addi r1, r1, -1
  bnez r1, outer
  halt
)");
  EXPECT_TRUE(cfg.reachable(0));
  // Both headers are joins.
  EXPECT_EQ(cfg.preds(1).size(), 2u);  // outer
  EXPECT_EQ(cfg.preds(2).size(), 2u);  // inner
}

TEST(Devirtualize, ManyTargetsExpandLinearly) {
  const auto prog = assembler::assemble(R"(
main:
  .targets f0, f1, f2, f3
  jalr lr, r4
  halt
f0: ret
f1: ret
f2: ret
f3: ret
)");
  const auto out = xform::devirtualize(prog);
  // Per target: la(2) + beq(1) at the head, jal + j at the case = 5, plus
  // one trap halt. 4 targets -> 21 instructions replacing 1.
  EXPECT_EQ(out.text.size(), prog.text.size() - 1 + 21);
  EXPECT_NO_THROW(Cfg::build(out));
}

TEST(Devirtualize, IdempotentWhenNoIndirectJumps) {
  const auto prog = assembler::assemble("main:\n nop\n halt\n");
  const auto out = xform::devirtualize(prog);
  EXPECT_EQ(out.text.size(), prog.text.size());
}

}  // namespace
}  // namespace sofia::cfg
