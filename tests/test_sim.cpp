#include <gtest/gtest.h>

#include "sim/cipher_engine.hpp"
#include "sim/icache.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"
#include "sim_test_util.hpp"
#include "support/error.hpp"

namespace sofia::sim {
namespace {

// ---------------------------------------------------------------------------
// Memory.
// ---------------------------------------------------------------------------

TEST(Memory, ByteHalfWordRoundTrip) {
  Memory mem;
  mem.store32(0x1000, 0xDEADBEEF);
  EXPECT_EQ(mem.load32(0x1000), 0xDEADBEEFu);
  EXPECT_EQ(mem.load8(0x1000), 0xEFu);   // little-endian
  EXPECT_EQ(mem.load8(0x1003), 0xDEu);
  EXPECT_EQ(mem.load16(0x1002), 0xDEADu);
  mem.store8(0x1001, 0x00);
  EXPECT_EQ(mem.load32(0x1000), 0xDEAD00EFu);
}

TEST(Memory, UntouchedMemoryReadsZero) {
  Memory mem;
  EXPECT_EQ(mem.load32(0x123456), 0u);
}

TEST(Memory, CrossPageAccess) {
  Memory mem;
  mem.store32(0x0FFE, 0x11223344);  // straddles a 4 KiB page boundary
  EXPECT_EQ(mem.load32(0x0FFE), 0x11223344u);
  EXPECT_EQ(mem.load16(0x1000), 0x1122u);
}

TEST(Memory, LoadImagePlacesSections) {
  assembler::LoadImage img;
  img.text_base = 0;
  img.text = {0xAAAAAAAA, 0xBBBBBBBB};
  img.data_base = 0x100000;
  img.data = {1, 2, 3};
  Memory mem;
  mem.load_image(img);
  EXPECT_EQ(mem.load32(0), 0xAAAAAAAAu);
  EXPECT_EQ(mem.load32(4), 0xBBBBBBBBu);
  EXPECT_EQ(mem.load8(0x100002), 3u);
}

// ---------------------------------------------------------------------------
// I-cache.
// ---------------------------------------------------------------------------

TEST(ICache, MissThenHit) {
  CacheConfig cfg{1024, 32, 10};
  ICache cache(cfg);
  EXPECT_EQ(cache.access(0x0), 10u);
  EXPECT_EQ(cache.access(0x4), 1u);   // same line
  EXPECT_EQ(cache.access(0x1C), 1u);  // still same line
  EXPECT_EQ(cache.access(0x20), 10u);  // next line
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(ICache, ConflictEviction) {
  CacheConfig cfg{1024, 32, 10};  // 32 lines
  ICache cache(cfg);
  EXPECT_EQ(cache.access(0x0), 10u);
  EXPECT_EQ(cache.access(0x0 + 1024), 10u);  // same index, different tag
  EXPECT_EQ(cache.access(0x0), 10u);         // evicted
}

TEST(ICache, RejectsBadGeometry) {
  EXPECT_THROW(ICache(CacheConfig{1000, 32, 10}), Error);
  EXPECT_THROW(ICache(CacheConfig{1024, 3, 10}), Error);
  EXPECT_THROW(ICache(CacheConfig{16, 32, 10}), Error);
}

// ---------------------------------------------------------------------------
// Cipher engine timing.
// ---------------------------------------------------------------------------

TEST(CipherEngine, AlternatingSlots) {
  CipherEngine eng(CipherTiming{2, true});
  // CTR ops start on even cycles: 0, 2, 4 -> done 2, 4, 6.
  EXPECT_EQ(eng.schedule(CipherEngine::Op::kCtr, 0), 2u);
  EXPECT_EQ(eng.schedule(CipherEngine::Op::kCtr, 0), 4u);
  EXPECT_EQ(eng.schedule(CipherEngine::Op::kCtr, 0), 6u);
  // CBC ops interleave on odd cycles: 1, 3 -> done 3, 5.
  EXPECT_EQ(eng.schedule(CipherEngine::Op::kCbc, 0), 3u);
  EXPECT_EQ(eng.schedule(CipherEngine::Op::kCbc, 0), 5u);
}

TEST(CipherEngine, AlternatingRespectsEarliest) {
  CipherEngine eng(CipherTiming{2, true});
  EXPECT_EQ(eng.schedule(CipherEngine::Op::kCbc, 10), 13u);  // aligned to 11
  EXPECT_EQ(eng.schedule(CipherEngine::Op::kCtr, 10), 12u);
}

TEST(CipherEngine, DemandModeFullyPipelined) {
  CipherEngine eng(CipherTiming{2, false});
  EXPECT_EQ(eng.schedule(CipherEngine::Op::kCtr, 0), 2u);
  EXPECT_EQ(eng.schedule(CipherEngine::Op::kCbc, 0), 3u);
  EXPECT_EQ(eng.schedule(CipherEngine::Op::kCtr, 0), 4u);
}

TEST(CipherEngine, LatencyConfigurable) {
  CipherEngine eng(CipherTiming{26, true});  // non-unrolled RECTANGLE
  EXPECT_EQ(eng.schedule(CipherEngine::Op::kCtr, 0), 26u);
}

// ---------------------------------------------------------------------------
// Vanilla execution: ISA semantics through the whole pipeline.
// ---------------------------------------------------------------------------

using test::run_vanilla;

TEST(VanillaExec, HaltStatus) {
  const auto r = run_vanilla("main:\n halt\n");
  EXPECT_EQ(r.status, RunResult::Status::kHalted);
  EXPECT_GT(r.stats.cycles, 0u);
}

TEST(VanillaExec, ExitCodeViaMmio) {
  const auto r = run_vanilla(R"(
main:
  li r1, 42
  li r2, 0xFFFF0004
  sw r1, 0(r2)
  halt
)");
  EXPECT_EQ(r.status, RunResult::Status::kExited);
  EXPECT_EQ(r.exit_code, 42);
}

TEST(VanillaExec, ConsoleOutput) {
  const auto r = run_vanilla(R"(
main:
  li r2, 0xFFFF0000
  li r1, 'H'
  sw r1, 0(r2)
  li r1, 'i'
  sw r1, 0(r2)
  halt
)");
  EXPECT_EQ(r.output, "Hi");
}

TEST(VanillaExec, PutIntOutput) {
  const auto r = run_vanilla(R"(
main:
  li r2, 0xFFFF0008
  li r1, -123
  sw r1, 0(r2)
  halt
)");
  EXPECT_EQ(r.output, "-123\n");
}

TEST(VanillaExec, ArithmeticSweep) {
  const auto r = run_vanilla(R"(
main:
  li r1, 7
  li r2, -3
  add r3, r1, r2      ; 4
  sub r4, r1, r2      ; 10
  mul r5, r1, r2      ; -21
  and r6, r1, r2      ; 7 & -3 = 5
  or r7, r1, r2       ; 7 | -3 = -1
  xor r8, r1, r2      ; 7 ^ -3 = -6
  add r9, r3, r4      ; 14
  add r9, r9, r5      ; -7
  add r9, r9, r6      ; -2
  add r9, r9, r7      ; -3
  add r9, r9, r8      ; -9
  li r10, 0xFFFF0008
  sw r9, 0(r10)
  halt
)");
  EXPECT_EQ(r.output, "-9\n");
}

TEST(VanillaExec, ShiftAndCompare) {
  const auto r = run_vanilla(R"(
main:
  li r1, -16
  srai r2, r1, 2      ; -4
  srli r3, r1, 28     ; 15
  slli r4, r3, 1      ; 30
  slt r5, r1, r0      ; 1 (-16 < 0)
  sltu r6, r1, r0     ; 0 (0xFFFFFFF0 > 0 unsigned)
  add r7, r2, r3
  add r7, r7, r4
  add r7, r7, r5
  add r7, r7, r6      ; -4+15+30+1+0 = 42
  li r10, 0xFFFF0008
  sw r7, 0(r10)
  halt
)");
  EXPECT_EQ(r.output, "42\n");
}

TEST(VanillaExec, LoadStoreAllWidths) {
  const auto r = run_vanilla(R"(
main:
  la r1, buf
  li r2, 0x12345678
  sw r2, 0(r1)
  lb r3, 0(r1)        ; 0x78
  lbu r4, 3(r1)       ; 0x12
  lh r5, 0(r1)        ; 0x5678
  lhu r6, 2(r1)       ; 0x1234
  sh r5, 4(r1)
  sb r3, 6(r1)
  lw r7, 4(r1)        ; 0x00785678
  li r10, 0xFFFF0008
  sw r3, 0(r10)
  sw r4, 0(r10)
  sw r5, 0(r10)
  sw r6, 0(r10)
  sw r7, 0(r10)
  halt
.data
buf: .space 8
)");
  EXPECT_EQ(r.output, "120\n18\n22136\n4660\n7886456\n");
}

TEST(VanillaExec, SignedLoadsSignExtend) {
  const auto r = run_vanilla(R"(
main:
  la r1, buf
  li r2, -1
  sb r2, 0(r1)
  lb r3, 0(r1)
  lbu r4, 0(r1)
  li r10, 0xFFFF0008
  sw r3, 0(r10)
  sw r4, 0(r10)
  halt
.data
buf: .space 4
)");
  EXPECT_EQ(r.output, "-1\n255\n");
}

TEST(VanillaExec, LoopSum) {
  const auto r = run_vanilla(R"(
main:
  li r1, 0        ; sum
  li r2, 10       ; i
loop:
  add r1, r1, r2
  addi r2, r2, -1
  bnez r2, loop
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
)");
  EXPECT_EQ(r.output, "55\n");
}

TEST(VanillaExec, CallAndReturn) {
  const auto r = run_vanilla(R"(
main:
  li r1, 5
  call double
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
double:
  add r1, r1, r1
  ret
)");
  EXPECT_EQ(r.output, "10\n");
}

TEST(VanillaExec, RecursiveFactorial) {
  const auto r = run_vanilla(R"(
main:
  li r1, 5
  call fact
  li r10, 0xFFFF0008
  sw r2, 0(r10)
  halt
fact:                     ; r2 = r1!
  li r2, 1
  ble r1, r2, done
  addi sp, sp, -8
  sw lr, 0(sp)
  sw r1, 4(sp)
  addi r1, r1, -1
  call fact
  lw r1, 4(sp)
  lw lr, 0(sp)
  addi sp, sp, 8
  mul r2, r2, r1
done:
  ret
)");
  EXPECT_EQ(r.output, "120\n");
}

TEST(VanillaExec, IndirectJumpViaRegister) {
  const auto r = run_vanilla(R"(
main:
  la r4, here
  jalr lr, r4
  halt
here:
  li r1, 9
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
)");
  EXPECT_EQ(r.output, "9\n");
}

TEST(VanillaExec, MisalignedAccessFaults) {
  const auto r = run_vanilla(R"(
main:
  li r1, 2
  lw r2, 0(r1)
  halt
)");
  EXPECT_EQ(r.status, RunResult::Status::kFault);
  EXPECT_NE(r.fault.find("misaligned"), std::string::npos);
}

TEST(VanillaExec, MmioLoadFaults) {
  const auto r = run_vanilla(R"(
main:
  li r1, 0xFFFF0000
  lw r2, 0(r1)
  halt
)");
  EXPECT_EQ(r.status, RunResult::Status::kFault);
}

TEST(VanillaExec, MaxCyclesOnInfiniteLoop) {
  const auto prog = assembler::assemble("main:\n j main\n");
  const auto img = assembler::link_vanilla(prog);
  auto cfg = test::vanilla_config();
  cfg.max_cycles = 5000;
  const auto r = run_image(img, cfg);
  EXPECT_EQ(r.status, RunResult::Status::kMaxCycles);
}

TEST(VanillaExec, R0IsAlwaysZero) {
  const auto r = run_vanilla(R"(
main:
  addi r0, r0, 99
  li r10, 0xFFFF0008
  sw r0, 0(r10)
  halt
)");
  EXPECT_EQ(r.output, "0\n");
}

TEST(VanillaExec, StatsPopulated) {
  const auto r = run_vanilla(R"(
main:
  li r1, 3
loop:
  addi r1, r1, -1
  bnez r1, loop
  halt
)");
  EXPECT_GT(r.stats.insts, 6u);
  EXPECT_EQ(r.stats.branches, 3u);
  EXPECT_EQ(r.stats.taken, 2u);
  EXPECT_GT(r.stats.cycles, r.stats.insts);  // bubbles exist
  EXPECT_GT(r.stats.icache_misses, 0u);
}

TEST(VanillaExec, LoadUseHazardCostsCycles) {
  const auto fast = run_vanilla(R"(
main:
  la r1, buf
  lw r2, 0(r1)
  nop
  add r3, r2, r2
  halt
.data
buf: .word 7
)");
  const auto slow = run_vanilla(R"(
main:
  la r1, buf
  lw r2, 0(r1)
  add r3, r2, r2
  nop
  halt
.data
buf: .word 7
)");
  // Same instruction count; the load-use version cannot be faster.
  EXPECT_GE(slow.stats.cycles, fast.stats.cycles);
}

}  // namespace
}  // namespace sofia::sim
