// Tests for the staged toolchain facade (src/pipeline/): DeviceProfile as
// the single source of truth for cipher/keys/policy/granularity, and the
// Pipeline session object's lazy cached stages, uniform error context and
// measurement semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unistd.h>

#include "assembler/image_io.hpp"
#include "pipeline/pipeline.hpp"
#include "support/error.hpp"

namespace sofia::pipeline {
namespace {

const char* kSource = R"(
main:
  li r1, 5
  li r2, 0
loop:
  add r2, r2, r1
  addi r1, r1, -1
  bnez r1, loop
  li r10, 0xFFFF0008
  sw r2, 0(r10)
  halt
)";

// ---------------------------------------------------------------------------
// DeviceProfile
// ---------------------------------------------------------------------------

TEST(DeviceProfile, PaperDefaultMatchesTheHardware) {
  const auto p = DeviceProfile::paper_default();
  EXPECT_EQ(p.cipher, crypto::CipherKind::kRectangle80);
  EXPECT_EQ(p.key_source, KeySource::kExample);
  EXPECT_EQ(p.granularity, crypto::Granularity::kPerPair);
  EXPECT_EQ(p.policy, xform::BlockPolicy::paper_default());
}

TEST(DeviceProfile, ParseCipherNames) {
  EXPECT_EQ(DeviceProfile::parse("rectangle80").cipher,
            crypto::CipherKind::kRectangle80);
  EXPECT_EQ(DeviceProfile::parse("RECTANGLE-80").cipher,
            crypto::CipherKind::kRectangle80);
  EXPECT_EQ(DeviceProfile::parse("speck64").cipher,
            crypto::CipherKind::kSpeck64_128);
  EXPECT_EQ(DeviceProfile::parse("SPECK-64/128").cipher,
            crypto::CipherKind::kSpeck64_128);
  EXPECT_THROW(DeviceProfile::parse("des"), Error);
  // The error names the accepted spellings.
  try {
    DeviceProfile::parse("des");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rectangle80"), std::string::npos);
  }
}

TEST(DeviceProfile, SeededKeysAreDeterministic) {
  const auto a = DeviceProfile::from_seed(crypto::CipherKind::kRectangle80, 5);
  const auto b = DeviceProfile::from_seed(crypto::CipherKind::kRectangle80, 5);
  const auto c = DeviceProfile::from_seed(crypto::CipherKind::kRectangle80, 6);
  EXPECT_EQ(a.keys().k1, b.keys().k1);
  EXPECT_EQ(a.keys().omega, b.keys().omega);
  EXPECT_NE(a.keys().k1, c.keys().k1);
}

TEST(DeviceProfile, OmegaOverrideApplies) {
  auto p = DeviceProfile::paper_default();
  const auto original = p.keys().omega;
  p.omega_override = original ^ 0x1234;
  EXPECT_EQ(p.keys().omega, original ^ 0x1234);
}

TEST(DeviceProfile, ConfigureStampsKeysAndPolicy) {
  auto p = DeviceProfile::example(crypto::CipherKind::kSpeck64_128);
  p.policy = xform::BlockPolicy::small_unrestricted();
  sim::SimConfig config;
  p.configure(config);
  EXPECT_EQ(config.keys.kind, crypto::CipherKind::kSpeck64_128);
  EXPECT_EQ(config.policy, xform::BlockPolicy::small_unrestricted());
  // The toolchain view agrees with the device view.
  const auto opts = p.transform_options();
  EXPECT_EQ(opts.policy, config.policy);
  EXPECT_EQ(opts.granularity, p.granularity);
}

TEST(DeviceProfile, FingerprintAndJsonNameEveryAxis) {
  const auto p = DeviceProfile::from_seed(crypto::CipherKind::kSpeck64_128, 9);
  const auto fp = p.fingerprint();
  EXPECT_NE(fp.find("cipher=SPECK-64/128"), std::string::npos) << fp;
  EXPECT_NE(fp.find("keys=seed:9"), std::string::npos) << fp;
  EXPECT_NE(fp.find("gran=per-pair"), std::string::npos) << fp;
  EXPECT_NE(fp.find("policy=8/4"), std::string::npos) << fp;
  const auto doc = p.to_json();
  EXPECT_NE(doc.find("\"cipher\":\"SPECK-64/128\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"keys\":\"seed\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"key_seed\":9"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"words_per_block\":8"), std::string::npos) << doc;
}

// ---------------------------------------------------------------------------
// Pipeline sessions
// ---------------------------------------------------------------------------

TEST(Pipeline, StagesAreLazyAndCached) {
  auto p = Pipeline::from_source(kSource);
  const auto* prog = &p.program();
  EXPECT_EQ(&p.program(), prog);  // same object, not re-assembled
  const auto* hard = &p.hardened();
  EXPECT_EQ(&p.hardened(), hard);
  EXPECT_EQ(&p.image(), &hard->image);
  const auto* run = &p.run();
  EXPECT_EQ(&p.run(), run);
}

TEST(Pipeline, VanillaAndSofiaAgree) {
  auto p = Pipeline::from_source(kSource);
  EXPECT_TRUE(p.run_vanilla().ok());
  EXPECT_TRUE(p.run().ok());
  EXPECT_EQ(p.run_vanilla().output, "15\n");
  EXPECT_EQ(p.run().output, "15\n");
}

TEST(Pipeline, MeasureValidatesAndFillsTheRecord) {
  auto p = Pipeline::from_workload("fib", 1, 8);
  const auto m = p.measure();
  EXPECT_EQ(m.name, "fib");
  EXPECT_GT(m.sofia_text_bytes, m.vanilla_text_bytes);
  EXPECT_GT(m.sofia_cycles, m.vanilla_cycles);
  EXPECT_GT(m.cycle_overhead_pct(), 0.0);
}

TEST(Pipeline, MeasureMatchesTheSourceSessionWithoutGolden) {
  // No golden model: measure() checks the two cores against each other.
  auto p = Pipeline::from_source(kSource);
  EXPECT_FALSE(p.has_expected_output());
  const auto m = p.measure();
  EXPECT_GT(m.sofia_cycles, m.vanilla_cycles);
}

TEST(Pipeline, MeasureThrowsOnGoldenMismatch) {
  auto spec = workloads::workload("fib");
  spec.golden = [](std::uint64_t, std::uint32_t) { return std::string("bogus"); };
  auto p = Pipeline::from_workload(spec, 1, 8);
  try {
    p.measure();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pipeline[fib]/measure"), std::string::npos) << what;
  }
}

TEST(Pipeline, ErrorsCarryStageAndSessionContext) {
  auto p = Pipeline::from_source("this is not sr32", DeviceProfile::paper_default(),
                                 "bad-program");
  try {
    p.program();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pipeline[bad-program]/program:"), std::string::npos)
        << what;
  }
  EXPECT_THROW(Pipeline::from_source_file("/nonexistent/x.s"), Error);
  EXPECT_THROW(Pipeline::from_image_file("/nonexistent/x.img"), Error);
  EXPECT_THROW(Pipeline::from_workload("no_such_workload", 1, 8), Error);
}

TEST(Pipeline, ImageSessionsRunButHaveNoToolchainStages) {
  auto builder = Pipeline::from_source(kSource);
  const std::string path =
      "/tmp/sofia_pipeline_test_" + std::to_string(getpid()) + ".img";
  assembler::save_image(builder.image(), path);

  auto p = Pipeline::from_image_file(path);
  EXPECT_TRUE(p.image().sofia);
  EXPECT_TRUE(p.run().ok());
  EXPECT_EQ(p.run().output, "15\n");
  try {
    p.program();
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no source available"),
              std::string::npos);
  }
  EXPECT_THROW(p.hardened(), Error);
  std::remove(path.c_str());
}

TEST(Pipeline, CipherMismatchIsAnArchitecturalResetNotACrash) {
  // Transform with Speck64 keys, run under the (default) RECTANGLE-80
  // profile: the device decrypts garbage and must pull the reset line on
  // the first block's MAC check — the paper's §II-B behavior.
  auto speck = Pipeline::from_source(
      kSource, DeviceProfile::example(crypto::CipherKind::kSpeck64_128));
  auto wrong_device = Pipeline::from_image(speck.image());
  const auto& run = wrong_device.run();
  EXPECT_EQ(run.status, sim::RunResult::Status::kReset);
  EXPECT_EQ(run.reset.cause, sim::ResetCause::kMacMismatch);
}

TEST(Pipeline, TamperedImageResets) {
  auto p = Pipeline::from_source(kSource);
  auto tampered = p.image();
  tampered.text.at(3) ^= 1u;
  const auto run = p.run_image(tampered);
  EXPECT_EQ(run.status, sim::RunResult::Status::kReset);
}

TEST(Pipeline, SimConfigChangesInvalidateCachedRuns) {
  auto p = Pipeline::from_source(kSource);
  const auto cycles_before = p.run().stats.cycles;
  sim::SimConfig slow;
  slow.icache.size_bytes = 128;  // much smaller cache -> more misses
  p.set_sim_config(slow);
  EXPECT_GE(p.run().stats.cycles, cycles_before);
  // The hardened image itself was not invalidated by a sim-side change.
  EXPECT_TRUE(p.run().ok());
}

TEST(Pipeline, SeededProfileRoundTripsThroughTheDevice) {
  const auto profile = DeviceProfile::from_seed(crypto::CipherKind::kSpeck64_128, 42);
  auto p = Pipeline::from_source(kSource, profile);
  EXPECT_TRUE(p.run().ok());
  EXPECT_EQ(p.run().output, "15\n");
  // A device with a different seed must reset.
  auto other = Pipeline::from_image(
      p.image(), DeviceProfile::from_seed(crypto::CipherKind::kSpeck64_128, 43));
  EXPECT_EQ(other.run().status, sim::RunResult::Status::kReset);
}

}  // namespace
}  // namespace sofia::pipeline
