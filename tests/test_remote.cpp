// The remote-execution subsystem (src/remote/ + sim::RemoteBackend):
//  * wire-format round trips and the negative space — truncated frames,
//    wrong protocol version, oversized lengths, corrupt checksums and
//    payloads must all surface as sofia::Error naming the offending field,
//    never a hang or a zeroed RunResult;
//  * the worker serve loop, driven in-process over pipe pairs;
//  * the transport against dying/garbage-spewing workers;
//  * (with the sofia_worker binary) a differential suite asserting
//    remote(cycle) ≡ cycle and remote(functional) ≡ functional across the
//    workload registry.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "remote/spec.hpp"
#include "remote/transport.hpp"
#include "remote/wire.hpp"
#include "remote/worker.hpp"
#include "sim/remote_backend.hpp"
#include "support/error.hpp"
#include "workloads/workloads.hpp"

namespace sofia::remote {
namespace {

const char* kSource = R"(
main:
  li r1, 5
  li r2, 0
loop:
  add r2, r2, r1
  addi r1, r1, -1
  bnez r1, loop
  li r10, 0xFFFF0008
  sw r2, 0(r10)
  halt
)";

/// A fully-populated request: non-default config knobs everywhere a field
/// could silently fall off the wire.
RunRequest sample_request() {
  auto p = pipeline::Pipeline::from_source(kSource);
  RunRequest req;
  req.backend = "functional";
  req.image = p.image();
  req.config = p.effective_sim_config();
  req.config.fetch_queue = 9;
  req.config.icache.size_bytes = 2048;
  req.config.cipher.pipelined = false;
  req.config.fault.enabled = true;
  req.config.fault.fetch_index = 1234567890123ull;
  req.config.fault.bit = 17;
  req.config.max_cycles = 987654321;
  req.config.collect_trace = true;
  req.config.max_trace = 4242;
  return req;
}

void expect_error_mentions(const std::function<void()>& f,
                           const std::string& needle) {
  try {
    f();
    FAIL() << "expected sofia::Error mentioning '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Wire format: round trips
// ---------------------------------------------------------------------------

TEST(RemoteWire, RunRequestRoundTrips) {
  const RunRequest req = sample_request();
  const auto decoded = decode_run_request(encode_run_request(req));
  EXPECT_EQ(decoded.backend, req.backend);
  EXPECT_EQ(decoded.image.text, req.image.text);
  EXPECT_EQ(decoded.image.data, req.image.data);
  EXPECT_EQ(decoded.image.entry, req.image.entry);
  EXPECT_EQ(decoded.image.omega, req.image.omega);
  EXPECT_EQ(decoded.image.sofia, req.image.sofia);
  EXPECT_EQ(decoded.image.per_pair, req.image.per_pair);
  const auto& c = decoded.config;
  const auto& e = req.config;
  EXPECT_EQ(c.fetch_queue, e.fetch_queue);
  EXPECT_EQ(c.icache.size_bytes, e.icache.size_bytes);
  EXPECT_EQ(c.keys.kind, e.keys.kind);
  EXPECT_EQ(c.keys.k1, e.keys.k1);
  EXPECT_EQ(c.keys.k2, e.keys.k2);
  EXPECT_EQ(c.keys.k3, e.keys.k3);
  EXPECT_EQ(c.keys.omega, e.keys.omega);
  EXPECT_EQ(c.policy.words_per_block, e.policy.words_per_block);
  EXPECT_EQ(c.cipher.pipelined, e.cipher.pipelined);
  EXPECT_EQ(c.fault.enabled, e.fault.enabled);
  EXPECT_EQ(c.fault.fetch_index, e.fault.fetch_index);
  EXPECT_EQ(c.fault.bit, e.fault.bit);
  EXPECT_EQ(c.max_cycles, e.max_cycles);
  EXPECT_EQ(c.collect_trace, e.collect_trace);
  EXPECT_EQ(c.max_trace, e.max_trace);
}

TEST(RemoteWire, RunReplyRoundTripsIncludingTrace) {
  RunReply reply;
  reply.result.status = sim::RunResult::Status::kReset;
  reply.result.exit_code = -7;
  reply.result.reset.cause = sim::ResetCause::kMacMismatch;
  reply.result.reset.cycle = 123456789012345ull;
  reply.result.reset.pc = 0xDEADBEE0u;
  reply.result.fault = "no fault";
  reply.result.output = "hello\nworld";
  reply.result.stats.cycles = 42;
  reply.result.stats.insts = 41;
  reply.result.stats.exec_stall_cycles = 9;
  reply.result.trace = {{1, 0x10, 0xAABBCCDD}, {2, 0x14, 0x11223344}};
  const auto decoded = decode_run_reply(encode_run_reply(reply));
  EXPECT_EQ(decoded.result.status, reply.result.status);
  EXPECT_EQ(decoded.result.exit_code, reply.result.exit_code);
  EXPECT_EQ(decoded.result.reset.cause, reply.result.reset.cause);
  EXPECT_EQ(decoded.result.reset.cycle, reply.result.reset.cycle);
  EXPECT_EQ(decoded.result.reset.pc, reply.result.reset.pc);
  EXPECT_EQ(decoded.result.fault, reply.result.fault);
  EXPECT_EQ(decoded.result.output, reply.result.output);
  EXPECT_EQ(decoded.result.stats.cycles, reply.result.stats.cycles);
  EXPECT_EQ(decoded.result.stats.exec_stall_cycles,
            reply.result.stats.exec_stall_cycles);
  ASSERT_EQ(decoded.result.trace.size(), reply.result.trace.size());
  EXPECT_EQ(decoded.result.trace[1].word, reply.result.trace[1].word);
}

TEST(RemoteWire, HelloAndErrorRoundTrip) {
  HelloReply hello{"functional", "fast architectural", {false, false}};
  const auto h = decode_hello_reply(encode_hello_reply(hello));
  EXPECT_EQ(h.name, "functional");
  EXPECT_FALSE(h.caps.cycle_accurate);
  const auto req = decode_hello_request(encode_hello_request({"cycle"}));
  EXPECT_EQ(req.backend, "cycle");
  const auto err = decode_error_reply(encode_error_reply({"boom"}));
  EXPECT_EQ(err.message, "boom");
}

TEST(RemoteWire, FrameRoundTrips) {
  const Frame frame{MessageType::kRunRequest,
                    encode_run_request(sample_request())};
  const auto decoded = decode_frame(encode_frame(frame));
  EXPECT_EQ(decoded.type, frame.type);
  EXPECT_EQ(decoded.payload, frame.payload);
}

// ---------------------------------------------------------------------------
// Wire format: the negative space
// ---------------------------------------------------------------------------

TEST(RemoteWire, EveryTruncationOfAFrameThrows) {
  // Chop a real frame at every possible byte boundary: each prefix must be
  // rejected with an Error — never accepted, never a crash.
  const auto bytes = encode_frame(
      {MessageType::kRunRequest, encode_run_request(sample_request())});
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_THROW(decode_frame(prefix), Error) << "prefix length " << n;
  }
}

TEST(RemoteWire, EveryTruncationOfARunReplyPayloadThrows) {
  RunReply reply;
  reply.result.output = "abc";
  reply.result.trace = {{1, 4, 5}};
  const auto payload = encode_run_reply(reply);
  for (std::size_t n = 0; n < payload.size(); ++n) {
    const std::vector<std::uint8_t> prefix(payload.begin(),
                                           payload.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_THROW(decode_run_reply(prefix), Error) << "prefix length " << n;
  }
}

TEST(RemoteWire, WrongProtocolVersionNamesBothVersions) {
  auto bytes = encode_frame({MessageType::kHelloRequest,
                             encode_hello_request({"cycle"})});
  bytes[4] = 0x07;  // protocol version low byte
  expect_error_mentions([&] { decode_frame(bytes); }, "version 7");
}

TEST(RemoteWire, BadMagicRejected) {
  auto bytes = encode_frame({MessageType::kHelloRequest,
                             encode_hello_request({"cycle"})});
  bytes[0] = 'X';
  expect_error_mentions([&] { decode_frame(bytes); }, "magic");
}

TEST(RemoteWire, OversizedPayloadLengthRejectedBeforeAllocation) {
  auto bytes = encode_frame({MessageType::kHelloRequest,
                             encode_hello_request({"cycle"})});
  // Claim a ~4 GiB payload; the header check must trip on kMaxPayload.
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = 0xFF;
  expect_error_mentions([&] { decode_frame(bytes); }, "limit");
}

TEST(RemoteWire, CorruptChecksumRejected) {
  auto bytes = encode_frame({MessageType::kHelloRequest,
                             encode_hello_request({"cycle"})});
  bytes[kFrameHeaderSize] ^= 0x01;  // first payload byte; stored sum now stale
  expect_error_mentions([&] { decode_frame(bytes); }, "checksum");
}

TEST(RemoteWire, CorruptStringLengthNamesTheField) {
  auto payload = encode_hello_request({"cycle"});
  payload[0] = 0xFF;  // backend-string length low byte -> way past the end
  expect_error_mentions([&] { decode_hello_request(payload); }, "backend");
}

TEST(RemoteWire, OversizedTraceCountNamesTheField) {
  auto payload = encode_run_reply({});
  // The trace count is the last 4 bytes of an empty reply; claim 2^32-1
  // entries with zero bytes behind them.
  std::fill(payload.end() - 4, payload.end(), 0xFF);
  expect_error_mentions([&] { decode_run_reply(payload); }, "result.trace");
}

TEST(RemoteWire, TrailingBytesRejectedAtBothLayers) {
  auto payload = encode_hello_request({"cycle"});
  payload.push_back(0);
  expect_error_mentions([&] { decode_hello_request(payload); }, "trailing");
  auto frame_bytes = encode_frame({MessageType::kHelloRequest,
                                   encode_hello_request({"cycle"})});
  frame_bytes.push_back(0);
  expect_error_mentions([&] { decode_frame(frame_bytes); }, "trailing");
}

TEST(RemoteWire, EncodeFrameRejectsOversizedPayloadBeforeWriting) {
  // The encode side enforces the same cap as the decode side, so a worker
  // producing a monster reply (a >64 MiB trace) throws before any byte
  // reaches the stream — serve() can still answer with an ErrorReply
  // naming the limit instead of corrupting the frame stream.
  Frame frame;
  frame.type = MessageType::kRunReply;
  frame.payload.resize(static_cast<std::size_t>(kMaxPayload) + 1);
  expect_error_mentions([&] { (void)encode_frame(frame); }, "limit");
}

TEST(RemoteWire, UnknownMessageTypeRejected) {
  auto bytes = encode_frame({MessageType::kHelloRequest,
                             encode_hello_request({"cycle"})});
  bytes[6] = 0x63;  // message type low byte = 99
  expect_error_mentions([&] { decode_frame(bytes); }, "type");
}

// ---------------------------------------------------------------------------
// The worker serve loop, in-process over pipe pairs
// ---------------------------------------------------------------------------

/// serve() running on a std::thread with both directions on raw pipes —
/// the worker side exactly as sofia_worker runs it, minus the subprocess.
class LocalServeLoop {
 public:
  LocalServeLoop() {
    int to_worker[2];
    int from_worker[2];
    EXPECT_EQ(pipe(to_worker), 0);
    EXPECT_EQ(pipe(from_worker), 0);
    request_w_ = fdopen(to_worker[1], "wb");
    reply_r_ = fdopen(from_worker[0], "rb");
    std::FILE* request_r = fdopen(to_worker[0], "rb");
    std::FILE* reply_w = fdopen(from_worker[1], "wb");
    thread_ = std::thread([request_r, reply_w] {
      serve(request_r, reply_w);
      std::fclose(request_r);
      std::fclose(reply_w);
    });
  }

  ~LocalServeLoop() {
    std::fclose(request_w_);  // EOF: the serve loop returns
    thread_.join();
    std::fclose(reply_r_);
  }

  Frame exchange(const Frame& request) {
    write_frame(request_w_, request);
    Frame reply;
    EXPECT_TRUE(read_frame(reply_r_, reply));
    return reply;
  }

 private:
  std::FILE* request_w_ = nullptr;
  std::FILE* reply_r_ = nullptr;
  std::thread thread_;
};

TEST(RemoteWorker, ServeDescribesLocalBackends) {
  LocalServeLoop worker;
  auto reply = worker.exchange(
      {MessageType::kHelloRequest, encode_hello_request({"cycle"})});
  ASSERT_EQ(reply.type, MessageType::kHelloReply);
  auto hello = decode_hello_reply(reply.payload);
  EXPECT_EQ(hello.name, "cycle");
  EXPECT_TRUE(hello.caps.cycle_accurate);

  reply = worker.exchange(
      {MessageType::kHelloRequest, encode_hello_request({"functional"})});
  ASSERT_EQ(reply.type, MessageType::kHelloReply);
  EXPECT_FALSE(decode_hello_reply(reply.payload).caps.cycle_accurate);
}

TEST(RemoteWorker, ServeExecutesARunRequest) {
  auto p = pipeline::Pipeline::from_source(kSource);
  const auto& local = p.run();

  LocalServeLoop worker;
  RunRequest req;
  req.backend = "cycle";
  req.image = p.image();
  req.config = p.effective_sim_config();
  const auto reply = worker.exchange(
      {MessageType::kRunRequest, encode_run_request(req)});
  ASSERT_EQ(reply.type, MessageType::kRunReply);
  const auto remote_result = decode_run_reply(reply.payload).result;
  EXPECT_EQ(remote_result.status, local.status);
  EXPECT_EQ(remote_result.exit_code, local.exit_code);
  EXPECT_EQ(remote_result.output, local.output);
  EXPECT_EQ(remote_result.stats.cycles, local.stats.cycles);
  EXPECT_EQ(remote_result.stats.insts, local.stats.insts);
}

TEST(RemoteWorker, ServeRejectsUnknownAndRecursiveBackends) {
  LocalServeLoop worker;
  auto reply = worker.exchange(
      {MessageType::kHelloRequest, encode_hello_request({"warp"})});
  ASSERT_EQ(reply.type, MessageType::kErrorReply);
  EXPECT_NE(decode_error_reply(reply.payload).message.find("warp"),
            std::string::npos);

  reply = worker.exchange(
      {MessageType::kHelloRequest, encode_hello_request({"remote"})});
  ASSERT_EQ(reply.type, MessageType::kErrorReply);
  EXPECT_NE(decode_error_reply(reply.payload).message.find("recurse"),
            std::string::npos);
}

TEST(RemoteWorker, ServeAnswersMalformedPayloadWithAFieldNamingError) {
  LocalServeLoop worker;
  const auto reply = worker.exchange(
      {MessageType::kRunRequest, {0xDE, 0xAD}});  // truncated run request
  ASSERT_EQ(reply.type, MessageType::kErrorReply);
  const auto message = decode_error_reply(reply.payload).message;
  EXPECT_NE(message.find("run-request"), std::string::npos) << message;
  EXPECT_NE(message.find("backend"), std::string::npos) << message;
}

// ---------------------------------------------------------------------------
// Transport against misbehaving workers: errors, never hangs
// ---------------------------------------------------------------------------

TEST(RemoteTransport, WorkerThatExitsImmediatelyIsAnError) {
  WorkerProcess worker("true");
  try {
    worker.send({MessageType::kHelloRequest, encode_hello_request({"cycle"})});
    (void)worker.receive();
    FAIL() << "expected sofia::Error";
  } catch (const Error& e) {
    // Either the write hit the dead pipe (EPIPE) or the read saw EOF; both
    // must name the worker command.
    EXPECT_NE(std::string(e.what()).find("true"), std::string::npos)
        << e.what();
  }
}

TEST(RemoteTransport, WorkerDyingMidReplyIsATruncationError) {
  WorkerProcess worker("printf SFRM");  // 4 header bytes, then death
  expect_error_mentions([&] { (void)worker.receive(); }, "died mid-frame");
}

TEST(RemoteTransport, GarbageSpewingWorkerIsAMagicError) {
  WorkerProcess worker("echo garbage-garbage-garbage");
  expect_error_mentions([&] { (void)worker.receive(); }, "magic");
}

TEST(RemoteBackendContract, UnconfiguredRemoteBackendExplainsItself) {
  unsetenv(kWorkerEnv);
  const sim::RemoteBackend backend{RemoteSpec{}};
  auto p = pipeline::Pipeline::from_source(kSource);
  expect_error_mentions(
      [&] { (void)backend.run(p.image(), p.effective_sim_config()); },
      "SOFIA_WORKER");
}

TEST(RemoteBackendContract, RecursiveFarSideBackendRejectedLocally) {
  const sim::RemoteBackend backend{RemoteSpec{"some-command", "remote"}};
  auto p = pipeline::Pipeline::from_source(kSource);
  expect_error_mentions(
      [&] { (void)backend.run(p.image(), p.effective_sim_config()); },
      "recurse");
}

#ifdef SOFIA_WORKER_BIN
// ---------------------------------------------------------------------------
// Differential suite against the real sofia_worker binary:
// remote(cycle) ≡ cycle and remote(functional) ≡ functional
// ---------------------------------------------------------------------------

pipeline::DeviceProfile remote_profile(
    const std::string& far_backend,
    pipeline::DeviceProfile profile = pipeline::DeviceProfile::paper_default()) {
  profile.backend = "remote";
  profile.remote =
      pipeline::DeviceProfile::parse_worker(SOFIA_WORKER_BIN, far_backend);
  return profile;
}

void expect_identical_results(const sim::RunResult& local,
                              const sim::RunResult& viaremote,
                              const std::string& label) {
  ASSERT_EQ(local.status, viaremote.status) << label;
  EXPECT_EQ(local.exit_code, viaremote.exit_code) << label;
  EXPECT_EQ(local.output, viaremote.output) << label;
  EXPECT_EQ(local.fault, viaremote.fault) << label;
  EXPECT_EQ(local.reset.cause, viaremote.reset.cause) << label;
  EXPECT_EQ(local.reset.pc, viaremote.reset.pc) << label;
  EXPECT_EQ(local.reset.cycle, viaremote.reset.cycle) << label;
  // The worker runs the *same* backend, so every number — timing included —
  // must match, not just the architectural subset.
  EXPECT_EQ(local.stats.cycles, viaremote.stats.cycles) << label;
  EXPECT_EQ(local.stats.insts, viaremote.stats.insts) << label;
  EXPECT_EQ(local.stats.nops, viaremote.stats.nops) << label;
  EXPECT_EQ(local.stats.loads, viaremote.stats.loads) << label;
  EXPECT_EQ(local.stats.stores, viaremote.stats.stores) << label;
  EXPECT_EQ(local.stats.branches, viaremote.stats.branches) << label;
  EXPECT_EQ(local.stats.taken, viaremote.stats.taken) << label;
  EXPECT_EQ(local.stats.icache_hits, viaremote.stats.icache_hits) << label;
  EXPECT_EQ(local.stats.icache_misses, viaremote.stats.icache_misses) << label;
  EXPECT_EQ(local.stats.mac_verifications, viaremote.stats.mac_verifications)
      << label;
  EXPECT_EQ(local.stats.ctr_ops, viaremote.stats.ctr_ops) << label;
  EXPECT_EQ(local.stats.cbc_ops, viaremote.stats.cbc_ops) << label;
  EXPECT_EQ(local.stats.store_gate_stalls, viaremote.stats.store_gate_stalls)
      << label;
}

TEST(RemoteDifferential, RemoteEqualsLocalOnTheWorkloadMatrix) {
  // The test_backend workload matrix, shipped through the wire: for every
  // registered workload, remote(cycle) ≡ cycle and remote(functional) ≡
  // functional, bit for bit.
  for (const auto& spec : workloads::all_workloads()) {
    const std::uint32_t size = std::max(4u, spec.default_size / 16);
    for (const char* far : {"cycle", "functional"}) {
      const std::string label = spec.name + " via remote(" + far + ")";
      auto local_profile = pipeline::DeviceProfile::paper_default();
      local_profile.backend = far;
      auto local = pipeline::Pipeline::from_workload(spec, 1, size,
                                                     local_profile);
      auto remote = pipeline::Pipeline::from_workload(spec, 1, size,
                                                      remote_profile(far));
      expect_identical_results(local.run(), remote.run(), label);
    }
  }
}

TEST(RemoteDifferential, CapabilitiesForwardedFromTheFarSide) {
  const sim::RemoteBackend cycle_far{remote_profile("cycle").remote};
  EXPECT_TRUE(cycle_far.capabilities().cycle_accurate);
  EXPECT_TRUE(cycle_far.capabilities().models_microarchitecture);
  const sim::RemoteBackend functional_far{remote_profile("functional").remote};
  EXPECT_FALSE(functional_far.capabilities().cycle_accurate);
  EXPECT_FALSE(functional_far.capabilities().models_microarchitecture);
}

TEST(RemoteDifferential, TamperedImageResetsIdenticallyThroughTheWire) {
  auto builder = pipeline::Pipeline::from_source(kSource);
  auto tampered = builder.image();
  tampered.text.at(3) ^= 1u;
  const auto local = builder.run_image(tampered);
  auto remote_session =
      pipeline::Pipeline::from_image(tampered, remote_profile("cycle"));
  expect_identical_results(local, remote_session.run(), "tampered");
  EXPECT_EQ(remote_session.run().status, sim::RunResult::Status::kReset);
  EXPECT_EQ(remote_session.run().reset.cause, sim::ResetCause::kMacMismatch);
}

TEST(RemoteDifferential, TraceShipsBackThroughTheWire) {
  auto p = pipeline::Pipeline::from_source(kSource, remote_profile("functional"));
  sim::SimConfig config;
  config.collect_trace = true;
  const auto run = p.run_image(p.image(), config);
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(run.trace.empty());
  EXPECT_EQ(run.trace.size(), run.stats.insts);
}

TEST(RemoteDifferential, WorkerRejectsUnknownFarSideBackendByName) {
  // Bypass parse_worker (which would catch this locally) to prove the
  // worker's own validation answers with a named error.
  RemoteSpec spec{SOFIA_WORKER_BIN, "warp"};
  const sim::RemoteBackend backend{spec};
  auto p = pipeline::Pipeline::from_source(kSource);
  expect_error_mentions(
      [&] { (void)backend.run(p.image(), p.effective_sim_config()); },
      "warp");
}

TEST(RemoteDifferential, ExplicitFarBackendSurvivesEnvCommandFallback) {
  // Regression: a spec with no command but a chosen far-side backend must
  // take only the *command* from the environment — the explicit backend
  // choice must not be silently replaced by the env default ("cycle").
  setenv(kWorkerEnv, SOFIA_WORKER_BIN, 1);
  unsetenv(kWorkerBackendEnv);
  const sim::RemoteBackend backend{RemoteSpec{"", "functional"}};
  EXPECT_EQ(backend.spec().command, SOFIA_WORKER_BIN);
  EXPECT_EQ(backend.spec().backend, "functional");
  EXPECT_FALSE(backend.capabilities().cycle_accurate);

  // With nothing explicit, both env variables apply.
  setenv(kWorkerBackendEnv, "functional", 1);
  const sim::RemoteBackend env_backend{RemoteSpec{}};
  EXPECT_EQ(env_backend.spec().backend, "functional");

  // An *explicit* "cycle" is distinguishable from the unset default and is
  // never overridden by $SOFIA_WORKER_BACKEND.
  const sim::RemoteBackend explicit_cycle{RemoteSpec{"", "cycle"}};
  EXPECT_EQ(explicit_cycle.spec().backend, "cycle");
  EXPECT_TRUE(explicit_cycle.capabilities().cycle_accurate);

  // The profile fingerprint reports the resolved endpoint, not the raw
  // spec — env-configured runs must not fingerprint alike when they
  // execute differently.
  auto profile = pipeline::DeviceProfile::paper_default();
  profile.backend = "remote";
  const auto fp = profile.fingerprint();
  EXPECT_NE(fp.find("remote-backend=functional"), std::string::npos) << fp;
  EXPECT_NE(fp.find(SOFIA_WORKER_BIN), std::string::npos) << fp;

  unsetenv(kWorkerEnv);
  unsetenv(kWorkerBackendEnv);
}

TEST(RemoteDifferential, SequentialRunsReuseOneWorker) {
  // The worker process persists across run() calls; three runs through one
  // backend must agree with three fresh local runs.
  auto local = pipeline::Pipeline::from_source(kSource);
  auto remote = pipeline::Pipeline::from_source(kSource, remote_profile("cycle"));
  const auto& l = local.run();
  for (int i = 0; i < 3; ++i) {
    const auto r = remote.run_image(remote.image());
    EXPECT_EQ(r.stats.cycles, l.stats.cycles) << i;
    EXPECT_EQ(r.output, l.output) << i;
  }
}
#endif  // SOFIA_WORKER_BIN

}  // namespace
}  // namespace sofia::remote
