// Static verifier tests: every rule of the lint catalog is driven both ways
// (a clean construction lints clean, a targeted mutation trips exactly that
// rule), the whole workload registry lints clean across schemes, ciphers and
// granularities, the tamper matrix is cross-checked against the simulated
// device's runtime verdicts, and the sofia-lint-v1 JSON output is
// byte-deterministic and round-trips through the reader.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "scheme/scheme.hpp"
#include "sim_test_util.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "verify/verify.hpp"
#include "workloads/workloads.hpp"

namespace sofia::verify {
namespace {

// ---------------------------------------------------------------------------
// Hand-built models: the smallest programs that exercise one rule each
// ---------------------------------------------------------------------------

std::uint32_t enc(isa::Opcode op, unsigned rd = 0, unsigned ra = 0,
                  unsigned rb = 0, std::int32_t imm = 0) {
  return isa::encode(isa::Instruction{op, static_cast<std::uint8_t>(rd),
                                      static_cast<std::uint8_t>(ra),
                                      static_cast<std::uint8_t>(rb), imm});
}

DeviceSpec test_spec() {
  DeviceSpec spec;
  spec.keys = test::test_keys();
  return spec;
}

/// Two execution blocks: block 0 jumps to block 1, block 1 halts.
ProgramModel two_block_model() {
  ProgramModel m;
  m.policy = xform::BlockPolicy::paper_default();
  ModelBlock b0;
  b0.base_word = 0;
  b0.pred1_word = assembler::kResetPrevWord;
  b0.inst_words.assign(5, enc(isa::Opcode::kNop));
  b0.inst_words.push_back(enc(isa::Opcode::kJal, 0, 0, 0, 1));  // word 7 -> 8
  ModelBlock b1;
  b1.base_word = 8;
  b1.pred1_word = 7;  // block 0's exit word
  b1.inst_words.assign(5, enc(isa::Opcode::kNop));
  b1.inst_words.push_back(enc(isa::Opcode::kHalt));
  m.blocks = {b0, b1};
  return m;
}

/// Exec -> {exec, mux}: block 0 branches into the multiplexor's path-1
/// entry and falls through to block 1, whose jump enters via path 2.
ProgramModel mux_model() {
  ProgramModel m;
  m.policy = xform::BlockPolicy::paper_default();
  ModelBlock b0;
  b0.base_word = 0;
  b0.pred1_word = assembler::kResetPrevWord;
  b0.inst_words.assign(5, enc(isa::Opcode::kNop));
  // word 7 -> word 17 (mux word offset 1); fall-through -> word 8.
  b0.inst_words.push_back(enc(isa::Opcode::kBeq, 0, 1, 2, 10));
  ModelBlock b1;
  b1.base_word = 8;
  b1.pred1_word = 7;
  b1.inst_words.assign(5, enc(isa::Opcode::kNop));
  // word 15 -> word 18 (mux word offset 2).
  b1.inst_words.push_back(enc(isa::Opcode::kJal, 0, 0, 0, 3));
  ModelBlock mux;
  mux.is_mux = true;
  mux.base_word = 16;
  mux.pred1_word = 7;   // path 1: the branch
  mux.pred2_word = 15;  // path 2: the jump
  mux.inst_words.assign(4, enc(isa::Opcode::kNop));
  mux.inst_words.push_back(enc(isa::Opcode::kHalt));
  m.blocks = {b0, b1, mux};
  return m;
}

/// Seal every model block with the spec's scheme into a consistent image —
/// the ground truth the mutation tests then corrupt one axis at a time.
assembler::LoadImage seal_model(const ProgramModel& m, const DeviceSpec& spec) {
  assembler::LoadImage img;
  img.text_base = m.text_base;
  img.entry = m.entry;
  img.entry_prev = m.entry_prev_word;
  img.sofia = true;
  img.omega = spec.keys.omega;
  img.per_pair = spec.granularity == crypto::Granularity::kPerPair;
  img.text.assign(m.total_words(), 0);
  const auto sealer =
      scheme::get_scheme(spec.scheme).make_sealer(spec.keys, spec.granularity);
  for (const ModelBlock& blk : m.blocks) {
    const auto words = sealer->seal(
        scheme::BlockInfo{blk.is_mux, blk.base_word, blk.pred1_word,
                          blk.pred2_word},
        blk.inst_words);
    std::copy(words.begin(), words.end(),
              img.text.begin() + (blk.base_word - m.text_base / 4));
  }
  return img;
}

bool has_rule(const Report& r, Rule rule) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::size_t rule_count(const Report& r, Rule rule) {
  return static_cast<std::size_t>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

TEST(RuleCatalog, CoversEveryRuleInEnumOrder) {
  const auto& catalog = rule_catalog();
  ASSERT_EQ(catalog.size(), 20u);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(catalog[i].rule), i);
    EXPECT_EQ(to_string(catalog[i].rule), catalog[i].name);
    EXPECT_FALSE(catalog[i].description.empty());
  }
  EXPECT_EQ(to_string(Rule::kEdgeSealMismatch), "edge-seal-mismatch");
  EXPECT_EQ(to_string(Rule::kStoreToTextProven), "store-to-text-proven");
  EXPECT_EQ(to_string(Rule::kUnresolvedIndirect), "unresolved-indirect");
  EXPECT_EQ(to_string(Severity::kWarning), "warning");
  // Exactly the three advisory (non-enforcement) rules are warnings.
  std::size_t warnings = 0;
  for (const auto& info : catalog)
    if (info.severity == Severity::kWarning) ++warnings;
  EXPECT_EQ(warnings, 3u);
}

// ---------------------------------------------------------------------------
// Clean constructions
// ---------------------------------------------------------------------------

TEST(HandModel, TwoBlockProgramLintsClean) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(report.clean()) << report.render_text();
  EXPECT_TRUE(report.findings.empty()) << report.render_text();
  EXPECT_EQ(report.blocks_checked, 2u);
  EXPECT_EQ(report.entries_checked, 2u);
  EXPECT_EQ(report.edges_checked, 2u);  // reset entry + the jump
}

TEST(HandModel, MuxProgramLintsClean) {
  const auto spec = test_spec();
  const auto m = mux_model();
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(report.clean()) << report.render_text();
  EXPECT_EQ(report.blocks_checked, 3u);
  // block 0 word 0, block 1 word 0, mux words 0 and 1.
  EXPECT_EQ(report.entries_checked, 4u);
  EXPECT_EQ(report.edges_checked, 4u);
}

TEST(HandModel, RenderTextSummarizesCounters) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  const auto text = lint(m, seal_model(m, spec), spec).render_text();
  EXPECT_NE(text.find("2 block(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("0 error(s)"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// One mutation, one rule
// ---------------------------------------------------------------------------

TEST(Rules, ImageMetadataWrongEntry) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  auto img = seal_model(m, spec);
  img.entry += 4;
  const auto report = lint(m, img, spec);
  EXPECT_TRUE(has_rule(report, Rule::kImageMetadata));
  EXPECT_FALSE(report.clean());
}

TEST(Rules, ImageMetadataNotSofia) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  auto img = seal_model(m, spec);
  img.sofia = false;
  EXPECT_TRUE(has_rule(lint(m, img, spec), Rule::kImageMetadata));
}

TEST(Rules, ImageMetadataWrongResetPrev) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  auto img = seal_model(m, spec);
  img.entry_prev = 42;
  EXPECT_TRUE(has_rule(lint(m, img, spec), Rule::kImageMetadata));
}

TEST(Rules, GeometryTruncatedText) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  auto img = seal_model(m, spec);
  img.text.pop_back();
  const auto report = lint(m, img, spec);
  EXPECT_TRUE(has_rule(report, Rule::kGeometry));
  // Seal comparison is meaningless against a truncated image.
  EXPECT_EQ(report.blocks_checked, 0u);
}

TEST(Rules, GeometryWrongInstructionCount) {
  const auto spec = test_spec();
  auto m = two_block_model();
  const auto img = seal_model(m, spec);
  m.blocks[1].inst_words.pop_back();
  EXPECT_TRUE(has_rule(lint(m, img, spec), Rule::kGeometry));
}

TEST(Rules, OmegaMismatch) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  auto img = seal_model(m, spec);
  img.omega ^= 0x1111;
  EXPECT_TRUE(has_rule(lint(m, img, spec), Rule::kOmegaMismatch));
}

TEST(Rules, GranularityMismatch) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  auto img = seal_model(m, spec);
  img.per_pair = !img.per_pair;
  EXPECT_TRUE(has_rule(lint(m, img, spec), Rule::kGranularityMismatch));
}

TEST(Rules, GranularityIgnoredBySchemesWithoutThatAxis) {
  auto spec = test_spec();
  spec.scheme = "sponge";
  ASSERT_FALSE(scheme::get_scheme("sponge").traits().uses_granularity);
  const auto m = two_block_model();
  auto img = seal_model(m, spec);
  img.per_pair = !img.per_pair;
  EXPECT_FALSE(has_rule(lint(m, img, spec), Rule::kGranularityMismatch));
}

TEST(Rules, ProfileMismatchCollapsesPerBlockNoise) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  const auto img = seal_model(m, spec);
  auto wrong = spec;
  Rng rng(99);
  wrong.keys = crypto::KeySet::random(spec.keys.kind, rng);
  wrong.keys.omega = spec.keys.omega;  // isolate the key axis
  const auto report = lint(m, img, wrong);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(rule_count(report, Rule::kProfileMismatch), 1u);
  EXPECT_FALSE(has_rule(report, Rule::kTamperedText));
}

TEST(Rules, TamperedTextFlipsOneBodyBit) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  auto img = seal_model(m, spec);
  img.text[8 + 3] ^= 0x20;  // block 1, instruction word
  const auto report = lint(m, img, spec);
  EXPECT_TRUE(has_rule(report, Rule::kTamperedText));
  EXPECT_FALSE(has_rule(report, Rule::kProfileMismatch));
  const auto it = std::find_if(
      report.findings.begin(), report.findings.end(),
      [](const Finding& f) { return f.rule == Rule::kTamperedText; });
  ASSERT_NE(it, report.findings.end());
  EXPECT_EQ(it->block, 1);
  EXPECT_EQ(it->insn, 8 + 3);
}

TEST(Rules, ForgedHeaderFlipsOnlyHeaderWords) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  auto img = seal_model(m, spec);
  img.text[8] ^= 1;  // block 1, header/MAC word
  const auto report = lint(m, img, spec);
  EXPECT_TRUE(has_rule(report, Rule::kForgedHeader));
  EXPECT_FALSE(has_rule(report, Rule::kTamperedText));
}

TEST(Rules, RelocatedBlockNamesTheDonor) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  auto img = seal_model(m, spec);
  std::copy(img.text.begin(), img.text.begin() + 8, img.text.begin() + 8);
  const auto report = lint(m, img, spec);
  ASSERT_TRUE(has_rule(report, Rule::kRelocatedBlock));
  const auto it = std::find_if(
      report.findings.begin(), report.findings.end(),
      [](const Finding& f) { return f.rule == Rule::kRelocatedBlock; });
  EXPECT_EQ(it->block, 1);
  EXPECT_NE(it->message.find("block 0"), std::string::npos) << it->message;
}

TEST(Rules, EdgeSealMismatchWrongDeclaredPredecessor) {
  const auto spec = test_spec();
  auto m = two_block_model();
  // The toolchain sealed block 1 for the wrong predecessor; the sealing is
  // internally consistent (so no seal finding) but the edge cannot open it.
  m.blocks[1].pred1_word = 0x123;
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(has_rule(report, Rule::kEdgeSealMismatch));
  EXPECT_FALSE(has_rule(report, Rule::kTamperedText));
  EXPECT_FALSE(has_rule(report, Rule::kProfileMismatch));
}

TEST(Rules, AmbiguousPredecessorTwoArrivals) {
  const auto spec = test_spec();
  auto m = mux_model();
  // Redirect block 1's jump from the mux's path-2 entry to path 1, which
  // the branch in block 0 already uses: two distinct prevPC values.
  m.blocks[1].inst_words.back() = enc(isa::Opcode::kJal, 0, 0, 0, 2);
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(has_rule(report, Rule::kAmbiguousPredecessor));
}

TEST(Rules, InvalidEntryMidBlockTarget) {
  const auto spec = test_spec();
  auto m = two_block_model();
  m.blocks[0].inst_words.back() =
      enc(isa::Opcode::kJal, 0, 0, 0, 2);  // word 9: offset 1 of an exec block
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(has_rule(report, Rule::kInvalidEntry));
}

TEST(Rules, InvalidEntryMuxWordZero) {
  const auto spec = test_spec();
  auto m = mux_model();
  // Word 16 is the mux block's word 0 — no transfer may enter there.
  m.blocks[1].inst_words.back() = enc(isa::Opcode::kJal, 0, 0, 0, 1);
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(has_rule(report, Rule::kInvalidEntry));
}

TEST(Rules, InvalidEntryOutsideText) {
  const auto spec = test_spec();
  auto m = two_block_model();
  m.blocks[0].inst_words.back() = enc(isa::Opcode::kJal, 0, 0, 0, 1000);
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(has_rule(report, Rule::kInvalidEntry));
}

TEST(Rules, ControlPlacementOutsideExitSlot) {
  const auto spec = test_spec();
  auto m = two_block_model();
  m.blocks[1].inst_words[0] = enc(isa::Opcode::kJal, 0, 0, 0, -2);
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(has_rule(report, Rule::kControlPlacement));
}

TEST(Rules, StorePlacementBelowStoreMin) {
  const auto spec = test_spec();
  auto m = two_block_model();
  // Slot 0 is block word 2, below the paper policy's store_min_word = 4.
  m.blocks[1].inst_words[0] = enc(isa::Opcode::kSw, 0, 1, 2, 0);
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(has_rule(report, Rule::kStorePlacement));
  // The same store two slots later conforms.
  auto ok = two_block_model();
  ok.blocks[1].inst_words[2] = enc(isa::Opcode::kSw, 0, 1, 2, 0);
  EXPECT_TRUE(lint(ok, seal_model(ok, spec), spec).clean());
}

TEST(Rules, UndecodableInstruction) {
  const auto spec = test_spec();
  auto m = two_block_model();
  ASSERT_FALSE(isa::decode(0xFFFFFFFFu).has_value());
  m.blocks[1].inst_words[1] = 0xFFFFFFFFu;
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(has_rule(report, Rule::kUndecodableInstruction));
}

TEST(Rules, StrayIndirectJump) {
  const auto spec = test_spec();
  auto m = two_block_model();
  m.blocks[1].inst_words.back() = enc(isa::Opcode::kJalr, 1, 1, 0, 0);
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(has_rule(report, Rule::kStrayIndirectJump));
}

TEST(Rules, RetEdgesResolveAgainstRetTargets) {
  const auto spec = test_spec();
  auto m = two_block_model();
  // Turn block 1 into a returning callee whose single call site's link
  // address is block 0's entry — a self-loop shape, but enough to prove the
  // walk follows ret_targets and checks the arriving predecessor.
  m.blocks[1].inst_words.back() =
      enc(isa::Opcode::kJalr, 0, isa::kRegLr, 0, 0);
  m.blocks[1].ret_targets = {0};  // byte address of block 0's entry
  auto report = lint(m, seal_model(m, spec), spec);
  // Block 0's entry is sealed for the reset word, not block 1's exit.
  EXPECT_TRUE(has_rule(report, Rule::kEdgeSealMismatch));
  EXPECT_TRUE(has_rule(report, Rule::kAmbiguousPredecessor));
  EXPECT_FALSE(has_rule(report, Rule::kStrayIndirectJump));
}

TEST(Rules, UnreachableBlockIsAWarning) {
  const auto spec = test_spec();
  auto m = two_block_model();
  ModelBlock orphan;
  orphan.base_word = 16;
  orphan.pred1_word = 7;
  orphan.inst_words.assign(5, enc(isa::Opcode::kNop));
  orphan.inst_words.push_back(enc(isa::Opcode::kHalt));
  m.blocks.push_back(orphan);
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(has_rule(report, Rule::kUnreachableBlock));
  EXPECT_TRUE(report.clean());  // warning, not error
  EXPECT_EQ(report.count(Severity::kWarning), 1u);

  Options opts;
  opts.unreachable_warnings = false;
  EXPECT_TRUE(
      lint(m, seal_model(m, spec), spec, opts).findings.empty());
}

TEST(Rules, StoreProvenInsideTextIsAnError) {
  const auto spec = test_spec();
  auto m = two_block_model();
  // r1 = 4: the dataflow engine proves the store writes inside the sealed
  // text section — an error, not the old heuristic warning.
  m.blocks[1].inst_words[2] = enc(isa::Opcode::kAddi, 1, 0, 0, 4);
  m.blocks[1].inst_words[3] = enc(isa::Opcode::kSw, 2, 1, 0, 0);
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_EQ(rule_count(report, Rule::kStoreToTextProven), 1u);
  EXPECT_FALSE(report.clean());
}

TEST(Rules, StoreProvenOutsideTextIsSilentlySafe) {
  const auto spec = test_spec();
  auto m = two_block_model();
  m.data_base = 0x00100000;
  m.data.assign(16, 0);
  // r1 = 0x40 << 14 = 0x00100000: provably in the data section, so the
  // store produces no finding and counts as proven safe.
  m.blocks[1].inst_words[2] = enc(isa::Opcode::kLui, 1, 0, 0, 0x40);
  m.blocks[1].inst_words[3] = enc(isa::Opcode::kSw, 2, 1, 0, 0);
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_FALSE(has_rule(report, Rule::kStoreToText));
  EXPECT_FALSE(has_rule(report, Rule::kStoreToTextProven));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.stores_checked, 1u);
  EXPECT_EQ(report.stores_proven_safe, 1u);
}

TEST(Rules, UnknownStoreAddressIsOutOfStaticScope) {
  const auto spec = test_spec();
  auto m = two_block_model();
  // r1 is never defined: the store's address is top — no static claim,
  // no finding, and it does not count as proven safe.
  m.blocks[1].inst_words[3] = enc(isa::Opcode::kSw, 2, 1, 0, 0);
  const auto report = lint(m, seal_model(m, spec), spec);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.stores_checked, 1u);
  EXPECT_EQ(report.stores_proven_safe, 0u);
}

// ---------------------------------------------------------------------------
// Real toolchain output: the differential contract
// ---------------------------------------------------------------------------

TEST(Differential, EveryWorkloadLintsCleanAcrossTheMatrix) {
  for (const auto& wl : workloads::all_workloads()) {
    const std::uint32_t size = std::max(4u, wl.default_size / 8);
    for (const auto& scheme_name : scheme::scheme_names()) {
      for (const auto kind :
           {crypto::CipherKind::kSpeck64_128, crypto::CipherKind::kRectangle80}) {
        for (const auto gran :
             {crypto::Granularity::kPerPair, crypto::Granularity::kPerWord}) {
          // RECTANGLE-80 is slow in software; one granularity covers it.
          if (kind == crypto::CipherKind::kRectangle80 &&
              gran == crypto::Granularity::kPerWord)
            continue;
          auto profile = pipeline::DeviceProfile::example(kind);
          profile.scheme = scheme_name;
          profile.granularity = gran;
          auto session =
              pipeline::Pipeline::from_workload(wl, 1, size, profile);
          const auto report = session.lint();
          EXPECT_TRUE(report.clean())
              << wl.name << " scheme=" << scheme_name
              << " cipher=" << crypto::to_string(kind)
              << " gran=" << crypto::to_string(gran) << "\n"
              << report.render_text();
          EXPECT_GT(report.blocks_checked, 0u);
          EXPECT_GT(report.edges_checked, 0u);
        }
      }
    }
  }
}

TEST(Differential, NonDefaultPolicyLintsClean) {
  auto profile = pipeline::DeviceProfile::example(
      crypto::CipherKind::kSpeck64_128);
  profile.policy = xform::BlockPolicy{6, 0};
  auto session = pipeline::Pipeline::from_workload("fib", 1, 8, profile);
  EXPECT_TRUE(session.lint().clean());
}

// The soundness harness: for every workload × 25 generator seeds × both
// ciphers, transform under the gating scheme (indirect jumps stay live),
// run the untampered image on the cycle backend with a full trace, and
// check the dataflow engine's proofs against observed behavior:
//  * every runtime-observed indirect-transfer target lands in a block of
//    the static target set (declared, and proven when the engine bounded
//    it) — an observed target outside the set would be unsound;
//  * a program whose stores the engine proved safe never trips the
//    runtime store gate (the untampered run completes cleanly).
TEST(Differential, RuntimeBehaviorStaysWithinTheStaticProofs) {
  constexpr std::uint64_t kSeeds = 25;
  std::uint64_t observed_jalr = 0;
  std::uint64_t proven_safe_total = 0;
  for (const auto& wl : workloads::all_workloads()) {
    const std::uint32_t size = std::max(4u, wl.default_size / 8);
    for (const auto kind :
         {crypto::CipherKind::kSpeck64_128, crypto::CipherKind::kRectangle80}) {
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const std::string label = std::string(wl.name) + " seed=" +
                                  std::to_string(seed) + " cipher=" +
                                  std::string(crypto::to_string(kind));
        auto profile = pipeline::DeviceProfile::from_seed(kind, seed);
        profile.scheme = pipeline::DeviceProfile::parse_scheme("flta");
        profile.backend = pipeline::DeviceProfile::parse_backend("cycle");
        auto session = pipeline::Pipeline::from_workload(wl, seed, size,
                                                         profile);
        sim::SimConfig config;
        config.collect_trace = true;
        config.max_trace = 8'000'000;
        session.set_sim_config(config);

        const auto report = session.lint();
        ASSERT_TRUE(report.clean()) << label << "\n" << report.render_text();
        proven_safe_total += report.stores_proven_safe;

        const auto& run = session.run();
        ASSERT_TRUE(run.ok()) << label << " status=" << static_cast<int>(run.status);
        ASSERT_LT(run.trace.size(), static_cast<std::size_t>(config.max_trace))
            << label << ": trace truncated; raise max_trace";

        const auto model = model_of(session.hardened());
        const std::uint32_t block_bytes = model.policy.words_per_block * 4;
        const auto block_of = [&](std::uint32_t addr) {
          return (addr - model.text_base) / block_bytes;
        };
        for (std::size_t i = 0; i + 1 < run.trace.size(); ++i) {
          const std::int64_t word_addr = run.trace[i].pc / 4;
          const auto rec = std::find_if(
              report.indirects.begin(), report.indirects.end(),
              [&](const IndirectTargets& r) { return r.insn == word_addr; });
          if (rec == report.indirects.end()) continue;
          ++observed_jalr;
          const std::uint32_t target_block = block_of(run.trace[i + 1].pc);
          const auto lands_in = [&](const std::vector<std::uint32_t>& set) {
            return std::any_of(set.begin(), set.end(), [&](std::uint32_t t) {
              return block_of(t) == target_block;
            });
          };
          ASSERT_TRUE(lands_in(rec->declared))
              << label << ": runtime target block " << target_block
              << " outside the declared set of jalr @" << word_addr;
          if (rec->proven_finite)
            ASSERT_TRUE(lands_in(rec->proven))
                << label << ": runtime target block " << target_block
                << " outside the PROVEN set of jalr @" << word_addr
                << " — the dataflow engine is unsound";
        }
      }
    }
  }
  // The harness must not pass vacuously: the registry contains indirect
  // dispatch (minivm) and provably-safe stores.
  EXPECT_GT(observed_jalr, 0u);
  EXPECT_GT(proven_safe_total, 0u);
}

/// Fixture for the tamper matrix: one source, transformed once; every
/// statically decidable tamper must (a) trip the matching lint rule and
/// (b) agree with the device — the tampered image also fails at runtime.
class TamperMatrix : public ::testing::Test {
 protected:
  static pipeline::Pipeline& session() {
    static pipeline::Pipeline p = [] {
      auto profile = pipeline::DeviceProfile::with_keys(test::test_keys());
      auto s = pipeline::Pipeline::from_workload("fib", 1, 8, profile);
      s.image();  // force the transform
      return s;
    }();
    return p;
  }

  static assembler::LoadImage tampered(std::uint32_t word, std::uint32_t bit) {
    auto img = session().image();
    img.text[word] ^= 1u << bit;
    return img;
  }

  /// The runtime verdict for the same image the linter judged.
  static bool device_detects(const assembler::LoadImage& img) {
    const auto run = session().run_image(img);
    return run.reset.cause != sim::ResetCause::kNone || !run.ok();
  }
};

TEST_F(TamperMatrix, CleanImageAgreesBothWays) {
  EXPECT_TRUE(session().lint().clean());
  EXPECT_FALSE(device_detects(session().image()));
}

TEST_F(TamperMatrix, BodyBitFlip) {
  const auto img = tampered(3, 5);  // block 0 instruction word
  const auto report = session().lint_image(img);
  EXPECT_TRUE(has_rule(report, Rule::kTamperedText)) << report.render_text();
  EXPECT_TRUE(device_detects(img));
}

TEST_F(TamperMatrix, HeaderBitFlip) {
  const auto img = tampered(0, 17);  // block 0 MAC word
  const auto report = session().lint_image(img);
  EXPECT_TRUE(has_rule(report, Rule::kForgedHeader)) << report.render_text();
  EXPECT_TRUE(device_detects(img));
}

TEST_F(TamperMatrix, BlockSplice) {
  auto img = session().image();
  ASSERT_GE(img.text.size(), 24u);
  std::copy(img.text.begin(), img.text.begin() + 8, img.text.begin() + 8);
  const auto report = session().lint_image(img);
  EXPECT_TRUE(has_rule(report, Rule::kRelocatedBlock)) << report.render_text();
  EXPECT_TRUE(device_detects(img));
}

TEST_F(TamperMatrix, CrossVersionReplay) {
  // The same program sealed under a different version nonce: substituting
  // one of its blocks must fail statically and at runtime.
  auto other_profile = pipeline::DeviceProfile::with_keys(test::test_keys());
  other_profile.omega_override = 0x1111;
  auto other =
      pipeline::Pipeline::from_workload("fib", 1, 8, other_profile);
  auto img = session().image();
  const auto& donor = other.image();
  ASSERT_EQ(img.text.size(), donor.text.size());
  std::copy(donor.text.begin() + 8, donor.text.begin() + 16,
            img.text.begin() + 8);
  const auto report = session().lint_image(img);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(device_detects(img));
}

TEST_F(TamperMatrix, WrongKeysIsOneProfileFinding) {
  auto wrong = session().device_spec();
  Rng rng(7);
  wrong.keys = crypto::KeySet::random(wrong.keys.kind, rng);
  wrong.keys.omega = session().image().omega;
  const auto& hard = session().hardened();
  const auto report =
      verify::lint(verify::model_of(hard), session().image(), wrong);
  EXPECT_EQ(rule_count(report, Rule::kProfileMismatch), 1u)
      << report.render_text();
}

// ---------------------------------------------------------------------------
// Image-only mode
// ---------------------------------------------------------------------------

TEST(ImageOnly, CleanSavedImagePasses) {
  auto profile = pipeline::DeviceProfile::with_keys(test::test_keys());
  auto session = pipeline::Pipeline::from_workload("fib", 1, 8, profile);
  const auto report = verify::lint(session.image(), session.device_spec());
  EXPECT_TRUE(report.clean()) << report.render_text();
}

TEST(ImageOnly, MetadataDefectsAreFindings) {
  auto profile = pipeline::DeviceProfile::with_keys(test::test_keys());
  auto session = pipeline::Pipeline::from_workload("fib", 1, 8, profile);
  auto img = session.image();
  img.sofia = false;
  img.entry_prev = 3;
  img.omega ^= 1;
  img.entry = img.text_base + 4 * img.text.size();  // one past the end
  img.text.pop_back();
  const auto report = verify::lint(img, session.device_spec());
  EXPECT_TRUE(has_rule(report, Rule::kImageMetadata));
  EXPECT_TRUE(has_rule(report, Rule::kGeometry));
  EXPECT_TRUE(has_rule(report, Rule::kOmegaMismatch));
  EXPECT_TRUE(has_rule(report, Rule::kInvalidEntry));
}

// ---------------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------------

std::string report_json(const Report& report) {
  json::Writer w(2);
  report.to_json(w);
  return w.str();
}

TEST(Json, ByteIdenticalAcrossRuns) {
  const auto spec = test_spec();
  auto m = two_block_model();
  m.blocks[1].inst_words[0] = enc(isa::Opcode::kSw, 0, 1, 2, 0);
  const auto img = seal_model(m, spec);
  const auto doc1 = report_json(lint(m, img, spec));
  const auto doc2 = report_json(lint(m, img, spec));
  EXPECT_EQ(doc1, doc2);
  EXPECT_NE(doc1.find("\"store-placement\""), std::string::npos) << doc1;
}

TEST(Json, RoundTripsThroughTheReader) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  auto img = seal_model(m, spec);
  img.text[8 + 3] ^= 0x20;
  const auto doc = report_json(lint(m, img, spec));
  const auto value = json::parse(doc);
  json::Writer w(2);
  value.write(w);
  EXPECT_EQ(w.str(), doc);
}

TEST(Json, CountersAndVerdictMatchTheReport) {
  const auto spec = test_spec();
  const auto m = two_block_model();
  const auto doc = report_json(lint(m, seal_model(m, spec), spec));
  EXPECT_NE(doc.find("\"clean\": true"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"blocks_checked\": 2"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"errors\": 0"), std::string::npos) << doc;
}

TEST(Json, FindingsAreSortedDeterministically) {
  const auto spec = test_spec();
  auto m = two_block_model();
  m.blocks[1].inst_words[0] = enc(isa::Opcode::kSw, 0, 1, 2, 0);
  m.blocks[0].inst_words[1] = enc(isa::Opcode::kSw, 0, 1, 2, 0);
  const auto report = lint(m, seal_model(m, spec), spec);
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_LT(report.findings[0].block, report.findings[1].block);
}

}  // namespace
}  // namespace sofia::verify
