// End-to-end equivalence: every program must behave identically on the
// vanilla pipeline and after the full SOFIA transform (assemble ->
// devirtualize/merge-returns -> block packing -> MAC-then-Encrypt ->
// decrypting/verifying fetch). This exercises the complete architecture of
// the paper on benign inputs; the security tests cover tampered ones.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace sofia {
namespace {

using test::expect_equivalent;
using test::run_sofia;
using xform::BlockPolicy;
using xform::Options;

TEST(E2E, MinimalHalt) { expect_equivalent("main:\n halt\n"); }

TEST(E2E, StraightLineArithmetic) {
  expect_equivalent(R"(
main:
  li r1, 1000
  li r2, 2016
  add r3, r1, r2
  li r10, 0xFFFF0008
  sw r3, 0(r10)
  halt
)");
}

TEST(E2E, LongStraightLineSpansBlocks) {
  std::string src = "main:\n";
  for (int i = 0; i < 40; ++i)
    src += "  addi r1, r1, " + std::to_string(i % 7) + "\n";
  src += "  li r10, 0xFFFF0008\n  sw r1, 0(r10)\n  halt\n";
  expect_equivalent(src);
}

TEST(E2E, LoopWithBackwardBranch) {
  expect_equivalent(R"(
main:
  li r1, 0
  li r2, 25
loop:
  add r1, r1, r2
  addi r2, r2, -1
  bnez r2, loop
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
)");
}

TEST(E2E, IfElseDiamond) {
  expect_equivalent(R"(
main:
  li r1, 7
  li r2, 3
  blt r1, r2, less
  sub r3, r1, r2
  j join
less:
  sub r3, r2, r1
join:
  li r10, 0xFFFF0008
  sw r3, 0(r10)
  halt
)");
}

TEST(E2E, BranchFallIntoJoin) {
  // The not-taken side of the first branch falls directly into a join
  // leader -> exercises the thunk-block path.
  expect_equivalent(R"(
main:
  li r1, 1
  beqz r1, elsewhere
  beqz r0, join
join:
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
elsewhere:
  j join
)");
}

TEST(E2E, SingleCallReturn) {
  expect_equivalent(R"(
main:
  li r1, 21
  call twice
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
twice:
  add r1, r1, r1
  ret
)");
}

TEST(E2E, TwoCallersShareCallee) {
  expect_equivalent(R"(
main:
  li r1, 1
  call inc
  call inc
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
inc:
  addi r1, r1, 1
  ret
)");
}

TEST(E2E, ManyCallersBuildTree) {
  expect_equivalent(R"(
main:
  li r1, 0
  call inc
  call inc
  call inc
  call inc
  call inc
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
inc:
  addi r1, r1, 1
  ret
)");
}

TEST(E2E, CallInsideLoop) {
  expect_equivalent(R"(
main:
  li r1, 0
  li r2, 6
loop:
  call add5
  addi r2, r2, -1
  bnez r2, loop
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
add5:
  addi r1, r1, 5
  ret
)");
}

TEST(E2E, NestedCalls) {
  expect_equivalent(R"(
main:
  li r1, 3
  call outer
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
outer:
  addi sp, sp, -4
  sw lr, 0(sp)
  call inner
  call inner
  lw lr, 0(sp)
  addi sp, sp, 4
  ret
inner:
  add r1, r1, r1
  ret
)");
}

TEST(E2E, RecursiveFibonacci) {
  expect_equivalent(R"(
main:
  li r1, 10
  call fib
  li r10, 0xFFFF0008
  sw r2, 0(r10)
  halt
fib:                    ; r2 = fib(r1)
  li r3, 2
  blt r1, r3, base
  addi sp, sp, -12
  sw lr, 0(sp)
  sw r1, 4(sp)
  addi r1, r1, -1
  call fib
  sw r2, 8(sp)
  lw r1, 4(sp)
  addi r1, r1, -2
  call fib
  lw r3, 8(sp)
  add r2, r2, r3
  lw lr, 0(sp)
  addi sp, sp, 12
  ret
base:
  mv r2, r1
  ret
)");
}

TEST(E2E, MultiRetFunctionMergesEpilogue) {
  expect_equivalent(R"(
main:
  li r1, 4
  call classify
  li r10, 0xFFFF0008
  sw r2, 0(r10)
  li r1, -4
  call classify
  sw r2, 0(r10)
  halt
classify:
  bltz r1, neg
  li r2, 1
  ret
neg:
  li r2, -1
  ret
)");
}

TEST(E2E, DevirtualizedIndirectCall) {
  expect_equivalent(R"(
main:
  la r4, add10
  li r1, 5
  .targets add10, add20
  jalr lr, r4
  la r4, add20
  .targets add10, add20
  jalr lr, r4
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
add10:
  addi r1, r1, 10
  ret
add20:
  addi r1, r1, 20
  ret
)");
}

TEST(E2E, DevirtualizedIndirectJump) {
  expect_equivalent(R"(
main:
  li r1, 1
  la r4, case_b
  .targets case_a, case_b
  jr r4
case_a:
  li r2, 100
  j out
case_b:
  li r2, 200
  j out
out:
  li r10, 0xFFFF0008
  sw r2, 0(r10)
  halt
)");
}

TEST(E2E, FunctionPointerFromDataTable) {
  expect_equivalent(R"(
main:
  la r4, table
  lw r5, 4(r4)      ; second entry: g
  li r1, 3
  .targets f, g
  jalr lr, r5
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
f:
  addi r1, r1, 1
  ret
g:
  mul r1, r1, r1
  ret
.data
table: .word f, g
)");
}

TEST(E2E, StoreHeavyProgram) {
  expect_equivalent(R"(
main:
  la r1, buf
  li r2, 8
  li r3, 0
fill:
  sw r3, 0(r1)
  addi r1, r1, 4
  addi r3, r3, 3
  addi r2, r2, -1
  bnez r2, fill
  la r1, buf
  lw r4, 28(r1)
  li r10, 0xFFFF0008
  sw r4, 0(r10)
  halt
.data
buf: .space 32
)");
}

TEST(E2E, MemoryStateMatchesAfterRun) {
  // Outputs every buffer byte so memory effects are observable.
  expect_equivalent(R"(
main:
  la r1, buf
  li r2, 0x11
  sb r2, 0(r1)
  sh r2, 2(r1)
  li r3, 4
dump:
  lbu r4, 0(r1)
  li r10, 0xFFFF0008
  sw r4, 0(r10)
  addi r1, r1, 1
  addi r3, r3, -1
  bnez r3, dump
  halt
.data
buf: .space 8
)");
}

TEST(E2E, EntryFunctionCalledByOthers) {
  // main is both the reset target and a call target: the entry leader is a
  // join between the reset edge and a call edge.
  expect_equivalent(R"(
.entry start
start:
  li r5, 1
  beqz r5, boot        ; on re-entry r5 != 0
  li r10, 0xFFFF0008
  sw r5, 0(r10)
  halt
boot:
  j start
)");
}

TEST(E2E, SwitchViaBranchChain) {
  expect_equivalent(R"(
main:
  li r1, 2
  beqz r1, c0
  addi r2, r1, -1
  beqz r2, c1
  addi r2, r1, -2
  beqz r2, c2
  li r3, -1
  j out
c0:
  li r3, 10
  j out
c1:
  li r3, 11
  j out
c2:
  li r3, 12
  j out
out:
  li r10, 0xFFFF0008
  sw r3, 0(r10)
  halt
)");
}

// ---------------------------------------------------------------------------
// Policy / granularity sweeps (parameterized).
// ---------------------------------------------------------------------------

struct Variant {
  const char* name;
  BlockPolicy policy;
  crypto::Granularity granularity;
};

class E2EVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(E2EVariants, MixedWorkloadEquivalent) {
  Options opts;
  opts.policy = GetParam().policy;
  opts.granularity = GetParam().granularity;
  test::expect_equivalent(R"(
main:
  li r1, 0
  li r2, 5
loop:
  call work
  addi r2, r2, -1
  bnez r2, loop
  la r3, buf
  sw r1, 0(r3)
  lw r4, 0(r3)
  li r10, 0xFFFF0008
  sw r4, 0(r10)
  halt
work:
  addi r1, r1, 7
  beqz r1, never
  addi r1, r1, 1
never:
  ret
.data
buf: .word 0
)",
                          opts);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndGranularities, E2EVariants,
    ::testing::Values(
        Variant{"paper_perword", BlockPolicy::paper_default(),
                crypto::Granularity::kPerWord},
        Variant{"paper_perpair", BlockPolicy::paper_default(),
                crypto::Granularity::kPerPair},
        Variant{"small_perword", BlockPolicy::small_unrestricted(),
                crypto::Granularity::kPerWord},
        Variant{"small_perpair", BlockPolicy::small_unrestricted(),
                crypto::Granularity::kPerPair},
        Variant{"wide_perpair", BlockPolicy{12, 4},
                crypto::Granularity::kPerPair},
        Variant{"wide16_perword", BlockPolicy{16, 4},
                crypto::Granularity::kPerWord}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// SOFIA-specific sanity.
// ---------------------------------------------------------------------------

TEST(E2E, SofiaStatsShowMacMachinery) {
  const auto r = run_sofia(R"(
main:
  li r1, 0
  li r2, 10
loop:
  add r1, r1, r2
  addi r2, r2, -1
  bnez r2, loop
  halt
)");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.stats.blocks_fetched, 10u);
  EXPECT_EQ(r.stats.mac_verifications, r.stats.blocks_fetched);
  EXPECT_GT(r.stats.ctr_ops, 0u);
  EXPECT_GT(r.stats.cbc_ops, 0u);
  EXPECT_EQ(r.stats.mac_words, 2 * r.stats.blocks_fetched);
}

TEST(E2E, SofiaSlowerThanVanillaButSameResult) {
  const std::string src = R"(
main:
  li r1, 0
  li r2, 50
loop:
  add r1, r1, r2
  addi r2, r2, -1
  bnez r2, loop
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
)";
  const auto v = test::run_vanilla(src);
  const auto s = run_sofia(src);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(v.output, s.output);
  EXPECT_GT(s.stats.cycles, v.stats.cycles);
}

TEST(E2E, WrongKeysReset) {
  const auto keys = test::test_keys();
  const auto result = test::transform_source(R"(
main:
  li r1, 1
  halt
)",
                                             keys);
  auto wrong = keys;
  wrong.k1[0] ^= 1;
  const auto r = sim::run_image(result.image, test::sofia_config(wrong));
  EXPECT_EQ(r.status, sim::RunResult::Status::kReset);
}

TEST(E2E, WrongOmegaReset) {
  // Replaying a binary built for a different program version (different
  // nonce) must not run: the device's counter uses the header omega... the
  // attack modeled here patches the header to an old version's omega.
  const auto keys = test::test_keys();
  auto result = test::transform_source("main:\n li r1, 1\n halt\n", keys);
  result.image.omega ^= 0x1234;  // header tamper
  const auto r = sim::run_image(result.image, test::sofia_config(keys));
  EXPECT_EQ(r.status, sim::RunResult::Status::kReset);
  EXPECT_EQ(r.reset.cause, sim::ResetCause::kMacMismatch);
}

}  // namespace
}  // namespace sofia
