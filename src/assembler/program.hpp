// The assembler's symbolic output. Text-label references stay symbolic
// (relocation records) because the SOFIA transformer re-lays out the code:
// the same Program can be linked sequentially (vanilla baseline) or packed
// into SOFIA execution/multiplexor blocks, with relocations resolved against
// whichever layout was chosen.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/isa.hpp"

namespace sofia::assembler {

/// How an instruction's immediate refers to a label.
enum class RelocKind : std::uint8_t {
  kNone,
  kBranch,  ///< imm14 = signed word offset to a text label (cond branches)
  kCall,    ///< imm22 = signed word offset to a text label (jal)
  kHi18,    ///< lui imm18 = address >> 14 (la expansion, first half)
  kLo14,    ///< ori imm14 = address & 0x3fff (la expansion, second half)
};

/// One assembled instruction plus provenance and relocation info.
struct SourceInst {
  isa::Instruction inst;
  RelocKind reloc = RelocKind::kNone;
  std::string target;  ///< label name when reloc != kNone
  /// Static target set for an indirect jump (`.targets` annotation); the
  /// SOFIA transformer devirtualizes against this set (DESIGN.md §3.5).
  std::vector<std::string> indirect_targets;
  int line = 0;  ///< 1-based source line, for diagnostics
};

/// A 32-bit absolute address slot in the data section (.word label).
struct DataReloc {
  std::uint32_t offset = 0;  ///< byte offset within the data section
  std::string symbol;
};

struct Program {
  std::vector<SourceInst> text;
  std::unordered_map<std::string, std::uint32_t> text_labels;  ///< name -> inst index
  std::vector<std::uint8_t> data;
  std::unordered_map<std::string, std::uint32_t> data_labels;  ///< name -> byte offset
  std::vector<DataReloc> data_relocs;
  std::string entry = "main";

  bool has_text_label(const std::string& name) const {
    return text_labels.count(name) != 0;
  }
};

/// Assemble SR32 source. Throws sofia::AsmError with line info on failure.
Program assemble(std::string_view source);

}  // namespace sofia::assembler
