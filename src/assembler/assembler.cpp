// Single-pass assembler for SR32 (labels may be used before definition;
// text-label references stay symbolic, so no second pass is needed).
//
// Syntax:
//   label:            ; comment (also '#')
//   .text / .data     section switch
//   .entry name       program entry label (default "main")
//   .targets f, g     static CFG targets for the *next* jalr instruction
//   .word v, ...      32-bit values or labels (labels create data relocs)
//   .half / .byte     16-/8-bit values
//   .space n          n zero bytes
//   .ascii "s" / .asciiz "s"
//   .align n          pad the data section to an n-byte boundary
//
// Pseudo-instructions: li, la, mv, neg, j, jr, call, ret, beqz, bnez, bgez,
// bltz, bgtz, blez, ble, bgt, bleu, bgtu, seqz, snez.
#include "assembler/program.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string_view>

#include "support/bits.hpp"
#include "support/error.hpp"

namespace sofia::assembler {
namespace {

using isa::Instruction;
using isa::Opcode;

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString } kind;
  std::string text;
  std::int64_t value = 0;  // for kNumber
};

class LineLexer {
 public:
  LineLexer(std::string_view line, int line_no) : line_no_(line_no) {
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (c == ';' || c == '#') break;  // comment
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == ',' || c == '(' || c == ')' || c == ':') {
        tokens_.push_back({Token::Kind::kPunct, std::string(1, c), 0});
        ++i;
        continue;
      }
      if (c == '"') {
        std::string s;
        ++i;
        while (i < line.size() && line[i] != '"') {
          char ch = line[i];
          if (ch == '\\' && i + 1 < line.size()) {
            ++i;
            switch (line[i]) {
              case 'n': ch = '\n'; break;
              case 't': ch = '\t'; break;
              case '0': ch = '\0'; break;
              case '\\': ch = '\\'; break;
              case '"': ch = '"'; break;
              default: throw AsmError(line_no_, "bad string escape");
            }
          }
          s.push_back(ch);
          ++i;
        }
        if (i >= line.size()) throw AsmError(line_no_, "unterminated string");
        ++i;
        tokens_.push_back({Token::Kind::kString, s, 0});
        continue;
      }
      if (c == '\'') {
        if (i + 2 >= line.size()) throw AsmError(line_no_, "bad char literal");
        char ch = line[i + 1];
        std::size_t adv = 3;
        if (ch == '\\') {
          switch (line[i + 2]) {
            case 'n': ch = '\n'; break;
            case 't': ch = '\t'; break;
            case '0': ch = '\0'; break;
            case '\\': ch = '\\'; break;
            case '\'': ch = '\''; break;
            default: throw AsmError(line_no_, "bad char escape");
          }
          adv = 4;
        }
        if (i + adv - 1 >= line.size() || line[i + adv - 1] != '\'')
          throw AsmError(line_no_, "unterminated char literal");
        tokens_.push_back({Token::Kind::kNumber, std::string(1, ch), ch});
        i += adv;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
        std::size_t j = i + 1;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) || line[j] == 'x' ||
                line[j] == 'X'))
          ++j;
        const std::string text(line.substr(i, j - i));
        char* end = nullptr;
        const long long v = std::strtoll(text.c_str(), &end, 0);
        if (end == nullptr || *end != '\0')
          throw AsmError(line_no_, "bad number '" + text + "'");
        tokens_.push_back({Token::Kind::kNumber, text, v});
        i = j;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
        std::size_t j = i + 1;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) || line[j] == '_' ||
                line[j] == '.'))
          ++j;
        tokens_.push_back({Token::Kind::kIdent, std::string(line.substr(i, j - i)), 0});
        i = j;
        continue;
      }
      throw AsmError(line_no_, std::string("unexpected character '") + c + "'");
    }
  }

  bool done() const { return pos_ >= tokens_.size(); }
  const Token& peek() const {
    if (done()) throw AsmError(line_no_, "unexpected end of line");
    return tokens_[pos_];
  }
  Token next() {
    Token t = peek();
    ++pos_;
    return t;
  }
  bool accept_punct(char c) {
    if (!done() && tokens_[pos_].kind == Token::Kind::kPunct && tokens_[pos_].text[0] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect_punct(char c) {
    if (!accept_punct(c))
      throw AsmError(line_no_, std::string("expected '") + c + "'");
  }
  int line_no() const { return line_no_; }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int line_no_;
};

std::optional<unsigned> parse_reg_name(std::string_view s) {
  if (s == "zero") return 0u;
  if (s == "sp") return isa::kRegSp;
  if (s == "lr") return isa::kRegLr;
  if (s.size() >= 2 && s[0] == 'r') {
    unsigned v = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(s[i]))) return std::nullopt;
      v = v * 10 + static_cast<unsigned>(s[i] - '0');
    }
    if (v < isa::kNumRegs) return v;
  }
  return std::nullopt;
}

class Assembler {
 public:
  Program run(std::string_view source) {
    int line_no = 0;
    std::size_t start = 0;
    while (start <= source.size()) {
      const std::size_t nl = source.find('\n', start);
      const std::size_t end = (nl == std::string_view::npos) ? source.size() : nl;
      ++line_no;
      process_line(source.substr(start, end - start), line_no);
      if (nl == std::string_view::npos) break;
      start = nl + 1;
    }
    finish();
    return std::move(prog_);
  }

 private:
  enum class Section { kText, kData };

  void process_line(std::string_view line, int line_no) {
    LineLexer lex(line, line_no);
    // Leading labels.
    while (!lex.done() && lex.peek().kind == Token::Kind::kIdent) {
      // Lookahead for ':' to distinguish label from mnemonic.
      LineLexer probe = lex;
      const Token ident = probe.next();
      if (!probe.accept_punct(':')) break;
      define_label(ident.text, line_no);
      lex = probe;
    }
    if (lex.done()) return;
    const Token head = lex.next();
    if (head.kind != Token::Kind::kIdent)
      throw AsmError(line_no, "expected mnemonic or directive");
    if (head.text[0] == '.') {
      directive(head.text, lex);
    } else {
      if (section_ != Section::kText)
        throw AsmError(line_no, "instruction outside .text");
      instruction(head.text, lex);
    }
    if (!lex.done()) throw AsmError(line_no, "trailing tokens on line");
  }

  void define_label(const std::string& name, int line_no) {
    auto& table = (section_ == Section::kText) ? prog_.text_labels : prog_.data_labels;
    const std::uint32_t value = (section_ == Section::kText)
                                    ? static_cast<std::uint32_t>(prog_.text.size())
                                    : static_cast<std::uint32_t>(prog_.data.size());
    if (!table.emplace(name, value).second ||
        (section_ == Section::kText ? prog_.data_labels.count(name)
                                    : prog_.text_labels.count(name)) != 0)
      throw AsmError(line_no, "duplicate label '" + name + "'");
  }

  // ---- directives --------------------------------------------------------

  void directive(const std::string& name, LineLexer& lex) {
    const int ln = lex.line_no();
    if (name == ".text") {
      section_ = Section::kText;
    } else if (name == ".data") {
      section_ = Section::kData;
    } else if (name == ".global" || name == ".globl") {
      lex.next();  // symbol name; accepted for compatibility, unused
    } else if (name == ".entry") {
      prog_.entry = expect_ident(lex);
    } else if (name == ".targets") {
      if (!pending_targets_.empty())
        throw AsmError(ln, ".targets not consumed by a jalr");
      pending_targets_.push_back(expect_ident(lex));
      while (lex.accept_punct(',')) pending_targets_.push_back(expect_ident(lex));
      targets_line_ = ln;
    } else if (name == ".word") {
      need_data(ln);
      emit_value_list(lex, 4);
    } else if (name == ".half") {
      need_data(ln);
      emit_value_list(lex, 2);
    } else if (name == ".byte") {
      need_data(ln);
      emit_value_list(lex, 1);
    } else if (name == ".space") {
      need_data(ln);
      const std::int64_t n = expect_number(lex);
      if (n < 0 || n > (1 << 24)) throw AsmError(ln, ".space size out of range");
      prog_.data.insert(prog_.data.end(), static_cast<std::size_t>(n), 0);
    } else if (name == ".ascii" || name == ".asciiz") {
      need_data(ln);
      const Token t = lex.next();
      if (t.kind != Token::Kind::kString) throw AsmError(ln, "expected string");
      for (const char c : t.text) prog_.data.push_back(static_cast<std::uint8_t>(c));
      if (name == ".asciiz") prog_.data.push_back(0);
    } else if (name == ".align") {
      need_data(ln);
      const std::int64_t n = expect_number(lex);
      if (n <= 0 || (n & (n - 1)) != 0) throw AsmError(ln, ".align must be a power of two");
      while (prog_.data.size() % static_cast<std::size_t>(n) != 0) prog_.data.push_back(0);
    } else {
      throw AsmError(ln, "unknown directive '" + name + "'");
    }
  }

  void need_data(int ln) const {
    if (section_ != Section::kData)
      throw AsmError(ln, "data directive outside .data");
  }

  void emit_value_list(LineLexer& lex, unsigned size) {
    const int ln = lex.line_no();
    do {
      const Token& t = lex.peek();
      if (t.kind == Token::Kind::kIdent) {
        if (size != 4) throw AsmError(ln, "label value requires .word");
        prog_.data_relocs.push_back(
            {static_cast<std::uint32_t>(prog_.data.size()), lex.next().text});
        for (int i = 0; i < 4; ++i) prog_.data.push_back(0);
      } else {
        const std::int64_t v = expect_number(lex);
        for (unsigned i = 0; i < size; ++i)
          prog_.data.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
      }
    } while (lex.accept_punct(','));
  }

  // ---- instructions -------------------------------------------------------

  void instruction(const std::string& mnem, LineLexer& lex) {
    const int ln = lex.line_no();
    if (!pending_targets_.empty() && mnem != "jalr" && mnem != "jr")
      throw AsmError(targets_line_, ".targets must be followed by jalr/jr");

    // R-type
    if (auto op = r_type(mnem)) {
      const unsigned rd = expect_reg(lex);
      lex.expect_punct(',');
      const unsigned ra = expect_reg(lex);
      lex.expect_punct(',');
      const unsigned rb = expect_reg(lex);
      emit(*op, rd, ra, rb, 0, ln);
      return;
    }
    // I-type ALU
    if (auto op = i_type(mnem)) {
      const unsigned rd = expect_reg(lex);
      lex.expect_punct(',');
      const unsigned ra = expect_reg(lex);
      lex.expect_punct(',');
      const std::int64_t imm = expect_number(lex);
      emit(*op, rd, ra, 0, imm, ln);
      return;
    }
    // Loads / stores: op r, imm(reg)
    if (auto op = mem_type(mnem)) {
      const unsigned r = expect_reg(lex);
      lex.expect_punct(',');
      std::int64_t imm = 0;
      if (lex.peek().kind == Token::Kind::kNumber) imm = lex.next().value;
      lex.expect_punct('(');
      const unsigned base = expect_reg(lex);
      lex.expect_punct(')');
      emit(*op, r, base, 0, imm, ln);
      return;
    }
    // Conditional branches (including pseudo condition swaps).
    if (auto br = branch_type(mnem)) {
      unsigned ra = expect_reg(lex);
      lex.expect_punct(',');
      unsigned rb = expect_reg(lex);
      lex.expect_punct(',');
      if (br->swap) std::swap(ra, rb);
      emit_branch(br->op, ra, rb, lex, ln);
      return;
    }
    dispatch_special(mnem, lex, ln);
  }

  void dispatch_special(const std::string& mnem, LineLexer& lex, int ln) {
    if (mnem == "nop") {
      emit(Opcode::kNop, 0, 0, 0, 0, ln);
    } else if (mnem == "halt") {
      emit(Opcode::kHalt, 0, 0, 0, 0, ln);
    } else if (mnem == "lui") {
      const unsigned rd = expect_reg(lex);
      lex.expect_punct(',');
      emit(Opcode::kLui, rd, 0, 0, expect_number(lex), ln);
    } else if (mnem == "jal") {
      const unsigned rd = expect_reg(lex);
      lex.expect_punct(',');
      emit_jal(rd, lex, ln);
    } else if (mnem == "jalr") {
      const unsigned rd = expect_reg(lex);
      lex.expect_punct(',');
      const unsigned ra = expect_reg(lex);
      std::int64_t imm = 0;
      if (lex.accept_punct(',')) imm = expect_number(lex);
      emit_jalr(rd, ra, imm, ln);
    } else if (mnem == "j") {
      emit_jal(isa::kRegZero, lex, ln);
    } else if (mnem == "call") {
      emit_jal(isa::kRegLr, lex, ln);
    } else if (mnem == "ret") {
      emit_jalr(isa::kRegZero, isa::kRegLr, 0, ln);
    } else if (mnem == "jr") {
      const unsigned ra = expect_reg(lex);
      emit_jalr(isa::kRegZero, ra, 0, ln);
    } else if (mnem == "li") {
      const unsigned rd = expect_reg(lex);
      lex.expect_punct(',');
      const std::int64_t v64 = expect_number(lex);
      emit_li(rd, static_cast<std::uint32_t>(v64), ln);
    } else if (mnem == "la") {
      const unsigned rd = expect_reg(lex);
      lex.expect_punct(',');
      const std::string label = expect_ident(lex);
      emit_la(rd, label, ln);
    } else if (mnem == "mv") {
      const unsigned rd = expect_reg(lex);
      lex.expect_punct(',');
      emit(Opcode::kAddi, rd, expect_reg(lex), 0, 0, ln);
    } else if (mnem == "neg") {
      const unsigned rd = expect_reg(lex);
      lex.expect_punct(',');
      emit(Opcode::kSub, rd, isa::kRegZero, expect_reg(lex), 0, ln);
    } else if (mnem == "seqz") {
      const unsigned rd = expect_reg(lex);
      lex.expect_punct(',');
      emit(Opcode::kSltiu, rd, expect_reg(lex), 0, 1, ln);
    } else if (mnem == "snez") {
      const unsigned rd = expect_reg(lex);
      lex.expect_punct(',');
      emit(Opcode::kSltu, rd, isa::kRegZero, expect_reg(lex), 0, ln);
    } else if (mnem == "beqz" || mnem == "bnez" || mnem == "bgez" || mnem == "bltz" ||
               mnem == "bgtz" || mnem == "blez") {
      const unsigned ra = expect_reg(lex);
      lex.expect_punct(',');
      Opcode op;
      unsigned a = ra;
      unsigned b = isa::kRegZero;
      if (mnem == "beqz") op = Opcode::kBeq;
      else if (mnem == "bnez") op = Opcode::kBne;
      else if (mnem == "bgez") op = Opcode::kBge;
      else if (mnem == "bltz") op = Opcode::kBlt;
      else if (mnem == "bgtz") { op = Opcode::kBlt; a = isa::kRegZero; b = ra; }
      else { op = Opcode::kBge; a = isa::kRegZero; b = ra; }  // blez
      emit_branch(op, a, b, lex, ln);
    } else {
      throw AsmError(ln, "unknown mnemonic '" + mnem + "'");
    }
  }

  static std::optional<Opcode> r_type(const std::string& m) {
    if (m == "add") return Opcode::kAdd;
    if (m == "sub") return Opcode::kSub;
    if (m == "and") return Opcode::kAnd;
    if (m == "or") return Opcode::kOr;
    if (m == "xor") return Opcode::kXor;
    if (m == "sll") return Opcode::kSll;
    if (m == "srl") return Opcode::kSrl;
    if (m == "sra") return Opcode::kSra;
    if (m == "slt") return Opcode::kSlt;
    if (m == "sltu") return Opcode::kSltu;
    if (m == "mul") return Opcode::kMul;
    return std::nullopt;
  }

  static std::optional<Opcode> i_type(const std::string& m) {
    if (m == "addi") return Opcode::kAddi;
    if (m == "andi") return Opcode::kAndi;
    if (m == "ori") return Opcode::kOri;
    if (m == "xori") return Opcode::kXori;
    if (m == "slli") return Opcode::kSlli;
    if (m == "srli") return Opcode::kSrli;
    if (m == "srai") return Opcode::kSrai;
    if (m == "slti") return Opcode::kSlti;
    if (m == "sltiu") return Opcode::kSltiu;
    return std::nullopt;
  }

  static std::optional<Opcode> mem_type(const std::string& m) {
    if (m == "lw") return Opcode::kLw;
    if (m == "lh") return Opcode::kLh;
    if (m == "lhu") return Opcode::kLhu;
    if (m == "lb") return Opcode::kLb;
    if (m == "lbu") return Opcode::kLbu;
    if (m == "sw") return Opcode::kSw;
    if (m == "sh") return Opcode::kSh;
    if (m == "sb") return Opcode::kSb;
    return std::nullopt;
  }

  struct BranchSpec {
    Opcode op;
    bool swap;
  };
  static std::optional<BranchSpec> branch_type(const std::string& m) {
    if (m == "beq") return BranchSpec{Opcode::kBeq, false};
    if (m == "bne") return BranchSpec{Opcode::kBne, false};
    if (m == "blt") return BranchSpec{Opcode::kBlt, false};
    if (m == "bge") return BranchSpec{Opcode::kBge, false};
    if (m == "bltu") return BranchSpec{Opcode::kBltu, false};
    if (m == "bgeu") return BranchSpec{Opcode::kBgeu, false};
    if (m == "ble") return BranchSpec{Opcode::kBge, true};
    if (m == "bgt") return BranchSpec{Opcode::kBlt, true};
    if (m == "bleu") return BranchSpec{Opcode::kBgeu, true};
    if (m == "bgtu") return BranchSpec{Opcode::kBltu, true};
    return std::nullopt;
  }

  // ---- emission helpers ---------------------------------------------------

  void emit(Opcode op, unsigned rd, unsigned ra, unsigned rb, std::int64_t imm, int ln) {
    SourceInst si;
    si.inst.op = op;
    si.inst.rd = static_cast<std::uint8_t>(rd);
    si.inst.ra = static_cast<std::uint8_t>(ra);
    si.inst.rb = static_cast<std::uint8_t>(rb);
    si.inst.imm = static_cast<std::int32_t>(imm);
    si.line = ln;
    validate_range(si, ln);
    prog_.text.push_back(std::move(si));
  }

  void validate_range(const SourceInst& si, int ln) const {
    try {
      if (si.reloc == RelocKind::kNone) (void)isa::encode(si.inst);
    } catch (const Error& e) {
      throw AsmError(ln, e.what());
    }
  }

  void emit_branch(Opcode op, unsigned ra, unsigned rb, LineLexer& lex, int ln) {
    SourceInst si;
    si.inst.op = op;
    si.inst.ra = static_cast<std::uint8_t>(ra);
    si.inst.rb = static_cast<std::uint8_t>(rb);
    si.line = ln;
    if (lex.peek().kind == Token::Kind::kIdent) {
      si.reloc = RelocKind::kBranch;
      si.target = lex.next().text;
    } else {
      si.inst.imm = static_cast<std::int32_t>(expect_number(lex));
    }
    prog_.text.push_back(std::move(si));
  }

  void emit_jal(unsigned rd, LineLexer& lex, int ln) {
    SourceInst si;
    si.inst.op = Opcode::kJal;
    si.inst.rd = static_cast<std::uint8_t>(rd);
    si.line = ln;
    if (lex.peek().kind == Token::Kind::kIdent) {
      si.reloc = RelocKind::kCall;
      si.target = lex.next().text;
    } else {
      si.inst.imm = static_cast<std::int32_t>(expect_number(lex));
    }
    prog_.text.push_back(std::move(si));
  }

  void emit_jalr(unsigned rd, unsigned ra, std::int64_t imm, int ln) {
    SourceInst si;
    si.inst.op = Opcode::kJalr;
    si.inst.rd = static_cast<std::uint8_t>(rd);
    si.inst.ra = static_cast<std::uint8_t>(ra);
    si.inst.imm = static_cast<std::int32_t>(imm);
    si.line = ln;
    si.indirect_targets = std::move(pending_targets_);
    pending_targets_.clear();
    prog_.text.push_back(std::move(si));
  }

  void emit_li(unsigned rd, std::uint32_t value, int ln) {
    const auto sv = static_cast<std::int32_t>(value);
    if (fits_signed(sv, 14)) {
      emit(Opcode::kAddi, rd, isa::kRegZero, 0, sv, ln);
      return;
    }
    const std::uint32_t hi = value >> 14;
    const std::uint32_t lo = value & 0x3FFFu;
    emit(Opcode::kLui, rd, 0, 0, static_cast<std::int64_t>(hi), ln);
    if (lo != 0) emit(Opcode::kOri, rd, rd, 0, static_cast<std::int64_t>(lo), ln);
  }

  void emit_la(unsigned rd, const std::string& label, int ln) {
    // Always the fixed two-instruction form so relocations are uniform
    // across vanilla and SOFIA layouts.
    SourceInst hi;
    hi.inst.op = Opcode::kLui;
    hi.inst.rd = static_cast<std::uint8_t>(rd);
    hi.reloc = RelocKind::kHi18;
    hi.target = label;
    hi.line = ln;
    prog_.text.push_back(std::move(hi));
    SourceInst lo;
    lo.inst.op = Opcode::kOri;
    lo.inst.rd = static_cast<std::uint8_t>(rd);
    lo.inst.ra = static_cast<std::uint8_t>(rd);
    lo.reloc = RelocKind::kLo14;
    lo.target = label;
    lo.line = ln;
    prog_.text.push_back(std::move(lo));
  }

  // ---- operand helpers ----------------------------------------------------

  unsigned expect_reg(LineLexer& lex) {
    const Token t = lex.next();
    if (t.kind == Token::Kind::kIdent) {
      if (auto r = parse_reg_name(t.text)) return *r;
    }
    throw AsmError(lex.line_no(), "expected register, got '" + t.text + "'");
  }

  std::int64_t expect_number(LineLexer& lex) {
    const Token t = lex.next();
    if (t.kind != Token::Kind::kNumber)
      throw AsmError(lex.line_no(), "expected number, got '" + t.text + "'");
    return t.value;
  }

  std::string expect_ident(LineLexer& lex) {
    const Token t = lex.next();
    if (t.kind != Token::Kind::kIdent)
      throw AsmError(lex.line_no(), "expected identifier, got '" + t.text + "'");
    return t.text;
  }

  void finish() const {
    if (!pending_targets_.empty())
      throw AsmError(targets_line_, ".targets not consumed by a jalr");
    for (const auto& si : prog_.text) {
      for (const auto& t : si.indirect_targets) {
        if (prog_.text_labels.count(t) == 0)
          throw AsmError(si.line, ".targets label '" + t + "' is not a text label");
      }
      if (si.reloc == RelocKind::kNone) continue;
      const bool in_text = prog_.text_labels.count(si.target) != 0;
      const bool in_data = prog_.data_labels.count(si.target) != 0;
      if (!in_text && !in_data)
        throw AsmError(si.line, "undefined label '" + si.target + "'");
      if ((si.reloc == RelocKind::kBranch || si.reloc == RelocKind::kCall) && !in_text)
        throw AsmError(si.line, "branch to non-text label '" + si.target + "'");
    }
    for (const auto& r : prog_.data_relocs) {
      if (prog_.text_labels.count(r.symbol) == 0 && prog_.data_labels.count(r.symbol) == 0)
        throw AsmError(0, "undefined label '" + r.symbol + "' in .word");
    }
    if (prog_.text_labels.count(prog_.entry) == 0)
      throw AsmError(0, "entry label '" + prog_.entry + "' not defined");
  }

  Program prog_;
  Section section_ = Section::kText;
  std::vector<std::string> pending_targets_;
  int targets_line_ = 0;
};

}  // namespace

Program assemble(std::string_view source) { return Assembler().run(source); }

}  // namespace sofia::assembler
