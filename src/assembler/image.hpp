// Loadable binary image, the common currency between the two back ends
// (sequential vanilla link, SOFIA block transform) and the simulator.
//
// For SOFIA images the text words are *ciphertext*; `omega` mirrors the
// paper's nonce "stored in a fixed address in the binary" (we model it as a
// header field), and `entry_prev` is the architectural prevPC presented by
// the reset logic when fetching the very first block.
#pragma once

#include <cstdint>
#include <vector>

namespace sofia::assembler {

/// prevPC word address presented at reset (all-ones 24-bit word address, an
/// address no program text can occupy given the 64 MiB text limit).
inline constexpr std::uint32_t kResetPrevWord = 0xFFFFFF;

/// prevPC word address presented for an indirect (non-ret jalr) transfer
/// under a forward-edge gating scheme: every legal indirect target carries
/// one canonical entry sealed against this sentinel, so the dynamic source
/// block never has to appear in the target's predecessor set. Like the
/// reset sentinel it lies outside the 64 MiB text limit and fits the
/// 24-bit counter field.
inline constexpr std::uint32_t kIndirectPrevWord = 0xFFFFFE;

/// Placement of sections in the flat physical address space.
struct MemoryLayout {
  std::uint32_t text_base = 0x00000000;
  std::uint32_t data_base = 0x00100000;
  std::uint32_t stack_top = 0x001FFFF0;
};

struct LoadImage {
  std::uint32_t text_base = 0;
  std::vector<std::uint32_t> text;  ///< words; ciphertext when sofia == true
  std::uint32_t data_base = 0;
  std::vector<std::uint8_t> data;
  std::uint32_t entry = 0;  ///< byte address of the entry point
  std::uint32_t stack_top = 0;
  bool sofia = false;
  std::uint16_t omega = 0;                      ///< program-version nonce
  std::uint32_t entry_prev = kResetPrevWord;    ///< reset prevPC (word addr)
  /// CTR keystream granularity the text was encrypted with: false =
  /// per-word (Alg. 1), true = per-64-bit-pair (the §III hardware).
  bool per_pair = false;

  std::uint32_t text_bytes() const {
    return static_cast<std::uint32_t>(text.size() * 4);
  }
};

}  // namespace sofia::assembler
