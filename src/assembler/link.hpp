// Vanilla (baseline) linker: sequential layout, no SOFIA blocks, plaintext
// text — the unmodified-LEON3 analogue the paper's overheads are measured
// against.
#pragma once

#include "assembler/image.hpp"
#include "assembler/program.hpp"

namespace sofia::assembler {

/// Resolve a label to its vanilla byte address (text labels at
/// text_base + 4*index, data labels at data_base + offset). Throws
/// sofia::Error for unknown labels.
std::uint32_t resolve_vanilla(const Program& prog, const MemoryLayout& layout,
                              const std::string& label);

/// Lay out and encode the program sequentially.
LoadImage link_vanilla(const Program& prog, const MemoryLayout& layout = {});

}  // namespace sofia::assembler
