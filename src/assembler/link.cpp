#include "assembler/link.hpp"

#include "support/bits.hpp"
#include "support/error.hpp"

namespace sofia::assembler {

std::uint32_t resolve_vanilla(const Program& prog, const MemoryLayout& layout,
                              const std::string& label) {
  if (auto it = prog.text_labels.find(label); it != prog.text_labels.end())
    return layout.text_base + 4 * it->second;
  if (auto it = prog.data_labels.find(label); it != prog.data_labels.end())
    return layout.data_base + it->second;
  throw Error("unknown label '" + label + "'");
}

LoadImage link_vanilla(const Program& prog, const MemoryLayout& layout) {
  LoadImage img;
  img.text_base = layout.text_base;
  img.data_base = layout.data_base;
  img.stack_top = layout.stack_top;
  img.sofia = false;
  img.text.reserve(prog.text.size());

  for (std::size_t i = 0; i < prog.text.size(); ++i) {
    isa::Instruction inst = prog.text[i].inst;
    const SourceInst& si = prog.text[i];
    switch (si.reloc) {
      case RelocKind::kNone:
        break;
      case RelocKind::kBranch:
      case RelocKind::kCall: {
        const std::uint32_t target_index = prog.text_labels.at(si.target);
        const auto off = static_cast<std::int64_t>(target_index) -
                         static_cast<std::int64_t>(i);
        const unsigned width = (si.reloc == RelocKind::kBranch) ? 14u : 22u;
        if (!fits_signed(off, width))
          throw Error("branch offset to '" + si.target + "' out of range");
        inst.imm = static_cast<std::int32_t>(off);
        break;
      }
      case RelocKind::kHi18:
        inst.imm = static_cast<std::int32_t>(
            resolve_vanilla(prog, layout, si.target) >> 14);
        break;
      case RelocKind::kLo14:
        inst.imm = static_cast<std::int32_t>(
            resolve_vanilla(prog, layout, si.target) & 0x3FFFu);
        break;
    }
    img.text.push_back(isa::encode(inst));
  }

  img.data = prog.data;
  for (const auto& r : prog.data_relocs) {
    const std::uint32_t addr = resolve_vanilla(prog, layout, r.symbol);
    for (int b = 0; b < 4; ++b)
      img.data[r.offset + static_cast<std::uint32_t>(b)] =
          static_cast<std::uint8_t>(addr >> (8 * b));
  }

  img.entry = layout.text_base + 4 * prog.text_labels.at(prog.entry);
  return img;
}

}  // namespace sofia::assembler
