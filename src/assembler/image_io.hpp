// Binary serialization of LoadImage — the on-disk format produced by the
// sofia-asm tool and consumed by sofia-run, mirroring the paper's
// "transformed binary ... stored and executed from the target's
// non-volatile memory" (§III).
//
// Format (little-endian):
//   magic "SOFI", u16 format version, u16 flags (bit0 sofia, bit1 per_pair),
//   u16 omega, u32 text_base, u32 data_base, u32 stack_top, u32 entry,
//   u32 entry_prev, u32 text word count, u32 data byte count,
//   text words, data bytes, u32 checksum (sum of all preceding bytes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/image.hpp"

namespace sofia::assembler {

/// Serialize to bytes.
std::vector<std::uint8_t> serialize_image(const LoadImage& image);

/// Parse bytes; throws sofia::Error on malformed input (bad magic, version,
/// truncation, checksum mismatch).
LoadImage deserialize_image(const std::vector<std::uint8_t>& bytes);

/// File convenience wrappers; throw sofia::Error on I/O failure.
void save_image(const LoadImage& image, const std::string& path);
LoadImage load_image_file(const std::string& path);

}  // namespace sofia::assembler
