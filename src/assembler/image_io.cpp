#include "assembler/image_io.hpp"

#include "support/error.hpp"
#include "support/io.hpp"

namespace sofia::assembler {
namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'O', 'F', 'I'};
constexpr std::uint16_t kFormatVersion = 1;

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v));
  put16(out, static_cast<std::uint16_t>(v >> 16));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    if (pos_ >= bytes_.size()) throw Error("image: truncated");
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    const auto lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    const auto lo = u16();
    return static_cast<std::uint32_t>(lo) | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::size_t pos() const { return pos_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

std::uint32_t byte_sum(const std::vector<std::uint8_t>& bytes, std::size_t n) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += bytes[i];
  return sum;
}

}  // namespace

std::vector<std::uint8_t> serialize_image(const LoadImage& image) {
  std::vector<std::uint8_t> out;
  out.reserve(40 + image.text.size() * 4 + image.data.size());
  // push_back (not insert) keeps gcc-12's -Wstringop-overflow quiet at -O3.
  for (const std::uint8_t m : kMagic) out.push_back(m);
  put16(out, kFormatVersion);
  std::uint16_t flags = 0;
  if (image.sofia) flags |= 1;
  if (image.per_pair) flags |= 2;
  put16(out, flags);
  put16(out, image.omega);
  put16(out, 0);  // reserved / alignment
  put32(out, image.text_base);
  put32(out, image.data_base);
  put32(out, image.stack_top);
  put32(out, image.entry);
  put32(out, image.entry_prev);
  put32(out, static_cast<std::uint32_t>(image.text.size()));
  put32(out, static_cast<std::uint32_t>(image.data.size()));
  for (const std::uint32_t w : image.text) put32(out, w);
  out.insert(out.end(), image.data.begin(), image.data.end());
  put32(out, byte_sum(out, out.size()));
  return out;
}

LoadImage deserialize_image(const std::vector<std::uint8_t>& bytes) {
  Reader reader(bytes);
  for (const std::uint8_t m : kMagic) {
    if (reader.u8() != m) throw Error("image: bad magic");
  }
  if (reader.u16() != kFormatVersion) throw Error("image: unsupported version");
  const std::uint16_t flags = reader.u16();
  LoadImage image;
  image.sofia = (flags & 1) != 0;
  image.per_pair = (flags & 2) != 0;
  image.omega = reader.u16();
  (void)reader.u16();  // reserved
  image.text_base = reader.u32();
  image.data_base = reader.u32();
  image.stack_top = reader.u32();
  image.entry = reader.u32();
  image.entry_prev = reader.u32();
  const std::uint32_t text_words = reader.u32();
  const std::uint32_t data_bytes = reader.u32();
  image.text.reserve(text_words);
  for (std::uint32_t i = 0; i < text_words; ++i) image.text.push_back(reader.u32());
  image.data.reserve(data_bytes);
  for (std::uint32_t i = 0; i < data_bytes; ++i) image.data.push_back(reader.u8());
  const std::size_t payload_end = reader.pos();
  const std::uint32_t stored = reader.u32();
  if (stored != byte_sum(bytes, payload_end))
    throw Error("image: checksum mismatch");
  return image;
}

void save_image(const LoadImage& image, const std::string& path) {
  io::write_file(path, serialize_image(image));
}

LoadImage load_image_file(const std::string& path) {
  return deserialize_image(io::read_file_bytes(path));
}

}  // namespace sofia::assembler
