// Encryption-only baseline: the block layout and CF-dependent CTR
// encryption of sofia-cbcmac with the MAC replaced by constant marker
// words and no device-side verification at all. The overhead floor for
// the protection sweep — everything left when detection is removed
// (confidentiality and implicit CF binding through garbled decryption,
// but no reset on tampering and no store gate).
#pragma once

#include "scheme/scheme.hpp"

namespace sofia::scheme {

inline constexpr std::string_view kNullSchemeDescription =
    "encrypt-only baseline: CF-dependent CTR, constant header, no "
    "verification (overhead floor)";

class NullScheme final : public ProtectionScheme {
 public:
  std::string_view name() const override { return "null"; }
  std::string_view describe() const override { return kNullSchemeDescription; }
  SchemeTraits traits() const override {
    return {/*authenticated=*/false, /*uses_granularity=*/true};
  }
  std::unique_ptr<Sealer> make_sealer(const crypto::KeySet& keys,
                                      crypto::Granularity gran) const override;
  std::unique_ptr<Opener> make_opener(const crypto::KeySet& keys,
                                      std::uint16_t omega,
                                      crypto::Granularity gran) const override;
};

}  // namespace sofia::scheme
