#include "scheme/ctr_common.hpp"

namespace sofia::scheme::detail {

void ctr_seal(const BlockInfo& info, std::vector<std::uint32_t>& words,
              const crypto::BlockCipher64& enc, std::uint16_t omega,
              crypto::Granularity gran) {
  const auto n = static_cast<std::uint32_t>(words.size());
  if (gran == crypto::Granularity::kPerWord) {
    for (std::uint32_t j = 0; j < n; ++j) {
      words[j] ^= crypto::keystream32(enc, omega, seal_prev_word(info, j),
                                      info.base_word + j);
    }
    return;
  }
  std::uint32_t j = 0;
  if (info.is_mux) {
    for (; j < 2; ++j)
      words[j] ^= crypto::keystream32(enc, omega, seal_prev_word(info, j),
                                      info.base_word + j);
  }
  for (; j < n; j += 2) {
    const std::uint64_t ks = crypto::keystream64(
        enc, omega, seal_prev_word(info, j), info.base_word + j);
    words[j] ^= static_cast<std::uint32_t>(ks);
    words[j + 1] ^= static_cast<std::uint32_t>(ks >> 32);
  }
}

void ctr_open(const EntryPath& path, std::uint32_t base_word,
              std::uint32_t prev_word, const std::vector<std::uint32_t>& raw,
              DeviceBlock& out, const crypto::BlockCipher64& enc,
              std::uint16_t omega, crypto::Granularity gran) {
  const auto b = static_cast<std::uint32_t>(raw.size());
  const std::uint32_t entry = path.entry_word_index;
  const auto prev_for = [&](std::uint32_t j) {
    return j == entry ? prev_word : base_word + j - 1;
  };
  if (gran == crypto::Granularity::kPerWord) {
    for (const std::uint32_t j : path.sched) {
      out.decrypt_ops.push_back({j, 1});
      out.plain[j] =
          raw[j] ^ crypto::keystream32(enc, omega, prev_for(j), base_word + j);
    }
    return;
  }
  // Multiplexor entry words are single-word granules; the body pairs up.
  const std::uint32_t body_start = path.is_mux ? 2 : 0;
  if (path.is_mux) {
    out.decrypt_ops.push_back({entry, 1});
    out.plain[entry] = raw[entry] ^ crypto::keystream32(enc, omega, prev_word,
                                                        base_word + entry);
  }
  for (std::uint32_t j = body_start; j < b; j += 2) {
    out.decrypt_ops.push_back({j, 2});
    const std::uint64_t ks = crypto::keystream64(
        enc, omega, j == 0 ? prev_word : base_word + j - 1, base_word + j);
    out.plain[j] = raw[j] ^ static_cast<std::uint32_t>(ks);
    out.plain[j + 1] = raw[j + 1] ^ static_cast<std::uint32_t>(ks >> 32);
  }
}

}  // namespace sofia::scheme::detail
