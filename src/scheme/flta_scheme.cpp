#include "scheme/flta_scheme.hpp"

#include "crypto/cbc_mac.hpp"
#include "scheme/ctr_common.hpp"

namespace sofia::scheme {

namespace {

std::uint32_t label_word(const BlockInfo& info) {
  return (static_cast<std::uint32_t>(info.entry1_label) << 16) |
         (static_cast<std::uint32_t>(info.entry2_label) << 8) |
         static_cast<std::uint32_t>(info.exit_label);
}

// 32-bit authenticator over instructions ++ label word: appending L to
// the MAC input is what makes a label forgery a MAC mismatch.
std::uint32_t mac32(const crypto::BlockCipher64& mac_cipher,
                    const std::vector<std::uint32_t>& inst_words,
                    std::uint32_t label) {
  std::vector<std::uint32_t> input = inst_words;
  input.push_back(label);
  return crypto::mac_word1(crypto::cbc_mac64(mac_cipher, input));
}

class FltaSealer final : public Sealer {
 public:
  FltaSealer(const crypto::KeySet& keys, crypto::Granularity gran)
      : enc_(keys.encryption_cipher()),
        exec_mac_(keys.exec_mac_cipher()),
        mux_mac_(keys.mux_mac_cipher()),
        omega_(keys.omega),
        gran_(gran) {}

  std::vector<std::uint32_t> plaintext(
      const BlockInfo& info,
      const std::vector<std::uint32_t>& inst_words) const override {
    const auto& mac_cipher = info.is_mux ? *mux_mac_ : *exec_mac_;
    const std::uint32_t label = label_word(info);
    const std::uint32_t m1 = mac32(mac_cipher, inst_words, label);
    // [M1, L] for an execution block, [M1, M1, L] for a multiplexor block
    // (two entry copies of M1, matching sofia-cbcmac's header shape).
    std::vector<std::uint32_t> words =
        info.is_mux ? std::vector<std::uint32_t>{m1, m1, label}
                    : std::vector<std::uint32_t>{m1, label};
    words.insert(words.end(), inst_words.begin(), inst_words.end());
    return words;
  }

  std::vector<std::uint32_t> seal(
      const BlockInfo& info,
      const std::vector<std::uint32_t>& inst_words) const override {
    std::vector<std::uint32_t> words = plaintext(info, inst_words);
    detail::ctr_seal(info, words, *enc_, omega_, gran_);
    return words;
  }

 private:
  std::unique_ptr<crypto::BlockCipher64> enc_;
  std::unique_ptr<crypto::BlockCipher64> exec_mac_;
  std::unique_ptr<crypto::BlockCipher64> mux_mac_;
  std::uint16_t omega_;
  crypto::Granularity gran_;
};

class FltaOpener final : public Opener {
 public:
  FltaOpener(const crypto::KeySet& keys, std::uint16_t omega,
             crypto::Granularity gran)
      : enc_(keys.encryption_cipher()),
        exec_mac_(keys.exec_mac_cipher()),
        mux_mac_(keys.mux_mac_cipher()),
        omega_(omega),
        gran_(gran) {}

  DeviceBlock open(std::uint32_t base_word, std::uint32_t prev_word,
                   const EntryPath& path,
                   const std::vector<std::uint32_t>& raw) const override {
    const auto b = static_cast<std::uint32_t>(raw.size());
    DeviceBlock out;
    out.first_inst = path.first_inst;
    out.plain.assign(b, 0);
    detail::ctr_open(path, base_word, prev_word, raw, out, *enc_, omega_,
                     gran_);

    // Stored authenticator in the entered M1 copy; the label word sits
    // where sofia-cbcmac keeps M2.
    const std::uint32_t label_index = path.is_mux ? 2u : 1u;
    const std::uint32_t m1 = out.plain[path.entry_word_index];
    const std::uint32_t label = out.plain[label_index];
    out.verify_extra_words = {path.entry_word_index, label_index};

    // Chained MAC ops over the decrypted instructions, then the label.
    for (std::uint32_t w = path.first_inst; w < b; w += 2)
      out.verify_ops.push_back({w, std::min(2u, b - w)});
    out.verify_ops.push_back({label_index, 1});
    const std::vector<std::uint32_t> inst_words(
        out.plain.begin() + path.first_inst, out.plain.end());
    const auto& mac_cipher = path.is_mux ? *mux_mac_ : *exec_mac_;
    if (mac32(mac_cipher, inst_words, label) != m1)
      out.verify_cause = sim::ResetCause::kMacMismatch;

    out.gate_indirect = true;
    out.entry_label = static_cast<std::uint8_t>(
        path.offset == 2 ? (label >> 8) & 0xFF : (label >> 16) & 0xFF);
    out.exit_label = static_cast<std::uint8_t>(label & 0xFF);
    return out;
  }

 private:
  std::unique_ptr<crypto::BlockCipher64> enc_;
  std::unique_ptr<crypto::BlockCipher64> exec_mac_;
  std::unique_ptr<crypto::BlockCipher64> mux_mac_;
  std::uint16_t omega_;
  crypto::Granularity gran_;
};

}  // namespace

std::unique_ptr<Sealer> FltaScheme::make_sealer(const crypto::KeySet& keys,
                                                crypto::Granularity gran) const {
  return std::make_unique<FltaSealer>(keys, gran);
}

std::unique_ptr<Opener> FltaScheme::make_opener(const crypto::KeySet& keys,
                                                std::uint16_t omega,
                                                crypto::Granularity gran) const {
  return std::make_unique<FltaOpener>(keys, omega, gran);
}

}  // namespace sofia::scheme
