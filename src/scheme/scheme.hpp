// Pluggable protection schemes. A ProtectionScheme owns both sides of the
// per-block protection contract that used to be hard-wired through
// xform::transform and the two simulator front ends:
//
//  * the toolchain side — a Sealer turns a laid-out block's encoded
//    instructions into the final on-image words (header words + body,
//    encrypted however the scheme prescribes);
//  * the device side — an Opener turns the raw fetched words of one block
//    entry back into plaintext instructions plus a verification verdict
//    and a timing-portable description of the cipher work performed
//    (DeviceBlock), which the cycle-accurate front end replays against
//    its engine model and the functional backend merely counts.
//
// What stays *outside* the scheme, because every scheme shares it: the
// block geometry (BlockPolicy: b words per block, header = 2 for
// execution blocks / 3 for multiplexor blocks), the entry-offset
// discipline (offset 0 = execution entry, 1/2 = the two multiplexor
// paths, >2 = invalid entry), and the decode-time placement rules
// (control only in the exit slot, stores at or past store_min_word).
//
// Schemes are stateless singletons behind a string-keyed registry
// mirroring sim::backend_registry(): consumers name a scheme
// (DeviceProfile::scheme routes pipeline::Pipeline here) and the registry
// hands back the implementation, so an alternative protection design is a
// drop-in sweep axis.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/ctr.hpp"
#include "crypto/key_set.hpp"
#include "sim/config.hpp"

namespace sofia::scheme {

// ---- toolchain side --------------------------------------------------------

/// Everything the Sealer may depend on about one laid-out block.
///
/// The label fields only matter to forward-edge gating schemes
/// (SchemeTraits::gates_indirect); everything else ignores them, and the
/// toolchain leaves them zero for non-gating schemes. A label is an 8-bit
/// equivalence-class id over indirect target sets: entryN_label is the
/// class the block belongs to when entered through path N (0 = not an
/// indirect target on that path), exit_label is the class this block's
/// exit-slot jalr is allowed to reach (0 = the exit is not indirect).
struct BlockInfo {
  bool is_mux = false;
  std::uint32_t base_word = 0;   ///< word address of the block's first word
  std::uint32_t pred1_word = 0;  ///< prevPC for entry path 1 (word 0)
  std::uint32_t pred2_word = 0;  ///< prevPC for entry path 2 (mux word 1)
  std::uint8_t entry1_label = 0; ///< target-set class when entered via path 1
  std::uint8_t entry2_label = 0; ///< target-set class when entered via path 2
  std::uint8_t exit_label = 0;   ///< target-set class of the exit jalr
};

/// One installation session (fixed keys + granularity). Sealers are cheap
/// per-transform objects; they may cache cipher instances.
class Sealer {
 public:
  virtual ~Sealer() = default;

  /// The block's pre-encryption view: header words followed by the encoded
  /// instructions. Exposed for tests and the toolchain inspector.
  virtual std::vector<std::uint32_t> plaintext(
      const BlockInfo& info, const std::vector<std::uint32_t>& inst_words) const = 0;

  /// The block's final on-image words (plaintext(), encrypted).
  virtual std::vector<std::uint32_t> seal(
      const BlockInfo& info, const std::vector<std::uint32_t>& inst_words) const = 0;
};

// ---- device side -----------------------------------------------------------

/// How a transfer enters a block: the target's word offset selects the
/// block type and multiplexor path, and with it the fetch schedule.
/// Offsets above 2 are invalid entries; the front ends reset before any
/// scheme is consulted, so an EntryPath is always valid.
struct EntryPath {
  bool is_mux = false;
  std::uint32_t offset = 0;            ///< 0 = exec, 1/2 = mux path
  std::uint32_t entry_word_index = 0;  ///< first word fetched (== sched[0])
  std::uint32_t first_inst = 0;        ///< word index of the first instruction
  /// Word indices fetched, in order. Path 1 starts at word 0 and skips
  /// word 1; path 2 starts at word 1.
  std::vector<std::uint32_t> sched;
};

/// Build the fetch schedule for an entry offset (must be <= 2).
EntryPath entry_path(std::uint32_t offset, std::uint32_t words_per_block);

/// One cipher operation over a contiguous span of block words.
struct OpSpan {
  std::uint32_t first = 0;  ///< block word index the op starts at
  std::uint32_t count = 1;  ///< words covered (1 or 2)
};

/// An opened block: plaintext + verdict + the cipher work performed, in
/// issue order. The cycle-accurate front end replays the op lists against
/// its shared-engine model; the functional backend counts them. Timing
/// semantics:
///  * decrypt_ops are CTR-class ops. With serial_decrypt false their
///    counters depend only on addresses, so they issue eagerly at block
///    entry; with serial_decrypt true op n+1 additionally waits for op n
///    and for its span's fetched words (a chained-state scheme).
///  * A word's decrypt completion is max(its fetch, its covering op).
///  * verify_ops are CBC-class ops chained in list order; each op's input
///    is its span's decrypted words.
///  * Verification completes when the last verify op and every word in
///    verify_extra_words are done; the verdict (or the store gate) fires
///    one cycle later.
struct DeviceBlock {
  /// kNone, or the scheme's detection verdict (kMacMismatch /
  /// kStateCorruption), firing when verification completes with
  /// pc = the block's base byte address.
  sim::ResetCause verify_cause = sim::ResetCause::kNone;
  std::uint32_t first_inst = 0;      ///< word index of the first instruction
  std::vector<std::uint32_t> plain;  ///< all b words, decrypted
  std::vector<OpSpan> decrypt_ops;
  std::vector<OpSpan> verify_ops;
  /// Word indices whose decrypt completion additionally gates
  /// verification (typically the header words carrying the stored tag).
  std::vector<std::uint32_t> verify_extra_words;
  bool serial_decrypt = false;
  /// False for an unauthenticated scheme: no verification is counted and
  /// stores are never gated.
  bool performs_verify = true;
  std::uint32_t header_words = 2;  ///< tag words consumed (stats)
  /// Forward-edge gate (gating schemes only). When gate_indirect is true
  /// the machine must check, on any indirect (non-ret jalr) transfer INTO
  /// this entry, that the source block's exit_label equals this entry
  /// path's entry_label; 0 or a mismatch is a kTargetSetViolation.
  bool gate_indirect = false;
  std::uint8_t entry_label = 0;  ///< label of the path actually entered
  std::uint8_t exit_label = 0;   ///< label the exit-slot jalr may reach
};

/// One device session (fixed keys + the image's omega and granularity).
class Opener {
 public:
  virtual ~Opener() = default;

  /// Decrypt and verify one block entry. `raw` holds all b words of the
  /// block; only the indices in `path.sched` were fetched (the rest are
  /// zero and must not be read).
  virtual DeviceBlock open(std::uint32_t base_word, std::uint32_t prev_word,
                           const EntryPath& path,
                           const std::vector<std::uint32_t>& raw) const = 0;
};

// ---- the scheme ------------------------------------------------------------

struct SchemeTraits {
  /// The scheme detects tampering (a tamper-detection test may demand a
  /// reset). False = encryption-only baseline.
  bool authenticated = true;
  /// The CTR granularity axis changes the sealed bytes. False = the
  /// scheme ignores DeviceProfile::granularity (documented per scheme).
  bool uses_granularity = true;
  /// The scheme seals per-block target-set labels and gates indirect
  /// transfers against them at runtime (FLTA-style forward edge). The
  /// toolchain keeps annotated jump-form jalr instructions under such a
  /// scheme instead of devirtualizing them.
  bool gates_indirect = false;
};

class ProtectionScheme {
 public:
  virtual ~ProtectionScheme() = default;

  /// Registry key, e.g. "sofia-cbcmac".
  virtual std::string_view name() const = 0;

  /// One-line human description for --help texts and reports.
  virtual std::string_view describe() const = 0;

  virtual SchemeTraits traits() const = 0;

  /// Toolchain session: keys().omega is the sealed image's omega.
  virtual std::unique_ptr<Sealer> make_sealer(const crypto::KeySet& keys,
                                              crypto::Granularity gran) const = 0;

  /// Device session. `omega` and `gran` come from the *image* header, not
  /// the key set — a version mismatch must garble decryption, exactly like
  /// a key mismatch (the cross-version replay attack depends on it).
  virtual std::unique_ptr<Opener> make_opener(const crypto::KeySet& keys,
                                              std::uint16_t omega,
                                              crypto::Granularity gran) const = 0;
};

// ---- registry --------------------------------------------------------------

/// One registry row: key + description + singleton accessor.
struct SchemeEntry {
  std::string_view name;
  std::string_view description;
  const ProtectionScheme& (*get)();
};

/// The default scheme every DeviceProfile (and SimConfig) starts with —
/// the paper's MAC-then-encrypt design.
inline constexpr std::string_view kDefaultScheme = "sofia-cbcmac";

/// Built-in schemes in a stable order ("sofia-cbcmac" first).
const std::vector<SchemeEntry>& scheme_registry();

/// The registered names, in registry order.
std::vector<std::string> scheme_names();

/// Is `name` a registered scheme key?
bool is_scheme(std::string_view name);

/// Look up a scheme by registry key; throws sofia::Error listing the
/// registered names for anything unknown.
const ProtectionScheme& get_scheme(std::string_view name);

}  // namespace sofia::scheme
