#include "scheme/null_scheme.hpp"

#include "scheme/ctr_common.hpp"

namespace sofia::scheme {

namespace {

// Recognizable filler for the unused header slots ("NUL1"/"NUL2" in
// ASCII). Never checked by the device — they only keep the shared block
// geometry so null images are layout-compatible with the other schemes.
constexpr std::uint32_t kMarker1 = 0x314C554Eu;
constexpr std::uint32_t kMarker2 = 0x324C554Eu;

class NullSealer final : public Sealer {
 public:
  NullSealer(const crypto::KeySet& keys, crypto::Granularity gran)
      : enc_(keys.encryption_cipher()), omega_(keys.omega), gran_(gran) {}

  std::vector<std::uint32_t> plaintext(
      const BlockInfo& info,
      const std::vector<std::uint32_t>& inst_words) const override {
    std::vector<std::uint32_t> words =
        info.is_mux ? std::vector<std::uint32_t>{kMarker1, kMarker1, kMarker2}
                    : std::vector<std::uint32_t>{kMarker1, kMarker2};
    words.insert(words.end(), inst_words.begin(), inst_words.end());
    return words;
  }

  std::vector<std::uint32_t> seal(
      const BlockInfo& info,
      const std::vector<std::uint32_t>& inst_words) const override {
    std::vector<std::uint32_t> words = plaintext(info, inst_words);
    detail::ctr_seal(info, words, *enc_, omega_, gran_);
    return words;
  }

 private:
  std::unique_ptr<crypto::BlockCipher64> enc_;
  std::uint16_t omega_;
  crypto::Granularity gran_;
};

class NullOpener final : public Opener {
 public:
  NullOpener(const crypto::KeySet& keys, std::uint16_t omega,
             crypto::Granularity gran)
      : enc_(keys.encryption_cipher()), omega_(omega), gran_(gran) {}

  DeviceBlock open(std::uint32_t base_word, std::uint32_t prev_word,
                   const EntryPath& path,
                   const std::vector<std::uint32_t>& raw) const override {
    DeviceBlock out;
    out.first_inst = path.first_inst;
    out.plain.assign(raw.size(), 0);
    detail::ctr_open(path, base_word, prev_word, raw, out, *enc_, omega_,
                     gran_);
    // Header words are discarded unchecked; no verification, no store gate.
    out.performs_verify = false;
    return out;
  }

 private:
  std::unique_ptr<crypto::BlockCipher64> enc_;
  std::uint16_t omega_;
  crypto::Granularity gran_;
};

}  // namespace

std::unique_ptr<Sealer> NullScheme::make_sealer(const crypto::KeySet& keys,
                                                crypto::Granularity gran) const {
  return std::make_unique<NullSealer>(keys, gran);
}

std::unique_ptr<Opener> NullScheme::make_opener(const crypto::KeySet& keys,
                                                std::uint16_t omega,
                                                crypto::Granularity gran) const {
  return std::make_unique<NullOpener>(keys, omega, gran);
}

}  // namespace sofia::scheme
