#include "scheme/sponge_scheme.hpp"

#include "scheme/ctr_common.hpp"

namespace sofia::scheme {

namespace {

/// prevPC field of the chain-initialization counter. The initial state is
/// bound to the block's *position* only (not the entered path): the body
/// chain must agree between both multiplexor entry paths, which share
/// every instruction word. Path binding comes from the CTR-encrypted tag
/// words in the header.
constexpr std::uint32_t kChainInitPrev = 0xFFFFFFu;

/// The duplex chain shared by sealer and opener: squeeze one keystream
/// word per instruction word (E_k1 over the state), then absorb the
/// word's *ciphertext* and absolute address (E_k2 over the xored state).
/// Absorbing ciphertext — the value an attacker can touch — is what makes
/// any flipped bit diverge the state for good.
class SpongeChain {
 public:
  SpongeChain(const crypto::BlockCipher64& squeeze,
              const crypto::BlockCipher64& chain, std::uint16_t omega,
              std::uint32_t base_word)
      : squeeze_(squeeze),
        chain_(chain),
        state_(chain.encrypt(
            crypto::pack_counter(omega, kChainInitPrev, base_word))) {}

  std::uint32_t squeeze() const {
    return static_cast<std::uint32_t>(squeeze_.encrypt(state_));
  }

  void absorb(std::uint32_t ciphertext, std::uint32_t abs_word) {
    state_ = chain_.encrypt(
        state_ ^ (static_cast<std::uint64_t>(ciphertext) |
                  (static_cast<std::uint64_t>(abs_word & 0xFFFFFFu) << 32)));
  }

  /// Final tag, whitened with the body word count (length binding).
  std::uint64_t tag(std::uint32_t body_words) const {
    return chain_.encrypt(state_ ^ body_words);
  }

 private:
  const crypto::BlockCipher64& squeeze_;
  const crypto::BlockCipher64& chain_;
  std::uint64_t state_;
};

class SpongeSealer final : public Sealer {
 public:
  explicit SpongeSealer(const crypto::KeySet& keys)
      : enc_(keys.encryption_cipher()),
        chain_key_(keys.exec_mac_cipher()),
        omega_(keys.omega) {}

  std::vector<std::uint32_t> plaintext(
      const BlockInfo& info,
      const std::vector<std::uint32_t>& inst_words) const override {
    const std::uint32_t header = info.is_mux ? 3 : 2;
    SpongeChain chain(*enc_, *chain_key_, omega_, info.base_word);
    for (std::uint32_t i = 0; i < inst_words.size(); ++i) {
      const std::uint32_t c = inst_words[i] ^ chain.squeeze();
      chain.absorb(c, info.base_word + header + i);
    }
    const std::uint64_t tag =
        chain.tag(static_cast<std::uint32_t>(inst_words.size()));
    const auto t1 = static_cast<std::uint32_t>(tag);
    const auto t2 = static_cast<std::uint32_t>(tag >> 32);
    std::vector<std::uint32_t> words =
        info.is_mux ? std::vector<std::uint32_t>{t1, t1, t2}
                    : std::vector<std::uint32_t>{t1, t2};
    words.insert(words.end(), inst_words.begin(), inst_words.end());
    return words;
  }

  std::vector<std::uint32_t> seal(
      const BlockInfo& info,
      const std::vector<std::uint32_t>& inst_words) const override {
    const std::uint32_t header = info.is_mux ? 3 : 2;
    std::vector<std::uint32_t> words = plaintext(info, inst_words);
    // Body: duplex-encrypt in place (the same chain the tag came from).
    SpongeChain chain(*enc_, *chain_key_, omega_, info.base_word);
    for (std::uint32_t w = header; w < words.size(); ++w) {
      words[w] ^= chain.squeeze();
      chain.absorb(words[w], info.base_word + w);
    }
    // Header: per-word CTR with the path-binding counters — the same
    // prevPC discipline as sofia-cbcmac's MAC words. A transfer from the
    // wrong predecessor garbles the decrypted tag, and the chain verdict
    // flags it.
    for (std::uint32_t j = 0; j < header; ++j)
      words[j] ^= crypto::keystream32(*enc_, omega_,
                                      detail::seal_prev_word(info, j),
                                      info.base_word + j);
    return words;
  }

 private:
  std::unique_ptr<crypto::BlockCipher64> enc_;
  std::unique_ptr<crypto::BlockCipher64> chain_key_;
  std::uint16_t omega_;
};

class SpongeOpener final : public Opener {
 public:
  SpongeOpener(const crypto::KeySet& keys, std::uint16_t omega)
      : enc_(keys.encryption_cipher()),
        chain_key_(keys.exec_mac_cipher()),
        omega_(omega) {}

  DeviceBlock open(std::uint32_t base_word, std::uint32_t prev_word,
                   const EntryPath& path,
                   const std::vector<std::uint32_t>& raw) const override {
    const auto b = static_cast<std::uint32_t>(raw.size());
    DeviceBlock out;
    out.first_inst = path.first_inst;
    out.plain.assign(b, 0);
    out.serial_decrypt = true;

    // Scheduled header words (the entered T1 copy and the T2 slot):
    // per-word CTR decryption with the control-flow-dependent counter.
    const std::uint32_t entry = path.entry_word_index;
    const std::uint32_t tag_hi = path.is_mux ? 2u : 1u;
    for (const std::uint32_t j : {entry, tag_hi}) {
      out.decrypt_ops.push_back({j, 1});
      out.plain[j] = raw[j] ^ crypto::keystream32(
                                  *enc_, omega_,
                                  j == entry ? prev_word : base_word + j - 1,
                                  base_word + j);
    }
    const std::uint64_t stored_tag =
        (static_cast<std::uint64_t>(out.plain[tag_hi]) << 32) |
        out.plain[entry];

    // Body: recompute the duplex chain over the fetched ciphertext. One
    // serial cipher op per word — op n+1 waits on op n and on the word's
    // fetch (the absorbed ciphertext is data, not just an address).
    SpongeChain chain(*enc_, *chain_key_, omega_, base_word);
    for (std::uint32_t w = path.first_inst; w < b; ++w) {
      out.decrypt_ops.push_back({w, 1});
      out.plain[w] = raw[w] ^ chain.squeeze();
      chain.absorb(raw[w], base_word + w);
    }
    const std::uint64_t computed_tag = chain.tag(b - path.first_inst);

    // Verification is the tag comparison at the end of the chain: no
    // separate CBC pass, completion gated by the header decrypts and the
    // last chain op.
    out.verify_extra_words = {entry, tag_hi, b - 1};
    if (computed_tag != stored_tag)
      out.verify_cause = sim::ResetCause::kStateCorruption;
    return out;
  }

 private:
  std::unique_ptr<crypto::BlockCipher64> enc_;
  std::unique_ptr<crypto::BlockCipher64> chain_key_;
  std::uint16_t omega_;
};

}  // namespace

std::unique_ptr<Sealer> SpongeScheme::make_sealer(
    const crypto::KeySet& keys, crypto::Granularity /*gran*/) const {
  return std::make_unique<SpongeSealer>(keys);
}

std::unique_ptr<Opener> SpongeScheme::make_opener(
    const crypto::KeySet& keys, std::uint16_t omega,
    crypto::Granularity /*gran*/) const {
  return std::make_unique<SpongeOpener>(keys, omega);
}

}  // namespace sofia::scheme
