// Target-set label assignment for forward-edge gating schemes (FLTA-style:
// "forward-edge label-based transfer authorization"). Every surviving
// jump-form jalr declares a static target set; the toolchain collapses
// those sets into equivalence classes — two sets sharing any member merge,
// because a block entry can carry only one sealed label — and assigns each
// class a small non-zero id. The scheme seals the ids into block headers;
// the machine then checks, on every indirect transfer, that the source
// exit label equals the target entry label.
//
// This mirrors the classic FLTA (function-level type analysis) coarsening:
// precision is the partition induced by the static target sets, soundness
// is that every declared target stays reachable.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sofia::scheme {

/// One surviving indirect jump site, in *word addresses* of the laid-out
/// image: the exit slot holding the jalr and the entry word of every
/// declared target (its canonical indirect entry).
struct IndirectSite {
  std::uint32_t exit_word = 0;
  std::vector<std::uint32_t> target_entry_words;
};

/// The computed labeling: entry word address -> label for every indirect
/// target, exit word address -> label for every gated jump. Labels are
/// 1..255; 0 everywhere else (the machine treats 0 as "not authorized").
struct LabelPlan {
  std::unordered_map<std::uint32_t, std::uint8_t> entry_label;
  std::unordered_map<std::uint32_t, std::uint8_t> exit_label;
};

/// Merge overlapping target sets into equivalence classes and assign
/// deterministic ids (classes ordered by their smallest entry word
/// address, numbered from 1). Throws sofia::TransformError when more than
/// 255 classes are needed.
LabelPlan assign_labels(const std::vector<IndirectSite>& sites);

}  // namespace sofia::scheme
