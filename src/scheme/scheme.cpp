#include "scheme/scheme.hpp"

#include "scheme/cbcmac_scheme.hpp"
#include "scheme/flta_scheme.hpp"
#include "scheme/null_scheme.hpp"
#include "scheme/sponge_scheme.hpp"
#include "support/error.hpp"

namespace sofia::scheme {

EntryPath entry_path(std::uint32_t offset, std::uint32_t words_per_block) {
  EntryPath path;
  path.offset = offset;
  path.is_mux = offset != 0;
  path.first_inst = path.is_mux ? 3 : 2;
  if (!path.is_mux) {
    for (std::uint32_t j = 0; j < words_per_block; ++j) path.sched.push_back(j);
  } else if (offset == 1) {
    path.sched.push_back(0);
    for (std::uint32_t j = 2; j < words_per_block; ++j) path.sched.push_back(j);
  } else {
    for (std::uint32_t j = 1; j < words_per_block; ++j) path.sched.push_back(j);
  }
  path.entry_word_index = path.sched.front();
  return path;
}

namespace {

template <typename T>
const ProtectionScheme& get() {
  static const T instance;
  return instance;
}

}  // namespace

const std::vector<SchemeEntry>& scheme_registry() {
  static const std::vector<SchemeEntry> registry = {
      {"sofia-cbcmac", kCbcMacSchemeDescription, get<CbcMacScheme>},
      {"sponge", kSpongeSchemeDescription, get<SpongeScheme>},
      {"null", kNullSchemeDescription, get<NullScheme>},
      {"flta", kFltaSchemeDescription, get<FltaScheme>},
  };
  return registry;
}

std::vector<std::string> scheme_names() {
  std::vector<std::string> names;
  for (const auto& entry : scheme_registry())
    names.emplace_back(entry.name);
  return names;
}

bool is_scheme(std::string_view name) {
  for (const auto& entry : scheme_registry())
    if (entry.name == name) return true;
  return false;
}

const ProtectionScheme& get_scheme(std::string_view name) {
  for (const auto& entry : scheme_registry())
    if (entry.name == name) return entry.get();
  std::string known;
  for (const auto& entry : scheme_registry()) {
    if (!known.empty()) known += " or ";
    known += entry.name;
  }
  throw Error("unknown protection scheme '" + std::string(name) +
              "' (expected " + known + ")");
}

}  // namespace sofia::scheme
