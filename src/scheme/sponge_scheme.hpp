// SCFP-style sponge protection: authenticated decryption through a
// chained cipher state instead of a separate MAC pass. Each instruction
// word's keystream is squeezed from the running state (E_k1(S)); the
// word's *ciphertext* and absolute address are absorbed back
// (S' = E_k2(S ^ (c | addr << 32))), so any tampered, reordered or
// relocated word sends the state — and every later decryption — into
// garbage. The final state, whitened with the body length, is the block
// tag; its two words are stored in the standard header slots and
// CTR-encrypted with control-flow-dependent counters exactly like
// sofia-cbcmac's MAC words, which is where entry-path binding lives. The
// device recomputes the chain over the fetched ciphertext and resets with
// kStateCorruption on a tag mismatch.
//
// Timing shape: one serial cipher op per body word (state chaining admits
// no eager issue), no separate CBC pass. The CTR granularity axis is
// ignored — the chain is inherently per-word (traits().uses_granularity
// is false).
#pragma once

#include "scheme/scheme.hpp"

namespace sofia::scheme {

inline constexpr std::string_view kSpongeSchemeDescription =
    "SCFP-style chained-state authenticated decryption; detection by "
    "state corruption";

class SpongeScheme final : public ProtectionScheme {
 public:
  std::string_view name() const override { return "sponge"; }
  std::string_view describe() const override {
    return kSpongeSchemeDescription;
  }
  SchemeTraits traits() const override {
    return {/*authenticated=*/true, /*uses_granularity=*/false};
  }
  std::unique_ptr<Sealer> make_sealer(const crypto::KeySet& keys,
                                      crypto::Granularity gran) const override;
  std::unique_ptr<Opener> make_opener(const crypto::KeySet& keys,
                                      std::uint16_t omega,
                                      crypto::Granularity gran) const override;
};

}  // namespace sofia::scheme
