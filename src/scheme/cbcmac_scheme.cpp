#include "scheme/cbcmac_scheme.hpp"

#include <span>

#include "crypto/cbc_mac.hpp"
#include "scheme/ctr_common.hpp"

namespace sofia::scheme {

namespace {

class CbcMacSealer final : public Sealer {
 public:
  CbcMacSealer(const crypto::KeySet& keys, crypto::Granularity gran)
      : enc_(keys.encryption_cipher()),
        exec_mac_(keys.exec_mac_cipher()),
        mux_mac_(keys.mux_mac_cipher()),
        omega_(keys.omega),
        gran_(gran) {}

  std::vector<std::uint32_t> plaintext(
      const BlockInfo& info,
      const std::vector<std::uint32_t>& inst_words) const override {
    const auto& mac_cipher = info.is_mux ? *mux_mac_ : *exec_mac_;
    const std::uint64_t tag = crypto::cbc_mac64(mac_cipher, inst_words);
    const std::uint32_t m1 = crypto::mac_word1(tag);
    const std::uint32_t m2 = crypto::mac_word2(tag);
    // [M1, M2] for an execution block, [M1, M1, M2] for a multiplexor
    // block (two entry copies of M1, §II-D).
    std::vector<std::uint32_t> words =
        info.is_mux ? std::vector<std::uint32_t>{m1, m1, m2}
                    : std::vector<std::uint32_t>{m1, m2};
    words.insert(words.end(), inst_words.begin(), inst_words.end());
    return words;
  }

  std::vector<std::uint32_t> seal(
      const BlockInfo& info,
      const std::vector<std::uint32_t>& inst_words) const override {
    std::vector<std::uint32_t> words = plaintext(info, inst_words);
    detail::ctr_seal(info, words, *enc_, omega_, gran_);
    return words;
  }

 private:
  std::unique_ptr<crypto::BlockCipher64> enc_;
  std::unique_ptr<crypto::BlockCipher64> exec_mac_;
  std::unique_ptr<crypto::BlockCipher64> mux_mac_;
  std::uint16_t omega_;
  crypto::Granularity gran_;
};

class CbcMacOpener final : public Opener {
 public:
  CbcMacOpener(const crypto::KeySet& keys, std::uint16_t omega,
               crypto::Granularity gran)
      : enc_(keys.encryption_cipher()),
        exec_mac_(keys.exec_mac_cipher()),
        mux_mac_(keys.mux_mac_cipher()),
        omega_(omega),
        gran_(gran) {}

  DeviceBlock open(std::uint32_t base_word, std::uint32_t prev_word,
                   const EntryPath& path,
                   const std::vector<std::uint32_t>& raw) const override {
    const auto b = static_cast<std::uint32_t>(raw.size());
    DeviceBlock out;
    out.first_inst = path.first_inst;
    out.plain.assign(b, 0);
    detail::ctr_open(path, base_word, prev_word, raw, out, *enc_, omega_,
                     gran_);

    // The stored tag sits in the entered M1 copy and the M2 word.
    const std::uint32_t m1 = out.plain[path.entry_word_index];
    const std::uint32_t m2 = out.plain[path.is_mux ? 2 : 1];
    const std::uint64_t stored_tag =
        (static_cast<std::uint64_t>(m2) << 32) | m1;
    out.verify_extra_words = {path.entry_word_index, path.is_mux ? 2u : 1u};

    // Run-time CBC-MAC over the decrypted instructions: one chained
    // cipher op per 64-bit word pair.
    for (std::uint32_t w = path.first_inst; w < b; w += 2)
      out.verify_ops.push_back({w, std::min(2u, b - w)});
    const std::span<const std::uint32_t> inst_words(
        out.plain.data() + path.first_inst, b - path.first_inst);
    const auto& mac_cipher = path.is_mux ? *mux_mac_ : *exec_mac_;
    if (crypto::cbc_mac64(mac_cipher, inst_words) != stored_tag)
      out.verify_cause = sim::ResetCause::kMacMismatch;
    return out;
  }

 private:
  std::unique_ptr<crypto::BlockCipher64> enc_;
  std::unique_ptr<crypto::BlockCipher64> exec_mac_;
  std::unique_ptr<crypto::BlockCipher64> mux_mac_;
  std::uint16_t omega_;
  crypto::Granularity gran_;
};

}  // namespace

std::unique_ptr<Sealer> CbcMacScheme::make_sealer(
    const crypto::KeySet& keys, crypto::Granularity gran) const {
  return std::make_unique<CbcMacSealer>(keys, gran);
}

std::unique_ptr<Opener> CbcMacScheme::make_opener(
    const crypto::KeySet& keys, std::uint16_t omega,
    crypto::Granularity gran) const {
  return std::make_unique<CbcMacOpener>(keys, omega, gran);
}

}  // namespace sofia::scheme
