// The paper's protection design (§II-B/§II-C), extracted verbatim from
// xform::transform and the simulator front ends: a 64-bit CBC-MAC over
// the block's plaintext instructions (k2 for execution blocks, k3 for
// multiplexor blocks) stored as header words [M1, M2] (mux: [M1, M1, M2],
// one M1 copy per entry path), then the whole block CTR-encrypted with
// control-flow-dependent counters (MAC-then-Encrypt). The device
// recomputes the MAC over the decrypted instructions; a mismatch pulls
// reset with kMacMismatch.
#pragma once

#include "scheme/scheme.hpp"

namespace sofia::scheme {

inline constexpr std::string_view kCbcMacSchemeDescription =
    "SOFIA MAC-then-encrypt: per-block CBC-MAC header + CF-dependent CTR "
    "(the paper's design)";

class CbcMacScheme final : public ProtectionScheme {
 public:
  std::string_view name() const override { return "sofia-cbcmac"; }
  std::string_view describe() const override {
    return kCbcMacSchemeDescription;
  }
  SchemeTraits traits() const override {
    return {/*authenticated=*/true, /*uses_granularity=*/true};
  }
  std::unique_ptr<Sealer> make_sealer(const crypto::KeySet& keys,
                                      crypto::Granularity gran) const override;
  std::unique_ptr<Opener> make_opener(const crypto::KeySet& keys,
                                      std::uint16_t omega,
                                      crypto::Granularity gran) const override;
};

}  // namespace sofia::scheme
