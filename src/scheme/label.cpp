#include "scheme/label.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "support/error.hpp"

namespace sofia::scheme {

namespace {

// Minimal union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

LabelPlan assign_labels(const std::vector<IndirectSite>& sites) {
  LabelPlan plan;
  if (sites.empty()) return plan;

  // Dense index per distinct target entry word (ordered for determinism).
  std::map<std::uint32_t, std::size_t> index_of;
  for (const IndirectSite& site : sites)
    for (const std::uint32_t w : site.target_entry_words)
      index_of.emplace(w, index_of.size());

  // Two targets reachable from the same site share a class.
  UnionFind uf(index_of.size());
  for (const IndirectSite& site : sites) {
    if (site.target_entry_words.empty())
      throw TransformError("label: indirect site at word " +
                           std::to_string(site.exit_word) +
                           " has an empty target set");
    const std::size_t first = index_of.at(site.target_entry_words.front());
    for (const std::uint32_t w : site.target_entry_words)
      uf.unite(first, index_of.at(w));
  }

  // Number the classes by their smallest member's entry word address.
  std::map<std::size_t, std::uint32_t> class_min;  // root -> min entry word
  for (const auto& [word, idx] : index_of) {
    const std::size_t root = uf.find(idx);
    auto [it, inserted] = class_min.emplace(root, word);
    if (!inserted) it->second = std::min(it->second, word);
  }
  std::vector<std::pair<std::uint32_t, std::size_t>> order;  // (min, root)
  for (const auto& [root, min_word] : class_min) order.emplace_back(min_word, root);
  std::sort(order.begin(), order.end());
  if (order.size() > 255)
    throw TransformError("label: " + std::to_string(order.size()) +
                         " target-set classes exceed the 255-label limit");
  std::unordered_map<std::size_t, std::uint8_t> label_of_root;
  for (std::size_t i = 0; i < order.size(); ++i)
    label_of_root[order[i].second] = static_cast<std::uint8_t>(i + 1);

  for (const auto& [word, idx] : index_of)
    plan.entry_label[word] = label_of_root.at(uf.find(idx));
  for (const IndirectSite& site : sites)
    plan.exit_label[site.exit_word] =
        plan.entry_label.at(site.target_entry_words.front());
  return plan;
}

}  // namespace sofia::scheme
