// Forward-edge gating variant of the paper's design ("flta"): same
// control-flow-dependent CTR encryption, but the second header word is a
// sealed *label word* L = [entry1 | entry2 | exit] carrying the block's
// target-set labels (scheme/label.hpp) instead of the second MAC half.
// The 64-bit CBC-MAC is computed over instructions ++ L and truncated to
// 32 bits (M1); L is therefore authenticated, and the device gates every
// indirect (non-ret jalr) transfer by checking source exit label ==
// target entry label — a mismatch or an unlabeled party resets with
// kTargetSetViolation. The backward edges keep the full counter binding;
// the forward-edge check trades 32 bits of MAC strength for a sound,
// statically-proved indirect-jump policy.
#pragma once

#include "scheme/scheme.hpp"

namespace sofia::scheme {

inline constexpr std::string_view kFltaSchemeDescription =
    "forward-edge gating: CF-dependent CTR + 32-bit CBC-MAC + sealed "
    "target-set labels checked on indirect transfers";

class FltaScheme final : public ProtectionScheme {
 public:
  std::string_view name() const override { return "flta"; }
  std::string_view describe() const override { return kFltaSchemeDescription; }
  SchemeTraits traits() const override {
    return {/*authenticated=*/true, /*uses_granularity=*/true,
            /*gates_indirect=*/true};
  }
  std::unique_ptr<Sealer> make_sealer(const crypto::KeySet& keys,
                                      crypto::Granularity gran) const override;
  std::unique_ptr<Opener> make_opener(const crypto::KeySet& keys,
                                      std::uint16_t omega,
                                      crypto::Granularity gran) const override;
};

}  // namespace sofia::scheme
