// Shared CTR-with-control-flow-counters block layout, used by every
// scheme that encrypts the standard [header | instructions] block shape
// with crypto::pack_counter keystreams (sofia-cbcmac and null encrypt the
// whole block this way; sponge reuses the per-word path for its header).
// Internal to src/scheme/.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/ctr.hpp"
#include "scheme/scheme.hpp"

namespace sofia::scheme::detail {

/// prevPC (word address) used to en/decrypt block word index `j` at
/// install time: word 0 binds to predecessor path 1, a multiplexor's
/// word 1 binds to path 2, everything else chains sequentially.
inline std::uint32_t seal_prev_word(const BlockInfo& info, std::uint32_t j) {
  if (j == 0) return info.pred1_word;
  if (info.is_mux && j == 1) return info.pred2_word;
  return info.base_word + j - 1;
}

/// CTR-encrypt a full block in place (toolchain side). Per-pair treats
/// multiplexor entry words as single-word granules (their predecessors
/// differ) and pairs everything else on even offsets.
void ctr_seal(const BlockInfo& info, std::vector<std::uint32_t>& words,
              const crypto::BlockCipher64& enc, std::uint16_t omega,
              crypto::Granularity gran);

/// CTR-decrypt the fetched words of a block (device side): fills
/// `out.plain` for every scheduled word and appends one OpSpan per cipher
/// operation, in issue order — the mirror image of ctr_seal for the
/// entered path.
void ctr_open(const EntryPath& path, std::uint32_t base_word,
              std::uint32_t prev_word, const std::vector<std::uint32_t>& raw,
              DeviceBlock& out, const crypto::BlockCipher64& enc,
              std::uint16_t omega, crypto::Granularity gran);

}  // namespace sofia::scheme::detail
