#include "cache/result_store.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "support/error.hpp"
#include "support/json.hpp"

namespace sofia::cache {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// KeyBuilder
// ---------------------------------------------------------------------------

namespace {

void put_u64_le(support::Sha256& h, std::uint64_t v) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  h.update(bytes, sizeof bytes);
}

}  // namespace

KeyBuilder::KeyBuilder(std::string_view domain) {
  prefix(domain, 0);
}

void KeyBuilder::prefix(std::string_view label, std::uint64_t size) {
  put_u64_le(hasher_, label.size());
  hasher_.update(label);
  put_u64_le(hasher_, size);
}

KeyBuilder& KeyBuilder::field(std::string_view label, std::string_view value) {
  prefix(label, value.size());
  hasher_.update(value);
  return *this;
}

KeyBuilder& KeyBuilder::field(std::string_view label,
                              const std::vector<std::uint8_t>& bytes) {
  prefix(label, bytes.size());
  hasher_.update(bytes);
  return *this;
}

KeyBuilder& KeyBuilder::field(std::string_view label, std::uint64_t value) {
  prefix(label, 8);
  put_u64_le(hasher_, value);
  return *this;
}

Key KeyBuilder::finish() { return hasher_.digest(); }

// ---------------------------------------------------------------------------
// Entry format
// ---------------------------------------------------------------------------

namespace {

std::string entry_header(const std::string& key_hex, std::string_view kind,
                         std::string_view payload) {
  json::Writer w(-1);
  w.begin_object();
  w.member("schema", kEntrySchema);
  w.member("key", key_hex);
  w.member("kind", kind);
  w.member("payload_bytes", static_cast<std::uint64_t>(payload.size()));
  w.member("payload_sha256", support::sha256_hex(payload));
  w.end_object();
  return w.str();
}

/// Parsed header fields, or an explanation of why there aren't any.
struct Header {
  std::string kind;
  std::uint64_t payload_bytes = 0;
  std::string payload_sha256;
  std::string key_hex;
};

/// Parse the header line (everything before the first '\n'); returns the
/// problem as a string, empty on success.
std::string parse_header(std::string_view line, Header& out) {
  try {
    const json::Value doc = json::parse(line);
    const auto* schema = doc.find("schema");
    if (schema == nullptr || schema->as_string("schema") != kEntrySchema)
      return "unrecognized entry schema";
    const auto* key = doc.find("key");
    const auto* kind = doc.find("kind");
    const auto* bytes = doc.find("payload_bytes");
    const auto* digest = doc.find("payload_sha256");
    if (key == nullptr || kind == nullptr || bytes == nullptr ||
        digest == nullptr)
      return "header is missing key/kind/payload_bytes/payload_sha256";
    out.key_hex = key->as_string("key");
    out.kind = kind->as_string("kind");
    out.payload_bytes = bytes->as_uint("payload_bytes");
    out.payload_sha256 = digest->as_string("payload_sha256");
    return "";
  } catch (const std::exception& e) {
    return std::string("header parse failed: ") + e.what();
  }
}

/// Read an entry file and validate everything that does not need the
/// caller's expectations (header shape, payload length, payload digest,
/// key-vs-filename agreement). Returns the problem, empty on success.
std::string read_entry(const fs::path& path, const std::string& expected_key,
                       Header& header, std::string& payload) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return "cannot open entry";
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return "read failed";
  const auto newline = contents.find('\n');
  if (newline == std::string::npos) return "truncated (no header line)";
  if (const auto problem =
          parse_header(std::string_view(contents).substr(0, newline), header);
      !problem.empty())
    return problem;
  if (header.key_hex != expected_key)
    return "header key does not match the entry's file name";
  payload = contents.substr(newline + 1);
  if (payload.size() != header.payload_bytes)
    return "payload is " + std::to_string(payload.size()) +
           " byte(s), header promises " +
           std::to_string(header.payload_bytes);
  if (support::sha256_hex(payload) != header.payload_sha256)
    return "payload digest mismatch (corrupt entry)";
  return "";
}

std::string unique_temp_name(const std::string& key_hex) {
  static std::atomic<std::uint64_t> counter{0};
#ifdef _WIN32
  const auto pid = static_cast<std::uint64_t>(_getpid());
#else
  const auto pid = static_cast<std::uint64_t>(::getpid());
#endif
  return ".tmp-" + key_hex.substr(0, 8) + "-" + std::to_string(pid) + "-" +
         std::to_string(counter.fetch_add(1));
}

}  // namespace

// ---------------------------------------------------------------------------
// ResultStore
// ---------------------------------------------------------------------------

struct ResultStore::Counters {
  std::mutex mutex;
  Stats stats;
};

ResultStore::ResultStore(std::filesystem::path root, WarnFn warn)
    : root_(std::move(root)),
      warn_(std::move(warn)),
      counters_(std::make_shared<Counters>()) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec)
    throw Error("cache: cannot create root '" + root_.string() +
                "': " + ec.message());
}

void ResultStore::warn(const std::string& message) const {
  if (warn_) warn_(message);
}

std::filesystem::path ResultStore::entry_path(const Key& key) const {
  const std::string hex = to_hex(key);
  return root_ / hex.substr(0, 2) /
         (hex + std::string(kEntryExtension));
}

std::optional<std::string> ResultStore::load(const Key& key,
                                             std::string_view kind) {
  const std::string hex = to_hex(key);
  const fs::path path = entry_path(key);
  const auto miss = [&](const std::string& why) -> std::optional<std::string> {
    if (!why.empty())
      warn("cache: entry " + hex.substr(0, 12) + "… is unusable (" + why +
           "); re-executing");
    const std::lock_guard<std::mutex> lock(counters_->mutex);
    ++counters_->stats.misses;
    return std::nullopt;
  };

  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return miss("");  // silent: never written

  Header header;
  std::string payload;
  if (const auto problem = read_entry(path, hex, header, payload);
      !problem.empty())
    return miss(problem);
  if (header.kind != kind)
    return miss("kind is '" + header.kind + "', expected '" +
                std::string(kind) + "'");

  // Touch the entry so LRU eviction (gc) sees the use; best-effort.
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);

  const std::lock_guard<std::mutex> lock(counters_->mutex);
  ++counters_->stats.hits;
  return payload;
}

void ResultStore::store(const Key& key, std::string_view kind,
                        std::string_view payload) {
  const std::string hex = to_hex(key);
  const fs::path path = entry_path(key);
  const auto fail = [&](const std::string& why) {
    warn("cache: could not store entry " + hex.substr(0, 12) + "… (" + why +
         ")");
    const std::lock_guard<std::mutex> lock(counters_->mutex);
    ++counters_->stats.failures;
  };

  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) return fail("mkdir: " + ec.message());

  // A unique temp file in the destination directory, so the final rename
  // is atomic on every POSIX filesystem.
  const fs::path tmp = path.parent_path() / unique_temp_name(hex);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return fail("cannot create temp file");
    const std::string header = entry_header(hex, kind, payload);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.put('\n');
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      return fail("write failed (disk full?)");
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm;
    fs::remove(tmp, rm);
    return fail("rename: " + ec.message());
  }
  const std::lock_guard<std::mutex> lock(counters_->mutex);
  ++counters_->stats.stored;
}

Stats ResultStore::stats() const {
  const std::lock_guard<std::mutex> lock(counters_->mutex);
  return counters_->stats;
}

std::unique_ptr<ResultStore> ResultStore::open(const std::string& dir,
                                               WarnFn warn) {
  std::string root = dir;
  if (root.empty()) {
    if (const char* env = std::getenv("SOFIA_CACHE");
        env != nullptr && env[0] != '\0')
      root = env;
  }
  if (root.empty()) return nullptr;
  return std::make_unique<ResultStore>(fs::path(root), std::move(warn));
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

namespace {

bool is_entry_file(const fs::directory_entry& entry) {
  return entry.is_regular_file() &&
         entry.path().extension() == kEntryExtension;
}

bool is_temp_file(const fs::directory_entry& entry) {
  return entry.is_regular_file() &&
         entry.path().filename().string().rfind(".tmp-", 0) == 0;
}

}  // namespace

std::vector<EntryInfo> scan(const std::filesystem::path& root) {
  std::vector<EntryInfo> entries;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!is_entry_file(*it)) continue;
    EntryInfo info;
    info.path = it->path();
    info.key_hex = it->path().stem().string();
    info.file_bytes = it->file_size(ec);
    if (ec) ec.clear();
    info.mtime = it->last_write_time(ec);
    if (ec) ec.clear();
    std::ifstream in(info.path, std::ios::binary);
    std::string line;
    if (std::getline(in, line)) {
      Header header;
      if (parse_header(line, header).empty()) {
        info.kind = header.kind;
        info.payload_bytes = header.payload_bytes;
        info.header_ok = true;
      }
    }
    entries.push_back(std::move(info));
  }
  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              return a.key_hex < b.key_hex;
            });
  return entries;
}

VerifyReport verify_entries(const std::filesystem::path& root) {
  VerifyReport report;
  for (const auto& info : scan(root)) {
    ++report.checked;
    Header header;
    std::string payload;
    const auto problem = read_entry(info.path, info.key_hex, header, payload);
    if (problem.empty()) {
      ++report.ok;
    } else {
      ++report.bad;
      report.problems.push_back(info.path.filename().string() + ": " +
                                problem);
    }
  }
  return report;
}

GcReport gc(const std::filesystem::path& root, std::uint64_t max_bytes) {
  GcReport report;
  std::error_code ec;

  // Stale temp files: anything a dead writer left behind. A live writer
  // holds its temp file for milliseconds; one minute of age is decisive.
  const auto now = fs::file_time_type::clock::now();
  for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!is_temp_file(*it)) continue;
    std::error_code fec;
    const auto mtime = it->last_write_time(fec);
    if (fec) continue;
    if (now - mtime > std::chrono::minutes(1)) {
      fs::remove(it->path(), fec);
      if (!fec) ++report.tmp_removed;
    }
  }

  auto entries = scan(root);
  std::uint64_t total = 0;
  for (const auto& e : entries) total += e.file_bytes;

  // Oldest-mtime first; load() touches entries, so this is LRU.
  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.key_hex < b.key_hex;
            });
  for (const auto& e : entries) {
    if (total <= max_bytes) {
      ++report.kept;
      report.kept_bytes += e.file_bytes;
      continue;
    }
    std::error_code rec;
    fs::remove(e.path, rec);
    if (rec) {
      ++report.kept;
      report.kept_bytes += e.file_bytes;
      continue;
    }
    total -= e.file_bytes;
    ++report.removed;
    report.removed_bytes += e.file_bytes;
  }
  return report;
}

}  // namespace sofia::cache
