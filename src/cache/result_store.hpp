// Content-addressed result cache — the persistence layer behind resumable
// sweeps and campaigns. Every entry is keyed by a SHA-256 digest over the
// *semantic inputs* of a job (device-profile fingerprint, hardened image
// bytes in their canonical serialization, the canonical SimConfig byte
// encoding the wire protocol ships, and the job seed), so two matrices that
// overlap on a cell share the entry, and any toolchain or config change
// that could alter the result changes the key.
//
// The store is a plain directory tree — root/<2-hex-prefix>/<64-hex>.sce —
// written atomically (unique temp file in the shard directory, then
// std::rename), so N coordinators or fleet workers can share one cache
// over NFS-ish filesystems without locks: concurrent writers of the same
// key race benignly (entries are deterministic; last rename wins), and a
// reader never observes a half-written entry. Corrupt, truncated or
// schema-mismatched entries are LOUD misses: a warning through the
// caller's sink, then re-execution — never a crash, never silent reuse.
//
// Entry format: one line of compact JSON metadata
//   {"schema":"sofia-cache-entry-v1","key":<hex>,"kind":...,
//    "payload_bytes":N,"payload_sha256":<hex>}
// then '\n', then exactly N raw payload bytes. The payload digest makes
// `sofia_cache verify` (and every load) a pure re-hash — no payload parse
// needed to prove integrity.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/hash.hpp"

namespace sofia::cache {

/// A cache key: the SHA-256 digest of the job's canonical input bytes.
using Key = support::Sha256Digest;

/// Lowercase-hex rendering (64 chars) — the entry's on-disk name.
inline std::string to_hex(const Key& key) { return support::to_hex(key); }

/// Incremental key derivation over labeled, length-prefixed fields. The
/// domain string versions the key schema (bump it and every old entry
/// becomes unreachable, which is the correct failure mode for a key-layout
/// change); the label + length prefix per field rules out ambiguity between
/// adjacent variable-length fields ("ab"+"c" vs "a"+"bc").
class KeyBuilder {
 public:
  explicit KeyBuilder(std::string_view domain);

  KeyBuilder& field(std::string_view label, std::string_view value);
  KeyBuilder& field(std::string_view label,
                    const std::vector<std::uint8_t>& bytes);
  KeyBuilder& field(std::string_view label, std::uint64_t value);

  Key finish();

 private:
  void prefix(std::string_view label, std::uint64_t size);

  support::Sha256 hasher_;
};

/// Per-store counters (monotonic; a snapshot, not a live view).
struct Stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;    ///< absent entries (silent) + corrupt (loud)
  std::uint64_t stored = 0;
  std::uint64_t failures = 0;  ///< store() attempts that could not land
};

/// Warning sink for loud misses and store failures (typically a line to
/// stderr, prefixed by the owning tool). Never called on a clean miss.
using WarnFn = std::function<void(const std::string&)>;

inline constexpr std::string_view kEntrySchema = "sofia-cache-entry-v1";
inline constexpr std::string_view kEntryExtension = ".sce";

class ResultStore {
 public:
  /// Open (creating directories as needed) a store rooted at `root`.
  /// Throws sofia::Error when the root cannot be created.
  explicit ResultStore(std::filesystem::path root, WarnFn warn = {});

  const std::filesystem::path& root() const { return root_; }

  /// Look up an entry. Returns the payload on an integrity-verified hit
  /// (and touches the entry's mtime, the LRU signal gc() evicts by);
  /// std::nullopt on a miss. An absent entry is a silent miss; a corrupt,
  /// truncated, wrong-kind or digest-mismatched one warns first.
  std::optional<std::string> load(const Key& key, std::string_view kind);

  /// Write an entry atomically (temp file + rename). Failures warn and
  /// count, but never throw — a full disk must not sink a sweep.
  void store(const Key& key, std::string_view kind, std::string_view payload);

  /// Route a message to this store's warning sink (payload-level decode
  /// problems discovered by callers belong in the same channel as the
  /// store's own integrity warnings).
  void warn(const std::string& message) const;

  Stats stats() const;

  /// Resolve the conventional CLI contract: a non-empty `dir` (the --cache
  /// flag) wins, else the SOFIA_CACHE environment variable, else no cache
  /// (nullptr). Throws sofia::Error when a resolved root cannot be created.
  static std::unique_ptr<ResultStore> open(const std::string& dir,
                                           WarnFn warn = {});

 private:
  std::filesystem::path entry_path(const Key& key) const;

  std::filesystem::path root_;
  WarnFn warn_;
  // Plain counters behind a mutex (load/store already do file I/O; the
  // lock is noise-level) — see result_store.cpp.
  struct Counters;
  std::shared_ptr<Counters> counters_;
};

// ---- maintenance (the sofia_cache CLI and tests) ---------------------------

/// One entry as seen by a directory scan: the header is parsed (cheap; one
/// line) but the payload is NOT re-hashed — see verify_entries().
struct EntryInfo {
  std::filesystem::path path;
  std::string key_hex;  ///< from the file name
  std::string kind;     ///< from the header ("" when the header is unreadable)
  std::uint64_t file_bytes = 0;
  std::uint64_t payload_bytes = 0;
  std::filesystem::file_time_type mtime{};
  bool header_ok = false;
};

/// Enumerate every entry under `root`, sorted by key for determinism.
/// Unreadable headers yield header_ok == false entries, never a throw.
std::vector<EntryInfo> scan(const std::filesystem::path& root);

struct VerifyReport {
  std::uint64_t checked = 0;
  std::uint64_t ok = 0;
  std::uint64_t bad = 0;
  std::vector<std::string> problems;  ///< one line per bad entry
};

/// Re-hash every entry's payload against its header and file name —
/// the full integrity sweep behind `sofia_cache verify`.
VerifyReport verify_entries(const std::filesystem::path& root);

struct GcReport {
  std::uint64_t kept = 0;
  std::uint64_t kept_bytes = 0;
  std::uint64_t removed = 0;
  std::uint64_t removed_bytes = 0;
  std::uint64_t tmp_removed = 0;  ///< stale temp files from dead writers
};

/// Evict least-recently-used entries (by mtime; load() touches it) until
/// the store's total entry bytes fit under `max_bytes`, and sweep stale
/// temp files. `sofia_cache gc --max-bytes N`.
GcReport gc(const std::filesystem::path& root, std::uint64_t max_bytes);

}  // namespace sofia::cache
