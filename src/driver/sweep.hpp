// Parallel experiment-sweep driver: the one engine behind sofia_sweep,
// sofia_report and the bench binaries that used to hand-roll the same
// workload × configuration loop. A SweepSpec names a cartesian matrix of
// workloads × ConfigPoints (transform options + SimConfig variants), which
// expands into a deterministic, index-ordered job list; run_sweep() executes
// the jobs on a std::thread pool and collects Measurements back in job
// order. Per-job seeds are a pure function of the job index, so results —
// and the JSON document to_json() renders — are byte-identical for any
// thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/measure.hpp"

namespace sofia::driver {

/// One configuration cell of the matrix: everything measure_workload needs
/// plus the cipher-unroll factor the hardware time model uses.
struct ConfigPoint {
  std::string name;  ///< short label, e.g. "per-word demand-driven"
  bench::MeasureOptions opts;
  int unroll_cycles = 2;  ///< hw::HwModel::sofia() design point

  /// Stable machine-readable fingerprint of every swept axis
  /// ("gran=per-pair alt=1 pipe=1 policy=8/4 cipher=RECTANGLE-80
  /// icache=4096x32 unroll=2").
  std::string fingerprint() const;
};

/// The paper-default configuration (pair-granular CTR, alternating 2-cycle
/// pipelined cipher, 4 KiB I-cache).
ConfigPoint paper_default_config();

struct SweepSpec {
  std::string name;                     ///< matrix name, lands in the JSON
  std::vector<std::string> workloads;   ///< registry names; empty = all
  std::vector<ConfigPoint> configs;     ///< at least one
  std::uint32_t size_override = 0;      ///< 0 = each workload's default_size
  /// Divide workload sizes by this factor (sofia_sweep --smoke and the
  /// ablation benches use it); sizes are clamped to >= 4.
  std::uint32_t size_divisor = 1;
  std::uint64_t base_seed = 1;
  /// When true, job i runs with seed base_seed + i (a pure function of the
  /// job index, independent of thread interleaving). When false every job
  /// uses base_seed — the mode for reproducing the paper's fixed-input
  /// numbers.
  bool vary_seed = false;

  /// All workload names resolved (expands the empty-means-all shorthand).
  std::vector<std::string> resolved_workloads() const;
};

/// One expanded cell: workloads-major, configs-minor, in spec order.
struct JobSpec {
  std::size_t index = 0;
  std::string workload;
  std::uint32_t size = 0;
  std::uint64_t seed = 0;
  ConfigPoint config;
};

/// Deterministic matrix expansion (also fixes each job's seed).
std::vector<JobSpec> expand_jobs(const SweepSpec& spec);

struct JobResult {
  JobSpec job;
  bool ok = false;
  std::string error;       ///< what() of the failure when !ok
  bench::Measurement m;    ///< valid only when ok
};

struct SweepResult {
  std::string sweep_name;
  std::vector<JobResult> jobs;  ///< in job-index order, one per matrix cell
  double wall_seconds = 0;      ///< measured, NOT part of the JSON document
  unsigned threads_used = 1;    ///< ditto

  bool all_ok() const;
};

/// Called after each job completes (serialized by the driver; safe to
/// print from). Jobs may finish out of index order.
using ProgressFn = std::function<void(const JobResult&)>;

/// Execute the matrix on `threads` worker threads (clamped to [1, jobs]).
/// A job failure (functional mismatch, transform error) is captured in its
/// JobResult, never thrown — one broken cell must not sink a whole sweep.
SweepResult run_sweep(const SweepSpec& spec, unsigned threads,
                      const ProgressFn& progress = {});

/// Render the sweep as a deterministic JSON document (schema documented in
/// the README): sweep name + one record per job with the config
/// fingerprint, cycle/text numbers and overhead percentages. Wall-clock
/// and thread count are deliberately excluded so documents are
/// byte-identical across thread counts.
std::string to_json(const SweepResult& result);

/// Built-in matrices, selectable as sofia_sweep --matrix NAME.
const std::vector<std::string>& matrix_names();

/// Look up a built-in matrix; throws sofia::Error for unknown names.
SweepSpec matrix(std::string_view name);

/// Shrink a spec to a seconds-long smoke run (three small workloads,
/// reduced sizes) while keeping its config axes.
SweepSpec smoke(SweepSpec spec);

}  // namespace sofia::driver
