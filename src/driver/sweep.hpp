// Parallel experiment-sweep driver: the one engine behind sofia_sweep,
// sofia_report and the bench binaries that used to hand-roll the same
// workload × configuration loop. A SweepSpec names a cartesian matrix of
// workloads × ConfigPoints (transform options + SimConfig variants), which
// expands into a deterministic, index-ordered job list; run_sweep() executes
// the jobs on a std::thread pool and collects Measurements back in job
// order. Per-job seeds are a pure function of the job index, so results —
// and the JSON document to_json() renders — are byte-identical for any
// thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/result_store.hpp"
#include "support/measure.hpp"
#include "verify/verify.hpp"

namespace sofia::driver {

/// One configuration cell of the matrix: a DeviceProfile (cipher, keys,
/// policy, granularity) + simulator timing knobs + the cipher-unroll factor
/// the hardware time model uses.
struct ConfigPoint {
  std::string name;  ///< short label, e.g. "per-word demand-driven"
  bench::MeasureOptions opts;

  /// The device side of the cell (opts.profile, spelled out because it is
  /// the swept axis most matrices vary).
  pipeline::DeviceProfile& profile() { return opts.profile; }
  const pipeline::DeviceProfile& profile() const { return opts.profile; }

  int unroll_cycles = 2;  ///< hw::HwModel::sofia() design point

  /// Stable machine-readable fingerprint of every swept axis
  /// ("gran=per-pair alt=1 pipe=1 policy=8/4 cipher=RECTANGLE-80
  /// icache=4096x32 unroll=2 scheme=sofia-cbcmac backend=cycle").
  std::string fingerprint() const;
};

/// The paper-default configuration (pair-granular CTR, alternating 2-cycle
/// pipelined cipher, 4 KiB I-cache).
ConfigPoint paper_default_config();

struct SweepSpec {
  std::string name;                     ///< matrix name, lands in the JSON
  std::vector<std::string> workloads;   ///< registry names; empty = all
  std::vector<ConfigPoint> configs;     ///< at least one
  std::uint32_t size_override = 0;      ///< 0 = each workload's default_size
  /// Divide workload sizes by this factor (sofia_sweep --smoke and the
  /// ablation benches use it); sizes are clamped to >= 4.
  std::uint32_t size_divisor = 1;
  std::uint64_t base_seed = 1;
  /// When true, job i runs with seed base_seed + i (a pure function of the
  /// job index, independent of thread interleaving). When false every job
  /// uses base_seed — the mode for reproducing the paper's fixed-input
  /// numbers.
  bool vary_seed = false;
  /// Statically lint each job's hardened image (Pipeline::lint()) before
  /// the device runs; a finding fails the job early with the findings in
  /// its JSON record instead of wasting a vanilla+SOFIA execution pair.
  bool lint = false;

  /// All workload names resolved (expands the empty-means-all shorthand).
  std::vector<std::string> resolved_workloads() const;
};

/// One expanded cell: workloads-major, configs-minor, in spec order.
struct JobSpec {
  std::size_t index = 0;
  std::string workload;
  std::uint32_t size = 0;
  std::uint64_t seed = 0;
  ConfigPoint config;
  bool lint = false;  ///< run the static lint prefilter (SweepSpec::lint)
};

/// Deterministic matrix expansion (also fixes each job's seed).
std::vector<JobSpec> expand_jobs(const SweepSpec& spec);

struct JobResult {
  JobSpec job;
  bool ok = false;
  std::string error;       ///< what() of the failure when !ok
  bench::Measurement m;    ///< valid only when ok
  /// Error-severity findings when the lint prefilter failed the job; they
  /// land in the job's JSON record as a "lint" array.
  std::vector<verify::Finding> lint;
  /// Served from the result cache (the simulations were skipped). Not part
  /// of the JSON document — cached and fresh runs must stay byte-identical.
  bool from_cache = false;
};

/// One machine's slice of a multi-machine sweep: run only the jobs with
/// index ≡ index (mod count). The default (0 of 1) is the whole matrix.
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;

  bool is_whole() const { return count <= 1; }
  /// Throws sofia::Error when count == 0 or index >= count.
  void validate() const;
  /// Parse the CLI "K/N" syntax.
  static ShardSpec parse(std::string_view text);
};

struct SweepResult {
  std::string sweep_name;
  std::size_t total_jobs = 0;   ///< full matrix size (== jobs.size() unsharded)
  ShardSpec shard;              ///< which slice `jobs` holds
  std::vector<JobResult> jobs;  ///< in job-index order, one per executed cell
  double wall_seconds = 0;      ///< measured, NOT part of the JSON document
  unsigned threads_used = 1;    ///< ditto

  bool all_ok() const;
  /// Jobs served from the result cache (0 without one).
  std::size_t cached_jobs() const;
};

/// Called after each job completes (serialized by the driver; safe to
/// print from). Jobs may finish out of index order.
using ProgressFn = std::function<void(const JobResult&)>;

/// Execute the matrix on `threads` worker threads (clamped to [1, jobs]).
/// A job failure (functional mismatch, transform error) is captured in its
/// JobResult, never thrown — one broken cell must not sink a whole sweep.
/// With a non-trivial `shard`, only that slice of the job list runs; seeds
/// are fixed at expansion time, so shard results are identical to the same
/// jobs' results in an unsharded run.
///
/// With a non-null `store`, each job's result is looked up by the digest
/// of its semantic inputs (profile fingerprint, hardened image bytes,
/// canonical SimConfig encoding, seed) before the device runs, and stored
/// after them — interrupted or repeated sweeps resume from disk, and the
/// rendered document stays byte-identical to an uncached run.
SweepResult run_sweep(const SweepSpec& spec, unsigned threads,
                      const ProgressFn& progress = {}, ShardSpec shard = {},
                      cache::ResultStore* store = nullptr);

/// Render the sweep as a deterministic JSON document (schema documented in
/// the README): sweep name + one record per job with its matrix index, the
/// config fingerprint, cycle/text numbers and overhead percentages.
/// Sharded results additionally carry a "shard" member. Wall-clock and
/// thread count are deliberately excluded so documents are byte-identical
/// across thread counts.
std::string to_json(const SweepResult& result);

/// Merge sharded sweep documents back into the canonical unsharded one:
/// validates schema/sweep-name/job-count agreement, requires every matrix
/// index exactly once across the inputs, and re-emits the records in index
/// order — byte-identical to what an unsharded run writes. Throws
/// sofia::Error on overlap, gaps or mismatched documents.
std::string merge_json(const std::vector<std::string>& documents);

/// Built-in matrices, selectable as sofia_sweep --matrix NAME.
const std::vector<std::string>& matrix_names();

/// Look up a built-in matrix; throws sofia::Error for unknown names.
SweepSpec matrix(std::string_view name);

/// Shrink a spec to a seconds-long smoke run (three small workloads,
/// reduced sizes) while keeping its config axes.
SweepSpec smoke(SweepSpec spec);

/// Point every config cell at an execution backend (sim::backend_registry()
/// key; the sofia_sweep/sofia_report --backend flag). Validates via
/// DeviceProfile::parse_backend (throws for unknown names); the backend
/// lands in each job's fingerprint and the per-job "backend" JSON member.
SweepSpec with_backend(SweepSpec spec, std::string_view backend);

/// Point every config cell at a protection scheme (scheme::scheme_registry()
/// key; the sofia_sweep/sofia_report --scheme flag). Validates via
/// DeviceProfile::parse_scheme (throws for unknown names); the scheme lands
/// in each job's fingerprint and the per-job "scheme" JSON member. Note the
/// built-in "scheme" matrix already varies this axis per cell — forcing it
/// there would collapse the matrix, which is why the CLI flag is optional.
SweepSpec with_scheme(SweepSpec spec, std::string_view scheme);

}  // namespace sofia::driver
