#include "driver/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "assembler/image_io.hpp"
#include "driver/pool.hpp"
#include "remote/codec.hpp"
#include "scheme/scheme.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace sofia::driver {

namespace {

std::string bool01(bool b) { return b ? "1" : "0"; }

}  // namespace

std::string ConfigPoint::fingerprint() const {
  const auto& p = opts.profile;
  const auto& c = opts.config;
  std::string fp;
  fp += "gran=";
  fp += crypto::to_string(p.granularity);
  fp += " alt=" + bool01(c.cipher.alternate);
  fp += " pipe=" + bool01(c.cipher.pipelined);
  fp += " lat=" + std::to_string(c.cipher.latency);
  fp += " policy=" + std::to_string(p.policy.words_per_block) + "/" +
        std::to_string(p.policy.store_min_word);
  fp += " cipher=";
  fp += crypto::to_string(p.cipher);
  if (p.key_source == pipeline::KeySource::kSeed)
    fp += " keys=seed:" + std::to_string(p.key_seed);
  fp += " icache=" + std::to_string(c.icache.size_bytes) + "x" +
        std::to_string(c.icache.line_bytes);
  fp += " unroll=" + std::to_string(unroll_cycles);
  fp += " scheme=" + p.scheme;
  fp += " backend=" + p.backend;
  return fp;
}

ConfigPoint paper_default_config() {
  ConfigPoint p;
  p.name = "paper-default";
  p.opts = bench::default_measure_options();
  p.unroll_cycles = 2;
  return p;
}

std::vector<std::string> SweepSpec::resolved_workloads() const {
  if (!workloads.empty()) return workloads;
  std::vector<std::string> names;
  for (const auto& spec : workloads::all_workloads()) names.push_back(spec.name);
  return names;
}

std::vector<JobSpec> expand_jobs(const SweepSpec& spec) {
  std::vector<JobSpec> jobs;
  for (const auto& name : spec.resolved_workloads()) {
    const auto& wl = workloads::workload(name);  // throws for unknown names
    std::uint32_t size = spec.size_override ? spec.size_override : wl.default_size;
    size = std::max(4u, size / std::max(1u, spec.size_divisor));
    for (const auto& config : spec.configs) {
      JobSpec job;
      job.index = jobs.size();
      job.workload = name;
      job.size = size;
      job.seed = spec.vary_seed ? spec.base_seed + job.index : spec.base_seed;
      job.config = config;
      job.lint = spec.lint;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

bool SweepResult::all_ok() const {
  return std::all_of(jobs.begin(), jobs.end(),
                     [](const JobResult& r) { return r.ok; });
}

std::size_t SweepResult::cached_jobs() const {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(),
                    [](const JobResult& r) { return r.from_cache; }));
}

void ShardSpec::validate() const {
  if (count == 0) throw Error("shard: count must be >= 1");
  if (index >= count)
    throw Error("shard: index " + std::to_string(index) +
                " out of range for " + std::to_string(count) + " shard(s)");
}

ShardSpec ShardSpec::parse(std::string_view text) {
  const auto slash = text.find('/');
  const auto parse_num = [&](std::string_view part) -> std::uint32_t {
    std::uint64_t v = 0;
    if (!cli::parse_number(part, v) || v > 0xFFFFFFFFull)
      throw Error("shard: expected K/N with K and N in [0, 2^32), got '" +
                  std::string(text) + "'");
    return static_cast<std::uint32_t>(v);
  };
  if (slash == std::string_view::npos)
    throw Error("shard: expected K/N syntax, got '" + std::string(text) + "'");
  ShardSpec shard;
  shard.index = parse_num(text.substr(0, slash));
  shard.count = parse_num(text.substr(slash + 1));
  shard.validate();
  return shard;
}

namespace {

// ---- result-cache payload codec -------------------------------------------
//
// The cache stores the *semantic* outcome of a job (measurement numbers,
// or the error + lint findings), never the rendered sweep record: the same
// semantic cell can appear at different matrix indices and under different
// config labels, and the document renderer must stay the single source of
// formatting so cached and fresh runs are byte-identical.

constexpr std::string_view kJobKind = "sweep-job";
constexpr std::string_view kJobPayloadSchema = "sofia-cache-sweep-job-v1";

void stats_to_json(const sim::SimStats& s, json::Writer& w) {
  w.begin_object();
  w.member("cycles", s.cycles);
  w.member("insts", s.insts);
  w.member("nops", s.nops);
  w.member("loads", s.loads);
  w.member("stores", s.stores);
  w.member("branches", s.branches);
  w.member("taken", s.taken);
  w.member("icache_hits", s.icache_hits);
  w.member("icache_misses", s.icache_misses);
  w.member("fetch_words", s.fetch_words);
  w.member("mac_words", s.mac_words);
  w.member("ctr_ops", s.ctr_ops);
  w.member("cbc_ops", s.cbc_ops);
  w.member("blocks_fetched", s.blocks_fetched);
  w.member("mac_verifications", s.mac_verifications);
  w.member("store_gate_stalls", s.store_gate_stalls);
  w.member("queue_empty_cycles", s.queue_empty_cycles);
  w.member("exec_stall_cycles", s.exec_stall_cycles);
  w.end_object();
}

std::uint64_t req_uint(const json::Value& v, std::string_view key) {
  const auto* m = v.find(key);
  if (m == nullptr)
    throw Error("cache payload: missing '" + std::string(key) + "'");
  return m->as_uint(key);
}

const std::string& req_string(const json::Value& v, std::string_view key) {
  const auto* m = v.find(key);
  if (m == nullptr)
    throw Error("cache payload: missing '" + std::string(key) + "'");
  return m->as_string(key);
}

std::int64_t req_int(const json::Value& v, std::string_view key) {
  const auto* m = v.find(key);
  if (m == nullptr || m->kind != json::Value::Kind::kNumber)
    throw Error("cache payload: missing integer '" + std::string(key) + "'");
  return std::stoll(m->number);
}

sim::SimStats stats_from_json(const json::Value& v) {
  sim::SimStats s;
  s.cycles = req_uint(v, "cycles");
  s.insts = req_uint(v, "insts");
  s.nops = req_uint(v, "nops");
  s.loads = req_uint(v, "loads");
  s.stores = req_uint(v, "stores");
  s.branches = req_uint(v, "branches");
  s.taken = req_uint(v, "taken");
  s.icache_hits = req_uint(v, "icache_hits");
  s.icache_misses = req_uint(v, "icache_misses");
  s.fetch_words = req_uint(v, "fetch_words");
  s.mac_words = req_uint(v, "mac_words");
  s.ctr_ops = req_uint(v, "ctr_ops");
  s.cbc_ops = req_uint(v, "cbc_ops");
  s.blocks_fetched = req_uint(v, "blocks_fetched");
  s.mac_verifications = req_uint(v, "mac_verifications");
  s.store_gate_stalls = req_uint(v, "store_gate_stalls");
  s.queue_empty_cycles = req_uint(v, "queue_empty_cycles");
  s.exec_stall_cycles = req_uint(v, "exec_stall_cycles");
  return s;
}

std::string encode_job_payload(const JobResult& r) {
  json::Writer w(-1);
  w.begin_object();
  w.member("schema", kJobPayloadSchema);
  w.member("ok", r.ok);
  if (!r.ok) {
    w.member("error", r.error);
    w.key("lint").begin_array();
    for (const auto& f : r.lint) {
      w.begin_object();
      w.member("rule", verify::to_string(f.rule));
      w.member("severity", verify::to_string(f.severity));
      w.member("block", f.block);
      w.member("insn", f.insn);
      w.member("message", f.message);
      w.end_object();
    }
    w.end_array();
  } else {
    w.key("m").begin_object();
    w.member("name", r.m.name);
    w.member("vanilla_text_bytes", r.m.vanilla_text_bytes);
    w.member("sofia_text_bytes", r.m.sofia_text_bytes);
    w.member("vanilla_cycles", r.m.vanilla_cycles);
    w.member("sofia_cycles", r.m.sofia_cycles);
    w.key("vanilla_stats");
    stats_to_json(r.m.vanilla_stats, w);
    w.key("sofia_stats");
    stats_to_json(r.m.sofia_stats, w);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

verify::Rule parse_rule(const std::string& name) {
  for (const auto& info : verify::rule_catalog())
    if (info.name == name) return info.rule;
  throw Error("cache payload: unknown lint rule '" + name + "'");
}

verify::Severity parse_severity(const std::string& name) {
  for (const auto s : {verify::Severity::kNote, verify::Severity::kWarning,
                       verify::Severity::kError})
    if (verify::to_string(s) == name) return s;
  throw Error("cache payload: unknown severity '" + name + "'");
}

/// Decode a cached payload into `r` (everything but `job`, which the
/// caller owns). Returns false — leaving `r` untouched — on any mismatch,
/// so an undecodable entry degrades to a miss, never a crash.
bool decode_job_payload(const std::string& payload, JobResult& r) {
  try {
    const json::Value doc = json::parse(payload);
    const auto* schema = doc.find("schema");
    if (schema == nullptr || schema->as_string("schema") != kJobPayloadSchema)
      return false;
    JobResult out;
    out.job = r.job;
    const auto* ok = doc.find("ok");
    if (ok == nullptr || ok->kind != json::Value::Kind::kBool) return false;
    out.ok = ok->boolean;
    if (!out.ok) {
      out.error = req_string(doc, "error");
      const auto* lint = doc.find("lint");
      if (lint == nullptr) return false;
      for (const auto& jf : lint->as_array("lint")) {
        verify::Finding f;
        f.rule = parse_rule(req_string(jf, "rule"));
        f.severity = parse_severity(req_string(jf, "severity"));
        f.block = req_int(jf, "block");
        f.insn = req_int(jf, "insn");
        f.message = req_string(jf, "message");
        out.lint.push_back(std::move(f));
      }
    } else {
      const auto* m = doc.find("m");
      if (m == nullptr) return false;
      out.m.name = req_string(*m, "name");
      out.m.vanilla_text_bytes =
          static_cast<std::uint32_t>(req_uint(*m, "vanilla_text_bytes"));
      out.m.sofia_text_bytes =
          static_cast<std::uint32_t>(req_uint(*m, "sofia_text_bytes"));
      out.m.vanilla_cycles = req_uint(*m, "vanilla_cycles");
      out.m.sofia_cycles = req_uint(*m, "sofia_cycles");
      const auto* vs = m->find("vanilla_stats");
      const auto* ss = m->find("sofia_stats");
      if (vs == nullptr || ss == nullptr) return false;
      out.m.vanilla_stats = stats_from_json(*vs);
      out.m.sofia_stats = stats_from_json(*ss);
    }
    r = std::move(out);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// The content address of one job: everything that can change its result.
/// The hardened image bytes are the load-bearing field — they capture the
/// whole toolchain (assembler, transform, scheme, keys, layout); profile
/// fingerprint, canonical SimConfig encoding (shared with the remote wire
/// protocol) and the seed cover the device and harness side.
cache::Key job_key(const JobSpec& job, pipeline::Pipeline& p) {
  cache::KeyBuilder kb("sofia-cache-key-v1/sweep-job");
  kb.field("fingerprint", job.config.fingerprint());
  kb.field("image", assembler::serialize_image(p.hardened().image));
  kb.field("config", remote::encode_config(p.effective_sim_config()));
  kb.field("workload", job.workload);
  kb.field("seed", job.seed);
  kb.field("size", job.size);
  kb.field("lint", job.lint ? 1 : 0);
  return kb.finish();
}

JobResult run_job(const JobSpec& job, cache::ResultStore* store) {
  JobResult result;
  result.job = job;
  cache::Key key{};
  bool have_key = false;
  try {
    const auto& wl = workloads::workload(job.workload);
    auto p = pipeline::Pipeline::from_workload(wl, job.seed, job.size,
                                               job.config.opts.profile);
    p.set_sim_config(job.config.opts.config);
    p.set_memory_layout(job.config.opts.mem);
    if (store != nullptr) {
      // Key derivation runs the transform (cheap) but neither device run
      // (the expensive part a hit skips).
      key = job_key(job, p);
      have_key = true;
      if (auto payload = store->load(key, kJobKind)) {
        if (decode_job_payload(*payload, result)) {
          result.from_cache = true;
          return result;
        }
        store->warn("cache: sweep-job payload for job " +
                    std::to_string(job.index) +
                    " is undecodable; re-executing");
      }
    }
    if (job.lint) {
      // Lint prefilter: verify the hardened image statically and fail the
      // job before either device run; the same session then measures, so
      // the transform is not repeated.
      const verify::Report report = p.lint();
      if (!report.clean()) {
        for (const auto& f : report.findings)
          if (f.severity == verify::Severity::kError)
            result.lint.push_back(f);
        result.error =
            "lint: " + std::to_string(result.lint.size()) +
            " error-severity finding(s), first: " +
            std::string(verify::to_string(result.lint.front().rule));
        if (store != nullptr && have_key)
          store->store(key, kJobKind, encode_job_payload(result));
        return result;
      }
    }
    result.m = p.measure();
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  // Measurements AND deterministic failures (functional mismatches, lint)
  // are cacheable; only jobs that died before a key existed are not.
  if (store != nullptr && have_key)
    store->store(key, kJobKind, encode_job_payload(result));
  return result;
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec, unsigned threads,
                      const ProgressFn& progress, ShardSpec shard,
                      cache::ResultStore* store) {
  shard.validate();
  const auto all_jobs = expand_jobs(spec);
  std::vector<JobSpec> jobs;
  jobs.reserve(all_jobs.size());
  for (const auto& job : all_jobs)
    if (job.index % shard.count == shard.index) jobs.push_back(job);

  SweepResult result;
  result.sweep_name = spec.name;
  result.total_jobs = all_jobs.size();
  result.shard = shard;
  result.jobs.resize(jobs.size());

  const auto t0 = std::chrono::steady_clock::now();

  // Each worker claims the next unclaimed job index and writes its result
  // into the job's own slot (driver::for_each_index), so the output order
  // (and the JSON rendered from it) never depends on thread interleaving.
  std::mutex progress_mutex;
  result.threads_used =
      for_each_index(jobs.size(), threads, [&](std::size_t i) {
        result.jobs[i] = run_job(jobs[i], store);
        if (progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          progress(result.jobs[i]);
        }
      });

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

std::string to_json(const SweepResult& result) {
  const hw::HwModel model;
  json::Writer w(2);
  w.begin_object();
  w.member("schema", "sofia-sweep-v5");
  w.member("sweep", result.sweep_name);
  w.member("job_count", static_cast<std::uint64_t>(
                            result.total_jobs ? result.total_jobs
                                              : result.jobs.size()));
  if (!result.shard.is_whole())
    w.member("shard", std::to_string(result.shard.index) + "/" +
                          std::to_string(result.shard.count));
  w.key("jobs").begin_array();
  for (const auto& r : result.jobs) {
    w.begin_object();
    w.member("index", static_cast<std::uint64_t>(r.job.index));
    w.member("workload", r.job.workload);
    w.member("config", r.job.config.name);
    w.member("scheme", r.job.config.opts.profile.scheme);
    w.member("backend", r.job.config.opts.profile.backend);
    w.member("fingerprint", r.job.config.fingerprint());
    w.member("seed", r.job.seed);
    w.member("size", r.job.size);
    w.member("ok", r.ok);
    if (!r.ok) {
      w.member("error", r.error);
      if (!r.lint.empty()) {
        w.key("lint").begin_array();
        for (const auto& f : r.lint) {
          w.begin_object();
          w.member("rule", verify::to_string(f.rule));
          w.member("severity", verify::to_string(f.severity));
          w.member("block", static_cast<std::int64_t>(f.block));
          w.member("insn", static_cast<std::int64_t>(f.insn));
          w.member("message", f.message);
          w.end_object();
        }
        w.end_array();
      }
    } else {
      w.key("vanilla").begin_object();
      w.member("cycles", r.m.vanilla_cycles);
      w.member("text_bytes", r.m.vanilla_text_bytes);
      w.end_object();
      w.key("sofia").begin_object();
      w.member("cycles", r.m.sofia_cycles);
      w.member("text_bytes", r.m.sofia_text_bytes);
      w.member("nops", r.m.sofia_stats.nops);
      w.member("ctr_ops", r.m.sofia_stats.ctr_ops);
      w.member("cbc_ops", r.m.sofia_stats.cbc_ops);
      w.member("icache_misses", r.m.sofia_stats.icache_misses);
      w.end_object();
      w.key("overhead").begin_object();
      w.member("size_ratio", r.m.size_ratio());
      w.member("cycles_pct", r.m.cycle_overhead_pct());
      w.member("time_pct", r.m.time_overhead_pct(model, r.job.config.unroll_cycles));
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string doc = w.str();
  doc += '\n';
  return doc;
}

std::string merge_json(const std::vector<std::string>& documents) {
  if (documents.empty()) throw Error("merge: no input documents");

  std::string sweep_name;
  std::uint64_t total = 0;
  std::vector<const json::Value*> by_index;
  // Keep the parsed trees alive while by_index points into them.
  std::vector<json::Value> parsed;
  parsed.reserve(documents.size());

  for (std::size_t d = 0; d < documents.size(); ++d) {
    parsed.push_back(json::parse(documents[d]));
    const auto& doc = parsed.back();
    const auto label = "document " + std::to_string(d);
    const auto* schema = doc.find("schema");
    if (schema == nullptr || schema->as_string("schema") != "sofia-sweep-v5")
      throw Error("merge: " + label + " is not a sofia-sweep-v5 document");
    const auto* sweep = doc.find("sweep");
    const auto* count = doc.find("job_count");
    const auto* jobs = doc.find("jobs");
    if (sweep == nullptr || count == nullptr || jobs == nullptr)
      throw Error("merge: " + label + " is missing sweep/job_count/jobs");
    if (d == 0) {
      sweep_name = sweep->as_string("sweep");
      total = count->as_uint("job_count");
      by_index.assign(total, nullptr);
    } else {
      if (sweep->as_string("sweep") != sweep_name)
        throw Error("merge: " + label + " is from sweep '" +
                    sweep->as_string("sweep") + "', expected '" + sweep_name +
                    "'");
      if (count->as_uint("job_count") != total)
        throw Error("merge: " + label + " disagrees on job_count");
    }
    for (const auto& job : jobs->as_array("jobs")) {
      const auto* index = job.find("index");
      if (index == nullptr) throw Error("merge: job record without index");
      const std::uint64_t i = index->as_uint("index");
      if (i >= total)
        throw Error("merge: job index " + std::to_string(i) +
                    " out of range for job_count " + std::to_string(total));
      if (by_index[i] != nullptr)
        throw Error("merge: job index " + std::to_string(i) +
                    " appears in more than one document");
      by_index[i] = &job;
    }
  }

  for (std::uint64_t i = 0; i < total; ++i)
    if (by_index[i] == nullptr)
      throw Error("merge: job index " + std::to_string(i) +
                  " is missing from the inputs");

  // Re-emit the canonical unsharded document: identical member order and
  // number text to what to_json() writes, so merged == unsharded, byte for
  // byte.
  json::Writer w(2);
  w.begin_object();
  w.member("schema", "sofia-sweep-v5");
  w.member("sweep", sweep_name);
  w.member("job_count", total);
  w.key("jobs").begin_array();
  for (const auto* job : by_index) job->write(w);
  w.end_array();
  w.end_object();
  std::string doc = w.str();
  doc += '\n';
  return doc;
}

// ---------------------------------------------------------------------------
// Built-in matrices
// ---------------------------------------------------------------------------

namespace {

SweepSpec suite_overhead_matrix() {
  SweepSpec spec;
  spec.name = "suite-overhead";
  spec.configs = {paper_default_config()};
  return spec;
}

SweepSpec granularity_matrix() {
  SweepSpec spec;
  spec.name = "granularity";
  spec.size_divisor = 2;  // the ablation's historical working set
  const struct {
    const char* name;
    crypto::Granularity gran;
    bool alternate;
  } points[] = {
      {"per-pair alternating (paper)", crypto::Granularity::kPerPair, true},
      {"per-pair demand-driven", crypto::Granularity::kPerPair, false},
      {"per-word alternating (Alg.1)", crypto::Granularity::kPerWord, true},
      {"per-word demand-driven", crypto::Granularity::kPerWord, false},
  };
  for (const auto& p : points) {
    ConfigPoint c = paper_default_config();
    c.name = p.name;
    c.opts.profile.granularity = p.gran;
    c.opts.config.cipher.alternate = p.alternate;
    spec.configs.push_back(std::move(c));
  }
  return spec;
}

SweepSpec blockpolicy_matrix() {
  SweepSpec spec;
  spec.name = "blockpolicy";
  spec.size_divisor = 2;
  ConfigPoint paper = paper_default_config();
  paper.name = "8-word block, stores>=4 (paper)";
  ConfigPoint small = paper_default_config();
  small.name = "6-word block, unrestricted (Fig.5)";
  small.opts.profile.policy = xform::BlockPolicy::small_unrestricted();
  spec.configs = {paper, small};
  return spec;
}

SweepSpec cipher_matrix() {
  SweepSpec spec;
  spec.name = "cipher";
  spec.size_divisor = 2;
  ConfigPoint rect = paper_default_config();
  rect.name = "RECTANGLE-80 (paper)";
  ConfigPoint speck = paper_default_config();
  speck.name = "SPECK-64/128";
  speck.opts.profile.cipher = crypto::CipherKind::kSpeck64_128;
  spec.configs = {rect, speck};
  return spec;
}

SweepSpec icache_matrix() {
  SweepSpec spec;
  spec.name = "icache";
  spec.workloads = {"adpcm_encode", "adpcm_decode"};
  spec.size_override = 1024;
  for (const std::uint32_t bytes : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    ConfigPoint c = paper_default_config();
    c.name = std::to_string(bytes) + " B I-cache";
    c.opts.config.icache.size_bytes = bytes;
    spec.configs.push_back(std::move(c));
  }
  return spec;
}

SweepSpec unroll_matrix() {
  SweepSpec spec;
  spec.name = "unroll";
  spec.workloads = {"adpcm_encode"};
  spec.size_override = 4096;
  for (const int unroll : {1, 2, 4, 7, 13, 26}) {
    ConfigPoint c = paper_default_config();
    c.name = std::to_string(unroll) + "-cycle cipher" +
             (unroll == 2 ? " (paper)" : "");
    c.unroll_cycles = unroll;
    c.opts.config.cipher.latency = static_cast<std::uint32_t>(unroll);
    // Deep (many-cycle) cipher datapaths are iterative, not pipelined.
    c.opts.config.cipher.pipelined = unroll <= 2;
    spec.configs.push_back(std::move(c));
  }
  return spec;
}

SweepSpec scheme_matrix() {
  SweepSpec spec;
  spec.name = "scheme";
  spec.size_divisor = 2;
  for (const auto& entry : scheme::scheme_registry()) {
    for (const auto kind :
         {crypto::CipherKind::kRectangle80, crypto::CipherKind::kSpeck64_128}) {
      ConfigPoint c = paper_default_config();
      c.name = std::string(entry.name) + " / " +
               std::string(crypto::to_string(kind)) +
               (entry.name == scheme::kDefaultScheme &&
                        kind == crypto::CipherKind::kRectangle80
                    ? " (paper)"
                    : "");
      c.opts.profile.scheme = std::string(entry.name);
      c.opts.profile.cipher = kind;
      spec.configs.push_back(std::move(c));
    }
  }
  return spec;
}

using MatrixFn = SweepSpec (*)();

const std::vector<std::pair<std::string, MatrixFn>>& matrix_registry() {
  static const std::vector<std::pair<std::string, MatrixFn>> registry = {
      {"suite-overhead", suite_overhead_matrix},
      {"granularity", granularity_matrix},
      {"blockpolicy", blockpolicy_matrix},
      {"cipher", cipher_matrix},
      {"scheme", scheme_matrix},
      {"icache", icache_matrix},
      {"unroll", unroll_matrix},
  };
  return registry;
}

}  // namespace

const std::vector<std::string>& matrix_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [name, fn] : matrix_registry()) out.push_back(name);
    return out;
  }();
  return names;
}

SweepSpec matrix(std::string_view name) {
  for (const auto& [reg_name, fn] : matrix_registry())
    if (reg_name == name) return fn();
  throw Error("unknown sweep matrix '" + std::string(name) +
              "' (see sofia_sweep --list)");
}

SweepSpec smoke(SweepSpec spec) {
  spec.name += "-smoke";
  spec.workloads = {"fib", "crc32", "bitcount"};
  spec.size_override = 0;
  spec.size_divisor = 16;
  return spec;
}

SweepSpec with_backend(SweepSpec spec, std::string_view backend) {
  const std::string validated = pipeline::DeviceProfile::parse_backend(backend);
  for (auto& config : spec.configs) config.opts.profile.backend = validated;
  return spec;
}

SweepSpec with_scheme(SweepSpec spec, std::string_view scheme) {
  const std::string validated = pipeline::DeviceProfile::parse_scheme(scheme);
  for (auto& config : spec.configs) config.opts.profile.scheme = validated;
  return spec;
}

}  // namespace sofia::driver
