#include "driver/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "support/json.hpp"

namespace sofia::driver {

namespace {

std::string bool01(bool b) { return b ? "1" : "0"; }

}  // namespace

std::string ConfigPoint::fingerprint() const {
  const auto& t = opts.transform;
  const auto& c = opts.config;
  std::string fp;
  fp += "gran=";
  fp += crypto::to_string(t.granularity);
  fp += " alt=" + bool01(c.cipher.alternate);
  fp += " pipe=" + bool01(c.cipher.pipelined);
  fp += " lat=" + std::to_string(c.cipher.latency);
  fp += " policy=" + std::to_string(t.policy.words_per_block) + "/" +
        std::to_string(t.policy.store_min_word);
  fp += " cipher=";
  fp += crypto::to_string(opts.cipher_kind);
  fp += " icache=" + std::to_string(c.icache.size_bytes) + "x" +
        std::to_string(c.icache.line_bytes);
  fp += " unroll=" + std::to_string(unroll_cycles);
  return fp;
}

ConfigPoint paper_default_config() {
  ConfigPoint p;
  p.name = "paper-default";
  p.opts = bench::default_measure_options();
  p.unroll_cycles = 2;
  return p;
}

std::vector<std::string> SweepSpec::resolved_workloads() const {
  if (!workloads.empty()) return workloads;
  std::vector<std::string> names;
  for (const auto& spec : workloads::all_workloads()) names.push_back(spec.name);
  return names;
}

std::vector<JobSpec> expand_jobs(const SweepSpec& spec) {
  std::vector<JobSpec> jobs;
  for (const auto& name : spec.resolved_workloads()) {
    const auto& wl = workloads::workload(name);  // throws for unknown names
    std::uint32_t size = spec.size_override ? spec.size_override : wl.default_size;
    size = std::max(4u, size / std::max(1u, spec.size_divisor));
    for (const auto& config : spec.configs) {
      JobSpec job;
      job.index = jobs.size();
      job.workload = name;
      job.size = size;
      job.seed = spec.vary_seed ? spec.base_seed + job.index : spec.base_seed;
      job.config = config;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

bool SweepResult::all_ok() const {
  return std::all_of(jobs.begin(), jobs.end(),
                     [](const JobResult& r) { return r.ok; });
}

namespace {

JobResult run_job(const JobSpec& job) {
  JobResult result;
  result.job = job;
  try {
    result.m = bench::measure_workload(workloads::workload(job.workload),
                                       job.seed, job.size, job.config.opts);
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec, unsigned threads,
                      const ProgressFn& progress) {
  const auto jobs = expand_jobs(spec);
  SweepResult result;
  result.sweep_name = spec.name;
  result.jobs.resize(jobs.size());

  const auto max_threads =
      static_cast<unsigned>(std::max<std::size_t>(jobs.size(), 1));
  threads = std::clamp(threads, 1u, max_threads);
  result.threads_used = threads;
  const auto t0 = std::chrono::steady_clock::now();

  // Work-stealing by atomic index: each worker claims the next unclaimed
  // job and writes its result into the job's own slot, so the output order
  // (and the JSON rendered from it) never depends on thread interleaving.
  std::atomic<std::size_t> next{0};
  std::mutex progress_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      result.jobs[i] = run_job(jobs[i]);
      if (progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        progress(result.jobs[i]);
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

std::string to_json(const SweepResult& result) {
  const hw::HwModel model;
  json::Writer w(2);
  w.begin_object();
  w.member("schema", "sofia-sweep-v1");
  w.member("sweep", result.sweep_name);
  w.member("job_count", static_cast<std::uint64_t>(result.jobs.size()));
  w.key("jobs").begin_array();
  for (const auto& r : result.jobs) {
    w.begin_object();
    w.member("workload", r.job.workload);
    w.member("config", r.job.config.name);
    w.member("fingerprint", r.job.config.fingerprint());
    w.member("seed", r.job.seed);
    w.member("size", r.job.size);
    w.member("ok", r.ok);
    if (!r.ok) {
      w.member("error", r.error);
    } else {
      w.key("vanilla").begin_object();
      w.member("cycles", r.m.vanilla_cycles);
      w.member("text_bytes", r.m.vanilla_text_bytes);
      w.end_object();
      w.key("sofia").begin_object();
      w.member("cycles", r.m.sofia_cycles);
      w.member("text_bytes", r.m.sofia_text_bytes);
      w.member("nops", r.m.sofia_stats.nops);
      w.member("ctr_ops", r.m.sofia_stats.ctr_ops);
      w.member("cbc_ops", r.m.sofia_stats.cbc_ops);
      w.member("icache_misses", r.m.sofia_stats.icache_misses);
      w.end_object();
      w.key("overhead").begin_object();
      w.member("size_ratio", r.m.size_ratio());
      w.member("cycles_pct", r.m.cycle_overhead_pct());
      w.member("time_pct", r.m.time_overhead_pct(model, r.job.config.unroll_cycles));
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string doc = w.str();
  doc += '\n';
  return doc;
}

// ---------------------------------------------------------------------------
// Built-in matrices
// ---------------------------------------------------------------------------

namespace {

SweepSpec suite_overhead_matrix() {
  SweepSpec spec;
  spec.name = "suite-overhead";
  spec.configs = {paper_default_config()};
  return spec;
}

SweepSpec granularity_matrix() {
  SweepSpec spec;
  spec.name = "granularity";
  spec.size_divisor = 2;  // the ablation's historical working set
  const struct {
    const char* name;
    crypto::Granularity gran;
    bool alternate;
  } points[] = {
      {"per-pair alternating (paper)", crypto::Granularity::kPerPair, true},
      {"per-pair demand-driven", crypto::Granularity::kPerPair, false},
      {"per-word alternating (Alg.1)", crypto::Granularity::kPerWord, true},
      {"per-word demand-driven", crypto::Granularity::kPerWord, false},
  };
  for (const auto& p : points) {
    ConfigPoint c = paper_default_config();
    c.name = p.name;
    c.opts.transform.granularity = p.gran;
    c.opts.config.cipher.alternate = p.alternate;
    spec.configs.push_back(std::move(c));
  }
  return spec;
}

SweepSpec blockpolicy_matrix() {
  SweepSpec spec;
  spec.name = "blockpolicy";
  spec.size_divisor = 2;
  ConfigPoint paper = paper_default_config();
  paper.name = "8-word block, stores>=4 (paper)";
  ConfigPoint small = paper_default_config();
  small.name = "6-word block, unrestricted (Fig.5)";
  small.opts.transform.policy = xform::BlockPolicy::small_unrestricted();
  spec.configs = {paper, small};
  return spec;
}

SweepSpec cipher_matrix() {
  SweepSpec spec;
  spec.name = "cipher";
  spec.size_divisor = 2;
  ConfigPoint rect = paper_default_config();
  rect.name = "RECTANGLE-80 (paper)";
  ConfigPoint speck = paper_default_config();
  speck.name = "SPECK-64/128";
  speck.opts.cipher_kind = crypto::CipherKind::kSpeck64_128;
  spec.configs = {rect, speck};
  return spec;
}

SweepSpec icache_matrix() {
  SweepSpec spec;
  spec.name = "icache";
  spec.workloads = {"adpcm_encode", "adpcm_decode"};
  spec.size_override = 1024;
  for (const std::uint32_t bytes : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    ConfigPoint c = paper_default_config();
    c.name = std::to_string(bytes) + " B I-cache";
    c.opts.config.icache.size_bytes = bytes;
    spec.configs.push_back(std::move(c));
  }
  return spec;
}

SweepSpec unroll_matrix() {
  SweepSpec spec;
  spec.name = "unroll";
  spec.workloads = {"adpcm_encode"};
  spec.size_override = 4096;
  for (const int unroll : {1, 2, 4, 7, 13, 26}) {
    ConfigPoint c = paper_default_config();
    c.name = std::to_string(unroll) + "-cycle cipher" +
             (unroll == 2 ? " (paper)" : "");
    c.unroll_cycles = unroll;
    c.opts.config.cipher.latency = static_cast<std::uint32_t>(unroll);
    // Deep (many-cycle) cipher datapaths are iterative, not pipelined.
    c.opts.config.cipher.pipelined = unroll <= 2;
    spec.configs.push_back(std::move(c));
  }
  return spec;
}

using MatrixFn = SweepSpec (*)();

const std::vector<std::pair<std::string, MatrixFn>>& matrix_registry() {
  static const std::vector<std::pair<std::string, MatrixFn>> registry = {
      {"suite-overhead", suite_overhead_matrix},
      {"granularity", granularity_matrix},
      {"blockpolicy", blockpolicy_matrix},
      {"cipher", cipher_matrix},
      {"icache", icache_matrix},
      {"unroll", unroll_matrix},
  };
  return registry;
}

}  // namespace

const std::vector<std::string>& matrix_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [name, fn] : matrix_registry()) out.push_back(name);
    return out;
  }();
  return names;
}

SweepSpec matrix(std::string_view name) {
  for (const auto& [reg_name, fn] : matrix_registry())
    if (reg_name == name) return fn();
  throw Error("unknown sweep matrix '" + std::string(name) +
              "' (see sofia_sweep --list)");
}

SweepSpec smoke(SweepSpec spec) {
  spec.name += "-smoke";
  spec.workloads = {"fib", "crc32", "bitcount"};
  spec.size_override = 0;
  spec.size_divisor = 16;
  return spec;
}

}  // namespace sofia::driver
