#include "driver/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "driver/pool.hpp"
#include "scheme/scheme.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace sofia::driver {

namespace {

std::string bool01(bool b) { return b ? "1" : "0"; }

}  // namespace

std::string ConfigPoint::fingerprint() const {
  const auto& p = opts.profile;
  const auto& c = opts.config;
  std::string fp;
  fp += "gran=";
  fp += crypto::to_string(p.granularity);
  fp += " alt=" + bool01(c.cipher.alternate);
  fp += " pipe=" + bool01(c.cipher.pipelined);
  fp += " lat=" + std::to_string(c.cipher.latency);
  fp += " policy=" + std::to_string(p.policy.words_per_block) + "/" +
        std::to_string(p.policy.store_min_word);
  fp += " cipher=";
  fp += crypto::to_string(p.cipher);
  if (p.key_source == pipeline::KeySource::kSeed)
    fp += " keys=seed:" + std::to_string(p.key_seed);
  fp += " icache=" + std::to_string(c.icache.size_bytes) + "x" +
        std::to_string(c.icache.line_bytes);
  fp += " unroll=" + std::to_string(unroll_cycles);
  fp += " scheme=" + p.scheme;
  fp += " backend=" + p.backend;
  return fp;
}

ConfigPoint paper_default_config() {
  ConfigPoint p;
  p.name = "paper-default";
  p.opts = bench::default_measure_options();
  p.unroll_cycles = 2;
  return p;
}

std::vector<std::string> SweepSpec::resolved_workloads() const {
  if (!workloads.empty()) return workloads;
  std::vector<std::string> names;
  for (const auto& spec : workloads::all_workloads()) names.push_back(spec.name);
  return names;
}

std::vector<JobSpec> expand_jobs(const SweepSpec& spec) {
  std::vector<JobSpec> jobs;
  for (const auto& name : spec.resolved_workloads()) {
    const auto& wl = workloads::workload(name);  // throws for unknown names
    std::uint32_t size = spec.size_override ? spec.size_override : wl.default_size;
    size = std::max(4u, size / std::max(1u, spec.size_divisor));
    for (const auto& config : spec.configs) {
      JobSpec job;
      job.index = jobs.size();
      job.workload = name;
      job.size = size;
      job.seed = spec.vary_seed ? spec.base_seed + job.index : spec.base_seed;
      job.config = config;
      job.lint = spec.lint;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

bool SweepResult::all_ok() const {
  return std::all_of(jobs.begin(), jobs.end(),
                     [](const JobResult& r) { return r.ok; });
}

void ShardSpec::validate() const {
  if (count == 0) throw Error("shard: count must be >= 1");
  if (index >= count)
    throw Error("shard: index " + std::to_string(index) +
                " out of range for " + std::to_string(count) + " shard(s)");
}

ShardSpec ShardSpec::parse(std::string_view text) {
  const auto slash = text.find('/');
  const auto parse_num = [&](std::string_view part) -> std::uint32_t {
    std::uint64_t v = 0;
    if (!cli::parse_number(part, v) || v > 0xFFFFFFFFull)
      throw Error("shard: expected K/N with K and N in [0, 2^32), got '" +
                  std::string(text) + "'");
    return static_cast<std::uint32_t>(v);
  };
  if (slash == std::string_view::npos)
    throw Error("shard: expected K/N syntax, got '" + std::string(text) + "'");
  ShardSpec shard;
  shard.index = parse_num(text.substr(0, slash));
  shard.count = parse_num(text.substr(slash + 1));
  shard.validate();
  return shard;
}

namespace {

JobResult run_job(const JobSpec& job) {
  JobResult result;
  result.job = job;
  try {
    const auto& wl = workloads::workload(job.workload);
    if (job.lint) {
      // Lint prefilter: verify the hardened image statically and fail the
      // job before either device run; the same session then measures, so
      // the transform is not repeated.
      auto p = pipeline::Pipeline::from_workload(wl, job.seed, job.size,
                                                 job.config.opts.profile);
      p.set_sim_config(job.config.opts.config);
      p.set_memory_layout(job.config.opts.mem);
      const verify::Report report = p.lint();
      if (!report.clean()) {
        for (const auto& f : report.findings)
          if (f.severity == verify::Severity::kError)
            result.lint.push_back(f);
        result.error =
            "lint: " + std::to_string(result.lint.size()) +
            " error-severity finding(s), first: " +
            std::string(verify::to_string(result.lint.front().rule));
        return result;
      }
      result.m = p.measure();
    } else {
      result.m = bench::measure_workload(wl, job.seed, job.size,
                                         job.config.opts);
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec, unsigned threads,
                      const ProgressFn& progress, ShardSpec shard) {
  shard.validate();
  const auto all_jobs = expand_jobs(spec);
  std::vector<JobSpec> jobs;
  jobs.reserve(all_jobs.size());
  for (const auto& job : all_jobs)
    if (job.index % shard.count == shard.index) jobs.push_back(job);

  SweepResult result;
  result.sweep_name = spec.name;
  result.total_jobs = all_jobs.size();
  result.shard = shard;
  result.jobs.resize(jobs.size());

  const auto t0 = std::chrono::steady_clock::now();

  // Each worker claims the next unclaimed job index and writes its result
  // into the job's own slot (driver::for_each_index), so the output order
  // (and the JSON rendered from it) never depends on thread interleaving.
  std::mutex progress_mutex;
  result.threads_used =
      for_each_index(jobs.size(), threads, [&](std::size_t i) {
        result.jobs[i] = run_job(jobs[i]);
        if (progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          progress(result.jobs[i]);
        }
      });

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

std::string to_json(const SweepResult& result) {
  const hw::HwModel model;
  json::Writer w(2);
  w.begin_object();
  w.member("schema", "sofia-sweep-v5");
  w.member("sweep", result.sweep_name);
  w.member("job_count", static_cast<std::uint64_t>(
                            result.total_jobs ? result.total_jobs
                                              : result.jobs.size()));
  if (!result.shard.is_whole())
    w.member("shard", std::to_string(result.shard.index) + "/" +
                          std::to_string(result.shard.count));
  w.key("jobs").begin_array();
  for (const auto& r : result.jobs) {
    w.begin_object();
    w.member("index", static_cast<std::uint64_t>(r.job.index));
    w.member("workload", r.job.workload);
    w.member("config", r.job.config.name);
    w.member("scheme", r.job.config.opts.profile.scheme);
    w.member("backend", r.job.config.opts.profile.backend);
    w.member("fingerprint", r.job.config.fingerprint());
    w.member("seed", r.job.seed);
    w.member("size", r.job.size);
    w.member("ok", r.ok);
    if (!r.ok) {
      w.member("error", r.error);
      if (!r.lint.empty()) {
        w.key("lint").begin_array();
        for (const auto& f : r.lint) {
          w.begin_object();
          w.member("rule", verify::to_string(f.rule));
          w.member("severity", verify::to_string(f.severity));
          w.member("block", static_cast<std::int64_t>(f.block));
          w.member("insn", static_cast<std::int64_t>(f.insn));
          w.member("message", f.message);
          w.end_object();
        }
        w.end_array();
      }
    } else {
      w.key("vanilla").begin_object();
      w.member("cycles", r.m.vanilla_cycles);
      w.member("text_bytes", r.m.vanilla_text_bytes);
      w.end_object();
      w.key("sofia").begin_object();
      w.member("cycles", r.m.sofia_cycles);
      w.member("text_bytes", r.m.sofia_text_bytes);
      w.member("nops", r.m.sofia_stats.nops);
      w.member("ctr_ops", r.m.sofia_stats.ctr_ops);
      w.member("cbc_ops", r.m.sofia_stats.cbc_ops);
      w.member("icache_misses", r.m.sofia_stats.icache_misses);
      w.end_object();
      w.key("overhead").begin_object();
      w.member("size_ratio", r.m.size_ratio());
      w.member("cycles_pct", r.m.cycle_overhead_pct());
      w.member("time_pct", r.m.time_overhead_pct(model, r.job.config.unroll_cycles));
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string doc = w.str();
  doc += '\n';
  return doc;
}

std::string merge_json(const std::vector<std::string>& documents) {
  if (documents.empty()) throw Error("merge: no input documents");

  std::string sweep_name;
  std::uint64_t total = 0;
  std::vector<const json::Value*> by_index;
  // Keep the parsed trees alive while by_index points into them.
  std::vector<json::Value> parsed;
  parsed.reserve(documents.size());

  for (std::size_t d = 0; d < documents.size(); ++d) {
    parsed.push_back(json::parse(documents[d]));
    const auto& doc = parsed.back();
    const auto label = "document " + std::to_string(d);
    const auto* schema = doc.find("schema");
    if (schema == nullptr || schema->as_string("schema") != "sofia-sweep-v5")
      throw Error("merge: " + label + " is not a sofia-sweep-v5 document");
    const auto* sweep = doc.find("sweep");
    const auto* count = doc.find("job_count");
    const auto* jobs = doc.find("jobs");
    if (sweep == nullptr || count == nullptr || jobs == nullptr)
      throw Error("merge: " + label + " is missing sweep/job_count/jobs");
    if (d == 0) {
      sweep_name = sweep->as_string("sweep");
      total = count->as_uint("job_count");
      by_index.assign(total, nullptr);
    } else {
      if (sweep->as_string("sweep") != sweep_name)
        throw Error("merge: " + label + " is from sweep '" +
                    sweep->as_string("sweep") + "', expected '" + sweep_name +
                    "'");
      if (count->as_uint("job_count") != total)
        throw Error("merge: " + label + " disagrees on job_count");
    }
    for (const auto& job : jobs->as_array("jobs")) {
      const auto* index = job.find("index");
      if (index == nullptr) throw Error("merge: job record without index");
      const std::uint64_t i = index->as_uint("index");
      if (i >= total)
        throw Error("merge: job index " + std::to_string(i) +
                    " out of range for job_count " + std::to_string(total));
      if (by_index[i] != nullptr)
        throw Error("merge: job index " + std::to_string(i) +
                    " appears in more than one document");
      by_index[i] = &job;
    }
  }

  for (std::uint64_t i = 0; i < total; ++i)
    if (by_index[i] == nullptr)
      throw Error("merge: job index " + std::to_string(i) +
                  " is missing from the inputs");

  // Re-emit the canonical unsharded document: identical member order and
  // number text to what to_json() writes, so merged == unsharded, byte for
  // byte.
  json::Writer w(2);
  w.begin_object();
  w.member("schema", "sofia-sweep-v5");
  w.member("sweep", sweep_name);
  w.member("job_count", total);
  w.key("jobs").begin_array();
  for (const auto* job : by_index) job->write(w);
  w.end_array();
  w.end_object();
  std::string doc = w.str();
  doc += '\n';
  return doc;
}

// ---------------------------------------------------------------------------
// Built-in matrices
// ---------------------------------------------------------------------------

namespace {

SweepSpec suite_overhead_matrix() {
  SweepSpec spec;
  spec.name = "suite-overhead";
  spec.configs = {paper_default_config()};
  return spec;
}

SweepSpec granularity_matrix() {
  SweepSpec spec;
  spec.name = "granularity";
  spec.size_divisor = 2;  // the ablation's historical working set
  const struct {
    const char* name;
    crypto::Granularity gran;
    bool alternate;
  } points[] = {
      {"per-pair alternating (paper)", crypto::Granularity::kPerPair, true},
      {"per-pair demand-driven", crypto::Granularity::kPerPair, false},
      {"per-word alternating (Alg.1)", crypto::Granularity::kPerWord, true},
      {"per-word demand-driven", crypto::Granularity::kPerWord, false},
  };
  for (const auto& p : points) {
    ConfigPoint c = paper_default_config();
    c.name = p.name;
    c.opts.profile.granularity = p.gran;
    c.opts.config.cipher.alternate = p.alternate;
    spec.configs.push_back(std::move(c));
  }
  return spec;
}

SweepSpec blockpolicy_matrix() {
  SweepSpec spec;
  spec.name = "blockpolicy";
  spec.size_divisor = 2;
  ConfigPoint paper = paper_default_config();
  paper.name = "8-word block, stores>=4 (paper)";
  ConfigPoint small = paper_default_config();
  small.name = "6-word block, unrestricted (Fig.5)";
  small.opts.profile.policy = xform::BlockPolicy::small_unrestricted();
  spec.configs = {paper, small};
  return spec;
}

SweepSpec cipher_matrix() {
  SweepSpec spec;
  spec.name = "cipher";
  spec.size_divisor = 2;
  ConfigPoint rect = paper_default_config();
  rect.name = "RECTANGLE-80 (paper)";
  ConfigPoint speck = paper_default_config();
  speck.name = "SPECK-64/128";
  speck.opts.profile.cipher = crypto::CipherKind::kSpeck64_128;
  spec.configs = {rect, speck};
  return spec;
}

SweepSpec icache_matrix() {
  SweepSpec spec;
  spec.name = "icache";
  spec.workloads = {"adpcm_encode", "adpcm_decode"};
  spec.size_override = 1024;
  for (const std::uint32_t bytes : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    ConfigPoint c = paper_default_config();
    c.name = std::to_string(bytes) + " B I-cache";
    c.opts.config.icache.size_bytes = bytes;
    spec.configs.push_back(std::move(c));
  }
  return spec;
}

SweepSpec unroll_matrix() {
  SweepSpec spec;
  spec.name = "unroll";
  spec.workloads = {"adpcm_encode"};
  spec.size_override = 4096;
  for (const int unroll : {1, 2, 4, 7, 13, 26}) {
    ConfigPoint c = paper_default_config();
    c.name = std::to_string(unroll) + "-cycle cipher" +
             (unroll == 2 ? " (paper)" : "");
    c.unroll_cycles = unroll;
    c.opts.config.cipher.latency = static_cast<std::uint32_t>(unroll);
    // Deep (many-cycle) cipher datapaths are iterative, not pipelined.
    c.opts.config.cipher.pipelined = unroll <= 2;
    spec.configs.push_back(std::move(c));
  }
  return spec;
}

SweepSpec scheme_matrix() {
  SweepSpec spec;
  spec.name = "scheme";
  spec.size_divisor = 2;
  for (const auto& entry : scheme::scheme_registry()) {
    for (const auto kind :
         {crypto::CipherKind::kRectangle80, crypto::CipherKind::kSpeck64_128}) {
      ConfigPoint c = paper_default_config();
      c.name = std::string(entry.name) + " / " +
               std::string(crypto::to_string(kind)) +
               (entry.name == scheme::kDefaultScheme &&
                        kind == crypto::CipherKind::kRectangle80
                    ? " (paper)"
                    : "");
      c.opts.profile.scheme = std::string(entry.name);
      c.opts.profile.cipher = kind;
      spec.configs.push_back(std::move(c));
    }
  }
  return spec;
}

using MatrixFn = SweepSpec (*)();

const std::vector<std::pair<std::string, MatrixFn>>& matrix_registry() {
  static const std::vector<std::pair<std::string, MatrixFn>> registry = {
      {"suite-overhead", suite_overhead_matrix},
      {"granularity", granularity_matrix},
      {"blockpolicy", blockpolicy_matrix},
      {"cipher", cipher_matrix},
      {"scheme", scheme_matrix},
      {"icache", icache_matrix},
      {"unroll", unroll_matrix},
  };
  return registry;
}

}  // namespace

const std::vector<std::string>& matrix_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [name, fn] : matrix_registry()) out.push_back(name);
    return out;
  }();
  return names;
}

SweepSpec matrix(std::string_view name) {
  for (const auto& [reg_name, fn] : matrix_registry())
    if (reg_name == name) return fn();
  throw Error("unknown sweep matrix '" + std::string(name) +
              "' (see sofia_sweep --list)");
}

SweepSpec smoke(SweepSpec spec) {
  spec.name += "-smoke";
  spec.workloads = {"fib", "crc32", "bitcount"};
  spec.size_override = 0;
  spec.size_divisor = 16;
  return spec;
}

SweepSpec with_backend(SweepSpec spec, std::string_view backend) {
  const std::string validated = pipeline::DeviceProfile::parse_backend(backend);
  for (auto& config : spec.configs) config.opts.profile.backend = validated;
  return spec;
}

SweepSpec with_scheme(SweepSpec spec, std::string_view scheme) {
  const std::string validated = pipeline::DeviceProfile::parse_scheme(scheme);
  for (auto& config : spec.configs) config.opts.profile.scheme = validated;
  return spec;
}

}  // namespace sofia::driver
