#include "driver/pool.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace sofia::driver {

unsigned for_each_index(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)>& fn) {
  const auto max_threads = static_cast<unsigned>(std::max<std::size_t>(count, 1));
  threads = std::clamp(threads, 1u, max_threads);

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return threads;
}

}  // namespace sofia::driver
