// Deterministic indexed thread pool, hoisted out of run_sweep() so the
// sweep driver and the adversarial campaign engine share one execution
// discipline: workers claim job indices from a single atomic counter and
// write each result into the job's own pre-sized slot, so the output order
// (and any JSON rendered from it) never depends on thread interleaving.
#pragma once

#include <cstddef>
#include <functional>

namespace sofia::driver {

/// Execute fn(i) for every i in [0, count) on `threads` workers (clamped to
/// [1, count]); returns the worker count actually used. fn is called at
/// most once per index and must confine its writes to index-owned state;
/// serializing any shared side effect (progress printing) is the caller's
/// job. Exceptions must not escape fn — capture failures in the slot.
unsigned for_each_index(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)>& fn);

}  // namespace sofia::driver
