// Forgery-cost analysis (paper §IV-A): the analytic expected-time formulas
// behind the "46,795 years" (SI) and "93,590 years" (CFI) numbers, plus
// Monte-Carlo experiments at reduced tag lengths that empirically verify
// the 2^(n-1) expected-trials law the analysis rests on.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/key_set.hpp"
#include "support/rng.hpp"

namespace sofia::security {

inline constexpr double kSecondsPerYear = 365.0 * 24 * 3600;

/// Expected number of online verification trials to forge an n-bit MAC by
/// guessing (the adversary sweeps tag values; the target is uniform):
/// 2^(n-1) on average (Handschuh & Preneel, the paper's [32]).
double expected_forgery_trials(unsigned tag_bits);

/// Expected wall-clock years for an online forgery: trials x cycles/trial
/// at the given clock (paper: 8 cycles per SI trial, 16 per CFI trial,
/// 50 MHz).
double forgery_years(unsigned tag_bits, double cycles_per_trial,
                     double clock_hz);

struct ForgeryExperiment {
  unsigned tag_bits = 0;
  std::uint64_t experiments = 0;
  double mean_trials = 0;      ///< empirical average guesses until success
  double expected_trials = 0;  ///< 2^(n-1)
};

/// Monte-Carlo forgery against the real CBC-MAC truncated to `tag_bits`:
/// each experiment draws a random 6-word block, computes its tag, and
/// counts sequential guesses until the attacker's candidate matches.
ForgeryExperiment run_forgery_experiment(const crypto::KeySet& keys,
                                         unsigned tag_bits,
                                         std::uint64_t experiments, Rng& rng);

struct DetectionExperiment {
  unsigned tag_bits = 0;
  std::uint64_t trials = 0;
  std::uint64_t undetected = 0;  ///< tampers that passed verification
  double detection_rate = 0;     ///< 1 - undetected/trials
};

/// Monte-Carlo detection probability: random single-word tampers against
/// random blocks, verified with a truncated tag. Undetected fraction must
/// approach 2^-n.
DetectionExperiment run_detection_experiment(const crypto::KeySet& keys,
                                             unsigned tag_bits,
                                             std::uint64_t trials, Rng& rng);

struct FaultCampaign {
  std::uint64_t trials = 0;
  std::uint64_t detected = 0;       ///< device reset
  std::uint64_t masked = 0;         ///< run completed with clean output
  std::uint64_t corrupted = 0;      ///< run completed with wrong output
  std::uint64_t other = 0;          ///< faults/max-cycles
};

/// Transient-fault campaign (paper future work): inject one random
/// instruction-fetch bit flip per run and classify the outcome. On the
/// SOFIA core every non-masked fault must be detected; on the vanilla core
/// faults silently corrupt.
FaultCampaign run_fault_campaign(const std::string& source,
                                 const crypto::KeySet& keys, bool sofia,
                                 std::uint64_t trials, Rng& rng);

}  // namespace sofia::security
