#include "security/forgery.hpp"

#include <cmath>
#include <vector>

#include "crypto/cbc_mac.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/machine.hpp"

namespace sofia::security {

double expected_forgery_trials(unsigned tag_bits) {
  return std::ldexp(1.0, static_cast<int>(tag_bits) - 1);
}

double forgery_years(unsigned tag_bits, double cycles_per_trial,
                     double clock_hz) {
  return expected_forgery_trials(tag_bits) * cycles_per_trial / clock_hz /
         kSecondsPerYear;
}

ForgeryExperiment run_forgery_experiment(const crypto::KeySet& keys,
                                         unsigned tag_bits,
                                         std::uint64_t experiments, Rng& rng) {
  const auto cipher = keys.exec_mac_cipher();
  ForgeryExperiment result;
  result.tag_bits = tag_bits;
  result.experiments = experiments;
  result.expected_trials = expected_forgery_trials(tag_bits);
  long double total = 0;
  for (std::uint64_t e = 0; e < experiments; ++e) {
    std::uint32_t words[6];
    for (auto& w : words) w = rng.next_u32();
    const std::uint64_t tag =
        crypto::truncate_tag(crypto::cbc_mac64(*cipher, words), tag_bits);
    // Sequential guessing: candidate 0, 1, 2, ... — the guess count until
    // the (uniform) tag matches is tag + 1.
    total += static_cast<long double>(tag) + 1;
  }
  result.mean_trials = static_cast<double>(total / experiments);
  return result;
}

DetectionExperiment run_detection_experiment(const crypto::KeySet& keys,
                                             unsigned tag_bits,
                                             std::uint64_t trials, Rng& rng) {
  const auto cipher = keys.exec_mac_cipher();
  DetectionExperiment result;
  result.tag_bits = tag_bits;
  result.trials = trials;
  for (std::uint64_t t = 0; t < trials; ++t) {
    std::uint32_t words[6];
    for (auto& w : words) w = rng.next_u32();
    const std::uint64_t tag =
        crypto::truncate_tag(crypto::cbc_mac64(*cipher, words), tag_bits);
    // Tamper one word, re-verify against the stored (old) tag.
    const auto idx = rng.next_below(6);
    words[idx] ^= static_cast<std::uint32_t>(1 + rng.next_below(0xFFFFFFFFull));
    const std::uint64_t tampered =
        crypto::truncate_tag(crypto::cbc_mac64(*cipher, words), tag_bits);
    if (tampered == tag) ++result.undetected;
  }
  result.detection_rate =
      1.0 - static_cast<double>(result.undetected) / static_cast<double>(trials);
  return result;
}

FaultCampaign run_fault_campaign(const std::string& source,
                                 const crypto::KeySet& keys, bool sofia,
                                 std::uint64_t trials, Rng& rng) {
  // One session covers both targets: the hardened image for the SOFIA
  // campaign, the sequential baseline for the vanilla one (paper §III
  // per-pair CTR, as in every measurement).
  auto session = pipeline::Pipeline::from_source(
      source, pipeline::DeviceProfile::with_keys(keys), "fault-campaign");
  sim::SimConfig config;
  config.max_cycles = 20'000'000;
  session.set_sim_config(config);
  const assembler::LoadImage& image =
      sofia ? session.image() : session.vanilla_image();
  const sim::RunResult& clean = sofia ? session.run() : session.run_vanilla();
  const std::uint64_t clean_fetches = clean.stats.fetch_words;

  FaultCampaign campaign;
  campaign.trials = trials;
  for (std::uint64_t t = 0; t < trials; ++t) {
    sim::SimConfig faulty = config;
    faulty.fault.enabled = true;
    // SOFIA fetches MAC words too; scale the index range by the raw fetch
    // volume so faults land uniformly over everything the device reads.
    const std::uint64_t span =
        sofia ? clean_fetches + clean.stats.mac_words : clean_fetches;
    faulty.fault.fetch_index = rng.next_below(std::max<std::uint64_t>(1, span));
    faulty.fault.bit = static_cast<unsigned>(rng.next_below(32));
    const auto run = session.run_image(image, faulty);
    if (run.status == sim::RunResult::Status::kReset)
      ++campaign.detected;
    else if (run.ok() && run.output == clean.output)
      ++campaign.masked;
    else if (run.ok())
      ++campaign.corrupted;
    else
      ++campaign.other;
  }
  return campaign;
}

}  // namespace sofia::security
