#include "security/attacks.hpp"

#include "assembler/link.hpp"
#include "campaign/mutation.hpp"
#include "support/error.hpp"

namespace sofia::security {

namespace {

sim::SimConfig bounded(sim::SimConfig config) {
  // Attacked runs can loop on garbage; keep the budget bounded.
  if (config.max_cycles > 50'000'000) config.max_cycles = 50'000'000;
  return config;
}

pipeline::DeviceProfile legacy_profile(const crypto::KeySet& keys,
                                       const xform::Options& opts) {
  auto profile = pipeline::DeviceProfile::with_keys(keys);
  profile.granularity = opts.granularity;
  profile.policy = opts.policy;
  return profile;
}

pipeline::Pipeline attack_session(const std::string& source,
                                  pipeline::DeviceProfile profile,
                                  sim::SimConfig base_config) {
  auto p = pipeline::Pipeline::from_source(source, profile, "attack-victim");
  p.set_sim_config(bounded(std::move(base_config)));
  return p;
}

}  // namespace

AttackHarness::AttackHarness(std::string source,
                             pipeline::DeviceProfile profile,
                             sim::SimConfig base_config)
    : source_(std::move(source)),
      pipeline_(attack_session(source_, profile, std::move(base_config))) {
  pipeline_.hardened();  // force + cache the transform
  if (!pipeline_.run().ok())
    throw Error("attack harness: clean run failed: " +
                std::string(to_string(pipeline_.run().status)));
}

AttackHarness::AttackHarness(std::string source, crypto::KeySet keys,
                             xform::Options opts, sim::SimConfig base_config)
    : AttackHarness(std::move(source), legacy_profile(keys, opts),
                    std::move(base_config)) {}

AttackOutcome AttackHarness::run_tampered(std::string name,
                                          assembler::LoadImage image) const {
  AttackOutcome outcome;
  outcome.name = std::move(name);
  outcome.run = pipeline_.run_image(image);
  outcome.detected = outcome.run.status == sim::RunResult::Status::kReset;
  outcome.output_clean = outcome.run.output == clean_run().output;
  return outcome;
}

AttackOutcome AttackHarness::run_mutated(std::string name,
                                         const campaign::Mutation& m,
                                         const assembler::LoadImage* donor) const {
  // The one-shot attacks are campaign mutations applied by hand: one
  // implementation of each tamper primitive, shared with the campaign
  // engine (campaign/mutation.cpp).
  auto image = transformed().image;
  sim::SimConfig scratch;  // the static kinds never touch the fault slot
  const campaign::ApplyContext ctx{pipeline_.profile().policy.words_per_block,
                                   donor};
  campaign::apply(m, image, scratch, ctx);
  return run_tampered(std::move(name), std::move(image));
}

AttackOutcome AttackHarness::flip_bit(std::uint32_t word_index,
                                      unsigned bit) const {
  return run_mutated(
      "flip-bit w" + std::to_string(word_index) + " b" + std::to_string(bit),
      {campaign::MutationKind::kBitFlip, word_index, bit});
}

AttackOutcome AttackHarness::patch_word(std::uint32_t word_index,
                                        std::uint32_t value) const {
  return run_mutated("patch-word w" + std::to_string(word_index),
                     {campaign::MutationKind::kWordPatch, word_index, value});
}

AttackOutcome AttackHarness::relocate_word(std::uint32_t from_index,
                                           std::uint32_t to_index) const {
  return run_mutated(
      "relocate-word " + std::to_string(from_index) + "->" +
          std::to_string(to_index),
      {campaign::MutationKind::kWordRelocate, from_index, to_index});
}

AttackOutcome AttackHarness::splice_block(std::uint32_t from_block,
                                          std::uint32_t to_block) const {
  return run_mutated(
      "splice-block " + std::to_string(from_block) + "->" +
          std::to_string(to_block),
      {campaign::MutationKind::kBlockSplice, from_block, to_block});
}

AttackOutcome AttackHarness::cross_version_splice(
    std::uint16_t other_omega, std::uint32_t block_index) const {
  // Build the same program as a different version (new omega), then graft
  // one of its blocks into the current binary.
  pipeline::DeviceProfile other_profile = pipeline_.profile();
  other_profile.omega_override = other_omega;
  auto other_session =
      pipeline::Pipeline::from_source(source_, other_profile, "other-version");
  const auto& other = other_session.hardened();
  return run_mutated(
      "cross-version-splice block " + std::to_string(block_index),
      {campaign::MutationKind::kCrossVersionSplice, block_index},
      &other.image);
}

std::vector<AttackOutcome> AttackHarness::random_bit_flips(Rng& rng,
                                                           int count) const {
  std::vector<AttackOutcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto word =
        static_cast<std::uint32_t>(rng.next_below(transformed().image.text.size()));
    const auto bit = static_cast<unsigned>(rng.next_below(32));
    outcomes.push_back(flip_bit(word, bit));
  }
  return outcomes;
}

// ---------------------------------------------------------------------------
// ROP demonstration.
// ---------------------------------------------------------------------------

namespace {

// The victim: `vuln` loads a return address from attacker-controlled input
// (modelling a stack smash) and returns through it. The gadget holds the
// store that must never execute. attacker_input == 0 means benign input.
constexpr char kVictimSource[] = R"(
main:
  call vuln
  li r10, 0xFFFF0008
  li r1, 1111
  sw r1, 0(r10)
  halt
vuln:
  la r2, attacker_input
  lw r3, 0(r2)
  beqz r3, benign
  mv lr, r3          ; smashed return address
benign:
  ret
gadget:              ; the "disable the brakes" store (paper §II-B-2)
  li r10, 0xFFFF0008
  li r1, 6666
  sw r1, 0(r10)
  halt
.data
attacker_input: .word 0
)";

void patch_attacker_input(assembler::LoadImage& image, std::uint32_t gadget_addr) {
  // attacker_input is the first data word.
  for (int i = 0; i < 4; ++i)
    image.data.at(static_cast<std::size_t>(i)) =
        static_cast<std::uint8_t>(gadget_addr >> (8 * i));
}

}  // namespace

namespace {

// The JOP victim: handler pointers live in writable data; the dispatch is
// annotated with the two legitimate handlers only.
constexpr char kJopVictimSource[] = R"(
main:
  la r2, table
  lw r4, 0(r2)        ; select handler 0
  li r1, 5
  .targets inc, dec
  jalr lr, r4
  li r10, 0xFFFF0008
  sw r1, 0(r10)
  halt
inc:
  addi r1, r1, 1
  ret
dec:
  addi r1, r1, -1
  ret
gadget:
  li r10, 0xFFFF0008
  li r1, 7777
  sw r1, 0(r10)
  halt
.data
table: .word inc, dec
)";

void patch_table_entry(assembler::LoadImage& image, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    image.data.at(static_cast<std::size_t>(i)) =
        static_cast<std::uint8_t>(value >> (8 * i));
}

}  // namespace

namespace {

/// One pipeline session per demo victim: the historical demos ran with
/// Alg. 1's per-word CTR (xform::Options defaults), so the profile keeps
/// that granularity.
pipeline::Pipeline demo_session(const char* source,
                                const crypto::KeySet& keys) {
  auto profile = pipeline::DeviceProfile::with_keys(keys);
  profile.granularity = crypto::Granularity::kPerWord;
  auto p = pipeline::Pipeline::from_source(source, profile, "cf-attack-demo");
  sim::SimConfig config;
  config.max_cycles = 10'000'000;  // attacked runs can loop on garbage
  p.set_sim_config(config);
  return p;
}

}  // namespace

JopDemo run_jop_demo(const crypto::KeySet& keys) {
  JopDemo demo;
  auto session = demo_session(kJopVictimSource, keys);

  auto vanilla_img = session.vanilla_image();
  demo.vanilla_clean = session.run_vanilla();
  patch_table_entry(vanilla_img,
                    assembler::resolve_vanilla(session.program(), {}, "gadget"));
  demo.vanilla_attacked = session.run_image(vanilla_img);

  const auto& result = session.hardened();
  demo.sofia_clean = session.run();
  // The attacker aims at the gadget's canonical (placed) address — the same
  // value `la` would materialize, so the comparison chain sees a perfect
  // but unlisted pointer.
  const std::uint32_t gadget_index = result.normalized.text_labels.at("gadget");
  auto tampered = result.image;
  patch_table_entry(tampered, result.layout.placed_addr(gadget_index));
  demo.sofia_attacked = session.run_image(tampered);
  return demo;
}

RopDemo run_rop_demo(const crypto::KeySet& keys) {
  RopDemo demo;
  auto session = demo_session(kVictimSource, keys);

  // Vanilla target.
  auto vanilla_img = session.vanilla_image();
  demo.vanilla_clean = session.run_vanilla();
  patch_attacker_input(vanilla_img,
                       assembler::resolve_vanilla(session.program(), {}, "gadget"));
  demo.vanilla_attacked = session.run_image(vanilla_img);

  // SOFIA target: the attacker knows the transformed layout (Kerckhoffs)
  // and aims at the base of the gadget's block.
  const auto& result = session.hardened();
  demo.sofia_clean = session.run();
  const std::uint32_t gadget_index = result.normalized.text_labels.at("gadget");
  auto tampered = result.image;
  patch_attacker_input(tampered, result.layout.block_base_addr(gadget_index));
  demo.sofia_attacked = session.run_image(tampered);
  return demo;
}

}  // namespace sofia::security
