// Attack harness (paper §IV-A): concrete code-injection and code-reuse
// attacks mounted against a transformed binary, run on the simulated SOFIA
// device. An attack counts as *detected* when the device pulls the reset
// line before any externally visible effect (the paper's criterion: no
// tampered store may reach the MA stage).
//
// The same attacks run against the vanilla core demonstrate the baseline's
// vulnerability — e.g. the ROP-style demo corrupts control flow and fires
// its "disable the brakes" store on vanilla, and resets on SOFIA.
#pragma once

#include <string>
#include <vector>

#include "campaign/mutation.hpp"
#include "crypto/key_set.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "xform/transform.hpp"

namespace sofia::security {

struct AttackOutcome {
  std::string name;
  sim::RunResult run;
  bool detected = false;         ///< device reset before completing
  bool output_clean = false;     ///< console output identical to clean run
};

/// Fixture: one program transformed once (through a pipeline::Pipeline
/// session), attacked many ways.
class AttackHarness {
 public:
  /// Preferred: the device under attack described by one DeviceProfile.
  AttackHarness(std::string source, pipeline::DeviceProfile profile,
                sim::SimConfig base_config = {});

  /// Legacy spelling over raw key material + transform options (kept so
  /// callers that sweep xform::Options keep compiling); granularity and
  /// policy are lifted from `opts` into the profile.
  AttackHarness(std::string source, crypto::KeySet keys,
                xform::Options opts = {}, sim::SimConfig base_config = {});

  // Accessors delegate to the session's cached stages (computed in the
  // constructor) — one copy of the hardened image, owned by the pipeline.
  const xform::TransformResult& transformed() const { return pipeline_.hardened(); }
  const sim::RunResult& clean_run() const { return pipeline_.run(); }

  /// Code injection: flip one ciphertext bit.
  AttackOutcome flip_bit(std::uint32_t word_index, unsigned bit) const;

  /// Code injection: overwrite one ciphertext word.
  AttackOutcome patch_word(std::uint32_t word_index, std::uint32_t value) const;

  /// Instruction relocation: move an encrypted word elsewhere in the text
  /// (defeats naive ECB-style instruction-set randomization).
  AttackOutcome relocate_word(std::uint32_t from_index,
                              std::uint32_t to_index) const;

  /// Code reuse at block granularity: copy a whole encrypted block over
  /// another (block splicing).
  AttackOutcome splice_block(std::uint32_t from_block,
                             std::uint32_t to_block) const;

  /// Cross-version replay: substitute one block with the same block from a
  /// binary built under a different version nonce omega.
  AttackOutcome cross_version_splice(std::uint16_t other_omega,
                                     std::uint32_t block_index) const;

  /// Run `count` random single-bit flips; returns the outcomes.
  std::vector<AttackOutcome> random_bit_flips(Rng& rng, int count) const;

 private:
  AttackOutcome run_tampered(std::string name,
                             assembler::LoadImage image) const;
  /// Apply one campaign mutation to a fresh image copy and run it — the
  /// one-shot attacks share the campaign engine's tamper primitives.
  AttackOutcome run_mutated(std::string name, const campaign::Mutation& m,
                            const assembler::LoadImage* donor = nullptr) const;

  std::string source_;
  /// mutable: the lazy stage accessors are non-const but cached — the
  /// constructor forces them, so const methods only ever hit the cache.
  mutable pipeline::Pipeline pipeline_;
};

/// The ROP-style demonstration (paper §IV-A-2): a victim with a
/// stack-smash-like vulnerability that lets attacker-controlled input
/// overwrite a return address, aimed at a store "gadget" that must never
/// execute (the paper's disable-the-brakes store). Returns the outcome on
/// the SOFIA device; `vanilla_outcome` shows the same attack succeeding on
/// the unprotected core.
struct RopDemo {
  sim::RunResult vanilla_clean;
  sim::RunResult vanilla_attacked;   ///< gadget fires: output contains 6666
  sim::RunResult sofia_clean;
  sim::RunResult sofia_attacked;     ///< must reset before the gadget store
};

RopDemo run_rop_demo(const crypto::KeySet& keys);

/// The JOP-style demonstration: the victim dispatches through a
/// function-pointer table in (writable) data; the attacker overwrites a
/// table entry with the address of a store gadget outside the dispatch's
/// static target set. On the vanilla core the gadget fires; on SOFIA the
/// devirtualized dispatch finds no matching static target and falls into
/// its trap before any gadget instruction executes.
struct JopDemo {
  sim::RunResult vanilla_clean;
  sim::RunResult vanilla_attacked;  ///< gadget fires: output contains 7777
  sim::RunResult sofia_clean;
  sim::RunResult sofia_attacked;    ///< trap: halts without gadget output
};

JopDemo run_jop_demo(const crypto::KeySet& keys);

}  // namespace sofia::security
