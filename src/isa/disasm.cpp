#include "isa/disasm.hpp"

#include "support/hex.hpp"

namespace sofia::isa {
namespace {

std::string reg(unsigned r) { return std::string(reg_name(r)); }

std::string target(std::uint32_t addr, std::int32_t word_off) {
  if (addr == 0 && word_off <= 0) return std::to_string(word_off) + " (words)";
  return hex32_0x(addr + static_cast<std::uint32_t>(word_off * 4));
}

}  // namespace

std::string disassemble(const Instruction& inst, std::uint32_t addr) {
  const std::string m(mnemonic(inst.op));
  switch (inst.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
      return m;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kSlt:
    case Opcode::kSltu:
    case Opcode::kMul:
      return m + " " + reg(inst.rd) + ", " + reg(inst.ra) + ", " + reg(inst.rb);
    case Opcode::kAddi:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
    case Opcode::kSlti:
    case Opcode::kSltiu:
      return m + " " + reg(inst.rd) + ", " + reg(inst.ra) + ", " +
             std::to_string(inst.imm);
    case Opcode::kLui:
      return m + " " + reg(inst.rd) + ", 0x" + hex32(static_cast<std::uint32_t>(inst.imm));
    case Opcode::kLw:
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kLb:
    case Opcode::kLbu:
      return m + " " + reg(inst.rd) + ", " + std::to_string(inst.imm) + "(" +
             reg(inst.ra) + ")";
    case Opcode::kSw:
    case Opcode::kSh:
    case Opcode::kSb:
      return m + " " + reg(inst.rd) + ", " + std::to_string(inst.imm) + "(" +
             reg(inst.ra) + ")";
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return m + " " + reg(inst.ra) + ", " + reg(inst.rb) + ", " +
             target(addr, inst.imm);
    case Opcode::kJal:
      return m + " " + reg(inst.rd) + ", " + target(addr, inst.imm);
    case Opcode::kJalr:
      return m + " " + reg(inst.rd) + ", " + reg(inst.ra) + ", " +
             std::to_string(inst.imm);
  }
  return m;
}

std::string disassemble_word(std::uint32_t word, std::uint32_t addr) {
  const auto inst = decode(word);
  if (!inst) return ".word " + hex32_0x(word);
  return disassemble(*inst, addr);
}

}  // namespace sofia::isa
