#include "isa/isa.hpp"

#include "support/bits.hpp"
#include "support/error.hpp"

namespace sofia::isa {
namespace {

enum class Format { kNone, kR, kI, kIu, kShift, kStore, kBranch, kJal, kJalr, kLui };

Format format_of(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHalt:
      return Format::kNone;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kSlt:
    case Opcode::kSltu:
    case Opcode::kMul:
      return Format::kR;
    case Opcode::kAddi:
    case Opcode::kSlti:
    case Opcode::kSltiu:
    case Opcode::kLw:
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kLb:
    case Opcode::kLbu:
      return Format::kI;
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
      return Format::kIu;
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
      return Format::kShift;
    case Opcode::kLui:
      return Format::kLui;
    case Opcode::kSw:
    case Opcode::kSh:
    case Opcode::kSb:
      return Format::kStore;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return Format::kBranch;
    case Opcode::kJal:
      return Format::kJal;
    case Opcode::kJalr:
      return Format::kJalr;
  }
  return Format::kNone;
}

[[noreturn]] void field_error(const Instruction& inst, const char* what) {
  throw Error(std::string("encode ") + std::string(mnemonic(inst.op)) + ": " + what);
}

void check_reg(const Instruction& inst, unsigned r) {
  if (r >= kNumRegs) field_error(inst, "register out of range");
}

}  // namespace

std::uint32_t encode(const Instruction& inst) {
  const auto opbits = static_cast<std::uint32_t>(inst.op);
  std::uint32_t w = opbits << 26;
  const Format f = format_of(inst.op);
  check_reg(inst, inst.rd);
  check_reg(inst, inst.ra);
  check_reg(inst, inst.rb);
  const auto imm = static_cast<std::int64_t>(inst.imm);
  switch (f) {
    case Format::kNone:
      break;
    case Format::kR:
      w = insert_bits(w, 22, 4, inst.rd);
      w = insert_bits(w, 18, 4, inst.ra);
      w = insert_bits(w, 14, 4, inst.rb);
      break;
    case Format::kI:
    case Format::kJalr:
      if (!fits_signed(imm, 14)) field_error(inst, "imm14 out of range");
      w = insert_bits(w, 22, 4, inst.rd);
      w = insert_bits(w, 18, 4, inst.ra);
      w = insert_bits(w, 0, 14, static_cast<std::uint32_t>(inst.imm));
      break;
    case Format::kIu:
      if (!fits_unsigned(static_cast<std::uint64_t>(inst.imm), 14) || inst.imm < 0)
        field_error(inst, "unsigned imm14 out of range");
      w = insert_bits(w, 22, 4, inst.rd);
      w = insert_bits(w, 18, 4, inst.ra);
      w = insert_bits(w, 0, 14, static_cast<std::uint32_t>(inst.imm));
      break;
    case Format::kShift:
      if (inst.imm < 0 || inst.imm > 31) field_error(inst, "shift amount out of range");
      w = insert_bits(w, 22, 4, inst.rd);
      w = insert_bits(w, 18, 4, inst.ra);
      w = insert_bits(w, 0, 14, static_cast<std::uint32_t>(inst.imm));
      break;
    case Format::kLui:
      if (!fits_unsigned(static_cast<std::uint64_t>(inst.imm), 18) || inst.imm < 0)
        field_error(inst, "imm18 out of range");
      w = insert_bits(w, 22, 4, inst.rd);
      w = insert_bits(w, 0, 18, static_cast<std::uint32_t>(inst.imm));
      break;
    case Format::kStore:
      if (!fits_signed(imm, 14)) field_error(inst, "imm14 out of range");
      w = insert_bits(w, 22, 4, inst.rd);  // rd field carries the store source
      w = insert_bits(w, 18, 4, inst.ra);
      w = insert_bits(w, 0, 14, static_cast<std::uint32_t>(inst.imm));
      break;
    case Format::kBranch:
      if (!fits_signed(imm, 14)) field_error(inst, "branch offset out of range");
      w = insert_bits(w, 22, 4, inst.ra);
      w = insert_bits(w, 18, 4, inst.rb);
      w = insert_bits(w, 0, 14, static_cast<std::uint32_t>(inst.imm));
      break;
    case Format::kJal:
      if (!fits_signed(imm, 22)) field_error(inst, "JAL offset out of range");
      w = insert_bits(w, 22, 4, inst.rd);
      w = insert_bits(w, 0, 22, static_cast<std::uint32_t>(inst.imm));
      break;
  }
  return w;
}

std::optional<Instruction> decode(std::uint32_t word) {
  const std::uint32_t opbits = bits(word, 26, 6);
  if (opbits > kMaxOpcode) return std::nullopt;
  Instruction inst;
  inst.op = static_cast<Opcode>(opbits);
  switch (format_of(inst.op)) {
    case Format::kNone:
      break;
    case Format::kR:
      inst.rd = static_cast<std::uint8_t>(bits(word, 22, 4));
      inst.ra = static_cast<std::uint8_t>(bits(word, 18, 4));
      inst.rb = static_cast<std::uint8_t>(bits(word, 14, 4));
      break;
    case Format::kI:
    case Format::kJalr:
      inst.rd = static_cast<std::uint8_t>(bits(word, 22, 4));
      inst.ra = static_cast<std::uint8_t>(bits(word, 18, 4));
      inst.imm = sign_extend(bits(word, 0, 14), 14);
      break;
    case Format::kIu:
    case Format::kShift:
      inst.rd = static_cast<std::uint8_t>(bits(word, 22, 4));
      inst.ra = static_cast<std::uint8_t>(bits(word, 18, 4));
      inst.imm = static_cast<std::int32_t>(bits(word, 0, 14));
      break;
    case Format::kLui:
      inst.rd = static_cast<std::uint8_t>(bits(word, 22, 4));
      inst.imm = static_cast<std::int32_t>(bits(word, 0, 18));
      break;
    case Format::kStore:
      inst.rd = static_cast<std::uint8_t>(bits(word, 22, 4));
      inst.ra = static_cast<std::uint8_t>(bits(word, 18, 4));
      inst.imm = sign_extend(bits(word, 0, 14), 14);
      break;
    case Format::kBranch:
      inst.ra = static_cast<std::uint8_t>(bits(word, 22, 4));
      inst.rb = static_cast<std::uint8_t>(bits(word, 18, 4));
      inst.imm = sign_extend(bits(word, 0, 14), 14);
      break;
    case Format::kJal:
      inst.rd = static_cast<std::uint8_t>(bits(word, 22, 4));
      inst.imm = sign_extend(bits(word, 0, 22), 22);
      break;
  }
  return inst;
}

std::string_view mnemonic(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kSll: return "sll";
    case Opcode::kSrl: return "srl";
    case Opcode::kSra: return "sra";
    case Opcode::kSlt: return "slt";
    case Opcode::kSltu: return "sltu";
    case Opcode::kMul: return "mul";
    case Opcode::kAddi: return "addi";
    case Opcode::kAndi: return "andi";
    case Opcode::kOri: return "ori";
    case Opcode::kXori: return "xori";
    case Opcode::kSlli: return "slli";
    case Opcode::kSrli: return "srli";
    case Opcode::kSrai: return "srai";
    case Opcode::kSlti: return "slti";
    case Opcode::kSltiu: return "sltiu";
    case Opcode::kLui: return "lui";
    case Opcode::kLw: return "lw";
    case Opcode::kLh: return "lh";
    case Opcode::kLhu: return "lhu";
    case Opcode::kLb: return "lb";
    case Opcode::kLbu: return "lbu";
    case Opcode::kSw: return "sw";
    case Opcode::kSh: return "sh";
    case Opcode::kSb: return "sb";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kBltu: return "bltu";
    case Opcode::kBgeu: return "bgeu";
    case Opcode::kJal: return "jal";
    case Opcode::kJalr: return "jalr";
  }
  return "?";
}

std::string_view reg_name(unsigned reg) {
  static constexpr std::string_view kNames[kNumRegs] = {
      "r0", "r1", "r2",  "r3",  "r4",  "r5", "r6", "r7",
      "r8", "r9", "r10", "r11", "r12", "r13", "sp", "lr"};
  return reg < kNumRegs ? kNames[reg] : "r?";
}

}  // namespace sofia::isa
