// SR32: the small 32-bit RISC ISA this reproduction uses in place of
// SPARCv8 (see DESIGN.md §1 for why the substitution is faithful).
//
// Fixed 32-bit instruction words, 16 registers (r0 hardwired to zero,
// r14 = sp, r15 = lr by convention; r13 is reserved by the SOFIA
// transformer as a scratch register for devirtualized indirect jumps).
// No delay slots, no register windows.
//
// Encoding (bit ranges inclusive):
//   opcode  [31:26]
//   R-type:  rd [25:22]  ra [21:18]  rb [17:14]
//   I-type:  rd [25:22]  ra [21:18]  imm14 [13:0]   (sign-extended unless noted)
//   store:   rs [25:22]  ra [21:18]  imm14 [13:0]   (rs = value, ra = base)
//   branch:  ra [25:22]  rb [21:18]  off14 [13:0]   (signed word offset)
//   JAL:     rd [25:22]  off22 [21:0]               (signed word offset)
//   LUI:     rd [25:22]  imm18 [17:0]               (rd = imm18 << 14)
//
// The all-zero word encodes NOP, so zero-initialized memory is inert.
// Logical immediates (ANDI/ORI/XORI) are zero-extended so that LUI+ORI
// composes 32-bit constants; arithmetic immediates are sign-extended.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace sofia::isa {

inline constexpr unsigned kNumRegs = 16;
inline constexpr unsigned kRegZero = 0;
inline constexpr unsigned kRegScratch = 13;  ///< transformer-reserved
inline constexpr unsigned kRegSp = 14;
inline constexpr unsigned kRegLr = 15;

enum class Opcode : std::uint8_t {
  kNop = 0,
  kHalt = 1,
  // R-type ALU
  kAdd = 2,
  kSub = 3,
  kAnd = 4,
  kOr = 5,
  kXor = 6,
  kSll = 7,
  kSrl = 8,
  kSra = 9,
  kSlt = 10,
  kSltu = 11,
  kMul = 12,
  // I-type ALU
  kAddi = 13,
  kAndi = 14,
  kOri = 15,
  kXori = 16,
  kSlli = 17,
  kSrli = 18,
  kSrai = 19,
  kSlti = 20,
  kSltiu = 21,
  kLui = 22,
  // Memory
  kLw = 23,
  kLh = 24,
  kLhu = 25,
  kLb = 26,
  kLbu = 27,
  kSw = 28,
  kSh = 29,
  kSb = 30,
  // Control
  kBeq = 31,
  kBne = 32,
  kBlt = 33,
  kBge = 34,
  kBltu = 35,
  kBgeu = 36,
  kJal = 37,
  kJalr = 38,
};

inline constexpr std::uint8_t kMaxOpcode = 38;

/// A decoded instruction. `imm` holds the sign- or zero-extended immediate
/// (word offsets for branches/JAL, raw 18-bit value for LUI).
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::int32_t imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Encode to a 32-bit word. Throws sofia::Error if a field is out of range.
std::uint32_t encode(const Instruction& inst);

/// Decode a word; nullopt when the opcode is not defined (possible for
/// garbage produced by a CFI decryption error).
std::optional<Instruction> decode(std::uint32_t word);

// ---- instruction classes -------------------------------------------------

constexpr bool is_store(Opcode op) {
  return op == Opcode::kSw || op == Opcode::kSh || op == Opcode::kSb;
}

constexpr bool is_load(Opcode op) {
  return op >= Opcode::kLw && op <= Opcode::kLbu;
}

/// Conditional branches (two successors).
constexpr bool is_cond_branch(Opcode op) {
  return op >= Opcode::kBeq && op <= Opcode::kBgeu;
}

constexpr bool is_jump(Opcode op) {
  return op == Opcode::kJal || op == Opcode::kJalr;
}

/// Exit-class: may only occupy the last instruction slot of a SOFIA block
/// ("control can only exit at inst_n", paper §II-B-1).
constexpr bool is_control(Opcode op) {
  return is_cond_branch(op) || is_jump(op) || op == Opcode::kHalt;
}

/// Does this instruction write rd? (Stores and branches do not.)
constexpr bool writes_rd(Opcode op) {
  return !(op == Opcode::kNop || op == Opcode::kHalt || is_store(op) ||
           is_cond_branch(op));
}

std::string_view mnemonic(Opcode op);

/// Canonical register name ("r7", with "sp"/"lr" for r14/r15).
std::string_view reg_name(unsigned reg);

}  // namespace sofia::isa
