// Pretty-printing of SR32 instructions, used by the toolchain inspector
// example, trace output, and test diagnostics.
#pragma once

#include <cstdint>
#include <string>

#include "isa/isa.hpp"

namespace sofia::isa {

/// Render one instruction. `addr` (byte address of the instruction) is used
/// to print absolute branch/JAL targets; pass 0 to print relative offsets.
std::string disassemble(const Instruction& inst, std::uint32_t addr = 0);

/// Decode-and-render a raw word; undecodable words print as ".word 0x...".
std::string disassemble_word(std::uint32_t word, std::uint32_t addr = 0);

}  // namespace sofia::isa
