#include "cfg/cfg.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "support/error.hpp"

namespace sofia::cfg {

using isa::Opcode;

std::string_view to_string(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kFallThrough: return "fall";
    case EdgeKind::kBranchFall: return "branch-fall";
    case EdgeKind::kBranchTaken: return "branch-taken";
    case EdgeKind::kJump: return "jump";
    case EdgeKind::kCall: return "call";
    case EdgeKind::kReturn: return "return";
    case EdgeKind::kIndirect: return "indirect";
  }
  return "?";
}

bool is_ret(const isa::Instruction& inst) {
  return inst.op == Opcode::kJalr && inst.rd == isa::kRegZero &&
         inst.ra == isa::kRegLr && inst.imm == 0;
}

namespace {

std::uint32_t branch_target(const assembler::Program& prog, std::uint32_t index) {
  const auto& si = prog.text[index];
  if (si.reloc == assembler::RelocKind::kBranch ||
      si.reloc == assembler::RelocKind::kCall)
    return prog.text_labels.at(si.target);
  // Numeric (relative word) offset.
  return index + static_cast<std::uint32_t>(si.inst.imm);
}

[[noreturn]] void fail(const assembler::Program& prog, std::uint32_t index,
                       const std::string& what) {
  throw TransformError("cfg: instruction " + std::to_string(index) + " (line " +
                       std::to_string(prog.text[index].line) + "): " + what);
}

}  // namespace

Cfg Cfg::build(const assembler::Program& prog) {
  Cfg cfg;
  const auto n = static_cast<std::uint32_t>(prog.text.size());
  cfg.text_size_ = n;
  if (n == 0) throw TransformError("cfg: empty program");
  cfg.entry_ = prog.text_labels.at(prog.entry);

  // ---- validate instruction stream & collect leaders ----------------------
  std::set<std::uint32_t> leader_set;
  leader_set.insert(cfg.entry_);
  leader_set.insert(0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto& si = prog.text[i];
    const Opcode op = si.inst.op;
    if (op == Opcode::kJalr && !is_ret(si.inst)) {
      // A surviving indirect jump is analyzable iff its target set was
      // declared (a forward-edge gating scheme keeps annotated jump-form
      // jalr; everything else devirtualizes them before this point).
      if (si.indirect_targets.empty())
        fail(prog, i,
             "indirect jump survived normalization (missing .targets "
             "annotation?)");
      for (const std::string& t : si.indirect_targets) {
        const auto it = prog.text_labels.find(t);
        if (it == prog.text_labels.end() || it->second >= n)
          fail(prog, i, "indirect target '" + t + "' is not a text label");
        leader_set.insert(it->second);
      }
    }
    if (isa::is_cond_branch(op) || op == Opcode::kJal) {
      const std::uint32_t t = branch_target(prog, i);
      if (t >= n) fail(prog, i, "branch target out of range");
      leader_set.insert(t);
    }
    if (isa::is_control(op)) {
      if (i + 1 < n) leader_set.insert(i + 1);
      // A conditional branch or call as the very last instruction would fall
      // off the end / have no return point.
      if (i + 1 == n && (isa::is_cond_branch(op) ||
                         (op == Opcode::kJal && si.inst.rd != isa::kRegZero)))
        fail(prog, i, "control falls off the end of text");
    } else if (i + 1 == n) {
      fail(prog, i, "execution can run off the end of text");
    }
  }
  cfg.leaders_.assign(leader_set.begin(), leader_set.end());
  for (std::size_t p = 0; p < cfg.leaders_.size(); ++p)
    cfg.leader_pos_[cfg.leaders_[p]] = p;

  // ---- intra-block edges (everything except returns) ----------------------
  auto add_edge = [&cfg](std::uint32_t from, std::uint32_t to, EdgeKind kind) {
    cfg.edges_.push_back({from, to, kind});
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto& si = prog.text[i];
    const Opcode op = si.inst.op;
    if (isa::is_cond_branch(op)) {
      add_edge(i, branch_target(prog, i), EdgeKind::kBranchTaken);
      add_edge(i, i + 1, EdgeKind::kBranchFall);
    } else if (op == Opcode::kJal) {
      add_edge(i, branch_target(prog, i),
               si.inst.rd == isa::kRegZero ? EdgeKind::kJump : EdgeKind::kCall);
    } else if (op == Opcode::kJalr && !is_ret(si.inst)) {
      // One indirect edge per declared target (deduplicated: a label may
      // appear twice in the annotation).
      std::set<std::uint32_t> targets;
      for (const std::string& t : si.indirect_targets)
        targets.insert(prog.text_labels.at(t));
      for (const std::uint32_t t : targets)
        add_edge(i, t, EdgeKind::kIndirect);
    } else if (op == Opcode::kJalr || op == Opcode::kHalt) {
      // ret edges added below; halt has no successors
    } else if (i + 1 < n && leader_set.count(i + 1) != 0) {
      add_edge(i, i + 1, EdgeKind::kFallThrough);
    }
  }

  // ---- function discovery --------------------------------------------------
  // Entries: program entry + every call target.
  std::set<std::uint32_t> entry_set{cfg.entry_};
  for (const auto& e : cfg.edges_)
    if (e.kind == EdgeKind::kCall) entry_set.insert(e.to);

  std::unordered_map<std::uint32_t, std::string> label_of_index;
  for (const auto& [name, idx] : prog.text_labels) {
    // Prefer the lexicographically first label for determinism.
    auto it = label_of_index.find(idx);
    if (it == label_of_index.end() || name < it->second) label_of_index[idx] = name;
  }

  std::unordered_map<std::uint32_t, std::uint32_t> ret_owner;  // ret -> entry
  for (const std::uint32_t entry : entry_set) {
    FunctionInfo fn;
    fn.entry = entry;
    if (auto it = label_of_index.find(entry); it != label_of_index.end())
      fn.name = it->second;
    else
      fn.name = "<entry>";
    // Intra-procedural BFS: calls continue at their return point, rets stop.
    std::deque<std::uint32_t> work{entry};
    std::set<std::uint32_t> seen{entry};
    while (!work.empty()) {
      const std::uint32_t i = work.front();
      work.pop_front();
      fn.body.push_back(i);
      const auto& inst = prog.text[i].inst;
      std::vector<std::uint32_t> succ;
      if (isa::is_cond_branch(inst.op)) {
        succ = {branch_target(prog, i), i + 1};
      } else if (inst.op == Opcode::kJal) {
        if (inst.rd == isa::kRegZero)
          succ = {branch_target(prog, i)};
        else
          succ = {i + 1};  // step over the call
      } else if (inst.op == Opcode::kJalr && is_ret(inst)) {
        fn.rets.push_back(i);
        auto [it, inserted] = ret_owner.emplace(i, entry);
        if (!inserted && it->second != entry)
          fail(prog, i, "ret is reachable from multiple function entries ('" +
                            fn.name + "' and another); split the shared epilogue");
      } else if (inst.op == Opcode::kJalr) {
        // Surviving jump-form jalr: flow continues at every declared
        // target, inside the same function (like a computed goto).
        for (const std::string& t : prog.text[i].indirect_targets)
          succ.push_back(prog.text_labels.at(t));
      } else if (inst.op != Opcode::kHalt) {
        succ = {i + 1};
      }
      for (const std::uint32_t s : succ) {
        if (s < n && seen.insert(s).second) work.push_back(s);
      }
    }
    std::sort(fn.body.begin(), fn.body.end());
    std::sort(fn.rets.begin(), fn.rets.end());
    cfg.functions_.push_back(std::move(fn));
  }
  std::sort(cfg.functions_.begin(), cfg.functions_.end(),
            [](const FunctionInfo& a, const FunctionInfo& b) { return a.entry < b.entry; });

  // ---- call sites and return edges ----------------------------------------
  for (const auto& e : cfg.edges_) {
    if (e.kind != EdgeKind::kCall) continue;
    auto* fn = const_cast<FunctionInfo*>(cfg.function_at(e.to));
    fn->call_sites.push_back(e.from);
  }
  std::vector<Edge> ret_edges;
  for (auto& fn : cfg.functions_) {
    std::sort(fn.call_sites.begin(), fn.call_sites.end());
    if (!fn.rets.empty() && fn.entry == cfg.entry_ && fn.call_sites.empty())
      fail(prog, fn.rets.front(), "ret in entry function with no callers");
    for (const std::uint32_t ret : fn.rets)
      for (const std::uint32_t site : fn.call_sites)
        ret_edges.push_back({ret, site + 1, EdgeKind::kReturn});
  }
  cfg.edges_.insert(cfg.edges_.end(), ret_edges.begin(), ret_edges.end());

  // ---- predecessor lists & reachability ------------------------------------
  for (const auto& e : cfg.edges_) {
    if (cfg.leader_pos_.count(e.to) == 0)
      throw TransformError("cfg: internal error: edge target is not a leader");
    cfg.preds_[e.to].push_back(e);
  }
  for (auto& [leader, edges] : cfg.preds_) {
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      return std::tie(a.from, a.kind) < std::tie(b.from, b.kind);
    });
  }

  cfg.reachable_.assign(n, false);
  {
    std::deque<std::uint32_t> work{cfg.entry_};
    cfg.reachable_[cfg.entry_] = true;
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> succs;
    for (const auto& e : cfg.edges_) succs[e.from].push_back(e.to);
    while (!work.empty()) {
      std::uint32_t i = work.front();
      work.pop_front();
      // Walk the straight-line run, then follow edges from its terminator.
      const std::uint32_t end = cfg.run_end(i);
      for (std::uint32_t j = i; j < end; ++j) cfg.reachable_[j] = true;
      const std::uint32_t last = end - 1;
      // Successor leaders: any edge out of an instruction in [i, end).
      for (std::uint32_t j = i; j <= last; ++j) {
        auto it = succs.find(j);
        if (it == succs.end()) continue;
        for (const std::uint32_t t : it->second) {
          if (!cfg.reachable_[t]) {
            cfg.reachable_[t] = true;
            work.push_back(t);
          }
        }
      }
    }
  }
  return cfg;
}

std::uint32_t Cfg::run_end(std::uint32_t leader) const {
  const auto it = leader_pos_.find(leader);
  if (it == leader_pos_.end())
    throw TransformError("cfg: run_end on non-leader " + std::to_string(leader));
  const std::size_t pos = it->second;
  return (pos + 1 < leaders_.size()) ? leaders_[pos + 1] : text_size_;
}

const std::vector<Edge>& Cfg::preds(std::uint32_t leader) const {
  static const std::vector<Edge> kEmpty;
  const auto it = preds_.find(leader);
  return it == preds_.end() ? kEmpty : it->second;
}

bool Cfg::reachable(std::uint32_t leader) const {
  return leader < reachable_.size() && reachable_[leader];
}

const FunctionInfo* Cfg::function_at(std::uint32_t index) const {
  for (const auto& fn : functions_)
    if (fn.entry == index) return &fn;
  return nullptr;
}

}  // namespace sofia::cfg
