// Instruction-level control flow graph (paper §II-A: "a precise Control
// Flow Graph of the whole program" drives the encryption).
//
// Nodes are instruction indices into assembler::Program::text. The graph is
// built on a *normalized* program: annotated indirect jumps must already be
// devirtualized (xform/normalize.hpp), so the only surviving jalr form is
// `ret` (jalr r0, lr, 0). Returns are resolved by function analysis: every
// `ret` of a callee produces one return edge to each call site's return
// point, exactly the paper's "the return point in the caller is encrypted
// with the address of the return instruction in the callee".
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "assembler/program.hpp"

namespace sofia::cfg {

enum class EdgeKind : std::uint8_t {
  kFallThrough,  ///< sequential flow from a non-control instruction
  kBranchFall,   ///< not-taken side of a conditional branch
  kBranchTaken,  ///< taken side of a conditional branch
  kJump,         ///< unconditional jal r0 (j)
  kCall,         ///< jal rd != r0
  kReturn,       ///< callee ret -> call-site return point
  kIndirect,     ///< surviving annotated jalr -> declared .targets member
};

std::string_view to_string(EdgeKind kind);

struct Edge {
  std::uint32_t from = 0;  ///< index of the transferring instruction
  std::uint32_t to = 0;    ///< index of the target (always a leader)
  EdgeKind kind = EdgeKind::kFallThrough;

  friend bool operator==(const Edge&, const Edge&) = default;
};

struct FunctionInfo {
  std::string name;                     ///< defining label ("<entry>" for main)
  std::uint32_t entry = 0;              ///< first instruction index
  std::vector<std::uint32_t> body;      ///< sorted instruction indices
  std::vector<std::uint32_t> rets;      ///< ret instruction indices
  std::vector<std::uint32_t> call_sites;  ///< jal indices that call this entry
};

class Cfg {
 public:
  /// Analyze a normalized program. Throws sofia::TransformError on
  /// unanalyzable control flow (stray jalr, falling off the end, a ret
  /// shared between functions, a ret in an uncalled entry function).
  static Cfg build(const assembler::Program& prog);

  /// Sorted instruction indices that begin a straight-line run. Position 0
  /// is always index 0.
  const std::vector<std::uint32_t>& leaders() const { return leaders_; }

  bool is_leader(std::uint32_t index) const {
    return leader_pos_.count(index) != 0;
  }

  /// Exclusive end of the run starting at `leader` (the next leader, or the
  /// end of text). Within a run only the final instruction can be control.
  std::uint32_t run_end(std::uint32_t leader) const;

  /// All edges, in deterministic order.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Incoming edges of a leader (empty vector for unreferenced leaders).
  const std::vector<Edge>& preds(std::uint32_t leader) const;

  /// Reachable from the program entry following all edge kinds.
  bool reachable(std::uint32_t leader) const;

  /// Program entry instruction index.
  std::uint32_t entry() const { return entry_; }

  const std::vector<FunctionInfo>& functions() const { return functions_; }

  /// Function whose entry is `index`, or nullptr.
  const FunctionInfo* function_at(std::uint32_t index) const;

 private:
  std::vector<std::uint32_t> leaders_;
  std::unordered_map<std::uint32_t, std::size_t> leader_pos_;
  std::vector<Edge> edges_;
  std::unordered_map<std::uint32_t, std::vector<Edge>> preds_;
  std::vector<bool> reachable_;
  std::vector<FunctionInfo> functions_;
  std::uint32_t entry_ = 0;
  std::uint32_t text_size_ = 0;
};

/// True when the instruction is the canonical return (jalr r0, lr, 0).
bool is_ret(const isa::Instruction& inst);

}  // namespace sofia::cfg
