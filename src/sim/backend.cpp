#include "sim/backend.hpp"

#include "sim/cycle_backend.hpp"
#include "sim/functional_backend.hpp"
#include "sim/remote_backend.hpp"
#include "support/error.hpp"

namespace sofia::sim {

namespace {

template <typename T>
std::unique_ptr<Backend> make() {
  return std::make_unique<T>();
}

}  // namespace

const std::vector<BackendEntry>& backend_registry() {
  static const std::vector<BackendEntry> registry = {
      {"cycle", kCycleBackendDescription, make<CycleAccurateBackend>},
      {"functional", kFunctionalBackendDescription, make<FunctionalBackend>},
      {"remote", kRemoteBackendDescription, make<RemoteBackend>},
  };
  return registry;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  for (const auto& entry : backend_registry())
    names.emplace_back(entry.name);
  return names;
}

bool is_backend(std::string_view name) {
  for (const auto& entry : backend_registry())
    if (entry.name == name) return true;
  return false;
}

std::unique_ptr<Backend> make_backend(std::string_view name) {
  for (const auto& entry : backend_registry())
    if (entry.name == name) return entry.make();
  std::string known;
  for (const auto& entry : backend_registry()) {
    if (!known.empty()) known += " or ";
    known += entry.name;
  }
  throw Error("unknown backend '" + std::string(name) + "' (expected " + known +
              ")");
}

std::unique_ptr<Backend> make_backend(std::string_view name,
                                      const remote::RemoteSpec& remote_spec) {
  if (name == "remote") return std::make_unique<RemoteBackend>(remote_spec);
  return make_backend(name);
}

}  // namespace sofia::sim
