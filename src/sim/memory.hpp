// Flat, sparse, little-endian physical memory (4 KiB pages allocated on
// first touch). Pure storage: MMIO is decoded by the core, not here.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "assembler/image.hpp"

namespace sofia::sim {

class Memory {
 public:
  std::uint8_t load8(std::uint32_t addr) const;
  std::uint16_t load16(std::uint32_t addr) const;
  std::uint32_t load32(std::uint32_t addr) const;
  void store8(std::uint32_t addr, std::uint8_t value);
  void store16(std::uint32_t addr, std::uint16_t value);
  void store32(std::uint32_t addr, std::uint32_t value);

  /// Copy an image's text and data sections into memory.
  void load_image(const assembler::LoadImage& image);

 private:
  static constexpr std::uint32_t kPageBits = 12;
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;

  const std::uint8_t* page_for_read(std::uint32_t addr) const;
  std::uint8_t* page_for_write(std::uint32_t addr);

  std::unordered_map<std::uint32_t, std::unique_ptr<std::uint8_t[]>> pages_;
};

}  // namespace sofia::sim
