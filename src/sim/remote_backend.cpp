#include "sim/remote_backend.hpp"

#include "remote/transport.hpp"
#include "remote/wire.hpp"
#include "support/error.hpp"

namespace sofia::sim {

RemoteBackend::RemoteBackend() : RemoteBackend(remote::RemoteSpec{}) {}

RemoteBackend::RemoteBackend(remote::RemoteSpec spec)
    : spec_(spec.resolved()) {}

RemoteBackend::~RemoteBackend() = default;

remote::WorkerProcess& RemoteBackend::worker() const {
  if (!spec_.configured())
    throw Error(
        "remote backend: no worker configured — set DeviceProfile.remote "
        "(worker command + far-side backend) or the SOFIA_WORKER environment "
        "variable");
  if (spec_.backend == "remote")
    throw Error("remote backend: far-side backend must be a local one "
                "(\"remote\" would recurse)");
  if (!worker_)
    worker_ = std::make_unique<remote::WorkerProcess>(spec_.command);
  return *worker_;
}

remote::Frame RemoteBackend::exchange(const remote::Frame& request) const {
  auto& w = worker();
  try {
    w.send(request);
    return w.receive();
  } catch (...) {
    // Transport state is unknown (half-written request, partial reply);
    // drop the process so the next call starts from a clean pipe pair.
    worker_.reset();
    throw;
  }
}

BackendCapabilities RemoteBackend::capabilities() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (caps_) return *caps_;
  const auto reply = exchange(
      {remote::MessageType::kHelloRequest,
       remote::encode_hello_request({spec_.backend})});
  if (reply.type == remote::MessageType::kErrorReply)
    throw Error("remote backend: worker '" + spec_.command + "' reported: " +
                remote::decode_error_reply(reply.payload).message);
  if (reply.type != remote::MessageType::kHelloReply)
    throw Error("remote backend: worker '" + spec_.command +
                "' sent an unexpected reply to the hello request");
  caps_ = remote::decode_hello_reply(reply.payload).caps;
  return *caps_;
}

RunResult RemoteBackend::run(const assembler::LoadImage& image,
                             const SimConfig& config) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto reply = exchange(
      {remote::MessageType::kRunRequest,
       remote::encode_run_request(spec_.backend, image, config)});
  if (reply.type == remote::MessageType::kErrorReply)
    throw Error("remote backend: worker '" + spec_.command + "' reported: " +
                remote::decode_error_reply(reply.payload).message);
  if (reply.type != remote::MessageType::kRunReply)
    throw Error("remote backend: worker '" + spec_.command +
                "' sent an unexpected reply to the run request");
  return remote::decode_run_reply(reply.payload).result;
}

}  // namespace sofia::sim
