#include "sim/functional_backend.hpp"

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "isa/isa.hpp"
#include "scheme/scheme.hpp"
#include "sim/memory.hpp"
#include "support/bits.hpp"

namespace sofia::sim {

namespace {

using isa::Instruction;
using isa::Opcode;

// One architectural interpreter run. The SOFIA front end is modelled at
// block granularity: enter_block() performs the full fetch → decrypt →
// MAC-verify → placement-check sequence of SofiaFetch::process_block in
// the same order (entry offset, then MAC, then per-word decode/exit/store
// rules), minus every timing decision.
class FunctionalMachine {
 public:
  FunctionalMachine(const assembler::LoadImage& image, const SimConfig& config)
      : image_(image), config_(config) {
    mem_.load_image(image);
    regs_[isa::kRegSp] = image.stack_top;
    if (image.sofia)
      opener_ = scheme::get_scheme(config.scheme)
                    .make_opener(config.keys, image.omega,
                                 image.per_pair ? crypto::Granularity::kPerPair
                                                : crypto::Granularity::kPerWord);
  }

  RunResult run() {
    if (image_.sofia)
      run_sofia();
    else
      run_vanilla();
    // No timing model: "cycles" is the retired instruction count, and the
    // reset/trace timestamps below use the same clock.
    result_.stats.cycles = result_.stats.insts;
    return std::move(result_);
  }

 private:
  /// A verified, decoded block, keyed by (entry word, prevPC word).
  struct Block {
    ResetCause cause = ResetCause::kNone;  ///< != kNone: entering resets
    /// True when `cause` came from the per-word decode/placement loop.
    /// The forward-edge gate fires after verification but before decode
    /// (matching SofiaFetch's check order), so run_sofia needs to know
    /// which side of the gate a cached cause belongs to.
    bool cause_is_decode = false;
    std::uint32_t reset_pc = 0;
    std::uint32_t base_word = 0;
    std::uint32_t first_inst = 0;  ///< word index of the first instruction
    bool gate_indirect = false;    ///< scheme gates indirect transfers
    std::uint8_t entry_label = 0;  ///< label of the entered path
    std::uint8_t exit_label = 0;   ///< label the exit jalr may reach
    std::vector<Instruction> insts;
  };

  // ---- outcome plumbing ---------------------------------------------------

  void finish(RunResult::Status status) {
    result_.status = status;
    done_ = true;
  }

  void fault(const std::string& message) {
    result_.fault = message;
    finish(RunResult::Status::kFault);
  }

  void reset(ResetCause cause, std::uint32_t pc) {
    result_.reset = ResetEvent{cause, result_.stats.insts, pc};
    finish(RunResult::Status::kReset);
  }

  /// Instruction budget (SimConfig::max_cycles repurposed as an
  /// instruction count — the only clock this backend has).
  bool budget_ok() {
    if (result_.stats.insts < config_.max_cycles) return true;
    finish(RunResult::Status::kMaxCycles);
    return false;
  }

  // ---- fetch path ---------------------------------------------------------

  std::uint32_t text_base_word() const { return image_.text_base / 4; }

  /// Same transient-fault model as FetchUnit::apply_fault: flip one bit of
  /// the N-th raw word this backend fetches.
  std::uint32_t apply_fault(std::uint32_t word) {
    const std::uint64_t index = fetch_count_++;
    if (config_.fault.enabled && index == config_.fault.fetch_index)
      return word ^ (1u << (config_.fault.bit & 31));
    return word;
  }

  const Block& enter_block(std::uint32_t target_word, std::uint32_t prev_word) {
    // Deferred invalidation: a store into the text section marks the cache
    // dirty (see do_store) and we drop it here, between blocks — never while
    // run_sofia() still executes out of a reference into cache_.
    if (text_dirty_) {
      cache_.clear();
      text_dirty_ = false;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(target_word) << 32) | prev_word;
    // With a fault armed every entry must refetch, or the fetch counter
    // would never reach the configured injection index.
    if (!config_.fault.enabled) {
      if (const auto it = cache_.find(key); it != cache_.end())
        return it->second;
    }
    Block blk = decode_block(target_word, prev_word);
    if (config_.fault.enabled) {
      scratch_ = std::move(blk);
      return scratch_;
    }
    return cache_.emplace(key, std::move(blk)).first->second;
  }

  Block decode_block(std::uint32_t target_word, std::uint32_t prev_word) {
    Block blk;
    auto& st = result_.stats;
    const std::uint32_t b = config_.policy.words_per_block;
    const std::uint32_t offset = (target_word - text_base_word()) % b;
    blk.base_word = target_word - offset;
    ++st.blocks_fetched;

    if (offset > 2) {
      blk.cause = ResetCause::kInvalidEntry;
      blk.reset_pc = target_word * 4;
      return blk;
    }
    // Fetch order, block type and multiplexor path — identical to SofiaFetch.
    const scheme::EntryPath path = scheme::entry_path(offset, b);

    std::vector<std::uint32_t> raw(b, 0);
    for (const std::uint32_t j : path.sched)
      raw[j] = apply_fault(mem_.load32((blk.base_word + j) * 4));
    st.fetch_words += path.sched.size();

    // ---- open the block through the protection scheme ----
    const std::uint32_t base_word = blk.base_word;
    const scheme::DeviceBlock dev = opener_->open(base_word, prev_word, path, raw);
    st.ctr_ops += dev.decrypt_ops.size();
    st.cbc_ops += dev.verify_ops.size();
    st.mac_words += dev.header_words;
    if (dev.performs_verify) ++st.mac_verifications;
    blk.first_inst = dev.first_inst;
    blk.gate_indirect = dev.gate_indirect;
    blk.entry_label = dev.entry_label;
    blk.exit_label = dev.exit_label;
    if (dev.verify_cause != ResetCause::kNone) {
      blk.cause = dev.verify_cause;
      blk.reset_pc = base_word * 4;
      return blk;
    }
    const std::vector<std::uint32_t>& plain = dev.plain;

    // ---- decode + placement rules, in SofiaFetch's check order ----
    for (std::uint32_t w = blk.first_inst; w < b; ++w) {
      const auto decoded = isa::decode(plain[w]);
      const std::uint32_t pc = (base_word + w) * 4;
      if (!decoded) {
        blk.cause = ResetCause::kIllegalInstruction;
        blk.cause_is_decode = true;
        blk.reset_pc = pc;
        return blk;
      }
      const bool last = (w == b - 1);
      if (isa::is_control(decoded->op) && !last) {
        blk.cause = ResetCause::kIllegalExit;
        blk.cause_is_decode = true;
        blk.reset_pc = pc;
        return blk;
      }
      if (isa::is_store(decoded->op) && w < config_.policy.store_min_word) {
        blk.cause = ResetCause::kRestrictedStore;
        blk.cause_is_decode = true;
        blk.reset_pc = pc;
        return blk;
      }
      blk.insts.push_back(*decoded);
    }
    return blk;
  }

  // ---- execution ----------------------------------------------------------

  void run_sofia() {
    std::uint32_t target_word = image_.entry / 4;
    std::uint32_t prev_word = image_.entry_prev;
    const std::uint32_t b = config_.policy.words_per_block;
    // Source exit label of an in-flight indirect transfer (gating schemes).
    std::optional<std::uint8_t> pending;
    while (!done_) {
      const Block& blk = enter_block(target_word, prev_word);
      // SofiaFetch's check order: invalid entry / verification first, the
      // forward-edge gate next, decode-time causes last.
      if (blk.cause != ResetCause::kNone && !blk.cause_is_decode) {
        reset(blk.cause, blk.reset_pc);
        return;
      }
      if (pending && (!blk.gate_indirect || blk.entry_label == 0 ||
                      blk.entry_label != *pending)) {
        reset(ResetCause::kTargetSetViolation, blk.base_word * 4);
        return;
      }
      pending.reset();
      if (blk.cause != ResetCause::kNone) {
        reset(blk.cause, blk.reset_pc);
        return;
      }
      if (blk.insts.empty()) {
        fault("block policy leaves no instruction slots");
        return;
      }
      std::uint32_t next = 0;
      for (std::size_t i = 0; i < blk.insts.size() && !done_; ++i) {
        if (!budget_ok()) return;
        const std::uint32_t pc =
            (blk.base_word + blk.first_inst + static_cast<std::uint32_t>(i)) * 4;
        next = pc + 4;
        exec(blk.insts[i], pc, next);
      }
      if (done_) return;
      // The exit word decided where fetch continues; its own address is
      // the next block's prevPC (identical for taken transfers, direct
      // jumps and sequential fall-through). A gated indirect exit instead
      // presents the canonical sentinel and arms the label check.
      const Instruction& exit_inst = blk.insts.back();
      const bool indirect_exit =
          exit_inst.op == Opcode::kJalr &&
          !(exit_inst.rd == isa::kRegZero && exit_inst.ra == isa::kRegLr &&
            exit_inst.imm == 0);
      if (indirect_exit && blk.gate_indirect) {
        pending = blk.exit_label;
        prev_word = assembler::kIndirectPrevWord;
      } else {
        prev_word = base_exit_word(blk.base_word, b);
      }
      target_word = next / 4;
    }
  }

  static std::uint32_t base_exit_word(std::uint32_t base_word, std::uint32_t b) {
    return base_word + b - 1;
  }

  void run_vanilla() {
    std::uint32_t pc = image_.entry;
    while (!done_) {
      if (!budget_ok()) return;
      const auto decoded = isa::decode(apply_fault(mem_.load32(pc)));
      if (!decoded) {
        reset(ResetCause::kIllegalInstruction, pc);
        return;
      }
      ++result_.stats.fetch_words;
      std::uint32_t next = pc + 4;
      exec(*decoded, pc, next);
      pc = next;
    }
  }

  std::uint32_t reg(unsigned r) const { return regs_[r]; }

  void write_reg(unsigned r, std::uint32_t value) {
    if (r != isa::kRegZero) regs_[r] = value;
  }

  /// Execute one instruction architecturally; `next` holds the successor
  /// byte PC (already pc + 4) and is overwritten by taken transfers.
  void exec(const Instruction& in, std::uint32_t pc, std::uint32_t& next) {
    auto& st = result_.stats;
    ++st.insts;
    if (config_.collect_trace && result_.trace.size() < config_.max_trace)
      result_.trace.push_back({st.insts, pc, isa::encode(in)});

    const std::uint32_t a = regs_[in.ra];
    const std::uint32_t bval = regs_[in.rb];
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(bval);
    const auto imm = in.imm;
    const std::uint32_t uimm = static_cast<std::uint32_t>(imm);

    switch (in.op) {
      case Opcode::kNop:
        ++st.nops;
        break;
      case Opcode::kHalt:
        finish(RunResult::Status::kHalted);
        break;
      case Opcode::kAdd: write_reg(in.rd, a + bval); break;
      case Opcode::kSub: write_reg(in.rd, a - bval); break;
      case Opcode::kAnd: write_reg(in.rd, a & bval); break;
      case Opcode::kOr: write_reg(in.rd, a | bval); break;
      case Opcode::kXor: write_reg(in.rd, a ^ bval); break;
      case Opcode::kSll: write_reg(in.rd, a << (bval & 31)); break;
      case Opcode::kSrl: write_reg(in.rd, a >> (bval & 31)); break;
      case Opcode::kSra:
        write_reg(in.rd, static_cast<std::uint32_t>(sa >> (bval & 31)));
        break;
      case Opcode::kSlt: write_reg(in.rd, sa < sb ? 1 : 0); break;
      case Opcode::kSltu: write_reg(in.rd, a < bval ? 1 : 0); break;
      case Opcode::kMul: write_reg(in.rd, a * bval); break;
      case Opcode::kAddi: write_reg(in.rd, a + uimm); break;
      case Opcode::kAndi: write_reg(in.rd, a & uimm); break;
      case Opcode::kOri: write_reg(in.rd, a | uimm); break;
      case Opcode::kXori: write_reg(in.rd, a ^ uimm); break;
      case Opcode::kSlli: write_reg(in.rd, a << (uimm & 31)); break;
      case Opcode::kSrli: write_reg(in.rd, a >> (uimm & 31)); break;
      case Opcode::kSrai:
        write_reg(in.rd, static_cast<std::uint32_t>(sa >> (uimm & 31)));
        break;
      case Opcode::kSlti: write_reg(in.rd, sa < imm ? 1 : 0); break;
      case Opcode::kSltiu: write_reg(in.rd, a < uimm ? 1 : 0); break;
      case Opcode::kLui: write_reg(in.rd, uimm << 14); break;
      case Opcode::kLw:
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kLb:
      case Opcode::kLbu:
        if (do_load(in, a + uimm)) ++st.loads;
        break;
      case Opcode::kSw:
      case Opcode::kSh:
      case Opcode::kSb:
        if (do_store(in, a + uimm, regs_[in.rd])) ++st.stores;
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu: {
        ++st.branches;
        if (eval_branch(in.op, a, bval)) {
          ++st.taken;
          next = pc + static_cast<std::uint32_t>(imm * 4);
        }
        break;
      }
      case Opcode::kJal:
        ++st.branches;
        ++st.taken;
        write_reg(in.rd, pc + 4);
        next = pc + static_cast<std::uint32_t>(imm * 4);
        break;
      case Opcode::kJalr:
        ++st.branches;
        ++st.taken;
        next = (a + uimm) & ~3u;
        write_reg(in.rd, pc + 4);
        break;
    }
  }

  static bool eval_branch(Opcode op, std::uint32_t a, std::uint32_t b) {
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    switch (op) {
      case Opcode::kBeq: return a == b;
      case Opcode::kBne: return a != b;
      case Opcode::kBlt: return sa < sb;
      case Opcode::kBge: return sa >= sb;
      case Opcode::kBltu: return a < b;
      case Opcode::kBgeu: return a >= b;
      default: return false;
    }
  }

  bool do_load(const Instruction& in, std::uint32_t addr) {
    if (addr >= kMmioConsole) {
      fault("load from MMIO region");
      return false;
    }
    std::uint32_t value = 0;
    switch (in.op) {
      case Opcode::kLw:
        if (addr % 4 != 0) { fault("misaligned lw"); return false; }
        value = mem_.load32(addr);
        break;
      case Opcode::kLh:
        if (addr % 2 != 0) { fault("misaligned lh"); return false; }
        value = static_cast<std::uint32_t>(sign_extend(mem_.load16(addr), 16));
        break;
      case Opcode::kLhu:
        if (addr % 2 != 0) { fault("misaligned lhu"); return false; }
        value = mem_.load16(addr);
        break;
      case Opcode::kLb:
        value = static_cast<std::uint32_t>(sign_extend(mem_.load8(addr), 8));
        break;
      case Opcode::kLbu:
        value = mem_.load8(addr);
        break;
      default:
        return false;
    }
    write_reg(in.rd, value);
    return true;
  }

  bool do_store(const Instruction& in, std::uint32_t addr, std::uint32_t value) {
    if (addr >= kMmioConsole) return do_mmio(addr, value);
    switch (in.op) {
      case Opcode::kSw:
        if (addr % 4 != 0) { fault("misaligned sw"); return false; }
        mem_.store32(addr, value);
        break;
      case Opcode::kSh:
        if (addr % 2 != 0) { fault("misaligned sh"); return false; }
        mem_.store16(addr, static_cast<std::uint16_t>(value));
        break;
      case Opcode::kSb:
        mem_.store8(addr, static_cast<std::uint8_t>(value));
        break;
      default:
        return false;
    }
    // A store into the text section makes every cached decryption stale;
    // the cycle machine refetches live and would see (and reset on) the
    // modified ciphertext. Only mark the cache dirty here — the executing
    // block is a reference into cache_, so the actual clear waits until
    // the next enter_block().
    if (image_.sofia && addr + 4 > image_.text_base &&
        addr < image_.text_base + image_.text_bytes())
      text_dirty_ = true;
    return true;
  }

  bool do_mmio(std::uint32_t addr, std::uint32_t value) {
    switch (addr) {
      case kMmioConsole:
        result_.output.push_back(static_cast<char>(value & 0xFF));
        return true;
      case kMmioExit:
        result_.exit_code = static_cast<int>(value);
        finish(RunResult::Status::kExited);
        return false;
      case kMmioPutInt:
        result_.output += std::to_string(static_cast<std::int32_t>(value));
        result_.output.push_back('\n');
        return true;
      default:
        fault("store to unmapped MMIO address");
        return false;
    }
  }

  const assembler::LoadImage& image_;
  const SimConfig& config_;
  Memory mem_;
  /// The device side of config_.scheme (null for vanilla images).
  std::unique_ptr<scheme::Opener> opener_;
  std::unordered_map<std::uint64_t, Block> cache_;
  Block scratch_;  ///< fault-injection runs bypass the cache
  bool text_dirty_ = false;  ///< store hit text; clear cache_ between blocks
  std::uint32_t regs_[isa::kNumRegs] = {};
  std::uint64_t fetch_count_ = 0;
  bool done_ = false;
  RunResult result_;
};

}  // namespace

RunResult FunctionalBackend::run(const assembler::LoadImage& image,
                                 const SimConfig& config) const {
  FunctionalMachine machine(image, config);
  return machine.run();
}

}  // namespace sofia::sim
