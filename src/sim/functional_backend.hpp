// The fast functional backend: executes the same ISA and enforces the
// same SOFIA integrity semantics as the cycle-accurate machine — every
// entered block is fetched, decrypted with its control-flow-dependent
// counters, its run-time CBC-MAC compared against the stored tag, and
// the placement rules (entry offset, exit slot, restricted stores)
// checked in the same order, with any violation pulling the reset line —
// but it models no micro-architecture: no I-cache, no fetch queue, no
// cipher-engine scheduling, no store gate. Control flow is purely
// architectural (no fall-through speculation), and blocks that verified
// once are cached by (entry word, prevPC) so loop bodies decrypt and MAC
// exactly once.
//
// Consequences, documented as contract:
//  * stats.cycles is the retired instruction count (capabilities()
//    advertises cycle_accurate = false); SimConfig::max_cycles bounds it.
//  * stats counts only architecturally demanded work: ctr/cbc ops and
//    verifications for blocks actually entered, once per distinct
//    (entry, prevPC) pair — a lower bound on what the device performs.
//  * Fault injection (SimConfig::fault) flips the N-th word this backend
//    fetches; the block cache is bypassed while a fault is armed so every
//    block entry refetches.
//  * Stores into the text section invalidate the block cache, so
//    self-modifying (i.e. self-tampering) code still resets exactly like
//    the live-fetching cycle machine.
#pragma once

#include "sim/backend.hpp"

namespace sofia::sim {

inline constexpr std::string_view kFunctionalBackendDescription =
    "architectural interpreter, full integrity checks, no timing";

class FunctionalBackend final : public Backend {
 public:
  std::string_view name() const override { return "functional"; }
  std::string_view describe() const override {
    return kFunctionalBackendDescription;
  }
  BackendCapabilities capabilities() const override {
    return {/*cycle_accurate=*/false, /*models_microarchitecture=*/false};
  }
  RunResult run(const assembler::LoadImage& image,
                const SimConfig& config) const override;
};

}  // namespace sofia::sim
