// Timing model of the single shared cipher instance (paper §III): the
// RECTANGLE round function is unrolled into a `latency`-cycle pipelined
// operation, and the instance alternates between CTR-mode (instruction
// keystream) and CBC-mode (MAC) operations every other cycle. Functional
// crypto lives elsewhere; this class only assigns start/finish cycles.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/config.hpp"

namespace sofia::sim {

class CipherEngine {
 public:
  enum class Op : std::uint8_t { kCtr = 0, kCbc = 1 };

  explicit CipherEngine(const CipherTiming& timing) : timing_(timing) {}

  /// Schedule an operation whose inputs are ready at `earliest`; returns the
  /// cycle its output is available.
  std::uint64_t schedule(Op op, std::uint64_t earliest) {
    std::uint64_t start = earliest;
    if (!timing_.pipelined) {
      // Iterative engine: busy for the whole operation. Alternation is
      // implicit (one shared resource).
      if (start < next_any_slot_) start = next_any_slot_;
      next_any_slot_ = start + timing_.latency;
      // Remember start cycles so flush() can tell an in-flight op (which
      // must drain) from queued ones (which a redirect drops).
      iter_starts_.push_back(start);
      prune_iter_history();
      return start + timing_.latency;
    }
    if (timing_.alternate) {
      // CTR ops start on even cycles, CBC on odd; each class therefore has
      // an initiation interval of 2.
      const std::uint64_t parity = (op == Op::kCtr) ? 0 : 1;
      if (start % 2 != parity) ++start;
      auto& next = next_class_slot_[static_cast<int>(op)];
      if (start < next) start = next;
      next = start + 2;
    } else {
      // Demand-driven fully pipelined engine: one op per cycle, any class.
      if (start < next_any_slot_) start = next_any_slot_;
      next_any_slot_ = start + 1;
    }
    return start + timing_.latency;
  }

  /// Drop queued work (fetch redirect). Pipelined slots free immediately —
  /// squashed ops simply drain out of the stage registers — but an
  /// iterative instance that already started an op is occupied until that
  /// op completes: the flush must not rewind next_any_slot_ below its
  /// finish cycle, or a post-redirect op would start on busy hardware.
  void flush(std::uint64_t cycle) {
    next_class_slot_[0] = next_class_slot_[1] = cycle;
    if (timing_.pipelined) {
      next_any_slot_ = cycle;
      return;
    }
    if (cycle > last_flush_cycle_) last_flush_cycle_ = cycle;
    std::uint64_t busy_until = cycle;
    std::uint64_t in_flight_start = 0;
    bool in_flight = false;
    for (const std::uint64_t start : iter_starts_) {
      if (start <= cycle && cycle < start + timing_.latency) {
        busy_until = start + timing_.latency;
        in_flight_start = start;
        in_flight = true;
      }
    }
    next_any_slot_ = busy_until;
    iter_starts_.clear();
    // Keep the draining op visible to a second flush before its finish.
    if (in_flight) iter_starts_.push_back(in_flight_start);
  }

 private:
  void prune_iter_history() {
    // Redirect cycles are monotone within a run, so an op that finished at
    // or before the last flush can never be in flight at a future one.
    while (!iter_starts_.empty() &&
           iter_starts_.front() + timing_.latency <= last_flush_cycle_)
      iter_starts_.pop_front();
    // Memory backstop for long redirect-free stretches. Evicting the
    // oldest entries can only make a much later flush slightly optimistic
    // (the evicted op would almost certainly have drained by then).
    while (iter_starts_.size() > kIterHistory) iter_starts_.pop_front();
  }

  static constexpr std::size_t kIterHistory = 256;

  CipherTiming timing_;
  std::uint64_t next_class_slot_[2] = {0, 0};
  std::uint64_t next_any_slot_ = 0;
  std::uint64_t last_flush_cycle_ = 0;
  std::deque<std::uint64_t> iter_starts_;  ///< iterative-mode op start cycles
};

}  // namespace sofia::sim
