// Timing model of the single shared cipher instance (paper §III): the
// RECTANGLE round function is unrolled into a `latency`-cycle pipelined
// operation, and the instance alternates between CTR-mode (instruction
// keystream) and CBC-mode (MAC) operations every other cycle. Functional
// crypto lives elsewhere; this class only assigns start/finish cycles.
#pragma once

#include <cstdint>

#include "sim/config.hpp"

namespace sofia::sim {

class CipherEngine {
 public:
  enum class Op : std::uint8_t { kCtr = 0, kCbc = 1 };

  explicit CipherEngine(const CipherTiming& timing) : timing_(timing) {}

  /// Schedule an operation whose inputs are ready at `earliest`; returns the
  /// cycle its output is available.
  std::uint64_t schedule(Op op, std::uint64_t earliest) {
    std::uint64_t start = earliest;
    if (!timing_.pipelined) {
      // Iterative engine: busy for the whole operation. Alternation is
      // implicit (one shared resource).
      if (start < next_any_slot_) start = next_any_slot_;
      next_any_slot_ = start + timing_.latency;
      return start + timing_.latency;
    }
    if (timing_.alternate) {
      // CTR ops start on even cycles, CBC on odd; each class therefore has
      // an initiation interval of 2.
      const std::uint64_t parity = (op == Op::kCtr) ? 0 : 1;
      if (start % 2 != parity) ++start;
      auto& next = next_class_slot_[static_cast<int>(op)];
      if (start < next) start = next;
      next = start + 2;
    } else {
      // Demand-driven fully pipelined engine: one op per cycle, any class.
      if (start < next_any_slot_) start = next_any_slot_;
      next_any_slot_ = start + 1;
    }
    return start + timing_.latency;
  }

  /// Drop queued work (fetch redirect).
  void flush(std::uint64_t cycle) {
    next_class_slot_[0] = next_class_slot_[1] = cycle;
    next_any_slot_ = cycle;
  }

 private:
  CipherTiming timing_;
  std::uint64_t next_class_slot_[2] = {0, 0};
  std::uint64_t next_any_slot_ = 0;
};

}  // namespace sofia::sim
