// The cycle-accurate backend: the paper's §III/§IV device model (7-stage
// in-order core, I-cache, fetch queue, shared 2-cycle cipher engine,
// store gate), packaged behind the sim::Backend interface. The machine
// itself lives in machine.cpp; this class only adapts sim::run_image()
// to the registry.
#pragma once

#include "sim/backend.hpp"

namespace sofia::sim {

inline constexpr std::string_view kCycleBackendDescription =
    "cycle-accurate core + SOFIA front end (paper-faithful timing)";

class CycleAccurateBackend final : public Backend {
 public:
  std::string_view name() const override { return "cycle"; }
  std::string_view describe() const override {
    return kCycleBackendDescription;
  }
  BackendCapabilities capabilities() const override {
    return {/*cycle_accurate=*/true, /*models_microarchitecture=*/true};
  }
  RunResult run(const assembler::LoadImage& image,
                const SimConfig& config) const override;
};

}  // namespace sofia::sim
