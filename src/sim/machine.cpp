#include "sim/machine.hpp"

#include <deque>
#include <memory>

#include "isa/disasm.hpp"
#include "sim/cipher_engine.hpp"
#include "support/hex.hpp"
#include "sim/fetch.hpp"
#include "sim/icache.hpp"
#include "sim/memory.hpp"
#include "support/bits.hpp"

namespace sofia::sim {

std::string_view to_string(ResetCause cause) {
  switch (cause) {
    case ResetCause::kNone: return "none";
    case ResetCause::kMacMismatch: return "mac-mismatch";
    case ResetCause::kInvalidEntry: return "invalid-entry";
    case ResetCause::kRestrictedStore: return "restricted-store";
    case ResetCause::kIllegalExit: return "illegal-exit";
    case ResetCause::kIllegalInstruction: return "illegal-instruction";
    case ResetCause::kStateCorruption: return "state-corruption";
    case ResetCause::kTargetSetViolation: return "target-set-violation";
  }
  return "?";
}

std::string format_trace(const std::vector<TraceEntry>& trace) {
  std::string out;
  for (const TraceEntry& e : trace) {
    out += std::to_string(e.cycle);
    out += "\t";
    out += hex32_0x(e.pc);
    out += "\t";
    out += isa::disassemble_word(e.word, e.pc);
    out += "\n";
  }
  return out;
}

std::string_view to_string(RunResult::Status status) {
  switch (status) {
    case RunResult::Status::kHalted: return "halted";
    case RunResult::Status::kExited: return "exited";
    case RunResult::Status::kReset: return "reset";
    case RunResult::Status::kFault: return "fault";
    case RunResult::Status::kMaxCycles: return "max-cycles";
  }
  return "?";
}

namespace {

using isa::Instruction;
using isa::Opcode;

class Machine {
 public:
  Machine(const assembler::LoadImage& image, const SimConfig& config)
      : config_(config), icache_(config.icache), engine_(config.cipher) {
    mem_.load_image(image);
    regs_[isa::kRegSp] = image.stack_top;
    if (image.sofia)
      fetch_ = std::make_unique<SofiaFetch>(mem_, icache_, engine_, config_, image);
    else
      fetch_ = std::make_unique<VanillaFetch>(mem_, icache_, config_, image.entry);
  }

  RunResult run() {
    while (!done_) {
      if (const auto reset = fetch_->reset(); reset && cycle_ >= reset->cycle) {
        finish(RunResult::Status::kReset, reset->cycle);
        result_.reset = *reset;
        break;
      }
      exec_step();
      if (done_) break;
      if (auto fi = fetch_->step(cycle_, queue_.size() >= config_.fetch_queue))
        queue_.push_back(*fi);
      ++cycle_;
      if (cycle_ >= config_.max_cycles) {
        finish(RunResult::Status::kMaxCycles, cycle_);
        break;
      }
    }
    collect_stats();
    return std::move(result_);
  }

 private:
  void finish(RunResult::Status status, std::uint64_t at_cycle) {
    result_.status = status;
    result_.stats.cycles = at_cycle;
    done_ = true;
  }

  void fault(const std::string& message, std::uint64_t at_cycle) {
    result_.fault = message;
    finish(RunResult::Status::kFault, at_cycle);
  }

  std::uint64_t reg_ready(unsigned r) const {
    return r == isa::kRegZero ? 0 : reg_ready_[r];
  }

  void write_reg(unsigned r, std::uint32_t value, std::uint64_t ready_cycle) {
    if (r == isa::kRegZero) return;
    regs_[r] = value;
    reg_ready_[r] = ready_cycle;
  }

  void exec_step() {
    if (cycle_ < busy_until_) {
      ++result_.stats.exec_stall_cycles;
      return;
    }
    if (queue_.empty() || queue_.front().ready > cycle_) {
      ++result_.stats.queue_empty_cycles;
      return;
    }
    const FetchedInst fi = queue_.front();
    queue_.pop_front();
    execute(fi);
  }

  void execute(const FetchedInst& fi) {
    const Instruction& in = fi.inst;
    auto& st = result_.stats;
    if (config_.collect_trace && result_.trace.size() < config_.max_trace)
      result_.trace.push_back({cycle_, fi.pc, isa::encode(in)});
    // Operand availability (forwarding modeled by reg_ready timestamps).
    std::uint64_t start = cycle_;
    switch (in.op) {
      case Opcode::kNop:
      case Opcode::kHalt:
      case Opcode::kLui:
        break;
      case Opcode::kJal:
        break;
      default:
        start = std::max(start, reg_ready(in.ra));
        if ((in.op >= Opcode::kAdd && in.op <= Opcode::kMul) ||
            isa::is_cond_branch(in.op))
          start = std::max(start, reg_ready(in.rb));
        if (isa::is_store(in.op)) start = std::max(start, reg_ready(in.rd));
        break;
    }
    if (isa::is_store(in.op) && fi.store_gate > start) {
      st.store_gate_stalls += fi.store_gate - start;
      start = fi.store_gate;
    }
    st.exec_stall_cycles += start - cycle_;

    ++st.insts;
    if (in.op == Opcode::kNop) ++st.nops;
    std::uint64_t duration = 1;

    const std::uint32_t a = regs_[in.ra];
    const std::uint32_t bval = regs_[in.rb];
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(bval);
    const auto imm = in.imm;
    const std::uint32_t uimm = static_cast<std::uint32_t>(imm);

    switch (in.op) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        finish(RunResult::Status::kHalted, start + 1);
        return;
      case Opcode::kAdd: write_reg(in.rd, a + bval, start + 1); break;
      case Opcode::kSub: write_reg(in.rd, a - bval, start + 1); break;
      case Opcode::kAnd: write_reg(in.rd, a & bval, start + 1); break;
      case Opcode::kOr: write_reg(in.rd, a | bval, start + 1); break;
      case Opcode::kXor: write_reg(in.rd, a ^ bval, start + 1); break;
      case Opcode::kSll: write_reg(in.rd, a << (bval & 31), start + 1); break;
      case Opcode::kSrl: write_reg(in.rd, a >> (bval & 31), start + 1); break;
      case Opcode::kSra:
        write_reg(in.rd, static_cast<std::uint32_t>(sa >> (bval & 31)), start + 1);
        break;
      case Opcode::kSlt: write_reg(in.rd, sa < sb ? 1 : 0, start + 1); break;
      case Opcode::kSltu: write_reg(in.rd, a < bval ? 1 : 0, start + 1); break;
      case Opcode::kMul:
        write_reg(in.rd, a * bval, start + config_.mul_latency);
        duration = config_.mul_latency;
        break;
      case Opcode::kAddi:
        write_reg(in.rd, a + uimm, start + 1);
        break;
      case Opcode::kAndi: write_reg(in.rd, a & uimm, start + 1); break;
      case Opcode::kOri: write_reg(in.rd, a | uimm, start + 1); break;
      case Opcode::kXori: write_reg(in.rd, a ^ uimm, start + 1); break;
      case Opcode::kSlli: write_reg(in.rd, a << (uimm & 31), start + 1); break;
      case Opcode::kSrli: write_reg(in.rd, a >> (uimm & 31), start + 1); break;
      case Opcode::kSrai:
        write_reg(in.rd, static_cast<std::uint32_t>(sa >> (uimm & 31)), start + 1);
        break;
      case Opcode::kSlti: write_reg(in.rd, sa < imm ? 1 : 0, start + 1); break;
      case Opcode::kSltiu: write_reg(in.rd, a < uimm ? 1 : 0, start + 1); break;
      case Opcode::kLui:
        write_reg(in.rd, uimm << 14, start + 1);
        break;
      case Opcode::kLw:
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kLb:
      case Opcode::kLbu:
        if (!do_load(in, a + uimm, start)) return;
        ++st.loads;
        break;
      case Opcode::kSw:
      case Opcode::kSh:
      case Opcode::kSb:
        if (!do_store(in, a + uimm, regs_[in.rd], start)) return;
        ++st.stores;
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu: {
        ++st.branches;
        const bool taken = eval_branch(in.op, a, bval);
        if (taken) {
          // Squash the fall-through speculation.
          ++st.taken;
          redirect(fi.pc + static_cast<std::uint32_t>(imm * 4), fi.pc, start);
        }
        break;
      }
      case Opcode::kJal: {
        ++st.branches;
        ++st.taken;
        write_reg(in.rd, fi.pc + 4, start + 1);
        if (!fi.fetch_redirected)
          redirect(fi.pc + static_cast<std::uint32_t>(imm * 4), fi.pc, start);
        break;
      }
      case Opcode::kJalr: {
        ++st.branches;
        ++st.taken;
        const std::uint32_t target = (a + uimm) & ~3u;
        const bool is_ret = in.rd == isa::kRegZero && in.ra == isa::kRegLr &&
                            in.imm == 0;
        write_reg(in.rd, fi.pc + 4, start + 1);
        redirect(target, fi.pc, start, /*indirect=*/!is_ret);
        break;
      }
    }
    busy_until_ = start + duration;
  }

  bool eval_branch(Opcode op, std::uint32_t a, std::uint32_t b) const {
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    switch (op) {
      case Opcode::kBeq: return a == b;
      case Opcode::kBne: return a != b;
      case Opcode::kBlt: return sa < sb;
      case Opcode::kBge: return sa >= sb;
      case Opcode::kBltu: return a < b;
      case Opcode::kBgeu: return a >= b;
      default: return false;
    }
  }

  void redirect(std::uint32_t target, std::uint32_t from_pc, std::uint64_t start,
                bool indirect = false) {
    queue_.clear();
    fetch_->redirect(target, from_pc, start + config_.redirect_bubble, indirect);
  }

  bool do_load(const Instruction& in, std::uint32_t addr, std::uint64_t start) {
    if (addr >= kMmioConsole) {
      fault("load from MMIO region", start);
      return false;
    }
    std::uint32_t value = 0;
    switch (in.op) {
      case Opcode::kLw:
        if (addr % 4 != 0) { fault("misaligned lw", start); return false; }
        value = mem_.load32(addr);
        break;
      case Opcode::kLh:
        if (addr % 2 != 0) { fault("misaligned lh", start); return false; }
        value = static_cast<std::uint32_t>(sign_extend(mem_.load16(addr), 16));
        break;
      case Opcode::kLhu:
        if (addr % 2 != 0) { fault("misaligned lhu", start); return false; }
        value = mem_.load16(addr);
        break;
      case Opcode::kLb:
        value = static_cast<std::uint32_t>(sign_extend(mem_.load8(addr), 8));
        break;
      case Opcode::kLbu:
        value = mem_.load8(addr);
        break;
      default:
        return false;
    }
    write_reg(in.rd, value, start + config_.load_latency);
    return true;
  }

  bool do_store(const Instruction& in, std::uint32_t addr, std::uint32_t value,
                std::uint64_t start) {
    if (addr >= kMmioConsole) return do_mmio(addr, value, start);
    switch (in.op) {
      case Opcode::kSw:
        if (addr % 4 != 0) { fault("misaligned sw", start); return false; }
        mem_.store32(addr, value);
        break;
      case Opcode::kSh:
        if (addr % 2 != 0) { fault("misaligned sh", start); return false; }
        mem_.store16(addr, static_cast<std::uint16_t>(value));
        break;
      case Opcode::kSb:
        mem_.store8(addr, static_cast<std::uint8_t>(value));
        break;
      default:
        return false;
    }
    return true;
  }

  bool do_mmio(std::uint32_t addr, std::uint32_t value, std::uint64_t start) {
    switch (addr) {
      case kMmioConsole:
        result_.output.push_back(static_cast<char>(value & 0xFF));
        return true;
      case kMmioExit:
        result_.exit_code = static_cast<int>(value);
        finish(RunResult::Status::kExited, start + 1);
        return false;
      case kMmioPutInt:
        result_.output += std::to_string(static_cast<std::int32_t>(value));
        result_.output.push_back('\n');
        return true;
      default:
        fault("store to unmapped MMIO address", start);
        return false;
    }
  }

  void collect_stats() {
    auto& st = result_.stats;
    st.icache_hits = icache_.hits();
    st.icache_misses = icache_.misses();
    st.fetch_words = fetch_->words_delivered;
    st.mac_words = fetch_->mac_words_seen;
    st.ctr_ops = fetch_->ctr_ops;
    st.cbc_ops = fetch_->cbc_ops;
    st.blocks_fetched = fetch_->blocks;
    st.mac_verifications = fetch_->verifications;
  }

  const SimConfig& config_;
  Memory mem_;
  ICache icache_;
  CipherEngine engine_;
  std::unique_ptr<FetchUnit> fetch_;
  std::deque<FetchedInst> queue_;
  std::uint32_t regs_[isa::kNumRegs] = {};
  std::uint64_t reg_ready_[isa::kNumRegs] = {};
  std::uint64_t cycle_ = 0;
  std::uint64_t busy_until_ = 0;
  bool done_ = false;
  RunResult result_;
};

}  // namespace

RunResult run_image(const assembler::LoadImage& image, const SimConfig& config) {
  Machine machine(image, config);
  return machine.run();
}

}  // namespace sofia::sim
