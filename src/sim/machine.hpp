// Top-level simulator: wires memory, I-cache, cipher engine, the selected
// front end (vanilla or SOFIA, from the image) and the execute side
// together, and runs an image to completion.
#pragma once

#include "assembler/image.hpp"
#include "sim/config.hpp"

namespace sofia::sim {

/// Run a loaded image under the given configuration. For SOFIA images the
/// configured device keys and block policy must match the ones the binary
/// was transformed with — a mismatch behaves exactly like tampering (the
/// device resets), which is itself the paper's security property.
RunResult run_image(const assembler::LoadImage& image, const SimConfig& config);

}  // namespace sofia::sim
