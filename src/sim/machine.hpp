// Top-level simulator: wires memory, I-cache, cipher engine, the selected
// front end (vanilla or SOFIA, from the image) and the execute side
// together, and runs an image to completion.
#pragma once

#include "assembler/image.hpp"
#include "sim/config.hpp"

namespace sofia::sim {

/// Run a loaded image under the given configuration. For SOFIA images the
/// configured device keys and block policy must match the ones the binary
/// was transformed with — a mismatch behaves exactly like tampering (the
/// device resets), which is itself the paper's security property.
///
/// This is the cycle-accurate machine, i.e. the implementation behind the
/// "cycle" entry of sim::backend_registry() (sim/backend.hpp). Consumers
/// outside src/sim should route through the registry (via
/// pipeline::Pipeline), not call this directly — only the simulator's own
/// tests and the cipher microbench are expected here.
RunResult run_image(const assembler::LoadImage& image, const SimConfig& config);

}  // namespace sofia::sim
