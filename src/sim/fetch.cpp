#include "sim/fetch.hpp"

#include <algorithm>

#include "crypto/cbc_mac.hpp"
#include "crypto/ctr.hpp"

namespace sofia::sim {

// ---------------------------------------------------------------------------
// VanillaFetch
// ---------------------------------------------------------------------------

VanillaFetch::VanillaFetch(const Memory& mem, ICache& icache,
                           const SimConfig& config, std::uint32_t start_pc)
    : mem_(mem), icache_(icache), config_(config), pc_(start_pc) {}

std::optional<FetchedInst> VanillaFetch::step(std::uint64_t cycle, bool queue_full) {
  if (waiting_ || reset_) return std::nullopt;
  if (!fetching_) {
    if (cycle < ready_at_) return std::nullopt;  // redirect not effective yet
    fetching_ = true;
    ready_at_ = cycle + icache_.access(pc_) - 1;
  }
  if (cycle < ready_at_ || queue_full) return std::nullopt;
  const std::uint32_t word = apply_fault(config_.fault, mem_.load32(pc_));
  const auto decoded = isa::decode(word);
  if (!decoded) {
    reset_ = ResetEvent{ResetCause::kIllegalInstruction, cycle, pc_};
    return std::nullopt;
  }
  FetchedInst fi;
  fi.inst = *decoded;
  fi.pc = pc_;
  fi.ready = cycle + 1;
  fetching_ = false;
  ++words_delivered;
  if (decoded->op == isa::Opcode::kJal) {
    // Direct jumps are followed at decode time (LEON3 resolves them early).
    fi.fetch_redirected = true;
    pc_ += static_cast<std::uint32_t>(decoded->imm * 4);
  } else if (decoded->op == isa::Opcode::kJalr || decoded->op == isa::Opcode::kHalt) {
    // Indirect target / end of program: wait for the execute side.
    waiting_ = true;
  } else {
    // Plain instructions and conditional branches: continue sequentially
    // (static not-taken speculation; a taken branch squashes via redirect).
    pc_ += 4;
  }
  return fi;
}

void VanillaFetch::redirect(std::uint32_t target, std::uint32_t /*from_pc*/,
                            std::uint64_t cycle) {
  pc_ = target;
  waiting_ = false;
  fetching_ = false;
  ready_at_ = cycle;
}

// ---------------------------------------------------------------------------
// SofiaFetch
// ---------------------------------------------------------------------------

SofiaFetch::SofiaFetch(const Memory& mem, ICache& icache, CipherEngine& engine,
                       const SimConfig& config, const assembler::LoadImage& image)
    : mem_(mem),
      icache_(icache),
      engine_(engine),
      config_(config),
      text_base_word_(image.text_base / 4),
      omega_(image.omega),
      per_pair_(image.per_pair),
      enc_(config.keys.encryption_cipher()),
      exec_mac_(config.keys.exec_mac_cipher()),
      mux_mac_(config.keys.mux_mac_cipher()) {
  process_block(image.entry / 4, image.entry_prev, 0);
}

void SofiaFetch::redirect(std::uint32_t target, std::uint32_t from_pc,
                          std::uint64_t cycle) {
  staged_.clear();
  waiting_ = false;
  // The squashed block's queued cipher work is dropped; an in-flight
  // iterative op keeps the engine busy until it drains (see
  // CipherEngine::flush).
  engine_.flush(cycle);
  process_block(target / 4, from_pc / 4, cycle);
}

std::optional<FetchedInst> SofiaFetch::step(std::uint64_t cycle, bool queue_full) {
  if (!queue_full && !staged_.empty() && staged_.front().ready <= cycle + 1) {
    // One IF->ID handoff per cycle, paced by the decrypt timestamps.
    FetchedInst fi = staged_.front();
    staged_.pop_front();
    ++words_delivered;
    return fi;
  }
  // Run ahead into the next block once the current one has drained enough:
  // a small stage buffer keeps at most ~2 blocks in flight, like a fetch
  // queue would.
  if (!waiting_ && !reset_ && staged_.size() <= 2 && cycle >= cont_cycle_)
    process_block(next_block_word_, cont_prev_word_, cont_cycle_);
  return std::nullopt;
}

void SofiaFetch::process_block(std::uint32_t target_word, std::uint32_t prev_word,
                               std::uint64_t entry_cycle) {
  if (reset_) return;
  const std::uint32_t b = config_.policy.words_per_block;
  const std::uint32_t rel = target_word - text_base_word_;
  const std::uint32_t offset = rel % b;
  const std::uint32_t base_word = target_word - offset;
  ++blocks;

  if (offset > 2) {
    reset_ = ResetEvent{ResetCause::kInvalidEntry, entry_cycle, target_word * 4};
    return;
  }
  const bool is_mux = offset != 0;
  // Word indices fetched, in order. Path 1 (offset 1) starts at word 0 and
  // skips word 1; path 2 (offset 2) starts at word 1.
  std::vector<std::uint32_t> sched;
  if (!is_mux) {
    for (std::uint32_t j = 0; j < b; ++j) sched.push_back(j);
  } else if (offset == 1) {
    sched.push_back(0);
    for (std::uint32_t j = 2; j < b; ++j) sched.push_back(j);
  } else {
    for (std::uint32_t j = 1; j < b; ++j) sched.push_back(j);
  }

  // ---- fetch words through the I-cache ----
  // The SOFIA datapath reads fetch_words_per_cycle words per cycle (the
  // 64-bit cipher block suggests 2); misses stall for the refill.
  const std::uint32_t entry_word_index = sched.front();
  const std::uint32_t per_cycle = std::max(1u, config_.fetch_words_per_cycle);
  std::uint64_t cursor = entry_cycle;
  std::vector<std::uint64_t> fetch_done(b, 0);
  std::vector<std::uint32_t> raw(b, 0);
  std::uint32_t in_cycle = 0;
  for (const std::uint32_t j : sched) {
    const std::uint32_t addr = (base_word + j) * 4;
    const std::uint32_t delay = icache_.access(addr);
    if (delay > 1) {
      cursor += delay;
      in_cycle = 1;
    } else if (in_cycle == 0 || in_cycle >= per_cycle) {
      cursor += 1;
      in_cycle = 1;
    } else {
      ++in_cycle;
    }
    fetch_done[j] = cursor;
    raw[j] = apply_fault(config_.fault, mem_.load32(addr));
  }

  // ---- CTR keystream (counters depend only on addresses: issue eagerly) ----
  auto prev_for = [&](std::uint32_t j) {
    return j == entry_word_index ? prev_word : base_word + j - 1;
  };
  std::vector<std::uint64_t> ks_done(b, 0);
  std::vector<std::uint32_t> plain(b, 0);
  if (!per_pair_) {
    for (const std::uint32_t j : sched) {
      ks_done[j] = engine_.schedule(CipherEngine::Op::kCtr, entry_cycle);
      ++ctr_ops;
      plain[j] = raw[j] ^ crypto::keystream32(*enc_, omega_, prev_for(j),
                                              base_word + j);
    }
  } else {
    // Multiplexor entry words are single-word granules; the body pairs up.
    std::uint32_t body_start = is_mux ? 2 : 0;
    if (is_mux) {
      const std::uint32_t e = entry_word_index;
      ks_done[e] = engine_.schedule(CipherEngine::Op::kCtr, entry_cycle);
      ++ctr_ops;
      plain[e] = raw[e] ^ crypto::keystream32(*enc_, omega_, prev_word,
                                              base_word + e);
    }
    for (std::uint32_t j = body_start; j < b; j += 2) {
      const std::uint64_t done = engine_.schedule(CipherEngine::Op::kCtr, entry_cycle);
      ++ctr_ops;
      const std::uint64_t ks = crypto::keystream64(
          *enc_, omega_, j == 0 ? prev_word : base_word + j - 1, base_word + j);
      ks_done[j] = done;
      ks_done[j + 1] = done;
      plain[j] = raw[j] ^ static_cast<std::uint32_t>(ks);
      plain[j + 1] = raw[j + 1] ^ static_cast<std::uint32_t>(ks >> 32);
    }
  }

  std::vector<std::uint64_t> decrypt_done(b, 0);
  for (const std::uint32_t j : sched)
    decrypt_done[j] = std::max(fetch_done[j], ks_done[j]);

  // ---- split MAC words from instructions ----
  const std::uint32_t first_inst = is_mux ? 3 : 2;
  const std::uint32_t m1 = plain[entry_word_index];
  const std::uint32_t m2 = plain[is_mux ? 2 : 1];
  mac_words_seen += 2;
  const std::uint64_t stored_tag =
      (static_cast<std::uint64_t>(m2) << 32) | m1;

  std::vector<std::uint32_t> inst_words(plain.begin() + first_inst, plain.end());

  // ---- run-time CBC-MAC over the decrypted instructions ----
  std::uint64_t chain_ready =
      std::max(decrypt_done[entry_word_index], decrypt_done[is_mux ? 2 : 1]);
  {
    std::uint64_t prev_done = 0;
    for (std::uint32_t w = first_inst; w < b; w += 2) {
      std::uint64_t in_ready = decrypt_done[w];
      if (w + 1 < b) in_ready = std::max(in_ready, decrypt_done[w + 1]);
      in_ready = std::max(in_ready, prev_done);
      prev_done = engine_.schedule(CipherEngine::Op::kCbc, in_ready);
      ++cbc_ops;
    }
    chain_ready = std::max(chain_ready, prev_done);
  }
  const std::uint64_t verify_cycle = chain_ready + 1;
  ++verifications;

  const auto& mac_cipher = is_mux ? *mux_mac_ : *exec_mac_;
  const std::uint64_t computed_tag = crypto::cbc_mac64(mac_cipher, inst_words);
  const bool mac_ok = computed_tag == stored_tag;

  // ---- decode, check placement rules, stage deliveries ----
  if (!mac_ok) {
    // The run-time MAC differs from the stored one: tampered instructions
    // or tampered control flow. Reset fires when the comparison completes;
    // nothing from this block may commit (the store gate would have held
    // its stores back in the real pipeline).
    reset_ = ResetEvent{ResetCause::kMacMismatch, verify_cycle, base_word * 4};
    return;
  }
  const std::uint64_t gate = verify_cycle > config_.store_gate_headstart
                                 ? verify_cycle - config_.store_gate_headstart
                                 : 0;
  for (std::uint32_t w = first_inst; w < b; ++w) {
    const auto decoded = isa::decode(plain[w]);
    const std::uint32_t pc = (base_word + w) * 4;
    if (!decoded) {
      reset_ = ResetEvent{ResetCause::kIllegalInstruction, decrypt_done[w] + 1, pc};
      break;
    }
    const bool last = (w == b - 1);
    if (isa::is_control(decoded->op) && !last) {
      reset_ = ResetEvent{ResetCause::kIllegalExit, decrypt_done[w] + 1, pc};
      break;
    }
    if (isa::is_store(decoded->op) && w < config_.policy.store_min_word) {
      reset_ = ResetEvent{ResetCause::kRestrictedStore, decrypt_done[w] + 1, pc};
      break;
    }
    FetchedInst fi;
    fi.inst = *decoded;
    fi.pc = pc;
    fi.ready = decrypt_done[w] + 1;
    fi.store_gate = gate;
    staged_.push_back(fi);
  }
  if (reset_) return;

  // ---- decide how fetch continues past this block ----
  // Fall-through speculation is always sound: the sequential successor is
  // encrypted with prevPC = this block's exit word whether the exit is a
  // plain instruction or a not-taken conditional branch. Direct jumps are
  // followed at decode time (the target and the prevPC are both known).
  // Only indirect exits (jalr/ret) and halt make fetch wait.
  const isa::Opcode exit_op = staged_.back().inst.op;
  const std::uint64_t exit_decoded = decrypt_done[b - 1] + 1;
  if (exit_op == isa::Opcode::kJal) {
    staged_.back().fetch_redirected = true;
    const std::uint32_t target =
        (base_word + b - 1) + static_cast<std::uint32_t>(staged_.back().inst.imm);
    next_block_word_ = target;
    cont_prev_word_ = base_word + b - 1;
    cont_cycle_ = std::max(cursor, exit_decoded);
  } else if (exit_op == isa::Opcode::kJalr || exit_op == isa::Opcode::kHalt) {
    waiting_ = true;
  } else {
    next_block_word_ = base_word + b;
    cont_prev_word_ = base_word + b - 1;
    cont_cycle_ = cursor;
  }
}

}  // namespace sofia::sim
