#include "sim/fetch.hpp"

#include <algorithm>
#include <utility>

namespace sofia::sim {

// ---------------------------------------------------------------------------
// VanillaFetch
// ---------------------------------------------------------------------------

VanillaFetch::VanillaFetch(const Memory& mem, ICache& icache,
                           const SimConfig& config, std::uint32_t start_pc)
    : mem_(mem), icache_(icache), config_(config), pc_(start_pc) {}

std::optional<FetchedInst> VanillaFetch::step(std::uint64_t cycle, bool queue_full) {
  if (waiting_ || reset_) return std::nullopt;
  if (!fetching_) {
    if (cycle < ready_at_) return std::nullopt;  // redirect not effective yet
    fetching_ = true;
    ready_at_ = cycle + icache_.access(pc_) - 1;
  }
  if (cycle < ready_at_ || queue_full) return std::nullopt;
  const std::uint32_t word = apply_fault(config_.fault, mem_.load32(pc_));
  const auto decoded = isa::decode(word);
  if (!decoded) {
    reset_ = ResetEvent{ResetCause::kIllegalInstruction, cycle, pc_};
    return std::nullopt;
  }
  FetchedInst fi;
  fi.inst = *decoded;
  fi.pc = pc_;
  fi.ready = cycle + 1;
  fetching_ = false;
  ++words_delivered;
  if (decoded->op == isa::Opcode::kJal) {
    // Direct jumps are followed at decode time (LEON3 resolves them early).
    fi.fetch_redirected = true;
    pc_ += static_cast<std::uint32_t>(decoded->imm * 4);
  } else if (decoded->op == isa::Opcode::kJalr || decoded->op == isa::Opcode::kHalt) {
    // Indirect target / end of program: wait for the execute side.
    waiting_ = true;
  } else {
    // Plain instructions and conditional branches: continue sequentially
    // (static not-taken speculation; a taken branch squashes via redirect).
    pc_ += 4;
  }
  return fi;
}

void VanillaFetch::redirect(std::uint32_t target, std::uint32_t /*from_pc*/,
                            std::uint64_t cycle, bool /*indirect*/) {
  pc_ = target;
  waiting_ = false;
  fetching_ = false;
  ready_at_ = cycle;
}

// ---------------------------------------------------------------------------
// SofiaFetch
// ---------------------------------------------------------------------------

SofiaFetch::SofiaFetch(const Memory& mem, ICache& icache, CipherEngine& engine,
                       const SimConfig& config, const assembler::LoadImage& image)
    : mem_(mem),
      icache_(icache),
      engine_(engine),
      config_(config),
      text_base_word_(image.text_base / 4),
      opener_(scheme::get_scheme(config.scheme)
                  .make_opener(config.keys, image.omega,
                               image.per_pair ? crypto::Granularity::kPerPair
                                              : crypto::Granularity::kPerWord)) {
  process_block(image.entry / 4, image.entry_prev, 0);
}

void SofiaFetch::redirect(std::uint32_t target, std::uint32_t from_pc,
                          std::uint64_t cycle, bool indirect) {
  staged_.clear();
  waiting_ = false;
  // The squashed block's queued cipher work is dropped; an in-flight
  // iterative op keeps the engine busy until it drains (see
  // CipherEngine::flush).
  engine_.flush(cycle);
  if (indirect) {
    // Under a gating scheme the source block's exit was opened with a
    // gate flag and exit label; the transfer then presents the canonical
    // indirect sentinel and must pass the target-set check. Under any
    // other scheme the dynamic prevPC simply garbles the target block
    // (an indirect jump the toolchain did not devirtualize).
    const auto it = exit_info_.find(from_pc / 4);
    if (it != exit_info_.end() && it->second.gated) {
      pending_entry_check_ = it->second.exit_label;
      process_block(target / 4, assembler::kIndirectPrevWord, cycle);
      return;
    }
  }
  process_block(target / 4, from_pc / 4, cycle);
}

std::optional<FetchedInst> SofiaFetch::step(std::uint64_t cycle, bool queue_full) {
  if (!queue_full && !staged_.empty() && staged_.front().ready <= cycle + 1) {
    // One IF->ID handoff per cycle, paced by the decrypt timestamps.
    FetchedInst fi = staged_.front();
    staged_.pop_front();
    ++words_delivered;
    return fi;
  }
  // Run ahead into the next block once the current one has drained enough:
  // a small stage buffer keeps at most ~2 blocks in flight, like a fetch
  // queue would.
  if (!waiting_ && !reset_ && staged_.size() <= 2 && cycle >= cont_cycle_)
    process_block(next_block_word_, cont_prev_word_, cont_cycle_);
  return std::nullopt;
}

void SofiaFetch::process_block(std::uint32_t target_word, std::uint32_t prev_word,
                               std::uint64_t entry_cycle) {
  const std::optional<std::uint8_t> pending =
      std::exchange(pending_entry_check_, std::nullopt);
  if (reset_) return;
  const std::uint32_t b = config_.policy.words_per_block;
  const std::uint32_t rel = target_word - text_base_word_;
  const std::uint32_t offset = rel % b;
  const std::uint32_t base_word = target_word - offset;
  ++blocks;

  if (offset > 2) {
    reset_ = ResetEvent{ResetCause::kInvalidEntry, entry_cycle, target_word * 4};
    return;
  }
  const scheme::EntryPath path = scheme::entry_path(offset, b);

  // ---- fetch words through the I-cache ----
  // The SOFIA datapath reads fetch_words_per_cycle words per cycle (the
  // 64-bit cipher block suggests 2); misses stall for the refill.
  const std::uint32_t per_cycle = std::max(1u, config_.fetch_words_per_cycle);
  std::uint64_t cursor = entry_cycle;
  std::vector<std::uint64_t> fetch_done(b, 0);
  std::vector<std::uint32_t> raw(b, 0);
  std::uint32_t in_cycle = 0;
  for (const std::uint32_t j : path.sched) {
    const std::uint32_t addr = (base_word + j) * 4;
    const std::uint32_t delay = icache_.access(addr);
    if (delay > 1) {
      cursor += delay;
      in_cycle = 1;
    } else if (in_cycle == 0 || in_cycle >= per_cycle) {
      cursor += 1;
      in_cycle = 1;
    } else {
      ++in_cycle;
    }
    fetch_done[j] = cursor;
    raw[j] = apply_fault(config_.fault, mem_.load32(addr));
  }

  // ---- open the block through the protection scheme ----
  const scheme::DeviceBlock dev = opener_->open(base_word, prev_word, path, raw);

  // ---- replay the decrypt ops on the shared engine ----
  // Eager-issue schemes (address-only counters) start every op at block
  // entry; a serial chain additionally waits for the previous op and for
  // the span's fetched ciphertext.
  std::vector<std::uint64_t> ks_done(b, 0);
  std::uint64_t prev_op_done = 0;
  for (const auto& op : dev.decrypt_ops) {
    std::uint64_t issue = entry_cycle;
    if (dev.serial_decrypt) {
      issue = std::max(issue, prev_op_done);
      for (std::uint32_t k = 0; k < op.count; ++k)
        issue = std::max(issue, fetch_done[op.first + k]);
    }
    prev_op_done = engine_.schedule(CipherEngine::Op::kCtr, issue);
    ++ctr_ops;
    for (std::uint32_t k = 0; k < op.count; ++k)
      ks_done[op.first + k] = prev_op_done;
  }

  std::vector<std::uint64_t> decrypt_done(b, 0);
  for (const std::uint32_t j : path.sched)
    decrypt_done[j] = std::max(fetch_done[j], ks_done[j]);

  mac_words_seen += dev.header_words;

  // ---- replay the verify chain ----
  std::uint64_t chain_ready = 0;
  for (const auto& op : dev.verify_ops) {
    std::uint64_t in_ready = chain_ready;
    for (std::uint32_t k = 0; k < op.count; ++k)
      in_ready = std::max(in_ready, decrypt_done[op.first + k]);
    chain_ready = engine_.schedule(CipherEngine::Op::kCbc, in_ready);
    ++cbc_ops;
  }
  for (const std::uint32_t w : dev.verify_extra_words)
    chain_ready = std::max(chain_ready, decrypt_done[w]);
  const std::uint64_t verify_cycle = chain_ready + 1;
  if (dev.performs_verify) ++verifications;

  // ---- decode, check placement rules, stage deliveries ----
  if (dev.verify_cause != ResetCause::kNone) {
    // The scheme's verification failed: tampered instructions or tampered
    // control flow. Reset fires when the comparison completes; nothing
    // from this block may commit (the store gate would have held its
    // stores back in the real pipeline).
    reset_ = ResetEvent{dev.verify_cause, verify_cycle, base_word * 4};
    return;
  }
  // ---- forward-edge gate ----
  // An indirect transfer must land on an entry whose sealed label matches
  // the source exit's; the check fires with the verification (both labels
  // are authenticated block state).
  if (pending && (!dev.gate_indirect || dev.entry_label == 0 ||
                  dev.entry_label != *pending)) {
    reset_ = ResetEvent{ResetCause::kTargetSetViolation, verify_cycle,
                        base_word * 4};
    return;
  }
  exit_info_[base_word + b - 1] = ExitInfo{dev.gate_indirect, dev.exit_label};
  // An unauthenticated scheme never gates stores (there is no
  // verification to wait for).
  const std::uint64_t gate =
      dev.performs_verify && verify_cycle > config_.store_gate_headstart
          ? verify_cycle - config_.store_gate_headstart
          : 0;
  const std::uint32_t first_inst = dev.first_inst;
  const std::vector<std::uint32_t>& plain = dev.plain;
  for (std::uint32_t w = first_inst; w < b; ++w) {
    const auto decoded = isa::decode(plain[w]);
    const std::uint32_t pc = (base_word + w) * 4;
    if (!decoded) {
      reset_ = ResetEvent{ResetCause::kIllegalInstruction, decrypt_done[w] + 1, pc};
      break;
    }
    const bool last = (w == b - 1);
    if (isa::is_control(decoded->op) && !last) {
      reset_ = ResetEvent{ResetCause::kIllegalExit, decrypt_done[w] + 1, pc};
      break;
    }
    if (isa::is_store(decoded->op) && w < config_.policy.store_min_word) {
      reset_ = ResetEvent{ResetCause::kRestrictedStore, decrypt_done[w] + 1, pc};
      break;
    }
    FetchedInst fi;
    fi.inst = *decoded;
    fi.pc = pc;
    fi.ready = decrypt_done[w] + 1;
    fi.store_gate = gate;
    staged_.push_back(fi);
  }
  if (reset_) return;

  // ---- decide how fetch continues past this block ----
  // Fall-through speculation is always sound: the sequential successor is
  // encrypted with prevPC = this block's exit word whether the exit is a
  // plain instruction or a not-taken conditional branch. Direct jumps are
  // followed at decode time (the target and the prevPC are both known).
  // Only indirect exits (jalr/ret) and halt make fetch wait.
  const isa::Opcode exit_op = staged_.back().inst.op;
  const std::uint64_t exit_decoded = decrypt_done[b - 1] + 1;
  if (exit_op == isa::Opcode::kJal) {
    staged_.back().fetch_redirected = true;
    const std::uint32_t target =
        (base_word + b - 1) + static_cast<std::uint32_t>(staged_.back().inst.imm);
    next_block_word_ = target;
    cont_prev_word_ = base_word + b - 1;
    cont_cycle_ = std::max(cursor, exit_decoded);
  } else if (exit_op == isa::Opcode::kJalr || exit_op == isa::Opcode::kHalt) {
    waiting_ = true;
  } else {
    next_block_word_ = base_word + b;
    cont_prev_word_ = base_word + b - 1;
    cont_cycle_ = cursor;
  }
}

}  // namespace sofia::sim
