// Front ends. Two implementations of the same interface:
//
//  * VanillaFetch — the unmodified-LEON3 analogue: stream words through the
//    I-cache, decode, deliver; stall at control instructions until the
//    execute side resolves them (LEON3 has no branch prediction).
//
//  * SofiaFetch — the paper's architecture (Fig. 1): the block state
//    machine. A transfer's target word offset selects the block type and
//    multiplexor path (§II-E); every fetched word is decrypted with its
//    control-flow-dependent counter; the run-time CBC-MAC over the
//    decrypted instructions is compared against the stored MAC words; and
//    violations pull the reset line. Stores carry a gate cycle so they
//    cannot pass the MA stage before their block verifies.
//
// Both deliver FetchedInst records tagged with the cycle the instruction
// leaves the IF stage, so the execute side consumes them with true timing.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "assembler/image.hpp"
#include "isa/isa.hpp"
#include "scheme/scheme.hpp"
#include "sim/cipher_engine.hpp"
#include "sim/config.hpp"
#include "sim/icache.hpp"
#include "sim/memory.hpp"

namespace sofia::sim {

struct FetchedInst {
  isa::Instruction inst;
  std::uint32_t pc = 0;          ///< byte address of the instruction word
  std::uint64_t ready = 0;       ///< first cycle the execute side may use it
  std::uint64_t store_gate = 0;  ///< earliest cycle a store may commit
  /// Fetch already followed this (direct) jump; the execute side must not
  /// redirect again.
  bool fetch_redirected = false;
};

class FetchUnit {
 public:
  virtual ~FetchUnit() = default;

  /// Advance one cycle; deliver at most one instruction. `queue_full`
  /// applies backpressure.
  virtual std::optional<FetchedInst> step(std::uint64_t cycle, bool queue_full) = 0;

  /// A taken transfer executed at byte address `from_pc` redirects fetch to
  /// `target`, effective at `cycle`. Used for taken conditional branches
  /// (squashing the fall-through speculation) and for indirect jumps (which
  /// fetch cannot follow on its own). `indirect` marks a non-ret jalr:
  /// under a forward-edge gating scheme the transfer presents the
  /// kIndirectPrevWord sentinel and must pass the target-set label check.
  virtual void redirect(std::uint32_t target, std::uint32_t from_pc,
                        std::uint64_t cycle, bool indirect = false) = 0;

  /// Pending SOFIA reset, if any (valid once its cycle is reached).
  virtual std::optional<ResetEvent> reset() const = 0;

  std::uint64_t words_delivered = 0;
  std::uint64_t mac_words_seen = 0;
  std::uint64_t ctr_ops = 0;
  std::uint64_t cbc_ops = 0;
  std::uint64_t blocks = 0;
  std::uint64_t verifications = 0;

 protected:
  /// Apply the configured transient fault to a raw fetched word.
  std::uint32_t apply_fault(const FaultInjection& fault, std::uint32_t word) {
    const std::uint64_t index = fetch_count_++;
    if (fault.enabled && index == fault.fetch_index)
      return word ^ (1u << (fault.bit & 31));
    return word;
  }

 private:
  std::uint64_t fetch_count_ = 0;
};

class VanillaFetch final : public FetchUnit {
 public:
  VanillaFetch(const Memory& mem, ICache& icache, const SimConfig& config,
               std::uint32_t start_pc);

  std::optional<FetchedInst> step(std::uint64_t cycle, bool queue_full) override;
  void redirect(std::uint32_t target, std::uint32_t from_pc,
                std::uint64_t cycle, bool indirect = false) override;
  std::optional<ResetEvent> reset() const override { return reset_; }

 private:
  const Memory& mem_;
  ICache& icache_;
  const SimConfig& config_;
  std::uint32_t pc_;
  std::uint64_t ready_at_ = 0;  ///< fetch in progress completes at this cycle
  bool fetching_ = false;
  bool waiting_ = false;  ///< stopped at an indirect jump / halt
  std::optional<ResetEvent> reset_;
};

class SofiaFetch final : public FetchUnit {
 public:
  SofiaFetch(const Memory& mem, ICache& icache, CipherEngine& engine,
             const SimConfig& config, const assembler::LoadImage& image);

  std::optional<FetchedInst> step(std::uint64_t cycle, bool queue_full) override;
  void redirect(std::uint32_t target, std::uint32_t from_pc,
                std::uint64_t cycle, bool indirect = false) override;
  std::optional<ResetEvent> reset() const override { return reset_; }

 private:
  /// Process one whole block starting at `entry_cycle`: fetch, open it
  /// through the protection scheme (decrypt + verify), replay the scheme's
  /// cipher ops on the engine model, queue deliveries; decide how fetch
  /// continues (sequential speculation, decode-time direct jump, or wait
  /// for the execute side). Sets reset_ on violations.
  void process_block(std::uint32_t target_word, std::uint32_t prev_word,
                     std::uint64_t entry_cycle);

  const Memory& mem_;
  ICache& icache_;
  CipherEngine& engine_;
  const SimConfig& config_;
  std::uint32_t text_base_word_;
  /// The device side of config_.scheme, keyed with config_.keys and the
  /// image's omega/granularity.
  std::unique_ptr<scheme::Opener> opener_;

  std::deque<FetchedInst> staged_;  ///< decoded, time-stamped deliveries
  bool waiting_ = false;            ///< stopped at an indirect exit / halt
  std::uint32_t next_block_word_ = 0;  ///< continuation target (word addr)
  std::uint32_t cont_prev_word_ = 0;   ///< prev word for the continuation
  std::uint64_t cont_cycle_ = 0;       ///< earliest continuation cycle
  std::optional<ResetEvent> reset_;

  /// Forward-edge gate state (gating schemes only): what the scheme said
  /// about each opened block's exit, keyed by its exit word address.
  struct ExitInfo {
    bool gated = false;
    std::uint8_t exit_label = 0;
  };
  std::unordered_map<std::uint32_t, ExitInfo> exit_info_;
  /// Set by an indirect redirect: the source exit label the next opened
  /// block's entry label must equal (consumed by process_block).
  std::optional<std::uint8_t> pending_entry_check_;
};

}  // namespace sofia::sim
