#include "sim/memory.hpp"

#include <cstring>

namespace sofia::sim {

const std::uint8_t* Memory::page_for_read(std::uint32_t addr) const {
  const auto it = pages_.find(addr >> kPageBits);
  return it == pages_.end() ? nullptr : it->second.get();
}

std::uint8_t* Memory::page_for_write(std::uint32_t addr) {
  auto& page = pages_[addr >> kPageBits];
  if (!page) {
    page = std::make_unique<std::uint8_t[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
  }
  return page.get();
}

std::uint8_t Memory::load8(std::uint32_t addr) const {
  const std::uint8_t* page = page_for_read(addr);
  return page ? page[addr & (kPageSize - 1)] : 0;
}

std::uint16_t Memory::load16(std::uint32_t addr) const {
  return static_cast<std::uint16_t>(load8(addr) | (load8(addr + 1) << 8));
}

std::uint32_t Memory::load32(std::uint32_t addr) const {
  return static_cast<std::uint32_t>(load16(addr)) |
         (static_cast<std::uint32_t>(load16(addr + 2)) << 16);
}

void Memory::store8(std::uint32_t addr, std::uint8_t value) {
  page_for_write(addr)[addr & (kPageSize - 1)] = value;
}

void Memory::store16(std::uint32_t addr, std::uint16_t value) {
  store8(addr, static_cast<std::uint8_t>(value));
  store8(addr + 1, static_cast<std::uint8_t>(value >> 8));
}

void Memory::store32(std::uint32_t addr, std::uint32_t value) {
  store16(addr, static_cast<std::uint16_t>(value));
  store16(addr + 2, static_cast<std::uint16_t>(value >> 16));
}

void Memory::load_image(const assembler::LoadImage& image) {
  for (std::size_t i = 0; i < image.text.size(); ++i)
    store32(image.text_base + static_cast<std::uint32_t>(i * 4), image.text[i]);
  for (std::size_t i = 0; i < image.data.size(); ++i)
    store8(image.data_base + static_cast<std::uint32_t>(i), image.data[i]);
}

}  // namespace sofia::sim
