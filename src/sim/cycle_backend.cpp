#include "sim/cycle_backend.hpp"

#include "sim/machine.hpp"

namespace sofia::sim {

RunResult CycleAccurateBackend::run(const assembler::LoadImage& image,
                                    const SimConfig& config) const {
  return run_image(image, config);
}

}  // namespace sofia::sim
