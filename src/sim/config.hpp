// Simulator configuration and result types.
//
// The simulator models a LEON3-class 7-stage in-order single-issue pipeline
// (IF ID OF EXE MA XCP WB) at cycle granularity with the SOFIA front end of
// the paper: an instruction cache, a fetch queue decoupling IF from the
// execute stages, a shared 2-cycle pipelined cipher engine that alternates
// CTR (instruction decryption) and CBC (MAC) operations, run-time MAC
// verification per block, and the store gate that keeps store-class
// instructions out of the MA stage until their block verifies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/ctr.hpp"
#include "crypto/key_set.hpp"
#include "xform/block_policy.hpp"

namespace sofia::sim {

/// Why the SOFIA logic pulled the reset line (architectural detections).
enum class ResetCause : std::uint8_t {
  kNone = 0,
  kMacMismatch,         ///< run-time MAC != stored MAC (tampering / bad CF)
  kInvalidEntry,        ///< transfer into a block at word offset >= 3
  kRestrictedStore,     ///< store decoded in a restricted slot (Fig. 6)
  kIllegalExit,         ///< control instruction decoded off the exit slot
  kIllegalInstruction,  ///< undecodable word reached decode
  kStateCorruption,     ///< chained-state scheme tag mismatch ("sponge")
  kTargetSetViolation,  ///< indirect transfer outside the sealed target set ("flta")
};

std::string_view to_string(ResetCause cause);

struct ResetEvent {
  ResetCause cause = ResetCause::kNone;
  std::uint64_t cycle = 0;
  std::uint32_t pc = 0;  ///< byte address of the offending word/block entry
};

/// Timing of the shared block-cipher engine (paper §III: RECTANGLE-80
/// unrolled into a 2-cycle operation; a single instance alternates between
/// CTR and CBC work every other cycle). The paper's wording admits two
/// hardware readings, both modelled:
///  * pipelined — an op can start every cycle (stage registers between the
///    round groups); alternation gives each class one slot per 2 cycles;
///  * iterative — the instance is busy for the whole `latency`, so one op
///    finishes per `latency` cycles regardless of class.
/// bench_adpcm_overhead reports which reading lands on the paper's 13.7%.
struct CipherTiming {
  std::uint32_t latency = 2;  ///< cycles from issue to result
  bool alternate = true;      ///< strict CTR-even / CBC-odd slot alternation
  bool pipelined = true;      ///< accept one op per cycle (vs every latency)
};

struct CacheConfig {
  std::uint32_t size_bytes = 4096;
  std::uint32_t line_bytes = 32;
  std::uint32_t miss_penalty = 12;  ///< cycles to refill a line
};

/// Transient-fault injection on the instruction-fetch path (the paper's
/// stated future work: "test the architecture's resistance to fault-based
/// attacks"). Flips one bit of the raw word delivered by the N-th fetch of
/// the run — a model of a voltage/clock glitch on the bus or cache read.
struct FaultInjection {
  bool enabled = false;
  std::uint64_t fetch_index = 0;  ///< 0-based index of the word fetch to hit
  unsigned bit = 0;               ///< bit to flip (0..31)
};

struct SimConfig {
  // Front end.
  std::uint32_t fetch_queue = 6;     ///< decoupling queue entries
  std::uint32_t redirect_bubble = 2; ///< pipeline refill after taken control
  /// I-cache read width of the SOFIA front end in words. The paper's
  /// datapath moves 64-bit blocks into the cipher, i.e. 2 words/cycle; the
  /// vanilla core always fetches 1 word/cycle.
  std::uint32_t fetch_words_per_cycle = 2;
  CacheConfig icache;
  // Execute side.
  std::uint32_t load_latency = 2;  ///< cycles until a load's result is usable
  std::uint32_t mul_latency = 3;
  // SOFIA device state (ignored for vanilla images).
  crypto::KeySet keys;
  /// Protection scheme the device implements — a scheme::scheme_registry()
  /// key. The literal default mirrors scheme::kDefaultScheme (this header
  /// cannot include scheme/scheme.hpp without a layering cycle; test_scheme
  /// asserts the two stay equal).
  std::string scheme = "sofia-cbcmac";
  xform::BlockPolicy policy = xform::BlockPolicy::paper_default();
  CipherTiming cipher;
  /// Pipeline distance between our execute point (ID/OF) and the MA stage:
  /// a store may enter the pipe this many cycles before its block's
  /// verification completes and still be gated correctly (paper Fig. 5/6).
  std::uint32_t store_gate_headstart = 3;
  FaultInjection fault;
  // Harness.
  std::uint64_t max_cycles = 2'000'000'000ull;
  /// Record a per-instruction execution trace in RunResult::trace (costly;
  /// for debugging and tests).
  bool collect_trace = false;
  std::size_t max_trace = 100'000;
};

struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t insts = 0;        ///< instructions executed (including NOPs)
  std::uint64_t nops = 0;         ///< NOPs among them (SOFIA padding shows here)
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken = 0;
  std::uint64_t icache_hits = 0;
  std::uint64_t icache_misses = 0;
  std::uint64_t fetch_words = 0;      ///< words delivered by the front end
  std::uint64_t mac_words = 0;        ///< MAC words consumed (SOFIA)
  std::uint64_t ctr_ops = 0;
  std::uint64_t cbc_ops = 0;
  std::uint64_t blocks_fetched = 0;
  std::uint64_t mac_verifications = 0;
  std::uint64_t store_gate_stalls = 0;  ///< cycles stores waited on the gate
  std::uint64_t queue_empty_cycles = 0; ///< execute side starved
  std::uint64_t exec_stall_cycles = 0;  ///< execute side busy (hazards)
};

/// One executed instruction (only collected when SimConfig::collect_trace).
struct TraceEntry {
  std::uint64_t cycle = 0;  ///< cycle the instruction issued
  std::uint32_t pc = 0;
  std::uint32_t word = 0;  ///< encoded instruction
};

struct RunResult {
  enum class Status : std::uint8_t {
    kHalted,     ///< executed HALT
    kExited,     ///< wrote the MMIO exit register
    kReset,      ///< SOFIA pulled the reset line (see reset)
    kFault,      ///< simulator-level error (misaligned access, bad fetch)
    kMaxCycles,  ///< ran out of the configured cycle budget
  };
  Status status = Status::kHalted;
  int exit_code = 0;
  ResetEvent reset;
  std::string fault;   ///< message for kFault
  std::string output;  ///< console MMIO text
  SimStats stats;
  std::vector<TraceEntry> trace;  ///< see SimConfig::collect_trace

  bool ok() const { return status == Status::kHalted || status == Status::kExited; }
};

/// Render a trace as "cycle pc disassembly" lines.
std::string format_trace(const std::vector<TraceEntry>& trace);

std::string_view to_string(RunResult::Status status);

// Memory-mapped I/O (word stores).
inline constexpr std::uint32_t kMmioConsole = 0xFFFF0000u;  ///< low byte -> console
inline constexpr std::uint32_t kMmioExit = 0xFFFF0004u;     ///< exit(code)
inline constexpr std::uint32_t kMmioPutInt = 0xFFFF0008u;   ///< print int + '\n'

}  // namespace sofia::sim
