// Pluggable execution backends. A Backend is one way of running a
// LoadImage under a SimConfig; every backend enforces the *same*
// architectural contract — the ISA semantics and the SOFIA integrity
// rules (decrypt with control-flow-dependent counters, verify the block
// CBC-MAC, reset on any violation) — but backends differ in what their
// numbers mean:
//
//  * "cycle"      — the paper-faithful cycle-accurate simulator (7-stage
//                   core, I-cache, shared cipher engine, store gate).
//                   stats.cycles models device time.
//  * "functional" — an architectural interpreter: same integrity
//                   semantics, no micro-architectural timing. Orders of
//                   magnitude faster; stats.cycles counts retired
//                   instructions. For sweep prefiltering and integrity
//                   testing, never for overhead numbers.
//  * "remote"     — ships each run over a versioned wire protocol to a
//                   sofia_worker process (local subprocess, ssh hop or
//                   container) and returns the far side's result; the
//                   numbers mean whatever the far-side backend's mean
//                   (capabilities() is forwarded).
//
// Consumers never construct a simulator directly: they name a backend
// (DeviceProfile::backend routes pipeline::Pipeline here) and the
// registry hands back the implementation, so an alternative backend
// is a drop-in.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "assembler/image.hpp"
#include "sim/config.hpp"

namespace sofia::remote {
struct RemoteSpec;
}

namespace sofia::sim {

/// What a backend's RunResult numbers mean. Both flags are advertised so
/// report generators can refuse to print timing columns for a backend
/// that never modelled them.
struct BackendCapabilities {
  /// stats.cycles models device time. When false, cycles is the retired
  /// instruction count and any cycle-derived overhead is meaningless.
  bool cycle_accurate = false;
  /// The I-cache / fetch-queue / cipher-engine counters are modelled.
  bool models_microarchitecture = false;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry key, e.g. "cycle".
  virtual std::string_view name() const = 0;

  /// One-line human description for --help texts and reports.
  virtual std::string_view describe() const = 0;

  virtual BackendCapabilities capabilities() const = 0;

  /// Execute an image to completion. The architectural outcome (status,
  /// exit code, console output, reset-on-tamper) must agree across all
  /// backends for any image whose integrity violations — if any — lie on
  /// the architecturally executed path; only timing fidelity may differ.
  /// Two documented corners where micro-architecture shows through:
  ///  * the cycle machine speculatively fetches fall-through blocks, so
  ///    it additionally resets on tampering in a block that architectural
  ///    control flow never enters (a strictly earlier detection);
  ///  * SimConfig::fault.fetch_index counts each backend's own fetch
  ///    stream, which includes those speculative fetches on "cycle" only
  ///    — pick indices inside the entry block for backend-portable
  ///    campaigns.
  /// Backends are stateless: run() builds a fresh machine per call and is
  /// safe to invoke concurrently.
  virtual RunResult run(const assembler::LoadImage& image,
                        const SimConfig& config) const = 0;
};

/// One registry row: key + description + factory.
struct BackendEntry {
  std::string_view name;
  std::string_view description;
  std::unique_ptr<Backend> (*make)();
};

/// The default backend every DeviceProfile starts with.
inline constexpr std::string_view kDefaultBackend = "cycle";

/// Built-in backends in a stable order ("cycle" first).
const std::vector<BackendEntry>& backend_registry();

/// The registered names, in registry order.
std::vector<std::string> backend_names();

/// Is `name` a registered backend key?
bool is_backend(std::string_view name);

/// Construct a backend by registry key; throws sofia::Error listing the
/// registered names for anything unknown.
std::unique_ptr<Backend> make_backend(std::string_view name);

/// Same, but "remote" is built around the given endpoint spec instead of
/// the environment — the overload Pipeline uses to route
/// DeviceProfile.remote, so no consumer ever name-checks "remote" itself.
std::unique_ptr<Backend> make_backend(std::string_view name,
                                      const remote::RemoteSpec& remote_spec);

}  // namespace sofia::sim
