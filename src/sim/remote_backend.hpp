// The remote-execution backend: ships each (image, config) run over the
// wire protocol to a worker process (remote/transport) and returns the
// far side's RunResult, with capabilities() forwarded from the backend the
// worker actually executes. Registered as "remote" in backend_registry();
// the default-constructed entry reads its endpoint from SOFIA_WORKER /
// SOFIA_WORKER_BACKEND, while DeviceProfile.remote injects an explicit
// spec through Pipeline.
#pragma once

#include <memory>
#include <mutex>
#include <optional>

#include "remote/spec.hpp"
#include "sim/backend.hpp"

namespace sofia::remote {
class WorkerProcess;
struct Frame;
}

namespace sofia::sim {

inline constexpr std::string_view kRemoteBackendDescription =
    "ship runs to a sofia_worker over stdio pipes (subprocess/ssh/container)";

class RemoteBackend final : public Backend {
 public:
  /// Endpoint from the SOFIA_WORKER / SOFIA_WORKER_BACKEND environment.
  RemoteBackend();

  /// Explicit endpoint; unset fields resolve against the environment
  /// (RemoteSpec::resolved()). Construction never talks to the worker —
  /// the process is spawned lazily on the first run()/capabilities() call.
  explicit RemoteBackend(remote::RemoteSpec spec);

  ~RemoteBackend() override;

  std::string_view name() const override { return "remote"; }
  std::string_view describe() const override {
    return kRemoteBackendDescription;
  }

  /// Forwarded from the far-side backend via a hello exchange (cached after
  /// the first call). Throws sofia::Error when no worker is configured or
  /// reachable.
  BackendCapabilities capabilities() const override;

  /// Serialize the request, hand it to the worker, decode the reply. A
  /// worker-side failure (unknown backend, simulator error) or a transport
  /// failure (worker died mid-reply, malformed frame) throws sofia::Error
  /// naming the worker command; after a transport failure the process is
  /// dropped so the next call respawns it. Concurrent calls are serialized
  /// over the single worker pipe — for real fan-out, run one coordinator
  /// job per worker (see tools/sofia_fleet).
  RunResult run(const assembler::LoadImage& image,
                const SimConfig& config) const override;

  const remote::RemoteSpec& spec() const { return spec_; }

 private:
  remote::WorkerProcess& worker() const;  ///< caller holds mutex_
  remote::Frame exchange(const remote::Frame& request) const;

  remote::RemoteSpec spec_;
  mutable std::mutex mutex_;
  mutable std::unique_ptr<remote::WorkerProcess> worker_;
  mutable std::optional<BackendCapabilities> caps_;
};

}  // namespace sofia::sim
