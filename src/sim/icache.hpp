// Direct-mapped instruction cache timing model. Functional data always
// comes from Memory; the cache only decides how many cycles a word takes.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"

namespace sofia::sim {

class ICache {
 public:
  explicit ICache(const CacheConfig& config);

  /// Cycles needed to deliver the word at `addr` (1 on hit, the configured
  /// refill penalty on miss); updates cache state.
  std::uint32_t access(std::uint32_t addr);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::uint32_t line_bits_;
  std::uint32_t num_lines_;
  std::uint32_t miss_penalty_;
  std::vector<std::uint64_t> tags_;  ///< tag+1, 0 = invalid
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sofia::sim
