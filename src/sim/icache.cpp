#include "sim/icache.hpp"

#include <bit>

#include "support/error.hpp"

namespace sofia::sim {

ICache::ICache(const CacheConfig& config) : miss_penalty_(config.miss_penalty) {
  if (config.line_bytes < 4 || !std::has_single_bit(config.line_bytes) ||
      !std::has_single_bit(config.size_bytes) ||
      config.size_bytes < config.line_bytes)
    throw Error("icache: size and line must be powers of two, size >= line");
  line_bits_ = static_cast<std::uint32_t>(std::countr_zero(config.line_bytes));
  num_lines_ = config.size_bytes / config.line_bytes;
  tags_.assign(num_lines_, 0);
}

std::uint32_t ICache::access(std::uint32_t addr) {
  const std::uint32_t line_addr = addr >> line_bits_;
  const std::uint32_t index = line_addr & (num_lines_ - 1);
  const std::uint64_t tag = static_cast<std::uint64_t>(line_addr) + 1;
  if (tags_[index] == tag) {
    ++hits_;
    return 1;
  }
  ++misses_;
  tags_[index] = tag;
  return miss_penalty_;
}

}  // namespace sofia::sim
