#include "pipeline/pipeline.hpp"

#include <utility>

#include "assembler/image_io.hpp"
#include "assembler/link.hpp"
#include "support/error.hpp"
#include "support/io.hpp"

namespace sofia::pipeline {

Pipeline::Pipeline(std::string name, DeviceProfile profile)
    : name_(std::move(name)), profile_(profile) {
  // Resolve a valid backend eagerly: backend() then never mutates, so the
  // const run_image() overloads stay safe to call concurrently on a shared
  // session (Backend::run itself is documented concurrency-safe). An
  // unknown name is still reported lazily, with stage context, by backend().
  // The spec-taking overload routes profile.remote to a "remote" backend
  // (the registry's no-argument factory would only see the environment).
  if (sim::is_backend(profile_.backend))
    backend_ = sim::make_backend(profile_.backend, profile_.remote);
}

void Pipeline::fail(const char* stage, const std::string& what) const {
  throw Error("pipeline[" + name_ + "]/" + stage + ": " + what);
}

template <typename F>
auto Pipeline::run_stage(const char* stage, F&& f) -> decltype(f()) {
  try {
    return f();
  } catch (const std::exception& e) {
    fail(stage, e.what());
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

Pipeline Pipeline::from_source(std::string source, DeviceProfile profile,
                               std::string name) {
  Pipeline p(std::move(name), profile);
  p.source_ = std::move(source);
  return p;
}

Pipeline Pipeline::from_source_file(const std::string& path,
                                    DeviceProfile profile) {
  Pipeline p(path, profile);
  // Binary-mode read via support/io, matching the tools (a text-mode read
  // would diverge on CRLF sources and hide short reads).
  p.run_stage("read", [&] { p.source_ = io::read_file(path); });
  return p;
}

Pipeline Pipeline::from_workload(const workloads::WorkloadSpec& spec,
                                 std::uint64_t seed, std::uint32_t size,
                                 DeviceProfile profile) {
  Pipeline p(spec.name, profile);
  p.run_stage("generate", [&] {
    p.source_ = spec.source(seed, size);
    p.expected_ = spec.golden(seed, size);
  });
  return p;
}

Pipeline Pipeline::from_workload(std::string_view workload_name,
                                 std::uint64_t seed, std::uint32_t size,
                                 DeviceProfile profile) {
  return from_workload(workloads::workload(workload_name), seed, size, profile);
}

Pipeline Pipeline::from_image_file(const std::string& path,
                                   DeviceProfile profile) {
  Pipeline p(path, profile);
  p.run_stage("load", [&] { p.loaded_image_ = assembler::load_image_file(path); });
  return p;
}

Pipeline Pipeline::from_image(assembler::LoadImage image, DeviceProfile profile,
                              std::string name) {
  Pipeline p(std::move(name), profile);
  p.loaded_image_ = std::move(image);
  return p;
}

// ---------------------------------------------------------------------------
// Session configuration
// ---------------------------------------------------------------------------

void Pipeline::set_sim_config(sim::SimConfig config) {
  base_config_ = std::move(config);
  run_.reset();
  vanilla_run_.reset();
}

void Pipeline::set_memory_layout(assembler::MemoryLayout mem) {
  mem_ = mem;
  vanilla_image_.reset();
  hardened_.reset();
  model_.reset();
  run_.reset();
  vanilla_run_.reset();
}

void Pipeline::set_elide_unreachable(bool elide) {
  elide_unreachable_ = elide;
  hardened_.reset();
  model_.reset();
  run_.reset();
}

void Pipeline::set_expected_output(std::string expected) {
  expected_ = std::move(expected);
}

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

const assembler::Program& Pipeline::program() {
  if (!program_) {
    if (!source_)
      fail("program", "session was built from an image; no source available");
    run_stage("program",
              [&] { program_ = assembler::assemble(*source_); });
  }
  return *program_;
}

const assembler::LoadImage& Pipeline::vanilla_image() {
  if (!vanilla_image_) {
    if (loaded_image_ && !loaded_image_->sofia) return *loaded_image_;
    const auto& prog = program();
    run_stage("link-vanilla",
              [&] { vanilla_image_ = assembler::link_vanilla(prog, mem_); });
  }
  return *vanilla_image_;
}

const xform::TransformResult& Pipeline::hardened() {
  if (!hardened_) {
    if (loaded_image_)
      fail("transform", "session was built from an image; no source available");
    const auto& prog = program();
    run_stage("transform", [&] {
      hardened_ = xform::transform(
          prog, profile_.keys(),
          profile_.transform_options(mem_, elide_unreachable_));
    });
  }
  return *hardened_;
}

const assembler::LoadImage& Pipeline::image() {
  if (loaded_image_) return *loaded_image_;
  return hardened().image;
}

sim::SimConfig Pipeline::effective_sim_config() const {
  sim::SimConfig config = base_config_;
  profile_.configure(config);
  return config;
}

const sim::Backend& Pipeline::backend() const {
  if (backend_) return *backend_;
  // The constructor only resolves registered names; re-run the registry
  // lookup here for its descriptive error (valid choices included).
  try {
    sim::make_backend(profile_.backend);
  } catch (const std::exception& e) {
    fail("backend", e.what());
  }
  fail("backend", "unknown backend '" + profile_.backend + "'");
}

const scheme::ProtectionScheme& Pipeline::scheme() const {
  try {
    return scheme::get_scheme(profile_.scheme);
  } catch (const std::exception& e) {
    fail("scheme", e.what());
  }
}

const sim::RunResult& Pipeline::run() {
  if (!run_) {
    const auto& img = image();
    const auto& be = backend();
    run_stage("run", [&] { run_ = be.run(img, effective_sim_config()); });
  }
  return *run_;
}

const sim::RunResult& Pipeline::run_vanilla() {
  if (!vanilla_run_) {
    const auto& img = vanilla_image();
    const auto& be = backend();
    run_stage("run-vanilla",
              [&] { vanilla_run_ = be.run(img, effective_sim_config()); });
  }
  return *vanilla_run_;
}

verify::DeviceSpec Pipeline::device_spec() const {
  verify::DeviceSpec spec;
  spec.keys = profile_.keys();
  spec.scheme = profile_.scheme;
  spec.granularity = profile_.granularity;
  spec.policy = profile_.policy;
  return spec;
}

verify::Report Pipeline::lint() { return lint_image(image()); }

verify::Report Pipeline::lint_image(const assembler::LoadImage& img) {
  // Image sessions have no program to model: the lint degrades to the
  // metadata/geometry/key-material subset (documented on verify::lint).
  if (loaded_image_ && !source_)
    return run_stage("lint",
                     [&] { return verify::lint(img, device_spec()); });
  if (!model_) {
    const auto& hard = hardened();
    run_stage("lint", [&] { model_ = verify::model_of(hard); });
  }
  return run_stage(
      "lint", [&] { return verify::lint(*model_, img, device_spec()); });
}

sim::RunResult Pipeline::run_image(const assembler::LoadImage& img) const {
  return backend().run(img, effective_sim_config());
}

sim::RunResult Pipeline::run_image(const assembler::LoadImage& img,
                                   sim::SimConfig config) const {
  profile_.configure(config);
  return backend().run(img, config);
}

Measurement Pipeline::measure() {
  const auto& v = run_vanilla();
  if (!v.ok())
    fail("measure", "vanilla run failed (" + std::string(to_string(v.status)) +
                        ")");
  const std::string& expect = expected_ ? *expected_ : v.output;
  if (expected_ && v.output != *expected_)
    fail("measure", "vanilla output does not match the golden model");

  const auto& s = run();
  if (!s.ok())
    fail("measure",
         "SOFIA run failed (" + std::string(to_string(s.status)) + ")");
  if (s.output != expect)
    fail("measure", "SOFIA output does not match the expected output");

  Measurement m;
  m.name = name_;
  m.vanilla_text_bytes = vanilla_image().text_bytes();
  m.vanilla_cycles = v.stats.cycles;
  m.vanilla_stats = v.stats;
  m.sofia_text_bytes = image().text_bytes();
  m.sofia_cycles = s.stats.cycles;
  m.sofia_stats = s.stats;
  return m;
}

}  // namespace sofia::pipeline
