// The staged SOFIA toolchain facade: one session object that owns the
// paper's §III installation flow (assemble → normalize/pack → MAC →
// CTR-encrypt) and §IV evaluation flow (run vanilla vs. SOFIA, compare) end
// to end, parameterized by a single DeviceProfile so the toolchain and the
// simulated device can never disagree on cipher, keys, policy or
// granularity.
//
//   auto p = pipeline::Pipeline::from_workload("fib", /*seed=*/1, /*size=*/8);
//   const auto& prog  = p.program();        // assembled once, cached
//   const auto& plain = p.vanilla_image();  // sequential baseline link
//   const auto& hard  = p.hardened();       // full SOFIA transform
//   const auto& run   = p.run();            // execute on the SOFIA device
//   const auto  m     = p.measure();        // vanilla-vs-SOFIA measurement
//
// Stages are computed lazily, cached, and every failure is rethrown as a
// sofia::Error carrying uniform context: "pipeline[<name>]/<stage>: ...".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "assembler/image.hpp"
#include "assembler/program.hpp"
#include "hw/hw_model.hpp"
#include "pipeline/device_profile.hpp"
#include "sim/backend.hpp"
#include "support/error.hpp"
#include "verify/verify.hpp"
#include "workloads/workloads.hpp"
#include "xform/transform.hpp"

namespace sofia::pipeline {

/// One vanilla-vs-SOFIA comparison of the same program (the paper's
/// headline metrics). Produced by Pipeline::measure(); the legacy
/// bench::Measurement name aliases this type.
struct Measurement {
  std::string name;
  std::uint32_t vanilla_text_bytes = 0;
  std::uint32_t sofia_text_bytes = 0;
  std::uint64_t vanilla_cycles = 0;
  std::uint64_t sofia_cycles = 0;
  sim::SimStats vanilla_stats;
  sim::SimStats sofia_stats;

  double size_ratio() const {
    return static_cast<double>(sofia_text_bytes) / vanilla_text_bytes;
  }
  double cycle_overhead_pct() const {
    return hw::overhead_pct(static_cast<double>(vanilla_cycles),
                            static_cast<double>(sofia_cycles));
  }
  /// Total execution-time overhead using the hardware model's clocks.
  double time_overhead_pct(const hw::HwModel& model, int unroll_cycles) const {
    const double tv =
        hw::execution_time_ms(vanilla_cycles, model.vanilla().clock_mhz);
    const double ts = hw::execution_time_ms(
        sofia_cycles, model.sofia(unroll_cycles).clock_mhz);
    return hw::overhead_pct(tv, ts);
  }
};

class Pipeline {
 public:
  // ---- entry points -------------------------------------------------------

  /// Session over an SR32 source string. `name` labels error context.
  static Pipeline from_source(std::string source,
                              DeviceProfile profile = DeviceProfile::paper_default(),
                              std::string name = "program");

  /// Session over an SR32 source file (reads it eagerly; the read is the
  /// first stage and reports I/O failures with pipeline context).
  static Pipeline from_source_file(const std::string& path,
                                   DeviceProfile profile = DeviceProfile::paper_default());

  /// Session over a registered workload: source generated from (seed, size)
  /// and the golden model's output installed as the expected output.
  static Pipeline from_workload(const workloads::WorkloadSpec& spec,
                                std::uint64_t seed, std::uint32_t size,
                                DeviceProfile profile = DeviceProfile::paper_default());

  /// Registry-lookup convenience; throws for unknown workload names.
  static Pipeline from_workload(std::string_view workload_name,
                                std::uint64_t seed, std::uint32_t size,
                                DeviceProfile profile = DeviceProfile::paper_default());

  /// Session over a saved image (sofia_run's path). Toolchain stages
  /// (program()/vanilla_image()/hardened()) are unavailable and throw;
  /// image() and run() execute the loaded binary under the profile.
  static Pipeline from_image_file(const std::string& path,
                                  DeviceProfile profile = DeviceProfile::paper_default());

  /// Session over an in-memory image.
  static Pipeline from_image(assembler::LoadImage image,
                             DeviceProfile profile = DeviceProfile::paper_default(),
                             std::string name = "image");

  // ---- session configuration (set before the affected stage runs) --------

  const std::string& name() const { return name_; }
  const DeviceProfile& profile() const { return profile_; }

  /// Replace the base simulator configuration (timing knobs, budgets,
  /// fault injection). Keys/policy are stamped from the profile at run
  /// time. Invalidates any cached runs.
  void set_sim_config(sim::SimConfig config);
  const sim::SimConfig& sim_config() const { return base_config_; }

  /// Replace the memory layout used by both back ends. Invalidates cached
  /// images and runs.
  void set_memory_layout(assembler::MemoryLayout mem);

  /// Toolchain option: drop statically unreachable code while packing.
  /// Invalidates the cached hardened image.
  void set_elide_unreachable(bool elide);

  /// Expected console output (from_workload installs the golden model's).
  void set_expected_output(std::string expected);
  bool has_expected_output() const { return expected_.has_value(); }

  // ---- staged products, lazily computed and cached ------------------------

  /// The assembled program (stage "program").
  const assembler::Program& program();

  /// Sequential plaintext baseline (stage "link-vanilla").
  const assembler::LoadImage& vanilla_image();

  /// The full §III transformation (stage "transform").
  const xform::TransformResult& hardened();

  /// The session's device binary: hardened().image for source/workload
  /// sessions, the loaded image for image sessions.
  const assembler::LoadImage& image();

  /// Execute the device binary on the simulated core (stage "run"); cached.
  const sim::RunResult& run();

  /// Execute the vanilla baseline (stage "run-vanilla"); cached.
  const sim::RunResult& run_vanilla();

  /// Run both cores, validate outputs against the expected output (or
  /// against each other when none is installed), and combine the numbers.
  /// Throws sofia::Error on any functional mismatch — a measurement must
  /// never report numbers for a broken run (stage "measure").
  Measurement measure();

  /// Statically verify the session's device binary against the full SOFIA
  /// contract (stage "lint"): seals re-derived per scheme, edge/entry
  /// consistency, block policy, metadata. Source/workload sessions check
  /// against the transform's program model; image sessions get the
  /// image-only metadata subset. Defects become findings, never throws.
  verify::Report lint();

  /// Lint an arbitrary image against this session's program model and
  /// profile — the static counterpart of run_image() for tampered variants.
  verify::Report lint_image(const assembler::LoadImage& img);

  /// The verifier's view of this session's profile (keys + scheme +
  /// granularity + policy).
  verify::DeviceSpec device_spec() const;

  /// Execute an arbitrary image under this session's device configuration —
  /// the attack/fault harnesses use it to run tampered variants of image().
  sim::RunResult run_image(const assembler::LoadImage& img) const;

  /// Same, with an explicit base configuration (per-trial fault injection);
  /// the profile's keys/policy are stamped on before running.
  sim::RunResult run_image(const assembler::LoadImage& img,
                           sim::SimConfig config) const;

  /// The effective device configuration (base config + profile stamp).
  sim::SimConfig effective_sim_config() const;

  /// The execution backend this session runs on, resolved once from
  /// profile().backend through sim::backend_registry(). Every run()/
  /// run_vanilla()/run_image() call executes through this object — no
  /// consumer constructs a simulator directly.
  const sim::Backend& backend() const;

  /// The protection scheme this session seals and opens blocks with,
  /// resolved from profile().scheme through scheme::scheme_registry().
  /// Unknown names throw with "pipeline[name]/scheme:" context (the same
  /// error transform/run would hit, surfaced earlier and cleaner).
  const scheme::ProtectionScheme& scheme() const;

 private:
  Pipeline(std::string name, DeviceProfile profile);

  [[noreturn]] void fail(const char* stage, const std::string& what) const;
  template <typename F>
  auto run_stage(const char* stage, F&& f) -> decltype(f());

  std::string name_;
  DeviceProfile profile_;
  std::unique_ptr<sim::Backend> backend_;  ///< resolved in the ctor; null
                                           ///< only for unknown names
  sim::SimConfig base_config_;
  assembler::MemoryLayout mem_;
  bool elide_unreachable_ = false;

  std::optional<std::string> source_;
  std::optional<std::string> expected_;
  std::optional<assembler::Program> program_;
  std::optional<assembler::LoadImage> vanilla_image_;
  std::optional<xform::TransformResult> hardened_;
  std::optional<verify::ProgramModel> model_;  ///< lint view of hardened_
  std::optional<assembler::LoadImage> loaded_image_;  ///< image sessions
  std::optional<sim::RunResult> run_;
  std::optional<sim::RunResult> vanilla_run_;
};

}  // namespace sofia::pipeline
