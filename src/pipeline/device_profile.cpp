#include "pipeline/device_profile.hpp"

#include <cctype>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace sofia::pipeline {

namespace {

std::string lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s)
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

DeviceProfile DeviceProfile::example(crypto::CipherKind kind) {
  DeviceProfile p;
  p.cipher = kind;
  return p;
}

DeviceProfile DeviceProfile::from_seed(crypto::CipherKind kind,
                                       std::uint64_t seed) {
  DeviceProfile p;
  p.cipher = kind;
  p.key_source = KeySource::kSeed;
  p.key_seed = seed;
  return p;
}

DeviceProfile DeviceProfile::with_keys(crypto::KeySet keys) {
  DeviceProfile p;
  p.cipher = keys.kind;
  p.key_source = KeySource::kExplicit;
  p.explicit_keys = keys;
  return p;
}

crypto::CipherKind DeviceProfile::parse_cipher(std::string_view name) {
  const std::string n = lower(name);
  if (n == "rectangle80" || n == "rectangle-80" || n == "rectangle")
    return crypto::CipherKind::kRectangle80;
  if (n == "speck64" || n == "speck64_128" || n == "speck-64/128" ||
      n == "speck")
    return crypto::CipherKind::kSpeck64_128;
  throw Error("unknown cipher '" + std::string(name) +
              "' (expected rectangle80 or speck64)");
}

std::string DeviceProfile::parse_backend(std::string_view name) {
  if (!sim::is_backend(name))
    sim::make_backend(name);  // throws the canonical "unknown backend" error
  return std::string(name);
}

std::string DeviceProfile::parse_scheme(std::string_view name) {
  scheme::get_scheme(name);  // throws the canonical "unknown scheme" error
  return std::string(name);
}

remote::RemoteSpec DeviceProfile::parse_worker(std::string_view command,
                                               std::string_view far_backend) {
  if (command.empty())
    throw Error("remote worker: the launch command must not be empty");
  remote::RemoteSpec spec;
  spec.command = std::string(command);
  // Empty = unset: RemoteSpec::resolved() consults $SOFIA_WORKER_BACKEND
  // and then defaults to "cycle".
  if (!far_backend.empty()) {
    spec.backend = parse_backend(far_backend);
    if (spec.backend == "remote")
      throw Error("remote worker: the far-side backend must be a local one "
                  "(\"remote\" would recurse)");
  }
  return spec;
}

DeviceProfile DeviceProfile::parse(std::string_view cipher_name) {
  return example(parse_cipher(cipher_name));
}

crypto::KeySet DeviceProfile::keys() const {
  crypto::KeySet keys;
  switch (key_source) {
    case KeySource::kExample:
      keys = crypto::KeySet::example(cipher);
      break;
    case KeySource::kSeed: {
      Rng rng(key_seed);
      keys = crypto::KeySet::random(cipher, rng);
      break;
    }
    case KeySource::kExplicit:
      keys = explicit_keys;
      break;
  }
  if (omega_override >= 0)
    keys.omega = static_cast<std::uint16_t>(omega_override);
  return keys;
}

xform::Options DeviceProfile::transform_options(assembler::MemoryLayout mem,
                                                bool elide_unreachable) const {
  xform::Options opts;
  opts.policy = policy;
  opts.granularity = granularity;
  opts.scheme = scheme;
  opts.elide_unreachable = elide_unreachable;
  opts.mem = mem;
  return opts;
}

sim::SimConfig& DeviceProfile::configure(sim::SimConfig& config) const {
  config.keys = keys();
  config.policy = policy;
  config.scheme = scheme;
  return config;
}

std::string DeviceProfile::fingerprint() const {
  std::string fp = "cipher=";
  fp += crypto::to_string(cipher);
  fp += " keys=";
  switch (key_source) {
    case KeySource::kExample: fp += "example"; break;
    case KeySource::kSeed: fp += "seed:" + std::to_string(key_seed); break;
    case KeySource::kExplicit: fp += "explicit"; break;
  }
  if (omega_override >= 0)
    fp += " omega=" + std::to_string(omega_override);
  fp += " gran=";
  fp += crypto::to_string(granularity);
  fp += " policy=" + std::to_string(policy.words_per_block) + "/" +
        std::to_string(policy.store_min_word);
  // Unconditional (even for the default): an image sealed under one scheme
  // is a different artifact under any other, so the scheme is always part
  // of the device identity.
  fp += " scheme=" + scheme;
  fp += " backend=" + backend;
  if (backend == "remote") {
    // The endpoint is part of the device identity: two remote profiles
    // differing only in the worker or its far-side backend must not
    // fingerprint alike — including when the difference arrives via the
    // environment, hence the resolved() spec, the same one RemoteBackend
    // executes on. (Absent for local backends, keeping PR-4-era
    // fingerprints — and sweep JSON — byte-stable.)
    const auto spec = remote.resolved();
    fp += " remote-backend=" + spec.backend;
    fp += " remote-command='" + spec.command + "'";
  }
  return fp;
}

void DeviceProfile::to_json(json::Writer& w) const {
  w.begin_object();
  w.member("cipher", crypto::to_string(cipher));
  switch (key_source) {
    case KeySource::kExample: w.member("keys", "example"); break;
    case KeySource::kSeed:
      w.member("keys", "seed");
      w.member("key_seed", key_seed);
      break;
    case KeySource::kExplicit: w.member("keys", "explicit"); break;
  }
  if (omega_override >= 0)
    w.member("omega", static_cast<std::int64_t>(omega_override));
  w.member("granularity", crypto::to_string(granularity));
  w.member("scheme", scheme);
  w.member("backend", backend);
  if (backend == "remote") {
    const auto spec = remote.resolved();
    w.key("remote").begin_object();
    w.member("command", spec.command);
    w.member("backend", spec.backend);
    w.end_object();
  }
  w.key("policy").begin_object();
  w.member("words_per_block", policy.words_per_block);
  w.member("store_min_word", policy.store_min_word);
  w.end_object();
  w.end_object();
}

std::string DeviceProfile::to_json() const {
  json::Writer w(-1);
  to_json(w);
  return w.str();
}

}  // namespace sofia::pipeline
