// DeviceProfile: the single source of truth for everything a SOFIA device
// and its installation toolchain must agree on — cipher kind, key material,
// block geometry and CTR granularity (paper §II-B: the provider and the
// device share k1/k2/k3 and ω; a mismatch on any axis is a field failure,
// the device resets on the first block it fetches).
//
// Before this type existed the same four facts were smeared across
// xform::Options, sim::SimConfig.keys/.policy and MeasureOptions.cipher_kind
// and copied by hand at every call site. A DeviceProfile is constructed
// once and *stamped* onto both sides (transform_options() for the
// toolchain, configure() for the simulated device), so they cannot drift.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "assembler/image.hpp"
#include "crypto/ctr.hpp"
#include "crypto/key_set.hpp"
#include "remote/spec.hpp"
#include "scheme/scheme.hpp"
#include "sim/backend.hpp"
#include "sim/config.hpp"
#include "xform/block_policy.hpp"
#include "xform/transform.hpp"

namespace sofia::json {
class Writer;
}

namespace sofia::pipeline {

/// Where the profile's KeySet comes from.
enum class KeySource : std::uint8_t {
  kExample,   ///< the documented example keys for the cipher
  kSeed,      ///< KeySet::random() seeded with key_seed
  kExplicit,  ///< a caller-supplied KeySet (attack harnesses, tests)
};

struct DeviceProfile {
  crypto::CipherKind cipher = crypto::CipherKind::kRectangle80;
  KeySource key_source = KeySource::kExample;
  std::uint64_t key_seed = 0;          ///< used when key_source == kSeed
  crypto::KeySet explicit_keys{};      ///< used when key_source == kExplicit
  /// Program-version nonce override; < 0 keeps the KeySet's own omega.
  /// (The cross-version replay attack builds a second profile that differs
  /// only here.)
  int omega_override = -1;
  /// The paper's hardware datapath moves 64-bit blocks, i.e. per-pair CTR.
  crypto::Granularity granularity = crypto::Granularity::kPerPair;
  xform::BlockPolicy policy = xform::BlockPolicy::paper_default();
  /// Protection scheme both sides implement — a scheme::scheme_registry()
  /// key ("sofia-cbcmac" = the paper's MAC-then-encrypt, "sponge" =
  /// chained-state authenticated decryption, "null" = encrypt-only
  /// baseline). Stamped onto xform::Options and sim::SimConfig alike, so
  /// toolchain and device cannot disagree; validate with parse_scheme().
  std::string scheme = std::string(scheme::kDefaultScheme);
  /// Execution backend the device runs on — a sim::backend_registry() key
  /// ("cycle" = paper-faithful timing, "functional" = fast architectural
  /// interpreter with identical integrity semantics, "remote" = ship runs
  /// to a worker process). Pipeline routes every run through this name;
  /// validate with parse_backend().
  std::string backend = std::string(sim::kDefaultBackend);
  /// Remote endpoint used when backend == "remote": the worker launch
  /// command (sh -c; subprocess, ssh or container runner) and the far-side
  /// backend it executes. Unconfigured falls back to the SOFIA_WORKER /
  /// SOFIA_WORKER_BACKEND environment. Build with parse_worker().
  remote::RemoteSpec remote;

  // ---- factories ----------------------------------------------------------

  /// The §III hardware-faithful configuration: RECTANGLE-80, example keys,
  /// per-pair CTR, 8-word blocks with stores banned from inst1/inst2.
  static DeviceProfile paper_default() { return {}; }

  /// Example keys for a specific cipher.
  static DeviceProfile example(crypto::CipherKind kind);

  /// Keys derived deterministically from a seed (the CLI --key-seed flag).
  static DeviceProfile from_seed(crypto::CipherKind kind, std::uint64_t seed);

  /// Wrap caller-supplied key material (cipher follows keys.kind).
  static DeviceProfile with_keys(crypto::KeySet keys);

  /// Parse a CLI cipher name ("rectangle80" or "speck64", case-insensitive;
  /// the to_string() forms are accepted too) into a profile with that
  /// cipher and defaults everywhere else. Throws sofia::Error listing the
  /// accepted names for anything unknown.
  static DeviceProfile parse(std::string_view cipher_name);

  /// The cipher-name parse alone (shared by parse() and the CLI layer).
  static crypto::CipherKind parse_cipher(std::string_view name);

  /// Validate a backend name against sim::backend_registry() and return
  /// it (exact match — the same grammar the CLI --backend choice flags
  /// accept). Throws sofia::Error listing the registered backends for
  /// anything unknown.
  static std::string parse_backend(std::string_view name);

  /// Validate a protection-scheme name against scheme::scheme_registry()
  /// and return it (exact match — the same grammar the CLI --scheme choice
  /// flags accept). Throws sofia::Error listing the registered schemes for
  /// anything unknown.
  static std::string parse_scheme(std::string_view name);

  /// Parse a remote endpoint (the CLI --worker / --worker-backend pair)
  /// into a validated RemoteSpec: the command must be non-empty and the
  /// far-side backend, when given, must be a registered non-remote key
  /// (empty = unset; resolved against $SOFIA_WORKER_BACKEND, then
  /// "cycle"). Throws sofia::Error naming the offending part.
  static remote::RemoteSpec parse_worker(std::string_view command,
                                         std::string_view far_backend);

  // ---- derived material ---------------------------------------------------

  /// Materialize the KeySet (with any omega override applied).
  crypto::KeySet keys() const;

  /// Toolchain view: xform::Options carrying this profile's policy and
  /// granularity plus the caller's memory layout.
  xform::Options transform_options(assembler::MemoryLayout mem = {},
                                   bool elide_unreachable = false) const;

  /// Device view: stamp keys and policy onto a simulator configuration.
  sim::SimConfig& configure(sim::SimConfig& config) const;

  /// Stable machine-readable identity of every axis, e.g.
  /// "cipher=RECTANGLE-80 keys=example gran=per-pair policy=8/4
  /// scheme=sofia-cbcmac backend=cycle".
  std::string fingerprint() const;

  /// Emit the profile as a JSON object through the deterministic writer.
  void to_json(json::Writer& w) const;

  /// One-shot convenience: the profile as a compact JSON document.
  std::string to_json() const;
};

}  // namespace sofia::pipeline
