// Analytic hardware area/clock model (DESIGN.md E1/E8): the offline
// substitute for the paper's Virtex-6 synthesis runs. The model is
// component-based — a LEON3 baseline plus the SOFIA additions (the
// partially-unrolled cipher datapath, precomputed round-key registers, MAC
// datapath and fetch control) — with constants calibrated so the paper's
// two Table-I rows are reproduced exactly:
//
//   vanilla:  5,889 slices @ 92.3 MHz
//   SOFIA(2-cycle cipher): 5,889 + 13*100 + 362 = 7,551 slices,
//                          period = 13 * 1.4203 + 1.5 = 19.96 ns -> 50.1 MHz
//
// Everything else (other unroll factors) is a prediction of the calibrated
// model, used for the design-space exploration the paper lists as future
// work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sofia::hw {

struct HwEstimate {
  double slices = 0;
  double clock_mhz = 0;
  double period_ns = 0;
};

struct HwModel {
  // Calibration constants (see header comment).
  double vanilla_slices = 5889.0;
  double vanilla_period_ns = 1e3 / 92.3;  ///< 10.834 ns
  double round_slices = 100.0;         ///< one combinational RECTANGLE round
  double fixed_slices = 362.0;         ///< key regs + MAC datapath + control
  double round_delay_ns = (1e3 / 50.1 - 1.5) / 13.0;  ///< 1.4202 ns
  double cipher_overhead_ns = 1.5;     ///< mux/XOR/compare around the rounds
  int total_rounds = 26;               ///< RECTANGLE-80 ops per block op

  HwEstimate vanilla() const;

  /// SOFIA core with the cipher unrolled to complete in `unroll_cycles`
  /// cycles (the paper's design point is 2).
  HwEstimate sofia(int unroll_cycles) const;

  /// Combinational round instances needed for a given cycle count.
  int round_instances(int unroll_cycles) const;
};

/// One row of the design-space sweep (E8): hardware estimate plus the total
/// execution time for a workload given its simulated cycle count at this
/// cipher latency.
struct DesignPoint {
  int unroll_cycles = 0;
  HwEstimate hw;
  std::uint64_t cycles = 0;
  double time_ms = 0;
};

double execution_time_ms(std::uint64_t cycles, double clock_mhz);

/// Percent overhead of b relative to a.
double overhead_pct(double a, double b);

}  // namespace sofia::hw
