#include "hw/hw_model.hpp"

#include <algorithm>
#include <cmath>

namespace sofia::hw {

HwEstimate HwModel::vanilla() const {
  HwEstimate e;
  e.slices = vanilla_slices;
  e.period_ns = vanilla_period_ns;
  e.clock_mhz = 1e3 / e.period_ns;
  return e;
}

int HwModel::round_instances(int unroll_cycles) const {
  return (total_rounds + unroll_cycles - 1) / unroll_cycles;
}

HwEstimate HwModel::sofia(int unroll_cycles) const {
  const int instances = round_instances(unroll_cycles);
  HwEstimate e;
  e.slices = vanilla_slices + instances * round_slices + fixed_slices;
  const double cipher_path = instances * round_delay_ns + cipher_overhead_ns;
  e.period_ns = std::max(vanilla_period_ns, cipher_path);
  e.clock_mhz = 1e3 / e.period_ns;
  return e;
}

double execution_time_ms(std::uint64_t cycles, double clock_mhz) {
  return static_cast<double>(cycles) / (clock_mhz * 1e3);
}

double overhead_pct(double a, double b) { return (b / a - 1.0) * 100.0; }

}  // namespace sofia::hw
