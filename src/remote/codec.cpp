#include "remote/codec.hpp"

#include "support/error.hpp"

namespace sofia::remote {

void codec_fail(const char* what, const std::string& detail) {
  throw Error("remote-wire: " + std::string(what) + ": " + detail);
}

void put_key(ByteWriter& w, const crypto::CipherKey& key) {
  for (const std::uint8_t b : key) w.u8(b);
}

crypto::CipherKey get_key(ByteReader& r, const char* field) {
  crypto::CipherKey key{};
  for (auto& b : key) b = r.u8(field);
  return key;
}

void put_config(ByteWriter& w, const sim::SimConfig& c) {
  w.u32(c.fetch_queue);
  w.u32(c.redirect_bubble);
  w.u32(c.fetch_words_per_cycle);
  w.u32(c.icache.size_bytes);
  w.u32(c.icache.line_bytes);
  w.u32(c.icache.miss_penalty);
  w.u32(c.load_latency);
  w.u32(c.mul_latency);
  w.u8(static_cast<std::uint8_t>(c.keys.kind));
  put_key(w, c.keys.k1);
  put_key(w, c.keys.k2);
  put_key(w, c.keys.k3);
  w.u16(c.keys.omega);
  w.u32(c.policy.words_per_block);
  w.u32(c.policy.store_min_word);
  w.u32(c.cipher.latency);
  w.u8(c.cipher.alternate ? 1 : 0);
  w.u8(c.cipher.pipelined ? 1 : 0);
  w.u32(c.store_gate_headstart);
  w.u8(c.fault.enabled ? 1 : 0);
  w.u64(c.fault.fetch_index);
  w.u32(static_cast<std::uint32_t>(c.fault.bit));
  w.u64(c.max_cycles);
  w.u8(c.collect_trace ? 1 : 0);
  w.u64(static_cast<std::uint64_t>(c.max_trace));
  // v2: the protection scheme the device must run (named, not an index, so
  // worker and coordinator registries may grow independently).
  w.str(c.scheme);
}

sim::SimConfig get_config(ByteReader& r) {
  sim::SimConfig c;
  c.fetch_queue = r.u32("config.fetch_queue");
  c.redirect_bubble = r.u32("config.redirect_bubble");
  c.fetch_words_per_cycle = r.u32("config.fetch_words_per_cycle");
  c.icache.size_bytes = r.u32("config.icache.size_bytes");
  c.icache.line_bytes = r.u32("config.icache.line_bytes");
  c.icache.miss_penalty = r.u32("config.icache.miss_penalty");
  c.load_latency = r.u32("config.load_latency");
  c.mul_latency = r.u32("config.mul_latency");
  const std::uint8_t kind = r.u8("config.keys.kind");
  if (kind > static_cast<std::uint8_t>(crypto::CipherKind::kSpeck64_128))
    r.fail("config.keys.kind", "unknown cipher kind " + std::to_string(kind));
  c.keys.kind = static_cast<crypto::CipherKind>(kind);
  c.keys.k1 = get_key(r, "config.keys.k1");
  c.keys.k2 = get_key(r, "config.keys.k2");
  c.keys.k3 = get_key(r, "config.keys.k3");
  c.keys.omega = r.u16("config.keys.omega");
  c.policy.words_per_block = r.u32("config.policy.words_per_block");
  c.policy.store_min_word = r.u32("config.policy.store_min_word");
  c.cipher.latency = r.u32("config.cipher.latency");
  c.cipher.alternate = r.boolean("config.cipher.alternate");
  c.cipher.pipelined = r.boolean("config.cipher.pipelined");
  c.store_gate_headstart = r.u32("config.store_gate_headstart");
  c.fault.enabled = r.boolean("config.fault.enabled");
  c.fault.fetch_index = r.u64("config.fault.fetch_index");
  c.fault.bit = r.u32("config.fault.bit");
  c.max_cycles = r.u64("config.max_cycles");
  c.collect_trace = r.boolean("config.collect_trace");
  c.max_trace = static_cast<std::size_t>(r.u64("config.max_trace"));
  c.scheme = r.str("config.scheme");
  return c;
}

std::vector<std::uint8_t> encode_config(const sim::SimConfig& c) {
  ByteWriter w;
  put_config(w, c);
  return w.take();
}

}  // namespace sofia::remote
