#include "remote/wire.hpp"

#include <cerrno>
#include <cstring>

#include "assembler/image_io.hpp"
#include "support/error.hpp"

namespace sofia::remote {

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'F', 'R', 'M'};

[[noreturn]] void wire_fail(const char* what, const std::string& detail) {
  throw Error("remote-wire: " + std::string(what) + ": " + detail);
}

// ---- byte writer ----------------------------------------------------------

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

// ---- byte reader ----------------------------------------------------------

/// Sequential decoder whose every read names the message and field it was
/// parsing, so a truncated or corrupt payload produces "remote-wire:
/// run-request: truncated reading field 'config.max_cycles'" rather than a
/// zeroed struct.
class ByteReader {
 public:
  ByteReader(const std::vector<std::uint8_t>& bytes, const char* what)
      : bytes_(bytes), what_(what) {}

  std::uint8_t u8(const char* field) {
    need(1, field);
    return bytes_[pos_++];
  }
  std::uint16_t u16(const char* field) {
    need(2, field);
    const std::uint16_t v = static_cast<std::uint16_t>(
        bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32(const char* field) {
    need(4, field);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | bytes_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }
  std::uint64_t u64(const char* field) {
    const std::uint64_t lo = u32(field);
    return lo | (static_cast<std::uint64_t>(u32(field)) << 32);
  }
  std::int32_t i32(const char* field) {
    return static_cast<std::int32_t>(u32(field));
  }
  bool boolean(const char* field) {
    const std::uint8_t v = u8(field);
    if (v > 1)
      fail(field, "invalid boolean value " + std::to_string(v));
    return v != 0;
  }
  std::string str(const char* field) {
    const std::uint32_t n = length(field);
    std::string s;
    if (n != 0)
      s.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> bytes(const char* field) {
    const std::uint32_t n = length(field);
    std::vector<std::uint8_t> b(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }
  /// A count of fixed-size records; rejected when the claimed total exceeds
  /// the bytes actually present (oversized-length defense).
  std::uint32_t count(const char* field, std::size_t record_size) {
    const std::uint32_t n = u32(field);
    if (record_size != 0 && n > remaining() / record_size)
      fail(field, "count " + std::to_string(n) + " exceeds the " +
                      std::to_string(remaining()) + " remaining payload bytes");
    return n;
  }
  void expect_end() {
    if (pos_ != bytes_.size())
      wire_fail(what_, std::to_string(bytes_.size() - pos_) +
                           " trailing payload byte(s) after the last field");
  }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  [[noreturn]] void fail(const char* field, const std::string& detail) {
    wire_fail(what_, "field '" + std::string(field) + "': " + detail);
  }

 private:
  void need(std::size_t n, const char* field) {
    if (remaining() < n)
      wire_fail(what_, "truncated reading field '" + std::string(field) +
                           "' (" + std::to_string(remaining()) + " of " +
                           std::to_string(n) + " byte(s) left)");
  }
  std::uint32_t length(const char* field) {
    const std::uint32_t n = u32(field);
    if (n > remaining())
      fail(field, "length " + std::to_string(n) + " exceeds the " +
                      std::to_string(remaining()) + " remaining payload bytes");
    return n;
  }

  const std::vector<std::uint8_t>& bytes_;
  const char* what_;
  std::size_t pos_ = 0;
};

// ---- field-level codecs ---------------------------------------------------

void put_key(ByteWriter& w, const crypto::CipherKey& key) {
  for (const std::uint8_t b : key) w.u8(b);
}

crypto::CipherKey get_key(ByteReader& r, const char* field) {
  crypto::CipherKey key{};
  for (auto& b : key) b = r.u8(field);
  return key;
}

void put_config(ByteWriter& w, const sim::SimConfig& c) {
  w.u32(c.fetch_queue);
  w.u32(c.redirect_bubble);
  w.u32(c.fetch_words_per_cycle);
  w.u32(c.icache.size_bytes);
  w.u32(c.icache.line_bytes);
  w.u32(c.icache.miss_penalty);
  w.u32(c.load_latency);
  w.u32(c.mul_latency);
  w.u8(static_cast<std::uint8_t>(c.keys.kind));
  put_key(w, c.keys.k1);
  put_key(w, c.keys.k2);
  put_key(w, c.keys.k3);
  w.u16(c.keys.omega);
  w.u32(c.policy.words_per_block);
  w.u32(c.policy.store_min_word);
  w.u32(c.cipher.latency);
  w.u8(c.cipher.alternate ? 1 : 0);
  w.u8(c.cipher.pipelined ? 1 : 0);
  w.u32(c.store_gate_headstart);
  w.u8(c.fault.enabled ? 1 : 0);
  w.u64(c.fault.fetch_index);
  w.u32(static_cast<std::uint32_t>(c.fault.bit));
  w.u64(c.max_cycles);
  w.u8(c.collect_trace ? 1 : 0);
  w.u64(static_cast<std::uint64_t>(c.max_trace));
  // v2: the protection scheme the device must run (named, not an index, so
  // worker and coordinator registries may grow independently).
  w.str(c.scheme);
}

sim::SimConfig get_config(ByteReader& r) {
  sim::SimConfig c;
  c.fetch_queue = r.u32("config.fetch_queue");
  c.redirect_bubble = r.u32("config.redirect_bubble");
  c.fetch_words_per_cycle = r.u32("config.fetch_words_per_cycle");
  c.icache.size_bytes = r.u32("config.icache.size_bytes");
  c.icache.line_bytes = r.u32("config.icache.line_bytes");
  c.icache.miss_penalty = r.u32("config.icache.miss_penalty");
  c.load_latency = r.u32("config.load_latency");
  c.mul_latency = r.u32("config.mul_latency");
  const std::uint8_t kind = r.u8("config.keys.kind");
  if (kind > static_cast<std::uint8_t>(crypto::CipherKind::kSpeck64_128))
    r.fail("config.keys.kind", "unknown cipher kind " + std::to_string(kind));
  c.keys.kind = static_cast<crypto::CipherKind>(kind);
  c.keys.k1 = get_key(r, "config.keys.k1");
  c.keys.k2 = get_key(r, "config.keys.k2");
  c.keys.k3 = get_key(r, "config.keys.k3");
  c.keys.omega = r.u16("config.keys.omega");
  c.policy.words_per_block = r.u32("config.policy.words_per_block");
  c.policy.store_min_word = r.u32("config.policy.store_min_word");
  c.cipher.latency = r.u32("config.cipher.latency");
  c.cipher.alternate = r.boolean("config.cipher.alternate");
  c.cipher.pipelined = r.boolean("config.cipher.pipelined");
  c.store_gate_headstart = r.u32("config.store_gate_headstart");
  c.fault.enabled = r.boolean("config.fault.enabled");
  c.fault.fetch_index = r.u64("config.fault.fetch_index");
  c.fault.bit = r.u32("config.fault.bit");
  c.max_cycles = r.u64("config.max_cycles");
  c.collect_trace = r.boolean("config.collect_trace");
  c.max_trace = static_cast<std::size_t>(r.u64("config.max_trace"));
  c.scheme = r.str("config.scheme");
  return c;
}

void put_stats(ByteWriter& w, const sim::SimStats& s) {
  w.u64(s.cycles);
  w.u64(s.insts);
  w.u64(s.nops);
  w.u64(s.loads);
  w.u64(s.stores);
  w.u64(s.branches);
  w.u64(s.taken);
  w.u64(s.icache_hits);
  w.u64(s.icache_misses);
  w.u64(s.fetch_words);
  w.u64(s.mac_words);
  w.u64(s.ctr_ops);
  w.u64(s.cbc_ops);
  w.u64(s.blocks_fetched);
  w.u64(s.mac_verifications);
  w.u64(s.store_gate_stalls);
  w.u64(s.queue_empty_cycles);
  w.u64(s.exec_stall_cycles);
}

sim::SimStats get_stats(ByteReader& r) {
  sim::SimStats s;
  s.cycles = r.u64("result.stats.cycles");
  s.insts = r.u64("result.stats.insts");
  s.nops = r.u64("result.stats.nops");
  s.loads = r.u64("result.stats.loads");
  s.stores = r.u64("result.stats.stores");
  s.branches = r.u64("result.stats.branches");
  s.taken = r.u64("result.stats.taken");
  s.icache_hits = r.u64("result.stats.icache_hits");
  s.icache_misses = r.u64("result.stats.icache_misses");
  s.fetch_words = r.u64("result.stats.fetch_words");
  s.mac_words = r.u64("result.stats.mac_words");
  s.ctr_ops = r.u64("result.stats.ctr_ops");
  s.cbc_ops = r.u64("result.stats.cbc_ops");
  s.blocks_fetched = r.u64("result.stats.blocks_fetched");
  s.mac_verifications = r.u64("result.stats.mac_verifications");
  s.store_gate_stalls = r.u64("result.stats.store_gate_stalls");
  s.queue_empty_cycles = r.u64("result.stats.queue_empty_cycles");
  s.exec_stall_cycles = r.u64("result.stats.exec_stall_cycles");
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxPayload)
    wire_fail("frame", "payload of " + std::to_string(frame.payload.size()) +
                           " bytes exceeds the " + std::to_string(kMaxPayload) +
                           "-byte limit");
  ByteWriter w;
  for (const std::uint8_t m : kMagic) w.u8(m);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(frame.type));
  w.u32(static_cast<std::uint32_t>(frame.payload.size()));
  auto out = w.take();
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  std::uint32_t sum = 0;
  for (const std::uint8_t b : frame.payload) sum += b;
  ByteWriter tail;
  tail.u32(sum);
  const auto tail_bytes = tail.take();
  out.insert(out.end(), tail_bytes.begin(), tail_bytes.end());
  return out;
}

namespace {

/// Validate the fixed 12-byte header; returns (type, payload length).
std::pair<MessageType, std::uint32_t> decode_header(
    const std::uint8_t* header) {
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0)
    wire_fail("frame", "bad magic (not a SOFIA wire frame)");
  const std::uint16_t version = static_cast<std::uint16_t>(
      header[4] | (static_cast<std::uint16_t>(header[5]) << 8));
  if (version != kProtocolVersion)
    wire_fail("frame", "unsupported protocol version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kProtocolVersion) + ")");
  const std::uint16_t type = static_cast<std::uint16_t>(
      header[6] | (static_cast<std::uint16_t>(header[7]) << 8));
  if (type < static_cast<std::uint16_t>(MessageType::kHelloRequest) ||
      type > static_cast<std::uint16_t>(MessageType::kErrorReply))
    wire_fail("frame", "unknown message type " + std::to_string(type));
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | header[8 + i];
  if (len > kMaxPayload)
    wire_fail("frame", "payload length " + std::to_string(len) +
                           " exceeds the " + std::to_string(kMaxPayload) +
                           "-byte limit");
  return {static_cast<MessageType>(type), len};
}

std::uint32_t payload_sum(const std::vector<std::uint8_t>& payload) {
  std::uint32_t sum = 0;
  for (const std::uint8_t b : payload) sum += b;
  return sum;
}

}  // namespace

Frame decode_frame(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kFrameHeaderSize)
    wire_fail("frame", "truncated header (" + std::to_string(bytes.size()) +
                           " of " + std::to_string(kFrameHeaderSize) +
                           " byte(s))");
  const auto [type, len] = decode_header(bytes.data());
  const std::size_t want = kFrameHeaderSize + len + 4;
  if (bytes.size() < want)
    wire_fail("frame", "truncated payload (" + std::to_string(bytes.size()) +
                           " of " + std::to_string(want) + " byte(s))");
  if (bytes.size() > want)
    wire_fail("frame", std::to_string(bytes.size() - want) +
                           " trailing byte(s) after the frame");
  Frame frame;
  frame.type = type;
  frame.payload.assign(bytes.begin() + kFrameHeaderSize,
                       bytes.begin() + kFrameHeaderSize + len);
  std::uint32_t stored = 0;
  for (int i = 3; i >= 0; --i)
    stored = (stored << 8) | bytes[want - 4 + static_cast<std::size_t>(i)];
  if (stored != payload_sum(frame.payload))
    wire_fail("frame", "payload checksum mismatch");
  return frame;
}

void write_frame(std::FILE* out, const Frame& frame) {
  const auto bytes = encode_frame(frame);
  errno = 0;
  if (std::fwrite(bytes.data(), 1, bytes.size(), out) != bytes.size() ||
      std::fflush(out) != 0)
    wire_fail("frame", std::string("write failed") +
                           (errno != 0 ? std::string(": ") + std::strerror(errno)
                                       : std::string()));
}

bool read_frame(std::FILE* in, Frame& out) {
  std::uint8_t header[kFrameHeaderSize];
  const std::size_t got = std::fread(header, 1, sizeof header, in);
  if (got == 0 && std::feof(in)) return false;  // clean end-of-stream
  if (got != sizeof header)
    wire_fail("frame", "stream ended inside the frame header (" +
                           std::to_string(got) + " of " +
                           std::to_string(sizeof header) +
                           " byte(s)) — the peer died mid-frame");
  const auto [type, len] = decode_header(header);
  std::vector<std::uint8_t> payload(len);
  if (len != 0) {
    const std::size_t n = std::fread(payload.data(), 1, len, in);
    if (n != len)
      wire_fail("frame", "stream ended inside the frame payload (" +
                             std::to_string(n) + " of " + std::to_string(len) +
                             " byte(s)) — the peer died mid-frame");
  }
  std::uint8_t tail[4];
  if (std::fread(tail, 1, sizeof tail, in) != sizeof tail)
    wire_fail("frame", "stream ended before the frame checksum");
  std::uint32_t stored = 0;
  for (int i = 3; i >= 0; --i) stored = (stored << 8) | tail[i];
  if (stored != payload_sum(payload))
    wire_fail("frame", "payload checksum mismatch");
  out.type = type;
  out.payload = std::move(payload);
  return true;
}

// ---------------------------------------------------------------------------
// Message payload codecs
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_hello_request(const HelloRequest& msg) {
  ByteWriter w;
  w.str(msg.backend);
  return w.take();
}

HelloRequest decode_hello_request(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload, "hello-request");
  HelloRequest msg;
  msg.backend = r.str("backend");
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_hello_reply(const HelloReply& msg) {
  ByteWriter w;
  w.str(msg.name);
  w.str(msg.description);
  w.u8(msg.caps.cycle_accurate ? 1 : 0);
  w.u8(msg.caps.models_microarchitecture ? 1 : 0);
  return w.take();
}

HelloReply decode_hello_reply(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload, "hello-reply");
  HelloReply msg;
  msg.name = r.str("name");
  msg.description = r.str("description");
  msg.caps.cycle_accurate = r.boolean("caps.cycle_accurate");
  msg.caps.models_microarchitecture = r.boolean("caps.models_microarchitecture");
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_run_request(const RunRequest& msg) {
  return encode_run_request(msg.backend, msg.image, msg.config);
}

std::vector<std::uint8_t> encode_run_request(std::string_view backend,
                                             const assembler::LoadImage& image,
                                             const sim::SimConfig& config) {
  ByteWriter w;
  w.str(std::string(backend));
  w.bytes(assembler::serialize_image(image));
  put_config(w, config);
  return w.take();
}

RunRequest decode_run_request(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload, "run-request");
  RunRequest msg;
  msg.backend = r.str("backend");
  const auto image_bytes = r.bytes("image");
  try {
    msg.image = assembler::deserialize_image(image_bytes);
  } catch (const Error& e) {
    r.fail("image", e.what());
  }
  msg.config = get_config(r);
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_run_reply(const RunReply& msg) {
  const auto& res = msg.result;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(res.status));
  w.i32(res.exit_code);
  w.u8(static_cast<std::uint8_t>(res.reset.cause));
  w.u64(res.reset.cycle);
  w.u32(res.reset.pc);
  w.str(res.fault);
  w.str(res.output);
  put_stats(w, res.stats);
  w.u32(static_cast<std::uint32_t>(res.trace.size()));
  for (const auto& t : res.trace) {
    w.u64(t.cycle);
    w.u32(t.pc);
    w.u32(t.word);
  }
  return w.take();
}

RunReply decode_run_reply(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload, "run-reply");
  RunReply msg;
  auto& res = msg.result;
  const std::uint8_t status = r.u8("result.status");
  if (status > static_cast<std::uint8_t>(sim::RunResult::Status::kMaxCycles))
    r.fail("result.status", "unknown status " + std::to_string(status));
  res.status = static_cast<sim::RunResult::Status>(status);
  res.exit_code = r.i32("result.exit_code");
  const std::uint8_t cause = r.u8("result.reset.cause");
  if (cause > static_cast<std::uint8_t>(sim::ResetCause::kStateCorruption))
    r.fail("result.reset.cause", "unknown reset cause " + std::to_string(cause));
  res.reset.cause = static_cast<sim::ResetCause>(cause);
  res.reset.cycle = r.u64("result.reset.cycle");
  res.reset.pc = r.u32("result.reset.pc");
  res.fault = r.str("result.fault");
  res.output = r.str("result.output");
  res.stats = get_stats(r);
  const std::uint32_t n = r.count("result.trace", 16);
  res.trace.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sim::TraceEntry t;
    t.cycle = r.u64("result.trace.cycle");
    t.pc = r.u32("result.trace.pc");
    t.word = r.u32("result.trace.word");
    res.trace.push_back(t);
  }
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_error_reply(const ErrorReply& msg) {
  ByteWriter w;
  w.str(msg.message);
  return w.take();
}

ErrorReply decode_error_reply(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload, "error-reply");
  ErrorReply msg;
  msg.message = r.str("message");
  r.expect_end();
  return msg;
}

}  // namespace sofia::remote
