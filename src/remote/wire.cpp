#include "remote/wire.hpp"

#include <cerrno>
#include <cstring>

#include "assembler/image_io.hpp"
#include "remote/codec.hpp"
#include "support/error.hpp"

namespace sofia::remote {

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'F', 'R', 'M'};

[[noreturn]] void wire_fail(const char* what, const std::string& detail) {
  codec_fail(what, detail);
}

// ByteWriter / ByteReader and the LoadImage/SimConfig canonical codecs live
// in remote/codec.hpp — shared with the result cache, which keys entries by
// a digest over the exact bytes a run-request would carry.

void put_stats(ByteWriter& w, const sim::SimStats& s) {
  w.u64(s.cycles);
  w.u64(s.insts);
  w.u64(s.nops);
  w.u64(s.loads);
  w.u64(s.stores);
  w.u64(s.branches);
  w.u64(s.taken);
  w.u64(s.icache_hits);
  w.u64(s.icache_misses);
  w.u64(s.fetch_words);
  w.u64(s.mac_words);
  w.u64(s.ctr_ops);
  w.u64(s.cbc_ops);
  w.u64(s.blocks_fetched);
  w.u64(s.mac_verifications);
  w.u64(s.store_gate_stalls);
  w.u64(s.queue_empty_cycles);
  w.u64(s.exec_stall_cycles);
}

sim::SimStats get_stats(ByteReader& r) {
  sim::SimStats s;
  s.cycles = r.u64("result.stats.cycles");
  s.insts = r.u64("result.stats.insts");
  s.nops = r.u64("result.stats.nops");
  s.loads = r.u64("result.stats.loads");
  s.stores = r.u64("result.stats.stores");
  s.branches = r.u64("result.stats.branches");
  s.taken = r.u64("result.stats.taken");
  s.icache_hits = r.u64("result.stats.icache_hits");
  s.icache_misses = r.u64("result.stats.icache_misses");
  s.fetch_words = r.u64("result.stats.fetch_words");
  s.mac_words = r.u64("result.stats.mac_words");
  s.ctr_ops = r.u64("result.stats.ctr_ops");
  s.cbc_ops = r.u64("result.stats.cbc_ops");
  s.blocks_fetched = r.u64("result.stats.blocks_fetched");
  s.mac_verifications = r.u64("result.stats.mac_verifications");
  s.store_gate_stalls = r.u64("result.stats.store_gate_stalls");
  s.queue_empty_cycles = r.u64("result.stats.queue_empty_cycles");
  s.exec_stall_cycles = r.u64("result.stats.exec_stall_cycles");
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxPayload)
    wire_fail("frame", "payload of " + std::to_string(frame.payload.size()) +
                           " bytes exceeds the " + std::to_string(kMaxPayload) +
                           "-byte limit");
  ByteWriter w;
  for (const std::uint8_t m : kMagic) w.u8(m);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(frame.type));
  w.u32(static_cast<std::uint32_t>(frame.payload.size()));
  auto out = w.take();
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  std::uint32_t sum = 0;
  for (const std::uint8_t b : frame.payload) sum += b;
  ByteWriter tail;
  tail.u32(sum);
  const auto tail_bytes = tail.take();
  out.insert(out.end(), tail_bytes.begin(), tail_bytes.end());
  return out;
}

namespace {

/// Validate the fixed 12-byte header; returns (type, payload length).
std::pair<MessageType, std::uint32_t> decode_header(
    const std::uint8_t* header) {
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0)
    wire_fail("frame", "bad magic (not a SOFIA wire frame)");
  const std::uint16_t version = static_cast<std::uint16_t>(
      header[4] | (static_cast<std::uint16_t>(header[5]) << 8));
  if (version != kProtocolVersion)
    wire_fail("frame", "unsupported protocol version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kProtocolVersion) + ")");
  const std::uint16_t type = static_cast<std::uint16_t>(
      header[6] | (static_cast<std::uint16_t>(header[7]) << 8));
  if (type < static_cast<std::uint16_t>(MessageType::kHelloRequest) ||
      type > static_cast<std::uint16_t>(MessageType::kErrorReply))
    wire_fail("frame", "unknown message type " + std::to_string(type));
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | header[8 + i];
  if (len > kMaxPayload)
    wire_fail("frame", "payload length " + std::to_string(len) +
                           " exceeds the " + std::to_string(kMaxPayload) +
                           "-byte limit");
  return {static_cast<MessageType>(type), len};
}

std::uint32_t payload_sum(const std::vector<std::uint8_t>& payload) {
  std::uint32_t sum = 0;
  for (const std::uint8_t b : payload) sum += b;
  return sum;
}

}  // namespace

Frame decode_frame(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kFrameHeaderSize)
    wire_fail("frame", "truncated header (" + std::to_string(bytes.size()) +
                           " of " + std::to_string(kFrameHeaderSize) +
                           " byte(s))");
  const auto [type, len] = decode_header(bytes.data());
  const std::size_t want = kFrameHeaderSize + len + 4;
  if (bytes.size() < want)
    wire_fail("frame", "truncated payload (" + std::to_string(bytes.size()) +
                           " of " + std::to_string(want) + " byte(s))");
  if (bytes.size() > want)
    wire_fail("frame", std::to_string(bytes.size() - want) +
                           " trailing byte(s) after the frame");
  Frame frame;
  frame.type = type;
  frame.payload.assign(bytes.begin() + kFrameHeaderSize,
                       bytes.begin() + kFrameHeaderSize + len);
  std::uint32_t stored = 0;
  for (int i = 3; i >= 0; --i)
    stored = (stored << 8) | bytes[want - 4 + static_cast<std::size_t>(i)];
  if (stored != payload_sum(frame.payload))
    wire_fail("frame", "payload checksum mismatch");
  return frame;
}

void write_frame(std::FILE* out, const Frame& frame) {
  const auto bytes = encode_frame(frame);
  errno = 0;
  if (std::fwrite(bytes.data(), 1, bytes.size(), out) != bytes.size() ||
      std::fflush(out) != 0)
    wire_fail("frame", std::string("write failed") +
                           (errno != 0 ? std::string(": ") + std::strerror(errno)
                                       : std::string()));
}

bool read_frame(std::FILE* in, Frame& out) {
  std::uint8_t header[kFrameHeaderSize];
  const std::size_t got = std::fread(header, 1, sizeof header, in);
  if (got == 0 && std::feof(in)) return false;  // clean end-of-stream
  if (got != sizeof header)
    wire_fail("frame", "stream ended inside the frame header (" +
                           std::to_string(got) + " of " +
                           std::to_string(sizeof header) +
                           " byte(s)) — the peer died mid-frame");
  const auto [type, len] = decode_header(header);
  std::vector<std::uint8_t> payload(len);
  if (len != 0) {
    const std::size_t n = std::fread(payload.data(), 1, len, in);
    if (n != len)
      wire_fail("frame", "stream ended inside the frame payload (" +
                             std::to_string(n) + " of " + std::to_string(len) +
                             " byte(s)) — the peer died mid-frame");
  }
  std::uint8_t tail[4];
  if (std::fread(tail, 1, sizeof tail, in) != sizeof tail)
    wire_fail("frame", "stream ended before the frame checksum");
  std::uint32_t stored = 0;
  for (int i = 3; i >= 0; --i) stored = (stored << 8) | tail[i];
  if (stored != payload_sum(payload))
    wire_fail("frame", "payload checksum mismatch");
  out.type = type;
  out.payload = std::move(payload);
  return true;
}

// ---------------------------------------------------------------------------
// Message payload codecs
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_hello_request(const HelloRequest& msg) {
  ByteWriter w;
  w.str(msg.backend);
  return w.take();
}

HelloRequest decode_hello_request(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload, "hello-request");
  HelloRequest msg;
  msg.backend = r.str("backend");
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_hello_reply(const HelloReply& msg) {
  ByteWriter w;
  w.str(msg.name);
  w.str(msg.description);
  w.u8(msg.caps.cycle_accurate ? 1 : 0);
  w.u8(msg.caps.models_microarchitecture ? 1 : 0);
  return w.take();
}

HelloReply decode_hello_reply(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload, "hello-reply");
  HelloReply msg;
  msg.name = r.str("name");
  msg.description = r.str("description");
  msg.caps.cycle_accurate = r.boolean("caps.cycle_accurate");
  msg.caps.models_microarchitecture = r.boolean("caps.models_microarchitecture");
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_run_request(const RunRequest& msg) {
  return encode_run_request(msg.backend, msg.image, msg.config);
}

std::vector<std::uint8_t> encode_run_request(std::string_view backend,
                                             const assembler::LoadImage& image,
                                             const sim::SimConfig& config) {
  ByteWriter w;
  w.str(std::string(backend));
  w.bytes(assembler::serialize_image(image));
  put_config(w, config);
  return w.take();
}

RunRequest decode_run_request(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload, "run-request");
  RunRequest msg;
  msg.backend = r.str("backend");
  const auto image_bytes = r.bytes("image");
  try {
    msg.image = assembler::deserialize_image(image_bytes);
  } catch (const Error& e) {
    r.fail("image", e.what());
  }
  msg.config = get_config(r);
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_run_reply(const RunReply& msg) {
  const auto& res = msg.result;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(res.status));
  w.i32(res.exit_code);
  w.u8(static_cast<std::uint8_t>(res.reset.cause));
  w.u64(res.reset.cycle);
  w.u32(res.reset.pc);
  w.str(res.fault);
  w.str(res.output);
  put_stats(w, res.stats);
  w.u32(static_cast<std::uint32_t>(res.trace.size()));
  for (const auto& t : res.trace) {
    w.u64(t.cycle);
    w.u32(t.pc);
    w.u32(t.word);
  }
  return w.take();
}

RunReply decode_run_reply(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload, "run-reply");
  RunReply msg;
  auto& res = msg.result;
  const std::uint8_t status = r.u8("result.status");
  if (status > static_cast<std::uint8_t>(sim::RunResult::Status::kMaxCycles))
    r.fail("result.status", "unknown status " + std::to_string(status));
  res.status = static_cast<sim::RunResult::Status>(status);
  res.exit_code = r.i32("result.exit_code");
  const std::uint8_t cause = r.u8("result.reset.cause");
  if (cause > static_cast<std::uint8_t>(sim::ResetCause::kTargetSetViolation))
    r.fail("result.reset.cause", "unknown reset cause " + std::to_string(cause));
  res.reset.cause = static_cast<sim::ResetCause>(cause);
  res.reset.cycle = r.u64("result.reset.cycle");
  res.reset.pc = r.u32("result.reset.pc");
  res.fault = r.str("result.fault");
  res.output = r.str("result.output");
  res.stats = get_stats(r);
  const std::uint32_t n = r.count("result.trace", 16);
  res.trace.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sim::TraceEntry t;
    t.cycle = r.u64("result.trace.cycle");
    t.pc = r.u32("result.trace.pc");
    t.word = r.u32("result.trace.word");
    res.trace.push_back(t);
  }
  r.expect_end();
  return msg;
}

std::vector<std::uint8_t> encode_error_reply(const ErrorReply& msg) {
  ByteWriter w;
  w.str(msg.message);
  return w.take();
}

ErrorReply decode_error_reply(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload, "error-reply");
  ErrorReply msg;
  msg.message = r.str("message");
  r.expect_end();
  return msg;
}

}  // namespace sofia::remote
