// The worker side of the remote-execution protocol: a request→execute→reply
// loop over stdio streams. tools/sofia_worker is a thin main() around
// serve(); keeping the loop in the library lets tests drive it over pipe
// pairs without spawning a binary.
#pragma once

#include <cstdio>

namespace sofia::remote {

/// Serve frames from `in` until end-of-stream: hello requests describe a
/// local backend, run requests execute (image, config) on one. Every
/// worker-side failure — unknown or recursive backend, malformed payload,
/// simulator error — is answered with an ErrorReply naming the problem; the
/// loop only stops on EOF (returns 0) or an unrecoverable stream error
/// (returns 1, after attempting a final ErrorReply).
int serve(std::FILE* in, std::FILE* out);

}  // namespace sofia::remote
