// Canonical byte codecs shared by the wire protocol and the result cache.
//
// The SimConfig encoding used to live as a private detail of wire.cpp; the
// content-addressed cache (src/cache/) keys entries by a digest over the
// very same bytes the coordinator would ship to a worker, so the encoder is
// hoisted here — one serialization, no drift between cache keys and the
// wire. LoadImage already has its canonical form in
// assembler::serialize_image; together these two are the complete "job
// input" byte encoding.
//
// Everything is little-endian with fixed field order; decoders throw
// sofia::Error naming the offending field (see wire.hpp for the contract).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/cipher_key.hpp"
#include "sim/config.hpp"

namespace sofia::remote {

/// Throw the uniform wire diagnostic ("remote-wire: <what>: <detail>").
[[noreturn]] void codec_fail(const char* what, const std::string& detail);

// ---- byte writer ----------------------------------------------------------

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

// ---- byte reader ----------------------------------------------------------

/// Sequential decoder whose every read names the message and field it was
/// parsing, so a truncated or corrupt payload produces "remote-wire:
/// run-request: truncated reading field 'config.max_cycles'" rather than a
/// zeroed struct.
class ByteReader {
 public:
  ByteReader(const std::vector<std::uint8_t>& bytes, const char* what)
      : bytes_(bytes), what_(what) {}

  std::uint8_t u8(const char* field) {
    need(1, field);
    return bytes_[pos_++];
  }
  std::uint16_t u16(const char* field) {
    need(2, field);
    const std::uint16_t v = static_cast<std::uint16_t>(
        bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32(const char* field) {
    need(4, field);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
      v = (v << 8) | bytes_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }
  std::uint64_t u64(const char* field) {
    const std::uint64_t lo = u32(field);
    return lo | (static_cast<std::uint64_t>(u32(field)) << 32);
  }
  std::int32_t i32(const char* field) {
    return static_cast<std::int32_t>(u32(field));
  }
  bool boolean(const char* field) {
    const std::uint8_t v = u8(field);
    if (v > 1) fail(field, "invalid boolean value " + std::to_string(v));
    return v != 0;
  }
  std::string str(const char* field) {
    const std::uint32_t n = length(field);
    std::string s;
    if (n != 0)
      s.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> bytes(const char* field) {
    const std::uint32_t n = length(field);
    std::vector<std::uint8_t> b(
        bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
        bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }
  /// A count of fixed-size records; rejected when the claimed total exceeds
  /// the bytes actually present (oversized-length defense).
  std::uint32_t count(const char* field, std::size_t record_size) {
    const std::uint32_t n = u32(field);
    if (record_size != 0 && n > remaining() / record_size)
      fail(field, "count " + std::to_string(n) + " exceeds the " +
                      std::to_string(remaining()) + " remaining payload bytes");
    return n;
  }
  void expect_end() {
    if (pos_ != bytes_.size())
      codec_fail(what_, std::to_string(bytes_.size() - pos_) +
                            " trailing payload byte(s) after the last field");
  }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  [[noreturn]] void fail(const char* field, const std::string& detail) {
    codec_fail(what_, "field '" + std::string(field) + "': " + detail);
  }

 private:
  void need(std::size_t n, const char* field) {
    if (remaining() < n)
      codec_fail(what_, "truncated reading field '" + std::string(field) +
                            "' (" + std::to_string(remaining()) + " of " +
                            std::to_string(n) + " byte(s) left)");
  }
  std::uint32_t length(const char* field) {
    const std::uint32_t n = u32(field);
    if (n > remaining())
      fail(field, "length " + std::to_string(n) + " exceeds the " +
                      std::to_string(remaining()) + " remaining payload bytes");
    return n;
  }

  const std::vector<std::uint8_t>& bytes_;
  const char* what_;
  std::size_t pos_ = 0;
};

// ---- shared field codecs --------------------------------------------------

void put_key(ByteWriter& w, const crypto::CipherKey& key);
crypto::CipherKey get_key(ByteReader& r, const char* field);

/// The canonical SimConfig byte encoding (wire protocol v2 field order).
void put_config(ByteWriter& w, const sim::SimConfig& c);
sim::SimConfig get_config(ByteReader& r);

/// One-shot canonical form — the cache's key material. Byte-identical to
/// what put_config writes inside a run-request payload.
std::vector<std::uint8_t> encode_config(const sim::SimConfig& c);

}  // namespace sofia::remote
