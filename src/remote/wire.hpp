// The remote-execution wire protocol: a versioned, deterministic binary
// framing for shipping (LoadImage, SimConfig, backend name) run requests to
// a worker process and RunResult replies back. Everything is little-endian
// with fixed field order, so the same request bytes are produced on every
// host — the coordinator can cache and replay them.
//
// Frame layout:
//   magic "SFRM" | u16 protocol version | u16 message type |
//   u32 payload length | payload bytes | u32 checksum (byte sum of payload)
//
// Malformed input never produces a zeroed result or a hang: every decoder
// throws sofia::Error naming the offending field ("remote-wire:
// run-request: truncated reading field 'config.max_cycles'"), truncated
// streams report how many bytes arrived, and payload lengths are bounded
// by kMaxPayload before any allocation happens.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "assembler/image.hpp"
#include "sim/backend.hpp"
#include "sim/config.hpp"

namespace sofia::remote {

/// v2: SimConfig carries the protection-scheme name (appended to the config
/// codec) and RunReply's reset cause admits kStateCorruption. v3: the reset
/// cause range extends to kTargetSetViolation (the "flta" forward-edge
/// gate). Mixed-version pairs fail fast at the frame header rather than
/// mis-parse payloads.
inline constexpr std::uint16_t kProtocolVersion = 3;

/// Upper bound on a frame payload (64 MiB): far larger than any real image
/// or result, small enough that a corrupt length field cannot drive a
/// multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxPayload = 64u * 1024 * 1024;

/// Frame header size in bytes (magic + version + type + payload length).
inline constexpr std::size_t kFrameHeaderSize = 12;

enum class MessageType : std::uint16_t {
  kHelloRequest = 1,  ///< ask a worker to describe a backend
  kHelloReply = 2,
  kRunRequest = 3,  ///< execute (image, config) on a named backend
  kRunReply = 4,
  kErrorReply = 5,  ///< any worker-side failure, carrying the message
};

struct Frame {
  MessageType type = MessageType::kErrorReply;
  std::vector<std::uint8_t> payload;
};

// ---- messages -------------------------------------------------------------

struct HelloRequest {
  std::string backend;  ///< registry key to describe
};

struct HelloReply {
  std::string name;
  std::string description;
  sim::BackendCapabilities caps;
};

struct RunRequest {
  std::string backend;  ///< far-side registry key to execute on
  assembler::LoadImage image;
  sim::SimConfig config;
};

struct RunReply {
  sim::RunResult result;
};

struct ErrorReply {
  std::string message;
};

// ---- frame codec ----------------------------------------------------------

/// Serialize a frame (header + payload + checksum).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Parse exactly one whole frame from a byte buffer; throws sofia::Error on
/// bad magic, unsupported version, oversized/truncated payload, checksum
/// mismatch or trailing bytes.
Frame decode_frame(const std::vector<std::uint8_t>& bytes);

/// Write a frame to a stdio stream and flush; throws sofia::Error when the
/// stream reports failure (closed pipe, full disk).
void write_frame(std::FILE* out, const Frame& frame);

/// Read one frame from a stdio stream. Returns false on clean end-of-stream
/// (no bytes before EOF); throws sofia::Error on a partial header/payload
/// ("the worker died mid-reply") or any malformed header field.
bool read_frame(std::FILE* in, Frame& out);

// ---- payload codecs -------------------------------------------------------

std::vector<std::uint8_t> encode_hello_request(const HelloRequest& msg);
HelloRequest decode_hello_request(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_hello_reply(const HelloReply& msg);
HelloReply decode_hello_reply(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_run_request(const RunRequest& msg);
/// Reference form for the hot path — encodes straight from the caller's
/// image/config without assembling a RunRequest copy first.
std::vector<std::uint8_t> encode_run_request(std::string_view backend,
                                             const assembler::LoadImage& image,
                                             const sim::SimConfig& config);
RunRequest decode_run_request(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_run_reply(const RunReply& msg);
RunReply decode_run_reply(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_error_reply(const ErrorReply& msg);
ErrorReply decode_error_reply(const std::vector<std::uint8_t>& payload);

}  // namespace sofia::remote
