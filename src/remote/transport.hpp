// Transport for the remote-execution protocol: a worker subprocess whose
// stdin/stdout carry wire frames. The command is run through `sh -c`, so
// the exact same code path serves a local subprocess, an ssh hop or a
// container runner — anything that forwards stdio works.
#pragma once

#include <cstdio>
#include <string>

#include "remote/wire.hpp"

namespace sofia::remote {

class WorkerProcess {
 public:
  /// Spawn `command` via /bin/sh -c with pipes on its stdin/stdout; throws
  /// sofia::Error when the process cannot be created. (A command that fails
  /// to exec is only observed on the first exchange, like a dropped ssh
  /// connection.)
  explicit WorkerProcess(std::string command);

  /// Closes the pipes (EOF stops a well-behaved worker's serve loop) and
  /// reaps the child, escalating to SIGKILL if it lingers.
  ~WorkerProcess();

  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;

  /// Write one frame to the worker's stdin; throws sofia::Error naming the
  /// command when the worker is gone (EPIPE) or the write fails.
  void send(const Frame& frame);

  /// Read one frame from the worker's stdout; throws sofia::Error naming
  /// the command on end-of-stream or a malformed/partial frame — a worker
  /// dying mid-reply is an error, never a hang or an empty result.
  Frame receive();

  const std::string& command() const { return command_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;

  std::string command_;
  std::FILE* to_worker_ = nullptr;    ///< worker's stdin
  std::FILE* from_worker_ = nullptr;  ///< worker's stdout
  long pid_ = -1;
};

}  // namespace sofia::remote
