// The remote-execution endpoint: how to reach a sofia_worker process and
// which far-side backend it should run. The transport is deliberately just
// "a command whose stdin/stdout speak the wire protocol", so the same spec
// covers a local subprocess ("build/tools/sofia_worker"), an ssh hop
// ("ssh host /opt/sofia/sofia_worker") or a container runner
// ("docker run -i --rm sofia sofia_worker") without any code changes.
#pragma once

#include <string>

namespace sofia::remote {

/// Environment variables filling unset RemoteSpec fields (resolved()), so
/// `sofia_run --backend remote` works without plumbing a spec.
inline constexpr const char* kWorkerEnv = "SOFIA_WORKER";
inline constexpr const char* kWorkerBackendEnv = "SOFIA_WORKER_BACKEND";

struct RemoteSpec {
  /// Worker launch command, run via `sh -c` with the wire protocol on its
  /// stdin/stdout. Empty = unconfigured (resolved() consults $SOFIA_WORKER;
  /// still empty means run() reports how to set it).
  std::string command;
  /// Far-side backend registry key the worker executes requests on
  /// ("cycle" or "functional"; "remote" is rejected to stop recursion).
  /// Empty = unset: resolved() consults $SOFIA_WORKER_BACKEND, then
  /// defaults to "cycle" — so an *explicit* "cycle" is distinguishable
  /// from the default and is never overridden by the environment.
  std::string backend;

  bool configured() const { return !command.empty(); }

  /// The raw environment spec ($SOFIA_WORKER / $SOFIA_WORKER_BACKEND;
  /// unset variables stay empty).
  static RemoteSpec from_environment();

  /// The effective endpoint: unset fields filled from the environment,
  /// then the backend defaulted to "cycle". This is the single resolution
  /// rule — RemoteBackend runs on it and DeviceProfile fingerprints it.
  RemoteSpec resolved() const;

  friend bool operator==(const RemoteSpec&, const RemoteSpec&) = default;
};

}  // namespace sofia::remote
