#include "remote/transport.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace sofia::remote {

namespace {

/// Writing to a worker that already exited must surface as EPIPE from
/// fwrite, not kill the coordinator with SIGPIPE. Installed once, before
/// the first spawn. An *ignored* disposition survives exec (only caught
/// handlers reset), so the child restores SIG_DFL between fork and exec —
/// launch commands that are themselves shell pipelines keep the normal
/// die-on-SIGPIPE behavior.
void ignore_sigpipe_once() {
  static const bool done = [] {
    struct sigaction sa{};
    sa.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &sa, nullptr);
    return true;
  }();
  (void)done;
}

}  // namespace

WorkerProcess::WorkerProcess(std::string command)
    : command_(std::move(command)) {
  ignore_sigpipe_once();
  int to_child[2] = {-1, -1};    // parent writes -> child stdin
  int from_child[2] = {-1, -1};  // child stdout -> parent reads
  // O_CLOEXEC atomically at creation: a concurrent spawn's fork landing
  // between pipe() and a later fcntl would duplicate these fds into a
  // sibling worker, whose copy of our write end defeats the EOF-based
  // shutdown. The child's dup2 onto stdio clears the flag on its copies.
  if (pipe2(to_child, O_CLOEXEC) != 0 || pipe2(from_child, O_CLOEXEC) != 0) {
    if (to_child[0] != -1) {
      close(to_child[0]);
      close(to_child[1]);
    }
    throw Error("remote: cannot create pipes for worker '" + command_ +
                "': " + std::strerror(errno));
  }
  const pid_t pid = fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
      close(fd);
    throw Error("remote: cannot fork worker '" + command_ +
                "': " + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: wire the pipes onto stdio and hand off to the shell. stderr is
    // inherited so worker diagnostics land on the coordinator's stderr; the
    // ignored SIGPIPE is restored to default so it does not leak through
    // exec into the launch command.
    struct sigaction sa{};
    sa.sa_handler = SIG_DFL;
    sigaction(SIGPIPE, &sa, nullptr);
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl("/bin/sh", "sh", "-c", command_.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  pid_ = pid;
  close(to_child[0]);
  close(from_child[1]);
  to_worker_ = fdopen(to_child[1], "wb");
  from_worker_ = fdopen(from_child[0], "rb");
  if (to_worker_ == nullptr || from_worker_ == nullptr) {
    if (to_worker_ != nullptr) std::fclose(to_worker_);
    else close(to_child[1]);
    if (from_worker_ != nullptr) std::fclose(from_worker_);
    else close(from_child[0]);
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    throw Error("remote: cannot open worker streams for '" + command_ + "'");
  }
}

WorkerProcess::~WorkerProcess() {
  if (to_worker_ != nullptr) std::fclose(to_worker_);  // EOF ends the serve loop
  if (from_worker_ != nullptr) std::fclose(from_worker_);
  if (pid_ > 0) {
    const pid_t pid = static_cast<pid_t>(pid_);
    // Give a well-behaved worker a moment to exit on EOF, then escalate so
    // a wedged transport can never hang the coordinator's shutdown.
    for (int i = 0; i < 200; ++i) {
      if (waitpid(pid, nullptr, WNOHANG) != 0) return;
      usleep(10'000);
    }
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
  }
}

void WorkerProcess::fail(const std::string& what) const {
  throw Error("remote: worker '" + command_ + "': " + what);
}

void WorkerProcess::send(const Frame& frame) {
  try {
    write_frame(to_worker_, frame);
  } catch (const Error& e) {
    fail(std::string("request not delivered — ") + e.what());
  }
}

Frame WorkerProcess::receive() {
  Frame frame;
  bool got = false;
  try {
    got = read_frame(from_worker_, frame);
  } catch (const Error& e) {
    // read_frame's truncation/corruption story, with the command attached.
    throw Error("remote: worker '" + command_ + "': " + e.what());
  }
  if (!got) fail("exited without replying (is the command a sofia_worker?)");
  return frame;
}

}  // namespace sofia::remote
