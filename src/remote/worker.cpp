#include "remote/worker.hpp"

#include <cstdlib>
#include <string>

#include "remote/spec.hpp"
#include "remote/wire.hpp"
#include "support/error.hpp"

namespace sofia::remote {

namespace {

/// Resolve a request's backend against the *local* registry. "remote" is
/// refused outright — a worker forwarding to another worker is a loop, not
/// a topology.
std::unique_ptr<sim::Backend> local_backend(const std::string& name) {
  if (name == "remote")
    throw Error("refusing to serve backend 'remote' (a worker cannot recurse "
                "into another worker)");
  return sim::make_backend(name);
}

Frame handle(const Frame& request) {
  switch (request.type) {
    case MessageType::kHelloRequest: {
      const auto hello = decode_hello_request(request.payload);
      const auto backend = local_backend(hello.backend);
      HelloReply reply;
      reply.name = std::string(backend->name());
      reply.description = std::string(backend->describe());
      reply.caps = backend->capabilities();
      return {MessageType::kHelloReply, encode_hello_reply(reply)};
    }
    case MessageType::kRunRequest: {
      const auto run = decode_run_request(request.payload);
      const auto backend = local_backend(run.backend);
      RunReply reply;
      reply.result = backend->run(run.image, run.config);
      return {MessageType::kRunReply, encode_run_reply(reply)};
    }
    default:
      throw Error("unexpected message type " +
                  std::to_string(static_cast<unsigned>(request.type)) +
                  " (workers only accept hello and run requests)");
  }
}

}  // namespace

int serve(std::FILE* in, std::FILE* out) {
  Frame request;
  for (;;) {
    try {
      if (!read_frame(in, request)) return 0;  // clean EOF: coordinator done
    } catch (const std::exception& e) {
      // The request stream is corrupt; frame boundaries are lost, so a
      // resync is impossible. Report and stop.
      try {
        write_frame(out, {MessageType::kErrorReply,
                          encode_error_reply({e.what()})});
      } catch (...) {
      }
      return 1;
    }
    Frame reply;
    try {
      reply = handle(request);
    } catch (const std::exception& e) {
      reply = {MessageType::kErrorReply, encode_error_reply({e.what()})};
    }
    // Encode before touching the stream: an unencodable reply (e.g. a
    // >kMaxPayload trace) throws here with zero bytes written, so an
    // ErrorReply naming the limit is still protocol-safe. Once writing has
    // started, a failure may leave a partial frame on the stream — any
    // recovery frame appended after it would decode as garbage, so the
    // only honest move is to stop.
    std::vector<std::uint8_t> encoded;
    try {
      encoded = encode_frame(reply);
    } catch (const std::exception& e) {
      try {
        write_frame(out, {MessageType::kErrorReply,
                          encode_error_reply({e.what()})});
        continue;
      } catch (...) {
        return 1;
      }
    }
    if (std::fwrite(encoded.data(), 1, encoded.size(), out) !=
            encoded.size() ||
        std::fflush(out) != 0)
      return 1;  // coordinator hung up or the stream is wedged
  }
}

RemoteSpec RemoteSpec::from_environment() {
  RemoteSpec spec;
  if (const char* command = std::getenv(kWorkerEnv)) spec.command = command;
  if (const char* backend = std::getenv(kWorkerBackendEnv))
    spec.backend = backend;
  return spec;
}

RemoteSpec RemoteSpec::resolved() const {
  RemoteSpec spec = *this;
  const RemoteSpec env = from_environment();
  if (spec.command.empty()) spec.command = env.command;
  if (spec.backend.empty()) spec.backend = env.backend;
  if (spec.backend.empty()) spec.backend = "cycle";
  return spec;
}

}  // namespace sofia::remote
