// IMA-ADPCM encoder/decoder — the MediaBench-I benchmark the paper
// evaluates (§IV-B). The assembly follows MediaBench's adpcm_coder /
// adpcm_decoder control flow (sign split, 3-step quantization, predictor
// clamp, step-table walk, high-nibble-first packing); the golden C++ model
// mirrors it bit-exactly.
#include "workloads/workloads.hpp"

#include "support/rng.hpp"
#include "workloads/data_emit.hpp"

namespace sofia::workloads {
namespace {

constexpr int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                 -1, -1, -1, -1, 2, 4, 6, 8};

constexpr int kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

std::string step_table_words() {
  std::vector<int> v(std::begin(kStepTable), std::end(kStepTable));
  return emit_values(".word", v);
}

std::string index_table_words() {
  std::vector<int> v(std::begin(kIndexTable), std::end(kIndexTable));
  return emit_values(".word", v);
}

std::int32_t sum_bytes(const std::vector<std::uint8_t>& bytes) {
  std::uint32_t s = 0;
  for (const auto b : bytes) s += b;
  return static_cast<std::int32_t>(s);
}

std::int32_t sum_samples(const std::vector<std::int16_t>& samples) {
  std::uint32_t s = 0;
  for (const auto v : samples) s += static_cast<std::uint32_t>(static_cast<std::int32_t>(v));
  return static_cast<std::int32_t>(s);
}

// The clamp / index / table / nibble logic shared verbatim by both
// assembly listings.
constexpr char kSharedTables[] = R"(.data
idxtab:
)";

}  // namespace

std::vector<std::int16_t> make_waveform(std::uint64_t seed, std::uint32_t n) {
  Rng rng(seed);
  std::vector<std::int16_t> v(n);
  std::int32_t tri = 0;
  std::int32_t dir = 13 * 257;
  for (std::uint32_t i = 0; i < n; ++i) {
    tri += dir;
    if (tri > 14000 || tri < -14000) dir = -dir;
    const std::int32_t noise = static_cast<std::int32_t>(rng.next_u32() & 0x3FF) - 512;
    std::int32_t s = tri + noise;
    if (s > 32767) s = 32767;
    if (s < -32768) s = -32768;
    v[i] = static_cast<std::int16_t>(s);
  }
  return v;
}

std::vector<std::uint8_t> adpcm_encode(const std::vector<std::int16_t>& in,
                                       AdpcmState& state) {
  int valpred = state.valprev;
  int index = state.index;
  int step = kStepTable[index];
  std::vector<std::uint8_t> out;
  out.reserve(in.size() / 2 + 1);
  int outputbuffer = 0;
  bool bufferstep = true;
  for (const std::int16_t sample : in) {
    int diff = sample - valpred;
    const int sign = diff < 0 ? 8 : 0;
    if (sign) diff = -diff;
    int delta = 0;
    int vpdiff = step >> 3;
    if (diff >= step) {
      delta = 4;
      diff -= step;
      vpdiff += step;
    }
    int half = step >> 1;
    if (diff >= half) {
      delta |= 2;
      diff -= half;
      vpdiff += half;
    }
    half >>= 1;
    if (diff >= half) {
      delta |= 1;
      vpdiff += half;
    }
    if (sign)
      valpred -= vpdiff;
    else
      valpred += vpdiff;
    if (valpred > 32767) valpred = 32767;
    if (valpred < -32768) valpred = -32768;
    delta |= sign;
    index += kIndexTable[delta];
    if (index < 0) index = 0;
    if (index > 88) index = 88;
    step = kStepTable[index];
    if (bufferstep) {
      outputbuffer = (delta << 4) & 0xF0;
    } else {
      out.push_back(static_cast<std::uint8_t>((delta & 0x0F) | outputbuffer));
    }
    bufferstep = !bufferstep;
  }
  if (!bufferstep) out.push_back(static_cast<std::uint8_t>(outputbuffer));
  state.valprev = valpred;
  state.index = index;
  return out;
}

std::vector<std::int16_t> adpcm_decode(const std::vector<std::uint8_t>& in,
                                       std::uint32_t sample_count,
                                       AdpcmState& state) {
  int valpred = state.valprev;
  int index = state.index;
  int step = kStepTable[index];
  std::vector<std::int16_t> out;
  out.reserve(sample_count);
  std::size_t pos = 0;
  int inputbuffer = 0;
  bool bufferstep = false;
  for (std::uint32_t i = 0; i < sample_count; ++i) {
    int delta;
    if (!bufferstep) {
      inputbuffer = in[pos++];
      delta = (inputbuffer >> 4) & 0x0F;
    } else {
      delta = inputbuffer & 0x0F;
    }
    bufferstep = !bufferstep;
    index += kIndexTable[delta];
    if (index < 0) index = 0;
    if (index > 88) index = 88;
    const int sign = delta & 8;
    const int mag = delta & 7;
    int vpdiff = step >> 3;
    if (mag & 4) vpdiff += step;
    if (mag & 2) vpdiff += step >> 1;
    if (mag & 1) vpdiff += step >> 2;
    if (sign)
      valpred -= vpdiff;
    else
      valpred += vpdiff;
    if (valpred > 32767) valpred = 32767;
    if (valpred < -32768) valpred = -32768;
    step = kStepTable[index];
    out.push_back(static_cast<std::int16_t>(valpred));
  }
  state.valprev = valpred;
  state.index = index;
  return out;
}

WorkloadSpec adpcm_encode_spec() {
  WorkloadSpec spec;
  spec.name = "adpcm_encode";
  spec.description = "IMA ADPCM encoder (MediaBench-I, paper's benchmark)";
  spec.default_size = 2048;
  spec.source = [](std::uint64_t seed, std::uint32_t size) {
    const auto samples = make_waveform(seed, size);
    std::vector<int> sample_ints(samples.begin(), samples.end());
    std::string src = R"(; IMA ADPCM encoder
main:
  la r1, input
  la r2, output
  li r3, )" + std::to_string(size) + R"(
  li r4, 0            ; valpred
  li r5, 0            ; index
  la r10, steptab
  lw r6, 0(r10)       ; step
  li r12, -1          ; nibble buffer empty
loop:
  lh r7, 0(r1)
  addi r1, r1, 2
  sub r7, r7, r4      ; diff
  li r8, 0
  bgez r7, pos
  li r8, 8
  neg r7, r7
pos:
  srai r9, r6, 3      ; vpdiff = step >> 3
  li r11, 0           ; delta
  blt r7, r6, q2
  ori r11, r11, 4
  sub r7, r7, r6
  add r9, r9, r6
q2:
  srai r6, r6, 1
  blt r7, r6, q1
  ori r11, r11, 2
  sub r7, r7, r6
  add r9, r9, r6
q1:
  srai r6, r6, 1
  blt r7, r6, q0
  ori r11, r11, 1
  add r9, r9, r6
q0:
  beqz r8, addv
  sub r4, r4, r9
  j clamp
addv:
  add r4, r4, r9
clamp:
  li r10, 32767
  ble r4, r10, c2
  mv r4, r10
c2:
  li r10, -32768
  bge r4, r10, c3
  mv r4, r10
c3:
  or r11, r11, r8     ; delta |= sign
  slli r7, r11, 2
  la r10, idxtab
  add r10, r10, r7
  lw r7, 0(r10)
  add r5, r5, r7      ; index += indexTable[delta]
  bgez r5, i2
  li r5, 0
i2:
  li r10, 88
  ble r5, r10, i3
  mv r5, r10
i3:
  slli r7, r5, 2
  la r10, steptab
  add r10, r10, r7
  lw r6, 0(r10)       ; step = steptab[index]
  bltz r12, stash
  or r7, r12, r11     ; high nibble buffered, low nibble now
  sb r7, 0(r2)
  addi r2, r2, 1
  li r12, -1
  j next
stash:
  slli r12, r11, 4
next:
  addi r3, r3, -1
  bnez r3, loop
  bltz r12, sum
  sb r12, 0(r2)       ; flush odd nibble
  addi r2, r2, 1
sum:
  la r1, output
  li r7, 0
csloop:
  bgeu r1, r2, csdone
  lbu r11, 0(r1)
  add r7, r7, r11
  addi r1, r1, 1
  j csloop
csdone:
  li r10, 0xFFFF0008
  sw r7, 0(r10)       ; checksum of code bytes
  sw r4, 0(r10)       ; final predictor
  sw r5, 0(r10)       ; final index
  halt
)" + std::string(kSharedTables) +
                      index_table_words() + "steptab:\n" + step_table_words() +
                      "input:\n" + emit_values(".half", sample_ints) +
                      "output: .space " + std::to_string(size / 2 + 4) + "\n";
    return src;
  };
  spec.golden = [](std::uint64_t seed, std::uint32_t size) {
    AdpcmState state;
    const auto codes = adpcm_encode(make_waveform(seed, size), state);
    return format_results({sum_bytes(codes), state.valprev, state.index});
  };
  return spec;
}

WorkloadSpec adpcm_decode_spec() {
  WorkloadSpec spec;
  spec.name = "adpcm_decode";
  spec.description = "IMA ADPCM decoder (MediaBench-I, paper's benchmark)";
  spec.default_size = 2048;
  spec.source = [](std::uint64_t seed, std::uint32_t size) {
    AdpcmState enc_state;
    const auto codes = adpcm_encode(make_waveform(seed, size), enc_state);
    std::vector<int> code_ints(codes.begin(), codes.end());
    std::string src = R"(; IMA ADPCM decoder
main:
  la r1, input
  la r2, outbuf
  li r3, )" + std::to_string(size) + R"(
  li r4, 0            ; valpred
  li r5, 0            ; index
  la r10, steptab
  lw r6, 0(r10)       ; step
  li r12, -1          ; input nibble buffer empty
loop:
  bltz r12, fetch
  mv r7, r12
  li r12, -1
  j have
fetch:
  lbu r11, 0(r1)
  addi r1, r1, 1
  srli r7, r11, 4     ; high nibble first
  andi r12, r11, 15
have:
  slli r11, r7, 2
  la r10, idxtab
  add r10, r10, r11
  lw r11, 0(r10)
  add r5, r5, r11     ; index += indexTable[delta]
  bgez r5, i2
  li r5, 0
i2:
  li r10, 88
  ble r5, r10, i3
  mv r5, r10
i3:
  andi r8, r7, 8      ; sign
  andi r7, r7, 7      ; magnitude
  srai r9, r6, 3      ; vpdiff = step >> 3
  andi r11, r7, 4
  beqz r11, d2
  add r9, r9, r6
d2:
  andi r11, r7, 2
  beqz r11, d1
  srai r11, r6, 1
  add r9, r9, r11
d1:
  andi r11, r7, 1
  beqz r11, d0
  srai r11, r6, 2
  add r9, r9, r11
d0:
  beqz r8, addv
  sub r4, r4, r9
  j clamp
addv:
  add r4, r4, r9
clamp:
  li r10, 32767
  ble r4, r10, c2
  mv r4, r10
c2:
  li r10, -32768
  bge r4, r10, c3
  mv r4, r10
c3:
  slli r11, r5, 2
  la r10, steptab
  add r10, r10, r11
  lw r6, 0(r10)       ; step = steptab[index]
  sh r4, 0(r2)
  addi r2, r2, 2
  addi r3, r3, -1
  bnez r3, loop
  la r1, outbuf
  li r7, 0
  li r3, )" + std::to_string(size) + R"(
csloop:
  lh r11, 0(r1)
  add r7, r7, r11
  addi r1, r1, 2
  addi r3, r3, -1
  bnez r3, csloop
  li r10, 0xFFFF0008
  sw r7, 0(r10)       ; checksum of decoded samples
  sw r4, 0(r10)       ; final predictor
  sw r5, 0(r10)       ; final index
  halt
)" + std::string(kSharedTables) +
                      index_table_words() + "steptab:\n" + step_table_words() +
                      "input:\n" + emit_values(".byte", code_ints) +
                      ".align 2\noutbuf: .space " + std::to_string(size * 2) + "\n";
    return src;
  };
  spec.golden = [](std::uint64_t seed, std::uint32_t size) {
    AdpcmState enc_state;
    const auto codes = adpcm_encode(make_waveform(seed, size), enc_state);
    AdpcmState dec_state;
    const auto samples = adpcm_decode(codes, size, dec_state);
    return format_results({sum_samples(samples), dec_state.valprev, dec_state.index});
  };
  return spec;
}

}  // namespace sofia::workloads
