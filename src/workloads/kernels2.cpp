// MiBench-style additions: bitcount (Kernighan loop) and a dense-graph
// Dijkstra with linear-scan extraction — more of the embedded-benchmark
// character the paper's platform targets.
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/data_emit.hpp"
#include "workloads/workloads.hpp"

namespace sofia::workloads {
namespace {

std::vector<std::uint32_t> random_u32(std::uint64_t seed, std::uint32_t n) {
  Rng rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& w : v) w = rng.next_u32();
  return v;
}

std::vector<std::int32_t> make_weights(std::uint64_t seed, std::uint32_t v) {
  Rng rng(seed);
  std::vector<std::int32_t> w(v * v);
  for (std::uint32_t i = 0; i < v; ++i)
    for (std::uint32_t j = 0; j < v; ++j)
      w[i * v + j] = (i == j) ? 0 : static_cast<std::int32_t>(1 + rng.next_below(99));
  return w;
}

}  // namespace

WorkloadSpec bitcount_spec() {
  WorkloadSpec spec;
  spec.name = "bitcount";
  spec.description = "population count over a word buffer (Kernighan loop)";
  spec.default_size = 512;
  spec.source = [](std::uint64_t seed, std::uint32_t size) {
    const auto words = random_u32(seed, size);
    std::vector<std::int64_t> ints(words.begin(), words.end());
    std::string data;
    for (std::size_t i = 0; i < ints.size(); ++i) {
      if (i % 16 == 0) data += ".word ";
      data += std::to_string(static_cast<std::int32_t>(ints[i]));
      data += (i % 16 == 15 || i + 1 == ints.size()) ? "\n" : ", ";
    }
    return R"(; bitcount via x &= x-1
main:
  la r1, data
  li r3, )" + std::to_string(size) + R"(
  li r4, 0
wloop:
  lw r5, 0(r1)
  addi r1, r1, 4
bloop:
  beqz r5, bdone
  addi r6, r5, -1
  and r5, r5, r6
  addi r4, r4, 1
  j bloop
bdone:
  addi r3, r3, -1
  bnez r3, wloop
  li r10, 0xFFFF0008
  sw r4, 0(r10)
  halt
.data
data:
)" + data;
  };
  spec.golden = [](std::uint64_t seed, std::uint32_t size) {
    const auto words = random_u32(seed, size);
    std::int32_t total = 0;
    for (const auto w : words) total += __builtin_popcount(w);
    return format_results({total});
  };
  return spec;
}

WorkloadSpec dijkstra_spec() {
  WorkloadSpec spec;
  spec.name = "dijkstra";
  spec.description = "single-source shortest paths, dense graph, linear scan";
  spec.default_size = 16;  ///< vertices
  spec.source = [](std::uint64_t seed, std::uint32_t v) {
    const auto weights = make_weights(seed, v);
    const std::string n = std::to_string(v);
    return R"(; Dijkstra from vertex 0 over a dense adjacency matrix
main:
  la r1, dist
  li r2, )" + n + R"(
  li r3, 99999999
initd:
  sw r3, 0(r1)
  addi r1, r1, 4
  addi r2, r2, -1
  bnez r2, initd
  la r1, dist
  sw r0, 0(r1)          ; dist[source] = 0
  li r7, )" + n + R"(
outer:
  li r4, -1             ; best index
  li r5, 100000000      ; best distance
  li r6, 0
scan:
  la r8, visited
  add r8, r8, r6
  lbu r9, 0(r8)
  bnez r9, scannext
  la r8, dist
  slli r10, r6, 2
  add r8, r8, r10
  lw r9, 0(r8)
  bge r9, r5, scannext
  mv r5, r9
  mv r4, r6
scannext:
  addi r6, r6, 1
  li r8, )" + n + R"(
  blt r6, r8, scan
  bltz r4, done
  la r8, visited
  add r8, r8, r4
  li r9, 1
  sb r9, 0(r8)
  li r6, 0
relax:
  la r8, weights
  li r9, )" + std::to_string(4 * v) + R"(
  mul r10, r4, r9
  add r8, r8, r10
  slli r10, r6, 2
  add r8, r8, r10
  lw r9, 0(r8)          ; w[best][j]
  add r9, r9, r5
  la r8, dist
  slli r10, r6, 2
  add r8, r8, r10
  lw r10, 0(r8)
  bge r9, r10, norelax
  sw r9, 0(r8)
norelax:
  addi r6, r6, 1
  li r8, )" + n + R"(
  blt r6, r8, relax
  addi r7, r7, -1
  bnez r7, outer
done:
  la r1, dist
  li r2, )" + n + R"(
  li r4, 0
sumd:
  lw r3, 0(r1)
  add r4, r4, r3
  addi r1, r1, 4
  addi r2, r2, -1
  bnez r2, sumd
  li r10, 0xFFFF0008
  sw r4, 0(r10)
  halt
.data
weights:
)" + emit_values(".word", weights) +
           "dist: .space " + std::to_string(4 * v) + "\n" +
           "visited: .space " + std::to_string(v) + "\n";
  };
  spec.golden = [](std::uint64_t seed, std::uint32_t v) {
    const auto w = make_weights(seed, v);
    const std::int32_t kInf = 99999999;
    std::vector<std::int32_t> dist(v, kInf);
    std::vector<bool> visited(v, false);
    dist[0] = 0;
    for (std::uint32_t iter = 0; iter < v; ++iter) {
      std::int32_t best = -1;
      std::int32_t best_dist = 100000000;
      for (std::uint32_t i = 0; i < v; ++i) {
        if (!visited[i] && dist[i] < best_dist) {
          best_dist = dist[i];
          best = static_cast<std::int32_t>(i);
        }
      }
      if (best < 0) break;
      visited[static_cast<std::uint32_t>(best)] = true;
      for (std::uint32_t j = 0; j < v; ++j) {
        const std::int32_t nd = best_dist + w[static_cast<std::uint32_t>(best) * v + j];
        if (nd < dist[j]) dist[j] = nd;
      }
    }
    std::int32_t sum = 0;
    for (const auto d : dist) sum += d;
    return format_results({sum});
  };
  return spec;
}

}  // namespace sofia::workloads
