// Helpers for baking generated input data into .data sections.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sofia::workloads {

template <typename T>
std::string emit_values(const std::string& directive, const std::vector<T>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i % 16 == 0) out += directive + " ";
    out += std::to_string(static_cast<std::int64_t>(values[i]));
    out += (i % 16 == 15 || i + 1 == values.size()) ? "\n" : ", ";
  }
  return out;
}

/// Three putint lines, the common result format.
inline std::string format_results(std::initializer_list<std::int32_t> values) {
  std::string out;
  for (const std::int32_t v : values) {
    out += std::to_string(v);
    out += "\n";
  }
  return out;
}

}  // namespace sofia::workloads
