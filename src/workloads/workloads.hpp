// Benchmark workloads: SR32 assembly programs paired with C++ golden
// models. The headline pair is the MediaBench-I ADPCM encoder/decoder the
// paper evaluates (§IV-B); the rest broaden the suite (E12 in DESIGN.md).
//
// Each workload is hermetic: its generator bakes the (seeded) input data
// into the .data section and the program prints its results through the
// MMIO console, so a run is fully characterized by (name, seed, size).
// The golden model produces the exact expected console output, which lets
// tests require golden == vanilla-sim == SOFIA-sim.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace sofia::workloads {

struct WorkloadSpec {
  std::string name;
  std::string description;
  std::uint32_t default_size = 0;  ///< elements (samples, bytes, ...)
  /// SR32 source with input data baked in.
  std::function<std::string(std::uint64_t seed, std::uint32_t size)> source;
  /// Expected console output for the same (seed, size).
  std::function<std::string(std::uint64_t seed, std::uint32_t size)> golden;
};

/// All registered workloads, in a stable order.
const std::vector<WorkloadSpec>& all_workloads();

/// Lookup by name; throws sofia::Error for unknown names.
const WorkloadSpec& workload(std::string_view name);

// Individual specs (also reachable through the registry).
WorkloadSpec adpcm_encode_spec();
WorkloadSpec adpcm_decode_spec();
WorkloadSpec crc32_spec();
WorkloadSpec fir_spec();
WorkloadSpec quicksort_spec();
WorkloadSpec matmul_spec();
WorkloadSpec strsearch_spec();
WorkloadSpec fib_spec();
WorkloadSpec minivm_spec();
WorkloadSpec bitcount_spec();
WorkloadSpec dijkstra_spec();

// ---- reference helpers shared by specs and tests -------------------------

/// Deterministic 16-bit test waveform (triangle + pseudo-noise), the input
/// to the ADPCM pair.
std::vector<std::int16_t> make_waveform(std::uint64_t seed, std::uint32_t n);

struct AdpcmState {
  int valprev = 0;
  int index = 0;
};

/// Bit-exact golden IMA-ADPCM coder (mirrors the assembly implementation,
/// which follows MediaBench's adpcm_coder).
std::vector<std::uint8_t> adpcm_encode(const std::vector<std::int16_t>& in,
                                       AdpcmState& state);

/// Bit-exact golden IMA-ADPCM decoder.
std::vector<std::int16_t> adpcm_decode(const std::vector<std::uint8_t>& in,
                                       std::uint32_t sample_count,
                                       AdpcmState& state);

/// Bitwise CRC-32 (poly 0xEDB88320), as the assembly computes it.
std::uint32_t crc32(const std::vector<std::uint8_t>& data);

}  // namespace sofia::workloads
