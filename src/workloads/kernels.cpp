// The non-ADPCM workloads: CRC-32, FIR filter, recursive quicksort, matrix
// multiply, substring search, recursive Fibonacci. Each bakes seeded input
// into .data and prints small integer results; the golden lambdas mirror
// the assembly exactly (including 32-bit wraparound).
#include <algorithm>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/data_emit.hpp"
#include "workloads/workloads.hpp"

namespace sofia::workloads {
namespace {

std::vector<std::uint8_t> random_bytes(std::uint64_t seed, std::uint32_t n,
                                       std::uint8_t lo = 0, std::uint8_t hi = 255) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v)
    b = static_cast<std::uint8_t>(lo + rng.next_below(hi - lo + 1u));
  return v;
}

std::vector<std::int32_t> random_words(std::uint64_t seed, std::uint32_t n) {
  Rng rng(seed);
  std::vector<std::int32_t> v(n);
  for (auto& w : v) w = static_cast<std::int32_t>(rng.next_u32());
  return v;
}

}  // namespace

std::uint32_t crc32(const std::vector<std::uint8_t>& data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc ^= byte;
    for (int k = 0; k < 8; ++k)
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
  }
  return ~crc;
}

WorkloadSpec crc32_spec() {
  WorkloadSpec spec;
  spec.name = "crc32";
  spec.description = "bitwise CRC-32 over a byte buffer";
  spec.default_size = 1024;
  spec.source = [](std::uint64_t seed, std::uint32_t size) {
    const auto data = random_bytes(seed, size);
    std::vector<int> ints(data.begin(), data.end());
    return R"(; bitwise CRC-32 (poly 0xEDB88320)
main:
  la r1, data
  li r3, )" + std::to_string(size) + R"(
  li r4, -1
byteloop:
  lbu r5, 0(r1)
  addi r1, r1, 1
  xor r4, r4, r5
  li r6, 8
bitloop:
  andi r7, r4, 1
  srli r4, r4, 1
  beqz r7, nobit
  li r8, 0xEDB88320
  xor r4, r4, r8
nobit:
  addi r6, r6, -1
  bnez r6, bitloop
  addi r3, r3, -1
  bnez r3, byteloop
  li r8, -1
  xor r4, r4, r8
  li r10, 0xFFFF0008
  sw r4, 0(r10)
  halt
.data
data:
)" + emit_values(".byte", ints);
  };
  spec.golden = [](std::uint64_t seed, std::uint32_t size) {
    return format_results(
        {static_cast<std::int32_t>(crc32(random_bytes(seed, size)))});
  };
  return spec;
}

WorkloadSpec fir_spec() {
  WorkloadSpec spec;
  spec.name = "fir";
  spec.description = "8-tap integer FIR filter over 16-bit samples";
  spec.default_size = 1024;
  static constexpr int kTaps[8] = {3, -7, 12, 25, 25, 12, -7, 3};
  spec.source = [](std::uint64_t seed, std::uint32_t size) {
    const auto samples = make_waveform(seed, size);
    std::vector<int> sample_ints(samples.begin(), samples.end());
    std::vector<int> taps(std::begin(kTaps), std::end(kTaps));
    return R"(; 8-tap FIR, checksum of outputs
main:
  li r4, 0            ; checksum
  li r1, 7            ; i = 7 .. size-1
  li r2, )" + std::to_string(size) + R"(
outer:
  ; acc = sum_{t=0..7} taps[t] * x[i-t]
  la r5, input
  slli r6, r1, 1
  add r5, r5, r6      ; &x[i]
  la r6, taps
  li r7, 0            ; acc
  li r3, 8
inner:
  lh r8, 0(r5)
  lw r9, 0(r6)
  mul r8, r8, r9
  add r7, r7, r8
  addi r5, r5, -2
  addi r6, r6, 4
  addi r3, r3, -1
  bnez r3, inner
  srai r7, r7, 8
  add r4, r4, r7
  addi r1, r1, 1
  blt r1, r2, outer
  li r10, 0xFFFF0008
  sw r4, 0(r10)
  halt
.data
taps:
)" + emit_values(".word", taps) +
           "input:\n" + emit_values(".half", sample_ints);
  };
  spec.golden = [](std::uint64_t seed, std::uint32_t size) {
    const auto x = make_waveform(seed, size);
    std::uint32_t cs = 0;
    for (std::uint32_t i = 7; i < size; ++i) {
      std::int32_t acc = 0;
      for (int t = 0; t < 8; ++t) acc += kTaps[t] * x[i - static_cast<std::uint32_t>(t)];
      cs += static_cast<std::uint32_t>(acc >> 8);
    }
    return format_results({static_cast<std::int32_t>(cs)});
  };
  return spec;
}

WorkloadSpec quicksort_spec() {
  WorkloadSpec spec;
  spec.name = "quicksort";
  spec.description = "recursive quicksort of 32-bit words (call/return stress)";
  spec.default_size = 256;
  spec.source = [](std::uint64_t seed, std::uint32_t size) {
    const auto words = random_words(seed, size);
    return R"(; recursive quicksort (Lomuto partition)
main:
  la r1, arr
  la r2, arr
  li r7, )" + std::to_string(4 * (size - 1)) + R"(
  add r2, r2, r7
  call qsort
  ; verify sortedness and checksum
  la r1, arr
  li r3, )" + std::to_string(size) + R"(
  li r4, 0            ; checksum
  li r5, 1            ; sorted flag
  li r6, 0x80000000   ; prev = INT_MIN
chk:
  lw r7, 0(r1)
  bge r7, r6, inorder
  li r5, 0
inorder:
  mv r6, r7
  add r4, r4, r7
  addi r1, r1, 4
  addi r3, r3, -1
  bnez r3, chk
  li r10, 0xFFFF0008
  sw r5, 0(r10)
  sw r4, 0(r10)
  halt

qsort:                ; r1 = lo ptr, r2 = hi ptr (inclusive)
  bgeu r1, r2, qdone
  lw r4, 0(r2)        ; pivot
  mv r5, r1           ; i
  mv r6, r1           ; j
part:
  bgeu r6, r2, partdone
  lw r7, 0(r6)
  bgt r7, r4, noswap
  lw r8, 0(r5)
  sw r7, 0(r5)
  sw r8, 0(r6)
  addi r5, r5, 4
noswap:
  addi r6, r6, 4
  j part
partdone:
  lw r8, 0(r5)
  lw r7, 0(r2)
  sw r7, 0(r5)
  sw r8, 0(r2)
  addi sp, sp, -12
  sw lr, 0(sp)
  sw r5, 4(sp)
  sw r2, 8(sp)
  addi r2, r5, -4
  call qsort
  lw r5, 4(sp)
  lw r2, 8(sp)
  addi r1, r5, 4
  call qsort
  lw lr, 0(sp)
  addi sp, sp, 12
qdone:
  ret
.data
arr:
)" + emit_values(".word", words);
  };
  spec.golden = [](std::uint64_t seed, std::uint32_t size) {
    auto words = random_words(seed, size);
    std::sort(words.begin(), words.end());
    std::uint32_t cs = 0;
    for (const std::int32_t w : words) cs += static_cast<std::uint32_t>(w);
    return format_results({1, static_cast<std::int32_t>(cs)});
  };
  return spec;
}

WorkloadSpec matmul_spec() {
  WorkloadSpec spec;
  spec.name = "matmul";
  spec.description = "dense integer matrix multiply (NxN)";
  spec.default_size = 12;
  spec.source = [](std::uint64_t seed, std::uint32_t size) {
    Rng rng(seed);
    std::vector<std::int32_t> a(size * size);
    std::vector<std::int32_t> b(size * size);
    for (auto& v : a) v = static_cast<std::int32_t>(rng.next_range(-99, 99));
    for (auto& v : b) v = static_cast<std::int32_t>(rng.next_range(-99, 99));
    const std::string n = std::to_string(size);
    const std::string row_bytes = std::to_string(4 * size);
    return R"(; C = A x B, checksum of all C elements
main:
  li r4, 0            ; checksum
  li r1, 0            ; i
iloop:
  li r2, 0            ; j
jloop:
  li r8, )" + row_bytes + R"(
  mul r10, r1, r8
  la r8, mata
  add r10, r10, r8    ; &A[i][0]
  slli r11, r2, 2
  la r8, matb
  add r11, r11, r8    ; &B[0][j]
  li r7, 0            ; acc
  li r3, )" + n + R"(
kloop:
  lw r8, 0(r10)
  lw r9, 0(r11)
  mul r8, r8, r9
  add r7, r7, r8
  addi r10, r10, 4
  addi r11, r11, )" + row_bytes + R"(
  addi r3, r3, -1
  bnez r3, kloop
  add r4, r4, r7
  addi r2, r2, 1
  li r8, )" + n + R"(
  blt r2, r8, jloop
  addi r1, r1, 1
  li r8, )" + n + R"(
  blt r1, r8, iloop
  li r10, 0xFFFF0008
  sw r4, 0(r10)
  halt
.data
mata:
)" + emit_values(".word", a) +
           "matb:\n" + emit_values(".word", b);
  };
  spec.golden = [](std::uint64_t seed, std::uint32_t size) {
    Rng rng(seed);
    std::vector<std::int32_t> a(size * size);
    std::vector<std::int32_t> b(size * size);
    for (auto& v : a) v = static_cast<std::int32_t>(rng.next_range(-99, 99));
    for (auto& v : b) v = static_cast<std::int32_t>(rng.next_range(-99, 99));
    std::uint32_t cs = 0;
    for (std::uint32_t i = 0; i < size; ++i)
      for (std::uint32_t j = 0; j < size; ++j) {
        std::uint32_t acc = 0;
        for (std::uint32_t k = 0; k < size; ++k)
          acc += static_cast<std::uint32_t>(a[i * size + k]) *
                 static_cast<std::uint32_t>(b[k * size + j]);
        cs += acc;
      }
    return format_results({static_cast<std::int32_t>(cs)});
  };
  return spec;
}

WorkloadSpec strsearch_spec() {
  WorkloadSpec spec;
  spec.name = "strsearch";
  spec.description = "substring search: occurrence count and position sum";
  spec.default_size = 1024;
  static constexpr std::uint8_t kPattern[4] = {'a', 'b', 'c', 'a'};
  spec.source = [](std::uint64_t seed, std::uint32_t size) {
    const auto text = random_bytes(seed, size, 'a', 'd');
    std::vector<int> text_ints(text.begin(), text.end());
    std::vector<int> pat_ints(std::begin(kPattern), std::end(kPattern));
    return R"(; naive substring search
main:
  li r3, 0            ; pos
  li r4, 0            ; count
  li r5, 0            ; position sum
  li r6, )" + std::to_string(size - 4) + R"(
outer:
  la r10, text
  add r10, r10, r3
  la r11, pat
  li r7, 4
cmp:
  lbu r8, 0(r10)
  lbu r12, 0(r11)
  bne r8, r12, nomatch
  addi r10, r10, 1
  addi r11, r11, 1
  addi r7, r7, -1
  bnez r7, cmp
  addi r4, r4, 1
  add r5, r5, r3
nomatch:
  addi r3, r3, 1
  ble r3, r6, outer
  li r10, 0xFFFF0008
  sw r4, 0(r10)
  sw r5, 0(r10)
  halt
.data
pat:
)" + emit_values(".byte", pat_ints) +
           "text:\n" + emit_values(".byte", text_ints);
  };
  spec.golden = [](std::uint64_t seed, std::uint32_t size) {
    const auto text = random_bytes(seed, size, 'a', 'd');
    std::int32_t count = 0;
    std::int32_t possum = 0;
    for (std::uint32_t p = 0; p + 4 <= size; ++p) {
      bool match = true;
      for (int t = 0; t < 4; ++t)
        if (text[p + static_cast<std::uint32_t>(t)] != kPattern[t]) {
          match = false;
          break;
        }
      if (match) {
        ++count;
        possum += static_cast<std::int32_t>(p);
      }
    }
    return format_results({count, possum});
  };
  return spec;
}

WorkloadSpec fib_spec() {
  WorkloadSpec spec;
  spec.name = "fib";
  spec.description = "naive recursive Fibonacci (deep call/return stress)";
  spec.default_size = 15;
  spec.source = [](std::uint64_t /*seed*/, std::uint32_t size) {
    return R"(; naive recursive fib
main:
  li r1, )" + std::to_string(size) + R"(
  call fib
  li r10, 0xFFFF0008
  sw r2, 0(r10)
  halt
fib:
  li r3, 2
  blt r1, r3, base
  addi sp, sp, -12
  sw lr, 0(sp)
  sw r1, 4(sp)
  addi r1, r1, -1
  call fib
  sw r2, 8(sp)
  lw r1, 4(sp)
  addi r1, r1, -2
  call fib
  lw r3, 8(sp)
  add r2, r2, r3
  lw lr, 0(sp)
  addi sp, sp, 12
  ret
base:
  mv r2, r1
  ret
)";
  };
  spec.golden = [](std::uint64_t /*seed*/, std::uint32_t size) {
    std::uint64_t a = 0;
    std::uint64_t b = 1;
    for (std::uint32_t i = 0; i < size; ++i) {
      const std::uint64_t next = a + b;
      a = b;
      b = next;
    }
    return format_results({static_cast<std::int32_t>(a)});
  };
  return spec;
}

const std::vector<WorkloadSpec>& all_workloads() {
  static const std::vector<WorkloadSpec> specs = {
      adpcm_encode_spec(), adpcm_decode_spec(), crc32_spec(),    fir_spec(),
      quicksort_spec(),    matmul_spec(),       strsearch_spec(), fib_spec(),
      minivm_spec(),       bitcount_spec(),     dijkstra_spec()};
  return specs;
}

const WorkloadSpec& workload(std::string_view name) {
  for (const auto& spec : all_workloads())
    if (spec.name == name) return spec;
  throw Error("unknown workload '" + std::string(name) + "'");
}

}  // namespace sofia::workloads
