// minivm: a tiny stack-machine interpreter whose inner loop dispatches
// through a function-pointer table loaded from data (`jr` + `.targets`).
// This is the workload that stresses the paper's hardest control-flow
// case: computed dispatch is devirtualized into a compare+branch chain and
// the shared dispatch label becomes a join with one predecessor per
// handler, forcing a deep multiplexor tree (Fig. 9).
//
// Bytecode: 0 HALT, 1 PUSH imm8, 2 ADD, 3 SUB, 4 MUL, 5 DUP, 6 SWAP, 7 OUT
// (pop into the rolling checksum cs = cs*31 + v). Programs are generated
// with static stack-depth tracking, so they are valid by construction.
#include "support/rng.hpp"
#include "workloads/data_emit.hpp"
#include "workloads/workloads.hpp"

namespace sofia::workloads {
namespace {

enum VmOp : int {
  kVmHalt = 0,
  kVmPush = 1,
  kVmAdd = 2,
  kVmSub = 3,
  kVmMul = 4,
  kVmDup = 5,
  kVmSwap = 6,
  kVmOut = 7,
};

std::vector<int> make_bytecode(std::uint64_t seed, std::uint32_t length) {
  Rng rng(seed);
  std::vector<int> code;
  int depth = 0;
  while (code.size() < length) {
    const auto pick = rng.next_below(8);
    if (depth < 2 || pick < 3) {  // bias toward pushes when shallow
      if (depth >= 30) {  // keep the VM stack bounded
        code.push_back(kVmOut);
        --depth;
        continue;
      }
      code.push_back(kVmPush);
      code.push_back(static_cast<int>(rng.next_range(-128, 127)));
      ++depth;
      continue;
    }
    switch (pick) {
      case 3: code.push_back(kVmAdd); --depth; break;
      case 4: code.push_back(kVmSub); --depth; break;
      case 5: code.push_back(kVmMul); --depth; break;
      case 6:
        code.push_back(depth >= 2 ? kVmSwap : kVmDup);
        break;
      default:
        code.push_back(kVmOut);
        --depth;
        break;
    }
  }
  // Drain and stop.
  while (depth-- > 0) code.push_back(kVmOut);
  code.push_back(kVmHalt);
  return code;
}

std::int32_t interpret(const std::vector<int>& code) {
  std::int32_t stack[64];
  int sp = 0;
  std::uint32_t cs = 0;
  std::size_t ip = 0;
  for (;;) {
    const int op = code[ip++];
    switch (op) {
      case kVmHalt:
        return static_cast<std::int32_t>(cs);
      case kVmPush:
        stack[sp++] = static_cast<std::int8_t>(code[ip++]);
        break;
      case kVmAdd:
        --sp;
        stack[sp - 1] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(stack[sp - 1]) +
            static_cast<std::uint32_t>(stack[sp]));
        break;
      case kVmSub:
        --sp;
        stack[sp - 1] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(stack[sp - 1]) -
            static_cast<std::uint32_t>(stack[sp]));
        break;
      case kVmMul:
        --sp;
        stack[sp - 1] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(stack[sp - 1]) *
            static_cast<std::uint32_t>(stack[sp]));
        break;
      case kVmDup:
        stack[sp] = stack[sp - 1];
        ++sp;
        break;
      case kVmSwap:
        std::swap(stack[sp - 1], stack[sp - 2]);
        break;
      case kVmOut:
        --sp;
        cs = cs * 31 + static_cast<std::uint32_t>(stack[sp]);
        break;
      default:
        return -1;
    }
  }
}

}  // namespace

WorkloadSpec minivm_spec() {
  WorkloadSpec spec;
  spec.name = "minivm";
  spec.description =
      "stack-machine interpreter with devirtualized jump-table dispatch";
  spec.default_size = 512;
  spec.source = [](std::uint64_t seed, std::uint32_t size) {
    const auto code = make_bytecode(seed, size);
    return R"(; bytecode interpreter with function-pointer dispatch
main:
  la r1, bytecode
  la r2, vmstack
  li r3, 0            ; checksum
dispatch:
  lbu r4, 0(r1)
  addi r1, r1, 1
  slli r5, r4, 2
  la r6, handlers
  add r6, r6, r5
  lw r7, 0(r6)        ; handler address from the data-resident table
  .targets h_halt, h_push, h_add, h_sub, h_mul, h_dup, h_swap, h_out
  jr r7
h_halt:
  li r10, 0xFFFF0008
  sw r3, 0(r10)
  halt
h_push:
  lb r4, 0(r1)
  addi r1, r1, 1
  sw r4, 0(r2)
  addi r2, r2, 4
  j dispatch
h_add:
  addi r2, r2, -8
  lw r4, 0(r2)
  lw r5, 4(r2)
  add r4, r4, r5
  sw r4, 0(r2)
  addi r2, r2, 4
  j dispatch
h_sub:
  addi r2, r2, -8
  lw r4, 0(r2)
  lw r5, 4(r2)
  sub r4, r4, r5
  sw r4, 0(r2)
  addi r2, r2, 4
  j dispatch
h_mul:
  addi r2, r2, -8
  lw r4, 0(r2)
  lw r5, 4(r2)
  mul r4, r4, r5
  sw r4, 0(r2)
  addi r2, r2, 4
  j dispatch
h_dup:
  lw r4, -4(r2)
  sw r4, 0(r2)
  addi r2, r2, 4
  j dispatch
h_swap:
  lw r4, -4(r2)
  lw r5, -8(r2)
  sw r4, -8(r2)
  sw r5, -4(r2)
  j dispatch
h_out:
  addi r2, r2, -4
  lw r4, 0(r2)
  li r5, 31
  mul r3, r3, r5
  add r3, r3, r4
  j dispatch
.data
handlers: .word h_halt, h_push, h_add, h_sub, h_mul, h_dup, h_swap, h_out
bytecode:
)" + emit_values(".byte", code) +
           ".align 4\nvmstack: .space 256\n";
  };
  spec.golden = [](std::uint64_t seed, std::uint32_t size) {
    return format_results({interpret(make_bytecode(seed, size))});
  };
  return spec;
}

}  // namespace sofia::workloads
