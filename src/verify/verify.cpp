// The linter: rule catalog, diagnostics plumbing, and the two entry points
// (program-mode lint against a ProgramModel, image-only metadata lint).
#include "verify/verify.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "cfg/cfg.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "verify/dataflow.hpp"

namespace sofia::verify {

// ---------------------------------------------------------------------------
// Rule catalog and diagnostics
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {Rule::kImageMetadata, Severity::kError, "image-metadata",
       "image header (SOFIA flag, entry, reset prevPC, text base) must match "
       "the program model"},
      {Rule::kGeometry, Severity::kError, "geometry",
       "text must be a whole number of policy-sized blocks, each fully "
       "populated"},
      {Rule::kOmegaMismatch, Severity::kError, "omega-mismatch",
       "the image's program-version nonce must match the key material's"},
      {Rule::kGranularityMismatch, Severity::kError, "granularity-mismatch",
       "the image's CTR granularity must match the device profile's"},
      {Rule::kProfileMismatch, Severity::kError, "profile-mismatch",
       "no block matches its expected sealing: wrong keys, cipher, scheme or "
       "program version"},
      {Rule::kTamperedText, Severity::kError, "tampered-text",
       "a sealed instruction word differs from the re-derived sealing"},
      {Rule::kForgedHeader, Severity::kError, "forged-header",
       "only a block's MAC/header words differ from the re-derived sealing"},
      {Rule::kRelocatedBlock, Severity::kError, "relocated-block",
       "the image bytes are another block's valid sealing (splice/replay)"},
      {Rule::kEdgeSealMismatch, Severity::kError, "edge-seal-mismatch",
       "a control transfer arrives at an entry sealed for a different "
       "predecessor exit word"},
      {Rule::kAmbiguousPredecessor, Severity::kError, "ambiguous-predecessor",
       "one block entry is reached from several distinct predecessors, so "
       "its decryption counter is underdetermined"},
      {Rule::kInvalidEntry, Severity::kError, "invalid-entry",
       "a control transfer targets a word that is not a valid block entry "
       "for the target block's kind"},
      {Rule::kControlPlacement, Severity::kError, "control-placement",
       "a control-transfer instruction occupies a slot other than the "
       "block's exit slot"},
      {Rule::kStorePlacement, Severity::kError, "store-placement",
       "a store occupies a block word below BlockPolicy::store_min_word"},
      {Rule::kUndecodableInstruction, Severity::kError,
       "undecodable-instruction",
       "a sealed body word does not decode to any SR32 instruction"},
      {Rule::kStrayIndirectJump, Severity::kError, "stray-indirect-jump",
       "a non-ret jalr survived devirtualization; its targets cannot be "
       "verified statically"},
      {Rule::kUnreachableBlock, Severity::kWarning, "unreachable-block",
       "no control path from the reset entry reaches this sealed block"},
      {Rule::kStoreToText, Severity::kWarning, "store-to-text",
       "a store's bounded abstract address may fall inside the text "
       "section"},
      {Rule::kStoreToTextProven, Severity::kError, "store-to-text-proven",
       "a store's abstract address is proven to lie entirely inside the "
       "sealed text section"},
      {Rule::kUnresolvedIndirect, Severity::kError, "unresolved-indirect",
       "an indirect jump has no finite target set: nothing declared to "
       "gate it, or the dataflow proved a target outside the gated set"},
      {Rule::kIndirectTargetUnproven, Severity::kWarning,
       "indirect-target-unproven",
       "the dataflow engine could not independently bound a gated indirect "
       "jump; only the runtime gate confines it to the declared set"},
  };
  return catalog;
}

std::string_view to_string(Rule rule) {
  return rule_catalog()[static_cast<std::size_t>(rule)].name;
}

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "error";
}

namespace {

Severity severity_of(Rule rule) {
  return rule_catalog()[static_cast<std::size_t>(rule)].severity;
}

std::string hex32(std::uint32_t value) {
  char buf[11];
  std::snprintf(buf, sizeof buf, "0x%08x", value);
  return buf;
}

void sort_findings(std::vector<Finding>& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.block, a.insn, a.rule, a.message) <
                            std::tie(b.block, b.insn, b.rule, b.message);
                   });
}

}  // namespace

std::size_t Report::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [&](const Finding& f) {
        return f.severity == severity;
      }));
}

std::string Report::render_text() const {
  std::string out;
  for (const Finding& f : findings) {
    out += to_string(f.severity);
    out += '[';
    out += to_string(f.rule);
    out += ']';
    if (f.block >= 0) out += " block " + std::to_string(f.block);
    if (f.insn >= 0)
      out += " @ " + hex32(static_cast<std::uint32_t>(f.insn) * 4);
    out += ": ";
    out += f.message;
    out += '\n';
  }
  out += "lint: " + std::to_string(blocks_checked) + " block(s), " +
         std::to_string(entries_checked) + " entr(ies), " +
         std::to_string(edges_checked) + " edge(s) checked; " +
         std::to_string(count(Severity::kError)) + " error(s), " +
         std::to_string(count(Severity::kWarning)) + " warning(s)\n";
  return out;
}

void Report::to_json(json::Writer& w) const {
  w.begin_object();
  w.member("clean", clean());
  w.member("blocks_checked", blocks_checked);
  w.member("entries_checked", entries_checked);
  w.member("edges_checked", edges_checked);
  w.member("stores_checked", stores_checked);
  w.member("stores_proven_safe", stores_proven_safe);
  w.member("errors", static_cast<std::uint64_t>(count(Severity::kError)));
  w.member("warnings", static_cast<std::uint64_t>(count(Severity::kWarning)));
  w.key("indirects").begin_array();
  for (const IndirectTargets& t : indirects) {
    w.begin_object();
    w.member("block", static_cast<std::int64_t>(t.block));
    w.member("insn", static_cast<std::int64_t>(t.insn));
    w.key("declared").begin_array();
    for (const std::uint32_t a : t.declared) w.value(a);
    w.end_array();
    if (t.proven_finite) {
      w.key("proven").begin_array();
      for (const std::uint32_t a : t.proven) w.value(a);
      w.end_array();
    } else {
      w.key("proven").null();
    }
    w.end_object();
  }
  w.end_array();
  w.key("findings").begin_array();
  for (const Finding& f : findings) {
    w.begin_object();
    w.member("rule", to_string(f.rule));
    w.member("severity", to_string(f.severity));
    w.member("block", static_cast<std::int64_t>(f.block));
    w.member("insn", static_cast<std::int64_t>(f.insn));
    w.member("message", f.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::vector<Rule> error_rules(const Report& report) {
  std::vector<Rule> rules;
  for (const Finding& f : report.findings)
    if (f.severity == Severity::kError) rules.push_back(f.rule);
  std::sort(rules.begin(), rules.end());
  rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
  return rules;
}

const RuleInfo* find_rule(std::string_view name) {
  for (const RuleInfo& info : rule_catalog())
    if (info.name == name) return &info;
  return nullptr;
}

void to_sarif(const Report& report, std::string_view artifact,
              json::Writer& w) {
  const auto level_of = [](Severity s) -> std::string_view {
    switch (s) {
      case Severity::kError: return "error";
      case Severity::kWarning: return "warning";
      case Severity::kNote: return "note";
    }
    return "none";
  };
  w.begin_object();
  w.member("$schema",
           "https://json.schemastore.org/sarif-2.1.0.json");
  w.member("version", "2.1.0");
  w.key("runs").begin_array();
  w.begin_object();
  w.key("tool").begin_object();
  w.key("driver").begin_object();
  w.member("name", "sofia-lint");
  w.member("informationUri",
           "https://github.com/sofia-cfi/sofia#static-verifier");
  w.key("rules").begin_array();
  for (const RuleInfo& info : rule_catalog()) {
    w.begin_object();
    w.member("id", info.name);
    w.key("shortDescription").begin_object();
    w.member("text", info.description);
    w.end_object();
    w.key("defaultConfiguration").begin_object();
    w.member("level", level_of(info.severity));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();  // driver
  w.end_object();  // tool
  w.key("results").begin_array();
  for (const Finding& f : report.findings) {
    w.begin_object();
    w.member("ruleId", to_string(f.rule));
    w.member("ruleIndex",
             static_cast<std::uint64_t>(static_cast<std::size_t>(f.rule)));
    w.member("level", level_of(f.severity));
    w.key("message").begin_object();
    w.member("text", f.message);
    w.end_object();
    w.key("locations").begin_array();
    w.begin_object();
    w.key("physicalLocation").begin_object();
    w.key("artifactLocation").begin_object();
    w.member("uri", artifact);
    w.end_object();
    if (f.insn >= 0) {
      // SARIF regions are 1-based; map the absolute word address to a
      // stable synthetic "line".
      w.key("region").begin_object();
      w.member("startLine", f.insn + 1);
      w.end_object();
    }
    w.end_object();  // physicalLocation
    if (f.block >= 0) {
      w.key("logicalLocations").begin_array();
      w.begin_object();
      w.member("name", "block " + std::to_string(f.block));
      w.member("kind", "module");
      w.end_object();
      w.end_array();
    }
    w.end_object();  // location
    w.end_array();
    w.end_object();  // result
  }
  w.end_array();
  w.end_object();  // run
  w.end_array();
  w.end_object();
}

// ---------------------------------------------------------------------------
// Program-mode lint
// ---------------------------------------------------------------------------

namespace {

class Linter {
 public:
  Linter(const ProgramModel& model, const assembler::LoadImage& image,
         const DeviceSpec& spec, const Options& opts)
      : m_(model),
        img_(image),
        spec_(spec),
        opts_(opts),
        scheme_(scheme::get_scheme(spec.scheme)),  // throws for unknown names
        b_(model.policy.words_per_block),
        visited_(model.blocks.size(), false) {}

  Report run() {
    check_metadata();
    check_static();
    walk();
    check_entries();
    check_seals();
    check_unreachable();
    df_ = dataflow::analyze(m_);
    check_stores();
    check_indirects();
    sort_findings(report_.findings);
    return std::move(report_);
  }

 private:
  void add(Rule rule, std::int64_t block, std::int64_t insn,
           std::string message) {
    report_.findings.push_back(
        Finding{rule, severity_of(rule), block, insn, std::move(message)});
  }

  std::uint32_t expected_insts(const ModelBlock& blk) const {
    return blk.is_mux ? m_.policy.mux_insts() : m_.policy.exec_insts();
  }

  // ---- image header vs. model/spec ----------------------------------------

  void check_metadata() {
    if (!img_.sofia) {
      add(Rule::kImageMetadata, -1, -1,
          "image is not marked as a SOFIA image");
      seal_comparable_ = false;
    }
    if (img_.text_base != m_.text_base) {
      add(Rule::kImageMetadata, -1, -1,
          "image text base " + hex32(img_.text_base) +
              " does not match the model's " + hex32(m_.text_base));
      seal_comparable_ = false;
    }
    if (img_.entry != m_.entry)
      add(Rule::kImageMetadata, -1, -1,
          "image entry " + hex32(img_.entry) +
              " does not match the model's " + hex32(m_.entry));
    if (img_.entry_prev != m_.entry_prev_word)
      add(Rule::kImageMetadata, -1, -1,
          "image reset prevPC word " + hex32(img_.entry_prev) +
              " does not match the model's " + hex32(m_.entry_prev_word));
    if (img_.text.size() != m_.total_words()) {
      add(Rule::kGeometry, -1, -1,
          "image text holds " + std::to_string(img_.text.size()) +
              " word(s); the model lays out " +
              std::to_string(m_.total_words()));
      seal_comparable_ = false;
    }
    if (img_.omega != spec_.keys.omega) {
      add(Rule::kOmegaMismatch, -1, -1,
          "image omega " + std::to_string(img_.omega) +
              " does not match the key material's omega " +
              std::to_string(spec_.keys.omega));
      seal_comparable_ = false;
    }
    if (scheme_.traits().uses_granularity &&
        img_.per_pair != (spec_.granularity == crypto::Granularity::kPerPair)) {
      add(Rule::kGranularityMismatch, -1, -1,
          std::string("image was sealed ") +
              (img_.per_pair ? "per-pair" : "per-word") +
              " but the profile's granularity is " +
              std::string(crypto::to_string(spec_.granularity)));
      seal_comparable_ = false;
    }
  }

  // ---- per-block placement/decode rules (independent of reachability) -----

  void check_static() {
    for (std::size_t i = 0; i < m_.blocks.size(); ++i) {
      const ModelBlock& blk = m_.blocks[i];
      const std::uint32_t insts = expected_insts(blk);
      if (blk.inst_words.size() != insts) {
        add(Rule::kGeometry, static_cast<std::int64_t>(i), blk.base_word,
            "block holds " + std::to_string(blk.inst_words.size()) +
                " instruction word(s); a " +
                std::string(blk.is_mux ? "multiplexor" : "execution") +
                " block must hold " + std::to_string(insts));
        continue;
      }
      const std::uint32_t header = b_ - insts;
      for (std::uint32_t s = 0; s < insts; ++s) {
        const std::uint32_t word_index = header + s;
        const std::int64_t insn = blk.base_word + word_index;
        const auto inst = isa::decode(blk.inst_words[s]);
        if (!inst) {
          add(Rule::kUndecodableInstruction, static_cast<std::int64_t>(i),
              insn,
              "word " + hex32(blk.inst_words[s]) +
                  " does not decode to an SR32 instruction");
          continue;
        }
        if (isa::is_control(inst->op) && s + 1 != insts)
          add(Rule::kControlPlacement, static_cast<std::int64_t>(i), insn,
              std::string(isa::mnemonic(inst->op)) +
                  " occupies instruction slot " + std::to_string(s) +
                  "; control may only occupy the exit slot");
        if (isa::is_store(inst->op) &&
            word_index < m_.policy.store_min_word)
          add(Rule::kStorePlacement, static_cast<std::int64_t>(i), insn,
              "store at block word " + std::to_string(word_index) +
                  "; the policy confines stores to words >= " +
                  std::to_string(m_.policy.store_min_word));
        if (inst->op == isa::Opcode::kJalr && !cfg::is_ret(*inst) &&
            !(scheme_.traits().gates_indirect && !blk.jalr_targets.empty()))
          add(Rule::kStrayIndirectJump, static_cast<std::int64_t>(i), insn,
              "indirect jump survived devirtualization; its targets cannot "
              "be verified statically");
      }
    }
  }

  // ---- block-graph walk from the reset entry ------------------------------

  /// Resolve one control transfer to (block, entry word), recording the
  /// arriving predecessor exit word. Invalid targets become findings
  /// anchored at the transferring instruction.
  void resolve(std::int64_t from_block, std::int64_t from_word,
               std::int64_t target_addr, std::uint32_t prev,
               const std::string& what) {
    ++report_.edges_checked;
    const std::int64_t base = m_.text_base;
    const std::int64_t limit =
        base + static_cast<std::int64_t>(m_.total_words()) * 4;
    if (target_addr % 4 != 0 || target_addr < base || target_addr >= limit) {
      add(Rule::kInvalidEntry, from_block, from_word,
          what + " targets " +
              hex32(static_cast<std::uint32_t>(target_addr)) +
              ", outside the sealed text section");
      return;
    }
    const auto rel = static_cast<std::uint32_t>((target_addr - base) / 4);
    const std::uint32_t to = rel / b_;
    const std::uint32_t offset = rel % b_;
    const ModelBlock& tb = m_.blocks[to];
    const bool valid_offset =
        tb.is_mux ? (offset == 1 || offset == 2) : offset == 0;
    if (!valid_offset) {
      add(Rule::kInvalidEntry, from_block, from_word,
          what + " targets word offset " + std::to_string(offset) +
              " of block " + std::to_string(to) + ", which is " +
              (tb.is_mux ? "a multiplexor block (valid entries: 1, 2)"
                         : "an execution block (valid entry: 0)"));
      return;
    }
    const std::uint32_t entry_word = offset == 2 ? 1 : 0;
    entries_[{to, entry_word}].insert(prev);
    if (!visited_[to]) {
      visited_[to] = true;
      queue_.push_back(to);
    }
  }

  void walk() {
    if (m_.blocks.empty()) return;
    resolve(-1, -1, m_.entry, m_.entry_prev_word, "the reset entry");
    while (!queue_.empty()) {
      const std::uint32_t i = queue_.back();
      queue_.pop_back();
      const ModelBlock& blk = m_.blocks[i];
      if (blk.inst_words.size() != expected_insts(blk)) continue;
      const auto exit_inst = isa::decode(blk.inst_words.back());
      if (!exit_inst) continue;  // flagged by check_static
      const isa::Instruction& in = *exit_inst;
      const std::int64_t exit_word = blk.base_word + b_ - 1;
      const std::int64_t fall = (blk.base_word + b_) * std::int64_t{4};
      const auto prev = static_cast<std::uint32_t>(exit_word);
      if (isa::is_cond_branch(in.op)) {
        resolve(i, exit_word, (exit_word + in.imm) * 4, prev, "branch");
        resolve(i, exit_word, fall, prev, "branch fall-through");
      } else if (in.op == isa::Opcode::kJal) {
        resolve(i, exit_word, (exit_word + in.imm) * 4, prev,
                in.rd == isa::kRegZero ? "jump" : "call");
      } else if (in.op == isa::Opcode::kJalr) {
        if (cfg::is_ret(in)) {
          for (const std::uint32_t target : blk.ret_targets)
            resolve(i, exit_word, target, prev, "return");
        } else {
          // Gated indirect jump: every declared target is entered through
          // its canonical indirect entry, sealed against the sentinel.
          // (Un-gated stray jalr are flagged by check_static; their
          // declared sets are empty and nothing is followed here.)
          for (const std::uint32_t target : blk.jalr_targets)
            resolve(i, exit_word, target, assembler::kIndirectPrevWord,
                    "indirect jump");
        }
      } else if (in.op != isa::Opcode::kHalt) {
        resolve(i, exit_word, fall, prev, "fall-through");
      }
    }
  }

  // ---- entry predecessor consistency --------------------------------------

  void check_entries() {
    report_.entries_checked = static_cast<std::uint32_t>(entries_.size());
    for (const auto& [key, prevs] : entries_) {
      const auto [block, entry_word] = key;
      const ModelBlock& blk = m_.blocks[block];
      const std::uint32_t declared =
          entry_word == 0 ? blk.pred1_word : blk.pred2_word;
      const std::int64_t insn = blk.base_word + entry_word;
      if (prevs.size() > 1)
        add(Rule::kAmbiguousPredecessor, block, insn,
            "entry word " + std::to_string(entry_word) + " is reached from " +
                std::to_string(prevs.size()) +
                " distinct predecessors; its decryption counter is "
                "underdetermined");
      for (const std::uint32_t prev : prevs)
        if (prev != declared)
          add(Rule::kEdgeSealMismatch, block, insn,
              "entry is sealed for predecessor exit word " + hex32(declared) +
                  " but is reached from exit word " + hex32(prev));
    }
  }

  // ---- seal comparison -----------------------------------------------------

  void check_seals() {
    if (!seal_comparable_) return;
    const auto sealer = scheme_.make_sealer(spec_.keys, spec_.granularity);
    std::vector<std::vector<std::uint32_t>> expected(m_.blocks.size());
    for (std::size_t i = 0; i < m_.blocks.size(); ++i) {
      const ModelBlock& blk = m_.blocks[i];
      if (blk.inst_words.size() != expected_insts(blk)) continue;
      expected[i] = sealer->seal(
          scheme::BlockInfo{blk.is_mux, blk.base_word, blk.pred1_word,
                            blk.pred2_word, blk.entry1_label,
                            blk.entry2_label, blk.exit_label},
          blk.inst_words);
    }

    std::vector<Finding> seal_findings;
    std::uint32_t checked = 0;
    std::uint32_t mismatched = 0;
    bool any_relocated = false;
    for (std::size_t i = 0; i < m_.blocks.size(); ++i) {
      if (expected[i].empty()) continue;
      ++checked;
      const std::uint32_t* actual = img_.text.data() + i * b_;
      if (std::equal(expected[i].begin(), expected[i].end(), actual)) continue;
      ++mismatched;
      const ModelBlock& blk = m_.blocks[i];

      // A different block's valid sealing at this slot is a splice/replay.
      std::int64_t donor = -1;
      for (std::size_t j = 0; j < expected.size(); ++j) {
        if (j == i || expected[j].size() != b_) continue;
        if (std::equal(expected[j].begin(), expected[j].end(), actual)) {
          donor = static_cast<std::int64_t>(j);
          break;
        }
      }
      if (donor >= 0) {
        any_relocated = true;
        seal_findings.push_back(Finding{
            Rule::kRelocatedBlock, Severity::kError,
            static_cast<std::int64_t>(i), blk.base_word,
            "image bytes are the valid sealing of block " +
                std::to_string(donor) + " (splice or replay)"});
        continue;
      }

      const std::uint32_t header =
          b_ - static_cast<std::uint32_t>(blk.inst_words.size());
      std::uint32_t first_diff = 0;
      while (actual[first_diff] == expected[i][first_diff]) ++first_diff;
      const bool body_clean =
          std::equal(expected[i].begin() + header, expected[i].end(),
                     actual + header);
      if (body_clean)
        seal_findings.push_back(Finding{
            Rule::kForgedHeader, Severity::kError,
            static_cast<std::int64_t>(i),
            static_cast<std::int64_t>(blk.base_word) + first_diff,
            "header word " + std::to_string(first_diff) +
                " differs from the re-derived sealing"});
      else
        seal_findings.push_back(Finding{
            Rule::kTamperedText, Severity::kError,
            static_cast<std::int64_t>(i),
            static_cast<std::int64_t>(blk.base_word) + first_diff,
            "sealed word " + std::to_string(first_diff) +
                " differs from the re-derived sealing"});
    }

    report_.blocks_checked = checked;
    // Every block failing with no relocation evidence means the key
    // material, cipher, scheme or program version is wrong — one finding,
    // not one per block.
    if (checked >= 2 && mismatched == checked && !any_relocated) {
      add(Rule::kProfileMismatch, -1, -1,
          "all " + std::to_string(checked) +
              " block(s) fail to match their expected sealing under scheme '" +
              spec_.scheme + "'; wrong keys, cipher, scheme or program "
              "version");
      return;
    }
    for (auto& f : seal_findings) report_.findings.push_back(std::move(f));
  }

  // ---- whole-image warnings ------------------------------------------------

  void check_unreachable() {
    if (!opts_.unreachable_warnings) return;
    for (std::size_t i = 0; i < m_.blocks.size(); ++i)
      if (!visited_[i])
        add(Rule::kUnreachableBlock, static_cast<std::int64_t>(i),
            m_.blocks[i].base_word,
            std::string(m_.blocks[i].synthesized ? "synthesized block"
                                                 : "block") +
                " is sealed but no control path from the reset entry "
                "reaches it");
  }

  // ---- dataflow consumers --------------------------------------------------

  /// Classify every store by its abstract effective address: proven inside
  /// text is an error, a bounded range that may reach text is a warning,
  /// proven disjoint is silently safe. Unbounded (top) addresses carry no
  /// static information and are left to the runtime's seal integrity.
  void check_stores() {
    const std::uint32_t base = m_.text_base;
    const std::uint32_t limit =
        base + static_cast<std::uint32_t>(std::uint64_t{m_.total_words()} * 4);
    for (const dataflow::StoreFact& st : df_.stores) {
      ++report_.stores_checked;
      if (st.addr.proven_outside(base, limit)) {
        ++report_.stores_proven_safe;
        continue;
      }
      if (st.addr.proven_in(base, limit)) {
        add(Rule::kStoreToTextProven, st.block, st.word_addr,
            "store is proven to write inside the sealed text section "
            "(address range " + hex32(st.addr.min()) + ".." +
                hex32(st.addr.max()) + ")");
      } else if (st.addr.bounded() && opts_.store_to_text_warnings) {
        add(Rule::kStoreToText, st.block, st.word_addr,
            "store address range " + hex32(st.addr.min()) + ".." +
                hex32(st.addr.max()) +
                " may reach the sealed text section");
      }
    }
  }

  /// Cross-check every surviving indirect jump's dataflow-proven target
  /// set against the declared (sealed) gated set, and record both for the
  /// sofia-lint-v2 document.
  void check_indirects() {
    const bool gates = scheme_.traits().gates_indirect;
    for (const dataflow::IndirectFact& f : df_.indirects) {
      const ModelBlock& blk = m_.blocks[f.block];
      IndirectTargets rec;
      rec.block = f.block;
      rec.insn = f.word_addr;
      rec.declared = blk.jalr_targets;
      if (const auto proven = f.target.enumerate(kMaxProvenTargets)) {
        rec.proven_finite = true;
        rec.proven = *proven;
      }
      if (gates && !blk.jalr_targets.empty()) {
        if (rec.proven_finite) {
          for (const std::uint32_t t : rec.proven)
            if (!std::binary_search(rec.declared.begin(), rec.declared.end(),
                                    t))
              add(Rule::kUnresolvedIndirect, f.block, f.word_addr,
                  "dataflow proves target " + hex32(t) +
                      " is reachable but it is outside the declared gated "
                      "set");
        } else {
          add(Rule::kIndirectTargetUnproven, f.block, f.word_addr,
              "target set could not be independently proven; the runtime "
              "gate confines it to the " +
                  std::to_string(rec.declared.size()) +
                  " declared target(s)");
        }
      } else if (gates) {
        add(Rule::kUnresolvedIndirect, f.block, f.word_addr,
            "indirect jump has no declared target set to gate");
      } else if (!rec.proven_finite) {
        // Non-gating scheme: check_static already errors on the stray
        // jalr; an unbounded target set is a second, distinct fact.
        add(Rule::kUnresolvedIndirect, f.block, f.word_addr,
            "indirect jump target set is unbounded; no finite "
            "over-approximation exists");
      }
      report_.indirects.push_back(std::move(rec));
    }
  }

  /// Largest proven target set recorded per jalr; a bound this size is no
  /// longer a meaningful forward-edge statement.
  static constexpr std::size_t kMaxProvenTargets = 64;

  const ProgramModel& m_;
  const assembler::LoadImage& img_;
  const DeviceSpec& spec_;
  const Options& opts_;
  const scheme::ProtectionScheme& scheme_;
  const std::uint32_t b_;

  dataflow::DataflowResult df_;
  Report report_;
  bool seal_comparable_ = true;
  std::vector<bool> visited_;
  std::vector<std::uint32_t> queue_;
  /// (block id, entry word index) -> distinct arriving predecessor words.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::set<std::uint32_t>>
      entries_;
};

}  // namespace

Report lint(const ProgramModel& model, const assembler::LoadImage& image,
            const DeviceSpec& spec, const Options& opts) {
  return Linter(model, image, spec, opts).run();
}

// ---------------------------------------------------------------------------
// Image-only lint
// ---------------------------------------------------------------------------

Report lint(const assembler::LoadImage& image, const DeviceSpec& spec,
            const Options& opts) {
  (void)opts;
  const scheme::ProtectionScheme& sch = scheme::get_scheme(spec.scheme);
  Report r;
  const auto add = [&](Rule rule, std::string message) {
    r.findings.push_back(
        Finding{rule, severity_of(rule), -1, -1, std::move(message)});
  };

  if (!image.sofia) add(Rule::kImageMetadata, "image is not marked as a SOFIA image");
  const std::uint32_t b = spec.policy.words_per_block;
  if (image.text.empty() || image.text.size() % b != 0)
    add(Rule::kGeometry,
        "image text holds " + std::to_string(image.text.size()) +
            " word(s), not a positive multiple of the " + std::to_string(b) +
            "-word block size");
  if (image.entry_prev != assembler::kResetPrevWord)
    add(Rule::kImageMetadata,
        "image reset prevPC word " + hex32(image.entry_prev) +
            " is not the architectural reset value " +
            hex32(assembler::kResetPrevWord));
  const std::uint64_t limit =
      image.text_base + std::uint64_t{4} * image.text.size();
  if (image.entry % 4 != 0 || image.entry < image.text_base ||
      image.entry >= limit) {
    add(Rule::kInvalidEntry, "image entry " + hex32(image.entry) +
                                 " falls outside the text section");
  } else if ((image.entry - image.text_base) / 4 % b > 2) {
    add(Rule::kInvalidEntry,
        "image entry " + hex32(image.entry) + " targets word offset " +
            std::to_string((image.entry - image.text_base) / 4 % b) +
            ", which no block kind accepts");
  }
  if (image.omega != spec.keys.omega)
    add(Rule::kOmegaMismatch,
        "image omega " + std::to_string(image.omega) +
            " does not match the key material's omega " +
            std::to_string(spec.keys.omega));
  if (sch.traits().uses_granularity &&
      image.per_pair != (spec.granularity == crypto::Granularity::kPerPair))
    add(Rule::kGranularityMismatch,
        std::string("image was sealed ") +
            (image.per_pair ? "per-pair" : "per-word") +
            " but the profile's granularity is " +
            std::string(crypto::to_string(spec.granularity)));

  sort_findings(r.findings);
  return r;
}

}  // namespace sofia::verify
