// The abstract value domain for the static dataflow engine: a reduced
// product of a small constant set and a strided interval over unsigned
// 32-bit words. Small sets keep exact precision through the `la`/`li`
// idioms and table loads (a dispatch target is one of eight handler
// addresses, not "somewhere in [a,b]"); the strided interval catches
// loop-carried pointers (a table scan advances in stride-4 steps) without
// losing alignment. Everything is a *may* analysis: an AbsVal
// over-approximates the set of concrete values a register can hold, so any
// "proven" predicate (proven_in / proven_outside) is sound for the lint's
// error-severity claims.
//
// The lattice is deliberately shallow:
//
//     bottom  <  {c1..ck} (k <= kMaxConsts)  <  lo..hi (stride s)  <  top
//
// Joins that would grow a constant set past kMaxConsts collapse it to the
// enclosing strided interval (stride = gcd of the gaps). Widening snaps
// interval bounds outward to the caller's threshold set (section
// boundaries: 0, text limit, data base, data limit, stack top) before
// giving up to top, so one extra worklist pass pins "below the text
// section" / "inside the data section" facts that plain interval widening
// would blow straight past. Arithmetic that can wrap 2^32 goes to top
// rather than modelling wraparound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <vector>

namespace sofia::verify {

class AbsVal {
 public:
  /// Largest constant set carried exactly; joins beyond this collapse to a
  /// strided interval. 16 covers every dispatch table in the workload zoo.
  static constexpr std::size_t kMaxConsts = 16;

  AbsVal() = default;  ///< bottom

  static AbsVal bottom() { return AbsVal(); }
  static AbsVal top() {
    AbsVal v;
    v.kind_ = Kind::kTop;
    return v;
  }
  static AbsVal constant(std::uint32_t c) {
    AbsVal v;
    v.kind_ = Kind::kConsts;
    v.consts_ = {c};
    return v;
  }
  /// The set {lo, lo+stride, ..., hi}; requires lo <= hi and
  /// (hi - lo) % stride == 0 (callers pass well-formed triples).
  static AbsVal interval(std::uint32_t lo, std::uint32_t hi,
                         std::uint32_t stride = 1) {
    if (lo == hi) return constant(lo);
    AbsVal v;
    v.kind_ = Kind::kInterval;
    v.lo_ = lo;
    v.hi_ = hi;
    v.stride_ = stride == 0 ? 1 : stride;
    return v;
  }
  static AbsVal consts(std::vector<std::uint32_t> values) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.empty()) return bottom();
    if (values.size() > kMaxConsts) return hull(values);
    AbsVal v;
    v.kind_ = Kind::kConsts;
    v.consts_ = std::move(values);
    return v;
  }

  bool is_bottom() const { return kind_ == Kind::kBottom; }
  bool is_top() const { return kind_ == Kind::kTop; }
  /// A single known value, if this is exactly one constant.
  std::optional<std::uint32_t> as_constant() const {
    if (kind_ == Kind::kConsts && consts_.size() == 1) return consts_[0];
    return std::nullopt;
  }

  /// Smallest / largest concrete value (valid unless bottom/top).
  std::uint32_t min() const {
    return kind_ == Kind::kConsts ? consts_.front() : lo_;
  }
  std::uint32_t max() const {
    return kind_ == Kind::kConsts ? consts_.back() : hi_;
  }

  /// Enumerate every concrete value when the set is finite and holds at
  /// most max_count members; nullopt otherwise (including top/bottom).
  std::optional<std::vector<std::uint32_t>> enumerate(
      std::size_t max_count) const {
    if (kind_ == Kind::kConsts) {
      if (consts_.size() > max_count) return std::nullopt;
      return consts_;
    }
    if (kind_ != Kind::kInterval) return std::nullopt;
    const std::uint64_t count =
        (std::uint64_t{hi_} - lo_) / stride_ + 1;
    if (count > max_count) return std::nullopt;
    std::vector<std::uint32_t> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t v = lo_; v <= hi_; v += stride_)
      out.push_back(static_cast<std::uint32_t>(v));
    return out;
  }

  // ---- range predicates (half-open byte ranges [lo, hi)) -----------------

  /// Every concrete value lies inside [lo, hi). False for top/bottom.
  bool proven_in(std::uint32_t lo, std::uint32_t hi) const {
    if (kind_ == Kind::kBottom || kind_ == Kind::kTop) return false;
    return min() >= lo && max() < hi;
  }

  /// No concrete value lies inside [lo, hi). False for top/bottom.
  /// For constant sets this checks each member, so a set straddling the
  /// range (e.g. {below, above}) is still proven disjoint.
  bool proven_outside(std::uint32_t lo, std::uint32_t hi) const {
    switch (kind_) {
      case Kind::kBottom:
      case Kind::kTop: return false;
      case Kind::kConsts:
        return std::none_of(consts_.begin(), consts_.end(),
                            [&](std::uint32_t c) { return c >= lo && c < hi; });
      case Kind::kInterval:
        if (hi_ < lo || lo_ >= hi) return true;
        if (stride_ > 1) {
          // Walkable gap check only when cheap; otherwise conservatively
          // assume the interval touches the range.
          for (std::uint64_t v = lo_; v <= hi_; v += stride_)
            if (v >= lo && v < hi) return false;
          return true;
        }
        return false;
    }
    return false;
  }

  /// May any concrete value lie inside [lo, hi)? True for top.
  bool may_intersect(std::uint32_t lo, std::uint32_t hi) const {
    if (kind_ == Kind::kBottom) return false;
    if (kind_ == Kind::kTop) return true;
    return !proven_outside(lo, hi);
  }

  // ---- lattice -------------------------------------------------------------

  friend bool operator==(const AbsVal& a, const AbsVal& b) {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
      case Kind::kBottom:
      case Kind::kTop: return true;
      case Kind::kConsts: return a.consts_ == b.consts_;
      case Kind::kInterval:
        return a.lo_ == b.lo_ && a.hi_ == b.hi_ && a.stride_ == b.stride_;
    }
    return false;
  }

  static AbsVal join(const AbsVal& a, const AbsVal& b) {
    if (a.kind_ == Kind::kBottom) return b;
    if (b.kind_ == Kind::kBottom) return a;
    if (a.kind_ == Kind::kTop || b.kind_ == Kind::kTop) return top();
    if (a.kind_ == Kind::kConsts && b.kind_ == Kind::kConsts) {
      std::vector<std::uint32_t> merged = a.consts_;
      merged.insert(merged.end(), b.consts_.begin(), b.consts_.end());
      return consts(std::move(merged));
    }
    // At least one interval: hull with gcd stride.
    const std::uint32_t lo = std::min(a.min(), b.min());
    const std::uint32_t hi = std::max(a.max(), b.max());
    std::uint32_t stride = std::gcd(a.stride_of(), b.stride_of());
    stride = std::gcd(stride, a.min() > lo ? a.min() - lo : b.min() - lo);
    if (stride == 0) stride = 1;
    if ((hi - lo) % stride != 0) stride = std::gcd(stride, hi - lo);
    return interval(lo, hi, stride == 0 ? 1 : stride);
  }

  /// Widening: when `next` escapes `prev`'s bounds, snap the escaping bound
  /// outward to the nearest threshold (sorted ascending) instead of taking
  /// the join; a second escape past the last threshold goes to top.
  static AbsVal widen(const AbsVal& prev, const AbsVal& next,
                      const std::vector<std::uint32_t>& thresholds) {
    const AbsVal j = join(prev, next);
    if (j == prev || prev.is_top()) return prev;
    if (j.is_top() || prev.is_bottom()) return j;
    // Constant sets may keep growing up to kMaxConsts without widening.
    if (j.kind_ == Kind::kConsts) return j;
    std::uint32_t lo = j.min();
    std::uint32_t hi = j.max();
    if (!prev.is_bottom() && lo < prev.min()) {
      // Largest threshold <= lo, else 0.
      std::uint32_t snapped = 0;
      for (const std::uint32_t t : thresholds)
        if (t <= lo) snapped = t;
      lo = snapped;
    }
    if (!prev.is_bottom() && hi > prev.max()) {
      // Smallest threshold > hi, else top.
      std::uint32_t snapped = 0;
      bool found = false;
      for (const std::uint32_t t : thresholds)
        if (t > hi) {
          snapped = t;
          found = true;
          break;
        }
      if (!found) return top();
      hi = snapped;
    }
    return interval(lo, hi, 1);
  }

  // ---- transfer functions --------------------------------------------------

  static AbsVal add(const AbsVal& a, const AbsVal& b) {
    return arith(a, b, [](std::uint64_t x, std::uint64_t y) { return x + y; });
  }
  static AbsVal sub(const AbsVal& a, const AbsVal& b) {
    // Interval minus a constant keeps the shape when no borrow is possible.
    if (const auto c = b.as_constant(); c && a.kind_ == Kind::kInterval &&
                                        a.min() >= *c)
      return interval(a.min() - *c, a.max() - *c, a.stride_);
    // Otherwise unsigned borrows wrap; only exact constant pairs are safe
    // to evaluate (32-bit wrap is intentional there — `addi r, r, -8`).
    return exact(a, b, [](std::uint32_t x, std::uint32_t y) { return x - y; });
  }
  static AbsVal mul(const AbsVal& a, const AbsVal& b) {
    return arith(a, b, [](std::uint64_t x, std::uint64_t y) { return x * y; });
  }
  static AbsVal and_(const AbsVal& a, const AbsVal& b) {
    const AbsVal e =
        exact(a, b, [](std::uint32_t x, std::uint32_t y) { return x & y; });
    if (!e.is_top()) return e;
    // x & y <= min(max(x), max(y)) for unsigned operands.
    if (a.bounded() && b.bounded())
      return interval(0, std::min(a.max(), b.max()));
    if (a.bounded()) return interval(0, a.max());
    if (b.bounded()) return interval(0, b.max());
    return top();
  }
  static AbsVal or_(const AbsVal& a, const AbsVal& b) {
    return exact(a, b, [](std::uint32_t x, std::uint32_t y) { return x | y; });
  }
  static AbsVal xor_(const AbsVal& a, const AbsVal& b) {
    return exact(a, b, [](std::uint32_t x, std::uint32_t y) { return x ^ y; });
  }
  static AbsVal shl(const AbsVal& a, const AbsVal& sh) {
    const auto c = sh.as_constant();
    if (!c) return exact(a, sh, [](std::uint32_t x, std::uint32_t y) {
      return x << (y & 31);
    });
    const std::uint32_t s = *c & 31;
    if (a.kind_ == Kind::kInterval) {
      // Shape-preserving shift: a stride-k interval becomes stride-(k<<s).
      if ((std::uint64_t{a.hi_} << s) >= (std::uint64_t{1} << 32))
        return top();
      return interval(a.lo_ << s, a.hi_ << s, a.stride_ << s);
    }
    return arith(a, constant(1u << s),
                 [](std::uint64_t x, std::uint64_t y) { return x * y; });
  }
  static AbsVal shr(const AbsVal& a, const AbsVal& sh) {
    const auto c = sh.as_constant();
    if (c && a.bounded()) {
      const std::uint32_t s = *c & 31;
      return interval(a.min() >> s, a.max() >> s);
    }
    return exact(a, sh, [](std::uint32_t x, std::uint32_t y) {
      return x >> (y & 31);
    });
  }

  /// Interval with known bounds (constants or interval kinds).
  bool bounded() const {
    return kind_ == Kind::kConsts || kind_ == Kind::kInterval;
  }

 private:
  enum class Kind : std::uint8_t { kBottom, kConsts, kInterval, kTop };

  std::uint32_t stride_of() const {
    if (kind_ == Kind::kInterval) return stride_;
    if (kind_ == Kind::kConsts && consts_.size() >= 2) {
      std::uint32_t g = 0;
      for (std::size_t i = 1; i < consts_.size(); ++i)
        g = std::gcd(g, consts_[i] - consts_[i - 1]);
      return g == 0 ? 1 : g;
    }
    return 1;  // single constant: any stride divides a point
  }

  static AbsVal hull(const std::vector<std::uint32_t>& sorted) {
    std::uint32_t g = 0;
    for (std::size_t i = 1; i < sorted.size(); ++i)
      g = std::gcd(g, sorted[i] - sorted[i - 1]);
    return interval(sorted.front(), sorted.back(), g == 0 ? 1 : g);
  }

  /// Pairwise evaluation over two constant sets; anything else is top.
  template <typename F>
  static AbsVal exact(const AbsVal& a, const AbsVal& b, F f) {
    if (a.kind_ == Kind::kBottom || b.kind_ == Kind::kBottom) return bottom();
    if (a.kind_ != Kind::kConsts || b.kind_ != Kind::kConsts) return top();
    std::vector<std::uint32_t> out;
    out.reserve(a.consts_.size() * b.consts_.size());
    for (const std::uint32_t x : a.consts_)
      for (const std::uint32_t y : b.consts_) out.push_back(f(x, y));
    return consts(std::move(out));
  }

  /// Monotone unsigned arithmetic in 64 bits; a result past 2^32 (i.e. a
  /// potential wrap) goes to top. Constant sets stay exact, intervals
  /// combine bound-wise with gcd strides.
  template <typename F>
  static AbsVal arith(const AbsVal& a, const AbsVal& b, F f) {
    if (a.kind_ == Kind::kBottom || b.kind_ == Kind::kBottom) return bottom();
    if (a.kind_ == Kind::kTop || b.kind_ == Kind::kTop) return top();
    constexpr std::uint64_t kLimit = std::uint64_t{1} << 32;
    if (f(a.max(), b.max()) >= kLimit) return top();
    if (a.kind_ == Kind::kConsts && b.kind_ == Kind::kConsts)
      return exact(a, b, [&](std::uint32_t x, std::uint32_t y) {
        return static_cast<std::uint32_t>(f(x, y));
      });
    const auto lo = static_cast<std::uint32_t>(f(a.min(), b.min()));
    const auto hi = static_cast<std::uint32_t>(f(a.max(), b.max()));
    if (lo > hi) return top();  // non-monotone corner (e.g. mul by 0-set)
    std::uint32_t stride = std::gcd(a.stride_of(), b.stride_of());
    if (stride == 0 || (hi - lo) % stride != 0)
      stride = std::gcd(stride, hi - lo);
    return interval(lo, hi, stride == 0 ? 1 : stride);
  }

  Kind kind_ = Kind::kBottom;
  std::vector<std::uint32_t> consts_;  ///< sorted, unique (kConsts)
  std::uint32_t lo_ = 0, hi_ = 0, stride_ = 1;  ///< (kInterval)
};

}  // namespace sofia::verify
