// Builds the linter's trusted reference (ProgramModel) from a completed
// transform: block geometry and declared predecessor words straight from
// the layout, return targets from the normalized program's CFG (the link
// register of every call site), and store hazards from straight-line
// constant propagation over the placed (fixed-up) instructions.
#include <algorithm>
#include <array>
#include <optional>
#include <utility>

#include "cfg/cfg.hpp"
#include "support/error.hpp"
#include "verify/verify.hpp"

namespace sofia::verify {

namespace {

/// Constant propagation over one straight-line run: tracks registers whose
/// value is statically known (r0, lui/ori/addi/add chains — the `la` and
/// `li` expansions) and records every store whose base register is known.
/// Runs never span a control transfer, so no merging is needed.
class ConstProp {
 public:
  ConstProp() { known_[isa::kRegZero] = 0u; }

  /// Feed one instruction (absolute word address + decoded form); returns
  /// the effective address when it is a store with a known base.
  std::optional<StoreHazard> step(std::uint32_t word_addr,
                                  const isa::Instruction& in) {
    if (isa::is_store(in.op)) {
      if (!known_[in.ra]) return std::nullopt;
      return StoreHazard{word_addr, *known_[in.ra] +
                                        static_cast<std::uint32_t>(in.imm)};
    }
    if (!isa::writes_rd(in.op) || in.rd == isa::kRegZero) return std::nullopt;
    std::optional<std::uint32_t> v;
    const auto ra = known_[in.ra];
    const auto imm = static_cast<std::uint32_t>(in.imm);
    switch (in.op) {
      case isa::Opcode::kLui: v = imm << 14; break;
      case isa::Opcode::kOri: if (ra) v = *ra | imm; break;
      case isa::Opcode::kXori: if (ra) v = *ra ^ imm; break;
      case isa::Opcode::kAndi: if (ra) v = *ra & imm; break;
      case isa::Opcode::kAddi: if (ra) v = *ra + imm; break;
      case isa::Opcode::kAdd:
        if (ra && known_[in.rb]) v = *ra + *known_[in.rb];
        break;
      default: break;  // anything else makes rd unknown
    }
    known_[in.rd] = v;
    return std::nullopt;
  }

 private:
  std::array<std::optional<std::uint32_t>, isa::kNumRegs> known_{};
};

}  // namespace

ProgramModel model_of(const xform::TransformResult& t) {
  const xform::BlockLayout& layout = t.layout;
  const std::uint32_t b = layout.policy().words_per_block;

  ProgramModel m;
  m.policy = layout.policy();
  m.text_base = layout.text_base_word() * 4;
  m.entry = layout.entry_target_addr(layout.reset_entry());
  m.entry_prev_word = assembler::kResetPrevWord;

  m.blocks.reserve(layout.blocks().size());
  for (const xform::Block& blk : layout.blocks()) {
    ModelBlock mb;
    mb.is_mux = blk.kind == xform::BlockKind::kMux;
    mb.base_word = blk.base_word;
    mb.pred1_word = blk.pred1_word;
    mb.pred2_word = blk.pred2_word;
    mb.synthesized = blk.synthesized;
    mb.inst_words.reserve(blk.insts.size());
    for (const xform::PlacedInst& pi : blk.insts)
      mb.inst_words.push_back(isa::encode(pi.inst));
    m.blocks.push_back(std::move(mb));
  }

  // The rest needs the same CFG the packer consumed. With unreachable code
  // elided, some source instructions have no placement — their lookups
  // throw, which simply excludes them from the model.
  const cfg::Cfg g = cfg::Cfg::build(t.normalized);

  const auto block_of = [&](std::uint32_t src) -> std::optional<std::uint32_t> {
    try {
      const std::uint32_t word = layout.block_base_addr(src) / 4;
      return (word - layout.text_base_word()) / b;
    } catch (const std::exception&) {
      return std::nullopt;
    }
  };

  // Return targets: a ret transfers to lr, and every call site linked
  // lr = its own placed address + 4 (word 0 of the block after the call).
  for (const cfg::FunctionInfo& fn : g.functions()) {
    std::vector<std::uint32_t> targets;
    for (const std::uint32_t call : fn.call_sites) {
      try {
        targets.push_back(layout.placed_addr(call) + 4);
      } catch (const std::exception&) {
        // call site inside elided code
      }
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    if (targets.empty()) continue;
    for (const std::uint32_t r : fn.rets)
      if (const auto blk = block_of(r)) m.blocks[*blk].ret_targets = targets;
  }

  // Store hazards: propagate constants through each run using the *placed*
  // instructions (their immediates carry the post-layout address fixups;
  // the normalized program's do not). The placed word of a source
  // instruction maps back into the model block built above.
  const auto placed_inst = [&](std::uint32_t src)
      -> std::optional<std::pair<std::uint32_t, isa::Instruction>> {
    try {
      const std::uint32_t word = layout.placed_addr(src) / 4;
      const std::uint32_t rel = word - layout.text_base_word();
      const ModelBlock& mb = m.blocks[rel / b];
      const std::uint32_t header =
          b - static_cast<std::uint32_t>(mb.inst_words.size());
      const auto inst = isa::decode(mb.inst_words[rel % b - header]);
      if (!inst) return std::nullopt;
      return std::make_pair(word, *inst);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  };

  for (const std::uint32_t leader : g.leaders()) {
    ConstProp prop;
    for (std::uint32_t i = leader; i < g.run_end(leader); ++i) {
      const auto pi = placed_inst(i);
      if (!pi) break;  // elided run
      if (const auto hazard = prop.step(pi->first, pi->second))
        m.store_hazards.push_back(*hazard);
    }
  }
  std::sort(m.store_hazards.begin(), m.store_hazards.end(),
            [](const StoreHazard& a, const StoreHazard& b2) {
              return a.word_addr < b2.word_addr;
            });

  return m;
}

}  // namespace sofia::verify
