// Builds the linter's trusted reference (ProgramModel) from a completed
// transform: block geometry and declared predecessor words straight from
// the layout, return targets from the normalized program's CFG (the link
// register of every call site), declared indirect target sets from the
// `.targets` annotations, and the initial data section from the image so
// the dataflow engine (verify/dataflow.hpp) can resolve loads from
// provably-clean data.
#include <algorithm>
#include <optional>
#include <utility>

#include "cfg/cfg.hpp"
#include "support/error.hpp"
#include "verify/verify.hpp"

namespace sofia::verify {

ProgramModel model_of(const xform::TransformResult& t) {
  const xform::BlockLayout& layout = t.layout;
  const std::uint32_t b = layout.policy().words_per_block;

  ProgramModel m;
  m.policy = layout.policy();
  m.text_base = layout.text_base_word() * 4;
  m.entry = layout.entry_target_addr(layout.reset_entry());
  m.entry_prev_word = assembler::kResetPrevWord;
  m.data_base = t.image.data_base;
  m.stack_top = t.image.stack_top;
  m.data = t.image.data;

  m.blocks.reserve(layout.blocks().size());
  for (const xform::Block& blk : layout.blocks()) {
    ModelBlock mb;
    mb.is_mux = blk.kind == xform::BlockKind::kMux;
    mb.base_word = blk.base_word;
    mb.pred1_word = blk.pred1_word;
    mb.pred2_word = blk.pred2_word;
    mb.synthesized = blk.synthesized;
    mb.entry1_label = blk.entry1_label;
    mb.entry2_label = blk.entry2_label;
    mb.exit_label = blk.exit_label;
    mb.inst_words.reserve(blk.insts.size());
    for (const xform::PlacedInst& pi : blk.insts)
      mb.inst_words.push_back(isa::encode(pi.inst));
    m.blocks.push_back(std::move(mb));
  }

  // The rest needs the same CFG the packer consumed. With unreachable code
  // elided, some source instructions have no placement — their lookups
  // throw, which simply excludes them from the model.
  const cfg::Cfg g = cfg::Cfg::build(t.normalized);

  const auto block_of = [&](std::uint32_t src) -> std::optional<std::uint32_t> {
    try {
      const std::uint32_t word = layout.block_base_addr(src) / 4;
      return (word - layout.text_base_word()) / b;
    } catch (const std::exception&) {
      return std::nullopt;
    }
  };

  // Return targets: a ret transfers to lr, and every call site linked
  // lr = its own placed address + 4 (word 0 of the block after the call).
  for (const cfg::FunctionInfo& fn : g.functions()) {
    std::vector<std::uint32_t> targets;
    for (const std::uint32_t call : fn.call_sites) {
      try {
        targets.push_back(layout.placed_addr(call) + 4);
      } catch (const std::exception&) {
        // call site inside elided code
      }
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    if (targets.empty()) continue;
    for (const std::uint32_t r : fn.rets)
      if (const auto blk = block_of(r)) m.blocks[*blk].ret_targets = targets;
  }

  // Gated indirect jumps: each surviving jump-form jalr's declared target
  // set, resolved to the targets' canonical indirect entries (the only
  // addresses the sealed labels authorize).
  for (std::uint32_t i = 0; i < t.normalized.text.size(); ++i) {
    const assembler::SourceInst& si = t.normalized.text[i];
    if (si.inst.op != isa::Opcode::kJalr || cfg::is_ret(si.inst)) continue;
    const auto blk = block_of(i);
    if (!blk) continue;  // elided
    std::vector<std::uint32_t> targets;
    for (const std::string& name : si.indirect_targets)
      targets.push_back(
          layout.indirect_entry_addr(t.normalized.text_labels.at(name)));
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    m.blocks[*blk].jalr_targets = std::move(targets);
  }

  return m;
}

}  // namespace sofia::verify
