// Static integrity verifier for hardened SOFIA images (the offline
// complement to the device's runtime enforcement). The paper's installation
// flow derives every block's sealing from "a precise Control Flow Graph of
// the whole program"; nothing at runtime re-checks that derivation — a bad
// toolchain, a tampered image or a key/version mismatch only surfaces as a
// reset on the device. This pass re-derives the whole contract statically:
//
//  * every control transfer the sealed instructions encode lands on a valid
//    block entry (offset 0 for execution blocks, 1/2 for the two
//    multiplexor paths) that is sealed for exactly that predecessor exit
//    word — re-sealed per scheme::ProtectionScheme and compared against the
//    image bytes, so a forged header, relocated block or tampered body word
//    is attributed to a specific rule instead of a generic MAC failure;
//  * block-policy conformance: control only in the exit slot, stores at or
//    past store_min_word, decodable instructions, no surviving indirect
//    jumps;
//  * whole-image properties: entries with more than one distinct
//    predecessor (decryption underdetermined), unreachable sealed blocks,
//    statically-resolvable stores into the text section, and metadata
//    mismatches (omega, granularity, geometry) between the image header and
//    the device profile.
//
// The verifier sits above cfg/xform/scheme and below pipeline: it consumes
// a DeviceSpec (keys + scheme + granularity + policy) rather than a
// DeviceProfile so pipeline can wrap it without a layering cycle
// (Pipeline::lint() is the everyday entry point; tools/sofia_lint the CLI).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "assembler/image.hpp"
#include "crypto/ctr.hpp"
#include "crypto/key_set.hpp"
#include "scheme/scheme.hpp"
#include "xform/block_policy.hpp"
#include "xform/transform.hpp"

namespace sofia::json {
class Writer;
}

namespace sofia::verify {

// ---- diagnostics -----------------------------------------------------------

enum class Severity : std::uint8_t { kNote, kWarning, kError };

/// Every check the linter performs, as a stable kebab-case rule id (the
/// README's rule-catalog table and the JSON "rule" member use these names).
enum class Rule : std::uint8_t {
  kImageMetadata,          ///< header fields disagree with the program model
  kGeometry,               ///< text size is not a whole number of blocks
  kOmegaMismatch,          ///< image omega != key material's omega
  kGranularityMismatch,    ///< image CTR granularity != profile granularity
  kProfileMismatch,        ///< no block opens under these keys/cipher/scheme
  kTamperedText,           ///< sealed body words differ from the re-sealing
  kForgedHeader,           ///< only the MAC/header words differ
  kRelocatedBlock,         ///< the bytes are another block's valid sealing
  kEdgeSealMismatch,       ///< an edge arrives with the wrong predecessor
  kAmbiguousPredecessor,   ///< one entry, several distinct predecessors
  kInvalidEntry,           ///< transfer targets a non-entry word offset
  kControlPlacement,       ///< control outside the block's exit slot
  kStorePlacement,         ///< store below BlockPolicy::store_min_word
  kUndecodableInstruction, ///< sealed body word is not a valid instruction
  kStrayIndirectJump,      ///< a non-ret jalr survived devirtualization
  kUnreachableBlock,       ///< sealed block no walk from the entry reaches
  kStoreToText,            ///< store whose bounded address may reach text
  kStoreToTextProven,      ///< store proven to write inside the text section
  kUnresolvedIndirect,     ///< indirect jump with no finite target set
  kIndirectTargetUnproven, ///< gated target set not independently provable
};

std::string_view to_string(Rule rule);
std::string_view to_string(Severity severity);

/// One catalog row: the rule, the severity its findings carry, and a
/// one-line description (--rules and the README table render these).
struct RuleInfo {
  Rule rule;
  Severity severity;
  std::string_view name;
  std::string_view description;
};

/// All rules in enum order.
const std::vector<RuleInfo>& rule_catalog();

/// One diagnostic. `block` is the block id (index into the image's block
/// sequence) or -1 when the finding is not about a specific block; `insn`
/// is the absolute word address (byte address / 4) the finding anchors to,
/// or -1.
struct Finding {
  Rule rule = Rule::kImageMetadata;
  Severity severity = Severity::kError;
  std::int64_t block = -1;
  std::int64_t insn = -1;
  std::string message;
};

/// Per-indirect-jump target-set record: the gated (declared) entry set and
/// the dataflow engine's independently proven set when it is finite. The
/// sofia-lint-v2 document emits these under "indirects".
struct IndirectTargets {
  std::int64_t block = -1;
  std::int64_t insn = -1;  ///< absolute word address of the jalr
  std::vector<std::uint32_t> declared;  ///< sealed entry byte addresses
  std::vector<std::uint32_t> proven;    ///< dataflow-enumerated byte addrs
  bool proven_finite = false;  ///< false => `proven` is meaningless
};

/// The lint result: findings sorted by (block, insn, rule, message) plus
/// coverage counters and per-jalr target sets, rendered as text or as the
/// "report" object of a sofia-lint-v2 document.
struct Report {
  std::vector<Finding> findings;
  std::vector<IndirectTargets> indirects;  ///< one per surviving jalr
  std::uint32_t blocks_checked = 0;   ///< blocks whose sealing was compared
  std::uint32_t entries_checked = 0;  ///< distinct (block, entry) pairs seen
  std::uint32_t edges_checked = 0;    ///< control transfers resolved
  std::uint32_t stores_checked = 0;      ///< stores the dataflow examined
  std::uint32_t stores_proven_safe = 0;  ///< proven outside the text section

  std::size_t count(Severity severity) const;
  /// No error-severity findings (warnings/notes do not fail --assert-clean).
  bool clean() const { return count(Severity::kError) == 0; }

  /// Human-readable, one line per finding plus a summary line.
  std::string render_text() const;

  /// Emit the report as a complete JSON object (counters + findings +
  /// indirect target sets) through the deterministic writer; the
  /// sofia-lint-v2 document embeds it under "report".
  void to_json(json::Writer& w) const;
};

/// The distinct error-severity rules a report fired, in enum order — the
/// campaign engine's triage uses this to attribute what the static layer
/// would have caught about a runtime escape.
std::vector<Rule> error_rules(const Report& report);

/// Look up a catalog row by its kebab-case rule id; nullptr when no rule
/// has that name. The catalog is the single source for rule ids — CLI
/// validation, JSON, SARIF and the README table all render from it.
const RuleInfo* find_rule(std::string_view name);

/// Emit the report as a SARIF 2.1.0 document (the interchange format CI
/// annotation pipelines consume). `artifact` names the linted unit (source
/// path or workload name). Output is deterministic: rules appear in
/// catalog order, results in the report's sorted finding order.
void to_sarif(const Report& report, std::string_view artifact,
              json::Writer& w);

// ---- inputs ----------------------------------------------------------------

/// The device-side facts the verifier needs to re-derive seals: exactly the
/// axes DeviceProfile stamps onto both toolchain and device, minus the
/// execution backend (a static check never runs anything).
struct DeviceSpec {
  crypto::KeySet keys;
  std::string scheme = std::string(scheme::kDefaultScheme);
  crypto::Granularity granularity = crypto::Granularity::kPerPair;
  xform::BlockPolicy policy = xform::BlockPolicy::paper_default();
};

/// The linter's view of one laid-out block: geometry, the predecessor exit
/// words the block was (supposedly) sealed for, and the plaintext
/// instruction words. Tests build these by hand to drive single rules.
struct ModelBlock {
  bool is_mux = false;
  std::uint32_t base_word = 0;   ///< absolute word address of block word 0
  std::uint32_t pred1_word = 0;  ///< declared prevPC for entry word 0
  std::uint32_t pred2_word = 0;  ///< declared prevPC for mux entry word 1
  std::vector<std::uint32_t> inst_words;  ///< encoded plaintext instructions
  /// Byte addresses a terminating `ret` transfers to (lr values of every
  /// call site, from CFG function analysis). Empty for non-ret exits.
  std::vector<std::uint32_t> ret_targets;
  /// Byte addresses a gated exit jalr may transfer to — the declared
  /// target set's canonical indirect entries (gating schemes only).
  std::vector<std::uint32_t> jalr_targets;
  /// Forward-edge target-set labels the block was sealed with (zero
  /// everywhere under non-gating schemes; see scheme/label.hpp).
  std::uint8_t entry1_label = 0;
  std::uint8_t entry2_label = 0;
  std::uint8_t exit_label = 0;
  bool synthesized = false;  ///< forwarding/thunk/landing block
};

/// The trusted reference the image is checked against.
struct ProgramModel {
  xform::BlockPolicy policy;
  std::uint32_t text_base = 0;  ///< byte address of block 0 word 0
  std::uint32_t entry = 0;      ///< byte address the reset transfers to
  std::uint32_t entry_prev_word = assembler::kResetPrevWord;
  std::vector<ModelBlock> blocks;
  /// Initial data-section contents, so the dataflow engine can resolve
  /// loads from provably-clean data (a dispatch table is data the program
  /// never overwrites). Empty when the program has no data section.
  std::uint32_t data_base = 0;
  std::uint32_t stack_top = 0;
  std::vector<std::uint8_t> data;

  std::uint32_t total_words() const {
    return static_cast<std::uint32_t>(blocks.size()) *
           policy.words_per_block;
  }
};

/// Build the reference model from a completed transform: block geometry and
/// predecessor words from the layout, ret targets from the normalized
/// program's CFG, declared indirect target sets from the `.targets`
/// annotations, and the initial data section from the image (the dataflow
/// engine's load-resolution substrate).
ProgramModel model_of(const xform::TransformResult& t);

struct Options {
  bool unreachable_warnings = true;
  bool store_to_text_warnings = true;
};

// ---- entry points ----------------------------------------------------------

/// Full program-mode lint: check `image` against the reference `model`
/// under `spec`. Never throws for image defects (they become findings);
/// throws sofia::Error only for unusable inputs (unknown scheme name).
Report lint(const ProgramModel& model, const assembler::LoadImage& image,
            const DeviceSpec& spec, const Options& opts = {});

/// Image-only mode (no program/source available): the metadata, geometry
/// and key-material subset of the checks. Used by pipeline sessions built
/// with from_image/from_image_file.
Report lint(const assembler::LoadImage& image, const DeviceSpec& spec,
            const Options& opts = {});

}  // namespace sofia::verify
