// Sound static dataflow over the linter's ProgramModel: a worklist-driven
// abstract interpreter computing, for every reachable block, the abstract
// value (see absval.hpp) each of the 16 registers can hold at block entry.
// Two consumers hang off the fixpoint:
//
//  * store safety — every store's abstract effective address, so the lint
//    can *prove* a store stays outside the sealed text section (silencing
//    the may-write warning) or prove it lands inside (an error, not a
//    heuristic guess);
//  * indirect-jump target sets — every surviving non-ret jalr's abstract
//    target, enumerated to a finite address set when the domain bounds it,
//    cross-checked against the `.targets`-declared gated set.
//
// The interpretation is interprocedural but context-insensitive: a call
// flows the caller's state into the callee with lr bound to the concrete
// link address, and a ret flows the callee's exit state to every recorded
// return target (the model's ret_targets). Gated jalr edges follow the
// declared target set — exactly the edges the runtime gate admits.
//
// Loads resolve against the *initial* data section only when the engine
// has proven no store can dirty the loaded bytes. That proof is itself a
// fixpoint: an outer iteration re-runs the analysis with a growing dirty
// byte set until the set stabilizes (or a bounded number of rounds passes,
// after which all data is treated as dirty — the sound fallback). This is
// what lets a table-driven dispatch prove its handler table clean: the
// table words are never the target of any store the engine can see.
#pragma once

#include <cstdint>
#include <vector>

#include "verify/absval.hpp"
#include "verify/verify.hpp"

namespace sofia::verify::dataflow {

/// One store instruction with its abstract effective address (the base
/// register's abstract value plus the immediate, at the program point just
/// before the store executes).
struct StoreFact {
  std::uint32_t block = 0;      ///< model block index
  std::uint32_t word_addr = 0;  ///< absolute word address of the store
  std::uint8_t size = 4;        ///< bytes written (sw/sh/sb)
  AbsVal addr;                  ///< abstract byte address written
};

/// One surviving non-ret jalr with its abstract target (ra + imm, with the
/// hardware's low-bit clearing applied).
struct IndirectFact {
  std::uint32_t block = 0;
  std::uint32_t word_addr = 0;
  AbsVal target;
};

struct DataflowResult {
  std::vector<StoreFact> stores;        ///< in (block, word) order
  std::vector<IndirectFact> indirects;  ///< in (block, word) order
  std::uint32_t rounds = 0;      ///< outer dirty-set iterations used
  std::uint64_t transfers = 0;   ///< instruction transfer applications
};

/// Run the abstract interpretation to fixpoint. Never throws for model
/// defects (undecodable words or invalid edges simply yield top states and
/// no facts for the affected paths); the lint rules attribute those
/// separately.
DataflowResult analyze(const ProgramModel& m);

}  // namespace sofia::verify::dataflow
