#include "verify/dataflow.hpp"

#include <array>
#include <optional>
#include <set>
#include <utility>

#include "cfg/cfg.hpp"
#include "isa/isa.hpp"

namespace sofia::verify::dataflow {

namespace {

using State = std::array<AbsVal, isa::kNumRegs>;

/// Inner-fixpoint widening delay: joins into a block entry beyond this
/// count switch from plain join to threshold widening.
constexpr std::uint32_t kWidenAfter = 3;

/// Enumeration budgets: addresses a load may resolve through, addresses a
/// store may dirty individually (beyond it the whole data section goes
/// dirty), and values an indirect target set may enumerate to.
constexpr std::size_t kMaxLoadAddrs = 16;
constexpr std::size_t kMaxStoreAddrs = 64;

/// Outer dirty-set rounds before the sound fallback (all data dirty).
constexpr std::uint32_t kMaxRounds = 4;

std::uint8_t access_size(isa::Opcode op) {
  switch (op) {
    case isa::Opcode::kLw:
    case isa::Opcode::kSw: return 4;
    case isa::Opcode::kLh:
    case isa::Opcode::kLhu:
    case isa::Opcode::kSh: return 2;
    default: return 1;
  }
}

class Engine {
 public:
  explicit Engine(const ProgramModel& m)
      : m_(m),
        b_(m.policy.words_per_block),
        text_base_word_(m.text_base / 4),
        data_limit_(m.data_base +
                    static_cast<std::uint32_t>(m.data.size())) {
    // Decode every block once; an undecodable or missing word simply
    // havocs the state at that point (check_static attributes it).
    code_.resize(m_.blocks.size());
    for (std::size_t i = 0; i < m_.blocks.size(); ++i) {
      code_[i].reserve(m_.blocks[i].inst_words.size());
      for (const std::uint32_t w : m_.blocks[i].inst_words)
        code_[i].push_back(isa::decode(w));
    }
    // Widening thresholds: the section boundaries, so a widened pointer
    // still proves "below text" / "inside data" instead of jumping to top.
    const std::set<std::uint32_t> t = {
        0u, m_.text_base, m_.text_base + m_.total_words() * 4,
        m_.data_base, data_limit_, m_.stack_top};
    thresholds_.assign(t.begin(), t.end());
  }

  DataflowResult run() {
    DataflowResult result;
    if (m_.blocks.empty()) return result;
    const auto entry_block = block_at(m_.entry);
    if (!entry_block) return result;  // metadata errors flagged elsewhere

    std::uint32_t round = 0;
    for (;;) {
      ++round;
      fixpoint(*entry_block);
      auto facts = collect_facts();
      const bool grew = grow_dirty(facts.first);
      if (grew && round < kMaxRounds) continue;
      if (grew) {
        // Did not stabilize within budget: sound fallback — treat the whole
        // data section as dirty and take the resulting facts.
        dirty_all_ = true;
        ++round;
        fixpoint(*entry_block);
        facts = collect_facts();
      }
      result.rounds = round;
      result.stores = std::move(facts.first);
      result.indirects = std::move(facts.second);
      break;
    }
    result.transfers = transfers_;
    return result;
  }

 private:
  // ---- address mapping -----------------------------------------------------

  std::optional<std::uint32_t> block_at(std::uint64_t byte_addr) const {
    if (byte_addr % 4 != 0) return std::nullopt;
    const std::uint64_t word = byte_addr / 4;
    if (word < text_base_word_) return std::nullopt;
    const std::uint64_t rel = word - text_base_word_;
    const std::uint64_t blk = rel / b_;
    if (blk >= m_.blocks.size()) return std::nullopt;
    return static_cast<std::uint32_t>(blk);
  }

  // ---- load resolution -----------------------------------------------------

  bool byte_dirty(std::uint32_t addr) const {
    return dirty_all_ || dirty_.count(addr) != 0;
  }

  std::uint32_t read_init(std::uint32_t addr, std::uint8_t size) const {
    std::uint32_t v = 0;
    for (std::uint8_t k = 0; k < size; ++k)
      v |= static_cast<std::uint32_t>(m_.data[addr - m_.data_base + k])
           << (8 * k);
    return v;
  }

  AbsVal load_value(isa::Opcode op, const AbsVal& addr) const {
    const std::uint8_t size = access_size(op);
    if (const auto addrs = addr.enumerate(kMaxLoadAddrs)) {
      std::vector<std::uint32_t> values;
      values.reserve(addrs->size());
      bool resolved = true;
      for (const std::uint32_t a : *addrs) {
        if (a % size != 0 || a < m_.data_base ||
            std::uint64_t{a} + size > data_limit_) {
          resolved = false;  // outside the initial data section
          break;
        }
        bool dirty = false;
        for (std::uint8_t k = 0; k < size; ++k)
          if (byte_dirty(a + k)) dirty = true;
        if (dirty) {
          resolved = false;
          break;
        }
        std::uint32_t v = read_init(a, size);
        if (op == isa::Opcode::kLb)
          v = static_cast<std::uint32_t>(
              static_cast<std::int32_t>(static_cast<std::int8_t>(v)));
        else if (op == isa::Opcode::kLh)
          v = static_cast<std::uint32_t>(
              static_cast<std::int32_t>(static_cast<std::int16_t>(v)));
        values.push_back(v);
      }
      if (resolved) return AbsVal::consts(std::move(values));
    }
    // Unresolvable: the zero-extending loads still have hard value bounds.
    switch (op) {
      case isa::Opcode::kLbu: return AbsVal::interval(0, 0xFF);
      case isa::Opcode::kLhu: return AbsVal::interval(0, 0xFFFF);
      default: return AbsVal::top();
    }
  }

  // ---- transfer functions --------------------------------------------------

  static const AbsVal& reg(const State& s, unsigned r) { return s[r]; }

  static void set_reg(State& s, unsigned r, AbsVal v) {
    if (r != isa::kRegZero) s[r] = std::move(v);
  }

  /// Apply one instruction to the state (no control effect).
  void step(State& s, const isa::Instruction& in, std::uint32_t word_addr) {
    ++transfers_;
    using isa::Opcode;
    const AbsVal& a = reg(s, in.ra);
    const AbsVal& bv = reg(s, in.rb);
    const auto uimm = static_cast<std::uint32_t>(in.imm);
    const AbsVal immv = AbsVal::constant(uimm);
    switch (in.op) {
      case Opcode::kAdd: set_reg(s, in.rd, AbsVal::add(a, bv)); break;
      case Opcode::kSub: set_reg(s, in.rd, AbsVal::sub(a, bv)); break;
      case Opcode::kAnd: set_reg(s, in.rd, AbsVal::and_(a, bv)); break;
      case Opcode::kOr: set_reg(s, in.rd, AbsVal::or_(a, bv)); break;
      case Opcode::kXor: set_reg(s, in.rd, AbsVal::xor_(a, bv)); break;
      case Opcode::kSll: set_reg(s, in.rd, AbsVal::shl(a, bv)); break;
      case Opcode::kSrl: set_reg(s, in.rd, AbsVal::shr(a, bv)); break;
      case Opcode::kMul: set_reg(s, in.rd, AbsVal::mul(a, bv)); break;
      case Opcode::kAddi:
        // Negative immediates are 2^32 - |imm| after the unsigned cast;
        // model them as subtraction so interval shapes survive.
        if (in.imm < 0)
          set_reg(s, in.rd,
                  AbsVal::sub(a, AbsVal::constant(
                                     static_cast<std::uint32_t>(-in.imm))));
        else
          set_reg(s, in.rd, AbsVal::add(a, immv));
        break;
      case Opcode::kAndi: set_reg(s, in.rd, AbsVal::and_(a, immv)); break;
      case Opcode::kOri: set_reg(s, in.rd, AbsVal::or_(a, immv)); break;
      case Opcode::kXori: set_reg(s, in.rd, AbsVal::xor_(a, immv)); break;
      case Opcode::kSlli: set_reg(s, in.rd, AbsVal::shl(a, immv)); break;
      case Opcode::kSrli: set_reg(s, in.rd, AbsVal::shr(a, immv)); break;
      case Opcode::kLui:
        set_reg(s, in.rd, AbsVal::constant(uimm << 14));
        break;
      case Opcode::kSlt:
      case Opcode::kSltu:
      case Opcode::kSlti:
      case Opcode::kSltiu:
        set_reg(s, in.rd, AbsVal::interval(0, 1));
        break;
      case Opcode::kLw:
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kLb:
      case Opcode::kLbu:
        set_reg(s, in.rd, load_value(in.op, AbsVal::add(a, immv)));
        break;
      case Opcode::kJal:
      case Opcode::kJalr:
        // Link register: the concrete return address.
        set_reg(s, in.rd, AbsVal::constant(word_addr * 4 + 4));
        break;
      case Opcode::kSw:
      case Opcode::kSh:
      case Opcode::kSb:
      case Opcode::kNop:
      case Opcode::kHalt:
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu:
        break;  // no register effect
      default:
        set_reg(s, in.rd, AbsVal::top());  // kSra/kSrai and anything new
        break;
    }
  }

  /// Run the whole block's instructions from its (fixed) entry state;
  /// optionally collect store/indirect facts along the way.
  State transfer_block(std::uint32_t i, std::vector<StoreFact>* stores,
                       std::vector<IndirectFact>* indirects) {
    const ModelBlock& blk = m_.blocks[i];
    State s = entry_[i];
    const std::uint32_t header =
        b_ - static_cast<std::uint32_t>(blk.inst_words.size());
    for (std::size_t k = 0; k < code_[i].size(); ++k) {
      const std::uint32_t word_addr =
          blk.base_word + header + static_cast<std::uint32_t>(k);
      const auto& inst = code_[i][k];
      if (!inst) {
        // Undecodable word: havoc everything except the zero register.
        for (unsigned r = 1; r < isa::kNumRegs; ++r) s[r] = AbsVal::top();
        continue;
      }
      if (isa::is_store(inst->op)) {
        const AbsVal addr = AbsVal::add(
            reg(s, inst->ra),
            AbsVal::constant(static_cast<std::uint32_t>(inst->imm)));
        if (stores)
          stores->push_back(
              StoreFact{i, word_addr, access_size(inst->op), addr});
      } else if (inst->op == isa::Opcode::kJalr && !cfg::is_ret(*inst)) {
        // The hardware clears the two low bits of the computed target.
        AbsVal target = AbsVal::add(
            reg(s, inst->ra),
            AbsVal::constant(static_cast<std::uint32_t>(inst->imm)));
        if (const auto vals = target.enumerate(kMaxStoreAddrs)) {
          std::vector<std::uint32_t> cleared;
          cleared.reserve(vals->size());
          for (const std::uint32_t v : *vals) cleared.push_back(v & ~3u);
          target = AbsVal::consts(std::move(cleared));
        }
        if (indirects) indirects->push_back(IndirectFact{i, word_addr, target});
      }
      step(s, *inst, word_addr);
    }
    return s;
  }

  // ---- the worklist fixpoint -----------------------------------------------

  void propagate(std::uint32_t to, const State& incoming) {
    State& cur = entry_[to];
    bool changed = false;
    const bool widen = joins_[to] >= kWidenAfter;
    for (unsigned r = 0; r < isa::kNumRegs; ++r) {
      AbsVal next = widen ? AbsVal::widen(cur[r], incoming[r], thresholds_)
                          : AbsVal::join(cur[r], incoming[r]);
      if (!(next == cur[r])) {
        cur[r] = std::move(next);
        changed = true;
      }
    }
    if (!reachable_[to]) {
      reachable_[to] = true;
      changed = true;
    }
    if (changed) {
      ++joins_[to];
      if (!queued_[to]) {
        queued_[to] = true;
        worklist_.push_back(to);
      }
    }
  }

  void flow_to(std::uint64_t byte_addr, const State& out) {
    if (const auto blk = block_at(byte_addr)) propagate(*blk, out);
  }

  void fixpoint(std::uint32_t entry_block) {
    entry_.assign(m_.blocks.size(), State{});
    reachable_.assign(m_.blocks.size(), false);
    queued_.assign(m_.blocks.size(), false);
    joins_.assign(m_.blocks.size(), 0);
    worklist_.clear();

    // Architectural reset state: sp holds the image's stack top, the zero
    // register is zero, everything else is unconstrained.
    State boot;
    boot.fill(AbsVal::top());
    boot[isa::kRegZero] = AbsVal::constant(0);
    boot[isa::kRegSp] = AbsVal::constant(m_.stack_top);
    propagate(entry_block, boot);

    while (!worklist_.empty()) {
      const std::uint32_t i = worklist_.back();
      worklist_.pop_back();
      queued_[i] = false;
      const ModelBlock& blk = m_.blocks[i];
      const State out = transfer_block(i, nullptr, nullptr);
      if (code_[i].empty()) continue;
      const auto& exit_inst = code_[i].back();
      const std::int64_t exit_word = blk.base_word + b_ - 1;
      const std::int64_t fall = (blk.base_word + b_) * std::int64_t{4};
      if (!exit_inst) continue;  // undecodable exit: no known successors
      const isa::Instruction& in = *exit_inst;
      if (isa::is_cond_branch(in.op)) {
        flow_to((exit_word + in.imm) * 4, out);
        flow_to(fall, out);
      } else if (in.op == isa::Opcode::kJal) {
        flow_to((exit_word + in.imm) * 4, out);
      } else if (in.op == isa::Opcode::kJalr) {
        if (cfg::is_ret(in)) {
          for (const std::uint32_t target : blk.ret_targets)
            flow_to(target, out);
        } else {
          for (const std::uint32_t target : blk.jalr_targets)
            flow_to(target, out);
        }
      } else if (in.op != isa::Opcode::kHalt) {
        flow_to(fall, out);
      }
    }
  }

  /// Replay every reachable block against its fixed entry state, collecting
  /// facts in deterministic (block, word) order.
  std::pair<std::vector<StoreFact>, std::vector<IndirectFact>>
  collect_facts() {
    std::vector<StoreFact> stores;
    std::vector<IndirectFact> indirects;
    for (std::uint32_t i = 0; i < m_.blocks.size(); ++i)
      if (reachable_[i]) transfer_block(i, &stores, &indirects);
    return {std::move(stores), std::move(indirects)};
  }

  /// Grow the dirty byte set from this round's store facts; returns true
  /// when the set grew (another round is needed).
  bool grow_dirty(const std::vector<StoreFact>& stores) {
    if (dirty_all_ || m_.data.empty()) return false;
    bool grew = false;
    for (const StoreFact& st : stores) {
      if (st.addr.proven_outside(m_.data_base, data_limit_)) continue;
      const auto addrs = st.addr.enumerate(kMaxStoreAddrs);
      if (!addrs) {
        // Unbounded store overlapping data: everything is dirty.
        dirty_all_ = true;
        return true;
      }
      for (const std::uint32_t a : *addrs)
        for (std::uint8_t k = 0; k < st.size; ++k) {
          const std::uint32_t byte = a + k;
          if (byte >= m_.data_base && byte < data_limit_ &&
              dirty_.insert(byte).second)
            grew = true;
        }
    }
    return grew;
  }

  const ProgramModel& m_;
  const std::uint32_t b_;
  const std::uint32_t text_base_word_;
  const std::uint32_t data_limit_;
  std::vector<std::vector<std::optional<isa::Instruction>>> code_;
  std::vector<std::uint32_t> thresholds_;

  std::vector<State> entry_;
  std::vector<bool> reachable_;
  std::vector<bool> queued_;
  std::vector<std::uint32_t> joins_;
  std::vector<std::uint32_t> worklist_;

  std::set<std::uint32_t> dirty_;  ///< dirty initial-data byte addresses
  bool dirty_all_ = false;
  std::uint64_t transfers_ = 0;
};

}  // namespace

DataflowResult analyze(const ProgramModel& m) { return Engine(m).run(); }

}  // namespace sofia::verify::dataflow
