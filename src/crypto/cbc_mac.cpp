#include "crypto/cbc_mac.hpp"

namespace sofia::crypto {

std::uint64_t cbc_mac64(const BlockCipher64& cipher,
                        std::span<const std::uint32_t> words) {
  if (words.empty()) return 0;
  std::uint64_t chain = 0;
  std::size_t i = 0;
  while (i < words.size()) {
    std::uint64_t block = words[i];
    if (i + 1 < words.size()) block |= static_cast<std::uint64_t>(words[i + 1]) << 32;
    chain = cipher.encrypt(chain ^ block);
    i += 2;
  }
  // Length strengthening: the word count is chained through one final
  // cipher call of its own. Folding it into the last *data* block instead
  // is cancellable — {w} and {w, x} collide whenever x == len ^ (len+1) —
  // because that block also carries message words; a dedicated length
  // block makes the length contribution independent of the data, so
  // messages differing only in zero padding ({w} vs {w, 0}) or trailing
  // words can no longer share a tag.
  return cipher.encrypt(chain ^ static_cast<std::uint64_t>(words.size()));
}

}  // namespace sofia::crypto
