#include "crypto/cbc_mac.hpp"

namespace sofia::crypto {

std::uint64_t cbc_mac64(const BlockCipher64& cipher,
                        std::span<const std::uint32_t> words) {
  std::uint64_t chain = 0;
  std::size_t i = 0;
  while (i < words.size()) {
    std::uint64_t block = words[i];
    if (i + 1 < words.size()) block |= static_cast<std::uint64_t>(words[i + 1]) << 32;
    chain = cipher.encrypt(chain ^ block);
    i += 2;
  }
  return chain;
}

}  // namespace sofia::crypto
