#include "crypto/ctr.hpp"

namespace sofia::crypto {

std::string_view to_string(Granularity g) {
  switch (g) {
    case Granularity::kPerWord: return "per-word";
    case Granularity::kPerPair: return "per-pair";
  }
  return "?";
}

}  // namespace sofia::crypto
