// CBC-MAC over 32-bit instruction words (paper §II-B, ISO/IEC 9797-1 MAC
// algorithm 1). CBC-MAC is only secure for fixed-length messages; SOFIA
// fixes the length per *key*: k2 authenticates execution blocks (6 words),
// k3 authenticates multiplexor blocks (5 words, zero-padded to 6). The
// 64-bit tag is stored as two 32-bit words M1 (low half) and M2 (high half).
#pragma once

#include <cstdint>
#include <span>

#include "crypto/block_cipher.hpp"

namespace sofia::crypto {

/// 64-bit CBC-MAC tag with zero IV. Words are paired little-endian-first:
/// block_i = words[2i] | words[2i+1] << 32; an odd trailing word is
/// zero-padded, and the word count is chained through a dedicated final
/// cipher call so the zero padding cannot make {w} and {w, 0} (or any
/// trailing-word variant) collide. An empty message has no blocks and
/// keeps the zero chain.
std::uint64_t cbc_mac64(const BlockCipher64& cipher,
                        std::span<const std::uint32_t> words);

/// Low 32-bit tag word (the paper's M1).
constexpr std::uint32_t mac_word1(std::uint64_t tag) {
  return static_cast<std::uint32_t>(tag);
}

/// High 32-bit tag word (the paper's M2).
constexpr std::uint32_t mac_word2(std::uint64_t tag) {
  return static_cast<std::uint32_t>(tag >> 32);
}

/// Keep only the low `bits` bits of a tag — used exclusively by the
/// Monte-Carlo forgery experiments that scale the paper's 2^(n-1) analysis
/// down to feasible tag lengths.
constexpr std::uint64_t truncate_tag(std::uint64_t tag, unsigned bits) {
  return bits >= 64 ? tag : tag & ((std::uint64_t{1} << bits) - 1);
}

}  // namespace sofia::crypto
