// SPECK-64/128 (Beaulieu et al., NSA, 2013): 64-bit block, 128-bit key,
// 27 rounds. Not part of the SOFIA paper; included as an independently
// test-vectored PRP so that the mode-level code (CTR keystream, CBC-MAC)
// and the whole toolchain can be validated against known-good crypto, and
// as a cipher ablation point (see DESIGN.md).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/block_cipher.hpp"

namespace sofia::crypto {

class Speck64 final : public BlockCipher64 {
 public:
  static constexpr int kRounds = 27;

  /// Key words k[i] = bytes 4i..4i+3 little-endian; k0 = key schedule word 0.
  explicit Speck64(const CipherKey& key);

  std::uint64_t encrypt(std::uint64_t block) const override;
  std::uint64_t decrypt(std::uint64_t block) const override;
  std::string_view name() const override { return "SPECK-64/128"; }

 private:
  std::array<std::uint32_t, kRounds> round_keys_{};
};

}  // namespace sofia::crypto
