// The per-device key material (paper §II-B-1): three keys — k1 for CTR
// instruction encryption, k2 for execution-block CBC-MAC, k3 for
// multiplexor-block CBC-MAC (one MAC key per message length) — plus the
// per-program-version nonce ω stored in the binary header. The software
// provider uses the same KeySet in the transformation toolchain; the
// simulated device embeds it in the fetch unit.
#pragma once

#include <cstdint>
#include <memory>

#include "crypto/block_cipher.hpp"

namespace sofia {
class Rng;
}

namespace sofia::crypto {

struct KeySet {
  CipherKind kind = CipherKind::kRectangle80;
  CipherKey k1{};  ///< CTR instruction-encryption key
  CipherKey k2{};  ///< CBC-MAC key for execution blocks
  CipherKey k3{};  ///< CBC-MAC key for multiplexor blocks
  std::uint16_t omega = 0;  ///< program-version nonce

  /// Fresh random keys and nonce (deterministic given the Rng seed).
  static KeySet random(CipherKind kind, Rng& rng);

  /// A fixed, documented key set for examples and reproducible benches.
  static KeySet example(CipherKind kind);

  std::unique_ptr<BlockCipher64> encryption_cipher() const {
    return make_cipher(kind, k1);
  }
  std::unique_ptr<BlockCipher64> exec_mac_cipher() const {
    return make_cipher(kind, k2);
  }
  std::unique_ptr<BlockCipher64> mux_mac_cipher() const {
    return make_cipher(kind, k3);
  }
};

}  // namespace sofia::crypto
