#include "crypto/speck64.hpp"

#include "support/bits.hpp"

namespace sofia::crypto {
namespace {

// Block layout: x = high 32 bits, y = low 32 bits (matches the reference
// test vector convention where plaintext is printed "x y").
void round_enc(std::uint32_t& x, std::uint32_t& y, std::uint32_t k) {
  x = (rotr32(x, 8) + y) ^ k;
  y = rotl32(y, 3) ^ x;
}

void round_dec(std::uint32_t& x, std::uint32_t& y, std::uint32_t k) {
  y = rotr32(y ^ x, 3);
  x = rotl32((x ^ k) - y, 8);
}

}  // namespace

Speck64::Speck64(const CipherKey& key) {
  std::uint32_t kw[4];
  for (int i = 0; i < 4; ++i) {
    kw[i] = static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i)]) |
            (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 1)]) << 8) |
            (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 2)]) << 16) |
            (static_cast<std::uint32_t>(key[static_cast<std::size_t>(4 * i + 3)]) << 24);
  }
  // k0 = kw[0]; l0..l2 = kw[1..3] (m = 4 key words).
  std::uint32_t l[kRounds + 3];
  std::uint32_t k = kw[0];
  l[0] = kw[1];
  l[1] = kw[2];
  l[2] = kw[3];
  for (int i = 0; i < kRounds; ++i) {
    round_keys_[static_cast<std::size_t>(i)] = k;
    if (i == kRounds - 1) break;
    l[i + 3] = (k + rotr32(l[i], 8)) ^ static_cast<std::uint32_t>(i);
    k = rotl32(k, 3) ^ l[i + 3];
  }
}

std::uint64_t Speck64::encrypt(std::uint64_t block) const {
  auto x = static_cast<std::uint32_t>(block >> 32);
  auto y = static_cast<std::uint32_t>(block);
  for (const std::uint32_t k : round_keys_) round_enc(x, y, k);
  return (static_cast<std::uint64_t>(x) << 32) | y;
}

std::uint64_t Speck64::decrypt(std::uint64_t block) const {
  auto x = static_cast<std::uint32_t>(block >> 32);
  auto y = static_cast<std::uint32_t>(block);
  for (int i = kRounds - 1; i >= 0; --i)
    round_dec(x, y, round_keys_[static_cast<std::size_t>(i)]);
  return (static_cast<std::uint64_t>(x) << 32) | y;
}

}  // namespace sofia::crypto
