// SOFIA's control-flow-dependent CTR mode (paper §II-A, Alg. 1).
//
// Counter layout (the paper leaves field widths open; see DESIGN.md §3):
//   I = { ω (16 bits) ‖ prevWordAddr (24 bits) ‖ wordAddr (24 bits) }
// packed MSB-first into the 64-bit cipher block. Addresses are *word*
// addresses (byte address >> 2); 24 bits cover 64 MiB of text.
//
// Encryption: c = E_k1(I) ⊕ m, keyed per word (Granularity::kPerWord, the
// semantics of Alg. 1) or per aligned pair of words (kPerPair, what the
// 64-bit-block hardware of §III does — one cipher op covers two words).
#pragma once

#include <cstdint>

#include "crypto/block_cipher.hpp"

namespace sofia::crypto {

/// How much instruction text one CTR cipher operation covers.
enum class Granularity {
  kPerWord,  ///< one cipher op per 32-bit word (Alg. 1; finest CFI)
  kPerPair,  ///< one cipher op per aligned 64-bit pair (the §III hardware)
};

std::string_view to_string(Granularity g);

/// Pack the SOFIA counter. Addresses are word addresses, truncated to 24 bits.
constexpr std::uint64_t pack_counter(std::uint16_t omega, std::uint32_t prev_word,
                                     std::uint32_t word) {
  return (static_cast<std::uint64_t>(omega) << 48) |
         (static_cast<std::uint64_t>(prev_word & 0xFFFFFFu) << 24) |
         (word & 0xFFFFFFu);
}

/// Full 64-bit keystream block for a counter value.
inline std::uint64_t keystream64(const BlockCipher64& cipher, std::uint16_t omega,
                                 std::uint32_t prev_word, std::uint32_t word) {
  return cipher.encrypt(pack_counter(omega, prev_word, word));
}

/// Alg. 1's "r least-significant bits" with r = 32: the per-word keystream.
inline std::uint32_t keystream32(const BlockCipher64& cipher, std::uint16_t omega,
                                 std::uint32_t prev_word, std::uint32_t word) {
  return static_cast<std::uint32_t>(keystream64(cipher, omega, prev_word, word));
}

}  // namespace sofia::crypto
