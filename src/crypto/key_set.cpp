#include "crypto/key_set.hpp"

#include "support/rng.hpp"

namespace sofia::crypto {

KeySet KeySet::random(CipherKind kind, Rng& rng) {
  KeySet ks;
  ks.kind = kind;
  for (auto* key : {&ks.k1, &ks.k2, &ks.k3}) {
    for (auto& byte : *key) byte = static_cast<std::uint8_t>(rng.next_u32());
  }
  ks.omega = static_cast<std::uint16_t>(rng.next_u32());
  return ks;
}

KeySet KeySet::example(CipherKind kind) {
  KeySet ks;
  ks.kind = kind;
  ks.k1 = make_key(0x0123456789ABCDEFull, 0xFEDCBA9876543210ull);
  ks.k2 = make_key(0x0F1E2D3C4B5A6978ull, 0x8796A5B4C3D2E1F0ull);
  ks.k3 = make_key(0xDEADBEEFCAFEF00Dull, 0x0123456789ABCDEFull);
  ks.omega = 0x5AFE;
  return ks;
}

}  // namespace sofia::crypto
