// Abstract 64-bit block cipher, the primitive both SOFIA mechanisms build
// on: CTR-mode instruction encryption (CFI) and CBC-MAC (SI). The
// architecture is cipher-agnostic; the paper instantiates RECTANGLE-80.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "crypto/cipher_key.hpp"

namespace sofia::crypto {

class BlockCipher64 {
 public:
  virtual ~BlockCipher64() = default;

  /// Encrypt one 64-bit block.
  virtual std::uint64_t encrypt(std::uint64_t block) const = 0;

  /// Decrypt one 64-bit block (inverse of encrypt).
  virtual std::uint64_t decrypt(std::uint64_t block) const = 0;

  /// Human-readable cipher name, e.g. "RECTANGLE-80".
  virtual std::string_view name() const = 0;
};

/// Supported cipher algorithms.
enum class CipherKind {
  kRectangle80,  ///< the paper's cipher: 64-bit block, 80-bit key, 25 rounds
  kSpeck64_128,  ///< reference PRP with published test vectors
};

std::string_view to_string(CipherKind kind);

/// Instantiate a cipher with the given key material.
std::unique_ptr<BlockCipher64> make_cipher(CipherKind kind, const CipherKey& key);

}  // namespace sofia::crypto
