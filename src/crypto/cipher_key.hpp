// Key material container. SOFIA devices embed keys that only the block
// cipher can read; the same bytes are shared with the software provider's
// transformation toolchain. A single fixed-size container holds keys for
// any supported cipher (RECTANGLE-80 uses 10 bytes, SPECK-64/128 uses 16).
#pragma once

#include <array>
#include <cstdint>

namespace sofia::crypto {

/// Up to 128 bits of key material; ciphers consume a prefix.
using CipherKey = std::array<std::uint8_t, 16>;

/// Build a key from two 64-bit words (w0 = bytes 0..7 LE, w1 = bytes 8..15).
constexpr CipherKey make_key(std::uint64_t w0, std::uint64_t w1 = 0) {
  CipherKey k{};
  for (int i = 0; i < 8; ++i) {
    k[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(w0 >> (8 * i));
    k[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(w1 >> (8 * i));
  }
  return k;
}

}  // namespace sofia::crypto
