#include "crypto/rectangle80.hpp"

#include "support/bits.hpp"

namespace sofia::crypto {
namespace {

constexpr std::uint8_t kSbox[16] = {0x6, 0x5, 0xC, 0xA, 0x1, 0xE, 0x7, 0x9,
                                    0xB, 0x0, 0x3, 0xD, 0x8, 0xF, 0x4, 0x2};

constexpr std::array<std::uint8_t, 16> invert_sbox() {
  std::array<std::uint8_t, 16> inv{};
  for (int i = 0; i < 16; ++i) inv[kSbox[i]] = static_cast<std::uint8_t>(i);
  return inv;
}
constexpr std::array<std::uint8_t, 16> kInvSbox = invert_sbox();

struct State {
  std::uint16_t row[4];
};

State unpack(std::uint64_t block) {
  State s;
  for (int r = 0; r < 4; ++r)
    s.row[r] = static_cast<std::uint16_t>(block >> (16 * r));
  return s;
}

std::uint64_t pack(const State& s) {
  std::uint64_t b = 0;
  for (int r = 0; r < 4; ++r) b |= static_cast<std::uint64_t>(s.row[r]) << (16 * r);
  return b;
}

// SubColumn over 4 columns at a time via a 64Ki-entry table: the index packs
// the same-position nibbles of the four rows; the value holds the
// S-transformed nibbles in the same layout. One table serves every column
// group because the S-box is position-independent.
struct ColumnTable {
  std::uint16_t fwd[65536];
  std::uint16_t inv[65536];
};

const ColumnTable& column_table() {
  static const ColumnTable table = [] {
    ColumnTable t{};
    for (std::uint32_t idx = 0; idx < 65536; ++idx) {
      std::uint16_t f = 0;
      std::uint16_t i = 0;
      for (int col = 0; col < 4; ++col) {
        std::uint8_t nib = 0;
        for (int r = 0; r < 4; ++r)
          nib |= static_cast<std::uint8_t>(((idx >> (4 * r + col)) & 1u) << r);
        const std::uint8_t sf = kSbox[nib];
        const std::uint8_t si = kInvSbox[nib];
        for (int r = 0; r < 4; ++r) {
          f |= static_cast<std::uint16_t>(((sf >> r) & 1u) << (4 * r + col));
          i |= static_cast<std::uint16_t>(((si >> r) & 1u) << (4 * r + col));
        }
      }
      t.fwd[idx] = f;
      t.inv[idx] = i;
    }
    return t;
  }();
  return table;
}

template <bool kInverse>
void sub_column(State& s) {
  const ColumnTable& t = column_table();
  std::uint16_t out[4] = {0, 0, 0, 0};
  for (int g = 0; g < 4; ++g) {
    const unsigned shift = 4u * static_cast<unsigned>(g);
    const std::uint32_t idx = ((s.row[0] >> shift) & 0xFu) |
                              (((s.row[1] >> shift) & 0xFu) << 4) |
                              (((s.row[2] >> shift) & 0xFu) << 8) |
                              (((s.row[3] >> shift) & 0xFu) << 12);
    const std::uint16_t packed = kInverse ? t.inv[idx] : t.fwd[idx];
    for (int r = 0; r < 4; ++r)
      out[r] |= static_cast<std::uint16_t>(((packed >> (4 * r)) & 0xFu) << shift);
  }
  for (int r = 0; r < 4; ++r) s.row[r] = out[r];
}

void shift_row(State& s) {
  s.row[1] = rotl16(s.row[1], 1);
  s.row[2] = rotl16(s.row[2], 12);
  s.row[3] = rotl16(s.row[3], 13);
}

void inv_shift_row(State& s) {
  s.row[1] = rotr16(s.row[1], 1);
  s.row[2] = rotr16(s.row[2], 12);
  s.row[3] = rotr16(s.row[3], 13);
}

}  // namespace

std::array<std::uint8_t, Rectangle80::kRounds> Rectangle80::round_constants() {
  // 5-bit LFSR: shift left, feedback bit = bit4 ^ bit2 of the previous value.
  std::array<std::uint8_t, kRounds> rc{};
  std::uint8_t v = 0x01;
  for (int i = 0; i < kRounds; ++i) {
    rc[static_cast<std::size_t>(i)] = v;
    const std::uint8_t fb = static_cast<std::uint8_t>(((v >> 4) ^ (v >> 2)) & 1u);
    v = static_cast<std::uint8_t>(((v << 1) | fb) & 0x1Fu);
  }
  return rc;
}

Rectangle80::Rectangle80(const CipherKey& key) {
  std::uint16_t k[5];
  for (int r = 0; r < 5; ++r) {
    k[r] = static_cast<std::uint16_t>(
        key[static_cast<std::size_t>(2 * r)] |
        (key[static_cast<std::size_t>(2 * r + 1)] << 8));
  }
  const auto rc = round_constants();
  for (int i = 0; i <= kRounds; ++i) {
    for (int r = 0; r < 4; ++r) subkeys_[static_cast<std::size_t>(i)].row[r] = k[r];
    if (i == kRounds) break;
    // S-box on the 4 low-order columns of rows 0..3.
    for (int col = 0; col < 4; ++col) {
      std::uint8_t nib = 0;
      for (int r = 0; r < 4; ++r)
        nib |= static_cast<std::uint8_t>(((k[r] >> col) & 1u) << r);
      const std::uint8_t sv = kSbox[nib];
      for (int r = 0; r < 4; ++r) {
        k[r] = static_cast<std::uint16_t>(k[r] & ~(1u << col));
        k[r] |= static_cast<std::uint16_t>(((sv >> r) & 1u) << col);
      }
    }
    // Generalized Feistel step.
    const std::uint16_t r0 = k[0];
    k[0] = static_cast<std::uint16_t>(rotl16(k[0], 8) ^ k[1]);
    k[1] = k[2];
    k[2] = k[3];
    k[3] = static_cast<std::uint16_t>(rotl16(k[3], 12) ^ k[4]);
    k[4] = r0;
    // Round constant into the low 5 bits of row 0.
    k[0] = static_cast<std::uint16_t>(k[0] ^ rc[static_cast<std::size_t>(i)]);
  }
}

std::uint64_t Rectangle80::encrypt(std::uint64_t block) const {
  State s = unpack(block);
  for (int i = 0; i < kRounds; ++i) {
    for (int r = 0; r < 4; ++r) s.row[r] ^= subkeys_[static_cast<std::size_t>(i)].row[r];
    sub_column<false>(s);
    shift_row(s);
  }
  for (int r = 0; r < 4; ++r) s.row[r] ^= subkeys_[kRounds].row[r];
  return pack(s);
}

std::uint64_t Rectangle80::decrypt(std::uint64_t block) const {
  State s = unpack(block);
  for (int r = 0; r < 4; ++r) s.row[r] ^= subkeys_[kRounds].row[r];
  for (int i = kRounds - 1; i >= 0; --i) {
    inv_shift_row(s);
    sub_column<true>(s);
    for (int r = 0; r < 4; ++r) s.row[r] ^= subkeys_[static_cast<std::size_t>(i)].row[r];
  }
  return pack(s);
}

}  // namespace sofia::crypto
