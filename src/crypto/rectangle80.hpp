// RECTANGLE-80 (Zhang, Bao, Lin, Rijmen, Yang, Verbauwhede; ePrint 2014/084):
// a bit-sliced SPN with a 64-bit block, an 80-bit key and 25 rounds, chosen
// by the SOFIA paper for its cheap unrolled hardware implementation.
//
// State: a 4x16 bit matrix, row r = bits [16r, 16r+16) of the block.
// Round: AddRoundKey, SubColumn (4-bit S-box down each of the 16 columns,
// row 0 = LSB of the nibble), ShiftRow (rows rotated left by 0/1/12/13).
// A final AddRoundKey follows round 25 (26 subkeys in total).
//
// 80-bit key schedule: a 5x16 bit key state; each update applies the S-box
// to the 4 low-order columns of rows 0..3, a generalized Feistel step
//   row0' = (row0 <<< 8) ^ row1; row1' = row2; row2' = row3;
//   row3' = (row3 <<< 12) ^ row4; row4' = row0
// and XORs a 5-bit LFSR round constant into row0. Subkey i = rows 0..3.
//
// NOTE: the published test vectors are not available offline; the bit/row
// ordering conventions here are fixed and documented, and the implementation
// is validated structurally (bijectivity, inverse, avalanche) plus at the
// mode level against SPECK-64/128. See DESIGN.md §1.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/block_cipher.hpp"

namespace sofia::crypto {

class Rectangle80 final : public BlockCipher64 {
 public:
  static constexpr int kRounds = 25;

  /// Uses the first 10 bytes of `key` (row r of the key state = bytes 2r,
  /// 2r+1, little-endian).
  explicit Rectangle80(const CipherKey& key);

  std::uint64_t encrypt(std::uint64_t block) const override;
  std::uint64_t decrypt(std::uint64_t block) const override;
  std::string_view name() const override { return "RECTANGLE-80"; }

  /// The 5-bit round-constant sequence (exposed for tests).
  static std::array<std::uint8_t, kRounds> round_constants();

 private:
  struct Subkey {
    std::uint16_t row[4];
  };
  std::array<Subkey, kRounds + 1> subkeys_{};
};

}  // namespace sofia::crypto
