#include "crypto/block_cipher.hpp"
#include "crypto/rectangle80.hpp"
#include "crypto/speck64.hpp"
#include "support/error.hpp"

namespace sofia::crypto {

std::string_view to_string(CipherKind kind) {
  switch (kind) {
    case CipherKind::kRectangle80: return "RECTANGLE-80";
    case CipherKind::kSpeck64_128: return "SPECK-64/128";
  }
  return "?";
}

std::unique_ptr<BlockCipher64> make_cipher(CipherKind kind, const CipherKey& key) {
  switch (kind) {
    case CipherKind::kRectangle80: return std::make_unique<Rectangle80>(key);
    case CipherKind::kSpeck64_128: return std::make_unique<Speck64>(key);
  }
  throw Error("make_cipher: unknown cipher kind");
}

}  // namespace sofia::crypto
