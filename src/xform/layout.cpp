#include "xform/layout.hpp"

#include <algorithm>

#include "assembler/image.hpp"
#include "scheme/label.hpp"
#include "support/bits.hpp"
#include "support/error.hpp"

namespace sofia::xform {

using isa::Instruction;
using isa::Opcode;

namespace {

/// Synthetic `from` value identifying the architectural reset edge.
constexpr std::uint32_t kResetFrom = 0xFFFFFFFEu;

/// Synthetic `from` value identifying a leader's canonical indirect entry
/// (all gated jump-form jalr share it; the entry seals against
/// assembler::kIndirectPrevWord instead of a real predecessor).
constexpr std::uint32_t kIndirectFrom = 0xFFFFFFFDu;

Instruction make_nop() { return Instruction{}; }

Instruction make_jump() {
  Instruction j;
  j.op = Opcode::kJal;
  j.rd = isa::kRegZero;
  return j;
}

/// One deduplicated predecessor of a leader (edges grouped by `from`).
struct Group {
  std::uint32_t from = kResetFrom;  ///< transferring instruction, or reset
  bool is_reset = false;
  bool has_return = false;    ///< contains a kReturn edge
  bool is_indirect = false;   ///< the canonical indirect entry
};

/// Where a group was rerouted to (thunk / landing / synthesized jump).
struct Reroute {
  std::uint32_t block_id = 0;
  bool via_new_jump = false;  ///< entry key flips to (block_id, forward)
};

}  // namespace

// ---------------------------------------------------------------------------
// Packer
// ---------------------------------------------------------------------------

namespace {

class Packer {
 public:
  Packer(const assembler::Program& prog, const cfg::Cfg& cfg,
         const BlockPolicy& policy, const assembler::MemoryLayout& mem,
         bool elide_unreachable, BlockLayout& out, LayoutStats& stats,
         std::vector<Block>& blocks,
         std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>& placement,
         std::map<EdgeKey, EntryRef>& entries,
         std::map<std::uint32_t, EntryRef>& indirect_entries,
         EntryRef& reset_entry)
      : prog_(prog),
        cfg_(cfg),
        policy_(policy),
        mem_(mem),
        elide_unreachable_(elide_unreachable),
        out_(out),
        stats_(stats),
        blocks_(blocks),
        placement_(placement),
        entries_(entries),
        indirect_entries_(indirect_entries),
        reset_entry_(reset_entry) {}

  void run() {
    collect_groups();
    pack_runs();
    assign_entries_and_trees();
    collect_indirect_entries();
    assign_addresses();
    resolve_preds();
    fix_immediates();
    assign_labels();
    verify();
  }

 private:
  // ---- predecessor groups -------------------------------------------------

  void collect_groups() {
    for (const std::uint32_t leader : cfg_.leaders()) {
      std::vector<Group>& groups = groups_[leader];
      bool indirect_target = false;
      for (const cfg::Edge& e : cfg_.preds(leader)) {
        if (e.kind == cfg::EdgeKind::kIndirect) {
          // Every indirect source shares one canonical entry; the dynamic
          // predecessor never appears in the counter.
          indirect_target = true;
          continue;
        }
        auto it = std::find_if(groups.begin(), groups.end(),
                               [&](const Group& g) { return g.from == e.from; });
        if (it == groups.end()) {
          groups.push_back({e.from, false, e.kind == cfg::EdgeKind::kReturn});
        } else if (e.kind == cfg::EdgeKind::kReturn) {
          it->has_return = true;
        }
      }
      std::sort(groups.begin(), groups.end(),
                [](const Group& a, const Group& b) { return a.from < b.from; });
      if (leader == cfg_.entry())
        groups.insert(groups.begin(), Group{kResetFrom, true, false});
      if (indirect_target)
        groups.push_back(Group{kIndirectFrom, false, false, true});
      if (groups.empty())  // unreachable code: give it a reset pred
        groups.push_back(Group{kResetFrom, true, false});
    }
  }

  bool needs_mux(std::uint32_t leader) const {
    return groups_.at(leader).size() >= 2;
  }

  // ---- phase A: pack runs -------------------------------------------------

  bool elided(std::uint32_t leader) const {
    return elide_unreachable_ && !cfg_.reachable(leader);
  }

  void pack_runs() {
    const auto& leaders = cfg_.leaders();
    for (std::size_t pos = 0; pos < leaders.size(); ++pos) {
      const std::uint32_t leader = leaders[pos];
      const std::uint32_t end = cfg_.run_end(leader);
      if (elided(leader)) {
        stats_.elided_insts += end - leader;
        continue;
      }
      open_leader_block(leader);
      for (std::uint32_t i = leader; i < end; ++i) place_source(i);
      finish_run(leader, end);
    }
  }

  void open_leader_block(std::uint32_t leader) {
    const BlockKind kind = needs_mux(leader) ? BlockKind::kMux : BlockKind::kExec;
    open_block(kind, /*synth=*/false);
    leader_first_block_[leader] = cur_id_;
  }

  void open_block(BlockKind kind, bool synth) {
    Block b;
    b.kind = kind;
    b.id = static_cast<std::uint32_t>(blocks_.size());
    b.synthesized = synth;
    blocks_.push_back(std::move(b));
    cur_id_ = blocks_.back().id;
    cur_open_ = true;
    if (kind == BlockKind::kExec)
      ++stats_.exec_blocks;
    else
      ++stats_.mux_blocks;
  }

  Block& cur() { return blocks_[cur_id_]; }

  std::uint32_t capacity() const {
    return blocks_[cur_id_].kind == BlockKind::kExec ? policy_.exec_insts()
                                                     : policy_.mux_insts();
  }

  std::uint32_t mac_words(const Block& b) const {
    return b.kind == BlockKind::kExec ? policy_.words_per_block - policy_.exec_insts()
                                      : policy_.words_per_block - policy_.mux_insts();
  }

  /// Block word index the next instruction slot will occupy.
  std::uint32_t next_word_index() {
    return mac_words(cur()) + static_cast<std::uint32_t>(cur().insts.size());
  }

  void push_inst(PlacedInst pi) {
    if (!cur_open_) continuation_block();
    if (cur().insts.size() == capacity()) continuation_block();
    if (pi.src != kSynthesized)
      placement_[pi.src] = {cur_id_, static_cast<std::uint32_t>(cur().insts.size())};
    cur().insts.push_back(std::move(pi));
  }

  void push_nop() {
    PlacedInst pi;
    pi.inst = make_nop();
    ++stats_.pad_nops;
    push_inst(std::move(pi));
  }

  /// Ensure the next push lands on the final instruction slot of a block.
  void pad_to_exit_slot() {
    if (!cur_open_) continuation_block();
    if (cur().insts.size() == capacity()) continuation_block();
    while (cur().insts.size() + 1 < capacity()) push_nop();
  }

  /// Open a continuation execution block (single fall-through pred).
  void continuation_block() {
    // Pad the (full-by-construction) current block; remember it as pred.
    const std::uint32_t prev = cur_id_;
    if (cur_open_ && cur().insts.size() != capacity())
      throw TransformError("layout: continuation from non-full block");
    open_block(BlockKind::kExec, /*synth=*/false);
    cur().pred1 = {PredRef::Kind::kBlockExit, prev};
  }

  void close_block_padded() {
    if (!cur_open_) return;
    while (cur().insts.size() < capacity()) push_nop();
    cur_open_ = false;
  }

  void place_source(std::uint32_t i) {
    const assembler::SourceInst& si = prog_.text[i];
    PlacedInst pi;
    pi.inst = si.inst;
    pi.src = i;
    pi.reloc = si.reloc;
    pi.reloc_label = si.target;
    if (si.reloc == assembler::RelocKind::kBranch ||
        si.reloc == assembler::RelocKind::kCall) {
      pi.target_leader = prog_.text_labels.at(si.target);
      pi.edge_from = i;
    } else if (isa::is_cond_branch(si.inst.op) || si.inst.op == Opcode::kJal) {
      throw TransformError("layout: instruction " + std::to_string(i) + " (line " +
                           std::to_string(si.line) +
                           "): numeric branch targets are not supported by the "
                           "SOFIA transform; use labels");
    }
    if (isa::is_control(si.inst.op)) {
      // Exit-class: pad to the last slot of the current block.
      pad_to_exit_slot();
      push_inst(std::move(pi));
      cur_open_ = false;
      return;
    }
    if (isa::is_store(si.inst.op)) {
      // Pad until the store lands on an allowed block word index.
      if (!cur_open_) continuation_block();
      for (;;) {
        if (cur().insts.size() == capacity()) {
          continuation_block();
          continue;
        }
        if (next_word_index() >= policy_.store_min_word) break;
        push_nop();
      }
    }
    push_inst(std::move(pi));
    if (cur().insts.size() == capacity()) cur_open_ = false;
  }

  /// Handle the run's outgoing fall-through/return continuation.
  void finish_run(std::uint32_t /*leader*/, std::uint32_t end) {
    const std::uint32_t last = end - 1;
    const Opcode op = prog_.text[last].inst.op;
    if (isa::is_cond_branch(op)) {
      // Not-taken side falls into the next leader `end`.
      if (needs_mux(end)) emit_thunk(last, end);
      return;
    }
    if (op == Opcode::kJal && prog_.text[last].inst.rd != isa::kRegZero) {
      // Call: the return lands at lr = call+4, i.e. word 0 of the next
      // block. If the return site is a join, interpose a landing block
      // owned by the callee's ret.
      handle_return_site(last, end);
      return;
    }
    if (isa::is_control(op)) return;  // j / ret / halt: no fall-through
    // Plain fall-through into `end`.
    if (needs_mux(end)) {
      // Synthesize an explicit jump in this run's final block.
      PlacedInst j;
      j.inst = make_jump();
      j.target_leader = end;
      j.edge_from = last;
      ++stats_.synth_jumps;
      pad_to_exit_slot();
      const std::uint32_t jblock = cur_id_;
      push_inst(std::move(j));
      cur_open_ = false;
      reroutes_[{last, end}] = Reroute{jblock, false};
    } else {
      close_block_padded();
    }
  }

  /// Thunk for a conditional branch whose not-taken side enters a join:
  /// an execution block [nop..., j join] placed right after the branch
  /// block; the taken side is redirected at the thunk too, so both sides
  /// present the same prevPC.
  void emit_thunk(std::uint32_t branch_index, std::uint32_t join) {
    const std::uint32_t branch_block = placement_.at(branch_index).first;
    open_block(BlockKind::kExec, /*synth=*/true);
    --stats_.exec_blocks;
    ++stats_.thunk_blocks;
    cur().pred1 = {PredRef::Kind::kBlockExit, branch_block};
    const std::uint32_t thunk = cur_id_;
    while (cur().insts.size() + 1 < capacity()) push_nop();
    PlacedInst j;
    j.inst = make_jump();
    j.target_leader = join;
    j.edge_from = thunk;
    j.edge_forward = true;
    ++stats_.synth_jumps;
    push_inst(std::move(j));
    cur_open_ = false;
    reroutes_[{branch_index, join}] = Reroute{thunk, true};
    // The taken side of the branch must target the thunk's exec entry when
    // the taken target is the same join.
    entry_alias_[{branch_index, join, false}] = EntryRef{thunk, 0};
  }

  void handle_return_site(std::uint32_t call_index, std::uint32_t site) {
    const auto& groups = groups_.at(site);
    const auto ret_it = std::find_if(groups.begin(), groups.end(),
                                     [](const Group& g) { return g.has_return; });
    if (ret_it == groups.end()) return;  // callee never returns
    if (groups.size() == 1) return;      // site is a plain exec block: natural
    // Landing block: exec, pred = the callee's ret, jumps into the join.
    open_block(BlockKind::kExec, /*synth=*/true);
    --stats_.exec_blocks;
    ++stats_.thunk_blocks;
    cur().pred1 = {PredRef::Kind::kInstBlock, ret_it->from};
    const std::uint32_t landing = cur_id_;
    while (cur().insts.size() + 1 < capacity()) push_nop();
    PlacedInst j;
    j.inst = make_jump();
    j.target_leader = site;
    j.edge_from = landing;
    j.edge_forward = true;
    ++stats_.synth_jumps;
    push_inst(std::move(j));
    cur_open_ = false;
    reroutes_[{ret_it->from, site}] = Reroute{landing, true};
    (void)call_index;
  }

  // ---- phase B: entry assignment & multiplexor trees -----------------------

  struct Input {
    EdgeKey key;
    PredRef pred;
  };

  Input input_for(std::uint32_t leader, const Group& g) {
    if (g.is_reset)
      return {{kResetFrom, leader, false}, {PredRef::Kind::kReset, 0}};
    if (g.is_indirect)
      return {{kIndirectFrom, leader, false}, {PredRef::Kind::kIndirect, 0}};
    if (auto it = reroutes_.find({g.from, leader}); it != reroutes_.end()) {
      const Reroute& r = it->second;
      if (r.via_new_jump)
        return {{r.block_id, leader, true},
                {PredRef::Kind::kBlockExit, r.block_id}};
      return {{g.from, leader, false}, {PredRef::Kind::kBlockExit, r.block_id}};
    }
    return {{g.from, leader, false}, {PredRef::Kind::kInstBlock, g.from}};
  }

  void assign_entries_and_trees() {
    for (const std::uint32_t leader : cfg_.leaders()) {
      if (elided(leader)) continue;
      const std::uint32_t first = leader_first_block_.at(leader);
      std::vector<Input> inputs;
      for (const Group& g : groups_.at(leader)) inputs.push_back(input_for(leader, g));
      if (inputs.size() == 1) {
        entries_[inputs[0].key] = EntryRef{first, 0};
        blocks_[first].pred1 = inputs[0].pred;
        continue;
      }
      // Reduce to two inputs with forwarding blocks (Fig. 9).
      while (inputs.size() > 2) {
        std::vector<Input> next;
        for (std::size_t i = 0; i + 1 < inputs.size(); i += 2)
          next.push_back(make_forward_block(leader, inputs[i], inputs[i + 1]));
        if (inputs.size() % 2 != 0) next.push_back(inputs.back());
        inputs = std::move(next);
      }
      entries_[inputs[0].key] = EntryRef{first, 1};
      entries_[inputs[1].key] = EntryRef{first, 2};
      blocks_[first].pred1 = inputs[0].pred;
      blocks_[first].pred2 = inputs[1].pred;
    }
  }

  Input make_forward_block(std::uint32_t leader, const Input& a, const Input& b) {
    open_block(BlockKind::kMux, /*synth=*/true);
    --stats_.mux_blocks;
    ++stats_.forward_blocks;
    const std::uint32_t id = cur_id_;
    while (cur().insts.size() + 1 < capacity()) push_nop();
    PlacedInst j;
    j.inst = make_jump();
    j.target_leader = leader;
    j.edge_from = id;
    j.edge_forward = true;
    ++stats_.synth_jumps;
    push_inst(std::move(j));
    cur_open_ = false;
    entries_[a.key] = EntryRef{id, 1};
    entries_[b.key] = EntryRef{id, 2};
    blocks_[id].pred1 = a.pred;
    blocks_[id].pred2 = b.pred;
    return {{id, leader, true}, {PredRef::Kind::kBlockExit, id}};
  }

  /// Record each declared indirect target's assigned entry (possibly a
  /// forwarding-tree entry when the leader has many predecessors).
  void collect_indirect_entries() {
    for (const auto& [leader, groups] : groups_) {
      if (elided(leader)) continue;
      for (const Group& g : groups)
        if (g.is_indirect)
          indirect_entries_[leader] = entries_.at({kIndirectFrom, leader, false});
    }
  }

  // ---- phase C: addresses & predecessor words ------------------------------

  void assign_addresses() {
    const std::uint32_t base = mem_.text_base / 4;
    if (mem_.text_base % 4 != 0)
      throw TransformError("layout: text base must be word aligned");
    for (std::size_t k = 0; k < blocks_.size(); ++k)
      blocks_[k].base_word =
          base + static_cast<std::uint32_t>(k) * policy_.words_per_block;
  }

  std::uint32_t pred_word(const PredRef& p) const {
    switch (p.kind) {
      case PredRef::Kind::kReset:
        return assembler::kResetPrevWord;
      case PredRef::Kind::kIndirect:
        return assembler::kIndirectPrevWord;
      case PredRef::Kind::kBlockExit:
        return blocks_[p.value].base_word + policy_.words_per_block - 1;
      case PredRef::Kind::kInstBlock: {
        const auto it = placement_.find(p.value);
        if (it == placement_.end())
          throw TransformError("layout: unplaced predecessor instruction");
        return blocks_[it->second.first].base_word + policy_.words_per_block - 1;
      }
    }
    throw TransformError("layout: bad PredRef");
  }

  void resolve_preds() {
    for (Block& b : blocks_) {
      b.pred1_word = pred_word(b.pred1);
      if (b.kind == BlockKind::kMux) b.pred2_word = pred_word(b.pred2);
    }
  }

  // ---- phase D: immediate fixups -------------------------------------------

  std::uint32_t label_addr(const std::string& label) const {
    if (auto it = prog_.text_labels.find(label); it != prog_.text_labels.end()) {
      // The address of an indirect target IS its canonical indirect entry:
      // any materialized pointer to it must be usable by a gated jump.
      if (auto ind = indirect_entries_.find(it->second);
          ind != indirect_entries_.end())
        return out_.entry_target_addr(ind->second);
      return out_.placed_addr(it->second);
    }
    if (auto it = prog_.data_labels.find(label); it != prog_.data_labels.end())
      return mem_.data_base + it->second;
    throw TransformError("layout: unknown label '" + label + "'");
  }

  void fix_immediates() {
    for (Block& b : blocks_) {
      const std::uint32_t macs = mac_words(b);
      for (std::size_t s = 0; s < b.insts.size(); ++s) {
        PlacedInst& pi = b.insts[s];
        const std::uint32_t word =
            b.base_word + macs + static_cast<std::uint32_t>(s);
        if (pi.target_leader != kSynthesized) {
          const EntryRef entry = lookup_entry(pi);
          const std::uint32_t target_word =
              blocks_[entry.block_id].base_word + entry.entry_offset;
          const auto off = static_cast<std::int64_t>(target_word) -
                           static_cast<std::int64_t>(word);
          const unsigned width = (pi.inst.op == Opcode::kJal) ? 22u : 14u;
          if (!fits_signed(off, width))
            throw TransformError(
                "layout: branch offset out of range after blocking (" +
                std::to_string(off) + " words)");
          pi.inst.imm = static_cast<std::int32_t>(off);
        } else if (pi.reloc == assembler::RelocKind::kHi18) {
          pi.inst.imm = static_cast<std::int32_t>(label_addr(pi.reloc_label) >> 14);
        } else if (pi.reloc == assembler::RelocKind::kLo14) {
          pi.inst.imm =
              static_cast<std::int32_t>(label_addr(pi.reloc_label) & 0x3FFFu);
        }
      }
    }
    // Program entry.
    const EdgeKey reset_key{kResetFrom, cfg_.entry(), false};
    reset_entry_ = entries_.at(reset_key);
  }

  // ---- phase E: forward-edge labels ----------------------------------------

  /// Collapse the declared target sets of every placed jump-form jalr into
  /// label classes and stamp them onto the affected blocks (the sealer
  /// reads them via BlockInfo; non-gating programs have no sites and every
  /// label stays zero).
  void assign_labels() {
    std::vector<scheme::IndirectSite> sites;
    for (std::uint32_t i = 0; i < prog_.text.size(); ++i) {
      const assembler::SourceInst& si = prog_.text[i];
      if (si.inst.op != Opcode::kJalr || cfg::is_ret(si.inst)) continue;
      if (placement_.find(i) == placement_.end()) continue;  // elided
      scheme::IndirectSite site;
      site.exit_word = out_.placed_addr(i) / 4;
      for (const std::string& t : si.indirect_targets) {
        const EntryRef ref = indirect_entries_.at(prog_.text_labels.at(t));
        site.target_entry_words.push_back(out_.entry_target_addr(ref) / 4);
      }
      sites.push_back(std::move(site));
    }
    if (sites.empty()) return;
    const scheme::LabelPlan plan = scheme::assign_labels(sites);
    const std::uint32_t base = mem_.text_base / 4;
    for (const auto& [word, label] : plan.entry_label) {
      const std::uint32_t rel = word - base;
      Block& b = blocks_[rel / policy_.words_per_block];
      if (rel % policy_.words_per_block == 2)
        b.entry2_label = label;
      else
        b.entry1_label = label;
    }
    for (const auto& [word, label] : plan.exit_label) {
      const std::uint32_t rel = word - base;
      blocks_[rel / policy_.words_per_block].exit_label = label;
    }
  }

  EntryRef lookup_entry(const PlacedInst& pi) const {
    const EdgeKey key{pi.edge_from, pi.target_leader, pi.edge_forward};
    if (auto it = entry_alias_.find(key); it != entry_alias_.end())
      return it->second;
    if (auto it = entries_.find(key); it != entries_.end()) return it->second;
    throw TransformError("layout: no entry assigned for edge to leader " +
                         std::to_string(pi.target_leader));
  }

  // ---- invariants -----------------------------------------------------------

  void verify() const {
    for (const Block& b : blocks_) {
      const std::uint32_t cap = b.kind == BlockKind::kExec ? policy_.exec_insts()
                                                           : policy_.mux_insts();
      if (b.insts.size() != cap)
        throw TransformError("layout: block " + std::to_string(b.id) +
                             " not full");
      const std::uint32_t macs =
          policy_.words_per_block - static_cast<std::uint32_t>(b.insts.size());
      for (std::size_t s = 0; s < b.insts.size(); ++s) {
        const Opcode op = b.insts[s].inst.op;
        if (isa::is_control(op) && s + 1 != b.insts.size())
          throw TransformError("layout: control instruction not at exit slot");
        if (isa::is_store(op) &&
            macs + s < policy_.store_min_word)
          throw TransformError("layout: store in restricted slot");
      }
    }
  }

  const assembler::Program& prog_;
  const cfg::Cfg& cfg_;
  const BlockPolicy& policy_;
  const assembler::MemoryLayout& mem_;
  bool elide_unreachable_;
  BlockLayout& out_;
  LayoutStats& stats_;
  std::vector<Block>& blocks_;
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>& placement_;
  std::map<EdgeKey, EntryRef>& entries_;
  std::map<std::uint32_t, EntryRef>& indirect_entries_;
  EntryRef& reset_entry_;

  std::map<std::uint32_t, std::vector<Group>> groups_;
  std::map<std::uint32_t, std::uint32_t> leader_first_block_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, Reroute> reroutes_;
  std::map<EdgeKey, EntryRef> entry_alias_;
  std::uint32_t cur_id_ = 0;
  bool cur_open_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// BlockLayout
// ---------------------------------------------------------------------------

BlockLayout BlockLayout::pack(const assembler::Program& prog, const cfg::Cfg& cfg,
                              const BlockPolicy& policy,
                              const assembler::MemoryLayout& mem,
                              bool elide_unreachable) {
  policy.validate();
  BlockLayout layout;
  layout.policy_ = policy;
  layout.text_base_word_ = mem.text_base / 4;
  layout.stats_.source_insts = static_cast<std::uint32_t>(prog.text.size());
  Packer packer(prog, cfg, policy, mem, elide_unreachable, layout,
                layout.stats_, layout.blocks_, layout.placement_,
                layout.entries_, layout.indirect_entries_,
                layout.reset_entry_);
  packer.run();
  return layout;
}

std::uint32_t BlockLayout::placed_addr(std::uint32_t src_index) const {
  const auto it = placement_.find(src_index);
  if (it == placement_.end())
    throw TransformError("layout: instruction " + std::to_string(src_index) +
                         " was not placed");
  const Block& b = blocks_[it->second.first];
  const std::uint32_t macs =
      policy_.words_per_block - static_cast<std::uint32_t>(b.insts.size());
  return (b.base_word + macs + it->second.second) * 4;
}

std::uint32_t BlockLayout::block_base_addr(std::uint32_t src_index) const {
  const auto it = placement_.find(src_index);
  if (it == placement_.end())
    throw TransformError("layout: instruction " + std::to_string(src_index) +
                         " was not placed");
  return blocks_[it->second.first].base_word * 4;
}

EntryRef BlockLayout::entry_for(const EdgeKey& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end())
    throw TransformError("layout: no entry for edge");
  return it->second;
}

std::uint32_t BlockLayout::entry_target_addr(const EntryRef& ref) const {
  return (blocks_[ref.block_id].base_word + ref.entry_offset) * 4;
}

std::uint32_t BlockLayout::exit_word(std::uint32_t block_id) const {
  return blocks_[block_id].base_word + policy_.words_per_block - 1;
}

std::uint32_t BlockLayout::indirect_entry_addr(std::uint32_t text_index) const {
  const auto it = indirect_entries_.find(text_index);
  if (it == indirect_entries_.end())
    throw TransformError("layout: text index " + std::to_string(text_index) +
                         " is not a declared indirect target");
  return entry_target_addr(it->second);
}

}  // namespace sofia::xform
