#include "xform/block_policy.hpp"

#include "support/error.hpp"

namespace sofia::xform {

void BlockPolicy::validate() const {
  if (words_per_block < 5)
    throw TransformError("block policy: need at least 5 words per block");
  if (words_per_block % 2 != 0)
    throw TransformError(
        "block policy: words per block must be even (the 64-bit cipher "
        "processes word pairs)");
  if (store_min_word >= words_per_block)
    throw TransformError("block policy: store restriction excludes every slot");
}

std::string BlockPolicy::describe() const {
  return std::to_string(words_per_block) + "-word blocks (exec: " +
         std::to_string(exec_insts()) + " insts, mux: " +
         std::to_string(mux_insts()) + " insts), stores from word " +
         std::to_string(store_min_word);
}

}  // namespace sofia::xform
