// The SOFIA software-installation flow (paper §III): normalize the
// assembled program, pack it into execution/multiplexor blocks, compute the
// per-block CBC-MAC over the plaintext instructions, interleave the MAC
// words, and CTR-encrypt every word with its control-flow-dependent counter
// (MAC-then-Encrypt, §II-C).
#pragma once

#include "assembler/image.hpp"
#include "assembler/program.hpp"
#include "crypto/ctr.hpp"
#include "crypto/key_set.hpp"
#include "scheme/scheme.hpp"
#include "xform/block_policy.hpp"
#include "xform/layout.hpp"

namespace sofia::xform {

struct Options {
  BlockPolicy policy = BlockPolicy::paper_default();
  /// Keystream granularity (see crypto/ctr.hpp). Per-word is Alg. 1's
  /// finest-grained semantics; per-pair matches the 64-bit-block hardware.
  crypto::Granularity granularity = crypto::Granularity::kPerWord;
  /// Protection scheme sealing each block — a scheme::scheme_registry()
  /// key. The device must run the same scheme (and keys) to open the image.
  std::string scheme = std::string(scheme::kDefaultScheme);
  /// Drop statically unreachable code instead of packing it (a "toolchain
  /// optimization" in the paper's future-work sense). Off by default: the
  /// paper's transformation emits everything, and label references into
  /// elided code fail the transform.
  bool elide_unreachable = false;
  assembler::MemoryLayout mem;
};

struct TransformStats {
  LayoutStats layout;
  std::uint32_t text_bytes_in = 0;   ///< 4 * source instructions
  std::uint32_t text_bytes_out = 0;  ///< 4 * block words
  double expansion() const {
    return text_bytes_in == 0 ? 0.0
                              : static_cast<double>(text_bytes_out) / text_bytes_in;
  }
};

struct TransformResult {
  assembler::LoadImage image;      ///< encrypted, loadable binary
  BlockLayout layout;              ///< plaintext layout, for inspection
  assembler::Program normalized;   ///< post-devirtualization program
  TransformStats stats;
};

/// Run the complete transformation. Throws sofia::TransformError on
/// unanalyzable control flow or layout failures.
TransformResult transform(const assembler::Program& prog,
                          const crypto::KeySet& keys, const Options& opts = {});

/// Plaintext words of one laid-out block (header words followed by encoded
/// instructions) — the transformation's pre-encryption view, exposed for
/// tests and the inspector example.
std::vector<std::uint32_t> block_plaintext(
    const BlockLayout& layout, const Block& block, const crypto::KeySet& keys,
    std::string_view scheme = scheme::kDefaultScheme);

}  // namespace sofia::xform
