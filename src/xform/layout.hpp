// Block packer: turns a normalized program + its CFG into a sequence of
// SOFIA blocks (paper §II-E and §III "instructions are transformed into
// execution blocks and multiplexor blocks", with multiplexor trees inserted
// for joins, Fig. 9).
//
// Layout invariants (checked by tests):
//  * every leader's first instruction occupies instruction slot 0 of its
//    first block; control can only enter a block at its entry word(s);
//  * control-transfer instructions occupy only the last word of a block;
//  * store-class instructions respect BlockPolicy::store_min_word;
//  * an execution block has exactly one predecessor "exit word"; a
//    multiplexor block has exactly two; joins with more predecessors get a
//    forwarding tree (4 NOPs + jump per node, p-2 nodes for p preds);
//  * fall-through only ever enters an execution block, and the fall-through
//    predecessor is laid out immediately before it.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "assembler/image.hpp"
#include "assembler/program.hpp"
#include "cfg/cfg.hpp"
#include "xform/block_policy.hpp"

namespace sofia::xform {

inline constexpr std::uint32_t kSynthesized = 0xFFFFFFFFu;

enum class BlockKind : std::uint8_t { kExec, kMux };

/// Where a block-entry edge comes from.
struct PredRef {
  enum class Kind : std::uint8_t {
    kReset,      ///< architectural reset (program entry / unreachable code)
    kBlockExit,  ///< last word of a predecessor block (by block id)
    kInstBlock,  ///< last word of the block that holds a given source
                 ///< instruction (resolved after packing; used for return
                 ///< edges whose callee is laid out later)
    kIndirect,   ///< canonical indirect entry: sealed against the
                 ///< kIndirectPrevWord sentinel, shared by every gated
                 ///< jump-form jalr that declares this target
  };
  Kind kind = Kind::kReset;
  std::uint32_t value = 0;  ///< block id (kBlockExit) or inst index (kInstBlock)
};

struct PlacedInst {
  isa::Instruction inst;  ///< immediates resolved in the fixup phase
  std::uint32_t src = kSynthesized;  ///< original text index, or kSynthesized
  /// Set for control that needs a target fixup: the leader index this
  /// instruction transfers to (kSynthesized if none).
  std::uint32_t target_leader = kSynthesized;
  /// Edge identity used to look up the assigned entry: the `from`
  /// instruction index, or a forwarding/thunk block id (edge_forward).
  std::uint32_t edge_from = kSynthesized;
  bool edge_forward = false;
  /// Original reloc (kHi18/kLo14 need address fixups as well).
  assembler::RelocKind reloc = assembler::RelocKind::kNone;
  std::string reloc_label;  ///< label for kHi18/kLo14
};

struct Block {
  BlockKind kind = BlockKind::kExec;
  std::uint32_t id = 0;
  std::vector<PlacedInst> insts;  ///< exec_insts() or mux_insts() entries
  PredRef pred1;                  ///< exec: the only pred; mux: entry-1 pred
  PredRef pred2;                  ///< mux only
  std::uint32_t base_word = 0;    ///< assigned in the address phase
  std::uint32_t pred1_word = 0;   ///< resolved prevPC for the entry word(s)
  std::uint32_t pred2_word = 0;   ///< mux entry 2's resolved prevPC
  /// True for forwarding (multiplexor-tree interior) and thunk blocks.
  bool synthesized = false;
  /// Forward-edge target-set labels (scheme/label.hpp): zero unless the
  /// program has surviving jump-form jalr (gating schemes only).
  std::uint8_t entry1_label = 0;  ///< class of entry path 1 (word 0)
  std::uint8_t entry2_label = 0;  ///< class of entry path 2 (mux word 1)
  std::uint8_t exit_label = 0;    ///< class the exit-slot jalr may reach
};

/// Identifies which entry of which block an edge must target.
struct EntryRef {
  std::uint32_t block_id = 0;
  /// Word offset a transfer must target: 0 = execution block; 1 = mux
  /// path 1 (fetch starts at word 0); 2 = mux path 2 (fetch starts at 1).
  std::uint32_t entry_offset = 0;
};

/// Key for resolving a CFG edge to its assigned entry.
struct EdgeKey {
  std::uint32_t from = 0;  ///< instruction index, or forwarding block id tag
  std::uint32_t to = 0;    ///< leader index
  bool from_forward = false;  ///< true when `from` names a forwarding block

  auto operator<=>(const EdgeKey&) const = default;
};

struct LayoutStats {
  std::uint32_t source_insts = 0;
  std::uint32_t exec_blocks = 0;
  std::uint32_t mux_blocks = 0;      ///< join blocks holding real instructions
  std::uint32_t forward_blocks = 0;  ///< multiplexor-tree interior nodes
  std::uint32_t thunk_blocks = 0;    ///< branch-fall-into-mux trampolines
  std::uint32_t pad_nops = 0;
  std::uint32_t synth_jumps = 0;
  std::uint32_t elided_insts = 0;    ///< unreachable instructions dropped
};

class BlockLayout {
 public:
  /// Pack the program, resolving all immediates against the new layout.
  /// With `elide_unreachable`, code the CFG proves unreachable is dropped
  /// instead of packed (a toolchain optimization the paper leaves as future
  /// work); label references into elided code then fail the transform.
  /// Throws sofia::TransformError on layout violations.
  static BlockLayout pack(const assembler::Program& prog, const cfg::Cfg& cfg,
                          const BlockPolicy& policy,
                          const assembler::MemoryLayout& mem,
                          bool elide_unreachable = false);

  const std::vector<Block>& blocks() const { return blocks_; }
  std::vector<Block>& blocks() { return blocks_; }
  const BlockPolicy& policy() const { return policy_; }
  const LayoutStats& stats() const { return stats_; }

  /// Byte address of the word a given source instruction was placed at.
  std::uint32_t placed_addr(std::uint32_t src_index) const;

  /// Byte address of the base (word 0) of the block holding a given source
  /// instruction — the address a code-reuse attacker would aim at.
  std::uint32_t block_base_addr(std::uint32_t src_index) const;

  /// Entry assigned to a CFG edge arriving at `to`.
  EntryRef entry_for(const EdgeKey& key) const;

  /// Byte address a transfer taking this edge must target.
  std::uint32_t entry_target_addr(const EntryRef& ref) const;

  /// The entry the architectural reset uses (program start).
  EntryRef reset_entry() const { return reset_entry_; }

  /// Word address of a block's last word (the only exit word).
  std::uint32_t exit_word(std::uint32_t block_id) const;

  /// Canonical indirect entries: declared-target leader index -> the entry
  /// an indirect transfer must use. Empty unless the normalized program
  /// kept jump-form jalr (a gating scheme is active).
  const std::map<std::uint32_t, EntryRef>& indirect_entries() const {
    return indirect_entries_;
  }

  /// Is this text index a declared indirect-jump target?
  bool is_indirect_target(std::uint32_t text_index) const {
    return indirect_entries_.count(text_index) != 0;
  }

  /// Byte address an indirect transfer to this target leader must use
  /// (also what its text label resolves to in data tables and address
  /// materializations). Throws for non-targets.
  std::uint32_t indirect_entry_addr(std::uint32_t text_index) const;

  std::uint32_t text_base_word() const { return text_base_word_; }
  std::uint32_t total_words() const {
    return static_cast<std::uint32_t>(blocks_.size()) * policy_.words_per_block;
  }

 private:
  std::vector<Block> blocks_;
  BlockPolicy policy_;
  LayoutStats stats_;
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>
      placement_;  ///< src index -> (block id, slot)
  std::map<EdgeKey, EntryRef> entries_;
  std::map<std::uint32_t, EntryRef> indirect_entries_;
  EntryRef reset_entry_;
  std::uint32_t text_base_word_ = 0;
};

}  // namespace sofia::xform
