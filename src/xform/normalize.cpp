#include "xform/normalize.hpp"

#include "cfg/cfg.hpp"
#include "isa/isa.hpp"
#include "support/error.hpp"

namespace sofia::xform {

using assembler::Program;
using assembler::RelocKind;
using assembler::SourceInst;
using isa::Instruction;
using isa::Opcode;

namespace {

SourceInst synth(Instruction inst, int line) {
  SourceInst si;
  si.inst = inst;
  si.line = line;
  return si;
}

SourceInst synth_la_hi(unsigned rd, const std::string& label, int line) {
  SourceInst si;
  si.inst.op = Opcode::kLui;
  si.inst.rd = static_cast<std::uint8_t>(rd);
  si.reloc = RelocKind::kHi18;
  si.target = label;
  si.line = line;
  return si;
}

SourceInst synth_la_lo(unsigned rd, const std::string& label, int line) {
  SourceInst si;
  si.inst.op = Opcode::kOri;
  si.inst.rd = static_cast<std::uint8_t>(rd);
  si.inst.ra = static_cast<std::uint8_t>(rd);
  si.reloc = RelocKind::kLo14;
  si.target = label;
  si.line = line;
  return si;
}

SourceInst synth_branch(Opcode op, unsigned ra, unsigned rb,
                        const std::string& label, int line) {
  SourceInst si;
  si.inst.op = op;
  si.inst.ra = static_cast<std::uint8_t>(ra);
  si.inst.rb = static_cast<std::uint8_t>(rb);
  si.reloc = RelocKind::kBranch;
  si.target = label;
  si.line = line;
  return si;
}

SourceInst synth_jal(unsigned rd, const std::string& label, int line) {
  SourceInst si;
  si.inst.op = Opcode::kJal;
  si.inst.rd = static_cast<std::uint8_t>(rd);
  si.reloc = RelocKind::kCall;
  si.target = label;
  si.line = line;
  return si;
}

}  // namespace

Program devirtualize(const Program& prog, bool keep_jump_form) {
  Program out;
  out.data = prog.data;
  out.data_labels = prog.data_labels;
  out.data_relocs = prog.data_relocs;
  out.entry = prog.entry;

  std::vector<std::uint32_t> new_index(prog.text.size() + 1, 0);
  int dispatch_count = 0;

  for (std::uint32_t i = 0; i < prog.text.size(); ++i) {
    new_index[i] = static_cast<std::uint32_t>(out.text.size());
    const SourceInst& si = prog.text[i];
    const bool indirect = si.inst.op == Opcode::kJalr && !cfg::is_ret(si.inst);
    if (!indirect) {
      out.text.push_back(si);
      continue;
    }
    if (si.indirect_targets.empty())
      throw TransformError("devirtualize: line " + std::to_string(si.line) +
                           ": indirect jump without .targets annotation");
    if (si.inst.ra == isa::kRegScratch)
      throw TransformError("devirtualize: line " + std::to_string(si.line) +
                           ": indirect jump through reserved register r13");
    if (si.inst.imm != 0)
      throw TransformError("devirtualize: line " + std::to_string(si.line) +
                           ": indirect jump with non-zero offset unsupported");

    const bool is_call = si.inst.rd != isa::kRegZero;
    if (keep_jump_form && !is_call) {
      // Gating scheme: the jump survives; the layout/scheme pair seals its
      // declared target set and the machine enforces it at runtime.
      out.text.push_back(si);
      continue;
    }

    const std::string id = "__devirt" + std::to_string(dispatch_count++);
    // Compare chain.
    for (std::size_t t = 0; t < si.indirect_targets.size(); ++t) {
      const std::string& target = si.indirect_targets[t];
      const std::string case_label = id + "_case" + std::to_string(t);
      out.text.push_back(synth_la_hi(isa::kRegScratch, target, si.line));
      out.text.push_back(synth_la_lo(isa::kRegScratch, target, si.line));
      out.text.push_back(
          synth_branch(Opcode::kBeq, si.inst.ra, isa::kRegScratch, case_label, si.line));
    }
    // CFG-violation trap: the pointer matched no static target.
    out.text.push_back(synth(Instruction{Opcode::kHalt, 0, 0, 0, 0}, si.line));
    // Cases.
    const std::string done_label = id + "_done";
    for (std::size_t t = 0; t < si.indirect_targets.size(); ++t) {
      const std::string& target = si.indirect_targets[t];
      out.text_labels[id + "_case" + std::to_string(t)] =
          static_cast<std::uint32_t>(out.text.size());
      if (is_call) {
        out.text.push_back(synth_jal(si.inst.rd, target, si.line));
        out.text.push_back(synth_jal(isa::kRegZero, done_label, si.line));
      } else {
        out.text.push_back(synth_jal(isa::kRegZero, target, si.line));
      }
    }
    if (is_call)
      out.text_labels[done_label] = static_cast<std::uint32_t>(out.text.size());
  }
  new_index[prog.text.size()] = static_cast<std::uint32_t>(out.text.size());

  for (const auto& [name, idx] : prog.text_labels)
    out.text_labels[name] = new_index[idx];
  return out;
}

Program merge_returns(const Program& prog) {
  const cfg::Cfg cfg = cfg::Cfg::build(prog);
  Program out = prog;
  int epilogue_count = 0;
  for (const auto& fn : cfg.functions()) {
    if (fn.rets.size() < 2) continue;
    const std::uint32_t keep = fn.rets.front();
    const std::string label = "__epilogue" + std::to_string(epilogue_count++);
    out.text_labels[label] = keep;
    for (std::size_t r = 1; r < fn.rets.size(); ++r) {
      SourceInst& si = out.text[fn.rets[r]];
      si = synth_jal(isa::kRegZero, label, si.line);
    }
  }
  return out;
}

}  // namespace sofia::xform
