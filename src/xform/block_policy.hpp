// Block geometry (paper §II-E: "The size of both block types is chosen to
// be eight 32-bit words. Therefore, the execution block consists of 2 MAC
// words and 6 instructions, while a multiplexor block consists of 3 MAC
// words and 5 instructions.").
//
// The geometry is parameterized so the paper's design alternatives can be
// measured: Fig. 5's smaller block (4 instructions, no store restriction)
// vs Fig. 6's 6-instruction block with stores banned from inst1/inst2.
// The store restriction is expressed as a *word index* threshold, which
// covers both block kinds with one hardware rule: a store-class instruction
// may only occupy block word indices >= store_min_word.
#pragma once

#include <cstdint>
#include <string>

namespace sofia::xform {

struct BlockPolicy {
  /// Total 32-bit words per block (execution and multiplexor alike).
  std::uint32_t words_per_block = 8;
  /// First block word index where a store-class instruction may sit
  /// (0 = unrestricted). Default 4 = the paper's inst1/inst2 ban.
  std::uint32_t store_min_word = 4;

  /// Instruction slots in an execution block (2 MAC words).
  std::uint32_t exec_insts() const { return words_per_block - 2; }
  /// Instruction slots in a multiplexor block (3 MAC words).
  std::uint32_t mux_insts() const { return words_per_block - 3; }

  /// The paper's default: 8-word blocks, stores banned from inst1/inst2.
  static BlockPolicy paper_default() { return {8, 4}; }
  /// Fig. 5's alternative: 6-word blocks (4 instructions), no restriction.
  static BlockPolicy small_unrestricted() { return {6, 0}; }

  /// Throws sofia::TransformError when the geometry is unusable.
  void validate() const;

  std::string describe() const;

  friend bool operator==(const BlockPolicy&, const BlockPolicy&) = default;
};

}  // namespace sofia::xform
