// Program normalization ahead of CFG construction: devirtualize annotated
// indirect jumps into compare+direct-branch chains (DESIGN.md §3.5). After
// this pass the only indirect control left is `ret`, whose return points
// the CFG resolves statically, so the whole program has the precise CFG the
// paper's encryption scheme requires.
#pragma once

#include "assembler/program.hpp"

namespace sofia::xform {

/// Rewrite every non-ret jalr with a `.targets` annotation into a dispatch
/// sequence over r13 (the reserved scratch register):
///
///   la r13, t1 ; beq ra, r13, case1 ; ... ; halt(trap)
///   case_j: jal rd, t_j ; j done              (call form, rd != r0)
///   case_j: j t_j                              (jump form, rd == r0)
///
/// Throws sofia::TransformError for un-annotated indirect jumps, jalr
/// through r13, or jalr with a non-zero immediate.
///
/// With `keep_jump_form` true (a forward-edge gating scheme is active),
/// annotated *jump-form* jalr (rd == r0) are validated but kept: the
/// scheme seals their target set into the block headers and the machine
/// gates the transfer at runtime. Call-form jalr are still devirtualized
/// — a gated call would need its dynamic return point sealed, which the
/// static counter scheme cannot express.
assembler::Program devirtualize(const assembler::Program& prog,
                                bool keep_jump_form = false);

/// Merge multi-ret functions into a single epilogue (extra `ret`s become
/// jumps to the first one). Required because a return site's block is
/// encrypted with *the* address of the callee's return instruction — a
/// callee therefore must have exactly one (paper §II-A: "the return point
/// in the caller is encrypted with the address of the return instruction in
/// the callee"). One-to-one instruction replacement: no indices shift.
assembler::Program merge_returns(const assembler::Program& prog);

}  // namespace sofia::xform
