#include "xform/transform.hpp"

#include "cfg/cfg.hpp"
#include "support/error.hpp"
#include "xform/normalize.hpp"

namespace sofia::xform {

using assembler::LoadImage;
using assembler::Program;

namespace {

/// The scheme-facing view of a laid-out block.
scheme::BlockInfo block_info(const Block& block) {
  scheme::BlockInfo info;
  info.is_mux = block.kind == BlockKind::kMux;
  info.base_word = block.base_word;
  info.pred1_word = block.pred1_word;
  info.pred2_word = block.pred2_word;
  info.entry1_label = block.entry1_label;
  info.entry2_label = block.entry2_label;
  info.exit_label = block.exit_label;
  return info;
}

std::vector<std::uint32_t> encoded_insts(const Block& block) {
  std::vector<std::uint32_t> insts;
  insts.reserve(block.insts.size());
  for (const PlacedInst& pi : block.insts) insts.push_back(isa::encode(pi.inst));
  return insts;
}

}  // namespace

std::vector<std::uint32_t> block_plaintext(const BlockLayout& layout,
                                           const Block& block,
                                           const crypto::KeySet& keys,
                                           std::string_view scheme_name) {
  const auto sealer =
      scheme::get_scheme(scheme_name)
          .make_sealer(keys, crypto::Granularity::kPerWord);
  std::vector<std::uint32_t> words =
      sealer->plaintext(block_info(block), encoded_insts(block));
  if (words.size() != layout.policy().words_per_block)
    throw TransformError("transform: block word count mismatch");
  return words;
}

TransformResult transform(const Program& prog, const crypto::KeySet& keys,
                          const Options& opts) {
  TransformResult result;
  const bool gates_indirect =
      scheme::get_scheme(opts.scheme).traits().gates_indirect;
  result.normalized = merge_returns(devirtualize(prog, gates_indirect));
  const cfg::Cfg cfg = cfg::Cfg::build(result.normalized);
  result.layout = BlockLayout::pack(result.normalized, cfg, opts.policy,
                                    opts.mem, opts.elide_unreachable);

  result.stats.layout = result.layout.stats();
  result.stats.text_bytes_in =
      static_cast<std::uint32_t>(prog.text.size()) * 4;
  result.stats.text_bytes_out = result.layout.total_words() * 4;

  const auto sealer =
      scheme::get_scheme(opts.scheme).make_sealer(keys, opts.granularity);

  LoadImage& img = result.image;
  img.sofia = true;
  img.per_pair = (opts.granularity == crypto::Granularity::kPerPair);
  img.omega = keys.omega;
  img.text_base = opts.mem.text_base;
  img.data_base = opts.mem.data_base;
  img.stack_top = opts.mem.stack_top;
  img.entry_prev = assembler::kResetPrevWord;
  img.entry = result.layout.entry_target_addr(result.layout.reset_entry());

  img.text.reserve(result.layout.total_words());
  for (const Block& block : result.layout.blocks()) {
    std::vector<std::uint32_t> words =
        sealer->seal(block_info(block), encoded_insts(block));
    if (words.size() != result.layout.policy().words_per_block)
      throw TransformError("transform: block word count mismatch");
    img.text.insert(img.text.end(), words.begin(), words.end());
  }

  // Data section: resolve .word label slots against the new layout.
  img.data = result.normalized.data;
  for (const auto& reloc : result.normalized.data_relocs) {
    std::uint32_t addr = 0;
    if (auto it = result.normalized.text_labels.find(reloc.symbol);
        it != result.normalized.text_labels.end())
      // A pointer to an indirect target must name its canonical indirect
      // entry — that is the only address a gated jump may use.
      addr = result.layout.is_indirect_target(it->second)
                 ? result.layout.indirect_entry_addr(it->second)
                 : result.layout.placed_addr(it->second);
    else
      addr = opts.mem.data_base + result.normalized.data_labels.at(reloc.symbol);
    for (int b = 0; b < 4; ++b)
      img.data[reloc.offset + static_cast<std::uint32_t>(b)] =
          static_cast<std::uint8_t>(addr >> (8 * b));
  }
  return result;
}

}  // namespace sofia::xform
